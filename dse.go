package repro

import (
	"repro/internal/dse"
	"repro/internal/solve"
)

// Design-space exploration: Solver.Explore searches the paper's
// transformation space (§5.1 moves over TDMA slots, priorities and
// pins) for a Pareto front over three minimized objectives — the
// degree of schedulability delta_Gamma, the total buffer need s_total,
// and the reserved TTP bus bandwidth of the round — instead of the
// single configuration Synthesize returns. See package dse for the
// search (an NSGA-II-style population loop, bit-identical for every
// worker count under a fixed seed) and cmd/mcs-dse for the CLI.
type (
	// ExploreResult is the outcome of Solver.Explore: the front, the
	// analysis count, and the hypervolume indicator.
	ExploreResult = dse.Result
	// ParetoPoint is one evaluated front point (configuration +
	// analysis).
	ParetoPoint = dse.Point
	// ParetoObjectives is the three-objective vector of a point.
	ParetoObjectives = dse.Objectives
	// ParetoArchive maintains a bounded mutually non-dominated set with
	// CSV/JSON export; NewParetoArchive builds one.
	ParetoArchive = dse.Archive
	// ExploreProgress is one dse progress event (solve.Progress carries
	// it to observers with Phase "dse").
	ExploreProgress = dse.Progress
	// DSEOption tunes one Solver.Explore call.
	DSEOption = solve.DSEOption
	// DSEOptions is the resolved per-call option set.
	DSEOptions = solve.DSEOptions
)

// StrategyExplore labels the progress stream of Solver.Explore; it is
// not a Synthesize strategy (explorations return fronts, not single
// configurations), so Strategies() excludes it.
const StrategyExplore = solve.Explore

// NewParetoArchive returns an empty bounded non-dominated archive
// (cap <= 0 selects dse.DefaultArchiveCap).
func NewParetoArchive(cap int) *ParetoArchive { return dse.NewArchive(cap) }

// Hypervolume computes the 3-D dominated hypervolume of an objective
// set against a reference point (all objectives minimized).
func Hypervolume(objs []ParetoObjectives, ref ParetoObjectives) float64 {
	return dse.Hypervolume(objs, ref)
}

// BusBandwidth returns the reserved TTP transmission time per TDMA
// round of a configuration (the slot-length sum, padding excluded) —
// the third exploration objective.
func BusBandwidth(cfg *Config) Time { return dse.Bandwidth(cfg) }

// WithPopulation sets the exploration population size (default 16).
func WithPopulation(n int) DSEOption { return solve.WithPopulation(n) }

// WithGenerations bounds the exploration generations (default 12).
func WithGenerations(n int) DSEOption { return solve.WithGenerations(n) }

// WithMoveBudget sets the §5.1 moves sampled per mutation (default 16).
func WithMoveBudget(n int) DSEOption { return solve.WithMoveBudget(n) }

// WithMaxMutations caps the moves stacked per offspring (default 3).
func WithMaxMutations(n int) DSEOption { return solve.WithMaxMutations(n) }

// WithArchiveCap bounds the non-dominated archive.
func WithArchiveCap(n int) DSEOption { return solve.WithArchiveCap(n) }

// WithExploreSeed seeds the exploration rng (0 keeps the session seed).
func WithExploreSeed(seed int64) DSEOption { return solve.WithExploreSeed(seed) }

// WithWarmStart toggles the OS/OR warm start (on by default; when on,
// the front always weakly dominates the single-objective results).
func WithWarmStart(on bool) DSEOption { return solve.WithWarmStart(on) }

// WithSeedConfigs injects extra configurations into the initial
// population.
func WithSeedConfigs(cfgs ...*Config) DSEOption { return solve.WithSeedConfigs(cfgs...) }
