package repro

import (
	"context"
	"io"
	"testing"

	"repro/internal/expt"
	"repro/internal/opt"
	"repro/internal/sa"
)

// The benchmarks below regenerate every evaluation artifact of the paper
// (see DESIGN.md §2 for the experiment index):
//
//	E1 Fig 4  -> BenchmarkFigure4
//	E2 Fig 9a -> BenchmarkFig9a
//	E3 Fig 9b -> BenchmarkFig9b
//	E4 Fig 9c -> BenchmarkFig9c
//	E5 §6 run times -> BenchmarkOptimizeSchedule / BenchmarkOptimizeResources
//	                   vs BenchmarkSimulatedAnnealing (the two-orders-of-
//	                   magnitude claim is the ratio of these numbers at
//	                   equal solution counts)
//	E6 cruise -> BenchmarkCruiseSynthesis
//	E7 validation -> BenchmarkSimulation
//
// plus per-size benchmarks of the core analysis. The experiment
// benchmarks use scaled-down parameters (the full-scale sweeps live in
// cmd/mcs-experiments).

// benchOpts keeps the figure benchmarks affordable inside testing.B.
func benchOpts() expt.Options {
	return expt.Options{
		Sizes:        []int{2},
		Seeds:        2,
		Inter:        []int{10},
		SAIterations: 60,
		OR:           opt.OROptions{MaxIterations: 6, NeighborBudget: 8, Seeds: 2},
	}
}

// BenchmarkFigure4 regenerates the Fig. 4 worked example (E1).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 || rows[3].Response != 190 {
			b.Fatalf("unexpected Fig 4 outcome: %+v", rows)
		}
	}
}

// BenchmarkFig9a regenerates the degree-of-schedulability figure (E2).
func BenchmarkFig9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9a(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		expt.PrintFig9a(io.Discard, rows)
	}
}

// BenchmarkFig9b regenerates the buffer-need-vs-size figure (E3).
func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9b(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		expt.PrintFig9b(io.Discard, rows)
	}
}

// BenchmarkFig9c regenerates the buffer-vs-traffic figure (E4).
func BenchmarkFig9c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9c(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		expt.PrintFig9c(io.Discard, rows)
	}
}

// BenchmarkCruiseSynthesis regenerates the cruise-controller case study
// table (E6): SF, OS and OR on the 40-process model.
func BenchmarkCruiseSynthesis(b *testing.B) {
	sys, err := CruiseController()
	if err != nil {
		b.Fatal(err)
	}
	app, arch := sys.Application, sys.Architecture
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf, err := opt.Straightforward(app, arch)
		if err != nil {
			b.Fatal(err)
		}
		orres, err := opt.OptimizeResources(context.Background(), app, arch, opt.OROptions{})
		if err != nil {
			b.Fatal(err)
		}
		if sf.Schedulable() || !orres.Best.Schedulable() {
			b.Fatal("cruise shape regressed: SF must miss, OR must meet")
		}
	}
}

// benchSystem caches one generated application per size class.
func benchSystem(b *testing.B, nodes int) (*Application, *Architecture) {
	b.Helper()
	sys, err := Generate(GenSpec{Seed: 1, TTNodes: nodes / 2, ETNodes: nodes / 2})
	if err != nil {
		b.Fatal(err)
	}
	return sys.Application, sys.Architecture
}

// BenchmarkAnalyze measures one MultiClusterScheduling analysis per
// application size (80 and 160 processes).
func BenchmarkAnalyze80(b *testing.B)  { benchAnalyze(b, 2) }
func BenchmarkAnalyze160(b *testing.B) { benchAnalyze(b, 4) }

func benchAnalyze(b *testing.B, nodes int) {
	app, arch := benchSystem(b, nodes)
	cfg := DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(app, arch, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeSchedule measures the OS heuristic (E5, heuristic
// side) on an 80-process application.
func BenchmarkOptimizeSchedule(b *testing.B) {
	app, arch := benchSystem(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.OptimizeSchedule(context.Background(), app, arch, opt.OSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeResources measures the full OS+OR pipeline (E5).
func BenchmarkOptimizeResources(b *testing.B) {
	app, arch := benchSystem(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.OptimizeResources(context.Background(), app, arch, opt.OROptions{MaxIterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedAnnealing measures 300 SA iterations on the same
// application (E5, baseline side): compare the per-solution cost with
// the heuristics above.
func BenchmarkSimulatedAnnealing(b *testing.B) {
	app, arch := benchSystem(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sa.RunSAS(context.Background(), app, arch, sa.Options{Iterations: 300, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation measures the discrete-event simulator on the
// synthesized cruise controller (E7).
func BenchmarkSimulation(b *testing.B) {
	sys, err := CruiseController()
	if err != nil {
		b.Fatal(err)
	}
	app, arch := sys.Application, sys.Architecture
	res, err := Synthesize(app, arch, SynthesisOptions{Strategy: StrategyOptimizeSchedule})
	if err != nil {
		b.Fatal(err)
	}
	if !res.Analysis.Schedulable {
		b.Fatal("cruise OS result unschedulable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simRes, err := Simulate(app, arch, res.Config, res.Analysis, SimOptions{Cycles: 4, Exec: ExecRandom, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(simRes.Violations) != 0 {
			b.Fatalf("violations: %v", simRes.Violations)
		}
	}
}
