// Package repro is a complete, from-scratch reproduction of
//
//	Paul Pop, Petru Eles, Zebo Peng:
//	"Schedulability Analysis and Optimization for the Synthesis of
//	 Multi-Cluster Distributed Embedded Systems", DATE 2003.
//
// It provides schedulability analysis and configuration synthesis for
// two-cluster embedded platforms: a time-triggered cluster (static cyclic
// schedules over a TTP/TDMA bus) and an event-triggered cluster
// (fixed-priority preemptive scheduling over a CAN bus), interconnected
// by a gateway whose queues are sized by the analysis.
//
// This root package is the public facade. The typical flow creates one
// Solver session per system and runs context-first operations on it:
//
//	sys, _ := repro.Generate(repro.GenSpec{Seed: 1, TTNodes: 2, ETNodes: 2})
//	solver, _ := repro.NewSolver(sys.Application, sys.Architecture,
//	    repro.WithStrategy(repro.StrategyOptimizeResources))
//	res, _ := solver.Synthesize(ctx)
//	fmt.Println(res.Analysis.Schedulable, res.Analysis.Buffers.Total)
//
// The pre-Solver free functions (Analyze, AnalyzeAll, Synthesize,
// Simulate) remain as thin deprecated wrappers; see solver.go and
// docs/ARCHITECTURE.md for the migration table.
//
// For serving workloads the same operations are exposed over a
// wire-format job API: NewService fronts cached Solver sessions with a
// bounded asynchronous job queue, and NewServiceHandler (the core of
// cmd/mcs-serve) serves it over HTTP; see service.go.
//
// The heavy lifting lives in the internal packages (model, ttp, can,
// rta, gateway, tsched, core, engine, solve, service, hopa, opt, sa,
// gen, sim, cruise, expt); see docs/ARCHITECTURE.md for the package map
// and README.md for the tool guide.
package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/cruise"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/solve"
)

// Re-exported model types: see package model for the full documentation.
type (
	// Time is a duration or instant in integer ticks.
	Time = model.Time
	// Application is a set of process graphs.
	Application = model.Application
	// Architecture is the two-cluster platform.
	Architecture = model.Architecture
	// ArchSpec parameterizes NewTwoClusterArchitecture.
	ArchSpec = model.ArchSpec
	// System bundles an application with its architecture.
	System = model.System
	// ProcID identifies a process, EdgeID a dependency/message, NodeID a
	// platform node.
	ProcID = model.ProcID
	EdgeID = model.EdgeID
	NodeID = model.NodeID
	// Config is the synthesized system configuration psi = <phi, beta, pi>.
	Config = core.Config
	// Analysis is the outcome of the multi-cluster schedulability
	// analysis: response times, degree of schedulability, buffer bounds.
	Analysis = core.Analysis
	// GenSpec parameterizes the random application generator.
	GenSpec = gen.Spec
	// SimOptions and SimResult drive the discrete-event simulator;
	// SimExecMode selects its execution-time model.
	SimOptions  = sim.Options
	SimResult   = sim.Result
	SimExecMode = sim.ExecMode
)

// Execution-time modes for Simulate.
const (
	// ExecWorstCase runs every process for exactly its WCET.
	ExecWorstCase = sim.WorstCase
	// ExecBestCase runs every process for its BCET.
	ExecBestCase = sim.BestCase
	// ExecRandom draws execution times uniformly from [BCET, WCET].
	ExecRandom = sim.RandomCase
)

// NewApplication returns an empty application with the given name.
func NewApplication(name string) *Application { return model.NewApplication(name) }

// NewTwoClusterArchitecture builds the canonical TTC+ETC+gateway
// platform.
func NewTwoClusterArchitecture(spec ArchSpec) (*Architecture, error) {
	return model.NewTwoClusterArchitecture(spec)
}

// Generate builds a random two-cluster system with the paper's §6
// workload parameters.
func Generate(spec GenSpec) (*System, error) { return gen.Generate(spec) }

// Corpus returns n deterministic generator specs spanning the
// evaluation space (node counts, CPU/bus utilization targets,
// inter-cluster ratios, WCET distributions). Spec i uses seed base+i;
// procsPerNode <= 0 selects the paper's 40. The corpus backs
// `mcs-gen -n`, the DSE benchmarks and the property tests.
func Corpus(n int, base int64, procsPerNode int) []GenSpec {
	return gen.Corpus(n, base, procsPerNode)
}

// CruiseController builds the §6 vehicle cruise-controller case study
// (40 processes, 2 TT + 2 ET nodes, 250 ms deadline).
func CruiseController() (*System, error) { return cruise.System() }

// LoadSystem reads a system JSON file written by SaveSystem or mcs-gen.
func LoadSystem(path string) (*System, error) { return model.LoadFile(path) }

// SaveSystem writes the system as JSON.
func SaveSystem(sys *System, path string) error { return sys.SaveFile(path) }

// DefaultConfig returns the straightforward configuration (ascending
// slot order, minimal slot lengths, declaration-order priorities).
func DefaultConfig(app *Application, arch *Architecture) *Config {
	return core.DefaultConfig(app, arch)
}

// SaveConfig writes a synthesized configuration as stable JSON.
func SaveConfig(cfg *Config, w io.Writer) error { return cfg.Save(w) }

// LoadConfig parses a configuration written by SaveConfig and validates
// it against the application and architecture.
func LoadConfig(r io.Reader, app *Application, arch *Architecture) (*Config, error) {
	return core.LoadConfig(r, app, arch)
}

// Analyze runs the MultiClusterScheduling fixed point (Fig. 5 of the
// paper) for one configuration: static TTC schedule, ETC response
// times, gateway queuing delays and buffer bounds.
//
// Deprecated: use Solver.Analyze, which is context-aware and shares
// the session's derived state across calls. This wrapper remains for
// one-shot use and existing callers.
func Analyze(app *Application, arch *Architecture, cfg *Config) (*Analysis, error) {
	return core.Analyze(app, arch, cfg)
}

// Evaluation couples one candidate configuration with its analysis (or
// the analysis error) in an AnalyzeAll batch.
type Evaluation = engine.Evaluation

// AnalyzeAll analyzes a batch of independent candidate configurations
// across a bounded worker pool and returns one evaluation per
// configuration, in input order (identical to analyzing them serially).
// workers <= 0 selects runtime.NumCPU(); per-configuration failures are
// captured in Evaluation.Err rather than failing the batch. The context
// cancels the remaining work.
//
// Deprecated: use Solver.AnalyzeAll, which reuses the session's shared
// pool instead of building one per call.
func AnalyzeAll(ctx context.Context, app *Application, arch *Architecture, cfgs []*Config, workers int) ([]Evaluation, error) {
	return engine.EvaluateAll(ctx, engine.New(workers), app, arch, cfgs)
}

// Simulate executes the configured system in the discrete-event
// simulator and reports observed response times, queue peaks and any
// platform-invariant violations.
//
// Deprecated: use Solver.Simulate, which is context-aware.
func Simulate(app *Application, arch *Architecture, cfg *Config, a *Analysis, opts SimOptions) (*SimResult, error) {
	return sim.Run(app, arch, cfg, a, opts)
}

// Strategy selects a synthesis algorithm.
type Strategy = solve.Strategy

const (
	// StrategyStraightforward is the SF baseline: ascending slot order,
	// minimal slot lengths, declaration-order priorities.
	StrategyStraightforward = solve.Straightforward
	// StrategyOptimizeSchedule is the greedy OS heuristic maximizing the
	// degree of schedulability (Fig. 8).
	StrategyOptimizeSchedule = solve.OptimizeSchedule
	// StrategyOptimizeResources is OS followed by the OR hill climber
	// minimizing the total buffer need (Fig. 7).
	StrategyOptimizeResources = solve.OptimizeResources
	// StrategySAS is the simulated-annealing baseline for the degree of
	// schedulability.
	StrategySAS = solve.SAS
	// StrategySAR is the simulated-annealing baseline for the buffer
	// need.
	StrategySAR = solve.SAR
)

// Strategies lists every synthesis strategy, in declaration order.
func Strategies() []Strategy { return solve.Strategies() }

// ParseStrategy maps the paper's algorithm names (sf, os, or, sas, sar;
// case-insensitive) to a Strategy. It round-trips with
// Strategy.String for every strategy.
func ParseStrategy(name string) (Strategy, error) { return solve.ParseStrategy(name) }

// SynthesisOptions tunes the deprecated Synthesize wrapper. New code
// passes the equivalent functional options to NewSolver.
type SynthesisOptions struct {
	Strategy Strategy
	// SAIterations bounds the annealing strategies (default 300).
	SAIterations int
	// Seed drives the randomized parts (default 1).
	Seed int64
	// OR tunes OptimizeResources (used by StrategyOptimizeResources).
	OR opt.OROptions
	// Workers bounds the concurrent evaluations of the internal engine
	// pool (default 1 = serial; mcs-synth passes runtime.NumCPU()). The
	// synthesized configuration is identical for every value.
	Workers int
	// SARestarts is the number of independent annealing chains for the
	// SAS/SAR strategies (default 1); chains run across the worker pool
	// and the best-ever solution wins.
	SARestarts int
}

// solverOptions converts the legacy struct to functional options; all
// defaulting and nested forwarding happens in NewSolver.
func (o SynthesisOptions) solverOptions() []Option {
	return []Option{
		WithStrategy(o.Strategy),
		WithSeed(o.Seed),
		WithSAIterations(o.SAIterations),
		WithSARestarts(o.SARestarts),
		WithWorkers(o.Workers),
		WithOROptions(o.OR),
	}
}

// SynthesisResult couples the chosen configuration with its analysis.
type SynthesisResult = solve.Result

// Synthesize finds a system configuration with the selected strategy.
//
// Deprecated: use NewSolver and Solver.Synthesize, which add
// cancellation, progress streaming and cross-call caching. This
// wrapper builds a one-shot Solver, so its results are bit-identical
// to the session API's. One deliberate behavioral change from the
// pre-Solver facade: Seed now feeds every randomized path, so an
// explicit non-default Seed also seeds the OptimizeResources
// neighbourhood rng (which previously stayed at its internal default
// of 1 unless OR.RandSeed was set); default-seed runs are unchanged.
func Synthesize(app *Application, arch *Architecture, opts SynthesisOptions) (*SynthesisResult, error) {
	solver, err := NewSolver(app, arch, opts.solverOptions()...)
	if err != nil {
		return nil, err
	}
	return solver.Synthesize(context.Background())
}
