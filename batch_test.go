package repro_test

import (
	"context"
	"reflect"
	"testing"

	"repro"
)

// batchSystem builds the shared fixture of the batch tests: a small
// system plus a handful of normalized slot-length variants.
func batchSystem(t *testing.T) (*repro.System, []*repro.Config) {
	t.Helper()
	sys, err := repro.Generate(repro.GenSpec{Seed: 5, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6})
	if err != nil {
		t.Fatal(err)
	}
	base := repro.DefaultConfig(sys.Application, sys.Architecture)
	var cfgs []*repro.Config
	for i := 0; i < 6; i++ {
		cfg := base.Clone()
		cfg.Round.Slots[i%len(cfg.Round.Slots)].Length += int64(4 * i)
		if err := cfg.Normalize(sys.Application); err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	return sys, cfgs
}

// TestSolverAnalyzeAllMatchesAnalyze checks the session batch entry
// point: evaluations come back in input order and equal one-at-a-time
// Analyze calls, for serial and parallel pools alike.
func TestSolverAnalyzeAllMatchesAnalyze(t *testing.T) {
	sys, cfgs := batchSystem(t)
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		solver, err := repro.NewSolver(sys.Application, sys.Architecture, repro.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		evals, err := solver.AnalyzeAll(ctx, cfgs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(evals) != len(cfgs) {
			t.Fatalf("workers=%d: %d evaluations for %d configs", workers, len(evals), len(cfgs))
		}
		for i, cfg := range cfgs {
			want, err := solver.Analyze(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if evals[i].Err != nil {
				t.Fatalf("workers=%d cfg %d: %v", workers, i, evals[i].Err)
			}
			if !reflect.DeepEqual(evals[i].Analysis, want) {
				t.Errorf("workers=%d cfg %d: batch analysis differs from Analyze", workers, i)
			}
		}
	}
}

// TestDeprecatedBatchWrappersBitIdentical is the regression keeping the
// deprecated free functions honest: repro.Analyze and repro.AnalyzeAll
// must stay bit-identical to the Solver session API they wrap.
func TestDeprecatedBatchWrappersBitIdentical(t *testing.T) {
	sys, cfgs := batchSystem(t)
	app, arch := sys.Application, sys.Architecture
	ctx := context.Background()
	solver, err := repro.NewSolver(app, arch, repro.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.AnalyzeAll(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repro.AnalyzeAll(ctx, app, arch, cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("deprecated AnalyzeAll differs from Solver.AnalyzeAll")
	}
	for i, cfg := range cfgs {
		single, err := repro.Analyze(app, arch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, want[i].Analysis) {
			t.Errorf("cfg %d: deprecated Analyze differs from the session analysis", i)
		}
	}
}
