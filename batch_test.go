package repro_test

import (
	"context"
	"reflect"
	"testing"

	"repro"
)

// TestAnalyzeAllMatchesAnalyze checks the facade's batch entry point:
// evaluations come back in input order and equal one-at-a-time Analyze
// calls, for serial and parallel pools alike.
func TestAnalyzeAllMatchesAnalyze(t *testing.T) {
	sys, err := repro.Generate(repro.GenSpec{Seed: 5, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6})
	if err != nil {
		t.Fatal(err)
	}
	app, arch := sys.Application, sys.Architecture
	base := repro.DefaultConfig(app, arch)
	var cfgs []*repro.Config
	for i := 0; i < 6; i++ {
		cfg := base.Clone()
		cfg.Round.Slots[i%len(cfg.Round.Slots)].Length += int64(4 * i)
		if err := cfg.Normalize(app); err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	for _, workers := range []int{1, 4} {
		evals, err := repro.AnalyzeAll(context.Background(), app, arch, cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(evals) != len(cfgs) {
			t.Fatalf("workers=%d: %d evaluations for %d configs", workers, len(evals), len(cfgs))
		}
		for i, cfg := range cfgs {
			want, err := repro.Analyze(app, arch, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if evals[i].Err != nil {
				t.Fatalf("workers=%d cfg %d: %v", workers, i, evals[i].Err)
			}
			if !reflect.DeepEqual(evals[i].Analysis, want) {
				t.Errorf("workers=%d cfg %d: batch analysis differs from Analyze", workers, i)
			}
		}
	}
}
