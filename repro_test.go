package repro

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	sys, err := Generate(GenSpec{Seed: 4, TTNodes: 1, ETNodes: 1, ProcsPerNode: 8, ProcsPerGraph: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	res, err := Synthesize(sys.Application, sys.Architecture, SynthesisOptions{
		Strategy: StrategyOptimizeSchedule,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if res.Analysis == nil || res.Config == nil || res.Evaluations <= 0 {
		t.Fatal("incomplete synthesis result")
	}
	if !res.Analysis.Schedulable {
		t.Skipf("seed 4 not schedulable by OS (delta=%d)", res.Analysis.Delta)
	}
	simRes, err := Simulate(sys.Application, sys.Architecture, res.Config, res.Analysis, SimOptions{Cycles: 2})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(simRes.Violations) != 0 {
		t.Fatalf("violations: %v", simRes.Violations)
	}
	if simRes.DeadlineMisses != 0 {
		t.Errorf("deadline misses: %d", simRes.DeadlineMisses)
	}
}

func TestFacadeStrategies(t *testing.T) {
	sys, err := Generate(GenSpec{Seed: 2, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6, ProcsPerGraph: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, s := range []Strategy{StrategyStraightforward, StrategyOptimizeSchedule, StrategySAS, StrategySAR} {
		res, err := Synthesize(sys.Application, sys.Architecture, SynthesisOptions{Strategy: s, SAIterations: 30})
		if err != nil {
			t.Fatalf("Synthesize(%v): %v", s, err)
		}
		if res.Analysis == nil {
			t.Errorf("%v: no analysis", s)
		}
	}
	if _, err := Synthesize(sys.Application, sys.Architecture, SynthesisOptions{Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"sf": StrategyStraightforward, "SF": StrategyStraightforward,
		"os": StrategyOptimizeSchedule, "or": StrategyOptimizeResources,
		"SAS": StrategySAS, "sar": StrategySAR,
		"optimize-resources": StrategyOptimizeResources,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("invalid strategy accepted")
	}
	// String and ParseStrategy round-trip over every strategy.
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip: ParseStrategy(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if Strategy(42).String() == "" {
		t.Error("empty name for out-of-range strategy")
	}
}

// TestSolverMatchesDeprecatedSynthesize pins the compatibility contract
// of the deprecated wrapper: for every strategy, the one-shot free
// function and a reused Solver session return bit-identical results.
func TestSolverMatchesDeprecatedSynthesize(t *testing.T) {
	sys, err := Generate(GenSpec{Seed: 2, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6, ProcsPerGraph: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	solver, err := NewSolver(app, arch, WithSAIterations(30))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	ctx := context.Background()
	for _, s := range Strategies() {
		want, err := Synthesize(app, arch, SynthesisOptions{Strategy: s, SAIterations: 30})
		if err != nil {
			t.Fatalf("Synthesize(%v): %v", s, err)
		}
		got, err := solver.SynthesizeWith(ctx, s)
		if err != nil {
			t.Fatalf("Solver.SynthesizeWith(%v): %v", s, err)
		}
		if !reflect.DeepEqual(got.Config, want.Config) || got.Evaluations != want.Evaluations {
			t.Errorf("%v: Solver result differs from the deprecated wrapper", s)
		}
	}
}

// TestSolverObserverFacade exercises the WithObserver stream through
// the facade aliases.
func TestSolverObserverFacade(t *testing.T) {
	sys, err := Generate(GenSpec{Seed: 2, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6, ProcsPerGraph: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var events []Progress
	solver, err := NewSolver(sys.Application, sys.Architecture,
		WithStrategy(StrategyOptimizeSchedule),
		WithObserver(ObserverFunc(func(p Progress) { events = append(events, p) })))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	if _, err := solver.Synthesize(context.Background()); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events reached the facade observer")
	}
	for _, e := range events {
		if e.Phase != "os" {
			t.Errorf("unexpected phase %q for the OS strategy", e.Phase)
		}
	}
}

func TestFacadeCruiseAndIO(t *testing.T) {
	sys, err := CruiseController()
	if err != nil {
		t.Fatalf("CruiseController: %v", err)
	}
	if len(sys.Application.Procs) != 40 {
		t.Errorf("cruise has %d processes", len(sys.Application.Procs))
	}
	path := filepath.Join(t.TempDir(), "cruise.json")
	if err := SaveSystem(sys, path); err != nil {
		t.Fatalf("SaveSystem: %v", err)
	}
	loaded, err := LoadSystem(path)
	if err != nil {
		t.Fatalf("LoadSystem: %v", err)
	}
	if loaded.Application.Name != sys.Application.Name {
		t.Error("round trip lost the name")
	}
	cfg := DefaultConfig(loaded.Application, loaded.Architecture)
	if err := cfg.Normalize(loaded.Application); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if _, err := Analyze(loaded.Application, loaded.Architecture, cfg); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
}

func TestFacadeBuilderFlow(t *testing.T) {
	arch, err := NewTwoClusterArchitecture(ArchSpec{TTNodes: 1, ETNodes: 1})
	if err != nil {
		t.Fatalf("NewTwoClusterArchitecture: %v", err)
	}
	app := NewApplication("mini")
	g := app.AddGraph("G", 1000, 900)
	a := app.AddProcess(g, "A", 10, arch.TTNodes()[0])
	b := app.AddProcess(g, "B", 10, arch.ETNodes()[0])
	app.AddEdge("ab", a, b, 8)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	res, err := Synthesize(app, arch, SynthesisOptions{Strategy: StrategyOptimizeSchedule})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !res.Analysis.Schedulable {
		t.Errorf("trivial system unschedulable: delta=%d", res.Analysis.Delta)
	}
}
