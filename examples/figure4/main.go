// Figure 4: the paper's worked scheduling example. Process graph G1 of
// Fig. 1 is mapped on a two-cluster platform; the TDMA slot order and
// the ET priorities decide whether the 200 ms deadline holds.
//
//	go run ./examples/figure4
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	arch, err := repro.NewTwoClusterArchitecture(repro.ArchSpec{
		TTNodes: 1, ETNodes: 1, GatewayCost: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	app := repro.NewApplication("figure4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	// The paper uses round 10 ms CAN frame times in this example.
	for _, e := range []repro.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10
	}
	if err := app.Finalize(arch); err != nil {
		log.Fatal(err)
	}

	// One Solver session analyzes all four panel configurations.
	ctx := context.Background()
	solver, err := repro.NewSolver(app, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("panel  S_G first  P2 high   R_G1  meets D=200?")
	for _, panel := range []struct {
		name            string
		sgFirst, p2High bool
	}{
		{"a", true, false},
		{"b", false, false},
		{"c", true, true},
		{"d", false, true},
	} {
		cfg := repro.DefaultConfig(app, arch)
		// Slot order beta: S_G first reproduces panel (a).
		i1 := cfg.Round.SlotIndexOf(n1)
		ig := cfg.Round.SlotIndexOf(arch.Gateway)
		if panel.sgFirst != (ig < i1) {
			cfg.Round.Slots[i1], cfg.Round.Slots[ig] = cfg.Round.Slots[ig], cfg.Round.Slots[i1]
		}
		for i := range cfg.Round.Slots {
			cfg.Round.Slots[i].Length = 20
		}
		// Priorities pi: the paper's m1 > m2 > m3 plus the P2/P3 choice.
		cfg.MsgPriority[m1], cfg.MsgPriority[m2], cfg.MsgPriority[m3] = 1, 2, 3
		if panel.p2High {
			cfg.ProcPriority[p2], cfg.ProcPriority[p3] = 1, 2
		} else {
			cfg.ProcPriority[p2], cfg.ProcPriority[p3] = 2, 1
		}
		if err := cfg.Normalize(app); err != nil {
			log.Fatal(err)
		}
		a, err := solver.Analyze(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5s %10v %8v %6d  %v\n", panel.name, panel.sgFirst, panel.p2High, a.GraphResp[0], a.Schedulable)
	}
	fmt.Println()
	fmt.Println("The paper's qualitative claim holds: the same application misses its")
	fmt.Println("deadline under configuration (a) and meets it once the slot order and")
	fmt.Println("the priorities are optimized (panel d).")
}
