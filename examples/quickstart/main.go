// Quickstart: build a small two-cluster application in code, synthesize
// a configuration with the paper's heuristics and print the analysis.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A platform with one time-triggered node, one event-triggered node
	// and the gateway. 1 tick = 1 ms reads naturally.
	arch, err := repro.NewTwoClusterArchitecture(repro.ArchSpec{
		TTNodes: 1, ETNodes: 1, GatewayCost: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A sensing -> computing -> actuating chain that crosses the
	// clusters twice: sample (TT) feeds classify (ET), whose decision
	// returns to actuate (TT).
	app := repro.NewApplication("quickstart")
	g := app.AddGraph("chain", 400, 300) // period 400 ms, deadline 300 ms
	tt := arch.TTNodes()[0]
	et := arch.ETNodes()[0]
	sample := app.AddProcess(g, "sample", 20, tt)
	filter := app.AddProcess(g, "filter", 30, tt)
	classify := app.AddProcess(g, "classify", 40, et)
	decide := app.AddProcess(g, "decide", 25, et)
	actuate := app.AddProcess(g, "actuate", 15, tt)
	app.AddEdge("raw", sample, filter, 0)                    // same node: pure precedence
	features := app.AddEdge("features", filter, classify, 8) // TT -> ET via the gateway
	class := app.AddEdge("class", classify, decide, 4)       // ET -> ET on the CAN bus
	command := app.AddEdge("command", decide, actuate, 4)    // ET -> TT via the gateway
	// With 1 tick = 1 ms, a derived CAN frame time (135 bit times) would
	// be enormous; use explicit single-digit-millisecond frames like the
	// paper's worked example does.
	for _, e := range []repro.EdgeID{features, class, command} {
		app.Edges[e].CANTime = 4
	}
	if err := app.Finalize(arch); err != nil {
		log.Fatal(err)
	}

	// Synthesize with a Solver session: OptimizeResources = greedy
	// schedule optimization followed by buffer minimization. The
	// context would let us cancel the search; see cmd/mcs-synth for
	// SIGINT wiring.
	ctx := context.Background()
	solver, err := repro.NewSolver(app, arch,
		repro.WithStrategy(repro.StrategyOptimizeResources))
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Synthesize(ctx)
	if err != nil {
		log.Fatal(err)
	}
	a := res.Analysis
	fmt.Printf("schedulable: %v (degree of schedulability %d)\n", a.Schedulable, a.Delta)
	fmt.Printf("end-to-end response: %d ms (deadline %d ms)\n", a.GraphResp[0], app.Graphs[0].Deadline)
	fmt.Printf("TDMA round: %v\n", res.Config.Round)
	fmt.Printf("gateway buffers: OutCAN=%dB OutTTP=%dB total=%dB\n",
		a.Buffers.OutCAN, a.Buffers.OutTTP, a.Buffers.Total)

	// Validate the synthesized configuration in the discrete-event
	// simulator: observations must stay within the analysed bounds.
	simRes, err := solver.Simulate(ctx, res.Config, a, repro.SimOptions{Cycles: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: response %d ms <= bound %d ms, %d violations\n",
		simRes.GraphWorstResp[0], a.GraphResp[0], len(simRes.Violations))
}
