// Buffer sizing: the gateway queue analysis of §4.1 in action. A
// generated application is synthesized twice - once for schedulability
// only (OS) and once with the buffer-minimizing hill climber (OR) - and
// the per-queue worst-case bounds are compared, including the critical
// message attaining each bound.
//
//	go run ./examples/buffersizing
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	sys, err := repro.Generate(repro.GenSpec{
		Seed: 11, TTNodes: 1, ETNodes: 1, ProcsPerNode: 12, ProcsPerGraph: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	app, arch := sys.Application, sys.Architecture
	fmt.Printf("%s: %d processes, %d gateway messages\n\n",
		app.Name, len(app.Procs), len(app.GatewayEdges(arch)))

	// One Solver session serves both strategies, so the second run
	// reuses the cached slot candidates and configuration templates.
	ctx := context.Background()
	solver, err := repro.NewSolver(app, arch)
	if err != nil {
		log.Fatal(err)
	}
	osRes, err := solver.SynthesizeWith(ctx, repro.StrategyOptimizeSchedule)
	if err != nil {
		log.Fatal(err)
	}
	orRes, err := solver.SynthesizeWith(ctx, repro.StrategyOptimizeResources)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, res *repro.SynthesisResult) {
		b := res.Analysis.Buffers
		fmt.Printf("%s (schedulable: %v):\n", name, res.Analysis.Schedulable)
		crit := func(e repro.EdgeID) string {
			if e < 0 {
				return "-"
			}
			return app.Edges[e].Name
		}
		fmt.Printf("  OutCAN  %4d B   critical message: %s\n", b.OutCAN, crit(b.CriticalOutCAN))
		fmt.Printf("  OutTTP  %4d B   critical message: %s\n", b.OutTTP, crit(b.CriticalOutTTP))
		var nodes []repro.NodeID
		for n := range b.OutNode {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			fmt.Printf("  OutN%-2d  %4d B   critical message: %s\n", n, b.OutNode[n], crit(b.CriticalOutNode[n]))
		}
		fmt.Printf("  s_total %4d B\n\n", b.Total)
	}
	show("OptimizeSchedule (schedulability only)", osRes)
	show("OptimizeResources (buffer minimization)", orRes)

	if orRes.Analysis.Buffers.Total < osRes.Analysis.Buffers.Total {
		saved := osRes.Analysis.Buffers.Total - orRes.Analysis.Buffers.Total
		fmt.Printf("OR saved %d bytes (%.0f%%) of gateway/queue memory while staying schedulable.\n",
			saved, 100*float64(saved)/float64(osRes.Analysis.Buffers.Total))
	} else {
		fmt.Println("OR found no cheaper schedulable configuration on this instance.")
	}
}
