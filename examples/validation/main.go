// Validation: the analysis-versus-simulation check (experiment E7).
// Several random applications are generated and synthesized; each
// schedulable configuration is executed in the discrete-event simulator
// under worst-case and random execution times, and every observation is
// checked against its analysed bound.
//
//	go run ./examples/validation
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	checked, skipped := 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		sys, err := repro.Generate(repro.GenSpec{
			Seed: seed, TTNodes: 1, ETNodes: 1, ProcsPerNode: 10, ProcsPerGraph: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		// A fresh system per seed means a fresh Solver session; the
		// session then serves both the synthesis and the two
		// simulation runs below.
		solver, err := repro.NewSolver(sys.Application, sys.Architecture,
			repro.WithStrategy(repro.StrategyOptimizeSchedule))
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Synthesize(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Analysis.Schedulable {
			skipped++
			fmt.Printf("seed %d: unschedulable (delta=%d), skipped\n", seed, res.Analysis.Delta)
			continue
		}
		checked++
		for _, exec := range []struct {
			name string
			mode repro.SimExecMode
		}{{"worst-case", repro.ExecWorstCase}, {"random", repro.ExecRandom}} {
			simRes, err := solver.Simulate(ctx, res.Config, res.Analysis,
				repro.SimOptions{Cycles: 2, Exec: exec.mode, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			worstSlack := repro.Time(1 << 60)
			for g, bound := range res.Analysis.GraphResp {
				slack := bound - simRes.GraphWorstResp[g]
				if slack < worstSlack {
					worstSlack = slack
				}
				if slack < 0 {
					log.Fatalf("seed %d: simulated response exceeds the analysed bound by %d", seed, -slack)
				}
			}
			if len(simRes.Violations) > 0 {
				log.Fatalf("seed %d: violations: %v", seed, simRes.Violations)
			}
			fmt.Printf("seed %d (%s): %d instances, tightest bound slack %d ticks, 0 violations\n",
				seed, exec.name, simRes.Completed, worstSlack)
		}
	}
	fmt.Printf("\nvalidated %d schedulable systems (%d skipped): every simulated response\n", checked, skipped)
	fmt.Println("and queue peak stayed within its analysed worst-case bound.")
}
