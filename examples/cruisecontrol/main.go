// Cruise control: the paper's real-life case study (§6). A 40-process
// vehicle cruise controller on 2 TT + 2 ET nodes with a 250 ms deadline
// is synthesized with every algorithm of the paper and the results are
// compared, then the best configuration is validated in the simulator.
//
//	go run ./examples/cruisecontrol
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	sys, err := repro.CruiseController()
	if err != nil {
		log.Fatal(err)
	}
	app, arch := sys.Application, sys.Architecture
	fmt.Printf("%s: %d processes, %d messages (%d across the gateway), D = %d ms\n\n",
		app.Name, len(app.Procs), len(app.Edges), len(app.GatewayEdges(arch)), app.Graphs[0].Deadline)

	// One Solver session runs all three algorithms over the same cached
	// derived state, then validates the OS result in the simulator.
	ctx := context.Background()
	solver, err := repro.NewSolver(app, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alg   response   meets?   buffers")
	var osRes *repro.SynthesisResult
	for _, s := range []repro.Strategy{
		repro.StrategyStraightforward,
		repro.StrategyOptimizeSchedule,
		repro.StrategyOptimizeResources,
	} {
		res, err := solver.SynthesizeWith(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		if s == repro.StrategyOptimizeSchedule {
			osRes = res
		}
		fmt.Printf("%-4v %8d %8v %6d B\n", s, res.Analysis.GraphResp[0], res.Analysis.Schedulable, res.Analysis.Buffers.Total)
	}
	fmt.Println("\n(paper: SF misses at 320 ms; OS meets at 185 ms; OR cuts the OS buffers by 24%)")

	simRes, err := solver.Simulate(ctx, osRes.Config, osRes.Analysis, repro.SimOptions{Cycles: 4, Exec: repro.ExecRandom, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %d cycles with random execution times: worst response %d ms, %d misses, %d violations\n",
		4, simRes.GraphWorstResp[0], simRes.DeadlineMisses, len(simRes.Violations))
}
