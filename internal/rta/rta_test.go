package rta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

const hz = 1 << 40

func analyze(t *testing.T, tasks []Task) []Result {
	t.Helper()
	res, err := Analyze(tasks, Options{Horizon: hz})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// TestClassicRateMonotonic reproduces the textbook Liu/Layland style
// example: three tasks on one CPU, no offsets, no jitter.
func TestClassicRateMonotonic(t *testing.T) {
	tasks := []Task{
		{Name: "t1", Resource: 0, Priority: 0, C: 1, T: 4, Trans: -1},
		{Name: "t2", Resource: 0, Priority: 1, C: 2, T: 6, Trans: -1},
		{Name: "t3", Resource: 0, Priority: 2, C: 3, T: 12, Trans: -1},
	}
	res := analyze(t, tasks)
	// Different transactions: all offsets treated as 0.
	// r1 = 1; r2 = 2 + 1 = 3; r3: w=3+... classic busy window: 3+1+2=6, then
	// arrivals of t1 in 6: 2 -> w=3+2*1+1*2=7, t1:2,t2:2 -> 3+2+4=9, t1:3 ->
	// 3+3+4=10, -> 3+3+4=10 stable. r3=10.
	wants := []model.Time{1, 3, 10}
	for i, want := range wants {
		if !res[i].Converged || res[i].R != want {
			t.Errorf("r%d = %d (conv=%v), want %d", i+1, res[i].R, res[i].Converged, want)
		}
	}
}

// TestFig4aProcesses checks P2/P3 of the paper's §4.2 example on node N2:
// priorityP3 > priorityP2, O2=O3=80, J2=15, J3=25, C2=C3=20, T=240.
// Expected: w2 = 20 (one preemption by P3), r2 = 55; w3 = 0, r3 = 45.
func TestFig4aProcesses(t *testing.T) {
	tasks := []Task{
		{Name: "P2", Resource: 0, Priority: 2, C: 20, T: 240, O: 80, J: 15, Trans: 1},
		{Name: "P3", Resource: 0, Priority: 1, C: 20, T: 240, O: 80, J: 25, Trans: 1},
	}
	res := analyze(t, tasks)
	if res[0].W != 20 || res[0].R != 55 {
		t.Errorf("P2: w=%d r=%d, want w=20 r=55", res[0].W, res[0].R)
	}
	if res[1].W != 0 || res[1].R != 45 {
		t.Errorf("P3: w=%d r=%d, want w=0 r=45", res[1].W, res[1].R)
	}
}

// TestFig4aMessages checks m1/m2 on the CAN bus: Jm1=Jm2=5 (the gateway
// transfer process response), Cm=10, T=240, equal offsets 80.
// Expected: wm1 = 0, rm1 = 15 (=J2); wm2 = 10, rm2 = 25 (=J3).
func TestFig4aMessages(t *testing.T) {
	tasks := []Task{
		{Name: "m1", Resource: 1, Priority: 1, C: 10, T: 240, O: 80, J: 5, Trans: 1, NonPreemptive: true},
		{Name: "m2", Resource: 1, Priority: 2, C: 10, T: 240, O: 80, J: 5, Trans: 1, NonPreemptive: true},
	}
	res := analyze(t, tasks)
	if res[0].W != 0 || res[0].R != 15 {
		t.Errorf("m1: w=%d r=%d, want w=0 r=15", res[0].W, res[0].R)
	}
	if res[1].W != 10 || res[1].R != 25 {
		t.Errorf("m2: w=%d r=%d, want w=10 r=25", res[1].W, res[1].R)
	}
}

// TestFig4cPrioritySwap swaps the priorities of P2 and P3 (Figure 4c):
// P2 becomes the high-priority process, so it runs free of interference.
func TestFig4cPrioritySwap(t *testing.T) {
	tasks := []Task{
		{Name: "P2", Resource: 0, Priority: 1, C: 20, T: 240, O: 80, J: 15, Trans: 1},
		{Name: "P3", Resource: 0, Priority: 2, C: 20, T: 240, O: 80, J: 25, Trans: 1},
	}
	res := analyze(t, tasks)
	if res[0].W != 0 || res[0].R != 35 {
		t.Errorf("P2: w=%d r=%d, want w=0 r=35", res[0].W, res[0].R)
	}
	// P3 is preempted by P2 (whose activation window overlaps): w3 = 20.
	if res[1].W != 20 || res[1].R != 65 {
		t.Errorf("P3: w=%d r=%d, want w=20 r=65", res[1].W, res[1].R)
	}
}

// TestOffsetsReduceInterference verifies that a large relative offset
// inside a transaction removes interference that unrelated tasks would
// suffer (the point of the offset-based analysis, §4 of the paper).
func TestOffsetsReduceInterference(t *testing.T) {
	base := []Task{
		{Name: "hi", Resource: 0, Priority: 0, C: 10, T: 100, O: 90, Trans: 7},
		{Name: "lo", Resource: 0, Priority: 1, C: 10, T: 100, O: 0, Trans: 7},
	}
	res := analyze(t, base)
	// "hi" is released 90 after "lo"; lo's busy window of 10 never sees it.
	if res[1].W != 0 {
		t.Errorf("same transaction: w(lo) = %d, want 0", res[1].W)
	}
	// Different transactions: phasing unknown, interference counted.
	base[0].Trans = 8
	res = analyze(t, base)
	if res[1].W != 10 {
		t.Errorf("different transactions: w(lo) = %d, want 10", res[1].W)
	}
}

func TestBlockingTerm(t *testing.T) {
	tasks := []Task{
		{Name: "m", Resource: 0, Priority: 0, C: 5, T: 100, B: 7, Trans: -1, NonPreemptive: true},
	}
	res := analyze(t, tasks)
	if res[0].W != 7 || res[0].R != 12 {
		t.Errorf("w=%d r=%d, want 7, 12", res[0].W, res[0].R)
	}
}

func TestMaxLowerC(t *testing.T) {
	tasks := []Task{
		{Resource: 0, Priority: 0, C: 5, T: 100},
		{Resource: 0, Priority: 1, C: 9, T: 100},
		{Resource: 0, Priority: 2, C: 3, T: 100},
		{Resource: 1, Priority: 0, C: 50, T: 100}, // other resource: ignored
	}
	if b := MaxLowerC(tasks, 0); b != 9 {
		t.Errorf("B(task0) = %d, want 9", b)
	}
	if b := MaxLowerC(tasks, 1); b != 3 {
		t.Errorf("B(task1) = %d, want 3", b)
	}
	if b := MaxLowerC(tasks, 2); b != 0 {
		t.Errorf("B(task2) = %d, want 0", b)
	}
}

func TestDivergenceClampsAtHorizon(t *testing.T) {
	tasks := []Task{
		{Name: "hp1", Resource: 0, Priority: 0, C: 60, T: 100, Trans: -1},
		{Name: "hp2", Resource: 0, Priority: 1, C: 50, T: 100, Trans: -1},
		{Name: "lp", Resource: 0, Priority: 2, C: 10, T: 100, Trans: -1},
	}
	res, err := Analyze(tasks, Options{Horizon: 1000})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res[2].Converged {
		t.Error("overloaded resource must not converge")
	}
	if res[2].W != 1000 {
		t.Errorf("diverged W = %d, want clamped at 1000", res[2].W)
	}
	u := Utilization(tasks)
	if u[0] <= 1.0 {
		t.Errorf("utilization = %v, want > 1", u[0])
	}
}

func TestValidateTasks(t *testing.T) {
	bad := [][]Task{
		{{C: 0, T: 10}},
		{{C: 1, T: 0}},
		{{C: 1, T: 10, J: -1}},
		{{C: 1, T: 10, Priority: 3}, {C: 1, T: 10, Priority: 3}}, // duplicate prio
	}
	for i, tasks := range bad {
		if _, err := Analyze(tasks, Options{Horizon: 100}); err == nil {
			t.Errorf("case %d: invalid tasks accepted", i)
		}
	}
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestRelOffset(t *testing.T) {
	if got := RelOffset(80, 80, 240, true); got != 0 {
		t.Errorf("RelOffset same = %d", got)
	}
	if got := RelOffset(0, 90, 100, true); got != 90 {
		t.Errorf("RelOffset = %d, want 90", got)
	}
	if got := RelOffset(90, 0, 100, true); got != 10 {
		t.Errorf("RelOffset wrap = %d, want 10", got)
	}
	if got := RelOffset(0, 90, 100, false); got != 0 {
		t.Errorf("RelOffset unrelated = %d, want 0", got)
	}
}

func TestNumArrivals(t *testing.T) {
	cases := []struct{ win, j, o, T, want model.Time }{
		{0, 0, 0, 10, 0},
		{1, 0, 0, 10, 1},
		{10, 0, 0, 10, 1},
		{11, 0, 0, 10, 2},
		{5, 0, 20, 10, 0}, // offset pushes the first arrival out of the window
		{5, 18, 20, 10, 1},
	}
	for _, c := range cases {
		if got := NumArrivals(c.win, c.j, c.o, c.T); got != c.want {
			t.Errorf("NumArrivals(%d,%d,%d,%d) = %d, want %d", c.win, c.j, c.o, c.T, got, c.want)
		}
	}
}

func randomTaskSet(r *rand.Rand) []Task {
	n := 2 + r.Intn(6)
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			Resource: r.Intn(2),
			Priority: i, // unique
			C:        1 + model.Time(r.Intn(5)),
			T:        model.Time(50 * (1 + r.Intn(4))),
			O:        model.Time(r.Intn(40)),
			J:        model.Time(r.Intn(10)),
			B:        model.Time(r.Intn(5)),
			Trans:    r.Intn(2),
		}
	}
	return tasks
}

// Response time must never decrease when C, J or B of any task grows
// (monotonicity of the fixed point).
func TestPropertyMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tasks := randomTaskSet(r)
		res, err := Analyze(tasks, Options{Horizon: hz})
		if err != nil {
			return false
		}
		grown := make([]Task, len(tasks))
		copy(grown, tasks)
		k := r.Intn(len(grown))
		switch r.Intn(3) {
		case 0:
			grown[k].C++
		case 1:
			grown[k].J += 3
		case 2:
			grown[k].B += 2
		}
		res2, err := Analyze(grown, Options{Horizon: hz})
		if err != nil {
			return false
		}
		for i := range res {
			if res2[i].R < res[i].R {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// The response of every task is at least B + C + J, and the highest
// priority preemptable task on a resource has w = B.
func TestPropertyLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tasks := randomTaskSet(r)
		res, err := Analyze(tasks, Options{Horizon: hz})
		if err != nil {
			return false
		}
		for i, task := range tasks {
			if res[i].R < task.B+task.C+task.J {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Fixed point check: plugging W back into the interference sum
// reproduces W exactly (for converged results).
func TestPropertyFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tasks := randomTaskSet(r)
		res, err := Analyze(tasks, Options{Horizon: hz})
		if err != nil {
			return false
		}
		for i, me := range tasks {
			if !res[i].Converged {
				continue
			}
			win := res[i].W
			if !me.NonPreemptive {
				win += me.C
			}
			sum := me.B
			for j, o := range tasks {
				if j == i || o.Resource != me.Resource || o.Priority >= me.Priority {
					continue
				}
				same := o.Trans == me.Trans && o.Trans >= 0
				oij := RelOffset(me.O, o.O, o.T, same)
				sum += CountArrivals(win, o.J, oij, o.T, res[j].R, me.NonPreemptive, same) * o.C
			}
			if sum != res[i].W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestNumQueued(t *testing.T) {
	cases := []struct{ win, j, o, T, want model.Time }{
		{0, 0, 0, 10, 1},  // simultaneous arrival counts
		{9, 0, 0, 10, 1},  // still within the first period
		{10, 0, 0, 10, 2}, // the boundary instance counts too
		{0, 0, 5, 10, 0},  // offset pushes the arrival out
		{-1, 0, 0, 10, 0}, // empty window
	}
	for _, c := range cases {
		if got := NumQueued(c.win, c.j, c.o, c.T); got != c.want {
			t.Errorf("NumQueued(%d,%d,%d,%d) = %d, want %d", c.win, c.j, c.o, c.T, got, c.want)
		}
	}
}

func TestCountArrivalsLingering(t *testing.T) {
	// Same transaction, the interferer released 90 ticks earlier
	// (oij = 10 means "j fires 10 after me"... use oij near T for an
	// earlier phase). j at relative offset 90 of a 100-period: its
	// previous instance fired at -10. With back (response) 15 it can
	// still be pending at my activation, so it must be counted even
	// though the forward window (5) never reaches offset 90.
	if got := CountArrivals(5, 0, 90, 100, 15, false, true); got != 1 {
		t.Errorf("lingering instance not counted: %d", got)
	}
	// With a response of at most 10 it finished exactly at my release.
	if got := CountArrivals(5, 0, 90, 100, 10, false, true); got != 0 {
		t.Errorf("finished instance counted: %d", got)
	}
	// Unrelated tasks: classic count, no backward extension.
	if got := CountArrivals(5, 0, 0, 100, 1000, false, false); got != 1 {
		t.Errorf("unrelated count = %d, want 1", got)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	if floorDiv(-1, 10) != -1 || floorDiv(1, 10) != 0 || floorDiv(-10, 10) != -1 {
		t.Error("floorDiv wrong on negatives")
	}
	if ceilDiv(1, 10) != 1 || ceilDiv(-1, 10) != 0 || ceilDiv(10, 10) != 1 {
		t.Error("ceilDiv wrong")
	}
}
