// Package rta implements the offset-based response-time analysis used on
// the event-triggered cluster (§4.1 of the paper, after Tindell [14, 15]
// and Palencia/González Harbour [10]).
//
// Activities (preemptable processes on ET CPUs, non-preemptable messages
// on the CAN bus) are modelled as Tasks. The worst-case response time of
// task i is
//
//	r_i = J_i + w_i + C_i
//
// where the interference term w_i is the smallest solution of
//
//	w_i = B_i + sum over j in hp(i) of ceil0((win + J_j - O_ij)/T_j) * C_j
//
// with win = w_i for non-preemptable tasks (queuing delay) and
// win = w_i + C_i for preemptable tasks (level-i busy window, so that
// preemptions landing during the task's own execution are counted).
// O_ij is the relative offset of j with respect to i, meaningful only
// when both belong to the same transaction (process graph); unrelated
// tasks have unknown phasing and O_ij = 0. ceil0 clamps at zero.
//
// For non-preemptable tasks the arrival count uses the inclusive form
// floor(x/T)+1 instead of ceil(x/T) (NumQueued vs NumArrivals): a
// higher-priority message entering the queue at the same instant is
// transmitted ahead, which the plain ceil form of the paper would miss
// when offsets are equal and jitters zero.
package rta

import (
	"fmt"

	"repro/internal/model"
)

// Task is one analyzable activity on a shared resource.
type Task struct {
	// Name is used in diagnostics only.
	Name string
	// Resource identifies the CPU or bus; tasks interfere only within
	// one resource.
	Resource int
	// Priority orders tasks on the resource: smaller value = higher
	// priority (CAN identifier convention). Priorities must be unique
	// per resource.
	Priority int
	// C is the WCET (processes) or worst-case transmission time
	// (messages).
	C model.Time
	// T is the period, inherited from the process graph.
	T model.Time
	// O is the offset: the earliest activation relative to the release
	// of the task's transaction.
	O model.Time
	// J is the release jitter: the activation happens in
	// [O, O+J] relative to the transaction release.
	J model.Time
	// B is the blocking factor from lower-priority non-preemptable work.
	B model.Time
	// Trans identifies the transaction (process graph). Offsets are
	// related only inside one transaction; use distinct values (or -1)
	// for independent tasks.
	Trans int
	// NonPreemptive marks CAN messages: once started they cannot be
	// interfered with, so the interference window excludes C.
	NonPreemptive bool
}

// Result is the analysis outcome for one task.
type Result struct {
	// W is the interference/queuing delay w_i.
	W model.Time
	// R is the worst-case response time J_i + w_i + C_i, measured from
	// the earliest activation O_i (i.e. the completion happens no later
	// than transaction release + O_i + R_i).
	R model.Time
	// Converged is false when the fixed point exceeded the horizon
	// (resource overload); W and R are then clamped at the horizon and
	// must be treated as "much too large" rather than exact.
	Converged bool
}

// Options tunes the analysis.
type Options struct {
	// Horizon caps every fixed point; a diverging w is clamped here.
	// Required, must be positive.
	Horizon model.Time
	// Pass1Warm, when non-nil, warm-starts the first-pass interference
	// fixed point of task i at Pass1Warm[i] instead of B_i. Callers must
	// pass a proven lower bound of the first-pass fixed point — e.g. the
	// first-pass W of a task set identical except for pointwise smaller
	// jitters (interference is monotone in J, so the smaller system's
	// fixed point bounds the larger one's from below). Under that
	// contract the results are bit-identical to a cold start; SelfCheck
	// verifies it.
	Pass1Warm []model.Time
}

// SelfCheck, when true, recomputes every warm-started interference
// fixed point from its cold starting point and panics on any mismatch —
// the proof-of-equivalence check of the incremental evaluator. Tests
// and debug builds enable it; it is off in production because it undoes
// the warm start's savings.
var SelfCheck bool

// RelOffset returns O_ij, the phase of task j relative to task i within
// j's period, when both belong to the same transaction; unrelated tasks
// get 0 (unknown phasing, worst case).
func RelOffset(oi, oj, tj model.Time, sameTrans bool) model.Time {
	if !sameTrans {
		return 0
	}
	d := (oj - oi) % tj
	if d < 0 {
		d += tj
	}
	return d
}

// NumArrivals returns ceil0((win + jj - oij)/tj): how many activations of
// a task with jitter jj, relative offset oij and period tj land inside an
// interference window of length win.
func NumArrivals(win, jj, oij, tj model.Time) model.Time {
	num := win + jj - oij
	if num <= 0 {
		return 0
	}
	return (num + tj - 1) / tj
}

// NumQueued returns floor((win + jj - oij)/tj) + 1 when non-negative,
// else 0: how many activations land inside the closed window, counting an
// activation at the very first instant. This is the right count for
// queue-style interference (a message entering a priority queue at the
// same instant as m, with higher priority, is transmitted ahead of m),
// where the paper's ceil form would miss the simultaneous arrival.
func NumQueued(win, jj, oij, tj model.Time) model.Time {
	num := win + jj - oij
	if num < 0 {
		return 0
	}
	return num/tj + 1
}

// CountArrivals is the general interference count used by the analysis:
// the number of instances of an interfering task j (jitter jj, relative
// offset oij, period tj) that can delay a window of length win starting
// at the analyzed task's activation.
//
// For unrelated tasks (sameTrans false) it reduces to the classic
// critical-instant counts NumArrivals (inclusive false) or NumQueued
// (inclusive true).
//
// For tasks of the same transaction the relative offset anchors j's
// releases, and an instance released *before* the window can still be
// pending when the window opens (it lingers for up to back ticks after
// its release, where back is j's response time from the previous
// analysis pass). The paper's single forward window misses such
// lingering instances; the simulator exposed the resulting optimism, so
// the window is extended backward by jj + back.
func CountArrivals(win, jj, oij, tj, back model.Time, inclusive, sameTrans bool) model.Time {
	num := win + jj - oij
	var kmax model.Time
	if inclusive {
		kmax = floorDiv(num, tj)
	} else {
		kmax = ceilDiv(num, tj) - 1
	}
	var kmin model.Time
	if sameTrans {
		// Earliest instance that can still be pending when the window
		// opens; never above 0, because whether the k=0 instance lands
		// inside the window is decided by the forward bound alone.
		kmin = floorDiv(-oij-jj-back, tj) + 1
		if kmin > 0 {
			kmin = 0
		}
	}
	if kmax < kmin {
		return 0
	}
	return kmax - kmin + 1
}

// floorDiv returns floor(a/b) for b > 0 (Go's / truncates toward zero).
func floorDiv(a, b model.Time) model.Time {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv returns ceil(a/b) for b > 0.
func ceilDiv(a, b model.Time) model.Time {
	return floorDiv(a+b-1, b)
}

// maxResponsePasses caps the outer iteration that feeds response times
// back into the lingering-instance windows of same-transaction tasks.
const maxResponsePasses = 64

// Analyze computes the response times of all tasks. The jitters J are
// taken as inputs (the holistic propagation of jitters along process
// graphs is driven by the caller, see internal/core). The returned slice
// is parallel to tasks.
//
// Internally the analysis runs to a global fixed point: the lingering
// window of same-transaction interference (see CountArrivals) needs the
// interferers' response times, which start at zero and grow
// monotonically across passes until stable.
func Analyze(tasks []Task, opt Options) ([]Result, error) {
	res, _, _, err := AnalyzeStable(tasks, opt)
	return res, err
}

// AnalyzeStable is Analyze, additionally reporting whether the global
// fixed point stabilized within the pass budget (stable == false is the
// condition that marks every task unconverged) and the first-pass
// interference delays. The incremental evaluator (internal/core's memo,
// driven by internal/delta) uses the extras: stable keeps the
// all-unconverged marking exact when the task set is analyzed per
// resource, and pass1 seeds the Pass1Warm warm start of near-identical
// task sets.
//
// The per-pass interference fixed points are themselves warm-started
// from the previous pass's values: the response vector grows
// monotonically across passes and the interference count is monotone in
// it, so each pass's least fixed point bounds the next one's from
// below. The pass trajectory — and with it every W/R value, every
// convergence flag and the pass budget — is identical to a cold
// iteration.
func AnalyzeStable(tasks []Task, opt Options) (res []Result, stable bool, pass1 []model.Time, err error) {
	if opt.Horizon <= 0 {
		return nil, false, nil, fmt.Errorf("rta: positive horizon required, got %d", opt.Horizon)
	}
	if err := ValidateTasks(tasks); err != nil {
		return nil, false, nil, err
	}
	if opt.Pass1Warm != nil && len(opt.Pass1Warm) != len(tasks) {
		return nil, false, nil, fmt.Errorf("rta: Pass1Warm has %d entries for %d tasks", len(opt.Pass1Warm), len(tasks))
	}
	res = make([]Result, len(tasks))
	resp := make([]model.Time, len(tasks))
	warm := make([]model.Time, len(tasks))
	for i := range tasks {
		warm[i] = tasks[i].B
		if opt.Pass1Warm != nil && opt.Pass1Warm[i] > warm[i] {
			warm[i] = opt.Pass1Warm[i]
		}
	}
	hp := higherPriorityIndex(tasks)
	for pass := 0; pass < maxResponsePasses; pass++ {
		changed := false
		for i := range tasks {
			res[i] = analyzeOne(tasks, i, opt.Horizon, resp, hp[i], warm[i])
			if SelfCheck && warm[i] > tasks[i].B {
				cold := analyzeOne(tasks, i, opt.Horizon, resp, hp[i], tasks[i].B)
				if cold != res[i] {
					panic(fmt.Sprintf("rta: warm start of task %s diverged from cold start: warm %+v, cold %+v", name(tasks[i], i), res[i], cold))
				}
			}
			warm[i] = res[i].W
		}
		if pass == 0 {
			pass1 = make([]model.Time, len(tasks))
			for i := range res {
				pass1[i] = res[i].W
			}
		}
		for i := range res {
			if res[i].R != resp[i] {
				resp[i] = res[i].R
				changed = true
			}
		}
		if !changed {
			return res, true, pass1, nil
		}
	}
	for i := range res {
		res[i].Converged = false
	}
	return res, false, pass1, nil
}

// higherPriorityIndex precomputes, per task, the indices of the tasks
// that can interfere with it (same resource, higher priority), so the
// fixed-point loops touch only relevant tasks.
func higherPriorityIndex(tasks []Task) [][]int {
	hp := make([][]int, len(tasks))
	for i := range tasks {
		for j := range tasks {
			if j == i || tasks[j].Resource != tasks[i].Resource {
				continue
			}
			if higher(&tasks[j], &tasks[i]) {
				hp[i] = append(hp[i], j)
			}
		}
	}
	return hp
}

// ValidateTasks checks the structural requirements: positive C and T,
// non-negative J/B/O, unique priorities per resource.
func ValidateTasks(tasks []Task) error {
	type key struct{ res, prio int }
	seen := make(map[key]string, len(tasks))
	for i, t := range tasks {
		if t.C <= 0 {
			return fmt.Errorf("rta: task %s has non-positive C %d", name(t, i), t.C)
		}
		if t.T <= 0 {
			return fmt.Errorf("rta: task %s has non-positive T %d", name(t, i), t.T)
		}
		if t.J < 0 || t.B < 0 || t.O < 0 {
			return fmt.Errorf("rta: task %s has negative J/B/O", name(t, i))
		}
		k := key{t.Resource, t.Priority}
		if prev, dup := seen[k]; dup {
			return fmt.Errorf("rta: tasks %s and %s share priority %d on resource %d", prev, name(t, i), t.Priority, t.Resource)
		}
		seen[k] = name(t, i)
	}
	return nil
}

func name(t Task, i int) string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("#%d", i)
}

// analyzeOne solves the interference fixed point of task i under the
// current response vector, iterating from the warm starting point
// (warm == B_i for a cold start). Any warm value at or below the least
// fixed point yields the identical result: the iteration is monotone
// non-decreasing and every iterate stays bounded by the fixed point, so
// the horizon test and the converged flag cannot trigger differently.
func analyzeOne(tasks []Task, i int, horizon model.Time, resp []model.Time, hp []int, warm model.Time) Result {
	me := tasks[i]
	w := me.B
	if warm > w {
		w = warm
	}
	// Termination needs no iteration guard: below the least fixed point
	// every iterate strictly increases (f(w) <= w would make w a prefix
	// point below the least fixed point), so the loop either reaches the
	// fixed point or crosses the horizon within horizon steps.
	for {
		win := w
		if !me.NonPreemptive {
			win += me.C
		}
		next := me.B
		for _, j := range hp {
			o := &tasks[j]
			same := o.Trans == me.Trans && o.Trans >= 0
			oij := RelOffset(me.O, o.O, o.T, same)
			next += CountArrivals(win, o.J, oij, o.T, resp[j], me.NonPreemptive, same) * o.C
		}
		if next == w {
			return Result{W: w, R: me.J + w + me.C, Converged: true}
		}
		if next > horizon {
			return Result{W: horizon, R: me.J + horizon + me.C, Converged: false}
		}
		w = next
	}
}

func higher(a, b *Task) bool { return a.Priority < b.Priority }

// Utilization returns the load of each resource as sum(C/T).
func Utilization(tasks []Task) map[int]float64 {
	u := make(map[int]float64)
	for _, t := range tasks {
		u[t.Resource] += float64(t.C) / float64(t.T)
	}
	return u
}

// MaxLowerC returns the blocking factor B_m = max over lower-priority
// tasks on the same resource of C_k, the paper's CAN blocking term.
func MaxLowerC(tasks []Task, i int) model.Time {
	me := tasks[i]
	var b model.Time
	for j := range tasks {
		if j == i || tasks[j].Resource != me.Resource {
			continue
		}
		if higher(&me, &tasks[j]) && tasks[j].C > b {
			b = tasks[j].C
		}
	}
	return b
}
