// Package expt reproduces every table and figure of the paper's
// evaluation (§6): the Fig. 9a degree-of-schedulability comparison, the
// Fig. 9b/9c buffer-need comparisons, the run-time comparison, the
// cruise-controller case study, and the Fig. 4 worked example. Each
// experiment returns structured rows plus a formatted table.
//
// The default parameters are scaled down from the paper's (which used 30
// applications per point and hours of simulated annealing); the cmd
// mcs-experiments tool exposes flags to run at full scale, including
// -workers to fan the sweep cells out across the evaluation engine.
package expt

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sa"
	"repro/internal/solve"
)

// Options parameterizes the experiment sweeps.
type Options struct {
	// Sizes lists the node counts of the Fig. 9a/9b sweeps
	// (default {2, 4}; the paper uses {2, 4, 6, 8, 10}).
	Sizes []int
	// Seeds is the number of random applications per point
	// (default 3; the paper uses 30).
	Seeds int
	// Inter lists the Fig. 9c inter-cluster message counts
	// (default {10, 20, 30}; the paper uses {10, 20, 30, 40, 50}).
	Inter []int
	// SAIterations bounds each simulated-annealing run (default 150;
	// the paper let SA run for hours).
	SAIterations int
	// OR tunes the OptimizeResources runs.
	OR opt.OROptions
	// Workers bounds the concurrently evaluated experiment cells — one
	// cell is one (size or traffic point, seed) pair, generated and
	// synthesized independently (default 1 = serial; mcs-experiments
	// passes runtime.NumCPU() through -workers). Within a cell the
	// optimizers run serially, so the pool is never oversubscribed, and
	// rows and progress output are identical for every worker count.
	Workers int
	// Progress, when non-nil, receives one line per completed step.
	// Lines are emitted during the deterministic reduction, in the same
	// order as a serial run.
	Progress io.Writer
}

func (o *Options) defaults() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{2, 4}
	}
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if len(o.Inter) == 0 {
		o.Inter = []int{10, 20, 30}
	}
	if o.SAIterations <= 0 {
		o.SAIterations = 150
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
}

// cellSolver builds the per-cell synthesis session of a sweep: serial
// (the sweep already parallelizes at cell grain), tuned by the sweep's
// OR options and SA budget, caching the cell system's derived state
// across the several algorithms each cell runs.
func cellSolver(app *model.Application, arch *model.Architecture, opts *Options, workers int) (*solve.Solver, error) {
	return solve.New(app, arch,
		solve.WithWorkers(workers),
		solve.WithOROptions(opts.OR),
		solve.WithSAIterations(opts.SAIterations))
}

// gridSweep fans one job per (point, seed) cell of a sweep out across
// the engine pool and returns the cells as [point][seed-1], failing
// with the first error in cell order (what a serial sweep would have
// hit first). Each cell must be self-contained: it generates its own
// system and synthesizes it, sharing nothing with its neighbours.
// Cancelling ctx aborts the sweep with ctx's error.
//
// onCell, when non-nil, is the live progress hook: it runs once per
// successful cell, in strict cell order, as soon as the cell and all
// its predecessors have finished — so -progress lines appear while the
// sweep is still running, yet read exactly like a serial run's.
func gridSweep[T any](ctx context.Context, opts *Options, points int, fn func(ctx context.Context, point int, seed int64) (T, error), onCell func(point int, seed int64, v T)) ([][]T, error) {
	n := points * opts.Seeds
	type slot struct {
		v   T
		err error
	}
	slots := make([]slot, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	// A failed cell cancels the sweep so unstarted cells are skipped
	// instead of burning hours of compute after a doomed run; the
	// caller's ctx cancels for the same effect from outside.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make([]func(context.Context) (struct{}, error), 0, n)
	for pi := 0; pi < points; pi++ {
		for seed := int64(1); seed <= int64(opts.Seeds); seed++ {
			pi, seed, i := pi, seed, len(jobs)
			jobs = append(jobs, func(jctx context.Context) (struct{}, error) {
				v, err := fn(jctx, pi, seed)
				slots[i] = slot{v: v, err: err}
				if err != nil {
					cancel()
				}
				close(done[i])
				return struct{}{}, nil
			})
		}
	}
	// The streamer walks the cells in order, emitting each as it
	// completes; an errored (or skipped) cell ends the stream where a
	// serial sweep would have aborted. close(done[i]) happens-before
	// <-done[i], so reading slots[i] here is race-free.
	streamed := make(chan struct{})
	// The cell fan-out itself rides engine.Sweep below; this goroutine
	// is the ordered live-progress consumer running beside it, which a
	// job-shaped pool cannot express.
	//mcs:allow poolonly ordered progress streamer consuming cell completions beside the engine.Sweep fan-out
	go func() {
		defer close(streamed)
		for i := 0; i < n; i++ {
			<-done[i]
			if slots[i].err != nil {
				return
			}
			if onCell != nil {
				onCell(i/opts.Seeds, int64(i%opts.Seeds)+1, slots[i].v)
			}
		}
	}()
	res, _ := engine.Sweep(ctx, engine.New(opts.Workers), jobs)
	// A cell the engine skipped after cancellation never ran its job,
	// so its done channel is still open — record the skip and close it
	// here, or the streamer (and this function) would wait forever.
	// Jobs themselves never return an error, so res[i].Err is non-nil
	// exactly for skipped cells.
	for i := range res {
		if res[i].Err != nil {
			slots[i].err = res[i].Err
			close(done[i])
		}
	}
	<-streamed
	// Fail with the first genuine cell error; skipped cells exist only
	// because some cell failed, so one is always found. (When several
	// cells fail in one sweep, which one is first can differ from a
	// serial run if an earlier cell was skipped — every error path
	// aborts the experiment either way.)
	for i := range slots {
		if slots[i].err != nil && res[i].Err == nil {
			return nil, slots[i].err
		}
	}
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
	}
	out := make([][]T, points)
	k := 0
	for pi := range out {
		out[pi] = make([]T, opts.Seeds)
		for s := range out[pi] {
			out[pi][s] = slots[k].v
			k++
		}
	}
	return out, nil
}

func (o *Options) progressf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// deviationPct returns 100*(value-best)/max(1,|best|).
func deviationPct(value, best float64) float64 {
	den := best
	if den < 0 {
		den = -den
	}
	if den < 1 {
		den = 1
	}
	return 100 * (value - best) / den
}

// bestSA runs the annealer twice - from the SF baseline and from the OS
// best - and keeps the better outcome. This stands in for the paper's
// "very long and expensive runs ... the best ever solution produced has
// been considered a close to the optimum value". The chains are
// independent and run across an engine pool of workers goroutines
// (pass 1 from inside an already-parallel sweep cell); the reduction
// keeps chain order, so the outcome does not depend on the pool size.
func bestSA(ctx context.Context, sv *solve.Solver, osBest *opt.Result, obj sa.Objective, iters int, seed int64, workers int) (*opt.Result, int, error) {
	app, arch := sv.Application(), sv.Architecture()
	sf, err := sv.Straightforward(ctx)
	if err != nil {
		return nil, 0, err
	}
	runs := []*core.Config{sf.Config}
	if osBest != nil {
		runs = append(runs, osBest.Config)
	}
	jobs := make([]func(context.Context) (*sa.Result, error), len(runs))
	for i, init := range runs {
		i, init := i, init
		jobs[i] = func(jctx context.Context) (*sa.Result, error) {
			return sa.Run(jctx, app, arch, init, sa.Options{
				Objective: obj, Iterations: iters, Seed: seed + int64(i),
			})
		}
	}
	chains, _ := engine.Sweep(ctx, engine.New(workers), jobs)
	evals := 0
	var best *opt.Result
	for _, c := range chains {
		if c.Err != nil {
			return nil, 0, c.Err
		}
		evals += c.Value.Evaluations
		if best == nil || saBetter(obj, c.Value.Best, best) {
			best = c.Value.Best
		}
	}
	return best, evals, nil
}

func saBetter(obj sa.Objective, a, b *opt.Result) bool {
	switch obj {
	case sa.MinimizeDelta:
		return a.Delta() < b.Delta()
	default:
		if a.Schedulable() != b.Schedulable() {
			return a.Schedulable()
		}
		if !a.Schedulable() {
			return a.Delta() < b.Delta()
		}
		return a.STotal() < b.STotal()
	}
}

// Fig9aRow is one point of Fig. 9a: the average percentage deviation of
// the degree of schedulability from the SAS near-optimum, over the
// examples where all three algorithms found schedulable systems.
type Fig9aRow struct {
	Nodes, Procs int
	// Count is the number of generated applications; Usable the number
	// where SF, OS and SAS all produced schedulable systems.
	Count, Usable int
	// SFFail / OSFail / SASFail count unschedulable outcomes.
	SFFail, OSFail, SASFail int
	// SFDev / OSDev are the average percentage deviations from SAS.
	SFDev, OSDev float64
}

// Fig9a runs the degree-of-schedulability experiment. Cells fan out
// across opts.Workers goroutines; the row reduction is serial and in
// cell order. Each cell drives one Solver session, so the three
// algorithms of the cell share the derived state of its system.
func Fig9a(ctx context.Context, opts Options) ([]Fig9aRow, error) {
	opts.defaults()
	type cell struct {
		sf, os, sas *opt.Result
	}
	cells, err := gridSweep(ctx, &opts, len(opts.Sizes), func(ctx context.Context, pi int, seed int64) (cell, error) {
		sys, err := gen.Paper(opts.Sizes[pi], seed)
		if err != nil {
			return cell{}, err
		}
		sv, err := cellSolver(sys.Application, sys.Architecture, &opts, 1)
		if err != nil {
			return cell{}, err
		}
		sf, err := sv.Straightforward(ctx)
		if err != nil {
			return cell{}, err
		}
		osres, err := sv.OptimizeSchedule(ctx)
		if err != nil {
			return cell{}, err
		}
		sas, _, err := bestSA(ctx, sv, osres.Best, sa.MinimizeDelta, opts.SAIterations, seed, 1)
		if err != nil {
			return cell{}, err
		}
		return cell{sf: sf, os: osres.Best, sas: sas}, nil
	}, func(pi int, seed int64, c cell) {
		opts.progressf("fig9a nodes=%d seed=%d: SF=%d OS=%d SAS=%d", opts.Sizes[pi], seed, c.sf.Delta(), c.os.Delta(), c.sas.Delta())
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig9aRow
	for pi, nodes := range opts.Sizes {
		row := Fig9aRow{Nodes: nodes, Procs: 40 * nodes}
		var sfSum, osSum float64
		for _, c := range cells[pi] {
			row.Count++
			if !c.sf.Schedulable() {
				row.SFFail++
			}
			if !c.os.Schedulable() {
				row.OSFail++
			}
			if !c.sas.Schedulable() {
				row.SASFail++
			}
			if c.sf.Schedulable() && c.os.Schedulable() && c.sas.Schedulable() {
				row.Usable++
				sfSum += deviationPct(float64(c.sf.Delta()), float64(c.sas.Delta()))
				osSum += deviationPct(float64(c.os.Delta()), float64(c.sas.Delta()))
			}
		}
		if row.Usable > 0 {
			row.SFDev = sfSum / float64(row.Usable)
			row.OSDev = osSum / float64(row.Usable)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9a renders the rows like the paper's Fig. 9a.
func PrintFig9a(w io.Writer, rows []Fig9aRow) {
	fmt.Fprintln(w, "Fig 9a - avg % deviation of delta_Gamma from SAS (lower is better)")
	fmt.Fprintf(w, "%8s %8s %10s %10s %8s %8s %8s %8s\n", "procs", "apps", "SF dev%", "OS dev%", "usable", "SFfail", "OSfail", "SASfail")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %10.1f %10.1f %8d %8d %8d %8d\n",
			r.Procs, r.Count, r.SFDev, r.OSDev, r.Usable, r.SFFail, r.OSFail, r.SASFail)
	}
}

// Fig9bRow is one point of Fig. 9b: the average total buffer need.
type Fig9bRow struct {
	Nodes, Procs         int
	Count, Usable        int
	OSAvg, ORAvg, SARAvg float64
}

// Fig9b runs the buffer-need experiment over application sizes, with
// the (size, seed) cells fanned out across opts.Workers goroutines.
func Fig9b(ctx context.Context, opts Options) ([]Fig9bRow, error) {
	opts.defaults()
	type cell struct {
		os, or, sar *opt.Result
	}
	cells, err := gridSweep(ctx, &opts, len(opts.Sizes), func(ctx context.Context, pi int, seed int64) (cell, error) {
		sys, err := gen.Paper(opts.Sizes[pi], seed)
		if err != nil {
			return cell{}, err
		}
		sv, err := cellSolver(sys.Application, sys.Architecture, &opts, 1)
		if err != nil {
			return cell{}, err
		}
		orres, err := sv.OptimizeResources(ctx)
		if err != nil {
			return cell{}, err
		}
		sar, _, err := bestSA(ctx, sv, orres.OS.Best, sa.MinimizeBuffers, opts.SAIterations, seed, 1)
		if err != nil {
			return cell{}, err
		}
		return cell{os: orres.OS.Best, or: orres.Best, sar: sar}, nil
	}, func(pi int, seed int64, c cell) {
		opts.progressf("fig9b nodes=%d seed=%d: OS=%d OR=%d SAR=%d", opts.Sizes[pi], seed, c.os.STotal(), c.or.STotal(), c.sar.STotal())
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig9bRow
	for pi, nodes := range opts.Sizes {
		row := Fig9bRow{Nodes: nodes, Procs: 40 * nodes}
		var osSum, orSum, sarSum float64
		for _, c := range cells[pi] {
			row.Count++
			if c.os.Schedulable() && c.or.Schedulable() && c.sar.Schedulable() {
				row.Usable++
				osSum += float64(c.os.STotal())
				orSum += float64(c.or.STotal())
				sarSum += float64(c.sar.STotal())
			}
		}
		if row.Usable > 0 {
			row.OSAvg = osSum / float64(row.Usable)
			row.ORAvg = orSum / float64(row.Usable)
			row.SARAvg = sarSum / float64(row.Usable)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9b renders the rows like the paper's Fig. 9b.
func PrintFig9b(w io.Writer, rows []Fig9bRow) {
	fmt.Fprintln(w, "Fig 9b - average total buffer need s_total (bytes; lower is better)")
	fmt.Fprintf(w, "%8s %8s %10s %10s %10s %8s\n", "procs", "apps", "OS", "OR", "SAR", "usable")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %10.0f %10.0f %10.0f %8d\n", r.Procs, r.Count, r.OSAvg, r.ORAvg, r.SARAvg, r.Usable)
	}
}

// Fig9cRow is one point of Fig. 9c: buffer-need deviation from SAR as
// the inter-cluster traffic grows (160-process applications).
type Fig9cRow struct {
	Inter         int
	Count, Usable int
	OSDev, ORDev  float64
}

// Fig9c runs the inter-cluster traffic experiment, with the (traffic,
// seed) cells fanned out across opts.Workers goroutines.
func Fig9c(ctx context.Context, opts Options) ([]Fig9cRow, error) {
	opts.defaults()
	type cell struct {
		os, or, sar *opt.Result
	}
	cells, err := gridSweep(ctx, &opts, len(opts.Inter), func(ctx context.Context, pi int, seed int64) (cell, error) {
		sys, err := gen.Fig9c(opts.Inter[pi], seed)
		if err != nil {
			return cell{}, err
		}
		sv, err := cellSolver(sys.Application, sys.Architecture, &opts, 1)
		if err != nil {
			return cell{}, err
		}
		orres, err := sv.OptimizeResources(ctx)
		if err != nil {
			return cell{}, err
		}
		sar, _, err := bestSA(ctx, sv, orres.OS.Best, sa.MinimizeBuffers, opts.SAIterations, seed, 1)
		if err != nil {
			return cell{}, err
		}
		return cell{os: orres.OS.Best, or: orres.Best, sar: sar}, nil
	}, func(pi int, seed int64, c cell) {
		opts.progressf("fig9c inter=%d seed=%d: OS=%d OR=%d SAR=%d", opts.Inter[pi], seed, c.os.STotal(), c.or.STotal(), c.sar.STotal())
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig9cRow
	for pi, inter := range opts.Inter {
		row := Fig9cRow{Inter: inter}
		var osSum, orSum float64
		for _, c := range cells[pi] {
			row.Count++
			if c.os.Schedulable() && c.or.Schedulable() && c.sar.Schedulable() {
				row.Usable++
				osSum += deviationPct(float64(c.os.STotal()), float64(c.sar.STotal()))
				orSum += deviationPct(float64(c.or.STotal()), float64(c.sar.STotal()))
			}
		}
		if row.Usable > 0 {
			row.OSDev = osSum / float64(row.Usable)
			row.ORDev = orSum / float64(row.Usable)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9c renders the rows like the paper's Fig. 9c.
func PrintFig9c(w io.Writer, rows []Fig9cRow) {
	fmt.Fprintln(w, "Fig 9c - avg % deviation of s_total from SAR vs inter-cluster traffic")
	fmt.Fprintf(w, "%8s %8s %10s %10s %8s\n", "msgs", "apps", "OS dev%", "OR dev%", "usable")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %10.1f %10.1f %8d\n", r.Inter, r.Count, r.OSDev, r.ORDev, r.Usable)
	}
}

// RuntimeRow reports wall-clock times of the heuristics vs the SA
// baselines on one generated application.
type RuntimeRow struct {
	Nodes, Procs         int
	SF, OS, OR, SAS, SAR time.Duration
}

// timed measures one synthesis step for the run-time comparison. It is
// the only wall-clock site of the package: durations are the
// experiment's *output*, reported in the table and never fed back into
// configs, seeds, or results — keeping the timing audit a one-liner.
func timed(step func() error) (time.Duration, error) {
	t0 := time.Now() //mcs:allow wallclock run-time table reports wall-clock; durations never feed results
	err := step()
	return time.Since(t0), err //mcs:allow wallclock same reporting-only measurement as above
}

// Runtimes measures the §6 execution-time comparison. It deliberately
// ignores opts.Workers and runs everything serially: the point of the
// experiment is the wall-clock cost of each algorithm, which concurrent
// neighbours would distort. One Solver serves all algorithms of a size,
// so the comparison includes the session-cache effect a service would
// see.
func Runtimes(ctx context.Context, opts Options) ([]RuntimeRow, error) {
	opts.defaults()
	var rows []RuntimeRow
	for _, nodes := range opts.Sizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sys, err := gen.Paper(nodes, 1)
		if err != nil {
			return nil, err
		}
		sv, err := cellSolver(sys.Application, sys.Architecture, &opts, 1)
		if err != nil {
			return nil, err
		}
		row := RuntimeRow{Nodes: nodes, Procs: 40 * nodes}
		var osres *opt.OSResult
		steps := []struct {
			d   *time.Duration
			run func() error
		}{
			{&row.SF, func() error { _, err := sv.Straightforward(ctx); return err }},
			{&row.OS, func() error { var err error; osres, err = sv.OptimizeSchedule(ctx); return err }},
			{&row.OR, func() error { _, err := sv.OptimizeResources(ctx); return err }},
			{&row.SAS, func() error {
				_, _, err := bestSA(ctx, sv, osres.Best, sa.MinimizeDelta, opts.SAIterations, 1, 1)
				return err
			}},
			{&row.SAR, func() error {
				_, _, err := bestSA(ctx, sv, osres.Best, sa.MinimizeBuffers, opts.SAIterations, 1, 1)
				return err
			}},
		}
		for _, s := range steps {
			d, err := timed(s.run)
			if err != nil {
				return nil, err
			}
			*s.d = d
		}
		opts.progressf("runtime nodes=%d done", nodes)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintRuntimes renders the run-time comparison.
func PrintRuntimes(w io.Writer, rows []RuntimeRow, saIters int) {
	fmt.Fprintf(w, "Run times (SA limited to %d iterations here; the paper ran SA for hours)\n", saIters)
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s %12s\n", "procs", "SF", "OS", "OR", "SAS", "SAR")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12v %12v %12v %12v %12v\n",
			r.Procs, r.SF.Round(time.Millisecond), r.OS.Round(time.Millisecond),
			r.OR.Round(time.Millisecond), r.SAS.Round(time.Millisecond), r.SAR.Round(time.Millisecond))
	}
}
