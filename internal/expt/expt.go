// Package expt reproduces every table and figure of the paper's
// evaluation (§6): the Fig. 9a degree-of-schedulability comparison, the
// Fig. 9b/9c buffer-need comparisons, the run-time comparison, the
// cruise-controller case study, and the Fig. 4 worked example. Each
// experiment returns structured rows plus a formatted table.
//
// The default parameters are scaled down from the paper's (which used 30
// applications per point and hours of simulated annealing); the cmd
// mcs-experiments tool exposes flags to run at full scale. EXPERIMENTS.md
// records the measured outcomes next to the published ones.
package expt

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sa"
)

// Options parameterizes the experiment sweeps.
type Options struct {
	// Sizes lists the node counts of the Fig. 9a/9b sweeps
	// (default {2, 4}; the paper uses {2, 4, 6, 8, 10}).
	Sizes []int
	// Seeds is the number of random applications per point
	// (default 3; the paper uses 30).
	Seeds int
	// Inter lists the Fig. 9c inter-cluster message counts
	// (default {10, 20, 30}; the paper uses {10, 20, 30, 40, 50}).
	Inter []int
	// SAIterations bounds each simulated-annealing run (default 150;
	// the paper let SA run for hours).
	SAIterations int
	// OR tunes the OptimizeResources runs.
	OR opt.OROptions
	// Progress, when non-nil, receives one line per completed step.
	Progress io.Writer
}

func (o *Options) defaults() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{2, 4}
	}
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if len(o.Inter) == 0 {
		o.Inter = []int{10, 20, 30}
	}
	if o.SAIterations <= 0 {
		o.SAIterations = 150
	}
}

func (o *Options) progressf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// deviationPct returns 100*(value-best)/max(1,|best|).
func deviationPct(value, best float64) float64 {
	den := best
	if den < 0 {
		den = -den
	}
	if den < 1 {
		den = 1
	}
	return 100 * (value - best) / den
}

// bestSA runs the annealer twice - from the SF baseline and from the OS
// best - and keeps the better outcome. This stands in for the paper's
// "very long and expensive runs ... the best ever solution produced has
// been considered a close to the optimum value".
func bestSA(app *model.Application, arch *model.Architecture, osBest *opt.Result, obj sa.Objective, iters int, seed int64) (*opt.Result, int, error) {
	evals := 0
	sf, err := opt.Straightforward(app, arch)
	if err != nil {
		return nil, 0, err
	}
	runs := []*core.Config{sf.Config}
	if osBest != nil {
		runs = append(runs, osBest.Config)
	}
	var best *opt.Result
	for i, init := range runs {
		res, err := sa.Run(app, arch, init, sa.Options{
			Objective: obj, Iterations: iters, Seed: seed + int64(i),
		})
		if err != nil {
			return nil, 0, err
		}
		evals += res.Evaluations
		if best == nil || saBetter(obj, res.Best, best) {
			best = res.Best
		}
	}
	return best, evals, nil
}

func saBetter(obj sa.Objective, a, b *opt.Result) bool {
	switch obj {
	case sa.MinimizeDelta:
		return a.Delta() < b.Delta()
	default:
		if a.Schedulable() != b.Schedulable() {
			return a.Schedulable()
		}
		if !a.Schedulable() {
			return a.Delta() < b.Delta()
		}
		return a.STotal() < b.STotal()
	}
}

// Fig9aRow is one point of Fig. 9a: the average percentage deviation of
// the degree of schedulability from the SAS near-optimum, over the
// examples where all three algorithms found schedulable systems.
type Fig9aRow struct {
	Nodes, Procs int
	// Count is the number of generated applications; Usable the number
	// where SF, OS and SAS all produced schedulable systems.
	Count, Usable int
	// SFFail / OSFail / SASFail count unschedulable outcomes.
	SFFail, OSFail, SASFail int
	// SFDev / OSDev are the average percentage deviations from SAS.
	SFDev, OSDev float64
}

// Fig9a runs the degree-of-schedulability experiment.
func Fig9a(opts Options) ([]Fig9aRow, error) {
	opts.defaults()
	var rows []Fig9aRow
	for _, nodes := range opts.Sizes {
		row := Fig9aRow{Nodes: nodes, Procs: 40 * nodes}
		var sfSum, osSum float64
		for seed := int64(1); seed <= int64(opts.Seeds); seed++ {
			sys, err := gen.Paper(nodes, seed)
			if err != nil {
				return nil, err
			}
			app, arch := sys.Application, sys.Architecture
			row.Count++
			sf, err := opt.Straightforward(app, arch)
			if err != nil {
				return nil, err
			}
			osres, err := opt.OptimizeSchedule(app, arch, opts.OR.OS)
			if err != nil {
				return nil, err
			}
			sas, _, err := bestSA(app, arch, osres.Best, sa.MinimizeDelta, opts.SAIterations, seed)
			if err != nil {
				return nil, err
			}
			if !sf.Schedulable() {
				row.SFFail++
			}
			if !osres.Best.Schedulable() {
				row.OSFail++
			}
			if !sas.Schedulable() {
				row.SASFail++
			}
			opts.progressf("fig9a nodes=%d seed=%d: SF=%d OS=%d SAS=%d", nodes, seed, sf.Delta(), osres.Best.Delta(), sas.Delta())
			if sf.Schedulable() && osres.Best.Schedulable() && sas.Schedulable() {
				row.Usable++
				sfSum += deviationPct(float64(sf.Delta()), float64(sas.Delta()))
				osSum += deviationPct(float64(osres.Best.Delta()), float64(sas.Delta()))
			}
		}
		if row.Usable > 0 {
			row.SFDev = sfSum / float64(row.Usable)
			row.OSDev = osSum / float64(row.Usable)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9a renders the rows like the paper's Fig. 9a.
func PrintFig9a(w io.Writer, rows []Fig9aRow) {
	fmt.Fprintln(w, "Fig 9a - avg % deviation of delta_Gamma from SAS (lower is better)")
	fmt.Fprintf(w, "%8s %8s %10s %10s %8s %8s %8s %8s\n", "procs", "apps", "SF dev%", "OS dev%", "usable", "SFfail", "OSfail", "SASfail")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %10.1f %10.1f %8d %8d %8d %8d\n",
			r.Procs, r.Count, r.SFDev, r.OSDev, r.Usable, r.SFFail, r.OSFail, r.SASFail)
	}
}

// Fig9bRow is one point of Fig. 9b: the average total buffer need.
type Fig9bRow struct {
	Nodes, Procs         int
	Count, Usable        int
	OSAvg, ORAvg, SARAvg float64
}

// Fig9b runs the buffer-need experiment over application sizes.
func Fig9b(opts Options) ([]Fig9bRow, error) {
	opts.defaults()
	var rows []Fig9bRow
	for _, nodes := range opts.Sizes {
		row := Fig9bRow{Nodes: nodes, Procs: 40 * nodes}
		var osSum, orSum, sarSum float64
		for seed := int64(1); seed <= int64(opts.Seeds); seed++ {
			sys, err := gen.Paper(nodes, seed)
			if err != nil {
				return nil, err
			}
			app, arch := sys.Application, sys.Architecture
			row.Count++
			orres, err := opt.OptimizeResources(app, arch, opts.OR)
			if err != nil {
				return nil, err
			}
			osBest := orres.OS.Best
			sar, _, err := bestSA(app, arch, osBest, sa.MinimizeBuffers, opts.SAIterations, seed)
			if err != nil {
				return nil, err
			}
			opts.progressf("fig9b nodes=%d seed=%d: OS=%d OR=%d SAR=%d", nodes, seed, osBest.STotal(), orres.Best.STotal(), sar.STotal())
			if osBest.Schedulable() && orres.Best.Schedulable() && sar.Schedulable() {
				row.Usable++
				osSum += float64(osBest.STotal())
				orSum += float64(orres.Best.STotal())
				sarSum += float64(sar.STotal())
			}
		}
		if row.Usable > 0 {
			row.OSAvg = osSum / float64(row.Usable)
			row.ORAvg = orSum / float64(row.Usable)
			row.SARAvg = sarSum / float64(row.Usable)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9b renders the rows like the paper's Fig. 9b.
func PrintFig9b(w io.Writer, rows []Fig9bRow) {
	fmt.Fprintln(w, "Fig 9b - average total buffer need s_total (bytes; lower is better)")
	fmt.Fprintf(w, "%8s %8s %10s %10s %10s %8s\n", "procs", "apps", "OS", "OR", "SAR", "usable")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %10.0f %10.0f %10.0f %8d\n", r.Procs, r.Count, r.OSAvg, r.ORAvg, r.SARAvg, r.Usable)
	}
}

// Fig9cRow is one point of Fig. 9c: buffer-need deviation from SAR as
// the inter-cluster traffic grows (160-process applications).
type Fig9cRow struct {
	Inter         int
	Count, Usable int
	OSDev, ORDev  float64
}

// Fig9c runs the inter-cluster traffic experiment.
func Fig9c(opts Options) ([]Fig9cRow, error) {
	opts.defaults()
	var rows []Fig9cRow
	for _, inter := range opts.Inter {
		row := Fig9cRow{Inter: inter}
		var osSum, orSum float64
		for seed := int64(1); seed <= int64(opts.Seeds); seed++ {
			sys, err := gen.Fig9c(inter, seed)
			if err != nil {
				return nil, err
			}
			app, arch := sys.Application, sys.Architecture
			row.Count++
			orres, err := opt.OptimizeResources(app, arch, opts.OR)
			if err != nil {
				return nil, err
			}
			osBest := orres.OS.Best
			sar, _, err := bestSA(app, arch, osBest, sa.MinimizeBuffers, opts.SAIterations, seed)
			if err != nil {
				return nil, err
			}
			opts.progressf("fig9c inter=%d seed=%d: OS=%d OR=%d SAR=%d", inter, seed, osBest.STotal(), orres.Best.STotal(), sar.STotal())
			if osBest.Schedulable() && orres.Best.Schedulable() && sar.Schedulable() {
				row.Usable++
				osSum += deviationPct(float64(osBest.STotal()), float64(sar.STotal()))
				orSum += deviationPct(float64(orres.Best.STotal()), float64(sar.STotal()))
			}
		}
		if row.Usable > 0 {
			row.OSDev = osSum / float64(row.Usable)
			row.ORDev = orSum / float64(row.Usable)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9c renders the rows like the paper's Fig. 9c.
func PrintFig9c(w io.Writer, rows []Fig9cRow) {
	fmt.Fprintln(w, "Fig 9c - avg % deviation of s_total from SAR vs inter-cluster traffic")
	fmt.Fprintf(w, "%8s %8s %10s %10s %8s\n", "msgs", "apps", "OS dev%", "OR dev%", "usable")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %10.1f %10.1f %8d\n", r.Inter, r.Count, r.OSDev, r.ORDev, r.Usable)
	}
}

// RuntimeRow reports wall-clock times of the heuristics vs the SA
// baselines on one generated application.
type RuntimeRow struct {
	Nodes, Procs         int
	SF, OS, OR, SAS, SAR time.Duration
}

// Runtimes measures the §6 execution-time comparison.
func Runtimes(opts Options) ([]RuntimeRow, error) {
	opts.defaults()
	var rows []RuntimeRow
	for _, nodes := range opts.Sizes {
		sys, err := gen.Paper(nodes, 1)
		if err != nil {
			return nil, err
		}
		app, arch := sys.Application, sys.Architecture
		row := RuntimeRow{Nodes: nodes, Procs: 40 * nodes}
		t0 := time.Now()
		if _, err := opt.Straightforward(app, arch); err != nil {
			return nil, err
		}
		row.SF = time.Since(t0)
		t0 = time.Now()
		osres, err := opt.OptimizeSchedule(app, arch, opts.OR.OS)
		if err != nil {
			return nil, err
		}
		row.OS = time.Since(t0)
		t0 = time.Now()
		if _, err := opt.OptimizeResources(app, arch, opts.OR); err != nil {
			return nil, err
		}
		row.OR = time.Since(t0)
		t0 = time.Now()
		if _, _, err := bestSA(app, arch, osres.Best, sa.MinimizeDelta, opts.SAIterations, 1); err != nil {
			return nil, err
		}
		row.SAS = time.Since(t0)
		t0 = time.Now()
		if _, _, err := bestSA(app, arch, osres.Best, sa.MinimizeBuffers, opts.SAIterations, 1); err != nil {
			return nil, err
		}
		row.SAR = time.Since(t0)
		opts.progressf("runtime nodes=%d done", nodes)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintRuntimes renders the run-time comparison.
func PrintRuntimes(w io.Writer, rows []RuntimeRow, saIters int) {
	fmt.Fprintf(w, "Run times (SA limited to %d iterations here; the paper ran SA for hours)\n", saIters)
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s %12s\n", "procs", "SF", "OS", "OR", "SAS", "SAR")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %12v %12v %12v %12v %12v\n",
			r.Procs, r.SF.Round(time.Millisecond), r.OS.Round(time.Millisecond),
			r.OR.Round(time.Millisecond), r.SAS.Round(time.Millisecond), r.SAR.Round(time.Millisecond))
	}
}
