package expt

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hopa"
	"repro/internal/model"
	"repro/internal/opt"
)

// AblationRow measures how much each design ingredient of the synthesis
// flow contributes to the degree of schedulability (DESIGN.md asks for
// ablation benches of the design choices):
//
//   - Full: OptimizeSchedule as published (slot search + HOPA).
//   - NoHOPA: the slot search with declaration-order priorities.
//   - NoSlotSearch: HOPA priorities on the straightforward ascending
//     minimal-slot round (priority optimization only).
//   - NoOffsets: the full heuristic, but the response-time analysis runs
//     with all offsets forced to zero (classic critical-instant analysis
//     without the paper's offset refinement).
type AblationRow struct {
	Nodes, Procs int
	Count        int
	// Schedulable counts per variant.
	Full, NoHOPA, NoSlotSearch, NoOffsets int
	// Average delta per variant (over all apps; lower is better).
	FullDelta, NoHOPADelta, NoSlotDelta, NoOffsetsDelta float64
}

// Ablation runs the four variants over the generated workloads, with
// the (size, seed) cells fanned out across opts.Workers goroutines.
func Ablation(ctx context.Context, opts Options) ([]AblationRow, error) {
	opts.defaults()
	type cell struct {
		full                     *opt.Result
		aNoHopa, aNoSlot, aNoOff *core.Analysis
	}
	cells, err := gridSweep(ctx, &opts, len(opts.Sizes), func(ctx context.Context, pi int, seed int64) (cell, error) {
		sys, err := gen.Paper(opts.Sizes[pi], seed)
		if err != nil {
			return cell{}, err
		}
		app, arch := sys.Application, sys.Architecture
		sv, err := cellSolver(app, arch, &opts, 1)
		if err != nil {
			return cell{}, err
		}

		// Full OptimizeSchedule.
		full, err := sv.OptimizeSchedule(ctx)
		if err != nil {
			return cell{}, err
		}

		// Slot search without HOPA: evaluate the full search's round
		// with declaration-order priorities.
		noHopa := core.DefaultConfig(app, arch)
		noHopa.Round = full.Best.Config.Round.Clone()
		if err := noHopa.Normalize(app); err != nil {
			return cell{}, err
		}
		aNoHopa, err := core.Analyze(app, arch, noHopa)
		if err != nil {
			return cell{}, err
		}

		// HOPA without the slot search: ascending minimal round.
		base := core.DefaultConfig(app, arch)
		if err := base.Normalize(app); err != nil {
			return cell{}, err
		}
		pr, err := hopa.Assign(app, arch, base.Round, opts.OR.OS.HOPAIterations)
		if err != nil {
			return cell{}, err
		}
		base.ProcPriority = pr.ProcPriority
		base.MsgPriority = pr.MsgPriority
		aNoSlot, err := core.Analyze(app, arch, base)
		if err != nil {
			return cell{}, err
		}

		// Full heuristic, offset-blind analysis: zeroing the
		// transaction IDs makes every activity pairwise unrelated,
		// which drops all offset separation (O_ij = 0 everywhere).
		aNoOff, err := analyzeOffsetBlind(app, arch, full.Best.Config)
		if err != nil {
			return cell{}, err
		}
		return cell{full: full.Best, aNoHopa: aNoHopa, aNoSlot: aNoSlot, aNoOff: aNoOff}, nil
	}, func(pi int, seed int64, _ cell) {
		opts.progressf("ablation nodes=%d seed=%d done", opts.Sizes[pi], seed)
	})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for pi, nodes := range opts.Sizes {
		row := AblationRow{Nodes: nodes, Procs: 40 * nodes}
		for _, c := range cells[pi] {
			row.Count++
			if c.full.Schedulable() {
				row.Full++
			}
			row.FullDelta += float64(c.full.Delta())
			if c.aNoHopa.Schedulable {
				row.NoHOPA++
			}
			row.NoHOPADelta += float64(c.aNoHopa.Delta)
			if c.aNoSlot.Schedulable {
				row.NoSlotSearch++
			}
			row.NoSlotDelta += float64(c.aNoSlot.Delta)
			if c.aNoOff.Schedulable {
				row.NoOffsets++
			}
			row.NoOffsetsDelta += float64(c.aNoOff.Delta)
		}
		if row.Count > 0 {
			n := float64(row.Count)
			row.FullDelta /= n
			row.NoHOPADelta /= n
			row.NoSlotDelta /= n
			row.NoOffsetsDelta /= n
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// analyzeOffsetBlind re-runs the analysis with the offset-based
// interference reduction disabled (core.AnalyzeOffsetBlind): every
// activity is treated as phase-unrelated, the classic critical-instant
// assumption. The gap to the full analysis is the value of §4's offset
// refinement.
func analyzeOffsetBlind(app *model.Application, arch *model.Architecture, cfg *core.Config) (*core.Analysis, error) {
	return core.AnalyzeOffsetBlind(app, arch, cfg)
}

// PrintAblation renders the ablation table.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation - contribution of each synthesis ingredient (schedulable count | avg delta)")
	fmt.Fprintf(w, "%8s %8s | %16s %16s %16s %16s\n", "procs", "apps", "full OS", "no HOPA", "no slot search", "offset-blind")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d | %4d %11.0f %4d %11.0f %4d %11.0f %4d %11.0f\n",
			r.Procs, r.Count,
			r.Full, r.FullDelta,
			r.NoHOPA, r.NoHOPADelta,
			r.NoSlotSearch, r.NoSlotDelta,
			r.NoOffsets, r.NoOffsetsDelta)
	}
}
