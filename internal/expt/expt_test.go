package expt

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/opt"
)

// tiny keeps the smoke tests fast: one size, two seeds, short SA.
func tiny() Options {
	return Options{
		Sizes:        []int{2},
		Seeds:        2,
		Inter:        []int{10},
		SAIterations: 40,
		OR:           opt.OROptions{MaxIterations: 6, NeighborBudget: 8, Seeds: 2},
	}
}

func TestFig9aSmoke(t *testing.T) {
	rows, err := Fig9a(context.Background(), tiny())
	if err != nil {
		t.Fatalf("Fig9a: %v", err)
	}
	if len(rows) != 1 || rows[0].Procs != 80 || rows[0].Count != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Usable > 0 {
			// SAS is the reference: deviations cannot be negative by
			// construction only for OS... SF and OS are never better
			// than the best-of(SF-seeded, OS-seeded) SAS run by more
			// than rounding, so allow tiny negatives.
			if r.OSDev < -1e-9 && r.OSDev < r.SFDev-1e-9 {
				t.Errorf("suspicious deviations: %+v", r)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig9a(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 9a") {
		t.Error("table header missing")
	}
}

func TestFig9bSmoke(t *testing.T) {
	rows, err := Fig9b(context.Background(), tiny())
	if err != nil {
		t.Fatalf("Fig9b: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Usable > 0 {
		if r.ORAvg > r.OSAvg {
			t.Errorf("OR average %f exceeds OS average %f", r.ORAvg, r.OSAvg)
		}
		if r.SARAvg <= 0 || r.OSAvg <= 0 {
			t.Errorf("non-positive buffer averages: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintFig9b(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 9b") {
		t.Error("table header missing")
	}
}

func TestFig9cSmoke(t *testing.T) {
	rows, err := Fig9c(context.Background(), tiny())
	if err != nil {
		t.Fatalf("Fig9c: %v", err)
	}
	if len(rows) != 1 || rows[0].Inter != 10 {
		t.Fatalf("rows = %+v", rows)
	}
	var buf bytes.Buffer
	PrintFig9c(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 9c") {
		t.Error("table header missing")
	}
}

func TestFigure4Table(t *testing.T) {
	rows, err := Figure4()
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("panels = %d, want 4", len(rows))
	}
	want := map[string]struct {
		resp  int64
		sched bool
	}{
		"a": {250, false}, "b": {230, false}, "c": {210, false}, "d": {190, true},
	}
	for _, r := range rows {
		w := want[r.Panel]
		if r.Response != w.resp || r.Schedulable != w.sched {
			t.Errorf("panel %s: resp=%d sched=%v, want %d %v", r.Panel, r.Response, r.Schedulable, w.resp, w.sched)
		}
	}
	var buf bytes.Buffer
	PrintFigure4(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 4") {
		t.Error("table header missing")
	}
}

func TestCruiseTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full cruise sweep")
	}
	rows, err := Cruise(context.Background(), tiny())
	if err != nil {
		t.Fatalf("Cruise: %v", err)
	}
	byName := map[string]CruiseRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["SF"].Schedulable {
		t.Error("SF must miss the cruise deadline")
	}
	if !byName["OS"].Schedulable {
		t.Error("OS must schedule the cruise controller")
	}
	if !byName["OR"].Schedulable || byName["OR"].STotal > byName["OS"].STotal {
		t.Errorf("OR must keep schedulability and not increase buffers: %+v", byName["OR"])
	}
	var buf bytes.Buffer
	PrintCruise(&buf, rows)
	if !strings.Contains(buf.String(), "Cruise controller") {
		t.Error("table header missing")
	}
}

func TestRuntimesSmoke(t *testing.T) {
	opts := tiny()
	rows, err := Runtimes(context.Background(), opts)
	if err != nil {
		t.Fatalf("Runtimes: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].OS <= 0 || rows[0].SAS <= 0 {
		t.Error("timings missing")
	}
	var buf bytes.Buffer
	PrintRuntimes(&buf, rows, opts.SAIterations)
	if !strings.Contains(buf.String(), "Run times") {
		t.Error("table header missing")
	}
}

func TestDeviationPct(t *testing.T) {
	if d := deviationPct(150, 100); d != 50 {
		t.Errorf("deviationPct(150,100) = %f", d)
	}
	if d := deviationPct(-50, -100); d != 50 {
		t.Errorf("deviationPct(-50,-100) = %f (less slack = worse)", d)
	}
	if d := deviationPct(5, 0); d != 500 {
		t.Errorf("deviationPct(5,0) = %f", d)
	}
}
