package expt

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestAblationSmoke(t *testing.T) {
	opts := tiny()
	rows, err := Ablation(context.Background(), opts)
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	if len(rows) != 1 || rows[0].Count != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	// The full heuristic is never worse than its crippled variants on
	// average delta.
	if r.FullDelta > r.NoHOPADelta+1e-9 {
		t.Errorf("full OS delta %.0f worse than no-HOPA %.0f", r.FullDelta, r.NoHOPADelta)
	}
	// The offset-blind analysis is conservative: it can only lose
	// schedulable systems, never gain them.
	if r.NoOffsets > r.Full {
		t.Errorf("offset-blind schedulables %d exceed full %d", r.NoOffsets, r.Full)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("table header missing")
	}
}
