package expt

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestGridSweepErrorShortCircuits checks the serial error semantics of
// the sweep: the first cell-order error is returned, progress stops at
// the failing cell, and (serially) no later cell even runs.
func TestGridSweepErrorShortCircuits(t *testing.T) {
	opts := Options{Seeds: 4, Workers: 1}
	boom := errors.New("boom")
	var calls atomic.Int64
	var progressed []string
	_, err := gridSweep(context.Background(), &opts, 2, func(_ context.Context, pi int, seed int64) (int, error) {
		calls.Add(1)
		if pi == 0 && seed == 2 {
			return 0, fmt.Errorf("cell(%d,%d): %w", pi, seed, boom)
		}
		return int(seed), nil
	}, func(pi int, seed int64, v int) {
		progressed = append(progressed, fmt.Sprintf("%d/%d=%d", pi, seed, v))
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cell(0,2) error", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("ran %d cells serially, want 2 (cancel skips the rest)", got)
	}
	if !reflect.DeepEqual(progressed, []string{"0/1=1"}) {
		t.Errorf("progressed %v, want only the cell before the failure", progressed)
	}
}

// TestGridSweepErrorParallel checks that a failing cell surfaces its
// error with a parallel pool. Instant failures maximize the window in
// which the engine skips claimed-but-unstarted cells after the cancel,
// which used to leave their done channels open and deadlock the
// streamer — hence the stress loop.
func TestGridSweepErrorParallel(t *testing.T) {
	boom := errors.New("boom")
	for round := 0; round < 200; round++ {
		opts := Options{Seeds: 4, Workers: 4}
		_, err := gridSweep(context.Background(), &opts, 2, func(_ context.Context, pi int, seed int64) (int, error) {
			if pi == 0 && seed == 2 {
				return 0, fmt.Errorf("cell(%d,%d): %w", pi, seed, boom)
			}
			return int(seed), nil
		}, nil)
		if !errors.Is(err, boom) {
			t.Fatalf("round %d: err = %v, want the cell(0,2) error", round, err)
		}
	}
}

// withWorkers returns the tiny smoke options with the given pool size
// and a progress buffer, so the tests can compare both rows and output.
func withWorkers(workers int) (Options, *bytes.Buffer) {
	opts := tiny()
	opts.Workers = workers
	var buf bytes.Buffer
	opts.Progress = &buf
	return opts, &buf
}

// TestFig9aParallelEqualsSerial checks rows and progress output are
// identical for every worker count.
func TestFig9aParallelEqualsSerial(t *testing.T) {
	serialOpts, serialOut := withWorkers(1)
	serial, err := Fig9a(context.Background(), serialOpts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parOpts, parOut := withWorkers(8)
	par, err := Fig9a(context.Background(), parOpts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("rows differ: serial %+v, parallel %+v", serial, par)
	}
	if serialOut.String() != parOut.String() {
		t.Errorf("progress output differs:\nserial:\n%s\nparallel:\n%s", serialOut, parOut)
	}
}

// TestFig9bParallelEqualsSerial does the same for the buffer sweep.
func TestFig9bParallelEqualsSerial(t *testing.T) {
	serialOpts, serialOut := withWorkers(1)
	serial, err := Fig9b(context.Background(), serialOpts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parOpts, parOut := withWorkers(8)
	par, err := Fig9b(context.Background(), parOpts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("rows differ: serial %+v, parallel %+v", serial, par)
	}
	if serialOut.String() != parOut.String() {
		t.Errorf("progress output differs")
	}
}

// TestFig9cParallelEqualsSerial does the same for the traffic sweep.
func TestFig9cParallelEqualsSerial(t *testing.T) {
	serialOpts, _ := withWorkers(1)
	serial, err := Fig9c(context.Background(), serialOpts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parOpts, _ := withWorkers(4)
	par, err := Fig9c(context.Background(), parOpts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("rows differ: serial %+v, parallel %+v", serial, par)
	}
}

// TestAblationParallelEqualsSerial does the same for the ablation grid.
func TestAblationParallelEqualsSerial(t *testing.T) {
	serialOpts, _ := withWorkers(1)
	serial, err := Ablation(context.Background(), serialOpts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parOpts, _ := withWorkers(4)
	par, err := Ablation(context.Background(), parOpts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("rows differ: serial %+v, parallel %+v", serial, par)
	}
}

// TestCruiseParallelEqualsSerial covers the single-system path where
// workers parallelize inside the optimizers.
func TestCruiseParallelEqualsSerial(t *testing.T) {
	serialOpts, _ := withWorkers(1)
	serial, err := Cruise(context.Background(), serialOpts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parOpts, _ := withWorkers(4)
	par, err := Cruise(context.Background(), parOpts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("rows differ: serial %+v, parallel %+v", serial, par)
	}
}
