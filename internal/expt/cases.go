package expt

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cruise"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sa"
	"repro/internal/ttp"
)

// CruiseRow is the §6 cruise-controller comparison (experiment E6).
type CruiseRow struct {
	Name        string
	Response    model.Time
	Schedulable bool
	STotal      int
}

// Cruise runs SF, OS, OR, SAS and SAR on the cruise-controller model.
// It is a single-system experiment, so opts.Workers parallelizes inside
// the algorithms (optimizer neighbourhoods, annealing chains) rather
// than across cells; one Solver session serves all five algorithms.
func Cruise(ctx context.Context, opts Options) ([]CruiseRow, error) {
	opts.defaults()
	sys, err := cruise.System()
	if err != nil {
		return nil, err
	}
	sv, err := cellSolver(sys.Application, sys.Architecture, &opts, opts.Workers)
	if err != nil {
		return nil, err
	}
	var rows []CruiseRow
	add := func(name string, r *opt.Result) {
		rows = append(rows, CruiseRow{
			Name: name, Response: r.Analysis.GraphResp[0],
			Schedulable: r.Schedulable(), STotal: r.STotal(),
		})
	}
	sf, err := sv.Straightforward(ctx)
	if err != nil {
		return nil, err
	}
	add("SF", sf)
	orres, err := sv.OptimizeResources(ctx)
	if err != nil {
		return nil, err
	}
	add("OS", orres.OS.Best)
	add("OR", orres.Best)
	sas, _, err := bestSA(ctx, sv, orres.OS.Best, sa.MinimizeDelta, opts.SAIterations, 1, opts.Workers)
	if err != nil {
		return nil, err
	}
	add("SAS", sas)
	sar, _, err := bestSA(ctx, sv, orres.Best, sa.MinimizeBuffers, opts.SAIterations, 1, opts.Workers)
	if err != nil {
		return nil, err
	}
	add("SAR", sar)
	return rows, nil
}

// PrintCruise renders the cruise-controller table with the published
// reference points.
func PrintCruise(w io.Writer, rows []CruiseRow) {
	fmt.Fprintln(w, "Cruise controller (40 processes, 2 TT + 2 ET nodes, D = 250 ms)")
	fmt.Fprintln(w, "paper: SF 320 ms (miss), OS/SAS 185 ms (meet), buffers: OS 1020 B, OR -24%, SAR -30%")
	fmt.Fprintf(w, "%6s %12s %12s %12s\n", "alg", "resp [ms]", "meets D?", "s_total [B]")
	var osBuf int
	for _, r := range rows {
		if r.Name == "OS" {
			osBuf = r.STotal
		}
	}
	for _, r := range rows {
		extra := ""
		if osBuf > 0 && (r.Name == "OR" || r.Name == "SAR") && r.Schedulable {
			extra = fmt.Sprintf("  (%+.0f%% vs OS)", 100*float64(r.STotal-osBuf)/float64(osBuf))
		}
		fmt.Fprintf(w, "%6s %12d %12v %12d%s\n", r.Name, r.Response, r.Schedulable, r.STotal, extra)
	}
}

// Fig4Row is one panel of the Fig. 4 worked example (experiment E1).
type Fig4Row struct {
	Panel       string
	SGFirst     bool
	P2High      bool
	Response    model.Time
	Delta       model.Time
	Schedulable bool
}

// Figure4 evaluates the four configurations of the paper's Fig. 4
// scheduling example (panel d combines the slot swap of (b) with the
// priority swap of (c); see EXPERIMENTS.md E1 for the calibration
// notes).
func Figure4() ([]Fig4Row, error) {
	app, arch, p, m, err := fig4System()
	if err != nil {
		return nil, err
	}
	panels := []struct {
		name            string
		sgFirst, p2High bool
	}{
		{"a", true, false},
		{"b", false, false},
		{"c", true, true},
		{"d", false, true},
	}
	var rows []Fig4Row
	for _, panel := range panels {
		cfg := fig4Config(app, arch, panel.sgFirst, panel.p2High, p, m)
		if err := cfg.Normalize(app); err != nil {
			return nil, err
		}
		a, err := core.Analyze(app, arch, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{
			Panel: panel.name, SGFirst: panel.sgFirst, P2High: panel.p2High,
			Response: a.GraphResp[0], Delta: a.Delta, Schedulable: a.Schedulable,
		})
	}
	return rows, nil
}

// PrintFigure4 renders the panels.
func PrintFigure4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Fig 4 - scheduling example (T=240, D=200; paper panel a misses, changes to")
	fmt.Fprintln(w, "the slot order (b) or the priorities (c) recover the deadline; under full")
	fmt.Fprintln(w, "worst-case jitter propagation both changes together (d) are needed)")
	fmt.Fprintf(w, "%6s %10s %10s %10s %8s %8s\n", "panel", "S_G first", "P2 high", "R_G1", "delta", "meets D")
	for _, r := range rows {
		fmt.Fprintf(w, "%6s %10v %10v %10d %8d %8v\n", r.Panel, r.SGFirst, r.P2High, r.Response, r.Delta, r.Schedulable)
	}
}

// fig4System builds the Fig. 4 application (G1 of Fig. 1 on the
// two-cluster platform).
func fig4System() (*model.Application, *model.Architecture, [4]model.ProcID, [3]model.EdgeID, error) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		Name: "fig4", TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 5,
	})
	if err != nil {
		return nil, nil, [4]model.ProcID{}, [3]model.EdgeID{}, err
	}
	app := model.NewApplication("fig4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	for _, e := range []model.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10
	}
	if err := app.Finalize(arch); err != nil {
		return nil, nil, [4]model.ProcID{}, [3]model.EdgeID{}, err
	}
	return app, arch, [4]model.ProcID{p1, p2, p3, p4}, [3]model.EdgeID{m1, m2, m3}, nil
}

func fig4Config(app *model.Application, arch *model.Architecture, sgFirst, p2High bool,
	p [4]model.ProcID, m [3]model.EdgeID) *core.Config {
	n1 := arch.TTNodes()[0]
	var slots []ttp.Slot
	if sgFirst {
		slots = []ttp.Slot{{Node: arch.Gateway, Length: 20}, {Node: n1, Length: 20}}
	} else {
		slots = []ttp.Slot{{Node: n1, Length: 20}, {Node: arch.Gateway, Length: 20}}
	}
	cfg := &core.Config{
		Round:        ttp.Round{Slots: slots},
		ProcPriority: map[model.ProcID]int{},
		MsgPriority:  map[model.EdgeID]int{m[0]: 1, m[1]: 2, m[2]: 3},
	}
	if p2High {
		cfg.ProcPriority[p[1]] = 1
		cfg.ProcPriority[p[2]] = 2
	} else {
		cfg.ProcPriority[p[1]] = 2
		cfg.ProcPriority[p[2]] = 1
	}
	return cfg
}
