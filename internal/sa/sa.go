// Package sa implements the simulated-annealing reference optimizers of
// §6: SA Schedule (SAS), tuned to minimize the degree of schedulability
// delta_Gamma, and SA Resources (SAR), tuned to minimize the total
// buffer need s_total. Both walk the same §5.1 move space as
// OptimizeResources; with long schedules their best-ever solutions serve
// as the near-optimal yardsticks of the paper's evaluation.
package sa

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/opt"
)

// Objective selects the cost function.
type Objective int

const (
	// MinimizeDelta is SAS: cost = delta_Gamma.
	MinimizeDelta Objective = iota
	// MinimizeBuffers is SAR: cost = s_total for schedulable systems,
	// with a large schedulability penalty otherwise.
	MinimizeBuffers
)

// Options tunes the annealer.
type Options struct {
	Objective Objective
	// Iterations is the total number of evaluated moves (default 300).
	Iterations int
	// InitialTemp and Cooling control the acceptance schedule
	// (defaults 1000 and 0.95; one cooling step every Epoch moves).
	InitialTemp float64
	Cooling     float64
	Epoch       int
	// Seed drives all randomness (default 1).
	Seed int64
	// MoveBudget is how many candidate moves are generated per step;
	// one is drawn at random (default 16).
	MoveBudget int
	// Restarts is the number of independent annealing chains run by
	// RunRestarts, seeded Seed, Seed+1, ... (default 1). An annealing
	// chain is inherently sequential, so restarts are the unit of
	// parallelism.
	Restarts int
	// Workers bounds the concurrently running chains (default 1 =
	// serial). The best-ever result is identical for every value.
	Workers int
	// Pool, when non-nil, supplies the chain pool (typically a
	// session-shared one) instead of a fresh engine.New(Workers).
	Pool *engine.Pool
	// Eval, when non-nil, replaces core.Analyze for every analysis of
	// the chains (and the SF start of RunSAS/RunSAR) — the Solver
	// injects its incremental delta evaluator here. Results and
	// Evaluations counts are identical either way; successive chain
	// steps share the parent state through the evaluator's caches.
	Eval opt.EvalFunc
	// OnProgress, when non-nil, receives one event per evaluated move.
	// With several restart chains the callback runs concurrently and
	// must be safe for concurrent use; Chain tells the events apart.
	OnProgress func(Progress)
}

// Progress is one annealing progress event.
type Progress struct {
	Chain       int
	Iteration   int
	Evaluations int
	Accepted    int
	Best        *opt.Result
}

func (o *Options) defaults() {
	if o.Iterations <= 0 {
		o.Iterations = 300
	}
	if o.InitialTemp <= 0 {
		o.InitialTemp = 1000
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.95
	}
	if o.Epoch <= 0 {
		o.Epoch = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MoveBudget <= 0 {
		o.MoveBudget = 16
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
}

// Result is the annealing outcome.
type Result struct {
	// Best is the best-ever configuration under the chosen objective.
	Best *opt.Result
	// Evaluations counts the analyses performed.
	Evaluations int
	// Accepted counts accepted moves (diagnostics).
	Accepted int
}

// unschedulablePenalty dominates every realistic s_total so that SAR
// never trades schedulability for buffers.
const unschedulablePenalty = 1 << 40

// cost maps an analysis to the annealing cost.
func cost(obj Objective, r *opt.Result) float64 {
	switch obj {
	case MinimizeDelta:
		return float64(r.Delta())
	default:
		if !r.Schedulable() {
			return unschedulablePenalty + float64(r.Delta())
		}
		return float64(r.STotal())
	}
}

// Run anneals from the given initial configuration. The initial
// configuration must be normalized and valid.
//
// Cancelling ctx stops the chain at the next iteration: the returned
// Result then carries the best-ever solution found so far, together
// with ctx's error.
func Run(ctx context.Context, app *model.Application, arch *model.Architecture, initial *core.Config, opts Options) (*Result, error) {
	return runChain(ctx, app, arch, initial, opts, 0)
}

func runChain(ctx context.Context, app *model.Application, arch *model.Architecture, initial *core.Config, opts Options, chain int) (*Result, error) {
	opts.defaults()
	eval := opts.Eval
	if eval == nil {
		eval = func(cfg *core.Config) (*core.Analysis, error) {
			return core.Analyze(app, arch, cfg)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	curA, err := eval(initial)
	if err != nil {
		return nil, err
	}
	cur := &opt.Result{Config: initial, Analysis: curA}
	best := cur
	res := &Result{Best: best, Evaluations: 1}
	temp := opts.InitialTemp
	for it := 0; it < opts.Iterations; it++ {
		if ctx.Err() != nil {
			res.Best = best
			return res, ctx.Err()
		}
		moves := opt.GenerateMoves(app, arch, cur.Config, cur.Analysis, opt.MoveBudget{Max: opts.MoveBudget, Rand: rng})
		if len(moves) == 0 {
			break
		}
		mv := moves[rng.Intn(len(moves))]
		cfg, err := mv.Apply(app, arch, cur.Config)
		if err != nil {
			continue // impossible move: try another
		}
		a, err := eval(cfg)
		if err != nil {
			continue
		}
		res.Evaluations++
		cand := &opt.Result{Config: cfg, Analysis: a}
		dc := cost(opts.Objective, cand) - cost(opts.Objective, cur)
		if dc <= 0 || rng.Float64() < math.Exp(-dc/temp) {
			cur = cand
			res.Accepted++
		}
		if cost(opts.Objective, cand) < cost(opts.Objective, best) {
			best = cand
		}
		if (it+1)%opts.Epoch == 0 {
			temp *= opts.Cooling
			if temp < 1e-6 {
				temp = 1e-6
			}
		}
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{Chain: chain, Iteration: it + 1, Evaluations: res.Evaluations, Accepted: res.Accepted, Best: best})
		}
	}
	res.Best = best
	return res, nil
}

// RunRestarts anneals opts.Restarts independent chains from the same
// initial configuration, seeded opts.Seed, opts.Seed+1, ..., across an
// engine pool of opts.Workers goroutines, and returns the best-ever
// result over all chains (ties broken by the lowest chain index, so the
// outcome is deterministic for every worker count). Evaluations and
// Accepted are summed over the chains.
//
// Cancelling ctx stops every chain at its next iteration; the returned
// Result aggregates the chains' best-so-far solutions and carries
// ctx's error (Best is nil only when no chain completed a single
// analysis).
func RunRestarts(ctx context.Context, app *model.Application, arch *model.Architecture, initial *core.Config, opts Options) (*Result, error) {
	opts.defaults()
	if opts.Restarts == 1 {
		return Run(ctx, app, arch, initial, opts)
	}
	pool := opts.Pool
	if pool == nil {
		pool = engine.New(opts.Workers)
	}
	jobs := make([]func(context.Context) (*Result, error), opts.Restarts)
	for i := range jobs {
		i := i
		chainOpts := opts
		chainOpts.Seed = opts.Seed + int64(i)
		chainOpts.Restarts, chainOpts.Workers = 1, 1
		chainOpts.Pool = nil
		jobs[i] = func(ctx context.Context) (*Result, error) {
			return runChain(ctx, app, arch, initial, chainOpts, i)
		}
	}
	chains, _ := engine.Sweep(ctx, pool, jobs)
	out := &Result{}
	for _, c := range chains {
		r := c.Value
		if c.Err != nil {
			if ctx.Err() != nil && errors.Is(c.Err, ctx.Err()) {
				if r == nil {
					continue // chain never started
				}
				// Aggregate the chain's best-so-far below.
			} else {
				return nil, c.Err
			}
		}
		out.Evaluations += r.Evaluations
		out.Accepted += r.Accepted
		if out.Best == nil || cost(opts.Objective, r.Best) < cost(opts.Objective, out.Best) {
			out.Best = r.Best
		}
	}
	return out, ctx.Err()
}

// RunSAS anneals for the degree of schedulability from the SF starting
// point (the paper's SA Schedule baseline).
func RunSAS(ctx context.Context, app *model.Application, arch *model.Architecture, opts Options) (*Result, error) {
	opts.Objective = MinimizeDelta
	return runFromSF(ctx, app, arch, opts)
}

// RunSAR anneals for the total buffer need (the paper's SA Resources
// baseline).
func RunSAR(ctx context.Context, app *model.Application, arch *model.Architecture, opts Options) (*Result, error) {
	opts.Objective = MinimizeBuffers
	return runFromSF(ctx, app, arch, opts)
}

func runFromSF(ctx context.Context, app *model.Application, arch *model.Architecture, opts Options) (*Result, error) {
	sf, err := opt.StraightforwardWith(app, arch, opts.Eval)
	if err != nil {
		return nil, err
	}
	res, err := RunRestarts(ctx, app, arch, sf.Config, opts)
	if res != nil {
		// Count the SF starting analysis even when the anneal was
		// canceled, so partial and completed runs report comparable
		// evaluation totals.
		res.Evaluations += sf.Analysis.Iterations
	}
	return res, err
}
