package sa

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/opt"
)

func fig4(t *testing.T) (*model.Application, *model.Architecture) {
	t.Helper()
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 5,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("fig4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	for _, e := range []model.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return app, arch
}

func TestSASImprovesDelta(t *testing.T) {
	app, arch := fig4(t)
	sf, err := opt.Straightforward(app, arch)
	if err != nil {
		t.Fatalf("Straightforward: %v", err)
	}
	res, err := RunSAS(context.Background(), app, arch, Options{Iterations: 120, Seed: 3})
	if err != nil {
		t.Fatalf("RunSAS: %v", err)
	}
	if res.Best.Delta() > sf.Delta() {
		t.Errorf("SAS best delta %d worse than its SF start %d", res.Best.Delta(), sf.Delta())
	}
	if !res.Best.Schedulable() {
		t.Errorf("SAS failed to schedule Figure 4 (delta=%d)", res.Best.Delta())
	}
	if res.Evaluations <= 1 {
		t.Error("SAS did not evaluate moves")
	}
}

func TestSARMinimizesBuffersKeepingSchedulability(t *testing.T) {
	sys, err := gen.Generate(gen.Spec{Seed: 17, TTNodes: 1, ETNodes: 1, ProcsPerNode: 8, ProcsPerGraph: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	res, err := RunSAR(context.Background(), app, arch, Options{Iterations: 80, Seed: 4})
	if err != nil {
		t.Fatalf("RunSAR: %v", err)
	}
	if res.Best == nil {
		t.Fatal("no best result")
	}
	// If SAR found any schedulable configuration its best must be
	// schedulable (the penalty dominates all buffer costs).
	if res.Best.Schedulable() {
		if res.Best.STotal() <= 0 && len(app.GatewayEdges(arch)) > 0 {
			t.Error("schedulable system with gateway traffic but zero buffers")
		}
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	app, arch := fig4(t)
	a, err := RunSAS(context.Background(), app, arch, Options{Iterations: 60, Seed: 9})
	if err != nil {
		t.Fatalf("RunSAS: %v", err)
	}
	b, err := RunSAS(context.Background(), app, arch, Options{Iterations: 60, Seed: 9})
	if err != nil {
		t.Fatalf("RunSAS: %v", err)
	}
	if a.Best.Delta() != b.Best.Delta() || a.Accepted != b.Accepted || a.Evaluations != b.Evaluations {
		t.Errorf("same seed diverged: delta %d/%d accepted %d/%d evals %d/%d",
			a.Best.Delta(), b.Best.Delta(), a.Accepted, b.Accepted, a.Evaluations, b.Evaluations)
	}
}

func TestObjectiveCosts(t *testing.T) {
	app, arch := fig4(t)
	sf, err := opt.Straightforward(app, arch)
	if err != nil {
		t.Fatalf("Straightforward: %v", err)
	}
	cDelta := cost(MinimizeDelta, sf)
	if cDelta != float64(sf.Delta()) {
		t.Errorf("SAS cost = %v, want %v", cDelta, sf.Delta())
	}
	cBuf := cost(MinimizeBuffers, sf)
	if sf.Schedulable() {
		if cBuf != float64(sf.STotal()) {
			t.Errorf("SAR cost = %v, want %v", cBuf, sf.STotal())
		}
	} else if cBuf < unschedulablePenalty {
		t.Errorf("SAR cost %v misses the schedulability penalty", cBuf)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.Iterations != 300 || o.InitialTemp != 1000 || o.Cooling != 0.95 || o.Epoch != 10 || o.Seed != 1 || o.MoveBudget != 16 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{Cooling: 2} // invalid: falls back
	o.defaults()
	if o.Cooling != 0.95 {
		t.Errorf("cooling = %v", o.Cooling)
	}
}

func TestBestNeverWorseThanStart(t *testing.T) {
	app, arch := fig4(t)
	sf, err := opt.Straightforward(app, arch)
	if err != nil {
		t.Fatalf("Straightforward: %v", err)
	}
	for _, obj := range []Objective{MinimizeDelta, MinimizeBuffers} {
		res, err := Run(context.Background(), app, arch, sf.Config, Options{Objective: obj, Iterations: 50, Seed: 7})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if cost(obj, res.Best) > cost(obj, sf) {
			t.Errorf("objective %d: best cost %v worse than the start %v", obj, cost(obj, res.Best), cost(obj, sf))
		}
	}
}
