package sa

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestRunRestartsParallelEqualsSerial checks that the multi-chain
// annealer returns the same best-ever solution and the same counters
// for every worker count.
func TestRunRestartsParallelEqualsSerial(t *testing.T) {
	app, arch := fig4(t)
	initial := core.DefaultConfig(app, arch)
	if err := initial.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	base := Options{Objective: MinimizeBuffers, Iterations: 60, Seed: 2, Restarts: 4}
	serialOpts := base
	serialOpts.Workers = 1
	serial, err := RunRestarts(context.Background(), app, arch, initial, serialOpts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 8} {
		parOpts := base
		parOpts.Workers = workers
		par, err := RunRestarts(context.Background(), app, arch, initial, parOpts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Evaluations != serial.Evaluations || par.Accepted != serial.Accepted {
			t.Errorf("workers=%d: evals=%d accepted=%d, serial evals=%d accepted=%d",
				workers, par.Evaluations, par.Accepted, serial.Evaluations, serial.Accepted)
		}
		if !reflect.DeepEqual(par.Best.Config, serial.Best.Config) {
			t.Errorf("workers=%d: best config differs from serial", workers)
		}
	}
}

// TestRunRestartsImprovesOnSingleChain checks the point of restarts:
// with several chains the best-ever cost is never worse than the first
// chain's, and the evaluation counter aggregates all chains.
func TestRunRestartsImprovesOnSingleChain(t *testing.T) {
	app, arch := fig4(t)
	initial := core.DefaultConfig(app, arch)
	if err := initial.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	one, err := RunRestarts(context.Background(), app, arch, initial, Options{Objective: MinimizeBuffers, Iterations: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunRestarts(context.Background(), app, arch, initial, Options{Objective: MinimizeBuffers, Iterations: 60, Seed: 2, Restarts: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cost(MinimizeBuffers, many.Best) > cost(MinimizeBuffers, one.Best) {
		t.Errorf("4 restarts cost %v, single chain %v", cost(MinimizeBuffers, many.Best), cost(MinimizeBuffers, one.Best))
	}
	if many.Evaluations <= one.Evaluations {
		t.Errorf("4 restarts did %d evaluations, single chain %d", many.Evaluations, one.Evaluations)
	}
}
