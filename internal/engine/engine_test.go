package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestMapOrderAndValues checks that results come back in index order
// with the right values, for every pool size.
func TestMapOrderAndValues(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 3, 8, 64} {
		res, err := Map(context.Background(), New(workers), n, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(res), n)
		}
		for i, r := range res {
			if r.Index != i || r.Value != i*i || r.Err != nil {
				t.Fatalf("workers=%d item %d: got {%d %d %v}", workers, i, r.Index, r.Value, r.Err)
			}
		}
	}
}

// TestMapSerialParallelEquality checks the determinism contract: the
// full result slice of a parallel run equals the serial run's.
func TestMapSerialParallelEquality(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) {
		if i%7 == 3 {
			return "", fmt.Errorf("item %d failed", i)
		}
		return fmt.Sprintf("v%d", i*31%17), nil
	}
	serial, err := Map(context.Background(), Serial(), 200, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := Map(context.Background(), New(workers), 200, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: parallel results differ from serial", workers)
		}
	}
}

// TestMapPerItemErrors checks that item errors are captured without
// failing the batch, and that FirstError picks the lowest index.
func TestMapPerItemErrors(t *testing.T) {
	boom := errors.New("boom")
	res, err := Map(context.Background(), New(4), 10, func(_ context.Context, i int) (int, error) {
		if i == 2 || i == 7 {
			return 0, fmt.Errorf("item %d: %w", i, boom)
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("batch error: %v", err)
	}
	for i, r := range res {
		wantErr := i == 2 || i == 7
		if (r.Err != nil) != wantErr {
			t.Fatalf("item %d: err=%v, want error=%v", i, r.Err, wantErr)
		}
	}
	first := FirstError(res)
	if !errors.Is(first, boom) || first.Error() != "item 2: boom" {
		t.Fatalf("FirstError = %v, want item 2", first)
	}
}

// TestMapCancellation checks that cancelling the context stops the
// batch: the call reports ctx.Err() and unstarted items carry it.
func TestMapCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int
		var mu sync.Mutex
		const n = 1000
		res, err := Map(ctx, New(workers), n, func(_ context.Context, i int) (int, error) {
			mu.Lock()
			ran++
			if ran == 5 {
				cancel()
			}
			mu.Unlock()
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: batch err = %v, want context.Canceled", workers, err)
		}
		cancelled := 0
		for _, r := range res {
			if errors.Is(r.Err, context.Canceled) {
				cancelled++
			}
		}
		if cancelled == 0 || cancelled > n-5 {
			t.Fatalf("workers=%d: %d items cancelled, want in [1, %d]", workers, cancelled, n-5)
		}
		cancel()
	}
}

// TestMapEmpty checks the n=0 edge case.
func TestMapEmpty(t *testing.T) {
	res, err := Map(context.Background(), New(8), 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty batch")
		return 0, nil
	})
	if err != nil || len(res) != 0 {
		t.Fatalf("got %v, %v", res, err)
	}
}

// TestSweep checks job-order results for heterogeneous jobs.
func TestSweep(t *testing.T) {
	jobs := make([]func(context.Context) (int, error), 50)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return 2 * i, nil }
	}
	res, err := Sweep(context.Background(), New(6), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Value != 2*i {
			t.Fatalf("job %d: got %d, want %d", i, r.Value, 2*i)
		}
	}
}

// TestEvaluateAllMatchesSerial analyzes a batch of configurations of a
// small generated system and checks the parallel evaluations against
// direct serial core.Analyze calls.
func TestEvaluateAllMatchesSerial(t *testing.T) {
	sys, err := gen.Generate(gen.Spec{Seed: 3, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6})
	if err != nil {
		t.Fatal(err)
	}
	app, arch := sys.Application, sys.Architecture
	base := core.DefaultConfig(app, arch)
	var cfgs []*core.Config
	for i := 0; i < 8; i++ {
		cfg := base.Clone()
		cfg.Round.Slots[i%len(cfg.Round.Slots)].Length += 4 * int64(i)
		if err := cfg.Normalize(app); err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	par, err := EvaluateAll(context.Background(), New(8), app, arch, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, wantErr := core.Analyze(app, arch, cfg)
		if (par[i].Err != nil) != (wantErr != nil) {
			t.Fatalf("cfg %d: err=%v, want %v", i, par[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(par[i].Analysis, want) {
			t.Fatalf("cfg %d: parallel analysis differs from serial", i)
		}
		if par[i].Config != cfg {
			t.Fatalf("cfg %d: evaluation does not carry its config", i)
		}
	}
}
