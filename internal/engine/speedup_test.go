package engine_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/expt"
)

// TestFig9aSweepSpeedup asserts the acceptance criterion behind the
// benchmarks in bench_test.go: on a machine with >= 4 cores, the expt
// sweep with -workers=NumCPU must be at least 2x faster wall-clock
// than with -workers=1. Timing tests are inherently noisy on shared
// runners, so the check retries a few times and is skipped under
// -short (CI runs it in a dedicated non-race step).
func TestFig9aSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped with -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs >= 4 cores, have %d", runtime.NumCPU())
	}
	measure := func(workers int) time.Duration {
		t0 := time.Now()
		if _, err := expt.Fig9a(context.Background(), sweepOptions(workers)); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	measure(1) // warm up (first run pays one-off allocation costs)
	var serial, parallel time.Duration
	for attempt := 1; attempt <= 3; attempt++ {
		serial = measure(1)
		parallel = measure(runtime.NumCPU())
		if 2*parallel <= serial {
			t.Logf("attempt %d: serial %v, parallel %v (%.1fx)", attempt, serial, parallel, float64(serial)/float64(parallel))
			return
		}
	}
	t.Errorf("parallel sweep not >= 2x faster: serial %v, parallel %v (%.1fx)",
		serial, parallel, float64(serial)/float64(parallel))
}
