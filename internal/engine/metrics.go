package engine

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Metrics is the engine's instrumentation hook: counters and histograms
// the batch primitives feed while running. Only counting instruments
// are used — no clocks, randomness, or map iteration — so attaching
// metrics never perturbs batch results or worker scheduling.
type Metrics struct {
	// Batches counts Map invocations that ran at least one item.
	Batches *obs.Counter
	// Tasks counts individual items executed across all batches.
	Tasks *obs.Counter
	// BatchSize observes the item count of each batch.
	BatchSize *obs.Histogram
	// Workers observes the effective worker count of each batch (after
	// clamping to the item count), exposing how much of the pool a
	// workload actually uses.
	Workers *obs.Histogram
}

// metrics is the process-wide hook, swapped atomically so Map can load
// it with one atomic read per batch. A nil pointer (the default) or a
// Metrics full of nil instruments both cost nothing beyond that load.
var metrics atomic.Pointer[Metrics]

// SetMetrics installs the process-wide engine metrics (nil uninstalls).
// Call once at service start-up, before batches run.
func SetMetrics(m *Metrics) { metrics.Store(m) }

// observeBatch records one Map invocation of n items on workers
// goroutines.
func observeBatch(n, workers int) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.Batches.Inc()
	m.Tasks.Add(uint64(n))
	m.BatchSize.Observe(float64(n))
	m.Workers.Observe(float64(workers))
}
