// Package engine is the concurrent evaluation engine of the synthesis
// flow: a bounded worker pool that fans independent (configuration ->
// analysis) evaluations out across goroutines while keeping every result
// bit-identical to a serial run.
//
// The paper's algorithms spend almost all of their time in
// core.Analyze, and every call site evaluates *batches* of independent
// candidates: OptimizeSchedule tries slot owners and lengths (Fig. 8),
// OptimizeResources scores neighbourhood moves (Fig. 7 / §5.1), the
// simulated-annealing baselines of §6 run independent restart chains,
// and the evaluation sweeps of §6 analyze hundreds of generated
// applications. Such design-space sweeps are embarrassingly parallel
// (cf. parametric schedulability analysis, Sun et al.), so the engine
// exposes exactly three batch primitives:
//
//   - Map: run fn(i) for i in [0, n) across the pool and return the
//     results in index order, one captured error per item;
//   - Sweep: Map over a list of self-contained jobs (whole experiments);
//   - EvaluateAll: Map specialized to core.Analyze over candidate
//     configurations.
//
// Determinism is the contract that makes the engine safe to drop into
// the published heuristics: callers generate the full candidate batch
// up front (fixing every random draw before the fan-out), the engine
// writes each result into its own slot, and callers reduce in index
// order. The outcome is therefore identical to the serial loop for a
// fixed seed, regardless of GOMAXPROCS or the -workers setting.
//
// Cancellation is cooperative via context.Context: once the context is
// cancelled, unstarted items complete immediately with ctx.Err() as
// their per-item error and the batch call reports the context error.
package engine
