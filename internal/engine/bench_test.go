// Benchmarks for the acceptance criterion of the engine: an expt sweep
// with -workers=NumCPU must beat -workers=1 by >= 2x wall-clock on a
// machine with >= 4 cores. Run with:
//
//	go test -bench Fig9a -benchtime 2x ./internal/engine/
//
// The package is engine_test (not engine) so it can drive the real
// consumer, repro/internal/expt, without an import cycle.
package engine_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/expt"
	"repro/internal/opt"
)

// sweepOptions is a Fig. 9a-shaped sweep sized so one serial run takes
// seconds, not minutes: one size, eight generated applications, short
// SA (eight cells pack evenly onto the 4- and 8-core machines the
// speedup test targets).
func sweepOptions(workers int) expt.Options {
	return expt.Options{
		Sizes:        []int{2},
		Seeds:        8,
		SAIterations: 60,
		OR:           opt.OROptions{MaxIterations: 4, NeighborBudget: 8, Seeds: 2},
		Workers:      workers,
	}
}

func benchmarkFig9a(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig9a(context.Background(), sweepOptions(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9aSweepSerial is the -workers=1 baseline.
func BenchmarkFig9aSweepSerial(b *testing.B) { benchmarkFig9a(b, 1) }

// BenchmarkFig9aSweepParallel runs the same sweep with -workers=NumCPU.
func BenchmarkFig9aSweepParallel(b *testing.B) { benchmarkFig9a(b, runtime.NumCPU()) }

// BenchmarkMapOverhead measures the engine's per-item dispatch cost on
// trivial work, serial vs parallel (the fan-out floor).
func BenchmarkMapOverhead(b *testing.B) {
	fn := func(_ context.Context, j int) (int, error) { return j, nil }
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Map(context.Background(), engine.Serial(), 1024, fn); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		pool := engine.New(runtime.NumCPU())
		for i := 0; i < b.N; i++ {
			if _, err := engine.Map(context.Background(), pool, 1024, fn); err != nil {
				b.Fatal(err)
			}
		}
	})
}
