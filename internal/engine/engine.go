package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
)

// Pool bounds the concurrency of the batch primitives. The zero value
// and New(0) size the pool to runtime.NumCPU(); New(1) runs batches
// serially on the calling goroutine, which is the library default so
// that callers opt in to parallelism explicitly (the cmd tools pass
// runtime.NumCPU() through their -workers flag).
type Pool struct {
	workers int
}

// New returns a pool running at most workers evaluations concurrently.
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Serial returns a single-worker pool: batches run on the calling
// goroutine in index order, with no goroutines spawned.
func Serial() *Pool { return &Pool{workers: 1} }

// Workers reports the concurrency bound.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.NumCPU()
	}
	return p.workers
}

// Result is one item of a batch: the value produced for Index, or the
// error that item ran into. Items never fail the whole batch — callers
// decide per item, in index order.
type Result[T any] struct {
	Index int
	Value T
	Err   error
}

// FirstError returns the error of the lowest-indexed failed item, which
// is the error a serial loop aborting on first failure would have seen.
func FirstError[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Map runs fn(ctx, i) for every i in [0, n) with at most p.Workers()
// concurrent calls and returns the n results in index order. Each
// item's error is captured in its Result; the returned error is non-nil
// only when ctx was cancelled, in which case items that never started
// carry ctx.Err().
//
// fn must be safe for concurrent invocation and must not depend on the
// completion of other indices; under those conditions the returned
// slice is identical to a serial loop's, regardless of the worker
// count.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]Result[T], error) {
	out := make([]Result[T], n)
	for i := range out {
		out[i].Index = i
	}
	if n == 0 {
		return out, ctx.Err()
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	observeBatch(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				for ; i < n; i++ {
					out[i].Err = err
				}
				return out, err
			}
			out[i].Value, out[i].Err = fn(ctx, i)
		}
		return out, ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i].Err = err
					continue
				}
				out[i].Value, out[i].Err = fn(ctx, i)
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// Sweep runs a list of self-contained jobs — typically whole experiment
// cells, each generating and synthesizing its own system — across the
// pool, returning their results in job order.
func Sweep[T any](ctx context.Context, p *Pool, jobs []func(ctx context.Context) (T, error)) ([]Result[T], error) {
	return Map(ctx, p, len(jobs), func(ctx context.Context, i int) (T, error) {
		return jobs[i](ctx)
	})
}

// Evaluation couples one candidate configuration with its analysis (or
// the analysis error).
type Evaluation struct {
	Config   *core.Config
	Analysis *core.Analysis
	Err      error
}

// Schedulable reports the analysis verdict (false when the analysis
// failed).
func (e *Evaluation) Schedulable() bool { return e.Err == nil && e.Analysis.Schedulable }

// Analyzer evaluates one configuration (application and architecture
// are captured by the closure). core.Analyze partially applied is the
// cold implementation; delta.(*Evaluator).Analyze is the incremental
// one. Analyzers must be safe for concurrent use and must return
// identical results for identical configurations, so batches stay
// worker-count independent.
type Analyzer func(cfg *core.Config) (*core.Analysis, error)

// EvaluateAll analyzes every candidate configuration across the pool
// and returns the evaluations in candidate order. app and arch are
// shared read-only; each configuration must be an independent value (as
// produced by Config.Clone or Move.Apply).
func EvaluateAll(ctx context.Context, p *Pool, app *model.Application, arch *model.Architecture, cfgs []*core.Config) ([]Evaluation, error) {
	return EvaluateAllWith(ctx, p, func(cfg *core.Config) (*core.Analysis, error) {
		return core.Analyze(app, arch, cfg)
	}, cfgs)
}

// EvaluateAllWith is EvaluateAll through an explicit Analyzer, so
// long-lived sessions can route batches through their incremental
// evaluator.
func EvaluateAllWith(ctx context.Context, p *Pool, az Analyzer, cfgs []*core.Config) ([]Evaluation, error) {
	results, err := Map(ctx, p, len(cfgs), func(_ context.Context, i int) (*core.Analysis, error) {
		return az(cfgs[i])
	})
	out := make([]Evaluation, len(cfgs))
	for i, r := range results {
		out[i] = Evaluation{Config: cfgs[i], Analysis: r.Value, Err: r.Err}
	}
	return out, err
}

// EvaluateAllDelta is the batch API of the incremental evaluator: n
// candidates, each derived from the shared parent configuration by the
// derive callback (typically applying one typed opt.Move), are analyzed
// across the pool in index order. A derivation error (a structurally
// impossible move) is captured in that item's Evaluation with a nil
// Config, never failing the batch; callers skip those items exactly
// like a serial loop would. derive must be pure: it runs concurrently
// and must not mutate parent.
func EvaluateAllDelta(ctx context.Context, p *Pool, az Analyzer, parent *core.Config, n int,
	derive func(i int, parent *core.Config) (*core.Config, error)) ([]Evaluation, error) {
	out := make([]Evaluation, n)
	results, err := Map(ctx, p, n, func(_ context.Context, i int) (*core.Analysis, error) {
		cfg, derr := derive(i, parent)
		if derr != nil {
			return nil, derr
		}
		out[i].Config = cfg
		return az(cfg)
	})
	for i, r := range results {
		out[i].Analysis, out[i].Err = r.Value, r.Err
	}
	return out, err
}
