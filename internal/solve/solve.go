// Package solve is the session layer of the reproduction: a Solver is
// created once per (Application, Architecture) pair and owns everything
// repeated operations want to share — the evaluation pool, the default
// configuration templates and the per-node slot-length candidate sets —
// so that interactive or iterated exploration (the ROADMAP's service
// workload) stops re-deriving system invariants on every call.
//
// Every operation is context-first and cancellable at evaluation
// granularity: a cancelled Synthesize returns the best configuration
// found so far together with the context's error, so callers (the CLIs
// wire SIGINT into this) never lose finished work. Progress flows to an
// optional Observer as a serialized event stream.
//
// The root package repro re-exports this API; internal consumers
// (package expt) use it directly.
package solve

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sa"
	"repro/internal/sim"
	"repro/internal/tsched"
)

// Result couples the configuration chosen by a synthesis run with its
// analysis.
type Result struct {
	Config   *core.Config
	Analysis *core.Analysis
	// Evaluations counts the schedulability analyses performed.
	Evaluations int
}

// Solver is a reusable synthesis session for one (application,
// architecture) pair. It is safe for concurrent use; all methods are
// deterministic per seed and worker-count independent.
type Solver struct {
	app  *model.Application
	arch *model.Architecture
	opts Options
	pool *engine.Pool

	// cache holds the per-system derived state; derived sessions
	// (Observed) share it, so the expensive templates are computed once
	// per system no matter how many observers fan out.
	cache *sysCache

	obsMu *sync.Mutex // serializes Observer delivery across SA chains
}

// sysCache is the seed-independent derived state of one system, shared
// by a Solver and every session derived from it.
type sysCache struct {
	mu       sync.Mutex
	baseRaw  *core.Config // un-normalized DefaultConfig template
	baseNorm *core.Config // normalized template (SF / SA starting point)
	slotLens map[slotKey][]model.Time
	// deltaEval is the session's incremental evaluator. Like the
	// templates it carries only configuration-keyed, seed-independent
	// state, so derived sessions (Observed, Derive) share it across
	// seeds, strategies and worker counts without perturbing results;
	// sessions built with WithDelta(false) simply bypass it.
	deltaEval *delta.Evaluator
}

type slotKey struct {
	owner model.NodeID
	max   int
}

// New builds a Solver. Options normalize exactly here (worker counts,
// seeds, iteration budgets); see Options.normalize.
func New(app *model.Application, arch *model.Architecture, options ...Option) (*Solver, error) {
	if app == nil || arch == nil {
		return nil, fmt.Errorf("solve: nil application or architecture")
	}
	s := &Solver{
		app: app, arch: arch,
		cache: &sysCache{slotLens: make(map[slotKey][]model.Time)},
		obsMu: &sync.Mutex{},
	}
	for _, o := range options {
		if o != nil {
			o(&s.opts)
		}
	}
	s.opts.Normalize()
	s.pool = engine.New(s.opts.Workers)
	return s, nil
}

// Observed returns a derived session that shares this solver's pool and
// per-system caches but streams progress to obs instead. Since the
// shared caches carry only seed-independent state, results from a
// derived session are bit-identical to the parent's.
func (s *Solver) Observed(obs Observer) *Solver {
	d := *s
	d.opts.Observer = obs
	d.obsMu = &sync.Mutex{}
	return &d
}

// Derive returns a session for the same system with a fresh option set
// (applied to zero Options and normalized exactly like New's), sharing
// the parent's seed-independent derived-state caches — and its pool,
// when the worker counts agree. The service layer uses it to serve
// every option variant (strategy, seed, budgets, per-job observers) of
// one cached system without re-deriving templates; results are
// bit-identical to a cold Solver built with the same options.
func (s *Solver) Derive(options ...Option) *Solver {
	d := &Solver{app: s.app, arch: s.arch, cache: s.cache, obsMu: &sync.Mutex{}}
	for _, o := range options {
		if o != nil {
			o(&d.opts)
		}
	}
	d.opts.Normalize()
	if d.opts.Workers == s.opts.Workers {
		d.pool = s.pool
	} else {
		d.pool = engine.New(d.opts.Workers)
	}
	return d
}

// Application returns the session's application.
func (s *Solver) Application() *model.Application { return s.app }

// Architecture returns the session's architecture.
func (s *Solver) Architecture() *model.Architecture { return s.arch }

// Options returns a copy of the solver's normalized options.
func (s *Solver) Options() Options { return s.opts }

// baseConfig returns a fresh clone of the cached un-normalized default
// configuration (the OptimizeSchedule starting template).
func (s *Solver) baseConfig() *core.Config {
	c := s.cache
	c.mu.Lock()
	if c.baseRaw == nil {
		c.baseRaw = core.DefaultConfig(s.app, s.arch)
	}
	cfg := c.baseRaw.Clone()
	c.mu.Unlock()
	return cfg
}

// normalizedBase returns a fresh clone of the cached normalized default
// configuration (the SF result shape and the annealers' start point).
func (s *Solver) normalizedBase() (*core.Config, error) {
	c := s.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.baseNorm == nil {
		cfg := core.DefaultConfig(s.app, s.arch)
		if err := cfg.Normalize(s.app); err != nil {
			return nil, err
		}
		c.baseNorm = cfg
	}
	return c.baseNorm.Clone(), nil
}

// slotLengths is the cached tsched.RecommendedSlotLengths: the
// candidate sets depend only on the application's traffic per owner, so
// one derivation serves every OptimizeSchedule position and every
// Synthesize call of the session.
func (s *Solver) slotLengths(owner model.NodeID, max int) []model.Time {
	k := slotKey{owner: owner, max: max}
	c := s.cache
	c.mu.Lock()
	lengths, ok := c.slotLens[k]
	if !ok {
		lengths = tsched.RecommendedSlotLengths(s.app, s.arch, owner, max)
		c.slotLens[k] = lengths
	}
	c.mu.Unlock()
	return lengths
}

// evaluator returns the shared incremental evaluator, creating it on
// first use, or nil when the session runs with delta-eval disabled.
func (s *Solver) evaluator() *delta.Evaluator {
	if s.opts.NoDelta {
		return nil
	}
	c := s.cache
	c.mu.Lock()
	if c.deltaEval == nil {
		c.deltaEval = delta.New(s.app, s.arch)
	}
	ev := c.deltaEval
	c.mu.Unlock()
	return ev
}

// eval is the session's analysis function: the incremental evaluator
// when delta-eval is on (the default), the cold core.Analyze otherwise.
// Results are bit-identical either way.
func (s *Solver) eval() opt.EvalFunc {
	if ev := s.evaluator(); ev != nil {
		return ev.Analyze
	}
	return func(cfg *core.Config) (*core.Analysis, error) {
		return core.Analyze(s.app, s.arch, cfg)
	}
}

// DeltaStats reports the incremental evaluator's cache counters (the
// zero Stats when the session runs with WithDelta(false) or nothing was
// analyzed yet). Derived sessions share the evaluator, so the counters
// aggregate over every session of the system.
func (s *Solver) DeltaStats() delta.Stats {
	if s.opts.NoDelta {
		return delta.Stats{}
	}
	c := s.cache
	c.mu.Lock()
	ev := c.deltaEval
	c.mu.Unlock()
	if ev == nil {
		return delta.Stats{}
	}
	return ev.Stats()
}

// emit serializes an event to the observer, if any.
func (s *Solver) emit(p Progress) {
	obs := s.opts.Observer
	if obs == nil {
		return
	}
	s.obsMu.Lock()
	obs.OnProgress(p)
	s.obsMu.Unlock()
}

// observeOpt adapts the observer to the opt package's progress hook.
func (s *Solver) observeOpt(strat Strategy) func(opt.Progress) {
	if s.opts.Observer == nil {
		return nil
	}
	return func(p opt.Progress) {
		ev := Progress{Strategy: strat, Phase: p.Phase, Step: p.Step, Evaluations: p.Evaluations}
		if p.Best != nil {
			ev.BestDelta = p.Best.Delta()
			ev.BestBuffers = p.Best.STotal()
			ev.Schedulable = p.Best.Schedulable()
		}
		s.emit(ev)
	}
}

// observeSA adapts the observer to the sa package's progress hook.
func (s *Solver) observeSA(strat Strategy) func(sa.Progress) {
	if s.opts.Observer == nil {
		return nil
	}
	return func(p sa.Progress) {
		ev := Progress{Strategy: strat, Phase: "sa", Chain: p.Chain, Step: p.Iteration, Evaluations: p.Evaluations}
		if p.Best != nil {
			ev.BestDelta = p.Best.Delta()
			ev.BestBuffers = p.Best.STotal()
			ev.Schedulable = p.Best.Schedulable()
		}
		s.emit(ev)
	}
}

// hooks builds the opt instrumentation for one run: progress to the
// observer, derived state from the session caches.
func (s *Solver) hooks(strat Strategy) opt.Hooks {
	return opt.Hooks{
		OnProgress:  s.observeOpt(strat),
		SlotLengths: s.slotLengths,
		BaseConfig:  s.baseConfig,
		Eval:        s.eval(),
	}
}

// orOptions assembles the OR/OS options of one run from the session
// options, the shared pool and the instrumentation hooks. The session
// pool is injected only where the nested worker count matches the
// session's, so an explicit per-optimizer override (WithOROptions with
// Workers set) still bounds that optimizer's own pool.
func (s *Solver) orOptions(strat Strategy) opt.OROptions {
	o := s.opts.OR
	o.Hooks = s.hooks(strat)
	o.OS.Hooks = o.Hooks
	if o.Workers == s.opts.Workers {
		o.Pool = s.pool
	}
	if o.OS.Workers == s.opts.Workers {
		o.OS.Pool = s.pool
	}
	return o
}

// Analyze runs the MultiClusterScheduling fixed point (Fig. 5) for one
// configuration.
func (s *Solver) Analyze(ctx context.Context, cfg *core.Config) (*core.Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.eval()(cfg)
}

// AnalyzeAll analyzes a batch of independent candidate configurations
// across the session pool, in input order (identical to analyzing them
// serially); per-configuration failures are captured per item.
func (s *Solver) AnalyzeAll(ctx context.Context, cfgs []*core.Config) ([]engine.Evaluation, error) {
	return engine.EvaluateAllWith(ctx, s.pool, engine.Analyzer(s.eval()), cfgs)
}

// Simulate executes a configuration in the discrete-event simulator.
// a may be nil, in which case the configuration is analyzed first (one
// extra evaluation).
func (s *Solver) Simulate(ctx context.Context, cfg *core.Config, a *core.Analysis, opts sim.Options) (*sim.Result, error) {
	if a == nil {
		var err error
		if a, err = s.Analyze(ctx, cfg); err != nil {
			return nil, err
		}
	}
	return sim.RunContext(ctx, s.app, s.arch, cfg, a, opts)
}

// Straightforward evaluates the SF baseline from the cached template.
func (s *Solver) Straightforward(ctx context.Context) (*opt.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg, err := s.normalizedBase()
	if err != nil {
		return nil, err
	}
	a, err := s.eval()(cfg)
	if err != nil {
		return nil, err
	}
	return &opt.Result{Config: cfg, Analysis: a}, nil
}

// OptimizeSchedule runs the Fig. 8 slot search with the session's
// options, pool and caches, exposing the full internal result (seeds
// included) for experiment sweeps.
func (s *Solver) OptimizeSchedule(ctx context.Context) (*opt.OSResult, error) {
	o := s.orOptions(OptimizeSchedule)
	return opt.OptimizeSchedule(ctx, s.app, s.arch, o.OS)
}

// OptimizeResources runs the Fig. 7 two-step optimization with the
// session's options, pool and caches, exposing the full internal
// result (the OS sub-result included) for experiment sweeps.
func (s *Solver) OptimizeResources(ctx context.Context) (*opt.ORResult, error) {
	return opt.OptimizeResources(ctx, s.app, s.arch, s.orOptions(OptimizeResources))
}

// Anneal runs one simulated-annealing chain set from initial under the
// session's options; seed 0 uses the session seed. Experiment sweeps
// use this to build the paper's best-ever SA yardsticks.
func (s *Solver) Anneal(ctx context.Context, obj sa.Objective, initial *core.Config, seed int64, strat Strategy) (*sa.Result, error) {
	if seed == 0 {
		seed = s.opts.Seed
	}
	return sa.RunRestarts(ctx, s.app, s.arch, initial, sa.Options{
		Objective: obj, Iterations: s.opts.SAIterations, Seed: seed,
		Restarts: s.opts.SARestarts, Workers: s.opts.Workers, Pool: s.pool,
		Eval:       s.eval(),
		OnProgress: s.observeSA(strat),
	})
}

// Synthesize finds a system configuration with the session's configured
// strategy. Cancelling ctx returns promptly — within one evaluation
// granule — with the best configuration found so far (when one exists)
// and the context's error.
func (s *Solver) Synthesize(ctx context.Context) (*Result, error) {
	return s.SynthesizeWith(ctx, s.opts.Strategy)
}

// SynthesizeWith is Synthesize with an explicit strategy, letting one
// session compare algorithms without rebuilding its caches.
func (s *Solver) SynthesizeWith(ctx context.Context, strat Strategy) (*Result, error) {
	switch strat {
	case Straightforward:
		r, err := s.Straightforward(ctx)
		if err != nil {
			return nil, err
		}
		res := &Result{Config: r.Config, Analysis: r.Analysis, Evaluations: 1}
		s.emit(Progress{Strategy: strat, Phase: "sf", Step: 1, Evaluations: 1,
			BestDelta: r.Delta(), BestBuffers: r.STotal(), Schedulable: r.Schedulable()})
		return res, nil

	case OptimizeSchedule:
		r, err := s.OptimizeSchedule(ctx)
		if r == nil || r.Best == nil {
			if err == nil {
				err = fmt.Errorf("solve: OptimizeSchedule found no evaluable configuration")
			}
			return nil, err
		}
		return &Result{Config: r.Best.Config, Analysis: r.Best.Analysis, Evaluations: r.Evaluations}, err

	case OptimizeResources:
		r, err := s.OptimizeResources(ctx)
		if r == nil || r.Best == nil {
			if err == nil {
				err = fmt.Errorf("solve: OptimizeResources found no evaluable configuration")
			}
			return nil, err
		}
		return &Result{Config: r.Best.Config, Analysis: r.Best.Analysis, Evaluations: r.Evaluations}, err

	case SAS, SAR:
		obj := sa.MinimizeDelta
		if strat == SAR {
			obj = sa.MinimizeBuffers
		}
		initial, err := s.normalizedBase()
		if err != nil {
			return nil, err
		}
		r, aerr := s.Anneal(ctx, obj, initial, s.opts.Seed, strat)
		if r == nil || r.Best == nil {
			if aerr == nil {
				aerr = fmt.Errorf("solve: annealing found no evaluable configuration")
			}
			return nil, aerr
		}
		return &Result{Config: r.Best.Config, Analysis: r.Best.Analysis, Evaluations: r.Evaluations}, aerr
	}
	return nil, fmt.Errorf("repro: unknown strategy %v", strat)
}
