package solve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/dse"
	"repro/internal/gen"
	"repro/internal/model"
)

// paperSystem builds one of the §6 evaluation systems (gen.Paper, the
// Fig. 9 workload).
func paperSystem(t testing.TB, nodes int, seed int64) (*model.Application, *model.Architecture) {
	t.Helper()
	sys, err := gen.Paper(nodes, seed)
	if err != nil {
		t.Fatalf("gen.Paper: %v", err)
	}
	return sys.Application, sys.Architecture
}

// TestExploreDominatesSingleObjectiveOnPaperCorpus is the acceptance
// criterion: on the paper corpus the DSE front must contain points that
// weakly dominate both the OS-only and the OR-only single-objective
// results. The warm start makes this structural — the OS/OR optima are
// archived — and this test pins it against regressions in the archive
// or the warm-start plumbing.
func TestExploreDominatesSingleObjectiveOnPaperCorpus(t *testing.T) {
	for _, seed := range []int64{2, 3} { // even/odd: exponential and uniform WCETs
		app, arch := paperSystem(t, 2, seed)
		s, err := New(app, arch, WithWorkers(4), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		osres, err := s.SynthesizeWith(ctx, OptimizeSchedule)
		if err != nil {
			t.Fatalf("seed %d: OS: %v", seed, err)
		}
		orres, err := s.SynthesizeWith(ctx, OptimizeResources)
		if err != nil {
			t.Fatalf("seed %d: OR: %v", seed, err)
		}
		front, err := s.Explore(ctx, WithPopulation(8), WithGenerations(3))
		if err != nil {
			t.Fatalf("seed %d: Explore: %v", seed, err)
		}
		osObj := dse.Point{Config: osres.Config, Analysis: osres.Analysis}.Objectives()
		orObj := dse.Point{Config: orres.Config, Analysis: orres.Analysis}.Objectives()
		for name, single := range map[string]dse.Objectives{"OS": osObj, "OR": orObj} {
			dominated := false
			for _, p := range front.Front {
				if p.Objectives().WeaklyDominates(single) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Errorf("seed %d: no front point weakly dominates the %s result %v", seed, name, single)
				for _, p := range front.Front {
					t.Logf("  front: %v", p.Objectives())
				}
			}
		}
		// The front itself must stay mutually non-dominated.
		for i, p := range front.Front {
			for j, q := range front.Front {
				if i != j && p.Objectives().WeaklyDominates(q.Objectives()) {
					t.Errorf("seed %d: front[%d] dominates front[%d]", seed, i, j)
				}
			}
		}
	}
}

// TestExploreBitIdenticalAcrossWorkers is the determinism half of the
// acceptance criterion: for a fixed seed the front must be
// bit-identical (configuration bytes included) between a serial and a
// parallel session on the paper corpus.
func TestExploreBitIdenticalAcrossWorkers(t *testing.T) {
	app, arch := paperSystem(t, 2, 3)
	run := func(workers int) *dse.Result {
		s, err := New(app, arch, WithWorkers(workers), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Explore(context.Background(), WithPopulation(8), WithGenerations(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	if serial.Evaluations != parallel.Evaluations || serial.Hypervolume != parallel.Hypervolume {
		t.Errorf("serial (%d evals, hv %v) != parallel (%d evals, hv %v)",
			serial.Evaluations, serial.Hypervolume, parallel.Evaluations, parallel.Hypervolume)
	}
	if len(serial.Front) != len(parallel.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(serial.Front), len(parallel.Front))
	}
	for i := range serial.Front {
		var a, b bytes.Buffer
		if err := serial.Front[i].Config.Save(&a); err != nil {
			t.Fatal(err)
		}
		if err := parallel.Front[i].Config.Save(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("front[%d] configurations differ between worker counts", i)
		}
	}
}

// TestExploreObserverStream: an exploration streams its warm-start
// phases and one "dse" event per generation, all labeled with the
// Explore strategy, with monotone evaluation counts and the final
// front statistics.
func TestExploreObserverStream(t *testing.T) {
	app, arch := system(t, 3)
	var mu sync.Mutex
	var events []Progress
	s, err := New(app, arch, WithObserver(ObserverFunc(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Explore(context.Background(), WithPopulation(6), WithGenerations(2))
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	lastEvals := 0
	var lastDSE Progress
	for _, ev := range events {
		if ev.Strategy != Explore {
			t.Errorf("event strategy %v, want Explore", ev.Strategy)
		}
		phases[ev.Phase]++
		if ev.Phase == "dse" {
			lastDSE = ev
			if ev.Evaluations < lastEvals {
				t.Errorf("dse evaluations went backwards: %d after %d", ev.Evaluations, lastEvals)
			}
			lastEvals = ev.Evaluations
		}
	}
	if phases["os"] == 0 {
		t.Error("no warm-start os events")
	}
	if got := phases["dse"]; got != 3 { // generation 0 (initial) + 2
		t.Errorf("dse events = %d, want 3", got)
	}
	if lastDSE.FrontSize != len(res.Front) {
		t.Errorf("last dse event front size %d, want %d", lastDSE.FrontSize, len(res.Front))
	}
	if lastDSE.Hypervolume != res.Hypervolume {
		t.Errorf("last dse event hypervolume %v, want %v", lastDSE.Hypervolume, res.Hypervolume)
	}
	if lastDSE.Evaluations != res.Evaluations {
		t.Errorf("last dse event evaluations %d, want %d", lastDSE.Evaluations, res.Evaluations)
	}
}

// TestExploreCancelDuringWarmStart: cancelling while the OS/OR warm
// start runs still returns the partial single-objective results as a
// best-so-far front.
func TestExploreCancelDuringWarmStart(t *testing.T) {
	app, arch := system(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := New(app, arch, WithObserver(ObserverFunc(func(p Progress) {
		if p.Phase == "os" {
			cancel() // first warm-start event: cancel mid-OS
		}
	})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Explore(ctx, WithPopulation(6), WithGenerations(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Front) == 0 {
		t.Fatal("cancelled warm start returned no best-so-far front")
	}
	if res.Evaluations == 0 {
		t.Error("partial result reports zero evaluations")
	}
}

// TestExploreWithoutWarmStart: WithWarmStart(false) skips the OS/OR
// pass — the exploration stands alone and its evaluation count stays
// at the NSGA-II budget.
func TestExploreWithoutWarmStart(t *testing.T) {
	app, arch := system(t, 3)
	s, err := New(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Explore(context.Background(), WithPopulation(6), WithGenerations(2))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.Explore(context.Background(), WithPopulation(6), WithGenerations(2), WithWarmStart(false))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Evaluations >= warm.Evaluations {
		t.Errorf("cold exploration (%d evals) should spend fewer analyses than warm (%d)",
			cold.Evaluations, warm.Evaluations)
	}
}

// TestExploreTinyArchiveCapKeepsDominationGuarantee: even when the
// archive cap forces pruning every generation, the warm-start points
// are pinned, so the front still weakly dominates the OS and OR
// results.
func TestExploreTinyArchiveCapKeepsDominationGuarantee(t *testing.T) {
	app, arch := system(t, 3)
	s, err := New(app, arch, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	osres, err := s.SynthesizeWith(ctx, OptimizeSchedule)
	if err != nil {
		t.Fatal(err)
	}
	orres, err := s.SynthesizeWith(ctx, OptimizeResources)
	if err != nil {
		t.Fatal(err)
	}
	front, err := s.Explore(ctx, WithPopulation(8), WithGenerations(4), WithArchiveCap(2))
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"OS": osres, "OR": orres} {
		single := dse.Point{Config: r.Config, Analysis: r.Analysis}.Objectives()
		dominated := false
		for _, p := range front.Front {
			if p.Objectives().WeaklyDominates(single) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("cap-2 front lost weak domination of the %s result %v", name, single)
			for _, p := range front.Front {
				t.Logf("  front: %v", p.Objectives())
			}
		}
	}
}

// TestExploreSeedDefaultsToSession: an explicit WithExploreSeed equal
// to the session seed is the same exploration as the default.
func TestExploreSeedDefaultsToSession(t *testing.T) {
	app, arch := system(t, 3)
	s, err := New(app, arch, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Explore(context.Background(), WithPopulation(6), WithGenerations(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Explore(context.Background(), WithPopulation(6), WithGenerations(2), WithExploreSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluations != b.Evaluations || a.Hypervolume != b.Hypervolume || len(a.Front) != len(b.Front) {
		t.Errorf("default-seed exploration differs from explicit session seed: (%d, %v, %d) vs (%d, %v, %d)",
			a.Evaluations, a.Hypervolume, len(a.Front), b.Evaluations, b.Hypervolume, len(b.Front))
	}
}
