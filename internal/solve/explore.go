package solve

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/opt"
)

// DSEOptions tunes Solver.Explore. Zero values select the dse package
// defaults; the seed defaults to the session seed. The options are
// per-call (unlike the session Options) so one Solver can serve many
// exploration budgets without rebuilding its caches.
type DSEOptions struct {
	// Population and Generations bound the NSGA-II loop (defaults 16
	// and 12).
	Population  int
	Generations int
	// MoveBudget is the §5.1 moves sampled per mutation (default 16);
	// MaxMutations caps the moves stacked per offspring (default 3).
	MoveBudget   int
	MaxMutations int
	// ArchiveCap bounds the non-dominated archive (default
	// dse.DefaultArchiveCap).
	ArchiveCap int
	// Seed drives the exploration randomness (0 = the session seed).
	Seed int64
	// WarmStart runs the OS/OR heuristics first and injects their
	// results into the initial population and the archive, so the front
	// always weakly dominates the paper's single-objective optima.
	// Enabled by default; WithWarmStart(false) disables it for a pure
	// from-scratch exploration.
	WarmStart bool
	// Seeds are extra configurations injected into the initial
	// population (re-analyzed; cloned before use).
	Seeds []*core.Config
}

// DSEOption mutates the DSEOptions of one Explore call.
type DSEOption func(*DSEOptions)

// WithPopulation sets the NSGA-II population size.
func WithPopulation(n int) DSEOption { return func(o *DSEOptions) { o.Population = n } }

// WithGenerations bounds the exploration generations.
func WithGenerations(n int) DSEOption { return func(o *DSEOptions) { o.Generations = n } }

// WithMoveBudget sets how many §5.1 moves are sampled per mutation.
func WithMoveBudget(n int) DSEOption { return func(o *DSEOptions) { o.MoveBudget = n } }

// WithMaxMutations caps the moves stacked onto one offspring.
func WithMaxMutations(n int) DSEOption { return func(o *DSEOptions) { o.MaxMutations = n } }

// WithArchiveCap bounds the non-dominated archive.
func WithArchiveCap(n int) DSEOption { return func(o *DSEOptions) { o.ArchiveCap = n } }

// WithExploreSeed seeds the exploration rng (0 keeps the session seed).
func WithExploreSeed(seed int64) DSEOption { return func(o *DSEOptions) { o.Seed = seed } }

// WithWarmStart toggles the OS/OR warm start (on by default).
func WithWarmStart(on bool) DSEOption { return func(o *DSEOptions) { o.WarmStart = on } }

// WithSeedConfigs injects extra configurations into the initial
// population.
func WithSeedConfigs(cfgs ...*core.Config) DSEOption {
	return func(o *DSEOptions) { o.Seeds = append(o.Seeds, cfgs...) }
}

// Explore runs the multi-objective design-space exploration (package
// dse) on the session: instead of a single configuration it returns a
// Pareto front over (degree of schedulability, total buffer need,
// reserved TTP bus bandwidth). The exploration shares the session's
// evaluation pool and cached templates, streams "dse" progress events
// to the session observer, and is bit-identical for every worker count
// under a fixed seed.
//
// By default the search warm-starts from the paper's single-objective
// heuristics: OptimizeResources runs first (with the session's OR
// options and caches) and its results — the OR optimum, the OS optimum
// and the OS seed solutions — are injected into the initial population
// and the archive. The returned front therefore always contains points
// that weakly dominate both the OS-only and the OR-only results;
// Result.Evaluations includes the warm start's analyses.
//
// Cancelling ctx returns the best-so-far front (even mid-warm-start)
// together with the context's error.
func (s *Solver) Explore(ctx context.Context, options ...DSEOption) (*dse.Result, error) {
	o := DSEOptions{WarmStart: true}
	for _, fn := range options {
		if fn != nil {
			fn(&o)
		}
	}
	if o.Seed == 0 {
		o.Seed = s.opts.Seed
	}

	warmEvals := 0
	var warmPoints []dse.Point
	if o.WarmStart {
		orres, err := opt.OptimizeResources(ctx, s.app, s.arch, s.orOptions(Explore))
		if orres != nil {
			warmEvals = orres.Evaluations
			collect := func(r *opt.Result) {
				if r != nil {
					warmPoints = append(warmPoints, dse.Point{Config: r.Config, Analysis: r.Analysis})
				}
			}
			collect(orres.Best)
			if orres.OS != nil {
				collect(orres.OS.Best)
				for _, sd := range orres.OS.Seeds {
					collect(sd)
				}
			}
		}
		if err != nil {
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			// Cancelled mid-warm-start: the partial OS/OR results are
			// the best-so-far front.
			a := dse.NewArchive(o.ArchiveCap)
			for _, p := range warmPoints {
				a.AddPinned(p)
			}
			return &dse.Result{
				Front:       a.Points(),
				Evaluations: warmEvals,
				Hypervolume: a.Hypervolume(),
			}, err
		}
	}

	res, err := dse.Explore(ctx, s.app, s.arch, dse.Options{
		Population:   o.Population,
		Generations:  o.Generations,
		MoveBudget:   o.MoveBudget,
		MaxMutations: o.MaxMutations,
		ArchiveCap:   o.ArchiveCap,
		Seed:         o.Seed,
		Workers:      s.opts.Workers,
		Pool:         s.pool,
		Seeds:        o.Seeds,
		SeedPoints:   warmPoints,
		BaseConfig:   s.baseConfig,
		Eval:         s.eval(),
		OnProgress:   s.observeDSE(warmEvals),
	})
	if res != nil {
		res.Evaluations += warmEvals
	}
	return res, err
}

// observeDSE adapts the observer to the dse package's progress hook;
// the warm start's evaluations are folded in so the stream counts
// every analysis of the call.
func (s *Solver) observeDSE(warmEvals int) func(dse.Progress) {
	if s.opts.Observer == nil {
		return nil
	}
	return func(p dse.Progress) {
		s.emit(Progress{
			Strategy:    Explore,
			Phase:       "dse",
			Step:        p.Generation,
			Evaluations: warmEvals + p.Evaluations,
			FrontSize:   p.FrontSize,
			Hypervolume: p.Hypervolume,
		})
	}
}
