package solve

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sim"
)

// system generates a small two-cluster application for the session
// tests.
func system(t testing.TB, seed int64) (*model.Application, *model.Architecture) {
	t.Helper()
	sys, err := gen.Generate(gen.Spec{Seed: seed, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6, ProcsPerGraph: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sys.Application, sys.Architecture
}

// TestOptionsNormalizeWorkersAgree is the regression test for the old
// facade's forwarding footgun, where Workers was copied into OR.Workers
// and OR.OS.Workers independently and the three could end up disagreeing.
// Normalization happens in exactly one place (New), and the nested
// counts inherit top-down.
func TestOptionsNormalizeWorkersAgree(t *testing.T) {
	app, arch := system(t, 1)
	cases := []struct {
		name        string
		opts        []Option
		top, or, os int
	}{
		{"defaults", nil, 1, 1, 1},
		{"top-level only", []Option{WithWorkers(8)}, 8, 8, 8},
		{"or overrides", []Option{WithWorkers(8), WithOROptions(opt.OROptions{Workers: 5})}, 8, 5, 5},
		{"negative is serial", []Option{WithWorkers(-3)}, 1, 1, 1},
	}
	for _, c := range cases {
		s, err := New(app, arch, c.opts...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		o := s.Options()
		if o.Workers != c.top || o.OR.Workers != c.or || o.OR.OS.Workers != c.os {
			t.Errorf("%s: workers (top=%d or=%d os=%d), want (%d, %d, %d)",
				c.name, o.Workers, o.OR.Workers, o.OR.OS.Workers, c.top, c.or, c.os)
		}
		// The invariant the old plumbing violated: when the caller only
		// sets the top-level count, the nested counts cannot disagree.
		if len(c.opts) < 2 && (o.OR.Workers != o.Workers || o.OR.OS.Workers != o.OR.Workers) {
			t.Errorf("%s: nested worker counts disagree: %d/%d/%d", c.name, o.Workers, o.OR.Workers, o.OR.OS.Workers)
		}
	}
}

// TestOptionsSeedCentralized checks the single-point seed defaulting:
// Seed == 0 becomes 1 for every randomized path (annealing and the OR
// neighbourhood sampling), not just inside the SA branch.
func TestOptionsSeedCentralized(t *testing.T) {
	app, arch := system(t, 1)
	zero, err := New(app, arch, WithSeed(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := zero.Options().Seed; got != 1 {
		t.Errorf("Seed 0 normalized to %d, want 1", got)
	}
	if got := zero.Options().OR.RandSeed; got != 1 {
		t.Errorf("OR.RandSeed inherited %d, want 1", got)
	}
	seeded, err := New(app, arch, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := seeded.Options().OR.RandSeed; got != 7 {
		t.Errorf("OR.RandSeed inherited %d, want the session seed 7", got)
	}
	explicit, err := New(app, arch, WithSeed(7), WithOROptions(opt.OROptions{RandSeed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if got := explicit.Options().OR.RandSeed; got != 3 {
		t.Errorf("explicit OR.RandSeed overridden to %d, want 3", got)
	}

	// The default and the explicit seed 1 must behave identically on a
	// randomized strategy.
	ctx := context.Background()
	a, err := zero.SynthesizeWith(ctx, SAS)
	if err != nil {
		t.Fatalf("SAS seed 0: %v", err)
	}
	one, err := New(app, arch, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := one.SynthesizeWith(ctx, SAS)
	if err != nil {
		t.Fatalf("SAS seed 1: %v", err)
	}
	if !reflect.DeepEqual(a.Config, b.Config) || a.Evaluations != b.Evaluations {
		t.Error("seed 0 and seed 1 disagree: the default is not centralized")
	}
}

// TestStrategyRoundTrip: ParseStrategy(s.String()) == s for every
// strategy, and parsing is case-insensitive.
func TestStrategyRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	for in, want := range map[string]Strategy{
		"sf": Straightforward, "SF": Straightforward, "Sf": Straightforward,
		"straightforward": Straightforward, "OPTIMIZE-RESOURCES": OptimizeResources,
		"sAs": SAS, "SaR": SAR,
	} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, want, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("invalid strategy accepted")
	}
	if Strategy(42).String() == "" {
		t.Error("out-of-range strategy has no name")
	}
}

// TestSolverReuseBitIdentical: repeated Synthesize calls on one session
// are bit-identical to fresh one-shot sessions, for every strategy —
// the cached derived state must never leak into the results.
func TestSolverReuseBitIdentical(t *testing.T) {
	app, arch := system(t, 2)
	ctx := context.Background()
	shared, err := New(app, arch, WithSAIterations(30))
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range Strategies() {
		fresh, err := New(app, arch, WithSAIterations(30))
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.SynthesizeWith(ctx, strat)
		if err != nil {
			t.Fatalf("%v fresh: %v", strat, err)
		}
		for i := 0; i < 3; i++ {
			got, err := shared.SynthesizeWith(ctx, strat)
			if err != nil {
				t.Fatalf("%v reuse %d: %v", strat, i, err)
			}
			if !reflect.DeepEqual(got.Config, want.Config) {
				t.Errorf("%v reuse %d: config differs from a fresh session", strat, i)
			}
			if !reflect.DeepEqual(got.Analysis, want.Analysis) {
				t.Errorf("%v reuse %d: analysis differs from a fresh session", strat, i)
			}
			if got.Evaluations != want.Evaluations {
				t.Errorf("%v reuse %d: %d evaluations, fresh did %d", strat, i, got.Evaluations, want.Evaluations)
			}
		}
	}
}

// TestSolverParallelBitIdentical: the session inherits the engine's
// determinism contract — WithWorkers(N) equals WithWorkers(1).
func TestSolverParallelBitIdentical(t *testing.T) {
	app, arch := system(t, 3)
	ctx := context.Background()
	serial, err := New(app, arch, WithSAIterations(30), WithSARestarts(3))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(app, arch, WithSAIterations(30), WithSARestarts(3), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range Strategies() {
		a, err := serial.SynthesizeWith(ctx, strat)
		if err != nil {
			t.Fatalf("%v serial: %v", strat, err)
		}
		b, err := par.SynthesizeWith(ctx, strat)
		if err != nil {
			t.Fatalf("%v parallel: %v", strat, err)
		}
		if !reflect.DeepEqual(a.Config, b.Config) || a.Evaluations != b.Evaluations {
			t.Errorf("%v: parallel session differs from serial", strat)
		}
	}
}

// TestObserverStream checks the WithObserver progress stream: events
// arrive, steps advance monotonically per phase, evaluation counters
// never decrease, and the stream is serialized.
func TestObserverStream(t *testing.T) {
	app, arch := system(t, 2)
	var mu sync.Mutex
	var events []Progress
	obs := ObserverFunc(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	s, err := New(app, arch, WithObserver(obs), WithSAIterations(20))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, strat := range []Strategy{Straightforward, OptimizeSchedule, OptimizeResources, SAS} {
		events = nil
		if _, err := s.SynthesizeWith(ctx, strat); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(events) == 0 {
			t.Fatalf("%v: no progress events", strat)
		}
		lastEvals := map[string]int{}
		lastStep := map[string]int{}
		for _, e := range events {
			if e.Strategy != strat {
				t.Fatalf("%v: event with strategy %v", strat, e.Strategy)
			}
			key := e.Phase
			if e.Phase == "sa" {
				key = "sa" + string(rune(e.Chain))
			}
			if e.Step <= lastStep[key] {
				t.Fatalf("%v/%s: step %d after %d", strat, e.Phase, e.Step, lastStep[key])
			}
			if e.Evaluations < lastEvals[key] {
				t.Fatalf("%v/%s: evaluations went backwards", strat, e.Phase)
			}
			lastStep[key], lastEvals[key] = e.Step, e.Evaluations
		}
	}
}

// TestSynthesizeCancellation: cancelling mid-run returns promptly with
// a best-so-far result and leaks no goroutines.
func TestSynthesizeCancellation(t *testing.T) {
	app, arch := system(t, 2)
	before := runtime.NumGoroutine()

	for _, strat := range []Strategy{OptimizeSchedule, OptimizeResources, SAS} {
		ctx, cancel := context.WithCancel(context.Background())
		// Cancel from inside the progress stream, after the first
		// reduction step — guaranteed mid-run.
		fired := false
		obs := ObserverFunc(func(Progress) {
			if !fired {
				fired = true
				cancel()
			}
		})
		s, err := New(app, arch, WithObserver(obs), WithWorkers(4), WithSAIterations(500), WithSARestarts(4))
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := s.SynthesizeWith(ctx, strat)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", strat, err)
		}
		if res == nil || res.Config == nil || res.Analysis == nil {
			t.Fatalf("%v: no best-so-far result after cancellation", strat)
		}
		if elapsed > 10*time.Second {
			t.Errorf("%v: cancellation took %v", strat, elapsed)
		}
	}

	// Pre-cancelled contexts return immediately with no work done.
	s, err := New(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SynthesizeWith(ctx, Straightforward); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled SF: err = %v", err)
	}

	// All pool goroutines must have drained: poll because workers that
	// observed the cancellation may still be parking.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSimulateCancellation: the simulator honors the session context.
func TestSimulateCancellation(t *testing.T) {
	app, arch := system(t, 2)
	s, err := New(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SynthesizeWith(context.Background(), OptimizeSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Analysis.Schedulable {
		t.Skip("seed 2 unschedulable under OS")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Simulate(ctx, res.Config, res.Analysis, sim0()); !errors.Is(err, context.Canceled) {
		t.Errorf("Simulate with cancelled ctx: err = %v", err)
	}
	if _, err := s.Simulate(context.Background(), res.Config, nil, sim0()); err != nil {
		t.Errorf("Simulate with nil analysis: %v", err)
	}
}

func sim0() sim.Options { return sim.Options{Cycles: 1} }

// TestObservedSharesCachesStreamsOwnEvents checks the derived-session
// contract behind the service layer's per-job observers: Observed
// shares the parent's derived-state caches (same template pointers),
// streams events only to its own observer, and synthesizes a result
// bit-identical to the parent's.
func TestObservedSharesCachesStreamsOwnEvents(t *testing.T) {
	app, arch := system(t, 3)
	var parentEvents []Progress
	parent, err := New(app, arch,
		WithStrategy(OptimizeResources),
		WithObserver(ObserverFunc(func(p Progress) { parentEvents = append(parentEvents, p) })))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := parent.Synthesize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parentSeen := len(parentEvents)
	if parentSeen == 0 {
		t.Fatal("parent observer saw no events")
	}

	var derivedEvents []Progress
	derived := parent.Observed(ObserverFunc(func(p Progress) { derivedEvents = append(derivedEvents, p) }))
	if derived.cache != parent.cache {
		t.Error("derived session does not share the parent's cache")
	}
	if derived.pool != parent.pool {
		t.Error("derived session does not share the parent's pool")
	}
	got, err := derived.Synthesize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("derived session result differs from parent's")
	}
	if len(derivedEvents) == 0 {
		t.Error("derived observer saw no events")
	}
	if len(parentEvents) != parentSeen {
		t.Errorf("derived run leaked %d events into the parent observer", len(parentEvents)-parentSeen)
	}
}

// TestDeriveBitIdenticalToColdSolver checks the service layer's
// cache-sharing contract: a session derived from a base Solver with a
// fresh option set produces results bit-identical to a cold Solver
// built with those options, for every strategy, while sharing the
// base's derived-state caches.
func TestDeriveBitIdenticalToColdSolver(t *testing.T) {
	app, arch := system(t, 2)
	base, err := New(app, arch) // plain base, as the service caches it
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, strat := range Strategies() {
		opts := []Option{WithStrategy(strat), WithSeed(7), WithSAIterations(40), WithSARestarts(2)}
		derived := base.Derive(opts...)
		if derived.cache != base.cache {
			t.Fatalf("%v: derived session does not share the base cache", strat)
		}
		if derived.pool != base.pool {
			t.Fatalf("%v: derived session does not share the base pool (same workers)", strat)
		}
		cold, err := New(app, arch, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(derived.Options(), cold.Options()) {
			t.Fatalf("%v: derived options %+v differ from cold options %+v", strat, derived.Options(), cold.Options())
		}
		got, err := derived.Synthesize(ctx)
		if err != nil {
			t.Fatalf("%v: derived: %v", strat, err)
		}
		want, err := cold.Synthesize(ctx)
		if err != nil {
			t.Fatalf("%v: cold: %v", strat, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: derived result differs from cold Solver", strat)
		}
	}
}
