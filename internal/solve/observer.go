package solve

import "repro/internal/model"

// Progress is one synthesis progress event. Events are emitted in step
// order per phase; for the annealing strategies with several restart
// chains, events of different chains interleave (Chain tells them
// apart) but the stream as a whole is still delivered one event at a
// time.
type Progress struct {
	// Strategy is the strategy being run (Explore for Solver.Explore,
	// including its OS/OR warm-start phases).
	Strategy Strategy
	// Phase is the algorithm stage: "sf", "os" (slot search), "or"
	// (hill climbing), "sa" (annealing) or "dse" (design-space
	// exploration generations).
	Phase string
	// Chain is the annealing chain index (0 outside "sa").
	Chain int
	// Step is the per-phase step counter: the TDMA position for "os",
	// the hill-climbing iteration for "or", the annealing iteration for
	// "sa".
	Step int
	// Evaluations counts the schedulability analyses spent so far in
	// this phase (per chain for "sa").
	Evaluations int
	// BestDelta, BestBuffers and Schedulable describe the incumbent
	// solution (of the emitting chain for "sa"). A Pareto exploration
	// has no single incumbent, so "dse" events leave them zero and
	// report FrontSize/Hypervolume instead.
	BestDelta   model.Time
	BestBuffers int
	Schedulable bool
	// FrontSize and Hypervolume describe the archive of a "dse" phase
	// (zero elsewhere).
	FrontSize   int
	Hypervolume float64
}

// Observer receives synthesis progress events. Implementations must be
// fast — OnProgress is called synchronously from the optimizer's
// reducing goroutine — and need not be goroutine-safe: the Solver
// serializes delivery.
type Observer interface {
	OnProgress(Progress)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Progress)

// OnProgress implements Observer.
func (f ObserverFunc) OnProgress(p Progress) { f(p) }
