package solve

import (
	"fmt"
	"strings"
)

// Strategy selects a synthesis algorithm.
type Strategy int

const (
	// Straightforward is the SF baseline: ascending slot order, minimal
	// slot lengths, declaration-order priorities.
	Straightforward Strategy = iota
	// OptimizeSchedule is the greedy OS heuristic maximizing the degree
	// of schedulability (Fig. 8).
	OptimizeSchedule
	// OptimizeResources is OS followed by the OR hill climber
	// minimizing the total buffer need (Fig. 7).
	OptimizeResources
	// SAS is the simulated-annealing baseline for the degree of
	// schedulability.
	SAS
	// SAR is the simulated-annealing baseline for the buffer need.
	SAR
)

// Strategies lists every synthesis strategy, in declaration order.
func Strategies() []Strategy {
	return []Strategy{Straightforward, OptimizeSchedule, OptimizeResources, SAS, SAR}
}

// String names the strategy like the paper. ParseStrategy accepts the
// result, so String and ParseStrategy round-trip for every strategy.
func (s Strategy) String() string {
	switch s {
	case Straightforward:
		return "SF"
	case OptimizeSchedule:
		return "OS"
	case OptimizeResources:
		return "OR"
	case SAS:
		return "SAS"
	case SAR:
		return "SAR"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy maps the paper's algorithm names (sf, os, or, sas, sar;
// case-insensitive) to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "sf", "straightforward":
		return Straightforward, nil
	case "os", "optimize-schedule":
		return OptimizeSchedule, nil
	case "or", "optimize-resources":
		return OptimizeResources, nil
	case "sas":
		return SAS, nil
	case "sar":
		return SAR, nil
	}
	return 0, fmt.Errorf("repro: unknown strategy %q (want sf, os, or, sas or sar)", name)
}
