package solve

import (
	"fmt"
	"strings"
)

// Strategy selects a synthesis algorithm.
type Strategy int

const (
	// Straightforward is the SF baseline: ascending slot order, minimal
	// slot lengths, declaration-order priorities.
	Straightforward Strategy = iota
	// OptimizeSchedule is the greedy OS heuristic maximizing the degree
	// of schedulability (Fig. 8).
	OptimizeSchedule
	// OptimizeResources is OS followed by the OR hill climber
	// minimizing the total buffer need (Fig. 7).
	OptimizeResources
	// SAS is the simulated-annealing baseline for the degree of
	// schedulability.
	SAS
	// SAR is the simulated-annealing baseline for the buffer need.
	SAR
	// Explore is the multi-objective design-space exploration (package
	// dse): it labels the progress stream of Solver.Explore and is not a
	// Synthesize strategy (an exploration returns a Pareto front, not a
	// single configuration), so Strategies and ParseStrategy exclude it.
	Explore
)

// Strategies lists every synthesis strategy — the algorithms
// Synthesize accepts, each returning a single configuration — in
// declaration order. Wire clients list them via GET /v1/strategies and
// mcs-synth -h instead of hardcoding the names.
func Strategies() []Strategy {
	return []Strategy{Straightforward, OptimizeSchedule, OptimizeResources, SAS, SAR}
}

// String names the strategy like the paper. ParseStrategy accepts the
// result, so String and ParseStrategy round-trip for every strategy.
func (s Strategy) String() string {
	switch s {
	case Straightforward:
		return "SF"
	case OptimizeSchedule:
		return "OS"
	case OptimizeResources:
		return "OR"
	case SAS:
		return "SAS"
	case SAR:
		return "SAR"
	case Explore:
		return "DSE"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Description is the one-line human summary of a strategy, shared by
// the GET /v1/strategies endpoint and the CLI usage screens.
func (s Strategy) Description() string {
	switch s {
	case Straightforward:
		return "straightforward baseline: ascending slot order, minimal slot lengths, declaration-order priorities"
	case OptimizeSchedule:
		return "greedy slot search maximizing the degree of schedulability (Fig. 8)"
	case OptimizeResources:
		return "OS followed by hill climbing minimizing the total buffer need (Fig. 7)"
	case SAS:
		return "simulated-annealing baseline for the degree of schedulability"
	case SAR:
		return "simulated-annealing baseline for the total buffer need"
	case Explore:
		return "multi-objective design-space exploration returning a Pareto front"
	}
	return ""
}

// ParseStrategy maps the paper's algorithm names (sf, os, or, sas, sar;
// case-insensitive) to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "sf", "straightforward":
		return Straightforward, nil
	case "os", "optimize-schedule":
		return OptimizeSchedule, nil
	case "or", "optimize-resources":
		return OptimizeResources, nil
	case "sas":
		return SAS, nil
	case "sar":
		return SAR, nil
	}
	return 0, fmt.Errorf("repro: unknown strategy %q (want sf, os, or, sas or sar)", name)
}
