package solve

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/delta"
)

// TestDeriveSharesDeltaCache pins the session-sharing contract of the
// incremental evaluator: Derive variants (new seeds, strategies,
// worker counts) reuse the parent's evaluator — its counters aggregate
// across sessions and repeated synthesis hits the config memo — while
// producing results bit-identical to a cold Solver with the same
// options.
func TestDeriveSharesDeltaCache(t *testing.T) {
	app, arch := system(t, 3)
	ctx := context.Background()
	parent, err := New(app, arch, WithSAIterations(20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.SynthesizeWith(ctx, OptimizeSchedule); err != nil {
		t.Fatal(err)
	}
	after := parent.DeltaStats()
	if after.ConfigMisses == 0 {
		t.Fatalf("parent OS run never reached the evaluator: %v", after)
	}

	// A derived variant shares the evaluator: its traffic lands in the
	// same counters, and the parent's cached work serves its lookups.
	derived := parent.Derive(WithSeed(9), WithSAIterations(20), WithWorkers(4))
	got, err := derived.SynthesizeWith(ctx, OptimizeSchedule)
	if err != nil {
		t.Fatal(err)
	}
	shared := derived.DeltaStats()
	if shared.ConfigHits <= after.ConfigHits {
		t.Errorf("derived OS replay missed the shared config memo: %v -> %v", after, shared)
	}
	if parent.DeltaStats() != shared {
		t.Error("parent and derived sessions report different evaluator counters")
	}

	// Bit-identity: a cold Solver with the derived options agrees.
	cold, err := New(app, arch, WithSeed(9), WithSAIterations(20), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.SynthesizeWith(ctx, OptimizeSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("derived session result differs from a cold solver's")
	}
}

// TestDeriveNoDeltaDoesNotShare: a WithDelta(false) variant must bypass
// the shared evaluator entirely — zero stats, no counter movement on
// the parent beyond its own traffic — and still produce the identical
// synthesis result.
func TestDeriveNoDeltaDoesNotShare(t *testing.T) {
	app, arch := system(t, 2)
	ctx := context.Background()
	parent, err := New(app, arch, WithSAIterations(15))
	if err != nil {
		t.Fatal(err)
	}
	want, err := parent.SynthesizeWith(ctx, SAS)
	if err != nil {
		t.Fatal(err)
	}
	before := parent.DeltaStats()

	off := parent.Derive(WithDelta(false), WithSAIterations(15))
	if off.DeltaStats() != (delta.Stats{}) {
		t.Errorf("delta-off session reports evaluator stats: %v", off.DeltaStats())
	}
	got, err := off.SynthesizeWith(ctx, SAS)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("delta-off result differs from the delta-on parent's")
	}
	if parent.DeltaStats() != before {
		t.Errorf("delta-off run moved the shared counters: %v -> %v", before, parent.DeltaStats())
	}
	if off.DeltaStats() != (delta.Stats{}) {
		t.Errorf("delta-off session accumulated evaluator stats: %v", off.DeltaStats())
	}
}

// TestDeriveDeltaConcurrent runs several derived option-variant
// sessions against the shared evaluator at once; under -race (the CI
// race job runs this package) it is the cross-session data-race
// coverage for the delta cache.
func TestDeriveDeltaConcurrent(t *testing.T) {
	app, arch := system(t, 3)
	ctx := context.Background()
	parent, err := New(app, arch, WithSAIterations(15))
	if err != nil {
		t.Fatal(err)
	}

	type variant struct {
		strat Strategy
		opts  []Option
	}
	variants := []variant{
		{Straightforward, []Option{WithSeed(2), WithSAIterations(15)}},
		{OptimizeSchedule, []Option{WithSeed(3), WithSAIterations(15), WithWorkers(2)}},
		{SAS, []Option{WithSeed(4), WithSAIterations(15)}},
		{SAR, []Option{WithSeed(5), WithSAIterations(15), WithWorkers(3)}},
		{OptimizeSchedule, []Option{WithSeed(6), WithSAIterations(15), WithDelta(false)}},
	}
	results := make([]*Result, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := parent.Derive(v.opts...).SynthesizeWith(ctx, v.strat)
			if err != nil {
				t.Errorf("variant %d: %v", i, err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()

	// Every concurrent variant must equal its isolated cold run.
	for i, v := range variants {
		if results[i] == nil {
			continue
		}
		cold, err := New(app, arch, v.opts...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cold.SynthesizeWith(ctx, v.strat)
		if err != nil {
			t.Fatalf("variant %d cold: %v", i, err)
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("variant %d (%v): concurrent shared-cache result differs from cold", i, v.strat)
		}
	}
}
