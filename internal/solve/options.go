package solve

import (
	"repro/internal/opt"
)

// Options is the normalized configuration of a Solver. Zero values are
// filled in by normalize — exactly once, in New — so every consumer
// (heuristics, annealers, experiment sweeps) sees the same defaults
// and the same nested worker counts.
type Options struct {
	// Strategy selects the algorithm run by Synthesize (default
	// Straightforward).
	Strategy Strategy
	// Seed drives every randomized path: the annealing chains and the
	// OR neighbourhood sampling (default 1).
	Seed int64
	// SAIterations bounds each annealing chain (default 300).
	SAIterations int
	// SARestarts is the number of independent annealing chains for the
	// SAS/SAR strategies (default 1); the best-ever solution wins.
	SARestarts int
	// Workers bounds the solver's shared evaluation pool (default 1 =
	// serial; results are identical for every value).
	Workers int
	// OR tunes the OptimizeSchedule/OptimizeResources heuristics.
	// Unset nested worker counts and the unset RandSeed inherit the
	// top-level Workers and Seed.
	OR opt.OROptions
	// NoDelta disables the incremental delta-evaluation engine
	// (internal/delta): every analysis then runs the cold
	// core.Analyze path. The zero value keeps delta-eval ON — it is
	// bit-identical to the cold path (the differential harness proves
	// it), so the escape hatch exists for benchmarking and debugging,
	// not correctness (the CLIs expose it as -delta=false).
	NoDelta bool
	// Observer, when non-nil, receives progress events.
	Observer Observer
}

// Normalize fills defaults and resolves every nested option from the
// top-level ones. New calls it, so constructed Solvers always see
// normalized options; the service layer also calls it directly to
// derive canonical cache keys from request fields. After it returns,
// Workers, OR.Workers and OR.OS.Workers agree unless the caller
// explicitly set them apart.
func (o *Options) Normalize() {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SAIterations <= 0 {
		o.SAIterations = 300
	}
	if o.SARestarts <= 0 {
		o.SARestarts = 1
	}
	if o.OR.Workers <= 0 {
		o.OR.Workers = o.Workers
	}
	if o.OR.OS.Workers <= 0 {
		o.OR.OS.Workers = o.OR.Workers
	}
	if o.OR.RandSeed == 0 {
		o.OR.RandSeed = o.Seed
	}
}

// Option mutates the Options of a Solver under construction.
type Option func(*Options)

// WithStrategy selects the algorithm run by Synthesize.
func WithStrategy(s Strategy) Option { return func(o *Options) { o.Strategy = s } }

// WithSeed seeds every randomized path (0 keeps the default of 1).
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithSAIterations bounds each annealing chain.
func WithSAIterations(n int) Option { return func(o *Options) { o.SAIterations = n } }

// WithSARestarts sets the number of independent annealing chains.
func WithSARestarts(n int) Option { return func(o *Options) { o.SARestarts = n } }

// WithWorkers bounds the solver's shared evaluation pool; the
// synthesized configurations are identical for every value.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithObserver streams progress events to obs.
func WithObserver(obs Observer) Option { return func(o *Options) { o.Observer = obs } }

// WithDelta toggles the incremental delta-evaluation engine (on by
// default; results are bit-identical either way).
func WithDelta(on bool) Option { return func(o *Options) { o.NoDelta = !on } }

// WithOROptions tunes the OS/OR heuristics (iteration caps, seed
// limits, neighbour budgets). Unset nested worker counts still inherit
// the top-level WithWorkers value.
func WithOROptions(or opt.OROptions) Option { return func(o *Options) { o.OR = or } }
