package solve

import (
	"context"
	"testing"

	"repro/internal/core"
)

// The benchmarks below compare the cold-start path (a fresh Solver per
// operation, deriving default configuration templates and slot
// candidate sets from scratch) with the session path (one Solver
// reused), for the analyze and synthesize entry points. CI collects
// them into the BENCH_solver.json artifact.

func benchSolver(b *testing.B) *Solver {
	b.Helper()
	app, arch := system(b, 1)
	s, err := New(app, arch)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSolverAnalyzeCold builds a fresh session per analysis.
func BenchmarkSolverAnalyzeCold(b *testing.B) {
	app, arch := system(b, 1)
	cfg := core.DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(app, arch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Analyze(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverAnalyzeCached reuses one session for every analysis.
func BenchmarkSolverAnalyzeCached(b *testing.B) {
	s := benchSolver(b)
	cfg, err := s.normalizedBase()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Analyze(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverSynthesizeCold runs the OS heuristic on a fresh
// session per call: every call re-derives the slot candidate sets and
// the configuration templates.
func BenchmarkSolverSynthesizeCold(b *testing.B) {
	app, arch := system(b, 1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(app, arch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.SynthesizeWith(ctx, OptimizeSchedule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverSynthesizeCached runs the OS heuristic on one session:
// from the second call on, the derived state comes from the caches.
func BenchmarkSolverSynthesizeCached(b *testing.B) {
	s := benchSolver(b)
	ctx := context.Background()
	if _, err := s.SynthesizeWith(ctx, OptimizeSchedule); err != nil {
		b.Fatal(err) // warm the caches outside the timer
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SynthesizeWith(ctx, OptimizeSchedule); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSynthesizeDelta runs the full OS+OR pipeline on a fresh session
// per iteration with the incremental delta evaluator off/on. A fresh
// session isolates the intra-run reuse (the slot scan and hill climber
// revisiting configurations and stages) from session-level caching,
// which the Cold/Cached pair above measures. Results are bit-identical
// either way; scripts/benchjson.py pairs the *DeltaOff/*DeltaOn
// results into the delta_speedup section of BENCH_solver.json, with
// the delta_hit_rate metric alongside.
func benchSynthesizeDelta(b *testing.B, useDelta bool) {
	app, arch := system(b, 1)
	ctx := context.Background()
	var stats string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(app, arch, WithDelta(useDelta))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.SynthesizeWith(ctx, OptimizeResources); err != nil {
			b.Fatal(err)
		}
		if useDelta {
			ds := s.DeltaStats()
			b.ReportMetric(ds.HitRate(), "delta_hit_rate")
			b.ReportMetric(ds.StageHitRate(), "delta_stage_hit_rate")
			stats = ds.String()
		}
	}
	if useDelta && testing.Verbose() {
		b.Log(stats)
	}
}

// BenchmarkSolverSynthesizeDeltaOff is the cold reference leg.
func BenchmarkSolverSynthesizeDeltaOff(b *testing.B) { benchSynthesizeDelta(b, false) }

// BenchmarkSolverSynthesizeDeltaOn is the delta-evaluated leg.
func BenchmarkSolverSynthesizeDeltaOn(b *testing.B) { benchSynthesizeDelta(b, true) }
