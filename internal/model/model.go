// Package model defines the application and platform model used by the
// multi-cluster synthesis flow of Pop, Eles and Peng (DATE 2003).
//
// An Application is a set of process graphs (directed acyclic graphs of
// processes connected by edges). Each graph has a period and an end-to-end
// deadline. Processes are statically mapped onto the nodes of a two-cluster
// Architecture: a time-triggered cluster (TTC) whose nodes share a TTP/TDMA
// bus, and an event-triggered cluster (ETC) whose nodes share a CAN bus.
// A dedicated gateway node is connected to both buses and forwards
// inter-cluster traffic.
//
// All times in this module are expressed as integer ticks (Time). The
// interpretation of a tick (e.g. 1 ms, 10 µs) is up to the caller; the
// paper's examples use 1 tick = 1 ms.
package model

import "fmt"

// Time is a duration or instant in integer ticks.
type Time = int64

// ClusterKind tells which cluster a node belongs to.
type ClusterKind uint8

const (
	// TimeTriggered marks a node of the TTC. Its processes run according
	// to a static schedule table and its messages travel in the node's
	// TDMA slot on the TTP bus.
	TimeTriggered ClusterKind = iota
	// EventTriggered marks a node of the ETC. Its processes are scheduled
	// by a fixed-priority preemptive scheduler and its messages travel on
	// the CAN bus.
	EventTriggered
	// GatewayNode marks the single gateway node. It hosts only the
	// transfer process T and owns one TDMA slot (S_G) plus a CAN
	// identifier range for forwarded traffic.
	GatewayNode
)

// String returns a short human-readable cluster name.
func (k ClusterKind) String() string {
	switch k {
	case TimeTriggered:
		return "TT"
	case EventTriggered:
		return "ET"
	case GatewayNode:
		return "GW"
	}
	return fmt.Sprintf("ClusterKind(%d)", uint8(k))
}

// NodeID identifies a node inside an Architecture (index into Nodes).
type NodeID int

// ProcID identifies a process inside an Application (index into Procs).
type ProcID int

// EdgeID identifies an edge inside an Application (index into Edges).
type EdgeID int

// Node is a processing element of one of the clusters.
type Node struct {
	ID   NodeID      `json:"id"`
	Name string      `json:"name"`
	Kind ClusterKind `json:"kind"`
}

// TTPConfig holds the physical parameters of the TTP bus that do not
// depend on the synthesized TDMA configuration.
type TTPConfig struct {
	// TickPerByte is the bus time needed to transmit one byte inside a
	// slot. The byte capacity of a slot of length L is L / TickPerByte.
	TickPerByte Time `json:"tickPerByte"`
}

// CANConfig holds the physical parameters of the CAN bus.
type CANConfig struct {
	// BitTime is the duration of one bit on the CAN bus, in ticks.
	// Worst-case frame times are derived from it by package can.
	BitTime Time `json:"bitTime"`
}

// Architecture is the two-cluster hardware/software platform: TTC nodes,
// ETC nodes and the gateway, plus bus parameters and the gateway transfer
// process characteristics.
type Architecture struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	// Gateway is the ID of the gateway node. Exactly one node must have
	// Kind == GatewayNode and Gateway must refer to it.
	Gateway NodeID `json:"gateway"`

	TTP TTPConfig `json:"ttp"`
	CAN CANConfig `json:"can"`

	// GatewayCost is C_T, the worst-case execution time of the transfer
	// process T that copies messages between the MBI and the gateway
	// output queues. T has the highest priority on the gateway node, so
	// its worst-case response time is C_T.
	GatewayCost Time `json:"gatewayCost"`
	// GatewayPoll is the period with which T polls the MBI for frames
	// arriving from the TTP bus. It is added to the jitter of messages
	// travelling TTC -> ETC. Zero models the paper's §4.2 example, where
	// the polling delay is folded into r_T.
	GatewayPoll Time `json:"gatewayPoll"`
}

// TTNodes returns the IDs of the time-triggered nodes in architecture
// order (excluding the gateway).
func (a *Architecture) TTNodes() []NodeID {
	return a.nodesOf(TimeTriggered)
}

// ETNodes returns the IDs of the event-triggered nodes in architecture
// order (excluding the gateway).
func (a *Architecture) ETNodes() []NodeID {
	return a.nodesOf(EventTriggered)
}

func (a *Architecture) nodesOf(k ClusterKind) []NodeID {
	var ids []NodeID
	for _, n := range a.Nodes {
		if n.Kind == k {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Kind returns the cluster kind of node id.
func (a *Architecture) Kind(id NodeID) ClusterKind {
	return a.Nodes[id].Kind
}

// SlotOwners returns the nodes that own a TDMA slot on the TTP bus: all
// TT nodes plus the gateway, in architecture order. Every TDMA round
// contains exactly one slot per owner.
func (a *Architecture) SlotOwners() []NodeID {
	var ids []NodeID
	for _, n := range a.Nodes {
		if n.Kind == TimeTriggered || n.Kind == GatewayNode {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Process is a node of a process graph, statically mapped on a platform
// node.
type Process struct {
	ID    ProcID `json:"id"`
	Name  string `json:"name"`
	Graph int    `json:"graph"`
	// WCET is the worst-case execution time on the mapped node.
	WCET Time `json:"wcet"`
	// BCET is the best-case execution time, used only by the simulator.
	// Zero means "equal to WCET".
	BCET Time `json:"bcet,omitempty"`
	// Node is the platform node the process is mapped on.
	Node NodeID `json:"node"`
	// Deadline is an optional local deadline relative to the graph
	// release. Zero means no local deadline.
	Deadline Time `json:"deadline,omitempty"`
}

// Edge is a dependency between two processes of the same graph. When the
// endpoint processes are mapped on different nodes the edge materializes
// as a message of Size bytes (the black dots of Fig. 1 in the paper);
// otherwise it is a pure precedence constraint.
type Edge struct {
	ID    EdgeID `json:"id"`
	Name  string `json:"name"`
	Graph int    `json:"graph"`
	Src   ProcID `json:"src"`
	Dst   ProcID `json:"dst"`
	// Size is the message payload in bytes.
	Size int `json:"size"`
	// CANTime optionally overrides the worst-case CAN frame time of this
	// message (used to reproduce the paper's worked examples, which pick
	// round numbers instead of deriving frame times from the bit rate).
	// Zero means "derive from Size and CANConfig.BitTime".
	CANTime Time `json:"canTime,omitempty"`
}

// Graph is one process graph G_i: a connected DAG of processes released
// together with period Period and end-to-end deadline Deadline.
type Graph struct {
	Name string `json:"name"`
	// Period is T_Gi, the release period of the graph. All processes and
	// messages of the graph share it.
	Period Time `json:"period"`
	// Deadline is D_Gi <= Period, measured from the release.
	Deadline Time `json:"deadline"`
	// Procs and Edges list the members of the graph in creation order.
	Procs []ProcID `json:"procs"`
	Edges []EdgeID `json:"edges"`
}

// Application is a set of process graphs plus the flat pools of processes
// and edges they are made of. Use NewApplication and the Add* builder
// methods, then Finalize before handing the application to analysis.
type Application struct {
	Name   string    `json:"name"`
	Graphs []Graph   `json:"graphs"`
	Procs  []Process `json:"procs"`
	Edges  []Edge    `json:"edges"`

	// adjacency caches, built by Finalize.
	out [][]EdgeID
	in  [][]EdgeID
}

// NewApplication returns an empty application with the given name.
func NewApplication(name string) *Application {
	return &Application{Name: name}
}

// AddGraph appends a new process graph and returns its index.
func (a *Application) AddGraph(name string, period, deadline Time) int {
	a.Graphs = append(a.Graphs, Graph{Name: name, Period: period, Deadline: deadline})
	return len(a.Graphs) - 1
}

// AddProcess appends a process to graph g and returns its ID.
func (a *Application) AddProcess(g int, name string, wcet Time, node NodeID) ProcID {
	id := ProcID(len(a.Procs))
	a.Procs = append(a.Procs, Process{ID: id, Name: name, Graph: g, WCET: wcet, Node: node})
	a.Graphs[g].Procs = append(a.Graphs[g].Procs, id)
	a.invalidate()
	return id
}

// AddEdge appends a dependency (and potential message of size bytes)
// between two processes of the same graph and returns its ID.
func (a *Application) AddEdge(name string, src, dst ProcID, size int) EdgeID {
	id := EdgeID(len(a.Edges))
	g := a.Procs[src].Graph
	a.Edges = append(a.Edges, Edge{ID: id, Name: name, Graph: g, Src: src, Dst: dst, Size: size})
	a.Graphs[g].Edges = append(a.Graphs[g].Edges, id)
	a.invalidate()
	return id
}

func (a *Application) invalidate() { a.out, a.in = nil, nil }

// Finalize builds the adjacency caches and validates the application
// against arch. It must be called (and succeed) before analysis.
func (a *Application) Finalize(arch *Architecture) error {
	a.buildAdjacency()
	return a.Validate(arch)
}

func (a *Application) buildAdjacency() {
	a.out = make([][]EdgeID, len(a.Procs))
	a.in = make([][]EdgeID, len(a.Procs))
	for _, e := range a.Edges {
		a.out[e.Src] = append(a.out[e.Src], e.ID)
		a.in[e.Dst] = append(a.in[e.Dst], e.ID)
	}
}

func (a *Application) ensureAdjacency() {
	if a.out == nil || a.in == nil {
		a.buildAdjacency()
	}
}

// OutEdges returns the edges leaving process p, in creation order.
func (a *Application) OutEdges(p ProcID) []EdgeID {
	a.ensureAdjacency()
	return a.out[p]
}

// InEdges returns the edges entering process p, in creation order.
func (a *Application) InEdges(p ProcID) []EdgeID {
	a.ensureAdjacency()
	return a.in[p]
}

// Succs returns the successor processes of p, in edge creation order.
func (a *Application) Succs(p ProcID) []ProcID {
	var s []ProcID
	for _, e := range a.OutEdges(p) {
		s = append(s, a.Edges[e].Dst)
	}
	return s
}

// Preds returns the predecessor processes of p, in edge creation order.
func (a *Application) Preds(p ProcID) []ProcID {
	var s []ProcID
	for _, e := range a.InEdges(p) {
		s = append(s, a.Edges[e].Src)
	}
	return s
}

// PeriodOf returns the period of the graph process p belongs to.
func (a *Application) PeriodOf(p ProcID) Time { return a.Graphs[a.Procs[p].Graph].Period }

// EdgePeriod returns the period of the graph edge e belongs to.
func (a *Application) EdgePeriod(e EdgeID) Time { return a.Graphs[a.Edges[e].Graph].Period }
