package model

import "fmt"

// TopoOrder returns the processes of graph g in a topological order.
// The order is deterministic: among ready processes the one created
// first comes first. An error is returned if the graph has a cycle.
func (a *Application) TopoOrder(g int) ([]ProcID, error) {
	a.ensureAdjacency()
	members := a.Graphs[g].Procs
	indeg := make(map[ProcID]int, len(members))
	for _, p := range members {
		indeg[p] = len(a.in[p])
	}
	var order []ProcID
	// Repeatedly take the first (creation order) process with indegree 0.
	taken := make(map[ProcID]bool, len(members))
	for len(order) < len(members) {
		found := false
		for _, p := range members {
			if taken[p] || indeg[p] != 0 {
				continue
			}
			taken[p] = true
			order = append(order, p)
			for _, e := range a.out[p] {
				indeg[a.Edges[e].Dst]--
			}
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("model: graph %q contains a cycle", a.Graphs[g].Name)
		}
	}
	return order, nil
}

// TopoOrderAll returns a topological order over all processes of the
// application (graph by graph).
func (a *Application) TopoOrderAll() ([]ProcID, error) {
	var all []ProcID
	for g := range a.Graphs {
		o, err := a.TopoOrder(g)
		if err != nil {
			return nil, err
		}
		all = append(all, o...)
	}
	return all, nil
}

// Sources returns the processes of graph g without predecessors.
func (a *Application) Sources(g int) []ProcID {
	var s []ProcID
	for _, p := range a.Graphs[g].Procs {
		if len(a.InEdges(p)) == 0 {
			s = append(s, p)
		}
	}
	return s
}

// Sinks returns the processes of graph g without successors. The
// worst-case response time of the graph is measured at its sinks.
func (a *Application) Sinks(g int) []ProcID {
	var s []ProcID
	for _, p := range a.Graphs[g].Procs {
		if len(a.OutEdges(p)) == 0 {
			s = append(s, p)
		}
	}
	return s
}

// LongestPathToSink returns, for every process, the length of the longest
// WCET-weighted path from that process (inclusive) to any sink of its
// graph. Communication costs are not included; the value is used as the
// partial-critical-path priority of the list scheduler.
func (a *Application) LongestPathToSink() (map[ProcID]Time, error) {
	lp := make(map[ProcID]Time, len(a.Procs))
	for g := range a.Graphs {
		order, err := a.TopoOrder(g)
		if err != nil {
			return nil, err
		}
		for i := len(order) - 1; i >= 0; i-- {
			p := order[i]
			best := Time(0)
			for _, s := range a.Succs(p) {
				if lp[s] > best {
					best = lp[s]
				}
			}
			lp[p] = best + a.Procs[p].WCET
		}
	}
	return lp, nil
}

// CriticalPath returns the WCET-weighted critical path length of graph g,
// a lower bound on its end-to-end response time (ignoring communication
// and resource contention).
func (a *Application) CriticalPath(g int) (Time, error) {
	lp, err := a.LongestPathToSink()
	if err != nil {
		return 0, err
	}
	var best Time
	for _, p := range a.Sources(g) {
		if lp[p] > best {
			best = lp[p]
		}
	}
	return best, nil
}

// Hyperperiod returns the least common multiple of all graph periods.
func (a *Application) Hyperperiod() (Time, error) {
	h := Time(1)
	for i := range a.Graphs {
		var err error
		h, err = LCM(h, a.Graphs[i].Period)
		if err != nil {
			return 0, fmt.Errorf("model: hyperperiod overflow: %w", err)
		}
	}
	return h, nil
}

// GCD returns the greatest common divisor of two positive times.
func GCD(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of two positive times, failing on
// overflow.
func LCM(a, b Time) (Time, error) {
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("model: LCM of non-positive values %d, %d", a, b)
	}
	g := GCD(a, b)
	q := a / g
	if q > 0 && b > (1<<62)/q {
		return 0, fmt.Errorf("model: LCM(%d, %d) overflows", a, b)
	}
	return q * b, nil
}

// UtilizationByNode returns the CPU utilization contributed by the
// processes mapped on each node, as a fraction of 1.0.
func (a *Application) UtilizationByNode(arch *Architecture) map[NodeID]float64 {
	u := make(map[NodeID]float64, len(arch.Nodes))
	for _, p := range a.Procs {
		u[p.Node] += float64(p.WCET) / float64(a.PeriodOf(p.ID))
	}
	return u
}
