package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
)

// Fingerprint returns a canonical content hash of the system: a
// lowercase hex SHA-256 over every field the analysis and synthesis
// read, in a fixed field order. Two systems hash equally if and only if
// they are semantically interchangeable:
//
//   - Names (application, graph, process, edge, node names) are
//     excluded — they only decorate reports and error messages, so
//     renaming never changes the hash.
//   - Declaration order is included — process and edge IDs are indices,
//     and the default configuration assigns priorities in declaration
//     order, so reordering declarations genuinely changes the
//     synthesized system.
//
// The hash is stable across JSON round trips (SaveFile/LoadFile) and
// across processes; the service layer keys its Solver cache on it.
func (s *System) Fingerprint() (string, error) {
	if s == nil || s.Application == nil || s.Architecture == nil {
		return "", fmt.Errorf("model: fingerprint needs both application and architecture")
	}
	h := sha256.New()
	w := fpWriter{h: h}

	arch := s.Architecture
	w.str("arch")
	w.num(int64(len(arch.Nodes)))
	for _, n := range arch.Nodes {
		w.num(int64(n.ID), int64(n.Kind))
	}
	w.num(int64(arch.Gateway), arch.TTP.TickPerByte, arch.CAN.BitTime, arch.GatewayCost, arch.GatewayPoll)

	app := s.Application
	w.str("graphs")
	w.num(int64(len(app.Graphs)))
	for _, g := range app.Graphs {
		w.num(g.Period, g.Deadline, int64(len(g.Procs)))
		for _, p := range g.Procs {
			w.num(int64(p))
		}
		w.num(int64(len(g.Edges)))
		for _, e := range g.Edges {
			w.num(int64(e))
		}
	}
	w.str("procs")
	w.num(int64(len(app.Procs)))
	for _, p := range app.Procs {
		w.num(int64(p.ID), int64(p.Graph), p.WCET, p.BCET, int64(p.Node), p.Deadline)
	}
	w.str("edges")
	w.num(int64(len(app.Edges)))
	for _, e := range app.Edges {
		w.num(int64(e.ID), int64(e.Graph), int64(e.Src), int64(e.Dst), int64(e.Size), e.CANTime)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// fpWriter streams length-prefixed primitives into the hash so that
// adjacent variable-length sections can never collide.
type fpWriter struct{ h hash.Hash }

func (w fpWriter) num(vs ...int64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		w.h.Write(buf[:])
	}
}

func (w fpWriter) str(s string) {
	w.num(int64(len(s)))
	w.h.Write([]byte(s))
}
