package model

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// buildSystem constructs a small randomized two-cluster system. The
// name parameter decorates every entity so tests can build rename-only
// variants; perm gives the process declaration order inside each graph.
func buildSystem(t *testing.T, rng *rand.Rand, name string, swapDecl bool) *System {
	t.Helper()
	arch, err := NewTwoClusterArchitecture(ArchSpec{Name: name + "-arch", TTNodes: 1, ETNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	app := NewApplication(name + "-app")
	g := app.AddGraph(name+"-g0", 1000, 900)
	wcetA := Time(10 + rng.Intn(40))
	wcetB := Time(10 + rng.Intn(40))
	nodeTT := arch.TTNodes()[0]
	nodeET := arch.ETNodes()[0]
	var a, b ProcID
	if swapDecl {
		b = app.AddProcess(g, name+"-b", wcetB, nodeET)
		a = app.AddProcess(g, name+"-a", wcetA, nodeTT)
	} else {
		a = app.AddProcess(g, name+"-a", wcetA, nodeTT)
		b = app.AddProcess(g, name+"-b", wcetB, nodeET)
	}
	app.AddEdge(name+"-e", a, b, 8+rng.Intn(8))
	if err := app.Finalize(arch); err != nil {
		t.Fatal(err)
	}
	return &System{Architecture: arch, Application: app}
}

// TestFingerprintRoundTripStable is the property test of the service
// cache key: for randomized systems, Fingerprint is deterministic and
// survives a SaveFile -> LoadFile round trip unchanged.
func TestFingerprintRoundTripStable(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := buildSystem(t, rng, "s", false)
		fp1, err := sys.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		fp2, err := sys.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp2 {
			t.Fatalf("seed %d: fingerprint not deterministic: %s vs %s", seed, fp1, fp2)
		}
		path := filepath.Join(dir, "sys.json")
		if err := sys.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fp3, err := loaded.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp3 {
			t.Fatalf("seed %d: fingerprint changed across JSON round trip: %s vs %s", seed, fp1, fp3)
		}
	}
}

// TestFingerprintSemantics pins the "hashes differ only when semantics
// differ" contract: renaming every entity keeps the hash, while
// reordering declarations (which renumbers IDs and default priorities)
// or touching a WCET changes it.
func TestFingerprintSemantics(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		base := buildSystem(t, rand.New(rand.NewSource(seed)), "x", false)
		renamed := buildSystem(t, rand.New(rand.NewSource(seed)), "completely-different", false)
		reordered := buildSystem(t, rand.New(rand.NewSource(seed)), "x", true)

		fpBase := mustFP(t, base)
		if got := mustFP(t, renamed); got != fpBase {
			t.Errorf("seed %d: rename-only variant changed the fingerprint", seed)
		}
		if got := mustFP(t, reordered); got == fpBase {
			t.Errorf("seed %d: declaration reorder (different IDs/priorities) kept the fingerprint", seed)
		}

		base.Application.Procs[0].WCET++
		if got := mustFP(t, base); got == fpBase {
			t.Errorf("seed %d: WCET change kept the fingerprint", seed)
		}
	}
}

func mustFP(t *testing.T, s *System) string {
	t.Helper()
	fp, err := s.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}
