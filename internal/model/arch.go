package model

import "fmt"

// ArchSpec describes a symmetric two-cluster platform for
// NewTwoClusterArchitecture. Zero-valued fields fall back to defaults
// chosen to match the scale of the paper's examples (1 tick = 1 ms is a
// convenient reading).
type ArchSpec struct {
	Name        string
	TTNodes     int  // number of time-triggered nodes (>= 1)
	ETNodes     int  // number of event-triggered nodes (>= 1)
	TickPerByte Time // TTP slot time per byte; default 1
	CANBitTime  Time // CAN bit duration; default 1 (frame times via package can)
	GatewayCost Time // C_T; default 1
	GatewayPoll Time // MBI polling period of T; default 0
}

// NewTwoClusterArchitecture builds the canonical platform of the paper:
// TTNodes TT nodes named N1..N_k, ETNodes ET nodes named N_{k+1}.., and a
// gateway node NG connected to both buses.
func NewTwoClusterArchitecture(spec ArchSpec) (*Architecture, error) {
	if spec.TTNodes < 1 || spec.ETNodes < 1 {
		return nil, fmt.Errorf("model: need at least one node per cluster, got %d TT / %d ET", spec.TTNodes, spec.ETNodes)
	}
	if spec.TickPerByte == 0 {
		spec.TickPerByte = 1
	}
	if spec.CANBitTime == 0 {
		spec.CANBitTime = 1
	}
	if spec.GatewayCost == 0 {
		spec.GatewayCost = 1
	}
	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("%dTT+%dET", spec.TTNodes, spec.ETNodes)
	}
	arch := &Architecture{
		Name:        name,
		TTP:         TTPConfig{TickPerByte: spec.TickPerByte},
		CAN:         CANConfig{BitTime: spec.CANBitTime},
		GatewayCost: spec.GatewayCost,
		GatewayPoll: spec.GatewayPoll,
	}
	id := NodeID(0)
	for i := 0; i < spec.TTNodes; i++ {
		arch.Nodes = append(arch.Nodes, Node{ID: id, Name: fmt.Sprintf("N%d", i+1), Kind: TimeTriggered})
		id++
	}
	for i := 0; i < spec.ETNodes; i++ {
		arch.Nodes = append(arch.Nodes, Node{ID: id, Name: fmt.Sprintf("N%d", spec.TTNodes+i+1), Kind: EventTriggered})
		id++
	}
	arch.Nodes = append(arch.Nodes, Node{ID: id, Name: "NG", Kind: GatewayNode})
	arch.Gateway = id
	if err := ValidateArchitecture(arch); err != nil {
		return nil, err
	}
	return arch, nil
}
