package model

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testArch(t *testing.T) *Architecture {
	t.Helper()
	arch, err := NewTwoClusterArchitecture(ArchSpec{TTNodes: 2, ETNodes: 2})
	if err != nil {
		t.Fatalf("NewTwoClusterArchitecture: %v", err)
	}
	return arch
}

// fig1G1 builds graph G1 of the paper's Figure 1 (P1..P4 with m1..m3)
// mapped as in Figure 3: P1, P4 on TT node N1; P2, P3 on ET node N3.
func fig1G1(t *testing.T, arch *Architecture) (*Application, [4]ProcID, [3]EdgeID) {
	t.Helper()
	app := NewApplication("fig1")
	g := app.AddGraph("G1", 240, 200)
	tt := arch.TTNodes()[0]
	et := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, tt)
	p2 := app.AddProcess(g, "P2", 20, et)
	p3 := app.AddProcess(g, "P3", 20, et)
	p4 := app.AddProcess(g, "P4", 30, tt)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return app, [4]ProcID{p1, p2, p3, p4}, [3]EdgeID{m1, m2, m3}
}

func TestBuilderAndAdjacency(t *testing.T) {
	arch := testArch(t)
	app, p, m := fig1G1(t, arch)
	if got := app.Succs(p[0]); len(got) != 2 || got[0] != p[1] || got[1] != p[2] {
		t.Errorf("Succs(P1) = %v, want [P2 P3]", got)
	}
	if got := app.Preds(p[3]); len(got) != 1 || got[0] != p[1] {
		t.Errorf("Preds(P4) = %v, want [P2]", got)
	}
	if got := app.InEdges(p[1]); len(got) != 1 || got[0] != m[0] {
		t.Errorf("InEdges(P2) = %v, want [m1]", got)
	}
	if app.PeriodOf(p[2]) != 240 {
		t.Errorf("PeriodOf(P3) = %d, want 240", app.PeriodOf(p[2]))
	}
	if app.EdgePeriod(m[2]) != 240 {
		t.Errorf("EdgePeriod(m3) = %d, want 240", app.EdgePeriod(m[2]))
	}
}

func TestTopoOrder(t *testing.T) {
	arch := testArch(t)
	app, p, _ := fig1G1(t, arch)
	order, err := app.TopoOrder(0)
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[ProcID]int)
	for i, q := range order {
		pos[q] = i
	}
	for _, e := range app.Edges {
		if pos[e.Src] >= pos[e.Dst] {
			t.Errorf("edge %s violates topological order", e.Name)
		}
	}
	if order[0] != p[0] {
		t.Errorf("first process = %d, want P1", order[0])
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	arch := testArch(t)
	app := NewApplication("cyclic")
	g := app.AddGraph("G", 100, 100)
	et := arch.ETNodes()[0]
	a := app.AddProcess(g, "A", 1, et)
	b := app.AddProcess(g, "B", 1, et)
	app.AddEdge("ab", a, b, 0)
	app.AddEdge("ba", b, a, 0)
	if _, err := app.TopoOrder(0); err == nil {
		t.Fatal("TopoOrder accepted a cyclic graph")
	}
	if err := app.Validate(arch); err == nil {
		t.Fatal("Validate accepted a cyclic graph")
	}
}

func TestLongestPathAndCriticalPath(t *testing.T) {
	arch := testArch(t)
	app, p, _ := fig1G1(t, arch)
	lp, err := app.LongestPathToSink()
	if err != nil {
		t.Fatalf("LongestPathToSink: %v", err)
	}
	// P1(30) -> P2(20) -> P4(30) is the longest chain: 80.
	want := map[ProcID]Time{p[0]: 80, p[1]: 50, p[2]: 20, p[3]: 30}
	for q, w := range want {
		if lp[q] != w {
			t.Errorf("LongestPathToSink[%s] = %d, want %d", app.Procs[q].Name, lp[q], w)
		}
	}
	cp, err := app.CriticalPath(0)
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if cp != 80 {
		t.Errorf("CriticalPath = %d, want 80", cp)
	}
}

func TestSourcesAndSinks(t *testing.T) {
	arch := testArch(t)
	app, p, _ := fig1G1(t, arch)
	if s := app.Sources(0); len(s) != 1 || s[0] != p[0] {
		t.Errorf("Sources = %v, want [P1]", s)
	}
	sinks := app.Sinks(0)
	if len(sinks) != 2 {
		t.Fatalf("Sinks = %v, want two (P3, P4)", sinks)
	}
}

func TestHyperperiod(t *testing.T) {
	arch := testArch(t)
	app := NewApplication("hp")
	g1 := app.AddGraph("G1", 40, 40)
	g2 := app.AddGraph("G2", 60, 50)
	et := arch.ETNodes()[0]
	app.AddProcess(g1, "A", 1, et)
	app.AddProcess(g2, "B", 1, et)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	h, err := app.Hyperperiod()
	if err != nil {
		t.Fatalf("Hyperperiod: %v", err)
	}
	if h != 120 {
		t.Errorf("Hyperperiod = %d, want 120", h)
	}
}

func TestLCMOverflow(t *testing.T) {
	if _, err := LCM(1<<61, (1<<61)-1); err == nil {
		t.Fatal("LCM accepted an overflowing pair")
	}
	if _, err := LCM(0, 5); err == nil {
		t.Fatal("LCM accepted zero")
	}
}

func TestRouteOf(t *testing.T) {
	arch := testArch(t)
	app, p, m := fig1G1(t, arch)
	// Add a TT->TT edge and an ET->ET edge for full coverage.
	tt2 := arch.TTNodes()[1]
	et2 := arch.ETNodes()[1]
	p5 := app.AddProcess(0, "P5", 10, tt2)
	p6 := app.AddProcess(0, "P6", 10, et2)
	e1 := app.AddEdge("tt", p[0], p5, 8)
	e2 := app.AddEdge("et", p[1], p6, 8)
	e3 := app.AddEdge("loc", p[0], p[3], 0)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	cases := []struct {
		e    EdgeID
		want Route
	}{
		{m[0], RouteTTtoET},
		{m[2], RouteETtoTT},
		{e1, RouteTTP},
		{e2, RouteCAN},
		{e3, RouteLocal},
	}
	for _, c := range cases {
		if got := app.RouteOf(c.e, arch); got != c.want {
			t.Errorf("RouteOf(%s) = %v, want %v", app.Edges[c.e].Name, got, c.want)
		}
	}
	gw := app.GatewayEdges(arch)
	if len(gw) != 3 { // m1, m2, m3
		t.Errorf("GatewayEdges = %v, want 3 edges", gw)
	}
}

func TestRouteFlags(t *testing.T) {
	if !RouteTTtoET.UsesCAN() || !RouteTTtoET.UsesTTP() || !RouteTTtoET.UsesGateway() {
		t.Error("RouteTTtoET must use CAN, TTP and the gateway")
	}
	if RouteETtoTT.UsesTTP() {
		t.Error("RouteETtoTT's S_G leg is dynamic, UsesTTP must be false")
	}
	if RouteLocal.UsesCAN() || RouteLocal.UsesTTP() || RouteLocal.UsesGateway() {
		t.Error("RouteLocal must not use any bus")
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	arch := testArch(t)
	et := arch.ETNodes()[0]

	cases := []struct {
		name  string
		build func() *Application
	}{
		{"no graphs", func() *Application { return NewApplication("x") }},
		{"zero wcet", func() *Application {
			a := NewApplication("x")
			g := a.AddGraph("G", 10, 10)
			a.AddProcess(g, "P", 0, et)
			return a
		}},
		{"gateway mapping", func() *Application {
			a := NewApplication("x")
			g := a.AddGraph("G", 10, 10)
			a.AddProcess(g, "P", 1, arch.Gateway)
			return a
		}},
		{"deadline beyond period", func() *Application {
			a := NewApplication("x")
			g := a.AddGraph("G", 10, 20)
			a.AddProcess(g, "P", 1, et)
			return a
		}},
		{"cross-node zero size", func() *Application {
			a := NewApplication("x")
			g := a.AddGraph("G", 10, 10)
			p := a.AddProcess(g, "P", 1, et)
			q := a.AddProcess(g, "Q", 1, arch.TTNodes()[0])
			a.AddEdge("m", p, q, 0)
			return a
		}},
		{"bcet above wcet", func() *Application {
			a := NewApplication("x")
			g := a.AddGraph("G", 10, 10)
			p := a.AddProcess(g, "P", 5, et)
			a.Procs[p].BCET = 9
			return a
		}},
	}
	for _, c := range cases {
		if err := c.build().Finalize(arch); err == nil {
			t.Errorf("%s: Validate accepted invalid application", c.name)
		}
	}
}

func TestValidateCrossGraphEdge(t *testing.T) {
	arch := testArch(t)
	app := NewApplication("x")
	g1 := app.AddGraph("G1", 10, 10)
	g2 := app.AddGraph("G2", 10, 10)
	et := arch.ETNodes()[0]
	a := app.AddProcess(g1, "A", 1, et)
	b := app.AddProcess(g2, "B", 1, et)
	app.AddEdge("m", a, b, 4)
	if err := app.Finalize(arch); err == nil {
		t.Fatal("Validate accepted an edge crossing graphs")
	}
}

func TestValidateArchitecture(t *testing.T) {
	if _, err := NewTwoClusterArchitecture(ArchSpec{TTNodes: 0, ETNodes: 1}); err == nil {
		t.Error("accepted architecture without TT nodes")
	}
	arch := testArch(t)
	arch.TTP.TickPerByte = 0
	if err := ValidateArchitecture(arch); err == nil {
		t.Error("accepted zero TickPerByte")
	}
	arch = testArch(t)
	arch.Nodes[0].Kind = GatewayNode
	if err := ValidateArchitecture(arch); err == nil {
		t.Error("accepted two gateway nodes")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	arch := testArch(t)
	app, _, _ := fig1G1(t, arch)
	sys := &System{Architecture: arch, Application: app}
	var buf bytes.Buffer
	if err := sys.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(got.Application.Procs) != len(app.Procs) || len(got.Application.Edges) != len(app.Edges) {
		t.Fatalf("round trip lost elements: %d procs %d edges", len(got.Application.Procs), len(got.Application.Edges))
	}
	if got.Application.Procs[1].Name != "P2" || got.Architecture.Nodes[0].Kind != TimeTriggered {
		t.Error("round trip corrupted fields")
	}
	// Adjacency must be rebuilt after decode.
	if len(got.Application.Succs(0)) != 2 {
		t.Error("adjacency not rebuilt after ReadJSON")
	}
}

func TestSaveLoadFile(t *testing.T) {
	arch := testArch(t)
	app, _, _ := fig1G1(t, arch)
	sys := &System{Architecture: arch, Application: app}
	path := t.TempDir() + "/sys.json"
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Application.Name != "fig1" {
		t.Errorf("loaded name %q", got.Application.Name)
	}
}

func TestUtilizationByNode(t *testing.T) {
	arch := testArch(t)
	app, _, _ := fig1G1(t, arch)
	u := app.UtilizationByNode(arch)
	tt := arch.TTNodes()[0]
	et := arch.ETNodes()[0]
	if got, want := u[tt], 60.0/240.0; got != want {
		t.Errorf("U(N1) = %g, want %g", got, want)
	}
	if got, want := u[et], 40.0/240.0; got != want {
		t.Errorf("U(N3) = %g, want %g", got, want)
	}
}

// randomDAG builds a random layered DAG application for property tests.
func randomDAG(r *rand.Rand, arch *Architecture) *Application {
	app := NewApplication("prop")
	g := app.AddGraph("G", 1000, 1000)
	n := 2 + r.Intn(20)
	nodes := append(arch.TTNodes(), arch.ETNodes()...)
	ids := make([]ProcID, n)
	for i := 0; i < n; i++ {
		ids[i] = app.AddProcess(g, "", 1+Time(r.Intn(9)), nodes[r.Intn(len(nodes))])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(4) == 0 {
				app.AddEdge("", ids[i], ids[j], 1+r.Intn(31))
			}
		}
	}
	return app
}

func TestPropertyTopoOrderValid(t *testing.T) {
	arch := testArch(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		app := randomDAG(r, arch)
		if err := app.Finalize(arch); err != nil {
			return false
		}
		order, err := app.TopoOrder(0)
		if err != nil {
			return false
		}
		if len(order) != len(app.Procs) {
			return false
		}
		pos := make(map[ProcID]int)
		for i, p := range order {
			pos[p] = i
		}
		for _, e := range app.Edges {
			if pos[e.Src] >= pos[e.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLongestPathDominatesSuccessors(t *testing.T) {
	arch := testArch(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		app := randomDAG(r, arch)
		if err := app.Finalize(arch); err != nil {
			return false
		}
		lp, err := app.LongestPathToSink()
		if err != nil {
			return false
		}
		for _, p := range app.Procs {
			if lp[p.ID] < p.WCET {
				return false
			}
			for _, s := range app.Succs(p.ID) {
				if lp[p.ID] < lp[s]+p.WCET {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want Time }{
		{12, 8, 4}, {7, 13, 1}, {40, 240, 40}, {5, 5, 5},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestClusterKindString(t *testing.T) {
	if TimeTriggered.String() != "TT" || EventTriggered.String() != "ET" || GatewayNode.String() != "GW" {
		t.Error("ClusterKind.String mismatch")
	}
	if ClusterKind(9).String() == "" {
		t.Error("unknown kind must still stringify")
	}
}

func TestTopoOrderAll(t *testing.T) {
	arch := testArch(t)
	app := NewApplication("two")
	g1 := app.AddGraph("G1", 100, 100)
	g2 := app.AddGraph("G2", 100, 100)
	et := arch.ETNodes()[0]
	a := app.AddProcess(g1, "A", 1, et)
	b := app.AddProcess(g1, "B", 1, et)
	c := app.AddProcess(g2, "C", 1, et)
	app.AddEdge("ab", a, b, 0)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	order, err := app.TopoOrderAll()
	if err != nil {
		t.Fatalf("TopoOrderAll: %v", err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	pos := map[ProcID]int{}
	for i, p := range order {
		pos[p] = i
	}
	if pos[a] >= pos[b] {
		t.Error("edge ab violated")
	}
	_ = c
	// Cycle in one graph fails the whole ordering.
	app.AddEdge("ba", b, a, 0)
	if _, err := app.TopoOrderAll(); err == nil {
		t.Error("cycle accepted")
	}
}

func TestSlotOwners(t *testing.T) {
	arch := testArch(t)
	owners := arch.SlotOwners()
	if len(owners) != 3 { // 2 TT + gateway
		t.Fatalf("owners = %v", owners)
	}
	if owners[len(owners)-1] != arch.Gateway {
		t.Errorf("gateway must own a slot: %v", owners)
	}
	for _, n := range owners {
		if arch.Kind(n) == EventTriggered {
			t.Errorf("ET node %d owns a TDMA slot", n)
		}
	}
}

func TestRouteString(t *testing.T) {
	names := map[Route]string{
		RouteLocal: "local", RouteTTP: "TT->TT", RouteCAN: "ET->ET",
		RouteTTtoET: "TT->ET", RouteETtoTT: "ET->TT",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("Route(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
	if Route(99).String() == "" {
		t.Error("unknown route must stringify")
	}
}
