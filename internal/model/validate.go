package model

import "fmt"

// ValidateArchitecture checks the structural consistency of the platform:
// node IDs match indices, exactly one gateway exists, at least one TT and
// one ET node exist, and the bus parameters are positive.
func ValidateArchitecture(arch *Architecture) error {
	if len(arch.Nodes) == 0 {
		return fmt.Errorf("model: architecture %q has no nodes", arch.Name)
	}
	gateways := 0
	tt, et := 0, 0
	for i, n := range arch.Nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("model: node %q has ID %d, want %d", n.Name, n.ID, i)
		}
		switch n.Kind {
		case GatewayNode:
			gateways++
			if arch.Gateway != n.ID {
				return fmt.Errorf("model: gateway field %d does not match gateway node %d", arch.Gateway, n.ID)
			}
		case TimeTriggered:
			tt++
		case EventTriggered:
			et++
		default:
			return fmt.Errorf("model: node %q has unknown kind %d", n.Name, n.Kind)
		}
	}
	if gateways != 1 {
		return fmt.Errorf("model: architecture %q has %d gateway nodes, want exactly 1", arch.Name, gateways)
	}
	if tt == 0 || et == 0 {
		return fmt.Errorf("model: architecture %q needs at least one TT and one ET node (have %d TT, %d ET)", arch.Name, tt, et)
	}
	if arch.TTP.TickPerByte <= 0 {
		return fmt.Errorf("model: TTP TickPerByte must be positive, got %d", arch.TTP.TickPerByte)
	}
	if arch.CAN.BitTime <= 0 {
		return fmt.Errorf("model: CAN BitTime must be positive, got %d", arch.CAN.BitTime)
	}
	if arch.GatewayCost < 0 || arch.GatewayPoll < 0 {
		return fmt.Errorf("model: gateway cost/poll must be non-negative")
	}
	return nil
}

// Validate checks the application against the architecture: IDs are
// consistent, graphs are non-empty acyclic sets of processes with valid
// periods and deadlines, processes are mapped on TT or ET nodes (never on
// the gateway), edges connect processes of the same graph, and messages
// crossing nodes carry a positive size.
func (a *Application) Validate(arch *Architecture) error {
	if err := ValidateArchitecture(arch); err != nil {
		return err
	}
	if len(a.Graphs) == 0 {
		return fmt.Errorf("model: application %q has no process graphs", a.Name)
	}
	for i, p := range a.Procs {
		if p.ID != ProcID(i) {
			return fmt.Errorf("model: process %q has ID %d, want %d", p.Name, p.ID, i)
		}
		if p.Graph < 0 || p.Graph >= len(a.Graphs) {
			return fmt.Errorf("model: process %q references graph %d of %d", p.Name, p.Graph, len(a.Graphs))
		}
		if p.WCET <= 0 {
			return fmt.Errorf("model: process %q has non-positive WCET %d", p.Name, p.WCET)
		}
		if p.BCET < 0 || (p.BCET > 0 && p.BCET > p.WCET) {
			return fmt.Errorf("model: process %q has BCET %d outside (0, WCET=%d]", p.Name, p.BCET, p.WCET)
		}
		if p.Node < 0 || int(p.Node) >= len(arch.Nodes) {
			return fmt.Errorf("model: process %q mapped on unknown node %d", p.Name, p.Node)
		}
		if arch.Kind(p.Node) == GatewayNode {
			return fmt.Errorf("model: process %q mapped on the gateway node; only the transfer process T runs there", p.Name)
		}
		if p.Deadline < 0 {
			return fmt.Errorf("model: process %q has negative local deadline", p.Name)
		}
	}
	for i, e := range a.Edges {
		if e.ID != EdgeID(i) {
			return fmt.Errorf("model: edge %q has ID %d, want %d", e.Name, e.ID, i)
		}
		if e.Src < 0 || int(e.Src) >= len(a.Procs) || e.Dst < 0 || int(e.Dst) >= len(a.Procs) {
			return fmt.Errorf("model: edge %q has out-of-range endpoints", e.Name)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("model: edge %q is a self-loop on process %d", e.Name, e.Src)
		}
		if a.Procs[e.Src].Graph != a.Procs[e.Dst].Graph {
			return fmt.Errorf("model: edge %q crosses graphs %d and %d", e.Name, a.Procs[e.Src].Graph, a.Procs[e.Dst].Graph)
		}
		if e.Graph != a.Procs[e.Src].Graph {
			return fmt.Errorf("model: edge %q records graph %d, endpoints are in %d", e.Name, e.Graph, a.Procs[e.Src].Graph)
		}
		if a.Procs[e.Src].Node != a.Procs[e.Dst].Node && e.Size <= 0 {
			return fmt.Errorf("model: edge %q crosses nodes but has size %d bytes", e.Name, e.Size)
		}
		if e.CANTime < 0 {
			return fmt.Errorf("model: edge %q has negative CAN time override", e.Name)
		}
	}
	for g, gr := range a.Graphs {
		if len(gr.Procs) == 0 {
			return fmt.Errorf("model: graph %q has no processes", gr.Name)
		}
		if gr.Period <= 0 {
			return fmt.Errorf("model: graph %q has non-positive period %d", gr.Name, gr.Period)
		}
		if gr.Deadline <= 0 || gr.Deadline > gr.Period {
			return fmt.Errorf("model: graph %q needs 0 < deadline <= period, got D=%d T=%d", gr.Name, gr.Deadline, gr.Period)
		}
		for _, p := range gr.Procs {
			if a.Procs[p].Graph != g {
				return fmt.Errorf("model: graph %q lists process %d of graph %d", gr.Name, p, a.Procs[p].Graph)
			}
		}
		if _, err := a.TopoOrder(g); err != nil {
			return err
		}
	}
	if _, err := a.Hyperperiod(); err != nil {
		return err
	}
	return nil
}
