package model

import "fmt"

// Route classifies how an edge's message travels through the platform.
type Route uint8

const (
	// RouteLocal: both endpoint processes share a node; the communication
	// time is part of the sender's WCET and no message is generated.
	RouteLocal Route = iota
	// RouteTTP: both endpoints on (different) TT nodes; one TTP leg in
	// the sender's TDMA slot, handled entirely by the static schedule.
	RouteTTP
	// RouteCAN: both endpoints on ET nodes; one CAN leg through the
	// sender node's OutN_i priority queue.
	RouteCAN
	// RouteTTtoET: TT sender, ET receiver; a TTP leg in the sender's
	// slot, the gateway transfer process T, then a CAN leg through the
	// gateway's OutCAN priority queue.
	RouteTTtoET
	// RouteETtoTT: ET sender, TT receiver; a CAN leg to the gateway,
	// the transfer process T, then the OutTTP FIFO drained by the
	// gateway slot S_G.
	RouteETtoTT
)

// String names the route like the paper's §4.1 cases.
func (r Route) String() string {
	switch r {
	case RouteLocal:
		return "local"
	case RouteTTP:
		return "TT->TT"
	case RouteCAN:
		return "ET->ET"
	case RouteTTtoET:
		return "TT->ET"
	case RouteETtoTT:
		return "ET->TT"
	}
	return fmt.Sprintf("Route(%d)", uint8(r))
}

// UsesCAN reports whether the route includes a CAN bus leg.
func (r Route) UsesCAN() bool { return r == RouteCAN || r == RouteTTtoET || r == RouteETtoTT }

// UsesTTP reports whether the route includes a statically scheduled TTP
// leg in the sender's slot (the gateway S_G leg of ET->TT is dynamic and
// not included here).
func (r Route) UsesTTP() bool { return r == RouteTTP || r == RouteTTtoET }

// UsesGateway reports whether the route crosses the gateway.
func (r Route) UsesGateway() bool { return r == RouteTTtoET || r == RouteETtoTT }

// RouteOf classifies edge e on architecture arch.
func (a *Application) RouteOf(e EdgeID, arch *Architecture) Route {
	ed := a.Edges[e]
	sn := a.Procs[ed.Src].Node
	dn := a.Procs[ed.Dst].Node
	if sn == dn {
		return RouteLocal
	}
	sk := arch.Kind(sn)
	dk := arch.Kind(dn)
	switch {
	case sk == TimeTriggered && dk == TimeTriggered:
		return RouteTTP
	case sk == EventTriggered && dk == EventTriggered:
		return RouteCAN
	case sk == TimeTriggered && dk == EventTriggered:
		return RouteTTtoET
	default:
		return RouteETtoTT
	}
}

// GatewayEdges returns the edges whose messages cross the gateway, in
// creation order.
func (a *Application) GatewayEdges(arch *Architecture) []EdgeID {
	var out []EdgeID
	for _, e := range a.Edges {
		if a.RouteOf(e.ID, arch).UsesGateway() {
			out = append(out, e.ID)
		}
	}
	return out
}
