package model

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// System bundles an application with the architecture it is mapped on,
// the on-disk exchange format of the cmd/ tools.
type System struct {
	Architecture *Architecture `json:"architecture"`
	Application  *Application  `json:"application"`
}

// WriteJSON writes the system as indented JSON.
func (s *System) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("model: encoding system: %w", err)
	}
	return nil
}

// ReadJSON parses a system written by WriteJSON and re-validates it.
func ReadJSON(r io.Reader) (*System, error) {
	var s System
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decoding system: %w", err)
	}
	if s.Architecture == nil || s.Application == nil {
		return nil, fmt.Errorf("model: system file must contain both architecture and application")
	}
	if err := s.Application.Finalize(s.Architecture); err != nil {
		return nil, err
	}
	return &s, nil
}

// SaveFile writes the system to path.
func (s *System) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a system from path.
func LoadFile(path string) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
