package obs

import (
	"fmt"
	"io"
	"maps"
	"math"
	"slices"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). The output is deterministic:
// families sort by name, series by label signature, histogram buckets
// by bound — two scrapes of identical state are byte-identical. The
// nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range slices.Sorted(maps.Keys(r.families)) {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, sig := range slices.Sorted(maps.Keys(f.series)) {
			if err := writeSeries(w, f, f.series[sig]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series: a single sample for counters and
// gauges, the bucket/sum/count triple for histograms.
func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.hist != nil:
		cum := uint64(0)
		for i, bound := range s.hist.bounds {
			cum += s.hist.counts[i].Load()
			le := formatValue(bound)
			if err := writeSample(w, f.name+"_bucket", joinLabels(s.labels, `le="`+le+`"`), float64(cum)); err != nil {
				return err
			}
		}
		cum += s.hist.counts[len(s.hist.bounds)].Load()
		if err := writeSample(w, f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`), float64(cum)); err != nil {
			return err
		}
		if err := writeSample(w, f.name+"_sum", s.labels, s.hist.Sum()); err != nil {
			return err
		}
		return writeSample(w, f.name+"_count", s.labels, float64(cum))
	case s.fn != nil:
		return writeSample(w, f.name, s.labels, s.fn())
	case s.counter != nil:
		return writeSample(w, f.name, s.labels, float64(s.counter.Value()))
	case s.gauge != nil:
		return writeSample(w, f.name, s.labels, s.gauge.Value())
	}
	return nil
}

// writeSample renders one exposition line.
func writeSample(w io.Writer, name, labels string, v float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	return err
}

// joinLabels appends one rendered label pair to a signature.
func joinLabels(sig, extra string) string {
	if sig == "" {
		return extra
	}
	return sig + "," + extra
}

// formatValue renders a sample value: integers without a decimal
// point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(h string) string { return helpEscaper.Replace(h) }
