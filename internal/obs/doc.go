// Package obs is the unified observability layer of the service tier:
// a concurrent metrics registry with Prometheus text exposition, a
// per-job trace-span recorder, and the injected clock both run on.
//
// The package is deliberately a leaf: it imports nothing but the
// standard library and never reads the wall clock itself — every
// timestamp comes from an injected Clock, so the deterministic layers
// (core, rta, solve, ...) stay wallclock-free and the differential
// bit-identity harness can run with full instrumentation attached.
// Instrumentation is also off-by-default-cheap: every method on a nil
// *Registry, *Counter, *Gauge, *Histogram, *Trace or *Span is a no-op
// that performs zero allocations, so "observability disabled" is the
// nil pointer, not a flag checked on the hot path.
//
// The registry's exposition is deterministic: families sort by name,
// series by label signature, so two scrapes of identical state are
// byte-identical — the same property the rest of the repository
// demands of its outputs.
package obs
