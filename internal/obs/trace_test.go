package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// tickClock is a deterministic clock advancing one millisecond per
// read.
type tickClock struct{ t time.Time }

func (c *tickClock) Now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func newTickClock() *tickClock {
	return &tickClock{t: time.Unix(1000, 0)}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace(newTickClock(), "job")
	tr.Root().SetAttr("kind", "synthesize")
	queue := tr.Root().Start("queue")
	queue.End()
	run := tr.Root().Start("run")
	os := run.Start("phase:os")
	os.SetAttr("steps", "12")
	os.End()
	or := run.Start("phase:or")
	_ = or // left open deliberately: End on the parent must close it
	run.End()
	tr.End()

	snap := tr.Snapshot()
	if snap.Root.Name != "job" || snap.Root.Attrs["kind"] != "synthesize" {
		t.Fatalf("root = %+v", snap.Root)
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("children = %d, want 2 (queue, run)", len(snap.Root.Children))
	}
	runSnap := snap.Root.Children[1]
	if runSnap.Name != "run" || len(runSnap.Children) != 2 {
		t.Fatalf("run = %+v", runSnap)
	}
	for _, sp := range []SpanSnapshot{snap.Root, runSnap, runSnap.Children[0], runSnap.Children[1]} {
		if sp.EndUnixNano == 0 || sp.EndUnixNano < sp.StartUnixNano {
			t.Errorf("span %s not closed or reversed: start %d end %d", sp.Name, sp.StartUnixNano, sp.EndUnixNano)
		}
	}
	if runSnap.Children[1].Name != "phase:or" || runSnap.Children[1].EndUnixNano != runSnap.EndUnixNano {
		t.Errorf("open child not closed with its parent: %+v", runSnap.Children[1])
	}

	// The record stream is sequence-numbered, monotonic, and balanced:
	// every span contributes one start and one end.
	if len(snap.Records) != 10 {
		t.Fatalf("records = %d, want 10 (5 spans x start+end)", len(snap.Records))
	}
	for i, rec := range snap.Records {
		if rec.Seq != i+1 {
			t.Errorf("record %d has seq %d", i, rec.Seq)
		}
		if i > 0 && rec.UnixNano < snap.Records[i-1].UnixNano {
			t.Errorf("record %d timestamp moved backwards", i)
		}
	}
}

// A span started after its parent ended is dropped, not attached: late
// observer events after job completion must not resurrect the tree.
func TestTraceNoResurrection(t *testing.T) {
	tr := NewTrace(newTickClock(), "job")
	tr.End()
	if sp := tr.Root().Start("late"); sp != nil {
		t.Fatalf("Start after End returned a live span")
	}
	if n := len(tr.Snapshot().Root.Children); n != 0 {
		t.Fatalf("late span attached: %d children", n)
	}
}

// A nil clock yields zero timestamps but an intact, JSON-stable tree.
func TestTraceNilClock(t *testing.T) {
	tr := NewTrace(nil, "job")
	tr.Root().Start("queue").End()
	tr.End()
	snap := tr.Snapshot()
	if snap.Root.StartUnixNano != 0 || snap.Root.Children[0].EndUnixNano != 0 {
		t.Fatalf("nil clock produced timestamps: %+v", snap.Root)
	}
	a, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(tr.Snapshot())
	if string(a) != string(b) {
		t.Fatalf("snapshot encoding unstable:\n%s\n%s", a, b)
	}
}
