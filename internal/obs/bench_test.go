package obs

import "testing"

// BenchmarkMetricsOverhead measures the instrumentation hot path — one
// counter increment, one gauge add, one histogram observation — with
// the registry enabled and disabled. The disabled case is the cost the
// service pays when metrics are off: it must stay at zero allocations
// and a handful of nanoseconds, since the instruments sit on job and
// engine hot paths unconditionally.
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, r *Registry) {
		c := r.Counter("bench_total", "bench")
		g := r.Gauge("bench_gauge", "bench")
		h := r.Histogram("bench_seconds", "bench", DurationBuckets)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			g.Add(1)
			h.Observe(0.017)
		}
	}
	b.Run("enabled", func(b *testing.B) { run(b, NewRegistry()) })
	b.Run("disabled", func(b *testing.B) { run(b, Disabled) })
}

// BenchmarkExposition measures a full scrape over a registry with a
// realistic series population.
func BenchmarkExposition(b *testing.B) {
	r := NewRegistry()
	kinds := []string{"synthesize", "explore"}
	states := []string{"queued", "running", "done", "failed", "cancelled"}
	for _, k := range kinds {
		for _, s := range states {
			r.Counter("mcs_jobs_total", "jobs", L("kind", k), L("state", s)).Add(3)
		}
		r.Histogram("mcs_job_duration_seconds", "latency", DurationBuckets, L("kind", k)).Observe(0.2)
	}
	r.Gauge("mcs_queue_depth", "depth").Set(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
