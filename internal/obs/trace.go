package obs

import (
	"maps"
	"sync"
	"time"
)

// Trace is a per-job span tree: a root span covering the whole job
// with nested child spans for its stages (queue wait, solver acquire,
// run phases, persistence). All timestamps come from the injected
// Clock; a nil clock records zero times (the tree structure is still
// useful, and stays deterministic). The nil *Trace and the nil *Span
// are allocation-free no-ops, so tracing disabled is a nil pointer.
//
// Every span start and end is also appended to a flat, sequence-
// numbered record stream — the ProgressEvent-style timestamped form —
// so consumers that want a log rather than a tree replay the records.
type Trace struct {
	mu      sync.Mutex
	clock   Clock
	seq     int
	root    *Span
	records []TraceRecord
}

// Span is one node of a trace. Spans are created by Span.Start and
// closed by Span.End; ending a span ends its still-open descendants
// first, so a closed tree is always fully closed.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	ended    bool
	attrs    map[string]string
	children []*Span
}

// TraceRecord is one timestamped span-lifecycle event, in emission
// order. Seq is monotonic per trace, so gaps are detectable exactly
// like the ProgressEvent sequence numbers on the SSE stream.
type TraceRecord struct {
	Seq      int    `json:"seq"`
	UnixNano int64  `json:"unixNano,omitempty"`
	Op       string `json:"op"` // "start" or "end"
	Span     string `json:"span"`
}

// NewTrace starts a trace whose root span opens immediately. A nil
// clock records zero timestamps.
func NewTrace(clock Clock, name string) *Trace {
	t := &Trace{clock: clock}
	t.root = &Span{tr: t, name: name, start: t.now()}
	t.record("start", name)
	return t
}

// now reads the injected clock (zero time without one).
func (t *Trace) now() time.Time {
	if t.clock == nil {
		return time.Time{}
	}
	return t.clock.Now()
}

// record appends one lifecycle record; callers hold t.mu or are the
// constructor.
func (t *Trace) record(op, span string) {
	t.seq++
	var ns int64
	if now := t.now(); !now.IsZero() {
		ns = now.UnixNano()
	}
	t.records = append(t.records, TraceRecord{Seq: t.seq, UnixNano: ns, Op: op, Span: span})
}

// Root returns the root span (nil on the nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// End closes the trace: the root span and every still-open descendant.
func (t *Trace) End() {
	t.Root().End()
}

// Start opens a child span under s (no-op nil on the nil span or a
// span already ended — late events after a job finished must not
// resurrect the tree).
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return nil
	}
	child := &Span{tr: t, name: name, start: t.now()}
	s.children = append(s.children, child)
	t.record("start", name)
	return child
}

// End closes the span, first closing any still-open descendants
// (post-order, one timestamp). Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	s.endLocked(t.now())
}

func (s *Span) endLocked(now time.Time) {
	if s.ended {
		return
	}
	for _, c := range s.children {
		c.endLocked(now)
	}
	s.end = now
	s.ended = true
	s.tr.record("end", s.name)
}

// SetAttr attaches (or overwrites) a string attribute. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// TraceSnapshot is the exported form of a trace: the span tree plus
// the flat record stream. JSON encoding is deterministic (attribute
// maps marshal in key order).
type TraceSnapshot struct {
	Root    SpanSnapshot  `json:"root"`
	Records []TraceRecord `json:"records,omitempty"`
}

// SpanSnapshot is one exported span. EndUnixNano is zero while the
// span is still open.
type SpanSnapshot struct {
	Name            string            `json:"name"`
	StartUnixNano   int64             `json:"startUnixNano,omitempty"`
	EndUnixNano     int64             `json:"endUnixNano,omitempty"`
	DurationSeconds float64           `json:"durationSeconds,omitempty"`
	Attrs           map[string]string `json:"attrs,omitempty"`
	Children        []SpanSnapshot    `json:"children,omitempty"`
}

// Snapshot exports the current state of the trace (nil on the nil
// trace). Safe to call at any time, including while spans are open.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceSnapshot{
		Root:    t.root.snapshotLocked(),
		Records: append([]TraceRecord(nil), t.records...),
	}
}

func (s *Span) snapshotLocked() SpanSnapshot {
	out := SpanSnapshot{Name: s.name}
	if !s.start.IsZero() {
		out.StartUnixNano = s.start.UnixNano()
	}
	if s.ended && !s.end.IsZero() {
		out.EndUnixNano = s.end.UnixNano()
		out.DurationSeconds = s.end.Sub(s.start).Seconds()
	}
	if len(s.attrs) > 0 {
		out.Attrs = maps.Clone(s.attrs)
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshotLocked())
	}
	return out
}
