package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", L("state", "done"), L("kind", "synthesize"))
	c.Inc()
	c.Add(2)
	if got := r.Counter("jobs_total", "jobs", L("kind", "synthesize"), L("state", "done")); got != c {
		t.Fatalf("same (name, labels) in different order returned a different counter")
	}
	g := r.Gauge("queue_depth", "depth")
	g.Set(4)
	g.Dec()
	out := render(t, r)
	for _, want := range []string{
		"# TYPE jobs_total counter\n",
		`jobs_total{kind="synthesize",state="done"} 3` + "\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Bucket boundaries are inclusive upper bounds: a value exactly on a
// bound lands in that bucket, epsilon above lands in the next, and
// everything beyond the last bound lands in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2.5, 5})
	for _, v := range []float64{0, 1, 1.0000001, 2.5, 5, 5.0000001, 1e9} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,    // 0 and 1
		`lat_bucket{le="2.5"} 4`,  // + 1.0000001 and 2.5
		`lat_bucket{le="5"} 5`,    // + 5
		`lat_bucket{le="+Inf"} 7`, // + 5.0000001 and 1e9
		"lat_count 7",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got, want := h.Count(), uint64(7); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
	if got := h.Sum(); math.Abs(got-(0+1+1.0000001+2.5+5+5.0000001+1e9)) > 1e-3 {
		t.Errorf("Sum() = %v", got)
	}
}

func TestScrapeFuncs(t *testing.T) {
	r := NewRegistry()
	depth := 7.0
	r.GaugeFunc("depth", "d", func() float64 { return depth })
	r.CounterFunc("hits_total", "h", func() float64 { return 42 }, L("cache", "solver"))
	out := render(t, r)
	if !strings.Contains(out, "depth 7\n") || !strings.Contains(out, `hits_total{cache="solver"} 42`+"\n") {
		t.Errorf("scrape funcs missing:\n%s", out)
	}
	depth = 9
	if !strings.Contains(render(t, r), "depth 9\n") {
		t.Errorf("gauge func not re-evaluated per scrape")
	}
}

// Two scrapes of identical state are byte-identical, and family/series
// order is sorted regardless of registration order.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, "help "+name, L("k", name)).Inc()
			r.Counter(name, "help "+name, L("k", "zz")).Add(2)
		}
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		return buf.String()
	}
	a := build([]string{"b_total", "a_total", "c_total"})
	b := build([]string{"c_total", "b_total", "a_total"})
	if a != b {
		t.Errorf("exposition depends on registration order:\n%s\nvs\n%s", a, b)
	}
	if a != build([]string{"b_total", "a_total", "c_total"}) {
		t.Errorf("repeated scrape differs")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "w", L("err", "a\"b\\c\nd")).Inc()
	out := render(t, r)
	if !strings.Contains(out, `weird_total{err="a\"b\\c\nd"} 1`+"\n") {
		t.Errorf("label escaping wrong:\n%s", out)
	}
}

// The disabled (nil) registry and its nil instruments are no-ops that
// never allocate — the contract that lets instrumentation sit on hot
// paths unconditionally.
func TestDisabledRegistryNoAllocs(t *testing.T) {
	var r *Registry // = Disabled
	c := r.Counter("x_total", "x")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", DurationBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatalf("disabled registry returned non-nil instruments")
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(2)
		h.Observe(0.5)
	}); n != 0 {
		t.Errorf("disabled instruments allocate: %v allocs/op", n)
	}
	var buf bytes.Buffer
	if n := testing.AllocsPerRun(100, func() {
		r.WritePrometheus(&buf)
	}); n != 0 {
		t.Errorf("disabled WritePrometheus allocates: %v allocs/op", n)
	}
	// The disabled trace and span are equally free.
	var tr *Trace
	if n := testing.AllocsPerRun(100, func() {
		sp := tr.Root().Start("phase")
		sp.SetAttr("k", "v")
		sp.End()
		tr.End()
	}); n != 0 {
		t.Errorf("disabled trace allocates: %v allocs/op", n)
	}
}

// Enabled counters, gauges and histograms are allocation-free too:
// enabling metrics must not put garbage on the evaluation hot path.
func TestEnabledHotPathNoAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "x")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", DurationBuckets)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.02)
	}); n != 0 {
		t.Errorf("enabled hot path allocates: %v allocs/op", n)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		//mcs:allow poolonly test goroutines hammering the registry to give the race detector a target
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c_total", "c").Inc()
				r.Gauge("g", "g").Add(1)
				r.Histogram("h", "h", []float64{1, 10}).Observe(float64(i % 20))
				if i%100 == 0 {
					var buf bytes.Buffer
					r.WritePrometheus(&buf)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", "h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "x")
	r.Gauge("x_total", "x")
}
