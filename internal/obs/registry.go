package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Series of a family differ only in
// their label values; the exposition sorts them deterministically.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry is a concurrent metrics registry. The nil *Registry is the
// disabled registry: every lookup returns a nil instrument and every
// nil instrument method is an allocation-free no-op, so instrumented
// code needs no flags. Instrument lookups are idempotent — the same
// (name, labels) returns the same instrument — which makes lazy
// registration on cold paths safe.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Disabled is the disabled registry: a typed nil whose instruments are
// all no-ops.
var Disabled *Registry

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family groups the series of one metric name under one type and help
// string.
type family struct {
	name, help, typ string
	series          map[string]*series
}

// series is one (name, labels) instrument or scrape-time callback.
type series struct {
	labels  string // rendered {k="v",...} signature, "" for none
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Counter is a monotonically increasing metric. The nil Counter is a
// no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on the nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (negative d subtracts).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds are the inclusive
// upper bucket bounds in increasing order, with an implicit +Inf
// bucket on top. The nil Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets are the default upper bounds (seconds) for latency
// histograms: 1ms to 60s, roughly logarithmic — wide enough for both
// a cache-served job and a long annealing run.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets are the default upper bounds for count-valued
// histograms (batch sizes, front sizes): powers of two up to 4096.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Counter returns the counter for (name, labels), registering it on
// first use. A nil registry returns the nil (no-op) counter; a name
// already registered as a different metric type panics — that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked("counter", name, help, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), registering it on first
// use (nil on the nil registry).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked("gauge", name, help, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for (name, labels) with the given
// bucket bounds, registering it on first use (nil on the nil
// registry). Bounds must be sorted ascending; later lookups of an
// existing series keep the original bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked("histogram", name, help, labels)
	if s.hist == nil {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %s bounds not sorted: %v", name, bounds))
		}
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.hist
}

// CounterFunc registers a scrape-time counter series: fn is called at
// exposition and must be safe for concurrent use. It adapts existing
// monotonic counters (cache hit totals, store appends) without double
// bookkeeping. No-op on the nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookupLocked("counter", name, help, labels).fn = fn
}

// GaugeFunc registers a scrape-time gauge series (queue depth, journal
// footprint); fn must be safe for concurrent use. No-op on the nil
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lookupLocked("gauge", name, help, labels).fn = fn
}

// lookupLocked finds or creates the series for (name, labels) under
// the given family type. Callers hold r.mu — instrument creation must
// happen inside the same critical section as the series lookup, or two
// concurrent registrations of one series race on the instrument field.
func (r *Registry) lookupLocked(typ, name, help string, labels []Label) *series {
	sig := renderLabels(labels)
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sig}
		f.series[sig] = s
	}
	return s
}

// renderLabels renders a deterministic label signature: keys sorted,
// values escaped, Prometheus text syntax without the braces.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }
