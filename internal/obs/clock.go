package obs

import "time"

// Clock abstracts the time source of the observability layer: span
// timestamps and phase-duration measurements all flow through it, so
// tracing can run on a fake clock in tests (and inside the
// differential bit-identity harness) and the package itself never
// touches the wall clock. It mirrors store.Clock; the service adapts
// its injected store clock with ClockFunc, so the repository gains no
// new wall-clock site from this package.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }
