package dse

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/gen"
)

// benchmarkExplore measures one exploration configuration and reports
// the front quality next to the wall-clock: scripts/benchjson.py picks
// the front_size and hypervolume metrics up into BENCH_dse.json, so the
// artifact answers "what does the explorer return and how fast" per
// worker count in one place. The front is bit-identical across worker
// counts, so front_size and hypervolume must agree between the
// Workers1/WorkersMax variants — only ns/op may differ.
func benchmarkExplore(b *testing.B, workers int) {
	sys, err := gen.Generate(gen.Spec{Seed: 3, TTNodes: 2, ETNodes: 2, ProcsPerNode: 8, ProcsPerGraph: 8})
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Population: 12, Generations: 6, Seed: 3, Workers: workers}
	var res *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = Explore(context.Background(), sys.Application, sys.Architecture, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Front)), "front_size")
	b.ReportMetric(res.Hypervolume, "hypervolume")
	b.ReportMetric(float64(res.Evaluations), "evaluations")
}

func BenchmarkExploreWorkers1(b *testing.B) { benchmarkExplore(b, 1) }

func BenchmarkExploreWorkersMax(b *testing.B) { benchmarkExplore(b, runtime.NumCPU()) }
