package dse

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/delta"
	"repro/internal/gen"
)

// benchmarkExplore measures one exploration configuration and reports
// the front quality next to the wall-clock: scripts/benchjson.py picks
// the front_size and hypervolume metrics up into BENCH_dse.json, so the
// artifact answers "what does the explorer return and how fast" per
// worker count in one place. The front is bit-identical across worker
// counts, so front_size and hypervolume must agree between the
// Workers1/WorkersMax variants — only ns/op may differ.
func benchmarkExplore(b *testing.B, workers int) {
	sys, err := gen.Generate(gen.Spec{Seed: 3, TTNodes: 2, ETNodes: 2, ProcsPerNode: 8, ProcsPerGraph: 8})
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Population: 12, Generations: 6, Seed: 3, Workers: workers}
	var res *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = Explore(context.Background(), sys.Application, sys.Architecture, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Front)), "front_size")
	b.ReportMetric(res.Hypervolume, "hypervolume")
	b.ReportMetric(float64(res.Evaluations), "evaluations")
}

func BenchmarkExploreWorkers1(b *testing.B) { benchmarkExplore(b, 1) }

func BenchmarkExploreWorkersMax(b *testing.B) { benchmarkExplore(b, runtime.NumCPU()) }

// benchmarkExploreDelta measures the same serial exploration with the
// incremental delta evaluator off/on. A fresh evaluator per iteration
// isolates the intra-run reuse (offspring colliding, stage caches
// across mutations) from session-level warm caches; the fronts are
// bit-identical either way, so only ns/op and the reported
// delta_hit_rate may differ. scripts/benchjson.py pairs the
// *DeltaOff/*DeltaOn results into the delta_speedup section of
// BENCH_dse.json.
func benchmarkExploreDelta(b *testing.B, useDelta bool) {
	sys, err := gen.Generate(gen.Spec{Seed: 3, TTNodes: 2, ETNodes: 2, ProcsPerNode: 8, ProcsPerGraph: 8})
	if err != nil {
		b.Fatal(err)
	}
	var stats delta.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := Options{Population: 12, Generations: 6, Seed: 3}
		var ev *delta.Evaluator
		if useDelta {
			ev = delta.New(sys.Application, sys.Architecture)
			opts.Eval = ev.Analyze
		}
		if _, err := Explore(context.Background(), sys.Application, sys.Architecture, opts); err != nil {
			b.Fatal(err)
		}
		if ev != nil {
			stats = ev.Stats()
		}
	}
	if useDelta {
		b.ReportMetric(stats.HitRate(), "delta_hit_rate")
		b.ReportMetric(stats.StageHitRate(), "delta_stage_hit_rate")
	}
}

func BenchmarkExploreDeltaOff(b *testing.B) { benchmarkExploreDelta(b, false) }

func BenchmarkExploreDeltaOn(b *testing.B) { benchmarkExploreDelta(b, true) }
