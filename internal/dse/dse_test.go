package dse

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/opt"
)

// system generates a small two-cluster application for the explorer
// tests.
func system(t testing.TB, seed int64) (*model.Application, *model.Architecture) {
	t.Helper()
	sys, err := gen.Generate(gen.Spec{Seed: seed, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6, ProcsPerGraph: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sys.Application, sys.Architecture
}

func explore(t testing.TB, app *model.Application, arch *model.Architecture, opts Options) *Result {
	t.Helper()
	res, err := Explore(context.Background(), app, arch, opts)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	return res
}

// TestExploreFrontMutuallyNonDominated: the returned front is the
// archive invariant made visible — no point may weakly dominate
// another.
func TestExploreFrontMutuallyNonDominated(t *testing.T) {
	app, arch := system(t, 3)
	res := explore(t, app, arch, Options{Population: 8, Generations: 4, Seed: 5})
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for i, p := range res.Front {
		for j, q := range res.Front {
			if i != j && p.Objectives().WeaklyDominates(q.Objectives()) {
				t.Errorf("front[%d] %v weakly dominates front[%d] %v",
					i, p.Objectives(), j, q.Objectives())
			}
		}
	}
	if res.Evaluations == 0 || res.Generations != 4 {
		t.Errorf("Evaluations=%d Generations=%d", res.Evaluations, res.Generations)
	}
	if res.Hypervolume <= 0 && len(res.Front) > 1 {
		t.Errorf("hypervolume %v for a %d-point front", res.Hypervolume, len(res.Front))
	}
}

// TestExploreFrontWeaklyDominatesSF: the SF template is the first
// evaluated point, so the front can never regress below the baseline
// in every objective at once.
func TestExploreFrontWeaklyDominatesSF(t *testing.T) {
	app, arch := system(t, 4)
	sf, err := opt.Straightforward(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	sfObj := Point{Config: sf.Config, Analysis: sf.Analysis}.Objectives()
	res := explore(t, app, arch, Options{Population: 8, Generations: 3, Seed: 2})
	found := false
	for _, p := range res.Front {
		if p.Objectives().WeaklyDominates(sfObj) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no front point weakly dominates the SF baseline %v; front objectives:", sfObj)
		for _, p := range res.Front {
			t.Logf("  %v", p.Objectives())
		}
	}
}

// TestExploreWorkerCountIndependence is half the determinism contract:
// the same seed must yield a bit-identical front (objectives AND
// configurations) for every worker count.
func TestExploreWorkerCountIndependence(t *testing.T) {
	app, arch := system(t, 6)
	opts := Options{Population: 8, Generations: 4, Seed: 9}
	serial := explore(t, app, arch, opts)
	opts.Workers = 4
	parallel := explore(t, app, arch, opts)

	if serial.Evaluations != parallel.Evaluations || serial.Generations != parallel.Generations {
		t.Errorf("counters differ: serial (%d evals, %d gens) vs parallel (%d, %d)",
			serial.Evaluations, serial.Generations, parallel.Evaluations, parallel.Generations)
	}
	if serial.Hypervolume != parallel.Hypervolume {
		t.Errorf("hypervolume differs: %v vs %v", serial.Hypervolume, parallel.Hypervolume)
	}
	if len(serial.Front) != len(parallel.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(serial.Front), len(parallel.Front))
	}
	for i := range serial.Front {
		var a, b bytes.Buffer
		if err := serial.Front[i].Config.Save(&a); err != nil {
			t.Fatal(err)
		}
		if err := parallel.Front[i].Config.Save(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("front[%d] configs differ between worker counts", i)
		}
	}
}

// TestExploreSeedChangesSearch: different seeds explore differently
// (the rng is actually wired through).
func TestExploreSeedChangesSearch(t *testing.T) {
	app, arch := system(t, 6)
	a := explore(t, app, arch, Options{Population: 8, Generations: 4, Seed: 1})
	b := explore(t, app, arch, Options{Population: 8, Generations: 4, Seed: 99})
	if a.Evaluations == b.Evaluations && a.Hypervolume == b.Hypervolume && len(a.Front) == len(b.Front) {
		// Identical counters AND volume AND size across seeds would be
		// suspicious; compare the fronts to be sure.
		same := true
		for i := range a.Front {
			if a.Front[i].Objectives() != b.Front[i].Objectives() {
				same = false
				break
			}
		}
		if same {
			t.Error("seeds 1 and 99 produced identical explorations")
		}
	}
}

// TestExploreCancellationReturnsBestSoFar: a cancelled exploration
// surfaces the archive built so far together with ctx's error.
func TestExploreCancellationReturnsBestSoFar(t *testing.T) {
	app, arch := system(t, 3)
	evals := 0
	ctx, cancel := context.WithCancel(context.Background())
	res, err := Explore(ctx, app, arch, Options{
		Population: 8, Generations: 1000, Seed: 5,
		OnProgress: func(p Progress) {
			evals = p.Evaluations
			if p.Generation >= 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Front) == 0 {
		t.Fatal("cancelled exploration returned no best-so-far front")
	}
	if evals == 0 {
		t.Error("no progress observed before cancellation")
	}
	for i, p := range res.Front {
		for j, q := range res.Front {
			if i != j && p.Objectives().WeaklyDominates(q.Objectives()) {
				t.Errorf("partial front not mutually non-dominated: %v vs %v", p.Objectives(), q.Objectives())
			}
		}
	}
}

// TestExploreSeedPointsEnterArchive: pre-evaluated seed points (the
// Solver's warm start) land in the archive without re-analysis, so the
// front always weakly dominates them.
func TestExploreSeedPointsEnterArchive(t *testing.T) {
	app, arch := system(t, 3)
	osres, err := opt.OptimizeSchedule(context.Background(), app, arch, opt.OSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seed := Point{Config: osres.Best.Config, Analysis: osres.Best.Analysis}
	res := explore(t, app, arch, Options{
		Population: 6, Generations: 2, Seed: 7,
		SeedPoints: []Point{seed},
	})
	found := false
	for _, p := range res.Front {
		if p.Objectives().WeaklyDominates(seed.Objectives()) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("front does not weakly dominate the injected OS point %v", seed.Objectives())
	}
}

// TestExploreImmediateCancel: a context dead on arrival yields an
// empty-front error result, not a panic or a hang.
func TestExploreImmediateCancel(t *testing.T) {
	app, arch := system(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Explore(ctx, app, arch, Options{Population: 4, Generations: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil && len(res.Front) != 0 {
		t.Errorf("dead-context exploration produced %d front points", len(res.Front))
	}
}
