package dse

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/ttp"
)

func obj(d, b, w int) Objectives {
	return Objectives{Delta: model.Time(d), Buffers: b, Bandwidth: model.Time(w)}
}

func TestDominance(t *testing.T) {
	cases := []struct {
		a, b               Objectives
		dominates, weakly  bool
		reverseWeakly      bool
		reverseDominatesOK bool
	}{
		{obj(1, 1, 1), obj(2, 2, 2), true, true, false, false},
		{obj(1, 1, 1), obj(1, 1, 1), false, true, true, false},
		{obj(1, 2, 1), obj(2, 1, 2), false, false, false, false},
		{obj(-5, 3, 7), obj(-5, 3, 8), true, true, false, false},
		{obj(0, 0, 0), obj(0, 0, 0), false, true, true, false},
	}
	for i, c := range cases {
		if got := c.a.Dominates(c.b); got != c.dominates {
			t.Errorf("case %d: Dominates = %v, want %v", i, got, c.dominates)
		}
		if got := c.a.WeaklyDominates(c.b); got != c.weakly {
			t.Errorf("case %d: WeaklyDominates = %v, want %v", i, got, c.weakly)
		}
		if got := c.b.WeaklyDominates(c.a); got != c.reverseWeakly {
			t.Errorf("case %d: reverse WeaklyDominates = %v, want %v", i, got, c.reverseWeakly)
		}
		if c.dominates && c.b.Dominates(c.a) {
			t.Errorf("case %d: both directions dominate", i)
		}
	}
}

// fakePoint builds a Point whose objectives are exactly o: the round
// carries one slot of length o.Bandwidth and the analysis carries the
// delta and buffer total directly.
func fakePoint(o Objectives) Point {
	return Point{
		Config: &core.Config{Round: ttp.Round{Slots: []ttp.Slot{{Node: 1, Length: o.Bandwidth}}}},
		Analysis: &core.Analysis{
			Delta:       o.Delta,
			Buffers:     core.Buffers{Total: o.Buffers},
			Schedulable: o.Delta <= 0,
		},
	}
}

func TestArchiveKeepsMutuallyNonDominated(t *testing.T) {
	a := NewArchive(0)
	seq := []Objectives{
		obj(10, 10, 10),
		obj(5, 20, 10),  // trade-off: enters
		obj(10, 10, 10), // duplicate: rejected
		obj(12, 12, 12), // dominated: rejected
		obj(1, 30, 30),  // another trade-off: enters
		obj(5, 20, 9),   // dominates the second point: replaces it
	}
	want := []bool{true, true, false, false, true, true}
	for i, o := range seq {
		if got := a.Add(fakePoint(o)); got != want[i] {
			t.Errorf("Add(%v) = %v, want %v", o, got, want[i])
		}
	}
	pts := a.Points()
	if len(pts) != 3 {
		t.Fatalf("archive has %d points, want 3", len(pts))
	}
	for i, p := range pts {
		for j, q := range pts {
			if i != j && p.Objectives().WeaklyDominates(q.Objectives()) {
				t.Errorf("front points %v and %v are not mutually non-dominated", p.Objectives(), q.Objectives())
			}
		}
	}
	// Points are sorted by the lexicographic objective order.
	for i := 1; i < len(pts); i++ {
		if !pts[i-1].Objectives().Less(pts[i].Objectives()) {
			t.Errorf("front not sorted at %d: %v !< %v", i, pts[i-1].Objectives(), pts[i].Objectives())
		}
	}
}

func TestArchiveCapPrunesMostCrowded(t *testing.T) {
	a := NewArchive(3)
	// Four mutually non-dominated points on a diagonal; the interior
	// ones are the crowded ones, the extremes must survive.
	for _, o := range []Objectives{obj(0, 30, 30), obj(10, 20, 20), obj(11, 19, 19), obj(30, 0, 0)} {
		a.Add(fakePoint(o))
	}
	if a.Len() != 3 {
		t.Fatalf("archive has %d points, want cap 3", a.Len())
	}
	var objs []Objectives
	for _, p := range a.Points() {
		objs = append(objs, p.Objectives())
	}
	hasExtreme := func(o Objectives) bool {
		for _, q := range objs {
			if q == o {
				return true
			}
		}
		return false
	}
	if !hasExtreme(obj(0, 30, 30)) || !hasExtreme(obj(30, 0, 0)) {
		t.Errorf("pruning dropped an extreme: front %v", objs)
	}
}

func TestArchivePinnedSurvivesPruningButNotDomination(t *testing.T) {
	a := NewArchive(2)
	pinned := obj(10, 20, 20)
	if !a.AddPinned(fakePoint(pinned)) {
		t.Fatal("pinned insertion refused")
	}
	// Flood the cap with mutually non-dominated unpinned points; the
	// interior pinned point must survive every prune.
	for _, o := range []Objectives{obj(0, 40, 40), obj(40, 0, 40), obj(40, 40, 0), obj(5, 30, 30)} {
		a.Add(fakePoint(o))
	}
	hasPinned := false
	for _, p := range a.Points() {
		if p.Objectives() == pinned {
			hasPinned = true
		}
	}
	if !hasPinned {
		t.Fatalf("capacity pruning evicted the pinned point; front: %v", frontObjs(a))
	}
	// A dominating point still replaces it — the guarantee transfers.
	better := obj(9, 19, 19)
	if !a.Add(fakePoint(better)) {
		t.Fatal("dominating point refused")
	}
	dominated := false
	for _, p := range a.Points() {
		if p.Objectives() == pinned {
			t.Error("dominated pinned point still archived")
		}
		if p.Objectives().WeaklyDominates(pinned) {
			dominated = true
		}
	}
	if !dominated {
		t.Errorf("front lost weak domination of the pinned point; front: %v", frontObjs(a))
	}
}

func TestArchiveRefusedPinTransfersToDominator(t *testing.T) {
	a := NewArchive(2)
	dominator := obj(10, 20, 20)
	a.Add(fakePoint(dominator)) // unpinned first holder
	if a.AddPinned(fakePoint(obj(10, 20, 21))) {
		t.Fatal("dominated pinned candidate entered the archive")
	}
	// The refusing dominator inherited the pin: flooding the cap with
	// diverse points must never crowd it out.
	for _, o := range []Objectives{obj(0, 40, 40), obj(40, 0, 40), obj(40, 40, 0), obj(5, 30, 30)} {
		a.Add(fakePoint(o))
	}
	found := false
	for _, p := range a.Points() {
		if p.Objectives() == dominator {
			found = true
		}
	}
	if !found {
		t.Fatalf("pruning evicted the dominator of a refused pinned point; front: %v", frontObjs(a))
	}
}

func TestArchiveEvictedPinTransfersToReplacement(t *testing.T) {
	a := NewArchive(3)
	pinned := obj(10, 20, 20)
	a.AddPinned(fakePoint(pinned))
	// An unpinned dominator evicts the pinned point and must inherit
	// the pin; flooding the cap afterwards may not prune it away.
	dominator := obj(9, 19, 19)
	if !a.Add(fakePoint(dominator)) {
		t.Fatal("dominator refused")
	}
	for _, o := range []Objectives{obj(0, 100, 100), obj(100, 0, 100), obj(100, 100, 0), obj(8, 60, 60)} {
		a.Add(fakePoint(o))
	}
	covered := false
	for _, p := range a.Points() {
		if p.Objectives().WeaklyDominates(pinned) {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("front lost weak domination of the pinned insertion after eviction + pruning; front: %v", frontObjs(a))
	}
}

func frontObjs(a *Archive) []Objectives {
	var out []Objectives
	for _, p := range a.Points() {
		out = append(out, p.Objectives())
	}
	return out
}

func TestHypervolume(t *testing.T) {
	ref := obj(10, 10, 10)
	cases := []struct {
		name string
		pts  []Objectives
		want float64
	}{
		{"empty", nil, 0},
		{"single", []Objectives{obj(0, 0, 0)}, 1000},
		{"at ref contributes nothing", []Objectives{obj(10, 0, 0)}, 0},
		// Inclusion-exclusion: 10*10*2 + 2*2*10 - 2*2*2 = 232.
		{"two disjoint trade-offs", []Objectives{obj(0, 0, 8), obj(8, 8, 0)}, 232},
		{"dominated adds nothing", []Objectives{obj(0, 0, 0), obj(5, 5, 5)}, 1000},
		{"negative delta", []Objectives{obj(-10, 0, 0)}, 2000},
	}
	for _, c := range cases {
		if got := Hypervolume(c.pts, ref); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Hypervolume = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestHypervolumeMonotoneUnderExtension(t *testing.T) {
	ref := obj(100, 100, 100)
	base := []Objectives{obj(10, 50, 50), obj(50, 10, 50)}
	hv1 := Hypervolume(base, ref)
	hv2 := Hypervolume(append(base, obj(50, 50, 10)), ref)
	if hv2 <= hv1 {
		t.Errorf("adding a non-dominated point did not grow the hypervolume: %v -> %v", hv1, hv2)
	}
}

func TestArchiveCSVAndJSON(t *testing.T) {
	a := NewArchive(0)
	a.Add(fakePoint(obj(-3, 40, 20)))
	a.Add(fakePoint(obj(5, 10, 10)))

	var csv bytes.Buffer
	if err := a.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), csv.String())
	}
	if lines[0] != "delta,s_total,bus_bandwidth,schedulable" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if lines[1] != "-3,40,20,true" {
		t.Errorf("CSV row 1 = %q", lines[1])
	}

	var js bytes.Buffer
	if err := a.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []struct {
		Delta       model.Time      `json:"delta"`
		Buffers     int             `json:"buffers"`
		Bandwidth   model.Time      `json:"bandwidth"`
		Schedulable bool            `json:"schedulable"`
		Config      json.RawMessage `json:"config"`
	}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("front JSON does not decode: %v", err)
	}
	if len(decoded) != 2 || decoded[0].Delta != -3 || len(decoded[0].Config) == 0 {
		t.Errorf("front JSON = %+v", decoded)
	}
}
