// Package dse is the multi-objective design-space explorer of the
// reproduction: instead of collapsing the paper's trade-off — OS
// maximizes the degree of schedulability (§5, Fig. 8) while OR
// minimizes the total buffer need s_total (§5, Fig. 7) — to a single
// configuration, Explore searches the same transformation space (the
// §5.1 moves: TDMA slot lengths and order, priority swaps, pins) and
// returns a Pareto front over three objectives: the degree of
// schedulability delta_Gamma, s_total, and the reserved TTP bus
// bandwidth of the round.
//
// The search is an NSGA-II-style population loop: per generation a
// serial rng draws the variation (tournament parents, stacked §5.1
// moves), the offspring are analyzed concurrently across an
// engine.Pool, and the reduction — archive insertion, non-dominated
// sorting, crowding-distance selection — walks the evaluations in
// generation order. Exactly like sa.RunRestarts, the outcome is
// therefore bit-identical for every worker count and fully determined
// by the seed.
//
// Cancelling ctx stops the search at the next evaluation granule; the
// archive's best-so-far front is returned alongside the context's
// error, so interactive callers (mcs-dse, the service's explore jobs)
// never lose finished work.
package dse

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/opt"
)

// Options tunes Explore. Zero values select the documented defaults.
type Options struct {
	// Population is the number of individuals kept per generation and
	// the number of offspring bred per generation (default 16).
	Population int
	// Generations bounds the evolution loop (default 12).
	Generations int
	// MoveBudget is how many §5.1 moves are generated per mutation
	// (default 16); the applied moves are drawn from that sample.
	MoveBudget int
	// MaxMutations caps the moves stacked onto one offspring
	// (default 3; each offspring applies 1..MaxMutations moves).
	MaxMutations int
	// ArchiveCap bounds the all-time non-dominated archive (default
	// DefaultArchiveCap); beyond it the most crowded point is pruned.
	ArchiveCap int
	// Seed drives all randomness (default 1).
	Seed int64
	// Workers bounds the concurrent offspring evaluations (default 1 =
	// serial). The front is bit-identical for every value.
	Workers int
	// Pool, when non-nil, supplies the evaluation pool (typically a
	// session-shared one) instead of a fresh engine.New(Workers).
	Pool *engine.Pool
	// Seeds are extra configurations injected into the initial
	// population (cloned and re-analyzed; their analyses count as
	// evaluations).
	Seeds []*core.Config
	// SeedPoints are pre-evaluated design points injected into the
	// initial population and the archive without re-analysis (the
	// Solver's warm start feeds the OS/OR results through here). They
	// are archived pinned — capacity pruning never drops them, so the
	// front always weakly dominates every seed point. Their analyses
	// are not counted again in Result.Evaluations.
	SeedPoints []Point
	// BaseConfig, when non-nil, replaces core.DefaultConfig as the
	// starting template (the Solver injects its cached template); it
	// must return a fresh un-normalized clone per call.
	BaseConfig func() *core.Config
	// Eval, when non-nil, replaces core.Analyze for every offspring
	// analysis — the Solver injects its incremental delta evaluator
	// here. The variation operators emit §5.1 moves (see mutate), so
	// generations step through move-derived neighbours the evaluator
	// can serve from its caches; fronts, hypervolumes and Evaluations
	// counts are identical either way.
	Eval opt.EvalFunc
	// OnProgress, when non-nil, receives one event per generation,
	// emitted from the serial reducing loop.
	OnProgress func(Progress)
}

func (o *Options) defaults() {
	if o.Population <= 0 {
		o.Population = 16
	}
	if o.Generations <= 0 {
		o.Generations = 12
	}
	if o.MoveBudget <= 0 {
		o.MoveBudget = 16
	}
	if o.MaxMutations <= 0 {
		o.MaxMutations = 3
	}
	if o.ArchiveCap <= 0 {
		o.ArchiveCap = DefaultArchiveCap
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
}

// Progress is one exploration progress event.
type Progress struct {
	// Generation just finished (0 for the initial population).
	Generation int
	// Evaluations counts the schedulability analyses spent so far.
	Evaluations int
	// FrontSize is the current archive size.
	FrontSize int
	// Hypervolume is the archive's self-referenced indicator.
	Hypervolume float64
}

// Result is the outcome of Explore.
type Result struct {
	// Front is the mutually non-dominated archive, sorted by
	// Objectives.Less.
	Front []Point
	// Evaluations counts the schedulability analyses performed.
	Evaluations int
	// Generations counts the completed generations.
	Generations int
	// Hypervolume is the front's indicator against its Nadir reference.
	Hypervolume float64
}

// individual is one population member with its NSGA-II bookkeeping.
type individual struct {
	Point
	obj   Objectives
	rank  int
	crowd float64
	idx   int // global creation order: the deterministic tie-break
}

// Explore runs the multi-objective search. The front is deterministic
// per seed and identical for every worker count; cancelling ctx
// returns the best-so-far front together with the context's error.
func Explore(ctx context.Context, app *model.Application, arch *model.Architecture, opts Options) (*Result, error) {
	opts.defaults()
	pool := opts.Pool
	if pool == nil {
		pool = engine.New(opts.Workers)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	archive := NewArchive(opts.ArchiveCap)
	res := &Result{}
	nextIdx := 0

	finish := func(err error) (*Result, error) {
		res.Front = archive.Points()
		res.Hypervolume = archive.Hypervolume()
		if len(res.Front) == 0 && err == nil {
			err = fmt.Errorf("dse: no evaluable configuration")
		}
		return res, err
	}

	// evalBatch analyzes a configuration batch across the pool and
	// reduces it in input order: successful analyses are archived and
	// become individuals, unanalyzable candidates are skipped, and a
	// cancellation truncates the batch (stopped = true) keeping what
	// finished.
	eval := opts.Eval
	if eval == nil {
		eval = func(cfg *core.Config) (*core.Analysis, error) {
			return core.Analyze(app, arch, cfg)
		}
	}
	evalBatch := func(cfgs []*core.Config) (out []individual, stopped bool) {
		evals, _ := engine.EvaluateAllWith(ctx, pool, engine.Analyzer(eval), cfgs)
		for i, ev := range evals {
			if ev.Err != nil {
				if ctx.Err() != nil && errors.Is(ev.Err, ctx.Err()) {
					return out, true
				}
				continue // unanalyzable candidate: skip
			}
			res.Evaluations++
			p := Point{Config: cfgs[i], Analysis: ev.Analysis}
			archive.Add(p)
			out = append(out, individual{Point: p, obj: p.Objectives(), idx: nextIdx})
			nextIdx++
		}
		return out, false
	}

	// Initial population: the normalized default template, the injected
	// seed configurations, and the pre-evaluated seed points.
	var baseCfg *core.Config
	if opts.BaseConfig != nil {
		baseCfg = opts.BaseConfig()
	} else {
		baseCfg = core.DefaultConfig(app, arch)
	}
	if err := baseCfg.Normalize(app); err != nil {
		return nil, err
	}
	initial := []*core.Config{baseCfg}
	for _, s := range opts.Seeds {
		c := s.Clone()
		if err := c.Normalize(app); err != nil {
			continue // structurally incompatible seed: skip
		}
		initial = append(initial, c)
	}
	pop, stopped := evalBatch(initial)
	for _, p := range opts.SeedPoints {
		archive.AddPinned(p)
		pop = append(pop, individual{Point: p, obj: p.Objectives(), idx: nextIdx})
		nextIdx++
	}
	if stopped || ctx.Err() != nil {
		return finish(ctx.Err())
	}
	if len(pop) == 0 {
		return finish(nil)
	}
	// progress builds the event — hypervolume included — only when an
	// observer is attached, so unobserved runs never pay the indicator.
	progress := func(generation int) {
		if opts.OnProgress == nil {
			return
		}
		opts.OnProgress(Progress{Generation: generation, Evaluations: res.Evaluations,
			FrontSize: archive.Len(), Hypervolume: archive.Hypervolume()})
	}

	rankAndCrowd(pop)
	progress(0)

	for g := 1; g <= opts.Generations; g++ {
		if ctx.Err() != nil {
			return finish(ctx.Err())
		}
		// Variation is drawn serially from the one rng stream (same
		// sequence as a serial run), then scored in parallel.
		var offspring []*core.Config
		//mcs:allow ctxloop variation is cheap in-memory mutation; the generation loop above and the pooled evaluation below both observe ctx
		for i := 0; i < opts.Population; i++ {
			parent := tournament(rng, pop)
			if cfg := mutate(rng, app, arch, parent.Point, &opts); cfg != nil {
				offspring = append(offspring, cfg)
			}
		}
		children, stopped := evalBatch(offspring)
		if stopped {
			return finish(ctx.Err())
		}
		merged := append(pop, children...)
		rankAndCrowd(merged)
		pop = environmental(merged, opts.Population)
		res.Generations = g
		progress(g)
	}
	return finish(ctx.Err())
}

// mutate breeds one offspring: 1..MaxMutations §5.1 moves sampled from
// the parent's neighbourhood, stacked onto its configuration. Returns
// nil when no move applies.
func mutate(rng *rand.Rand, app *model.Application, arch *model.Architecture, parent Point, opts *Options) *core.Config {
	moves := opt.GenerateMoves(app, arch, parent.Config, parent.Analysis,
		opt.MoveBudget{Max: opts.MoveBudget, Rand: rng})
	if len(moves) == 0 {
		return nil
	}
	n := 1 + rng.Intn(opts.MaxMutations)
	cfg := parent.Config
	applied := false
	for i := 0; i < n; i++ {
		mv := moves[rng.Intn(len(moves))]
		next, err := mv.Apply(app, arch, cfg)
		if err != nil {
			continue // structurally impossible on the mutated config
		}
		cfg = next
		applied = true
	}
	if !applied {
		return nil
	}
	return cfg
}

// tournament picks the binary-tournament winner: lower rank, then
// larger crowding distance, then earlier creation.
func tournament(rng *rand.Rand, pop []individual) individual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if precedes(a, b) {
		return a
	}
	return b
}

// precedes is the NSGA-II total preference order.
func precedes(a, b individual) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.crowd != b.crowd {
		return a.crowd > b.crowd
	}
	return a.idx < b.idx
}

// rankAndCrowd assigns the non-domination rank and the crowding
// distance of every individual in place (fast non-dominated sort,
// crowding computed per front).
func rankAndCrowd(pop []individual) {
	n := len(pop)
	dominatedBy := make([][]int, n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if pop[i].obj.Dominates(pop[j].obj) {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else if pop[j].obj.Dominates(pop[i].obj) {
				counts[i]++
			}
		}
	}
	var front []int
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			front = append(front, i)
		}
	}
	rank := 0
	for len(front) > 0 {
		objs := make([]Objectives, len(front))
		for k, i := range front {
			pop[i].rank = rank
			objs[k] = pop[i].obj
		}
		crowd := crowding(objs)
		for k, i := range front {
			pop[i].crowd = crowd[k]
		}
		var next []int
		for _, i := range front {
			for _, j := range dominatedBy[i] {
				counts[j]--
				if counts[j] == 0 {
					next = append(next, j)
				}
			}
		}
		front = next
		rank++
	}
}

// environmental selects the best n individuals by (rank, crowding,
// creation order) — the NSGA-II survivor selection, deterministic via
// the idx tie-break.
func environmental(pop []individual, n int) []individual {
	sort.Slice(pop, func(i, j int) bool { return precedes(pop[i], pop[j]) })
	if len(pop) > n {
		pop = pop[:n]
	}
	out := make([]individual, len(pop))
	copy(out, pop)
	return out
}
