package dse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
)

// Objectives is the objective vector of one design point. All three
// coordinates are minimized:
//
//   - Delta is the degree of schedulability delta_Gamma (§5): positive =
//     sum of deadline overruns, negative = aggregate slack.
//   - Buffers is s_total, the total gateway/ETC buffer need (§5, Fig. 7).
//   - Bandwidth is the reserved TTP transmission time per TDMA round
//     (the sum of the slot lengths, padding excluded): the share of the
//     time-triggered bus the configuration claims. The single-objective
//     heuristics never look at it, yet it is the natural extensibility
//     cost of a round — longer slots buy schedulability with bus
//     bandwidth future functions can no longer use.
type Objectives struct {
	Delta     model.Time `json:"delta"`
	Buffers   int        `json:"buffers"`
	Bandwidth model.Time `json:"bandwidth"`
}

// WeaklyDominates reports whether a is at least as good as b in every
// objective (minimization).
func (a Objectives) WeaklyDominates(b Objectives) bool {
	return a.Delta <= b.Delta && a.Buffers <= b.Buffers && a.Bandwidth <= b.Bandwidth
}

// Dominates reports whether a is at least as good as b everywhere and
// strictly better somewhere.
func (a Objectives) Dominates(b Objectives) bool {
	return a != b && a.WeaklyDominates(b)
}

// Less orders objective vectors lexicographically (Delta, Buffers,
// Bandwidth). Within a mutually non-dominated set the vectors are
// pairwise distinct, so Less is a strict total order on a front.
func (a Objectives) Less(b Objectives) bool {
	if a.Delta != b.Delta {
		return a.Delta < b.Delta
	}
	if a.Buffers != b.Buffers {
		return a.Buffers < b.Buffers
	}
	return a.Bandwidth < b.Bandwidth
}

// Bandwidth returns the reserved TTP transmission time per TDMA round
// of a configuration: the sum of its slot lengths (padding excluded).
func Bandwidth(cfg *core.Config) model.Time {
	var sum model.Time
	for _, s := range cfg.Round.Slots {
		sum += s.Length
	}
	return sum
}

// Point is one evaluated design point: a configuration together with
// its schedulability analysis.
type Point struct {
	Config   *core.Config
	Analysis *core.Analysis
}

// Objectives projects the point onto the objective space.
func (p Point) Objectives() Objectives {
	return Objectives{
		Delta:     p.Analysis.Delta,
		Buffers:   p.Analysis.Buffers.Total,
		Bandwidth: Bandwidth(p.Config),
	}
}

// Schedulable reports the analysis verdict.
func (p Point) Schedulable() bool { return p.Analysis.Schedulable }

// DefaultArchiveCap bounds an archive when the caller does not.
const DefaultArchiveCap = 256

// Archive maintains a bounded set of mutually non-dominated points.
// Insertion order breaks every tie, so an archive fed the same point
// sequence always holds the same front — the worker-count independence
// of Explore rests on this. Archive is not safe for concurrent use;
// Explore feeds it from its serial reducing loop.
//
// Points inserted with AddPinned (the Solver's warm-start optima) are
// exempt from capacity pruning: a pinned point leaves the archive only
// for a point that weakly dominates it, so by transitivity the front
// always contains a point weakly dominating every pinned insertion —
// the domination guarantee of Solver.Explore — at the cost of the
// archive exceeding its cap by at most the pinned count (a handful of
// warm-start points) when everything else has been pruned.
type Archive struct {
	cap    int
	pts    []Point
	objs   []Objectives
	pinned []bool
}

// NewArchive returns an empty archive keeping at most cap points
// (cap <= 0 selects DefaultArchiveCap). Beyond the cap the most crowded
// point is dropped, preserving the front's extremes and spread.
func NewArchive(cap int) *Archive {
	if cap <= 0 {
		cap = DefaultArchiveCap
	}
	return &Archive{cap: cap}
}

// Len returns the number of archived points.
func (a *Archive) Len() int { return len(a.pts) }

// Add offers a point to the archive. It returns false when an archived
// point already weakly dominates the candidate (so a point with an
// already-seen objective vector never displaces the first holder);
// otherwise the dominated points are evicted, the candidate enters, and
// the most crowded unpinned point is pruned if the cap is exceeded.
func (a *Archive) Add(p Point) bool { return a.add(p, false) }

// AddPinned is Add for points the archive must keep representing (see
// the pruning exemption in the type documentation).
func (a *Archive) AddPinned(p Point) bool { return a.add(p, true) }

func (a *Archive) add(p Point, pin bool) bool {
	o := p.Objectives()
	for i, q := range a.objs {
		if q.WeaklyDominates(o) {
			// A refused pinned candidate transfers its pin to the
			// refusing dominator: the guarantee ("the front weakly
			// dominates every pinned insertion") must survive that
			// dominator being capacity-pruned later.
			if pin {
				a.pinned[i] = true
			}
			return false
		}
	}
	keepPts := a.pts[:0]
	keepObjs := a.objs[:0]
	keepPinned := a.pinned[:0]
	for i, q := range a.objs {
		if o.WeaklyDominates(q) {
			// Evicting a pinned point transfers its pin to the
			// candidate: the replacement weakly dominates it, so
			// keeping the replacement un-prunable keeps the front
			// weakly dominating the original pinned insertion.
			pin = pin || a.pinned[i]
			continue
		}
		keepPts = append(keepPts, a.pts[i])
		keepObjs = append(keepObjs, q)
		keepPinned = append(keepPinned, a.pinned[i])
	}
	a.pts = append(keepPts, p)
	a.objs = append(keepObjs, o)
	a.pinned = append(keepPinned, pin)
	if len(a.pts) > a.cap {
		a.prune()
	}
	return true
}

// prune drops the unpinned point with the smallest crowding distance
// (latest inserted on ties) — never an objective-space extreme, never
// a pinned point. With only pinned points left the archive is allowed
// to exceed its cap.
func (a *Archive) prune() {
	crowd := crowding(a.objs)
	worst := -1
	for i, c := range crowd {
		if a.pinned[i] {
			continue
		}
		if worst < 0 || c <= crowd[worst] {
			worst = i // later index wins ties: keep the earliest points
		}
	}
	if worst < 0 {
		return
	}
	a.pts = append(a.pts[:worst], a.pts[worst+1:]...)
	a.objs = append(a.objs[:worst], a.objs[worst+1:]...)
	a.pinned = append(a.pinned[:worst], a.pinned[worst+1:]...)
}

// Points returns the archived front sorted by Objectives.Less. The
// slice is a copy; the points' Config/Analysis are shared.
func (a *Archive) Points() []Point {
	out := append([]Point(nil), a.pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Objectives().Less(out[j].Objectives()) })
	return out
}

// Nadir returns the componentwise worst objective vector of the
// archive, offset by one in every coordinate — the canonical reference
// point of Hypervolume, strictly dominated by every archived point.
func (a *Archive) Nadir() Objectives {
	var n Objectives
	for i, o := range a.objs {
		if i == 0 || o.Delta > n.Delta {
			n.Delta = o.Delta
		}
		if i == 0 || o.Buffers > n.Buffers {
			n.Buffers = o.Buffers
		}
		if i == 0 || o.Bandwidth > n.Bandwidth {
			n.Bandwidth = o.Bandwidth
		}
	}
	n.Delta++
	n.Buffers++
	n.Bandwidth++
	return n
}

// Hypervolume returns the volume of objective space dominated by the
// archive, bounded by its own Nadir reference point. The indicator
// compares search configurations over one system (a larger value means
// a wider, deeper front); it is exactly reproducible — integer
// objectives, deterministic slicing order — so equal fronts report
// bit-equal volumes.
func (a *Archive) Hypervolume() float64 {
	if len(a.objs) == 0 {
		return 0
	}
	return Hypervolume(a.objs, a.Nadir())
}

// Hypervolume computes the 3-D dominated hypervolume of a point set
// with respect to a reference point (minimization): the measure of
// {x : some point weakly dominates x, x <= ref componentwise}. Points
// not strictly below ref in every coordinate contribute nothing.
func Hypervolume(objs []Objectives, ref Objectives) float64 {
	var pts []Objectives
	for _, o := range objs {
		if o.Delta < ref.Delta && o.Buffers < ref.Buffers && o.Bandwidth < ref.Bandwidth {
			pts = append(pts, o)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	// Slice along Delta: between consecutive distinct delta levels the
	// dominated region's cross-section is the 2-D (Buffers, Bandwidth)
	// region of the points at or below the slice level.
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
	var levels []model.Time
	for _, p := range pts {
		if len(levels) == 0 || levels[len(levels)-1] != p.Delta {
			levels = append(levels, p.Delta)
		}
	}
	var vol float64
	for li, d := range levels {
		next := ref.Delta
		if li+1 < len(levels) {
			next = levels[li+1]
		}
		var slice []Objectives
		for _, p := range pts {
			if p.Delta <= d {
				slice = append(slice, p)
			}
		}
		vol += float64(next-d) * area2D(slice, ref)
	}
	return vol
}

// area2D computes the 2-D dominated area of the (Buffers, Bandwidth)
// projection: a staircase sweep over points sorted by Buffers, adding
// each point's rectangle up to the lowest bandwidth seen so far (the
// part of its rectangle no earlier point already covers).
func area2D(pts []Objectives, ref Objectives) float64 {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Buffers != pts[j].Buffers {
			return pts[i].Buffers < pts[j].Buffers
		}
		return pts[i].Bandwidth < pts[j].Bandwidth
	})
	var area float64
	minBW := ref.Bandwidth
	for _, p := range pts {
		if p.Bandwidth >= minBW {
			continue // dominated within the slice
		}
		area += float64(ref.Buffers-p.Buffers) * float64(minBW-p.Bandwidth)
		minBW = p.Bandwidth
	}
	return area
}

// crowding computes the NSGA-II crowding distance of every point:
// per objective, the extremes get +Inf and interior points accumulate
// the normalized span of their neighbours. Deterministic: sorts break
// ties by index.
func crowding(objs []Objectives) []float64 {
	n := len(objs)
	d := make([]float64, n)
	if n <= 2 {
		for i := range d {
			d[i] = math.Inf(1)
		}
		return d
	}
	idx := make([]int, n)
	coord := func(o Objectives, k int) float64 {
		switch k {
		case 0:
			return float64(o.Delta)
		case 1:
			return float64(o.Buffers)
		default:
			return float64(o.Bandwidth)
		}
	}
	for k := 0; k < 3; k++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool {
			a, b := coord(objs[idx[i]], k), coord(objs[idx[j]], k)
			if a != b {
				return a < b
			}
			return idx[i] < idx[j]
		})
		lo, hi := coord(objs[idx[0]], k), coord(objs[idx[n-1]], k)
		d[idx[0]] = math.Inf(1)
		d[idx[n-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for i := 1; i < n-1; i++ {
			d[idx[i]] += (coord(objs[idx[i+1]], k) - coord(objs[idx[i-1]], k)) / (hi - lo)
		}
	}
	return d
}

// WriteCSV renders the front (sorted by Objectives.Less) as CSV with a
// header row: delta, s_total, bus_bandwidth, schedulable. The numeric
// columns feed straight into plotting tools; see the README's "Pareto
// exploration" walkthrough.
func (a *Archive) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "delta,s_total,bus_bandwidth,schedulable"); err != nil {
		return err
	}
	for _, p := range a.Points() {
		o := p.Objectives()
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%v\n", o.Delta, o.Buffers, o.Bandwidth, p.Schedulable()); err != nil {
			return err
		}
	}
	return nil
}

// frontPointJSON is the JSON form of one front point: the objective
// vector, the verdict and the full configuration in the stable
// core.Config.Save encoding (so any front point feeds back into
// mcs-synth -config, LoadConfig and the wire API unchanged).
type frontPointJSON struct {
	Objectives
	Schedulable bool            `json:"schedulable"`
	Config      json.RawMessage `json:"config"`
}

// WriteJSON renders the front (sorted by Objectives.Less) as a JSON
// array of {delta, buffers, bandwidth, schedulable, config} objects.
func (a *Archive) WriteJSON(w io.Writer) error {
	out := make([]frontPointJSON, 0, len(a.pts))
	for _, p := range a.Points() {
		var buf bytes.Buffer
		if err := p.Config.Save(&buf); err != nil {
			return err
		}
		out = append(out, frontPointJSON{
			Objectives:  p.Objectives(),
			Schedulable: p.Schedulable(),
			Config:      json.RawMessage(buf.Bytes()),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
