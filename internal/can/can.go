// Package can models the controller area network bus of the ETC: exact
// worst-case frame transmission times (CAN 2.0A, 11-bit identifiers, with
// worst-case bit stuffing) and the priority conventions used by the
// analysis and the simulator.
//
// Messages larger than the 8-byte CAN payload are segmented into
// back-to-back frames by the kernel; their worst-case transmission time
// is the sum of the worst-case frame times. Following the paper, the
// analysis treats a multi-frame message as one unit of load C_m.
package can

import (
	"fmt"

	"repro/internal/model"
)

// MaxPayload is the CAN data field limit in bytes.
const MaxPayload = 8

// frameOverheadBits is the number of bits of a CAN 2.0A data frame
// outside the data field: SOF(1) + ID(11) + RTR(1) + IDE(1) + r0(1) +
// DLC(4) + CRC(15) + CRC del(1) + ACK(2) + EOF(7) + interframe space(3).
const frameOverheadBits = 47

// stuffableBits is the number of overhead bits exposed to bit stuffing
// (everything before the CRC delimiter except the fixed-form fields):
// the standard analysis value of 34.
const stuffableBits = 34

// FrameBits returns the worst-case length in bits of a single data frame
// carrying size bytes (0 <= size <= MaxPayload), including worst-case
// stuff bits floor((34 + 8*size - 1) / 4).
func FrameBits(size int) int {
	if size < 0 || size > MaxPayload {
		panic(fmt.Sprintf("can: frame payload %d outside [0,%d]", size, MaxPayload))
	}
	data := 8 * size
	stuff := 0
	if stuffableBits+data >= 1 {
		stuff = (stuffableBits + data - 1) / 4
	}
	return frameOverheadBits + data + stuff
}

// Frames returns how many CAN frames a message of size bytes occupies.
func Frames(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + MaxPayload - 1) / MaxPayload
}

// MessageBits returns the worst-case number of bus bits needed to send a
// message of size bytes, segmented into full frames plus a remainder
// frame.
func MessageBits(size int) int {
	if size < 0 {
		panic(fmt.Sprintf("can: negative message size %d", size))
	}
	if size == 0 {
		return FrameBits(0)
	}
	full := size / MaxPayload
	rem := size % MaxPayload
	bits := full * FrameBits(MaxPayload)
	if rem > 0 {
		bits += FrameBits(rem)
	}
	return bits
}

// MessageTime returns C_m, the worst-case time to transmit a message of
// size bytes on a bus whose bit takes bitTime ticks.
func MessageTime(size int, bitTime model.Time) model.Time {
	return model.Time(MessageBits(size)) * bitTime
}

// TimeOf returns the worst-case CAN transmission time of edge e: the
// explicit override when the model carries one, otherwise the exact
// frame-time computation from the edge size and the bus bit time.
func TimeOf(e *model.Edge, cfg model.CANConfig) model.Time {
	if e.CANTime > 0 {
		return e.CANTime
	}
	return MessageTime(e.Size, cfg.BitTime)
}

// Priority is a CAN identifier/priority. Smaller values win arbitration,
// exactly like CAN identifiers: priority 0 beats priority 1.
type Priority int

// HigherThan reports whether p wins arbitration against q.
func (p Priority) HigherThan(q Priority) bool { return p < q }
