package can

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestFrameBitsKnownValues(t *testing.T) {
	// Standard worst-case CAN 2.0A frame lengths (47 + 8s + floor((34+8s-1)/4)).
	cases := []struct{ size, want int }{
		{0, 47 + 0 + 8},   // 55
		{1, 47 + 8 + 10},  // 65
		{2, 47 + 16 + 12}, // 75
		{8, 47 + 64 + 24}, // 135
	}
	for _, c := range cases {
		if got := FrameBits(c.size); got != c.want {
			t.Errorf("FrameBits(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestFrameBitsPanicsOutOfRange(t *testing.T) {
	for _, size := range []int{-1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FrameBits(%d) did not panic", size)
				}
			}()
			FrameBits(size)
		}()
	}
}

func TestFrames(t *testing.T) {
	cases := []struct{ size, want int }{
		{0, 1}, {1, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3}, {32, 4},
	}
	for _, c := range cases {
		if got := Frames(c.size); got != c.want {
			t.Errorf("Frames(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestMessageBits(t *testing.T) {
	if got, want := MessageBits(8), FrameBits(8); got != want {
		t.Errorf("MessageBits(8) = %d, want %d", got, want)
	}
	if got, want := MessageBits(12), FrameBits(8)+FrameBits(4); got != want {
		t.Errorf("MessageBits(12) = %d, want %d", got, want)
	}
	if got, want := MessageBits(32), 4*FrameBits(8); got != want {
		t.Errorf("MessageBits(32) = %d, want %d", got, want)
	}
	if got, want := MessageBits(0), FrameBits(0); got != want {
		t.Errorf("MessageBits(0) = %d, want %d", got, want)
	}
}

func TestMessageTime(t *testing.T) {
	if got := MessageTime(8, 2); got != model.Time(2*135) {
		t.Errorf("MessageTime(8, 2) = %d, want 270", got)
	}
}

func TestTimeOfOverride(t *testing.T) {
	cfg := model.CANConfig{BitTime: 1}
	e := &model.Edge{Size: 8}
	if got := TimeOf(e, cfg); got != 135 {
		t.Errorf("TimeOf(derived) = %d, want 135", got)
	}
	e.CANTime = 10 // the paper's §4.2 example uses C_m = 10 ms
	if got := TimeOf(e, cfg); got != 10 {
		t.Errorf("TimeOf(override) = %d, want 10", got)
	}
}

func TestPropertyMessageBitsMonotone(t *testing.T) {
	f := func(raw uint16) bool {
		size := int(raw % 256)
		return MessageBits(size+1) > MessageBits(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMessageBitsBounds(t *testing.T) {
	// Worst-case stuffing never exceeds 25% of stuffable bits and each
	// frame always carries its overhead.
	f := func(raw uint16) bool {
		size := int(raw % 256)
		bits := MessageBits(size)
		frames := Frames(size)
		if bits < frames*frameOverheadBits+8*size {
			return false
		}
		return bits <= frames*(frameOverheadBits+(stuffableBits-1)/4)+8*size+2*size // generous cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPriority(t *testing.T) {
	if !Priority(0).HigherThan(1) {
		t.Error("priority 0 must beat 1 (CAN identifier order)")
	}
	if Priority(5).HigherThan(5) || Priority(7).HigherThan(2) {
		t.Error("HigherThan mismatch")
	}
}
