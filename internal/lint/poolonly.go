package lint

import "go/ast"

// Poolonly forbids bare go statements outside internal/engine: all
// fan-out rides the bounded engine.Pool so parallelism stays
// deterministic (ordered reductions) and bounded (no goroutine-per-item
// blowups under service load). internal/engine is structurally exempt —
// it IS the pool. Everything else, including the service's long-lived
// job-queue runners, annotates its legitimate detached goroutines with
// //mcs:allow poolonly and a reason, so every escape from the pool is
// visible in review rather than silently grandfathered.
var Poolonly = &Analyzer{
	Name: "poolonly",
	Doc: "forbids bare go statements outside internal/engine; fan-out must ride engine.Pool, " +
		"legitimate detached goroutines carry //mcs:allow poolonly",
	Run: func(p *Pass) {
		if hasSegments(p.Pkg.Path, "internal", "engine") {
			return
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(), "bare go statement — fan-out rides engine.Pool; a legitimate detached goroutine needs //mcs:allow poolonly <reason>")
				}
				return true
			})
		}
	},
}
