package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//mcs:allow <analyzer> <reason>
//
// placed on the offending line or on its own line directly above it
// (several own-line directives may stack). The reason is mandatory.
const directivePrefix = "//mcs:allow"

// directive is one parsed //mcs:allow comment.
type directive struct {
	pos      token.Position // of the comment itself
	target   int            // line the directive applies to (0 = dangling)
	analyzer string
	reason   string
	used     bool
}

// parseDirectives scans one package's comments for //mcs:allow
// directives and resolves the line each one targets: the comment's own
// line when code precedes it there (a trailing directive), otherwise
// the next line downward that holds code, skipping further comment
// lines — a blank line breaks the association and leaves the directive
// dangling.
func parseDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		lines := strings.Split(string(pkg.Src[fname]), "\n")
		isCode := func(line int) bool { // 1-based
			if line < 1 || line > len(lines) {
				return false
			}
			text := lines[line-1]
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			return strings.TrimSpace(text) != ""
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				// A nested // ends the directive, so ordinary trailing
				// commentary (and the fixtures' // want markers) never
				// leaks into the reason.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				pos := pkg.Fset.Position(c.Slash)
				d := &directive{pos: pos}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				switch {
				case isCode(pos.Line):
					d.target = pos.Line
				default:
					for line := pos.Line + 1; line <= len(lines); line++ {
						if isCode(line) {
							d.target = line
							break
						}
						if strings.TrimSpace(lines[line-1]) == "" {
							break // blank line: directive dangles
						}
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppression drops raw diagnostics matched by a well-formed
// directive, keeps (and flags) ones whose analyzer refuses suppression
// in this package, and appends directive-hygiene findings: missing
// reasons, unknown analyzer names, and directives that suppressed
// nothing. Hygiene findings carry the pseudo-analyzer name "directive"
// and are never themselves suppressible.
func applySuppression(pkg *Package, raw []Diagnostic, ran []*Analyzer) []Diagnostic {
	dirs := parseDirectives(pkg)
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	running := map[string]bool{}
	for _, a := range ran {
		running[a.Name] = true
	}

	var out []Diagnostic
	for _, diag := range raw {
		var match *directive
		for _, d := range dirs {
			if d.analyzer == diag.Analyzer && d.reason != "" &&
				d.target == diag.Line && d.pos.Filename == diag.File {
				match = d
				break
			}
		}
		if match == nil {
			out = append(out, diag)
			continue
		}
		if a := byName[diag.Analyzer]; a != nil && a.Hard != nil && a.Hard(pkg.Path) {
			match.used = true // not honoured, but not dangling either
			diag.Message += " (//mcs:allow is not honoured in deterministic layers — fix the site instead)"
			out = append(out, diag)
			continue
		}
		match.used = true
	}

	for _, d := range dirs {
		hygiene := func(format string, args ...interface{}) {
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      d.pos,
				File:     d.pos.Filename,
				Line:     d.pos.Line,
				Column:   d.pos.Column,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		switch {
		case d.analyzer == "":
			hygiene("mcs:allow needs an analyzer name and a reason: //mcs:allow <analyzer> <reason>")
		case byName[d.analyzer] == nil:
			hygiene("mcs:allow names unknown analyzer %q (have %s)", d.analyzer, strings.Join(analyzerNames(All()), ", "))
		case d.reason == "":
			hygiene("mcs:allow %s needs a reason — annotate why the site is legitimate", d.analyzer)
		case d.target == 0 && running[d.analyzer]:
			hygiene("dangling mcs:allow %s: no code line follows the directive", d.analyzer)
		case !d.used && running[d.analyzer]:
			hygiene("unused mcs:allow %s: nothing to suppress on line %d — remove the stale directive", d.analyzer, d.target)
		}
	}
	return out
}
