package lint

import (
	"go/ast"
	"go/types"
)

// Ctxloop enforces cancellation on the search loops: an exported entry
// point that accepts a context and then spins a counter- or
// condition-driven for loop doing real work (candidate scans, SA
// chains, DSE generations) must observe a context inside the loop —
// ctx.Err() per iteration, a ctx.Done() select, or handing ctx to the
// work it calls. Otherwise cancellation (CLI SIGINT, service job
// cancel, drain grace) is dead until the loop happens to finish.
//
// Range loops are exempt: their trip count is materialized up front,
// and the long ones already fan out through engine.Pool, which is
// context-aware. So are loops without calls (pure reductions finish in
// microseconds).
var Ctxloop = &Analyzer{
	Name: "ctxloop",
	Doc: "exported functions taking a context must observe it inside counter/condition-driven " +
		"work loops (check ctx.Err(), select on ctx.Done(), or pass ctx to the work)",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				if !hasCtxParam(p, fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					loop, ok := n.(*ast.ForStmt)
					if !ok {
						return true
					}
					if !containsCall(p, loop.Body) || referencesContext(p, loop) {
						return true
					}
					p.Reportf(loop.Pos(), "work loop in exported %s never observes the context — check ctx.Err() per iteration or pass ctx into the loop body", fd.Name.Name)
					return true
				})
			}
		}
	},
}

// hasCtxParam reports whether fd takes a context.Context parameter.
func hasCtxParam(p *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := p.Pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// containsCall reports whether the subtree performs any non-builtin
// call — the signal that a loop does real per-iteration work (append/
// len/make-only collection loops finish in microseconds and are
// exempt).
func containsCall(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); builtin {
				return !found
			}
			if _, conv := p.Pkg.Info.Uses[id].(*types.TypeName); conv {
				return !found
			}
		}
		found = true
		return false
	})
	return found
}

// referencesContext reports whether any identifier of type
// context.Context is mentioned inside the loop — the parameter itself,
// a derived context, or a closure's own context argument all count.
func referencesContext(p *Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		obj := p.Pkg.Info.Uses[id]
		if obj == nil {
			obj = p.Pkg.Info.Defs[id]
		}
		if obj != nil && obj.Type() != nil && isContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}
