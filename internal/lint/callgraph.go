package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide static call graph the
// interprocedural analyzers (detreach, and the -graph debug dump)
// traverse. The graph is deliberately dependency-free: it works off
// the same go/ast + go/types results the Loader already produced, and
// it is built once per Run and shared by every analyzer that needs it.
//
// Resolution rules, in decreasing precision:
//
//   - Direct calls (`f()`, `pkg.F()`, `recv.M()` on a concrete
//     receiver) resolve through the type-checker to exactly one callee.
//   - Interface method calls link to every module method with the same
//     name and a compatible receiver-stripped signature (class-
//     hierarchy-analysis style: no points-to, so all implementors are
//     possible callees).
//   - A function value passed as a call argument links the *passing*
//     function to the passed callee ("the callee may invoke what I
//     handed it"), and calls through a parameter inside the callee add
//     no further edges — the pass site already accounted for them.
//     This keeps callback chains (engine.Pool batches) precise instead
//     of merging every call site's candidates.
//   - Function values stored into a struct field link calls through
//     that field to exactly the values stored into it anywhere in the
//     module; likewise for package-level and local variables.
//   - Everything else that takes a function's address (composite
//     literals, map/slice elements, returns, channel sends) marks the
//     function address-taken; a dynamic call that none of the rules
//     above resolve links to every address-taken function with a
//     compatible signature.
//
// The approximation is sound for the repo's idioms with one documented
// exception: a function value that escapes through an unanalyzed
// stdlib container (e.g. stored in a sync.Map) and is called back is
// not tracked. docs/ARCHITECTURE.md §9.5 records the limits.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind string

const (
	// EdgeStatic is a direct call resolved to one callee.
	EdgeStatic EdgeKind = "static"
	// EdgeInterface is an interface method call linked to a compatible
	// concrete method.
	EdgeInterface EdgeKind = "interface"
	// EdgePassed links a function to a callback it hands to a call.
	EdgePassed EdgeKind = "passed"
	// EdgeDynamic is a call through a function value, linked by store
	// tracking or signature match.
	EdgeDynamic EdgeKind = "dynamic"
)

// Node is one function in the call graph: a declared function or
// method, or a function literal.
type Node struct {
	// Name is the diagnostic display name: "opt.OptimizeSchedule",
	// "(*service.Service).Drain", or "solve.Explore$1" for the first
	// literal inside Explore.
	Name string
	// Obj is the declared *types.Func (nil for literals).
	Obj *types.Func
	// Lit is the literal (nil for declared functions).
	Lit *ast.FuncLit
	// Pkg is the package the body lives in.
	Pkg *Package
	// Pos is the declaration (or literal) position.
	Pos token.Pos
	// Edges are the node's outgoing calls in source order.
	Edges []Edge
	// AddressTaken reports that the function's value escapes somewhere
	// (assigned, passed, stored, returned).
	AddressTaken bool

	body   *ast.BlockStmt
	sig    *types.Signature
	params map[types.Object]bool
	// enclosing is the node lexically containing a literal (nil for
	// declared functions).
	enclosing *Node
}

// Edge is one resolved call from a node.
type Edge struct {
	Callee *Node
	Pos    token.Pos
	Kind   EdgeKind
}

// Graph is the module-wide call graph over the loaded packages.
type Graph struct {
	// Nodes holds every function in a deterministic order (package
	// path, then position).
	Nodes []*Node

	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
	// fieldStores / varStores map a struct field or variable object to
	// the functions stored into it anywhere in the module.
	fieldStores map[types.Object][]*Node
	varStores   map[types.Object][]*Node
	// returns maps a function to the candidate functions it returns.
	returns map[*Node][]*Node
	// addressTaken lists escaping functions for the signature fallback.
	addressTaken []*Node
}

// NodeFor returns the graph node of a declared function or method.
func (g *Graph) NodeFor(fn *types.Func) *Node { return g.byObj[fn] }

// NodeForLit returns the graph node of a function literal.
func (g *Graph) NodeForLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// buildGraph constructs the call graph over pkgs in two passes: first
// index every function and collect stores/escapes, then resolve the
// call sites (which need the complete store and address-taken sets).
func buildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		byObj:       map[*types.Func]*Node{},
		byLit:       map[*ast.FuncLit]*Node{},
		fieldStores: map[types.Object][]*Node{},
		varStores:   map[types.Object][]*Node{},
		returns:     map[*Node][]*Node{},
	}
	for _, pkg := range pkgs {
		g.indexPackage(pkg)
	}
	for _, pkg := range pkgs {
		g.collectStores(pkg)
	}
	for _, n := range g.Nodes {
		if n.AddressTaken {
			g.addressTaken = append(g.addressTaken, n)
		}
	}
	for _, n := range g.Nodes {
		g.resolveCalls(n)
	}
	return g
}

// indexPackage creates nodes for every declared function/method and
// every function literal in pkg.
func (g *Graph) indexPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &Node{
				Name: displayName(pkg, obj),
				Obj:  obj,
				Pkg:  pkg,
				Pos:  fd.Name.Pos(),
				body: fd.Body,
			}
			n.sig, _ = obj.Type().(*types.Signature)
			n.params = paramObjects(pkg, fd.Type, fd.Recv)
			g.byObj[obj] = n
			g.Nodes = append(g.Nodes, n)
			g.indexLiterals(pkg, n, fd.Body)
		}
	}
}

// indexLiterals creates nodes for the function literals inside body,
// owned by the enclosing node, stopping at each literal's boundary
// (nested literals belong to their parent literal's node).
func (g *Graph) indexLiterals(pkg *Package, enclosing *Node, body ast.Node) {
	count := 0
	inspectOwn(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		count++
		ln := &Node{
			Name:      fmt.Sprintf("%s$%d", enclosing.Name, count),
			Lit:       lit,
			Pkg:       pkg,
			Pos:       lit.Pos(),
			body:      lit.Body,
			enclosing: enclosing,
		}
		if tv, ok := pkg.Info.Types[lit]; ok {
			ln.sig, _ = tv.Type.(*types.Signature)
		}
		ln.params = paramObjects(pkg, lit.Type, nil)
		g.byLit[lit] = ln
		g.Nodes = append(g.Nodes, ln)
		g.indexLiterals(pkg, ln, lit.Body)
		return false
	})
}

// inspectOwn walks root like ast.Inspect but does not descend into
// nested function literals (their bodies belong to other nodes). The
// literal node itself is still visited, so callers can handle it.
func inspectOwn(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || n == root {
			return true
		}
		if !fn(n) {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
}

// paramObjects collects the parameter (and receiver) objects of a
// function so calls through them can be recognized and skipped.
func paramObjects(pkg *Package, ft *ast.FuncType, recv *ast.FieldList) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(recv)
	add(ft.Params)
	return out
}

// displayName renders "pkg.Func", "(*pkg.T).Method", or "(pkg.T).Method".
func displayName(pkg *Package, fn *types.Func) string {
	short := pkg.Path
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return short + "." + fn.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
		ptr = "*"
	}
	name := recv.String()
	if named, ok := recv.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return fmt.Sprintf("(%s%s.%s).%s", ptr, short, name, fn.Name())
}

// collectStores records, for every node body in pkg, which functions
// are stored into fields/variables, returned, or otherwise escape.
// Package-level var initializers (hook tables, default configs) live
// outside any function body and are walked separately.
func (g *Graph) collectStores(pkg *Package) {
	for _, n := range g.Nodes {
		if n.Pkg != pkg {
			continue
		}
		g.collectNodeStores(n)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				g.collectValueSpec(pkg, vs)
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						if cl, ok := n.(*ast.CompositeLit); ok {
							g.collectCompositeStores(pkg, cl)
						}
						return true
					})
				}
			}
		}
	}
}

// collectValueSpec records function values bound by a var declaration.
func (g *Graph) collectValueSpec(pkg *Package, vs *ast.ValueSpec) {
	for i, rhs := range vs.Values {
		cands := g.valueCandidates(pkg, rhs)
		if len(cands) == 0 {
			continue
		}
		g.markEscaped(cands)
		if i < len(vs.Names) && len(vs.Values) == len(vs.Names) {
			if obj := pkg.Info.Defs[vs.Names[i]]; obj != nil {
				g.varStores[obj] = append(g.varStores[obj], cands...)
			}
		}
	}
}

func (g *Graph) collectNodeStores(n *Node) {
	pkg := n.Pkg
	inspectOwn(n.body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				cands := g.valueCandidates(pkg, rhs)
				if len(cands) == 0 {
					continue
				}
				g.markEscaped(cands)
				if i < len(node.Lhs) && len(node.Rhs) == len(node.Lhs) {
					g.recordStore(pkg, node.Lhs[i], cands)
				}
			}
		case *ast.ValueSpec:
			g.collectValueSpec(pkg, node)
		case *ast.CompositeLit:
			g.collectCompositeStores(pkg, node)
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				cands := g.valueCandidates(pkg, res)
				if len(cands) == 0 {
					continue
				}
				g.markEscaped(cands)
				g.returns[n] = append(g.returns[n], cands...)
			}
		case *ast.SendStmt:
			g.markEscaped(g.valueCandidates(pkg, node.Value))
		case *ast.CallExpr:
			// Arguments that are function values escape (the callee may
			// store them); the precise caller→callback edge is added in
			// resolveCalls.
			for _, arg := range node.Args {
				g.markEscaped(g.valueCandidates(pkg, arg))
			}
		}
		return true
	})
}

// collectCompositeStores maps composite-literal elements to their
// struct fields so calls through those fields resolve precisely.
func (g *Graph) collectCompositeStores(pkg *Package, cl *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[cl]
	if !ok {
		return
	}
	st, _ := tv.Type.Underlying().(*types.Struct)
	for i, elt := range cl.Elts {
		var value ast.Expr = elt
		var field types.Object
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok && st != nil {
				if obj := pkg.Info.Uses[id]; obj != nil {
					field = obj
				}
			}
		} else if st != nil && i < st.NumFields() {
			field = st.Field(i)
		}
		cands := g.valueCandidates(pkg, value)
		if len(cands) == 0 {
			continue
		}
		g.markEscaped(cands)
		if field != nil {
			g.fieldStores[field] = append(g.fieldStores[field], cands...)
		}
	}
}

// recordStore attributes candidate functions to the variable or struct
// field the LHS expression denotes.
func (g *Graph) recordStore(pkg *Package, lhs ast.Expr, cands []*Node) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := pkg.Info.Defs[lhs]
		if obj == nil {
			obj = pkg.Info.Uses[lhs]
		}
		if obj != nil {
			g.varStores[obj] = append(g.varStores[obj], cands...)
		}
	case *ast.SelectorExpr:
		if obj := pkg.Info.Uses[lhs.Sel]; obj != nil {
			g.fieldStores[obj] = append(g.fieldStores[obj], cands...)
		}
	}
}

// markEscaped flags candidates as address-taken.
func (g *Graph) markEscaped(cands []*Node) {
	for _, c := range cands {
		c.AddressTaken = true
	}
}

// valueCandidates resolves an expression to the function nodes it may
// evaluate to: a literal is itself; a function identifier or method
// value is its node; a call of append is the union of its function
// arguments (the jobs-slice build idiom); a call of a known function
// is what that function returns. Non-function expressions yield nil.
func (g *Graph) valueCandidates(pkg *Package, expr ast.Expr) []*Node {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		if n := g.byLit[expr]; n != nil {
			return []*Node{n}
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[expr].(*types.Func); ok {
			if n := g.byObj[fn]; n != nil {
				return []*Node{n}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[expr.Sel].(*types.Func); ok {
			if n := g.byObj[fn]; n != nil {
				return []*Node{n}
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(expr.Fun).(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				var out []*Node
				for _, arg := range expr.Args {
					out = append(out, g.valueCandidates(pkg, arg)...)
				}
				return out
			}
		}
		// Conversions wrap a function value without changing it
		// (engine.Analyzer(fn)).
		if tv, ok := pkg.Info.Types[expr.Fun]; ok && tv.IsType() && len(expr.Args) == 1 {
			return g.valueCandidates(pkg, expr.Args[0])
		}
		if callee := g.staticCallee(pkg, expr); callee != nil {
			return g.returns[callee]
		}
	}
	return nil
}

// staticCallee resolves a call expression to its single declared
// callee node, or nil for dynamic/interface/stdlib calls.
func (g *Graph) staticCallee(pkg *Package, call *ast.CallExpr) *Node {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return g.byObj[fn]
}

// resolveCalls adds n's outgoing edges.
func (g *Graph) resolveCalls(n *Node) {
	pkg := n.Pkg
	inspectOwn(n.body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Type conversions are not calls.
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		g.resolveOneCall(n, call)
		// Callback arguments: the passing function is linked to what it
		// hands over, whichever callee ends up invoking it.
		for _, arg := range call.Args {
			for _, cand := range g.valueCandidates(pkg, arg) {
				n.addEdge(cand, arg.Pos(), EdgePassed)
			}
		}
		return true
	})
	// A go/defer of a literal that is never otherwise referenced still
	// runs: immediate literal calls are CallExprs and already covered.
}

func (g *Graph) resolveOneCall(n *Node, call *ast.CallExpr) {
	pkg := n.Pkg
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.FuncLit:
		if ln := g.byLit[fun]; ln != nil {
			n.addEdge(ln, call.Pos(), EdgeStatic)
		}
		return
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			if callee := g.byObj[obj]; callee != nil {
				n.addEdge(callee, call.Pos(), EdgeStatic)
			}
			return
		case *types.Builtin, *types.TypeName, nil:
			return
		case *types.Var:
			g.resolveValueCall(n, call, fun, obj)
			return
		}
	case *ast.SelectorExpr:
		switch obj := pkg.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			sig, _ := obj.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				g.resolveInterfaceCall(n, call, obj)
				return
			}
			if callee := g.byObj[obj]; callee != nil {
				n.addEdge(callee, call.Pos(), EdgeStatic)
			}
			return
		case *types.Var:
			g.resolveValueCall(n, call, fun.Sel, obj)
			return
		}
	}
	// Fully dynamic expression (index into a slice of funcs, call
	// returning a func called immediately, ...): try value resolution,
	// then the signature fallback.
	g.dynamicEdges(n, call, g.valueCandidates(pkg, fun))
}

// resolveValueCall handles a call through a named function value: a
// parameter (skipped — accounted at the pass sites), a tracked
// variable or field, or the signature fallback.
func (g *Graph) resolveValueCall(n *Node, call *ast.CallExpr, id *ast.Ident, obj types.Object) {
	if n.params[obj] || (n.enclosing != nil && enclosingParam(n, obj)) {
		return // callback parameter: pass sites own these edges
	}
	if stores := g.varStores[obj]; len(stores) > 0 {
		g.dynamicEdges(n, call, stores)
		return
	}
	if stores := g.fieldStores[obj]; len(stores) > 0 {
		g.dynamicEdges(n, call, stores)
		return
	}
	g.dynamicEdges(n, call, nil)
}

// enclosingParam reports whether obj is a parameter of any function
// lexically enclosing the literal node n (a captured callback).
func enclosingParam(n *Node, obj types.Object) bool {
	for e := n.enclosing; e != nil; e = e.enclosing {
		if e.params[obj] {
			return true
		}
	}
	return false
}

// resolveInterfaceCall links an interface method call to every module
// method with the same name and a compatible signature.
func (g *Graph) resolveInterfaceCall(n *Node, call *ast.CallExpr, m *types.Func) {
	msig, _ := m.Type().(*types.Signature)
	for _, cand := range g.Nodes {
		if cand.Obj == nil || cand.Obj.Name() != m.Name() {
			continue
		}
		csig, _ := cand.Obj.Type().(*types.Signature)
		if csig == nil || csig.Recv() == nil {
			continue
		}
		if sigCompatible(msig, csig) {
			n.addEdge(cand, call.Pos(), EdgeInterface)
		}
	}
}

// dynamicEdges links a dynamic call to its candidates, falling back to
// every address-taken function with a compatible signature when no
// store tracking narrowed the set.
func (g *Graph) dynamicEdges(n *Node, call *ast.CallExpr, cands []*Node) {
	if len(cands) == 0 {
		sig := callSignature(n.Pkg, call)
		if sig == nil {
			return
		}
		for _, cand := range g.addressTaken {
			if cand.sig != nil && sigCompatible(sig, cand.sig) {
				n.addEdge(cand, call.Pos(), EdgeDynamic)
			}
		}
		return
	}
	for _, cand := range cands {
		n.addEdge(cand, call.Pos(), EdgeDynamic)
	}
}

// callSignature recovers the signature of the function value being
// called.
func callSignature(pkg *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// sigCompatible reports whether two signatures could describe the same
// function value, ignoring receivers. Generic signatures (either side)
// match on arity alone — instantiation details are not tracked.
func sigCompatible(a, b *types.Signature) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Params().Len() != b.Params().Len() || a.Results().Len() != b.Results().Len() {
		return false
	}
	if a.Variadic() != b.Variadic() {
		return false
	}
	if a.TypeParams().Len() > 0 || b.TypeParams().Len() > 0 ||
		a.RecvTypeParams().Len() > 0 || b.RecvTypeParams().Len() > 0 {
		return true
	}
	strip := func(s *types.Signature) *types.Signature {
		return types.NewSignatureType(nil, nil, nil, s.Params(), s.Results(), s.Variadic())
	}
	return types.Identical(strip(a), strip(b))
}

func (n *Node) addEdge(callee *Node, pos token.Pos, kind EdgeKind) {
	for _, e := range n.Edges {
		if e.Callee == callee && e.Pos == pos {
			return
		}
	}
	n.Edges = append(n.Edges, Edge{Callee: callee, Pos: pos, Kind: kind})
}

// sortNodes orders nodes deterministically for dumps and traversals.
func (g *Graph) sortNodes() {
	sort.Slice(g.Nodes, func(i, j int) bool {
		a, b := g.Nodes[i], g.Nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Pos < b.Pos
	})
}

// Dump renders the graph in a stable, greppable text form:
//
//	pkg.Func (address-taken)
//	  -> callee [kind] at file:line
func (g *Graph) Dump(fset *token.FileSet) string {
	g.sortNodes()
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%s", n.Name)
		if n.AddressTaken {
			b.WriteString(" (address-taken)")
		}
		b.WriteString("\n")
		for _, e := range n.Edges {
			pos := fset.Position(e.Pos)
			fmt.Fprintf(&b, "  -> %s [%s] at %s:%d\n", e.Callee.Name, e.Kind, pos.Filename, pos.Line)
		}
	}
	return b.String()
}

// ReachChain finds the shortest call chain from entry to a node
// satisfying sink, returning the nodes along it (entry first) or nil.
// BFS over edges in insertion order keeps the result deterministic.
func (g *Graph) ReachChain(entry *Node, sink func(*Node) bool) []*Node {
	if sink(entry) {
		return []*Node{entry}
	}
	prev := map[*Node]*Node{entry: nil}
	queue := []*Node{entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			c := e.Callee
			if _, seen := prev[c]; seen {
				continue
			}
			prev[c] = n
			if sink(c) {
				var chain []*Node
				for at := c; at != nil; at = prev[at] {
					chain = append(chain, at)
				}
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				return chain
			}
			queue = append(queue, c)
		}
	}
	return nil
}
