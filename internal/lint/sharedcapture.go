package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sharedcapture is the static complement to the race detector, which
// only sees the interleavings a run happens to execute. It inspects
// the closures that actually run concurrently in this repo — function
// literals submitted to engine.Pool batch primitives and literals
// launched by go statements (annotated or not; poolonly polices the
// annotation) — and flags captures that break the batch contract:
//
//   - A pool-batch closure that directly writes a captured variable
//     declared outside the closure. Batch items run concurrently, so
//     sibling items race on the variable and the reduction order
//     becomes worker-count-dependent even when the race detector stays
//     quiet. Index-disjoint writes (out[i] = v) are the sanctioned
//     idiom and are not flagged.
//   - A goroutine closure that directly writes a captured variable the
//     enclosing function also writes — a concurrent write pair with no
//     ordering between them.
//   - A batch closure capturing a loop induction variable declared
//     outside its loop (`var i int; for i = ...`): every item sees the
//     shared variable's final value, so the index-disjointness the
//     batch relies on silently collapses. (Loop variables declared by
//     the loop itself are per-iteration since Go 1.22 and are safe.)
//
// Closures that serialize access through a sync.Mutex/RWMutex Lock are
// skipped — guarded shared state is a deliberate, race-free design and
// order-sensitivity there is maporder/detreach territory. Legitimate
// exceptions (a monotonic flag where last-write-wins is provably
// order-independent) carry //mcs:allow sharedcapture with the proof.
var Sharedcapture = &Analyzer{
	Name: "sharedcapture",
	Doc: "flags pool-submitted or go-launched closures that write shared captured variables " +
		"or capture loop variables shared across batch items — the static race complement",
	Run: func(p *Pass) {
		if hasSegments(p.Pkg.Path, "internal", "engine") {
			return // the pool's own internals write result slots by design
		}
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkSharedCapture(p, fd)
			}
		}
	},
}

func checkSharedCapture(p *Pass, fd *ast.FuncDecl) {
	pkg := p.Pkg
	batch := batchClosures(pkg, fd)
	writes := directWrites(pkg, fd.Body)

	// Pool-batch closures: any direct write to a variable declared
	// outside the closure races with sibling batch items.
	for _, lit := range batch {
		if mutexGuarded(pkg, lit) {
			continue
		}
		for obj, positions := range writes {
			if declaredWithin(obj, lit) {
				continue
			}
			for _, pos := range positions {
				if within(pos, lit) {
					p.Reportf(pos, "pool-batch closure writes captured %q declared outside it — sibling batch items race on it; write an index-disjoint slot or reduce after the batch, or prove order-independence with //mcs:allow sharedcapture <reason>", obj.Name())
				}
			}
		}
		for obj, loopPos := range sharedLoopVars(pkg, fd, lit) {
			if capturedBy(pkg, lit, obj) {
				p.Reportf(lit.Pos(), "pool-batch closure captures loop variable %q declared outside its loop (line %d) — items share one variable instead of per-iteration copies, breaking index-disjointness; declare it in the loop header or pass it as an argument", obj.Name(), pkg.Fset.Position(loopPos).Line)
			}
		}
	}

	// Goroutine closures: a captured write paired with a write outside
	// the closure is a concurrent write pair.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok || mutexGuarded(pkg, lit) {
			return true
		}
		for obj, positions := range writes {
			if declaredWithin(obj, lit) {
				continue
			}
			var inside, outside bool
			var insidePos token.Pos
			for _, pos := range positions {
				if within(pos, lit) {
					inside = true
					insidePos = pos
				} else {
					outside = true
				}
			}
			if inside && outside {
				p.Reportf(insidePos, "goroutine writes captured %q which the enclosing function also writes — concurrent unsynchronized write pair; guard both sides or communicate over a channel, or prove safety with //mcs:allow sharedcapture <reason>", obj.Name())
			}
		}
		return true
	})
}

// batchClosures collects the function literals of fd that end up in an
// engine.Pool batch: literals passed directly as arguments to a call
// into internal/engine, and literals stored (assigned, appended,
// indexed) into a variable that is passed to such a call.
func batchClosures(pkg *Package, fd *ast.FuncDecl) []*ast.FuncLit {
	batchVars := map[types.Object]bool{}
	var lits []*ast.FuncLit
	seen := map[*ast.FuncLit]bool{}
	add := func(lit *ast.FuncLit) {
		if lit != nil && !seen[lit] {
			seen[lit] = true
			lits = append(lits, lit)
		}
	}
	// Pass 1: engine call sites — literal args and job-slice variables.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isEngineCall(pkg, call) {
			return true
		}
		for _, arg := range call.Args {
			switch arg := ast.Unparen(arg).(type) {
			case *ast.FuncLit:
				add(arg)
			case *ast.Ident:
				if obj := pkg.Info.Uses[arg]; obj != nil {
					batchVars[obj] = true
				}
			case *ast.CallExpr:
				// engine.Analyzer(fn) style conversions and wrappers:
				// a literal inside still reaches the pool.
				ast.Inspect(arg, func(c ast.Node) bool {
					if l, ok := c.(*ast.FuncLit); ok {
						add(l)
						return false
					}
					return true
				})
			}
		}
		return true
	})
	if len(batchVars) > 0 {
		// Pass 2: literals stored into the job-slice variables.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				var obj types.Object
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					obj = pkg.Info.Defs[lhs]
					if obj == nil {
						obj = pkg.Info.Uses[lhs]
					}
				case *ast.IndexExpr:
					if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
						obj = pkg.Info.Uses[id]
					}
				}
				if obj == nil || !batchVars[obj] {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(as.Rhs) == len(as.Lhs):
					rhs = as.Rhs[i]
				case len(as.Rhs) == 1:
					rhs = as.Rhs[0]
				default:
					continue
				}
				ast.Inspect(rhs, func(c ast.Node) bool {
					if l, ok := c.(*ast.FuncLit); ok {
						add(l)
						return false
					}
					return true
				})
			}
			return true
		})
	}
	return lits
}

// isEngineCall reports whether the call's static callee lives in the
// engine package (the pool's batch primitives).
func isEngineCall(pkg *Package, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return hasSegments(fn.Pkg().Path(), "internal", "engine")
}

// directWrites maps each written variable object to the positions of
// its direct writes (assignment to the bare identifier or ++/--)
// anywhere in body, closures included. Writes through an index or
// field are not collected: out[i] = v is the sanctioned idiom.
func directWrites(pkg *Package, body ast.Node) map[types.Object][]token.Pos {
	writes := map[types.Object][]token.Pos{}
	record := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		writes[obj] = append(writes[obj], id.Pos())
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// := declares (Defs, not Uses) and never aliases an outer
			// variable; plain = and op= to an existing object do.
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					record(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				record(id)
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if id, ok := n.Key.(*ast.Ident); ok {
					record(id)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					record(id)
				}
			}
		}
		return true
	})
	return writes
}

// sharedLoopVars returns, for each loop lexically enclosing lit inside
// fd, the induction variables the loop writes that are declared
// outside the loop itself — the pre-Go-1.22 sharing hazard — mapped to
// the loop position.
func sharedLoopVars(pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit) map[types.Object]token.Pos {
	out := map[types.Object]token.Pos{}
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			var loop ast.Node
			switch c := c.(type) {
			case *ast.ForStmt:
				loop = c
			case *ast.RangeStmt:
				loop = c
			default:
				return true
			}
			if !(loop.Pos() <= lit.Pos() && lit.End() <= loop.End()) {
				return true // lit not inside this loop; keep scanning siblings
			}
			for obj := range loopInductionVars(pkg, c) {
				if obj.Pos() < loop.Pos() || obj.Pos() > loop.End() {
					out[obj] = loop.Pos()
				}
			}
			return true
		})
	}
	visit(fd.Body)
	return out
}

// loopInductionVars collects the variables a loop's own machinery
// assigns: for-statement init/post targets and assign-form range keys.
func loopInductionVars(pkg *Package, loop ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(id *ast.Ident) {
		if obj := pkg.Info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	switch loop := loop.(type) {
	case *ast.ForStmt:
		for _, stmt := range []ast.Stmt{loop.Init, loop.Post} {
			switch stmt := stmt.(type) {
			case *ast.AssignStmt:
				if stmt.Tok == token.ASSIGN {
					for _, lhs := range stmt.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							add(id)
						}
					}
				}
			case *ast.IncDecStmt:
				if id, ok := ast.Unparen(stmt.X).(*ast.Ident); ok {
					add(id)
				}
			}
		}
	case *ast.RangeStmt:
		if loop.Tok == token.ASSIGN {
			if id, ok := loop.Key.(*ast.Ident); ok {
				add(id)
			}
			if id, ok := loop.Value.(*ast.Ident); ok {
				add(id)
			}
		}
	}
	return out
}

// capturedBy reports whether lit's body references obj.
func capturedBy(pkg *Package, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// mutexGuarded reports whether the closure serializes itself with a
// sync Lock — guarded shared state is deliberate, not a race.
func mutexGuarded(pkg *Package, lit *ast.FuncLit) bool {
	guarded := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !guarded
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return !guarded
		}
		switch fn.Name() {
		case "Lock", "RLock":
			guarded = true
		}
		return !guarded
	})
	return guarded
}

// declaredWithin reports whether obj's declaration lies inside lit.
func declaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	return within(obj.Pos(), lit)
}

// within reports whether pos falls inside lit's source range.
func within(pos token.Pos, lit *ast.FuncLit) bool {
	return lit.Pos() <= pos && pos <= lit.End()
}
