package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags the classic bit-identity killer: a range over a map
// whose body feeds an order-sensitive sink — appending to a slice,
// writing output, or feeding a hash/encoder — without a deterministic
// order. Go randomizes map iteration per run, so any such loop makes
// output depend on the iteration draw. The map's iterator forms
// (maps.Keys, maps.Values, maps.All) randomize identically and are
// treated the same as ranging over the map itself.
//
// The analyzer lets a loop off when the order is deterministic by
// construction: the range source is a sorting call — the idiomatic
// `for _, k := range slices.Sorted(maps.Keys(m))` never fires and
// needs no directive — or the enclosing function sorts after the loop
// (any call into sort or slices.Sort* lexically after the range ends:
// collect-then-sort). Sites where order provably cannot matter are
// annotated with //mcs:allow maporder and the proof as the reason.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map loops (including maps.Keys/Values/All iterators) that append, " +
		"write output, or feed a hash/encoder without an intervening sort — iterate " +
		"slices.Sorted(maps.Keys(m)) or sort the collected result",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			// Walk with explicit function tracking so each range can be
			// checked for a sort later in its innermost enclosing
			// function body.
			var walk func(n ast.Node, fn ast.Node)
			walk = func(n ast.Node, fn ast.Node) {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						walk(n.Body, n.Body)
					}
					return
				case *ast.FuncLit:
					walk(n.Body, n.Body)
					return
				case *ast.RangeStmt:
					if fn != nil {
						checkRange(p, n, fn)
					}
				case nil:
					return
				}
				ast.Inspect(n, func(c ast.Node) bool {
					if c == n {
						return true
					}
					switch c.(type) {
					case *ast.FuncDecl, *ast.FuncLit, *ast.RangeStmt:
						walk(c, fn)
						return false
					}
					return true
				})
			}
			walk(f, nil)
		}
	},
}

func checkRange(p *Pass, rs *ast.RangeStmt, fn ast.Node) {
	if !rangesOverMap(p.Pkg, rs) {
		return
	}
	sink := orderSensitiveSink(p.Pkg, rs.Body)
	if sink == "" {
		return
	}
	if sortedAfter(p.Pkg, fn, rs.End()) {
		return
	}
	p.Reportf(rs.Pos(), "range over map feeds %s without a deterministic order — iterate slices.Sorted(maps.Keys(m)), sort the collected result, or prove order-independence with //mcs:allow maporder <reason>", sink)
	// Descend into the body anyway so nested ranges still get their own
	// checks via the outer walker (Inspect there recurses past us).
}

// rangesOverMap reports whether the range statement draws from
// randomized map iteration: the source is map-typed, or it is a direct
// maps.Keys/maps.Values/maps.All iterator over a map. A sorting
// wrapper (`slices.Sorted(maps.Keys(m))`) changes the source type to a
// slice and the callee to slices, so it never matches.
func rangesOverMap(pkg *Package, rs *ast.RangeStmt) bool {
	if tv, ok := pkg.Info.Types[rs.X]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	call, ok := ast.Unparen(rs.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
		return false
	}
	switch fn.Name() {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// orderSensitiveSinks are call names whose results depend on call
// order: stream writers, printers, and hash/encoder feeds.
var orderSensitivePrefixes = []string{"Write", "Print", "Fprint", "Encode", "Sum"}

// orderSensitiveSink reports what (if anything) inside the range body
// observes iteration order: an append onto a slice, a write/print/
// encode/hash call, or a channel send.
func orderSensitiveSink(pkg *Package, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
		case *ast.CallExpr:
			switch callee := n.Fun.(type) {
			case *ast.Ident:
				if b, ok := pkg.Info.Uses[callee].(*types.Builtin); ok && b.Name() == "append" {
					sink = "append"
				}
			case *ast.SelectorExpr:
				name := callee.Sel.Name
				for _, prefix := range orderSensitivePrefixes {
					if strings.HasPrefix(name, prefix) {
						sink = "an order-sensitive call (" + name + ")"
						break
					}
				}
			}
		}
		return true
	})
	return sink
}

// sortedAfter reports whether the enclosing function establishes a
// deterministic order lexically after pos — a call into sort,
// slices.Sort*, or a local helper whose name says it sorts
// (sortProcIDs, SortKeys, ...): the collect-then-sort idiom.
func sortedAfter(pkg *Package, fn ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		switch callee := call.Fun.(type) {
		case *ast.Ident:
			if strings.HasPrefix(callee.Name, "sort") || strings.HasPrefix(callee.Name, "Sort") {
				found = true
			}
		case *ast.SelectorExpr:
			if x, ok := callee.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[x].(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "sort":
						found = true
					case "slices":
						found = strings.HasPrefix(callee.Sel.Name, "Sort")
					}
					break
				}
			}
			if strings.HasPrefix(callee.Sel.Name, "sort") || strings.HasPrefix(callee.Sel.Name, "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}
