package lint

import (
	"testing"
)

// loadGraph builds the call graph over the given fixture packages
// through the shared test loader.
func loadGraph(t *testing.T, fixtures ...string) *Graph {
	t.Helper()
	loader := sharedLoader(t)
	patterns := make([]string, len(fixtures))
	for i, fixture := range fixtures {
		patterns[i] = "./internal/lint/testdata/src/" + fixture
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", pkg.Path, terr)
		}
	}
	mod := &Module{Pkgs: pkgs}
	return mod.Graph()
}

func findNode(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("call graph has no node %q", name)
	return nil
}

func hasEdge(n *Node, callee string, kind EdgeKind) bool {
	for _, e := range n.Edges {
		if e.Callee.Name == callee && e.Kind == kind {
			return true
		}
	}
	return false
}

func TestCallGraphResolution(t *testing.T) {
	g := loadGraph(t, "callgraph/a")

	if n := findNode(t, g, "a.Passer"); !hasEdge(n, "a.apply", EdgeStatic) {
		t.Errorf("Passer: missing static edge to apply; edges: %v", edgeNames(n))
	} else if !hasEdge(n, "a.double", EdgePassed) {
		t.Errorf("Passer: missing passed edge to double; edges: %v", edgeNames(n))
	}

	// The parameter call inside apply adds no edges: the pass sites
	// already account for the callback, so context-insensitive merging
	// through shared helpers cannot fabricate chains.
	if n := findNode(t, g, "a.apply"); len(n.Edges) != 0 {
		t.Errorf("apply: parameter call should add no edges, got %v", edgeNames(n))
	}

	ui := findNode(t, g, "a.UseIface")
	if !hasEdge(ui, "(a.Adder).Do", EdgeInterface) || !hasEdge(ui, "(a.Doubler).Do", EdgeInterface) {
		t.Errorf("UseIface: want interface edges to both implementors, got %v", edgeNames(ui))
	}

	if n := findNode(t, g, "a.CallMade"); !hasEdge(n, "a.MakeAdder$1", EdgeDynamic) {
		t.Errorf("CallMade: missing dynamic edge to the returned literal; edges: %v", edgeNames(n))
	}

	if n := findNode(t, g, "a.CallTable"); !hasEdge(n, "a.double", EdgeDynamic) {
		t.Errorf("CallTable: missing signature-fallback edge to double; edges: %v", edgeNames(n))
	}

	if n := findNode(t, g, "a.double"); !n.AddressTaken {
		t.Error("double: escapes via a passed argument and a map element, should be address-taken")
	}
	if n := findNode(t, g, "a.Passer"); n.AddressTaken {
		t.Error("Passer: never escapes, should not be address-taken")
	}
}

// TestCallGraphPackageLevelStores covers hook tables initialized at
// package level: the store lives outside any function body yet calls
// through the field still resolve to the stored function.
func TestCallGraphPackageLevelStores(t *testing.T) {
	g := loadGraph(t, "detreach/core")
	if n := findNode(t, g, "core.Dyn"); !hasEdge(n, "core.jitter", EdgeDynamic) {
		t.Errorf("Dyn: missing dynamic edge through the package-level field store; edges: %v", edgeNames(n))
	}
}

func TestReachChain(t *testing.T) {
	g := loadGraph(t, "detreach/core")
	entry := findNode(t, g, "core.Broken")
	chain := g.ReachChain(entry, func(n *Node) bool { return n.Name == "core.helperB" })
	var names []string
	for _, n := range chain {
		names = append(names, n.Name)
	}
	want := []string{"core.Broken", "core.helperA", "core.helperB"}
	if len(names) != len(want) {
		t.Fatalf("ReachChain: got %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ReachChain: got %v, want %v", names, want)
		}
	}
	if c := g.ReachChain(entry, func(n *Node) bool { return n.Name == "core.Clean" }); c != nil {
		t.Errorf("ReachChain to unreachable node: got %v, want nil", c)
	}
}

// TestGraphDumpDeterministic builds the graph twice and compares the
// dumps byte for byte — the graph itself must honour the determinism
// invariants it helps enforce.
func TestGraphDumpDeterministic(t *testing.T) {
	loader := sharedLoader(t)
	pkgs, err := loader.Load("./internal/lint/testdata/src/callgraph/a", "./internal/lint/testdata/src/detreach/core")
	if err != nil {
		t.Fatal(err)
	}
	a := buildGraph(pkgs).Dump(pkgs[0].Fset)
	b := buildGraph(pkgs).Dump(pkgs[0].Fset)
	if a != b {
		t.Error("two builds of the same graph dumped differently")
	}
	if a == "" {
		t.Error("dump is empty")
	}
}

func edgeNames(n *Node) []string {
	var out []string
	for _, e := range n.Edges {
		out = append(out, string(e.Kind)+":"+e.Callee.Name)
	}
	return out
}
