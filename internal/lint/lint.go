package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //mcs:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Hard, when non-nil, reports whether findings in the given package
	// may NOT be suppressed with //mcs:allow — the deterministic layers
	// must be fixed, not annotated.
	Hard func(pkgPath string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// All returns the full analyzer suite in reporting order: the five
// intraprocedural checks, then the three interprocedural ones that
// ride the shared call graph.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Maporder, Wallclock, Poolonly, Ctxloop, Detreach, Ctxflow, Sharedcapture}
}

// ByName resolves a comma-separated analyzer list against All,
// erroring on unknown names.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(analyzerNames(All()), ", "))
		}
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

// Frame is one step of an interprocedural call chain attached to a
// diagnostic: the function and the position of its declaration (for
// the final frame, the nondeterministic site itself).
type Frame struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// Diagnostic is one finding at a position. Interprocedural findings
// (detreach) carry the full call chain from the entry point to the
// sink so the report is actionable without re-deriving the path.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
	Chain    []Frame        `json:"chain,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Column, d.Message, d.Analyzer)
}

// Module is the shared per-run state: the loaded packages and the
// lazily built call graph. The graph is constructed at most once per
// Run, on first use, and reused by every interprocedural analyzer —
// type-checking and call resolution are never repeated per analyzer.
type Module struct {
	Pkgs  []*Package
	graph *Graph
	facts map[string]interface{}
}

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *Graph {
	if m.graph == nil {
		m.graph = buildGraph(m.Pkgs)
	}
	return m.graph
}

// fact memoizes a module-wide computation under key so analyzers can
// share derived state (sink tables, directive indexes) across the
// per-package pass loop without recomputing it.
func (m *Module) fact(key string, build func() interface{}) interface{} {
	if m.facts == nil {
		m.facts = map[string]interface{}{}
	}
	if v, ok := m.facts[key]; ok {
		return v
	}
	v := build()
	m.facts[key] = v
	return v
}

// Pass carries one analyzer's run over one package. Module gives
// interprocedural analyzers the whole loaded set and the shared call
// graph; diagnostics must still be reported at positions inside Pkg so
// suppression directives resolve in the right file.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Module   *Module
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.ReportChain(pos, nil, format, args...)
}

// ReportChain records a finding at pos carrying a call chain.
func (p *Pass) ReportChain(pos token.Pos, chain []Frame, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Run executes the analyzers over the packages, applies //mcs:allow
// suppression (including directive hygiene findings), and returns the
// surviving diagnostics sorted by file, line, column, analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	mod := &Module{Pkgs: pkgs}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Module: mod, report: func(d Diagnostic) { raw = append(raw, d) }}
			a.Run(pass)
		}
		out = append(out, applySuppression(pkg, raw, analyzers)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// detLayers are the packages whose outputs must be bit-identical for
// any worker count and across replays: everything the differential
// harness, the delta-evaluator, and the service cache-hit contract
// replay. wallclock and detrand findings here cannot be suppressed.
var detLayers = map[string]bool{
	"core": true, "rta": true, "tsched": true, "ttp": true,
	"can": true, "gateway": true, "opt": true, "sa": true,
	"hopa": true, "dse": true, "delta": true, "solve": true,
}

// inDetLayer reports whether the import path names a deterministic
// layer (any path segment matching the layer set, so fixture packages
// under testdata exercise the same rule).
func inDetLayer(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if detLayers[seg] {
			return true
		}
	}
	return false
}

// hasSegments reports whether path contains the given consecutive
// segments (e.g. "internal", "engine").
func hasSegments(pkgPath string, want ...string) bool {
	segs := strings.Split(pkgPath, "/")
	for i := 0; i+len(want) <= len(segs); i++ {
		match := true
		for j, w := range want {
			if segs[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
