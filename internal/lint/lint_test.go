package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// moduleRoot returns the repo root (two levels above this package).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// The fixture tests share one Loader: every package (and the stdlib
// packages the source importer pulls in) is parsed and type-checked
// once for the whole test binary instead of once per test.
var (
	fixtureLoaderOnce sync.Once
	fixtureLoader     *Loader
	fixtureLoaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	root := moduleRoot(t)
	fixtureLoaderOnce.Do(func() {
		fixtureLoader, fixtureLoaderErr = NewLoader(root)
	})
	if fixtureLoaderErr != nil {
		t.Fatal(fixtureLoaderErr)
	}
	return fixtureLoader
}

// want is one expectation parsed from a fixture's "// want" comments.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRe matches the expectation marker; each following quoted or
// backquoted string is a regexp one diagnostic on that line must match.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for fname, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			matches := wantRe.FindAllString(rest, -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: malformed want comment (no quoted regexp)", fname, i+1)
			}
			for _, m := range matches {
				pattern := m
				if strings.HasPrefix(m, `"`) {
					var err error
					if pattern, err = strconv.Unquote(m); err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", fname, i+1, m, err)
					}
				} else {
					pattern = strings.Trim(m, "`")
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", fname, i+1, pattern, err)
				}
				wants = append(wants, &want{file: fname, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// runFixture loads the fixture packages, runs the analyzer over them
// together (interprocedural analyzers see one module-wide call graph),
// and checks the diagnostics against the fixtures' // want
// expectations — every want must be hit, every diagnostic wanted.
func runFixture(t *testing.T, a *Analyzer, fixtures ...string) {
	t.Helper()
	loader := sharedLoader(t)
	patterns := make([]string, len(fixtures))
	for i, fixture := range fixtures {
		patterns[i] = "./internal/lint/testdata/src/" + fixture
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("fixtures %v: got %d packages, want %d", fixtures, len(pkgs), len(fixtures))
	}
	var wants []*want
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", pkg.Path, terr)
		}
		wants = append(wants, parseWants(t, pkg)...)
	}
	for _, d := range Run(pkgs, []*Analyzer{a}) {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestDetrandFixture(t *testing.T)  { runFixture(t, Detrand, "detrand/a") }
func TestMaporderFixture(t *testing.T) { runFixture(t, Maporder, "maporder/a") }
func TestWallclockFixture(t *testing.T) {
	runFixture(t, Wallclock, "wallclock/a")
}
func TestPoolonlyFixture(t *testing.T) { runFixture(t, Poolonly, "poolonly/a") }
func TestCtxloopFixture(t *testing.T)  { runFixture(t, Ctxloop, "ctxloop/a") }
func TestCtxflowFixture(t *testing.T)  { runFixture(t, Ctxflow, "ctxflow/a") }

// The acceptance fixture for the call-graph engine: a hard-layer
// entry point reaching time.Now through two intermediate helpers is
// reported with the complete call chain, alongside the dynamic-call,
// map-range, and transitive-proof cases.
func TestDetreachFixture(t *testing.T) { runFixture(t, Detreach, "detreach/core") }

// Cross-package reachability: a hard-layer entry calling into a soft
// package whose sink carries a local //mcs:allow still fires — the
// sink's annotation does not exempt transitive hard-layer callers.
func TestDetreachCrossPackageSuppressedSink(t *testing.T) {
	runFixture(t, Detreach, "detreach/solve", "detreach/util")
}

func TestSharedcaptureFixture(t *testing.T) {
	runFixture(t, Sharedcapture, "sharedcapture/a", "sharedcapture/internal/engine")
}

// The deterministic layers refuse suppression for the bit-identity
// analyzers: the annotated fixture sites still fire.
func TestDetrandHardInDetLayer(t *testing.T) {
	runFixture(t, Detrand, "detrand/core")
}
func TestWallclockHardInDetLayer(t *testing.T) {
	runFixture(t, Wallclock, "wallclock/solve")
}

// internal/engine (the pool itself) is structurally exempt from
// poolonly: the fixture's bare go statement produces nothing.
func TestPoolonlyEngineExempt(t *testing.T) {
	runFixture(t, Poolonly, "poolonly/internal/engine")
}

// Directive hygiene: missing reasons, unknown analyzers, unused and
// dangling directives are findings in their own right.
func TestDirectiveHygiene(t *testing.T) {
	runFixture(t, Poolonly, "directive/a")
}

func TestByName(t *testing.T) {
	as, err := ByName("detrand, poolonly")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "detrand" || as[1].Name != "poolonly" {
		t.Fatalf("ByName: got %v", analyzerNames(as))
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch): expected error")
	}
}

// TestSuiteNamesUnique guards the directive matcher: every analyzer
// name (and the reserved hygiene name) must be distinct.
func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{"directive": true}
	for _, a := range All() {
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func ExampleDiagnostic() {
	d := Diagnostic{Analyzer: "poolonly", File: "x.go", Line: 3, Column: 2, Message: "bare go statement"}
	fmt.Println(d)
	// Output: x.go:3:2: bare go statement [poolonly]
}
