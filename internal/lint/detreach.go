package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detreach is the transitive determinism proof: from every exported
// entry point of the hard deterministic layers it computes
// reachability over the module call graph to nondeterministic sinks —
// wall-clock reads, global math/rand, process environment reads, and
// unsorted order-sensitive map ranges — and reports the full call
// chain when one is reachable. The intraprocedural analyzers
// (wallclock, detrand, maporder) already flag the sink sites
// themselves; detreach closes the gap they leave open: a hard-layer
// function calling a helper (possibly in a soft layer) that calls
// time.Now passed every per-function check, yet its results depend on
// the clock all the same.
//
// Suppression semantics are deliberately asymmetric. An //mcs:allow
// on a wallclock/detrand/env sink justifies the *local* use ("timing
// is reporting-only here") — it says nothing about callers, so
// detreach ignores it and hard-layer chains to the site still fire;
// such sites must be re-audited when a new chain forms. An //mcs:allow
// maporder, by contrast, is an order-independence proof ("the fold is
// commutative"), which holds for every caller — suppressed map ranges
// are not sinks.
//
// Direct sinks inside an entry point itself (chain length 1) are the
// intraprocedural analyzers' findings and are not re-reported here.
var Detreach = &Analyzer{
	Name: "detreach",
	Doc: "proves hard-layer exported entry points cannot reach nondeterministic sinks " +
		"(wall clock, global math/rand, os.Getenv, unsorted map ranges) through any call chain",
	Hard: inDetLayer,
	Run: func(p *Pass) {
		if !inDetLayer(p.Pkg.Path) {
			return
		}
		graph := p.Module.Graph()
		sinks := moduleSinks(p.Module)
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				obj, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				entry := graph.NodeFor(obj)
				if entry == nil {
					continue
				}
				chain := graph.ReachChain(entry, func(n *Node) bool {
					return n != entry && len(sinks[n]) > 0
				})
				if chain == nil {
					continue
				}
				s := sinks[chain[len(chain)-1]][0]
				frames := make([]Frame, 0, len(chain)+1)
				names := make([]string, 0, len(chain)+1)
				for _, n := range chain {
					pos := p.Pkg.Fset.Position(n.Pos)
					frames = append(frames, Frame{Func: n.Name, File: pos.Filename, Line: pos.Line})
					names = append(names, n.Name)
				}
				spos := p.Pkg.Fset.Position(s.pos)
				frames = append(frames, Frame{Func: s.desc, File: spos.Filename, Line: spos.Line})
				names = append(names, s.desc)
				suffix := ""
				if s.allowed {
					suffix = " (the sink's //mcs:allow justifies only its own package — it does not exempt hard-layer callers)"
				}
				p.ReportChain(fd.Name.Pos(), frames,
					"exported %s reaches nondeterministic %s — call chain: %s%s",
					fd.Name.Name, s.desc, strings.Join(names, " -> "), suffix)
			}
		}
	},
}

// sink is one nondeterministic site inside a function body.
type sink struct {
	desc    string    // "time.Now", "math/rand.Intn", "os.Getenv", "unsorted map range"
	pos     token.Pos // the site
	allowed bool      // an //mcs:allow covered the site locally
}

// moduleSinks computes (once per Run, cached on the Module) the
// nondeterministic sinks directly contained in each graph node's own
// statements.
func moduleSinks(m *Module) map[*Node][]sink {
	return m.fact("detreach.sinks", func() interface{} {
		graph := m.Graph()
		out := map[*Node][]sink{}
		for _, pkg := range m.Pkgs {
			dirs := parseDirectives(pkg)
			allowedAt := func(name string, pos token.Pos) bool {
				position := pkg.Fset.Position(pos)
				for _, d := range dirs {
					if d.analyzer == name && d.reason != "" &&
						d.target == position.Line && d.pos.Filename == position.Filename {
						return true
					}
				}
				return false
			}
			for _, n := range graph.Nodes {
				if n.Pkg != pkg {
					continue
				}
				out[n] = append(out[n], nodeSinks(pkg, n, allowedAt)...)
			}
		}
		return out
	}).(map[*Node][]sink)
}

// nodeSinks scans one node's own statements (not nested literals —
// those are their own nodes) for nondeterministic primitives.
func nodeSinks(pkg *Package, n *Node, allowedAt func(string, token.Pos) bool) []sink {
	var out []sink
	inspectOwn(n.body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SelectorExpr:
			fn, ok := pkg.Info.Uses[node.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockFuncs[fn.Name()] {
					out = append(out, sink{
						desc:    "time." + fn.Name(),
						pos:     node.Pos(),
						allowed: allowedAt("wallclock", node.Pos()),
					})
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					out = append(out, sink{
						desc:    fn.Pkg().Path() + "." + fn.Name(),
						pos:     node.Pos(),
						allowed: allowedAt("detrand", node.Pos()),
					})
				}
			case "os":
				switch fn.Name() {
				case "Getenv", "LookupEnv", "Environ":
					out = append(out, sink{desc: "os." + fn.Name(), pos: node.Pos()})
				}
			}
		case *ast.RangeStmt:
			if !rangesOverMap(pkg, node) {
				return true
			}
			if orderSensitiveSink(pkg, node.Body) == "" {
				return true
			}
			if sortedAfter(pkg, n.body, node.End()) {
				return true
			}
			// A reasoned maporder directive is an order-independence
			// proof — valid for callers too, so not a sink.
			if allowedAt("maporder", node.Pos()) {
				return true
			}
			out = append(out, sink{desc: "unsorted map range", pos: node.Pos()})
		}
		return true
	})
	return out
}
