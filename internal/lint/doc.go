// Package lint is the repo's custom static-analysis pass: a
// dependency-free analyzer framework (go/parser + go/ast + go/types,
// with a module-aware importer so the zero-dependency go.mod stays
// zero-dependency) plus the suite of repo-specific analyzers that
// enforce the determinism and concurrency invariants the dynamic
// harnesses (differential replay, delta fuzzing, race tests) can only
// catch after the fact:
//
//   - detrand: all randomness flows through an injected *rand.Rand;
//     the global math/rand functions are forbidden.
//   - maporder: a range over a map may not feed order-sensitive sinks
//     (append, writers, hashes/encoders) without a deterministic order.
//   - wallclock: no wall-clock reads (time.Now, time.Since, tickers,
//     timers) — in the deterministic layers they are forbidden
//     outright, elsewhere they must carry an //mcs:allow annotation.
//   - poolonly: no bare go statements outside internal/engine — all
//     fan-out rides engine.Pool; legitimate detached goroutines are
//     annotated, never silently exempted.
//   - ctxloop: counter- or condition-driven work loops in exported
//     entry points that take a context must observe the context.
//
// Findings at legitimate sites are suppressed with a directive on the
// offending line or on its own line immediately above:
//
//	//mcs:allow <analyzer> <reason>
//
// The reason is mandatory, unknown analyzer names and directives that
// suppress nothing are themselves findings, and suppression is not
// honoured inside the deterministic layers (core, rta, tsched, ttp,
// can, gateway, opt, sa, hopa, dse, delta, solve) for the analyzers
// that guard bit-identity (detrand, wallclock) — those layers must be
// fixed, not annotated.
//
// The cmd/mcs-lint driver loads packages, runs the suite, and reports
// file:line diagnostics; scripts/lint.sh bundles it with gofmt and go
// vet as the repo's one static gate.
package lint
