// Benchmarks for mcs-lint itself: the suite runs on every precommit
// and CI build, so its wall time is a budget, not an afterthought.
// BenchmarkLintAll is the end-to-end number (load + type-check + all
// analyzers over the whole module); the others isolate the phases so
// a regression points at the guilty one: type-checking dominates, the
// analyzers share one pass over it, and the call graph is built once
// per run and reused by every interprocedural analyzer.
//
// Run with:
//
//	go test -bench Lint -benchtime 1x ./internal/lint/
package lint

import (
	"path/filepath"
	"testing"
)

func benchRoot(b *testing.B) string {
	b.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		b.Fatal(err)
	}
	return root
}

func benchLoad(b *testing.B) []*Package {
	b.Helper()
	loader, err := NewLoader(benchRoot(b))
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		b.Fatal(err)
	}
	return pkgs
}

// BenchmarkLintAll is the full mcs-lint wall time: fresh loader,
// parse + type-check of every module package, all analyzers.
func BenchmarkLintAll(b *testing.B) {
	var pkgs []*Package
	for i := 0; i < b.N; i++ {
		pkgs = benchLoad(b)
		if diags := Run(pkgs, All()); len(diags) != 0 {
			b.Fatalf("self-application not clean: %s", diags[0])
		}
	}
	b.ReportMetric(float64(len(pkgs)), "packages")
}

// BenchmarkLintAnalyze isolates the analyzers on a preloaded module:
// the type-check is shared, so this is what adding an analyzer costs.
func BenchmarkLintAnalyze(b *testing.B) {
	pkgs := benchLoad(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, All()); len(diags) != 0 {
			b.Fatalf("self-application not clean: %s", diags[0])
		}
	}
}

// BenchmarkLintCallGraph isolates call-graph construction, the new
// fixed cost the interprocedural analyzers share.
func BenchmarkLintCallGraph(b *testing.B) {
	pkgs := benchLoad(b)
	b.ResetTimer()
	var nodes int
	for i := 0; i < b.N; i++ {
		nodes = len(buildGraph(pkgs).Nodes)
	}
	b.ReportMetric(float64(nodes), "graph_nodes")
}
