package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow closes the gap ctxloop leaves between stack frames: ctxloop
// proves a context-taking entry point observes its context inside work
// loops, but nothing stopped a function from *receiving* a context and
// then handing a fresh context.Background() (or TODO()) to a
// context-aware callee — severing the cancellation chain one frame
// down, where CLI SIGINT, service job cancel, and drain grace all stop
// propagating. Any function (or literal) with a context in scope that
// passes Background/TODO to a callee parameter of type context.Context
// is flagged; the caller's ctx (or a context derived from it) must
// flow through instead.
//
// Deliberately detached lifetimes — a goroutine that must outlive the
// request, a cleanup path running after cancellation — are the
// legitimate exceptions and carry //mcs:allow ctxflow with the reason.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "functions that receive a context.Context must pass it (not context.Background/TODO) " +
		"to context-aware callees, keeping the cancellation chain unbroken across frames",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkCtxFlow(p, fd.Body, fieldListHasCtx(p.Pkg, fd.Type.Params))
			}
		}
	},
}

// checkCtxFlow walks body; ctxInScope tracks whether any enclosing
// function (decl or literal) received a context parameter. Literals
// re-enter with their own parameter state OR'd in: a closure inside a
// context-taking function still has the caller's ctx in scope.
func checkCtxFlow(p *Pass, body ast.Node, ctxInScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxFlow(p, n.Body, ctxInScope || fieldListHasCtx(p.Pkg, n.Type.Params))
			return false
		case *ast.CallExpr:
			if !ctxInScope {
				return true
			}
			for i, arg := range n.Args {
				name := backgroundOrTODO(p.Pkg, arg)
				if name == "" {
					continue
				}
				if !paramIsContext(p.Pkg, n, i) {
					continue
				}
				p.Reportf(arg.Pos(), "context.%s passed to a context-aware callee while the caller's ctx is in scope — thread the received ctx (or derive from it), or annotate a deliberately detached lifetime with //mcs:allow ctxflow <reason>", name)
			}
		}
		return true
	})
}

// backgroundOrTODO reports whether expr is a direct call to
// context.Background or context.TODO, returning the name.
func backgroundOrTODO(pkg *Package, expr ast.Expr) string {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// paramIsContext reports whether argument index i of the call lands in
// a context.Context parameter of the callee's signature (resolved
// through the type-checker, so it works for methods, function values,
// and generic instantiations alike).
func paramIsContext(pkg *Package, call *ast.CallExpr, i int) bool {
	sig := callSignature(pkg, call)
	if sig == nil {
		return false
	}
	params := sig.Params()
	if params.Len() == 0 {
		return false
	}
	idx := i
	if idx >= params.Len() {
		if !sig.Variadic() {
			return false
		}
		idx = params.Len() - 1
	}
	return isContextType(params.At(idx).Type())
}

// fieldListHasCtx reports whether a parameter list declares a
// context.Context.
func fieldListHasCtx(pkg *Package, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if tv, ok := pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}
