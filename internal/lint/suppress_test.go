package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc builds the minimal Package parseDirectives needs (Fset,
// Files, Src) from one source string; no type-checking.
func parseSrc(src string) (*Package, bool) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		return nil, false
	}
	return &Package{
		Fset:  fset,
		Files: []*ast.File{f},
		Src:   map[string][]byte{"src.go": []byte(src)},
	}, true
}

// renderDirectives gives directives a canonical text form for
// comparisons.
func renderDirectives(dirs []*directive) string {
	var b strings.Builder
	for _, d := range dirs {
		fmt.Fprintf(&b, "%d->%d %q %q\n", d.pos.Line, d.target, d.analyzer, d.reason)
	}
	return b.String()
}

// TestDirectivePlacement pins the placement semantics the suppression
// scanner promises: trailing directives bind to their own line,
// own-line directives to the next code line (stacking, skipping
// comments), a blank line breaks the association, a nested // ends
// the reason.
func TestDirectivePlacement(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "trailing binds to its own line",
			src:  "package p\n\nfunc f() int {\n\treturn 1 //mcs:allow wallclock timing is reporting-only\n}\n",
			want: "4->4 \"wallclock\" \"timing is reporting-only\"\n",
		},
		{
			name: "own-line binds to the next code line",
			src:  "package p\n\nfunc f() int {\n\t//mcs:allow detrand seeded upstream\n\treturn 1\n}\n",
			want: "4->5 \"detrand\" \"seeded upstream\"\n",
		},
		{
			name: "stacked own-line directives share one target",
			src:  "package p\n\nfunc f() int {\n\t//mcs:allow detrand seeded upstream\n\t//mcs:allow wallclock reporting only\n\treturn 1\n}\n",
			want: "4->6 \"detrand\" \"seeded upstream\"\n5->6 \"wallclock\" \"reporting only\"\n",
		},
		{
			name: "comment lines are skipped on the way down",
			src:  "package p\n\nfunc f() int {\n\t//mcs:allow detrand seeded upstream\n\t// explaining comment\n\treturn 1\n}\n",
			want: "4->6 \"detrand\" \"seeded upstream\"\n",
		},
		{
			name: "blank line leaves the directive dangling",
			src:  "package p\n\nfunc f() int {\n\t//mcs:allow detrand seeded upstream\n\n\treturn 1\n}\n",
			want: "4->0 \"detrand\" \"seeded upstream\"\n",
		},
		{
			name: "nested comment ends the reason",
			src:  "package p\n\nfunc f() int {\n\treturn 1 //mcs:allow wallclock reason here // want `x`\n}\n",
			want: "4->4 \"wallclock\" \"reason here\"\n",
		},
		{
			name: "missing reason is parsed with an empty reason",
			src:  "package p\n\nfunc f() int {\n\treturn 1 //mcs:allow wallclock\n}\n",
			want: "4->4 \"wallclock\" \"\"\n",
		},
		{
			name: "bare directive has no analyzer",
			src:  "package p\n\nfunc f() int {\n\treturn 1 //mcs:allow\n}\n",
			want: "4->4 \"\" \"\"\n",
		},
		{
			name: "directive at end of file dangles",
			src:  "package p\n\nfunc f() int {\n\treturn 1\n}\n\n//mcs:allow detrand trailing nothing\n",
			want: "7->0 \"detrand\" \"trailing nothing\"\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg, ok := parseSrc(tc.src)
			if !ok {
				t.Fatal("fixture source does not parse")
			}
			if got := renderDirectives(parseDirectives(pkg)); got != tc.want {
				t.Errorf("got:\n%swant:\n%s", got, tc.want)
			}
		})
	}
}

// FuzzDirectiveParse drives the directive scanner with arbitrary
// source and checks the invariants every analyzer relies on: the scan
// never panics, is deterministic, directive positions land inside the
// file, analyzer names carry no whitespace, and a resolved target is
// a code line at or below the directive.
func FuzzDirectiveParse(f *testing.F) {
	f.Add("package p\n\nfunc f() int {\n\treturn 1 //mcs:allow wallclock reason\n}\n")
	f.Add("package p\n\nfunc f() int {\n\t//mcs:allow detrand a b c\n\treturn 1\n}\n")
	f.Add("package p\n\nvar x = 1 //mcs:allow\n")
	f.Add("package p\n//mcs:allow maporder proof // trailing\nvar x = 1\n")
	f.Add("package p\n\n//mcs:allow poolonly reason\n\nvar x = 1\n")
	f.Add("package p\nvar x = \"//mcs:allow inside a string\"\n")
	f.Fuzz(func(t *testing.T, src string) {
		pkg, ok := parseSrc(src)
		if !ok {
			t.Skip("does not parse")
		}
		dirs := parseDirectives(pkg)
		if again := renderDirectives(parseDirectives(pkg)); again != renderDirectives(dirs) {
			t.Fatalf("two scans disagree:\n%s---\n%s", renderDirectives(dirs), again)
		}
		lines := strings.Split(src, "\n")
		isCode := func(line int) bool {
			if line < 1 || line > len(lines) {
				return false
			}
			text := lines[line-1]
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			return strings.TrimSpace(text) != ""
		}
		for _, d := range dirs {
			if d.pos.Line < 1 || d.pos.Line > len(lines) {
				t.Fatalf("directive position line %d outside file of %d lines", d.pos.Line, len(lines))
			}
			if strings.ContainsAny(d.analyzer, " \t\n") {
				t.Errorf("analyzer name %q contains whitespace", d.analyzer)
			}
			if d.target == 0 {
				continue
			}
			if d.target < d.pos.Line {
				t.Errorf("target line %d above directive line %d", d.target, d.pos.Line)
			}
			if !isCode(d.target) {
				t.Errorf("target line %d is not a code line", d.target)
			}
		}
	})
}
