// Package a exercises the directive hygiene checks: missing reasons,
// unknown analyzer names, stale (unused) directives, and dangling
// directives are all findings themselves.
package a

func MissingReason(f func()) {
	//mcs:allow poolonly // want `needs a reason`
	go f() // want `bare go statement`
}

func UnknownAnalyzer(f func()) {
	//mcs:allow gofancy because reasons // want `unknown analyzer "gofancy"`
	go f() // want `bare go statement`
}

//mcs:allow poolonly stale annotation left behind by a refactor // want `unused mcs:allow poolonly`
func Clean() {}

//mcs:allow poolonly nothing follows before the blank line // want `dangling mcs:allow poolonly`

func AlsoClean() {}
