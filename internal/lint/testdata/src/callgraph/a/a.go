// Package a exercises the call-graph resolution rules one by one:
// static calls, CHA interface dispatch, passed-callback edges (and
// the matching no-edge rule for parameter calls), store tracking
// through variables and returns, and the address-taken signature
// fallback. The graph tests assert the exact edges.
package a

// Doer has two implementors; an interface call links to both.
type Doer interface{ Do(int) int }

type Adder struct{}

func (Adder) Do(n int) int { return n + 1 }

type Doubler struct{}

func (Doubler) Do(n int) int { return n * 2 }

func UseIface(d Doer) int { return d.Do(3) }

// apply calls through its parameter: the pass site owns that edge, so
// apply itself has none.
func apply(f func(int) int, n int) int { return f(n) }

func double(n int) int { return n * 2 }

// Passer links statically to apply and via a passed edge to double.
func Passer(n int) int { return apply(double, n) }

// MakeAdder returns a literal; a call through the stored result links
// to it.
func MakeAdder(k int) func(int) int {
	return func(n int) int { return n + k }
}

func CallMade(n int) int {
	f := MakeAdder(1)
	return f(n)
}

// table's element escapes without a trackable store target: calls
// through it fall back to signature matching over address-taken funcs.
var table = map[string]func(int) int{"d": double}

func CallTable(n int) int { return table["d"](n) }
