// Package a exercises the maporder analyzer: map ranges feeding
// order-sensitive sinks fire unless the result is sorted afterwards,
// the loop is commutative, or the site carries a proof annotation.
package a

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

func Collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map feeds append`
		keys = append(keys, k)
	}
	return keys
}

func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // collect-then-sort is the idiomatic fix
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func CollectHelperSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // a local sort helper after the loop also counts
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

func PrintAll(w fmt.Stringer, m map[string]int) {
	for k, v := range m { // want `order-sensitive call \(Println\)`
		fmt.Println(k, v)
	}
}

func Aggregate(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative reduction: no sink, no finding
		total += v
	}
	return total
}

func Sends(m map[string]int, out chan<- int) {
	for _, v := range m { // want `range over map feeds a channel send`
		out <- v
	}
}

func Suppressed(m map[string]int, out chan<- int) {
	//mcs:allow maporder receiver folds values commutatively, order cannot matter
	for _, v := range m {
		out <- v
	}
}

func SortedKeysIter(m map[string]int) []string {
	var out []string
	for _, k := range slices.Sorted(maps.Keys(m)) { // sorted-keys iterator idiom: no directive needed
		out = append(out, k)
	}
	return out
}

func KeysIter(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want `range over map feeds append`
		out = append(out, k)
	}
	return out
}

func ValuesIter(m map[string]int, sink chan<- int) {
	for v := range maps.Values(m) { // want `range over map feeds a channel send`
		sink <- v
	}
}

func AllIterSortedAfter(m map[string]int) []string {
	var out []string
	for k := range maps.All(m) { // collect-then-sort still lets the iterator off
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func CollectedCopy(m map[string]int) []string {
	var out []string
	for k := range maps.Collect(maps.All(m)) { // want `range over map feeds append`
		out = append(out, k)
	}
	return out
}
