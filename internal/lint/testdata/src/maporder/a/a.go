// Package a exercises the maporder analyzer: map ranges feeding
// order-sensitive sinks fire unless the result is sorted afterwards,
// the loop is commutative, or the site carries a proof annotation.
package a

import (
	"fmt"
	"sort"
)

func Collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map feeds append`
		keys = append(keys, k)
	}
	return keys
}

func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // collect-then-sort is the idiomatic fix
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func CollectHelperSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // a local sort helper after the loop also counts
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

func PrintAll(w fmt.Stringer, m map[string]int) {
	for k, v := range m { // want `order-sensitive call \(Println\)`
		fmt.Println(k, v)
	}
}

func Aggregate(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative reduction: no sink, no finding
		total += v
	}
	return total
}

func Sends(m map[string]int, out chan<- int) {
	for _, v := range m { // want `range over map feeds a channel send`
		out <- v
	}
}

func Suppressed(m map[string]int, out chan<- int) {
	//mcs:allow maporder receiver folds values commutatively, order cannot matter
	for _, v := range m {
		out <- v
	}
}
