// Package a exercises the sharedcapture analyzer: closures handed to
// engine.Pool batches (or launched as goroutines) must not write
// shared captured state; index-disjoint slots, mutex guards, and
// proven order-independent writes are the sanctioned escapes.
package a

import (
	"context"
	"sync"

	"repro/internal/lint/testdata/src/sharedcapture/internal/engine"
)

func SharedWrite(ctx context.Context, pool *engine.Pool) (int, error) {
	total := 0
	_, err := pool.Map(ctx, 8, func(ctx context.Context, i int) (int, error) {
		total += i // want `pool-batch closure writes captured "total" declared outside it`
		return total, nil
	})
	return total, err
}

func Disjoint(ctx context.Context, pool *engine.Pool) ([]int, error) {
	out := make([]int, 8)
	_, err := pool.Map(ctx, 8, func(ctx context.Context, i int) (int, error) {
		out[i] = i * i // index-disjoint slot: the sanctioned idiom
		return out[i], nil
	})
	return out, err
}

func JobsSlice(ctx context.Context, pool *engine.Pool, costs []int) (int, error) {
	best := 0
	var jobs []func(context.Context) error
	for _, c := range costs {
		jobs = append(jobs, func(ctx context.Context) error {
			if c > best {
				best = c // want `pool-batch closure writes captured "best" declared outside it`
			}
			return nil
		})
	}
	return best, pool.Sweep(ctx, jobs)
}

func Guarded(ctx context.Context, pool *engine.Pool) (int, error) {
	var mu sync.Mutex
	total := 0
	_, err := pool.Map(ctx, 8, func(ctx context.Context, i int) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		total += i // serialized by the mutex: deliberate shared state
		return total, nil
	})
	return total, err
}

func WritePair() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 1 // want `goroutine writes captured "n" which the enclosing function also writes`
		close(done)
	}()
	n = 2
	<-done
	return n
}

func Solo() {
	ready := false
	done := make(chan struct{})
	go func() {
		ready = true // only the goroutine writes it: no concurrent pair
		close(done)
	}()
	<-done
	_ = ready
}

func SharedIndex(ctx context.Context, pool *engine.Pool) ([]int, error) {
	var i int
	out := make([]int, 4)
	var jobs []func(context.Context) error
	for i = 0; i < 4; i++ {
		jobs = append(jobs, func(ctx context.Context) error { // want `pool-batch closure captures loop variable "i" declared outside its loop`
			out[i] = i
			return nil
		})
	}
	return out, pool.Sweep(ctx, jobs)
}

func PerIteration(ctx context.Context, pool *engine.Pool) ([]int, error) {
	out := make([]int, 4)
	var jobs []func(context.Context) error
	for i := 0; i < 4; i++ {
		// The loop header declares i: per-iteration copies since Go 1.22.
		jobs = append(jobs, func(ctx context.Context) error {
			out[i] = i
			return nil
		})
	}
	return out, pool.Sweep(ctx, jobs)
}

func Proven(ctx context.Context, pool *engine.Pool) (bool, error) {
	hit := false
	_, err := pool.Map(ctx, 8, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			//mcs:allow sharedcapture monotonic flag: every write stores true, order cannot matter
			hit = true
		}
		return 0, nil
	})
	return hit, err
}
