// Package engine is a miniature stand-in for the repo's worker pool:
// its import path ends in internal/engine, which is how sharedcapture
// recognizes batch-submission call sites. The fixture implementations
// run sequentially — only the signatures matter to the analyzer.
package engine

import "context"

// Pool is the fixture batch executor.
type Pool struct{ workers int }

// New returns a fixture pool.
func New(workers int) *Pool { return &Pool{workers: workers} }

// Map applies fn to every index in [0, n).
func (p *Pool) Map(ctx context.Context, n int, fn func(context.Context, int) (int, error)) ([]int, error) {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		v, err := fn(ctx, i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Sweep runs every job.
func (p *Pool) Sweep(ctx context.Context, jobs []func(context.Context) error) error {
	for _, job := range jobs {
		if err := job(ctx); err != nil {
			return err
		}
	}
	return nil
}
