// Package a exercises the detrand analyzer: global math/rand use
// fires, injected *rand.Rand use and the explicit-seed constructors do
// not, and //mcs:allow suppresses outside the deterministic layers.
package a

import (
	"math/rand"
	v2 "math/rand/v2"
)

func Global() int {
	return rand.Intn(10) // want `global math/rand.Intn uses the shared auto-seeded source`
}

func GlobalV2() int {
	return v2.IntN(10) // want `global math/rand/v2.IntN uses the shared auto-seeded source`
}

func Injected(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors build the sanctioned injected source
	return r.Intn(10)
}

func Suppressed() float64 {
	//mcs:allow detrand demo jitter for a backoff example, never reaches analysis results
	return rand.Float64()
}
