// Package core simulates a deterministic layer (its path ends in a
// layer segment): detrand findings here cannot be suppressed.
package core

import "math/rand"

func Bad() int {
	//mcs:allow detrand trying to annotate instead of fixing
	return rand.Intn(3) // want `not honoured in deterministic layers`
}
