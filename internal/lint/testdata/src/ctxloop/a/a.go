// Package a exercises the ctxloop analyzer: counter-driven work loops
// in exported context-taking functions must observe a context; range
// loops, builtin-only collection loops, unexported helpers, and
// annotated sites are exempt.
package a

import "context"

func work() {}

func Search(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want `work loop in exported Search never observes the context`
		work()
	}
}

func Checked(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		work()
	}
	return nil
}

func Delegated(ctx context.Context, n int, eval func(context.Context) error) error {
	for i := 0; i < n; i++ { // passing ctx to the work counts as observing it
		if err := eval(ctx); err != nil {
			return err
		}
	}
	return nil
}

func Ranged(ctx context.Context, xs []int) {
	for range xs { // range loops are exempt: trip count is materialized
		work()
	}
}

func Collect(ctx context.Context, n int) []int {
	var out []int
	for i := 0; i < n; i++ { // builtin-only loops are exempt
		out = append(out, i)
	}
	return out
}

func helper(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // unexported: not an entry point
		work()
	}
}

func Allowed(ctx context.Context, n int) {
	//mcs:allow ctxloop cheap in-memory setup, the caller's next ctx check is microseconds away
	for i := 0; i < n; i++ {
		work()
	}
}
