// Package a exercises the ctxflow analyzer: a function that receives
// a context.Context and calls a ctx-accepting callee must thread its
// own ctx through, not mint a fresh root with context.Background() or
// context.TODO().
package a

import "context"

func work(ctx context.Context, n int) int { return n }

func workVariadic(ctx context.Context, ns ...int) int { return len(ns) }

func Broken(ctx context.Context) int {
	return work(context.Background(), 1) // want `context.Background passed to a context-aware callee while the caller's ctx is in scope`
}

func BrokenTODO(ctx context.Context) int {
	return work(context.TODO(), 2) // want `context.TODO passed to a context-aware callee while the caller's ctx is in scope`
}

func Fine(ctx context.Context) int {
	return work(ctx, 3)
}

func Derived(ctx context.Context) int {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(sub, 4)
}

func Root() int {
	// No ctx in scope: a root context is the only option here.
	return work(context.Background(), 5)
}

func Closure(ctx context.Context) func() int {
	return func() int {
		return work(context.Background(), 6) // want `context.Background passed to a context-aware callee while the caller's ctx is in scope`
	}
}

func OwnCtx(ctx context.Context) func(context.Context) int {
	return func(inner context.Context) int {
		return work(inner, 7)
	}
}

func Variadic(ctx context.Context) int {
	return workVariadic(context.Background(), 1, 2, 3) // want `context.Background passed to a context-aware callee while the caller's ctx is in scope`
}

func Detached(ctx context.Context) int {
	//mcs:allow ctxflow audit trail must survive caller cancellation
	return work(context.Background(), 8)
}
