// Package solve is the hard-layer half of the cross-package detreach
// fixture: its entry point reaches util's annotated wall-clock read,
// and the sink's local //mcs:allow does not shield the caller.
package solve

import "repro/internal/lint/testdata/src/detreach/util"

// Timestamped crosses a package boundary into an annotated sink.
func Timestamped() int64 { // want `exported Timestamped reaches nondeterministic time.Now — call chain: solve.Timestamped -> util.Stamp -> time.Now \(the sink's //mcs:allow justifies only its own package — it does not exempt hard-layer callers\)`
	return util.Stamp()
}
