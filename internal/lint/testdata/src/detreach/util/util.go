// Package util is the soft-layer half of the cross-package detreach
// fixture: its wall-clock read is annotated for local use, which does
// not exempt hard-layer callers.
package util

import "time"

// Stamp is a reporting-only timestamp for this package's own use.
func Stamp() int64 {
	return time.Now().UnixNano() //mcs:allow wallclock reporting-only timestamp for log lines
}
