// Package core is a detreach fixture: a hard deterministic layer (the
// path contains the "core" segment) whose exported entry points must
// not reach nondeterministic sinks through any call chain. Direct
// sinks are the intraprocedural analyzers' findings and are not
// re-reported here.
package core

import (
	"math/rand"
	"time"
)

// Broken reaches time.Now through two intermediate helpers — the
// chain the per-function analyzers cannot see.
func Broken() time.Duration { // want `exported Broken reaches nondeterministic time.Now — call chain: core.Broken -> core.helperA -> core.helperB -> time.Now`
	return helperA()
}

func helperA() time.Duration { return helperB() }

func helperB() time.Duration {
	t := time.Now()
	return time.Since(t)
}

type hooks struct{ eval func(int) int }

var defaultHooks = hooks{eval: jitter}

func jitter(n int) int { return n + rand.Intn(3) }

// Dyn reaches the global math/rand through a function value stored in
// a struct field — resolved by the store-tracking rules.
func Dyn(n int) int { // want `exported Dyn reaches nondeterministic math/rand.Intn — call chain: core.Dyn -> core.jitter -> math/rand.Intn`
	return defaultHooks.eval(n)
}

// Collect reaches an unsorted order-sensitive map range one frame
// down.
func Collect(m map[string]int) []int { // want `exported Collect reaches nondeterministic unsorted map range — call chain: core.Collect -> core.flatten -> unsorted map range`
	return flatten(m)
}

func flatten(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Direct is chain length 1: wallclock owns that finding, detreach
// stays quiet.
func Direct() int64 {
	return time.Now().UnixNano()
}

// proven carries an order-independence proof, which holds for callers
// too — the suppressed map range is not a sink.
func proven(m map[string]int) []int {
	var out []int
	//mcs:allow maporder fixture proof: the collected values feed a commutative fold
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// ProvenCaller stays clean because proven's proof is transitive.
func ProvenCaller(m map[string]int) []int {
	return proven(m)
}

// Clean never reaches a sink.
func Clean(n int) int {
	return helperClean(n) * 2
}

func helperClean(n int) int { return n + 1 }
