// Package a exercises the poolonly analyzer: bare go statements fire
// unless annotated with a reason.
package a

func Spawn(f func()) {
	go f() // want `bare go statement`
}

func Allowed(f func()) {
	//mcs:allow poolonly process-lifetime listener, not per-item fan-out
	go f()
}
