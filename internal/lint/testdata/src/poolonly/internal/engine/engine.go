// Package engine simulates the repo's internal/engine (its path
// contains internal/engine): the pool implementation itself is
// structurally exempt from poolonly.
package engine

func Spawn(f func()) {
	go f()
}
