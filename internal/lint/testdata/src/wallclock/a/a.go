// Package a exercises the wallclock analyzer outside the deterministic
// layers: wall-clock reads fire but may carry an annotation; pure
// Duration/Time value arithmetic never fires.
package a

import "time"

func Measure() time.Duration {
	t0 := time.Now()      // want `wall-clock call time.Now`
	return time.Since(t0) // want `wall-clock call time.Since`
}

func Ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want `wall-clock call time.NewTicker`
}

func Allowed() time.Time {
	//mcs:allow wallclock report timestamping only, the value never feeds a result
	return time.Now()
}

func Pure(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
