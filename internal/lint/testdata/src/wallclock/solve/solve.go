// Package solve simulates a deterministic layer (its path ends in a
// layer segment): wallclock findings here cannot be suppressed.
package solve

import "time"

func Bad() time.Time {
	return time.Now() // want `deterministic layer .* bit-identical replay`
}

func StillBad() time.Time {
	//mcs:allow wallclock trying to annotate instead of threading timing in
	return time.Now() // want `not honoured in deterministic layers`
}
