package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the time-package entry points that read the wall
// clock or schedule on it. Any of them inside an analysis makes results
// depend on machine speed and scheduling, which breaks the replay and
// cache-hit-equals-cold-run contracts.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"After": true, "AfterFunc": true, "Sleep": true,
}

// Wallclock forbids wall-clock reads. In the deterministic layers the
// finding cannot be suppressed — timing must be threaded in by the
// caller; elsewhere (reporting, servers, CLIs) legitimate sites carry
// an //mcs:allow wallclock annotation stating why timing never feeds
// results.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbids wall-clock reads (time.Now, time.Since, tickers, timers); hard in the " +
		"deterministic layers, annotation-gated everywhere else",
	Hard: inDetLayer,
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // Duration/Time methods are pure value arithmetic
				}
				if !wallclockFuncs[fn.Name()] {
					return true
				}
				if inDetLayer(p.Pkg.Path) {
					p.Reportf(sel.Pos(), "time.%s in deterministic layer %s — wall-clock reads break bit-identical replay; thread timing in from the caller", fn.Name(), p.Pkg.Path)
				} else {
					p.Reportf(sel.Pos(), "wall-clock call time.%s — keep timing confined to reporting and annotate with //mcs:allow wallclock <reason>", fn.Name())
				}
				return true
			})
		}
	},
}
