package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/opt").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the package's non-test files, in file-name order.
	Files []*ast.File
	// Src maps absolute file names to their raw bytes (used by the
	// suppression scanner to classify directive placement).
	Src map[string][]byte
	// Types and Info carry the go/types results. Info lookups are
	// best-effort: analyzers must tolerate missing entries when
	// TypeErrors is non-empty.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check problems (empty on a healthy tree).
	TypeErrors []error
}

// Loader loads module-local packages with the standard library's
// go/parser + go/types only. Module-local import paths resolve against
// the module root; everything else (the standard library) goes through
// the source importer, so no compiled export data or external tooling
// is needed.
type Loader struct {
	// Root is the module root (the directory holding go.mod).
	Root string
	// ModPath is the module path from go.mod.
	ModPath string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a Loader for the module rooted at root, reading the
// module path from its go.mod.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: not a module root: %w", err)
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:    root,
		ModPath: modpath,
		fset:    fset,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Load resolves the patterns (relative to the module root: "./...",
// "./dir/...", or a single directory) and returns the matched packages
// in import-path order. Pattern walks skip testdata, hidden, and
// underscore-prefixed directories; explicitly named directories are
// loaded even under testdata, which is how the fixture tests load
// packages full of deliberate violations.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			sub, err := l.walk(l.Root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.Root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			sub, err := l.walk(base)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
		default:
			add(filepath.Join(l.Root, filepath.FromSlash(pat)))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walk returns every directory under base containing at least one
// non-test .go file, skipping testdata, hidden, and "_"-prefixed
// directories.
func (l *Loader) walk(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// goFiles lists the non-test .go files of dir in name order.
func goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// pathFor maps an absolute package directory to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir loads (or returns the memoized) package in dir. A directory
// with no non-test .go files yields (nil, nil).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil
	}
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Src:  map[string][]byte{},
	}
	for _, n := range names {
		fn := filepath.Join(dir, n)
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, fn, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", fn, err)
		}
		pkg.Src[fn] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns an error on the first problem but keeps going via
	// the Error hook; the (possibly incomplete) package is still usable
	// for syntax-level checks.
	tpkg, _ := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader as the types.Importer its own
// type-checking runs use: module-local paths re-enter loadDir,
// everything else falls through to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
