package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand entry points that build an
// explicitly seeded source — the only sanctioned way randomness enters
// the system. Everything else at package level (Intn, Float64, Perm,
// Shuffle, Seed, the v2 top-level helpers, ...) draws from the global
// auto-seeded source and is forbidden.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 explicit-seed constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Detrand enforces the centralized-seed invariant: all randomness must
// flow through an injected *rand.Rand built from an explicit seed.
// The global math/rand functions share an auto-seeded process-wide
// source, so two runs (or two worker counts interleaving differently)
// diverge — exactly what the replay and differential harnesses forbid.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbids the global math/rand functions (auto-seeded, process-wide state); " +
		"randomness must flow through an injected *rand.Rand built via rand.New(rand.NewSource(seed))",
	Hard: inDetLayer,
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on an injected *rand.Rand are the sanctioned path
				}
				if randConstructors[fn.Name()] {
					return true
				}
				p.Reportf(sel.Pos(), "global %s.%s uses the shared auto-seeded source — inject a *rand.Rand seeded from the centralized seed instead", path, fn.Name())
				return true
			})
		}
	},
}
