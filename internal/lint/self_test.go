package lint

import "testing"

// TestSelfApplication is the acceptance gate: the full analyzer suite
// over the whole repo must be clean — every legitimate site annotated
// with a reasoned //mcs:allow, everything else fixed. This is the same
// run scripts/lint.sh and the CI lint job perform via cmd/mcs-lint.
func TestSelfApplication(t *testing.T) {
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("finding: %s", d)
	}
}
