package hopa

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/ttp"
)

// fig4 rebuilds the paper's Figure 4 system (see internal/core tests).
func fig4(t *testing.T) (*model.Application, *model.Architecture, ttp.Round) {
	t.Helper()
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 5,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("fig4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	for _, e := range []model.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	// The favourable slot order of panel (d): S_1 before S_G.
	round := ttp.Round{Slots: []ttp.Slot{
		{Node: n1, Length: 20}, {Node: arch.Gateway, Length: 20},
	}}
	return app, arch, round
}

// TestAssignFindsSchedulableFig4 checks that HOPA discovers the
// schedulable priority order on the panel-(d) bus configuration: P2 must
// end up with higher priority than P3 (the paper's Fig. 4c insight).
func TestAssignFindsSchedulableFig4(t *testing.T) {
	app, arch, round := fig4(t)
	res, err := Assign(app, arch, round, 0)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if !res.Schedulable {
		t.Fatalf("HOPA did not find a schedulable assignment: delta=%d", res.Delta)
	}
	p2, p3 := model.ProcID(1), model.ProcID(2)
	if res.ProcPriority[p2] >= res.ProcPriority[p3] {
		t.Errorf("priority(P2)=%d must beat priority(P3)=%d", res.ProcPriority[p2], res.ProcPriority[p3])
	}
	// m3 closes the critical chain P1->P2->m3->P4: it must outrank m2,
	// which only feeds the short P3 branch.
	if res.MsgPriority[2] >= res.MsgPriority[1] {
		t.Errorf("priority(m3)=%d should beat priority(m2)=%d", res.MsgPriority[2], res.MsgPriority[1])
	}
	if res.Evaluations < 1 {
		t.Error("no analyses performed")
	}
}

// TestAssignProducesValidConfig: the returned priorities always form a
// valid configuration (unique per resource, complete).
func TestAssignProducesValidConfig(t *testing.T) {
	app, arch, round := fig4(t)
	res, err := Assign(app, arch, round, 2)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	cfg := &core.Config{Round: round, ProcPriority: res.ProcPriority, MsgPriority: res.MsgPriority}
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if err := cfg.Validate(app, arch); err != nil {
		t.Fatalf("HOPA produced an invalid configuration: %v", err)
	}
}

// TestAssignBeatsCreationOrder compares HOPA's delta with the naive
// creation-order priorities of DefaultConfig on Figure 4: HOPA must not
// be worse.
func TestAssignBeatsCreationOrder(t *testing.T) {
	app, arch, round := fig4(t)
	res, err := Assign(app, arch, round, 0)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	naive := core.DefaultConfig(app, arch)
	naive.Round = round.Clone()
	if err := naive.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	na, err := core.Analyze(app, arch, naive)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.Delta > na.Delta {
		t.Errorf("HOPA delta %d worse than creation order %d", res.Delta, na.Delta)
	}
}

// TestInitialLocalDeadlines: the backward pass orders the deadline of a
// chain head strictly before the chain tail.
func TestInitialLocalDeadlines(t *testing.T) {
	app, arch, round := fig4(t)
	ld, err := initialLocalDeadlines(app, arch, round)
	if err != nil {
		t.Fatalf("initialLocalDeadlines: %v", err)
	}
	p1 := ld[activityKey{proc: 0, isProc: true}]
	p2 := ld[activityKey{proc: 1, isProc: true}]
	p4 := ld[activityKey{proc: 3, isProc: true}]
	if !(p1 < p2 && p2 < p4) {
		t.Errorf("chain deadlines not ordered: P1=%d P2=%d P4=%d", p1, p2, p4)
	}
	if p4 != 200 {
		t.Errorf("sink local deadline = %d, want the graph deadline 200", p4)
	}
	for k, v := range ld {
		if v < 1 {
			t.Errorf("activity %+v has non-positive local deadline %d", k, v)
		}
	}
}
