// Package hopa implements the "heuristic optimized priority assignment"
// of Gutiérrez García and González Harbour (reference [7] of the paper),
// which OptimizeSchedule uses to pick the ET process and CAN message
// priorities for a candidate bus configuration.
//
// The approach follows HOPA's structure: distribute each graph's
// end-to-end deadline over the activities along its paths as local
// deadlines (an ALAP backward pass weighted by execution and
// communication costs), assign priorities deadline-monotonically per
// resource (per ET CPU and over the CAN bus), then iteratively
// redistribute the local deadlines guided by the worst-case completions
// observed in the full multi-cluster analysis, keeping the assignment
// with the best degree of schedulability.
package hopa

import (
	"sort"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/ttp"
)

// Result is the best priority assignment found.
type Result struct {
	ProcPriority map[model.ProcID]int
	MsgPriority  map[model.EdgeID]int
	// Delta is the degree of schedulability achieved with the returned
	// priorities (smaller is better, negative = schedulable).
	Delta model.Time
	// Schedulable mirrors the analysis verdict for the best assignment.
	Schedulable bool
	// Evaluations counts the multi-cluster analyses performed.
	Evaluations int
}

// DefaultIterations is the number of redistribution rounds when the
// caller passes 0.
const DefaultIterations = 4

// Assign computes priorities for the given TDMA round. The round is not
// modified; it only parameterizes the analysis. iterations <= 0 selects
// DefaultIterations.
func Assign(app *model.Application, arch *model.Architecture, round ttp.Round, iterations int) (*Result, error) {
	return AssignWith(app, arch, round, iterations, nil)
}

// AssignWith is Assign through an explicit analysis function (nil falls
// back to core.Analyze). Sessions route the redistribution loop's
// analyses through their incremental evaluator this way; Evaluations
// still counts every analysis the loop requests, whether or not the
// evaluator served it from cache, so reports stay comparable.
func AssignWith(app *model.Application, arch *model.Architecture, round ttp.Round, iterations int,
	eval func(*core.Config) (*core.Analysis, error)) (*Result, error) {
	if iterations <= 0 {
		iterations = DefaultIterations
	}
	if eval == nil {
		eval = func(cfg *core.Config) (*core.Analysis, error) {
			return core.Analyze(app, arch, cfg)
		}
	}
	ld, err := initialLocalDeadlines(app, arch, round)
	if err != nil {
		return nil, err
	}
	best := &Result{}
	for it := 0; it < iterations; it++ {
		procPrio, msgPrio := deadlineMonotonic(app, arch, ld)
		cfg := &core.Config{Round: round.Clone(), ProcPriority: procPrio, MsgPriority: msgPrio}
		if err := cfg.Normalize(app); err != nil {
			return nil, err
		}
		a, err := eval(cfg)
		if err != nil {
			return nil, err
		}
		best.Evaluations++
		if best.ProcPriority == nil || a.Delta < best.Delta {
			best.ProcPriority = procPrio
			best.MsgPriority = msgPrio
			best.Delta = a.Delta
			best.Schedulable = a.Schedulable
		}
		if it < iterations-1 {
			redistribute(app, arch, a, ld)
		}
	}
	return best, nil
}

// activityKey addresses both kinds of prioritized activities.
type activityKey struct {
	proc   model.ProcID // valid when isProc
	edge   model.EdgeID
	isProc bool
}

// initialLocalDeadlines runs the ALAP backward pass: the local deadline
// of an activity is the latest completion that still lets every
// downstream path meet the graph deadline, using WCETs and rough
// communication latencies (CAN frame time; one TDMA round per TTP leg;
// both plus the gateway cost for inter-cluster routes).
func initialLocalDeadlines(app *model.Application, arch *model.Architecture, round ttp.Round) (map[activityKey]model.Time, error) {
	ld := make(map[activityKey]model.Time)
	commCost := func(e model.EdgeID) model.Time {
		switch app.RouteOf(e, arch) {
		case model.RouteLocal:
			return 0
		case model.RouteTTP:
			return round.Period()
		case model.RouteCAN:
			return can.TimeOf(&app.Edges[e], arch.CAN)
		case model.RouteTTtoET:
			return round.Period() + arch.GatewayCost + can.TimeOf(&app.Edges[e], arch.CAN)
		default: // RouteETtoTT
			return can.TimeOf(&app.Edges[e], arch.CAN) + arch.GatewayCost + round.Period()
		}
	}
	for g := range app.Graphs {
		order, err := app.TopoOrder(g)
		if err != nil {
			return nil, err
		}
		d := app.Graphs[g].Deadline
		procLD := make(map[model.ProcID]model.Time)
		for i := len(order) - 1; i >= 0; i-- {
			p := order[i]
			pd := d
			for _, e := range app.OutEdges(p) {
				dst := app.Edges[e].Dst
				edgeLD := procLD[dst] - app.Procs[dst].WCET
				if edgeLD < 1 {
					edgeLD = 1
				}
				ld[activityKey{edge: e, isProc: false}] = edgeLD
				if t := edgeLD - commCost(e); t < pd {
					pd = t
				}
			}
			if pd < 1 {
				pd = 1
			}
			procLD[p] = pd
			ld[activityKey{proc: p, isProc: true}] = pd
		}
	}
	return ld, nil
}

// deadlineMonotonic turns local deadlines into unique priorities per
// resource: smaller local deadline = higher priority (smaller number).
// Ties break on the creation order, which keeps the assignment
// deterministic.
func deadlineMonotonic(app *model.Application, arch *model.Architecture, ld map[activityKey]model.Time) (map[model.ProcID]int, map[model.EdgeID]int) {
	procPrio := make(map[model.ProcID]int)
	byNode := make(map[model.NodeID][]model.ProcID)
	for _, p := range app.Procs {
		if arch.Kind(p.Node) == model.EventTriggered {
			byNode[p.Node] = append(byNode[p.Node], p.ID)
		}
	}
	next := 0
	var nodes []model.NodeID
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		ids := byNode[n]
		sort.Slice(ids, func(i, j int) bool {
			a, b := ids[i], ids[j]
			la := ld[activityKey{proc: a, isProc: true}]
			lb := ld[activityKey{proc: b, isProc: true}]
			if la != lb {
				return la < lb
			}
			return a < b
		})
		for _, id := range ids {
			procPrio[id] = next
			next++
		}
	}
	msgPrio := make(map[model.EdgeID]int)
	var msgs []model.EdgeID
	for _, e := range app.Edges {
		if app.RouteOf(e.ID, arch).UsesCAN() {
			msgs = append(msgs, e.ID)
		}
	}
	sort.Slice(msgs, func(i, j int) bool {
		la := ld[activityKey{edge: msgs[i]}]
		lb := ld[activityKey{edge: msgs[j]}]
		if la != lb {
			return la < lb
		}
		return msgs[i] < msgs[j]
	})
	for i, e := range msgs {
		msgPrio[e] = i
	}
	return procPrio, msgPrio
}

// redistribute moves the local deadlines toward the completion pattern
// observed in the analysis: each activity's target deadline is its
// worst-case completion offset rescaled so the whole graph would just
// meet its deadline; the new local deadline is the average of old and
// target (HOPA's damped redistribution).
func redistribute(app *model.Application, arch *model.Architecture, a *core.Analysis, ld map[activityKey]model.Time) {
	for g := range app.Graphs {
		resp := a.GraphResp[g]
		if resp <= 0 {
			continue
		}
		d := app.Graphs[g].Deadline
		scale := float64(d) / float64(resp)
		for _, p := range app.Graphs[g].Procs {
			if arch.Kind(app.Procs[p].Node) != model.EventTriggered {
				continue
			}
			pr, ok := a.Proc[p]
			if !ok {
				continue
			}
			key := activityKey{proc: p, isProc: true}
			target := model.Time(float64(pr.Completion()) * scale)
			ld[key] = damp(ld[key], target)
		}
		for _, e := range app.Graphs[g].Edges {
			if !app.RouteOf(e, arch).UsesCAN() {
				continue
			}
			er, ok := a.Edge[e]
			if !ok {
				continue
			}
			key := activityKey{edge: e}
			target := model.Time(float64(er.Delivery) * scale)
			ld[key] = damp(ld[key], target)
		}
	}
}

func damp(old, target model.Time) model.Time {
	v := (old + target) / 2
	if v < 1 {
		return 1
	}
	return v
}
