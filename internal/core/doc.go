// Package core implements the paper's primary contribution: the
// MultiClusterScheduling algorithm (Fig. 5) that couples the static
// cyclic schedule of the time-triggered cluster with the offset-based
// response-time analysis of the event-triggered cluster, the degree of
// schedulability delta_Gamma, and the total buffer need s_total (§4-§5).
//
// A system configuration psi = <phi, beta, pi> consists of
//
//   - phi: the offsets of TT processes and TTP messages (the schedule
//     tables and the MEDL), produced by internal/tsched and adjustable
//     through pinned offsets;
//   - beta: the TDMA round (slot order and lengths), field Config.Round;
//   - pi: the priorities of the ET processes and of the CAN messages.
//
// Analyze runs the fixed point between StaticScheduling and
// ResponseTimeAnalysis and returns response times, the degree of
// schedulability and the gateway buffer bounds. Analyze is pure with
// respect to the shared application and architecture, which is what
// lets internal/engine evaluate batches of candidate configurations
// concurrently with results identical to a serial run.
package core
