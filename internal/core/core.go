package core
