package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
	"repro/internal/ttp"
)

// configFile is the on-disk form of a Config: maps become sorted slices
// so the output is stable and diff-friendly.
type configFile struct {
	Round        ttp.Round      `json:"round"`
	ProcPriority []procPrioJSON `json:"procPriority"`
	MsgPriority  []msgPrioJSON  `json:"msgPriority"`
	PinnedProcs  []procPinJSON  `json:"pinnedProcs,omitempty"`
	PinnedEdges  []edgePinJSON  `json:"pinnedEdges,omitempty"`
}

type procPrioJSON struct {
	Proc     model.ProcID `json:"proc"`
	Priority int          `json:"priority"`
}

type msgPrioJSON struct {
	Edge     model.EdgeID `json:"edge"`
	Priority int          `json:"priority"`
}

type procPinJSON struct {
	Proc   model.ProcID `json:"proc"`
	Offset model.Time   `json:"offset"`
}

type edgePinJSON struct {
	Edge   model.EdgeID `json:"edge"`
	Offset model.Time   `json:"offset"`
}

// Save writes the configuration as stable, indented JSON.
func (c *Config) Save(w io.Writer) error {
	f := configFile{Round: c.Round}
	for p, prio := range c.ProcPriority {
		f.ProcPriority = append(f.ProcPriority, procPrioJSON{p, prio})
	}
	sort.Slice(f.ProcPriority, func(i, j int) bool { return f.ProcPriority[i].Proc < f.ProcPriority[j].Proc })
	for e, prio := range c.MsgPriority {
		f.MsgPriority = append(f.MsgPriority, msgPrioJSON{e, prio})
	}
	sort.Slice(f.MsgPriority, func(i, j int) bool { return f.MsgPriority[i].Edge < f.MsgPriority[j].Edge })
	for p, off := range c.PinnedProc {
		f.PinnedProcs = append(f.PinnedProcs, procPinJSON{p, off})
	}
	sort.Slice(f.PinnedProcs, func(i, j int) bool { return f.PinnedProcs[i].Proc < f.PinnedProcs[j].Proc })
	for e, off := range c.PinnedEdge {
		f.PinnedEdges = append(f.PinnedEdges, edgePinJSON{e, off})
	}
	sort.Slice(f.PinnedEdges, func(i, j int) bool { return f.PinnedEdges[i].Edge < f.PinnedEdges[j].Edge })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&f); err != nil {
		return fmt.Errorf("core: encoding config: %w", err)
	}
	return nil
}

// LoadConfig parses a configuration written by Save and validates it
// against the application and architecture.
func LoadConfig(r io.Reader, app *model.Application, arch *model.Architecture) (*Config, error) {
	var f configFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding config: %w", err)
	}
	c := &Config{
		Round:        f.Round,
		ProcPriority: make(map[model.ProcID]int, len(f.ProcPriority)),
		MsgPriority:  make(map[model.EdgeID]int, len(f.MsgPriority)),
	}
	for _, p := range f.ProcPriority {
		c.ProcPriority[p.Proc] = p.Priority
	}
	for _, m := range f.MsgPriority {
		c.MsgPriority[m.Edge] = m.Priority
	}
	if len(f.PinnedProcs) > 0 {
		c.PinnedProc = make(map[model.ProcID]model.Time, len(f.PinnedProcs))
		for _, p := range f.PinnedProcs {
			c.PinnedProc[p.Proc] = p.Offset
		}
	}
	if len(f.PinnedEdges) > 0 {
		c.PinnedEdge = make(map[model.EdgeID]model.Time, len(f.PinnedEdges))
		for _, e := range f.PinnedEdges {
			c.PinnedEdge[e.Edge] = e.Offset
		}
	}
	if err := c.Validate(app, arch); err != nil {
		return nil, err
	}
	return c, nil
}
