package core

import (
	"repro/internal/model"
)

// MoveInterval is the [ASAP, ALAP] window within which a TT activity can
// be shifted by the OptimizeResources hill climber (§5.1). ASAP is the
// activity's current start offset (the list scheduler places work as
// early as its constraints allow); ALAP adds the slack of the owning
// graph, the latest shift that cannot by itself break the end-to-end
// deadline. Moves are re-analyzed anyway, so the interval is a search
// window, not a guarantee.
type MoveInterval struct {
	ASAP, ALAP model.Time
}

// ProcMoveInterval returns the move window of a TT process, or ok=false
// for ET processes and processes missing from the schedule.
func (a *Analysis) ProcMoveInterval(app *model.Application, p model.ProcID) (MoveInterval, bool) {
	pr, ok := a.Proc[p]
	if !ok {
		return MoveInterval{}, false
	}
	if _, inTable := a.Schedule.ProcStart[p]; !inTable {
		return MoveInterval{}, false
	}
	return MoveInterval{ASAP: pr.O, ALAP: pr.O + a.graphSlack(app, app.Procs[p].Graph)}, true
}

// EdgeMoveInterval returns the move window of a TTP message (its slot
// occurrence start can be delayed up to the graph slack).
func (a *Analysis) EdgeMoveInterval(app *model.Application, e model.EdgeID) (MoveInterval, bool) {
	er, ok := a.Edge[e]
	if !ok || !er.Route.UsesTTP() {
		return MoveInterval{}, false
	}
	start := er.TTPArrival // delivery offset; the slot start lies one slot earlier
	return MoveInterval{ASAP: start, ALAP: start + a.graphSlack(app, app.Edges[e].Graph)}, true
}

// graphSlack is D_G - R_G, clamped at zero for overloaded graphs.
func (a *Analysis) graphSlack(app *model.Application, g int) model.Time {
	slack := app.Graphs[g].Deadline - a.GraphResp[g]
	if slack < 0 {
		return 0
	}
	return slack
}
