package core

import (
	"fmt"

	"repro/internal/can"
	"repro/internal/gateway"
	"repro/internal/model"
	"repro/internal/rta"
	"repro/internal/tsched"
)

// ProcResult holds the analysis outcome of one process, relative to its
// graph release: the activation window starts at O, spreads over J, and
// the process completes no later than O + R (R = J + W + C).
// TT processes have deterministic starts: W is 0 and J is the envelope
// spread across hyper-period instances.
type ProcResult struct {
	O, J, W, R model.Time
	Converged  bool
}

// Completion returns the worst-case completion offset O + R.
func (p ProcResult) Completion() model.Time { return p.O + p.R }

// EdgeResult holds the per-leg analysis of a message.
type EdgeResult struct {
	Route model.Route
	// TTPArrival is the worst-case in-period delivery offset of the
	// statically scheduled TTP leg (routes TT->TT and TT->ET).
	TTPArrival model.Time
	// CANO/CANJ/CANW/CANR describe the CAN leg (routes using the bus):
	// entry offset, entry jitter, arbitration delay and response.
	CANO, CANJ, CANW, CANR model.Time
	// QueueJ/QueueW/QueueI describe the OutTTP FIFO leg (route ET->TT):
	// entry jitter (relative to CANO), queuing delay and bytes ahead.
	QueueJ, QueueW model.Time
	QueueI         int
	// Delivery is the worst-case offset at which the message is
	// available at the destination node, relative to the graph release.
	Delivery model.Time
	// Converged is false if any leg's fixed point hit the horizon.
	Converged bool
}

// Buffers reports the gateway/ETC queue bounds of §4.1 and their sum,
// the optimization objective s_total of §5. The Critical* fields name
// the message attaining each bound (-1 when the queue is unused); the
// OptimizeResources neighbourhood focuses its moves there.
type Buffers struct {
	OutCAN  int
	OutTTP  int
	OutNode map[model.NodeID]int
	Total   int

	CriticalOutCAN  model.EdgeID
	CriticalOutTTP  model.EdgeID
	CriticalOutNode map[model.NodeID]model.EdgeID
}

// Analysis is the outcome of MultiClusterScheduling for one system
// configuration.
type Analysis struct {
	Schedule *tsched.Schedule
	Proc     map[model.ProcID]ProcResult
	Edge     map[model.EdgeID]EdgeResult
	// GraphResp is R_Gi per process graph: the worst-case offset of the
	// sink completions relative to the graph release.
	GraphResp []model.Time
	// Schedulable is true when every graph meets its deadline, every
	// local process deadline holds, the static table fits its cycle and
	// all fixed points converged.
	Schedulable bool
	// Delta is the degree of schedulability delta_Gamma (§5): when
	// positive it is f1 = sum of deadline overruns (smaller is better);
	// when every deadline holds it is f2 = sum of (R_Gi - D_Gi), a
	// negative number measuring aggregate slack (more negative is
	// better). Delta never mixes the two regimes: f1 > 0 implies
	// Delta = f1 > 0 >= any schedulable f2.
	Delta model.Time
	// Buffers holds the queue bounds; Buffers.Total is s_total.
	Buffers Buffers
	// Iterations counts the outer MultiClusterScheduling loops;
	// Converged reports whether the offsets stabilized before the cap.
	Iterations int
	Converged  bool
}

// horizonFactor scales the hyper-period into the divergence cap of all
// fixed points.
const horizonFactor = 8

// maxMCSIterations caps the outer loop of Fig. 5; maxHolisticIterations
// caps the inner jitter-propagation loop.
const (
	maxMCSIterations      = 32
	maxHolisticIterations = 100
)

// AnalyzeOptions tunes Analyze variants.
type AnalyzeOptions struct {
	// OffsetBlind disables the offset-based interference reduction of
	// §4: every activity is treated as phase-unrelated (classic
	// critical-instant analysis). Used by the ablation experiments to
	// quantify the value of the paper's offset refinement.
	OffsetBlind bool
	// Memo, when non-nil, serves the analysis stages (static schedule,
	// per-resource RTA fixed points, OutTTP queue) through exact-input
	// caches shared across configurations (see Memo). Results are
	// bit-identical to Memo == nil; the nil path remains the reference
	// implementation. One Memo must only ever see one (app, arch) pair
	// and one OffsetBlind setting — internal/delta enforces this.
	Memo *Memo
}

// Analyze runs MultiClusterScheduling (Fig. 5): starting from a static
// schedule that ignores the ETC, it alternates the ETC response-time
// analysis with the TTC static scheduling until the ET->TT arrival
// offsets stabilize. The release constraints only grow across iterations
// (monotone envelope), which guarantees termination; configurations that
// fail to stabilize within the cap are flagged unconverged and carry
// clamped response times, so optimization cost functions can still rank
// them.
func Analyze(app *model.Application, arch *model.Architecture, cfg *Config) (*Analysis, error) {
	return AnalyzeWith(app, arch, cfg, AnalyzeOptions{})
}

// AnalyzeOffsetBlind runs the analysis with the offset refinement
// disabled (see AnalyzeOptions.OffsetBlind).
func AnalyzeOffsetBlind(app *model.Application, arch *model.Architecture, cfg *Config) (*Analysis, error) {
	return AnalyzeWith(app, arch, cfg, AnalyzeOptions{OffsetBlind: true})
}

// AnalyzeWith is Analyze with explicit options.
func AnalyzeWith(app *model.Application, arch *model.Architecture, cfg *Config, aopts AnalyzeOptions) (*Analysis, error) {
	if err := cfg.Validate(app, arch); err != nil {
		return nil, err
	}
	hyper, err := app.Hyperperiod()
	if err != nil {
		return nil, err
	}
	if cfg.Round.Period() <= 0 || hyper%cfg.Round.Period() != 0 {
		return nil, errRoundNotNormalized(cfg.Round.Period(), hyper)
	}
	horizon := hyper * horizonFactor

	release := make(map[model.ProcID]model.Time)
	var (
		sched *tsched.Schedule
		state *etState
	)
	iterations := 0
	converged := false
	for iterations < maxMCSIterations {
		iterations++
		in := tsched.Input{
			App: app, Arch: arch, Round: cfg.Round,
			ReleaseOffset: release,
			PinnedProc:    cfg.PinnedProc,
			PinnedEdge:    cfg.PinnedEdge,
		}
		if aopts.Memo != nil {
			sched, err = aopts.Memo.buildSchedule(in)
		} else {
			sched, err = tsched.Build(in)
		}
		if err != nil {
			return nil, err
		}
		state = analyzeET(app, arch, cfg, sched, horizon, aopts)
		changed := false
		for _, e := range app.Edges {
			if state.edge[e.ID].Route != model.RouteETtoTT {
				continue
			}
			dst := e.Dst
			d := state.edge[e.ID].Delivery
			if d > horizon {
				d = horizon
			}
			if d > release[dst] {
				release[dst] = d
				changed = true
			}
		}
		if !changed {
			converged = true
			break
		}
	}

	a := &Analysis{
		Schedule:   sched,
		Proc:       state.proc,
		Edge:       state.edge,
		Iterations: iterations,
		Converged:  converged && state.converged,
	}
	a.finishMetrics(app, arch, cfg, state)
	return a, nil
}

func errRoundNotNormalized(period, hyper model.Time) error {
	return fmt.Errorf("core: round period %d does not divide hyper-period %d (call Config.Normalize)", period, hyper)
}

// finishMetrics computes graph responses, delta and buffer bounds.
func (a *Analysis) finishMetrics(app *model.Application, arch *model.Architecture, cfg *Config, state *etState) {
	a.GraphResp = make([]model.Time, len(app.Graphs))
	var f1, f2 model.Time
	allConverged := a.Converged
	for g := range app.Graphs {
		var resp model.Time
		for _, p := range app.Graphs[g].Procs {
			pr, ok := a.Proc[p]
			if !ok {
				continue
			}
			if !pr.Converged {
				allConverged = false
			}
			if len(app.OutEdges(p)) == 0 && pr.Completion() > resp {
				resp = pr.Completion()
			}
			if d := app.Procs[p].Deadline; d > 0 && pr.Completion() > d {
				f1 += pr.Completion() - d
			}
		}
		a.GraphResp[g] = resp
		d := app.Graphs[g].Deadline
		if resp > d {
			f1 += resp - d
		}
		f2 += resp - d
	}
	if f1 > 0 {
		a.Delta = f1
	} else {
		a.Delta = f2
	}
	a.Schedulable = f1 == 0 && a.Schedule.WithinCycle && allConverged
	a.Converged = allConverged
	a.Buffers = computeBuffers(app, arch, cfg, state)
}

// etState is the mutable state of the holistic ET-side analysis.
type etState struct {
	proc        map[model.ProcID]ProcResult
	edge        map[model.EdgeID]EdgeResult
	converged   bool
	offsetBlind bool
	memo        *Memo
}

// analyzeET runs the holistic inner loop: offsets are fixed by the
// static schedule and the graph structure; jitters propagate along the
// graphs and grow monotonically until the response times stabilize.
func analyzeET(app *model.Application, arch *model.Architecture, cfg *Config, sched *tsched.Schedule, horizon model.Time, aopts AnalyzeOptions) *etState {
	st := &etState{
		proc:        make(map[model.ProcID]ProcResult, len(app.Procs)),
		edge:        make(map[model.EdgeID]EdgeResult, len(app.Edges)),
		converged:   true,
		offsetBlind: aopts.OffsetBlind,
		memo:        aopts.Memo,
	}
	rT := arch.GatewayCost
	poll := arch.GatewayPoll
	canBus := len(arch.Nodes) // resource id for the CAN bus

	// Static facts: TT process results and TTP-leg arrivals.
	for _, p := range app.Procs {
		if arch.Kind(p.Node) != model.TimeTriggered {
			continue
		}
		off, spread, ok := sched.OffsetOf(app, p.ID)
		if !ok {
			continue
		}
		st.proc[p.ID] = ProcResult{O: off, J: spread, W: 0, R: spread + p.WCET, Converged: true}
	}
	for _, e := range app.Edges {
		route := app.RouteOf(e.ID, arch)
		er := EdgeResult{Route: route, Converged: true}
		if route.UsesTTP() {
			if worst, ok := sched.WorstArrivalOffset(app, e.ID); ok {
				er.TTPArrival = worst
				if route == model.RouteTTP {
					er.Delivery = worst
				}
			}
		}
		st.edge[e.ID] = er
	}

	order, err := app.TopoOrderAll()
	if err != nil {
		// Validated applications cannot get here.
		st.converged = false
		return st
	}

	// Holistic loop: traverse graphs to refresh O/J from current
	// responses, then run the per-resource fixed points.
	for it := 0; it < maxHolisticIterations; it++ {
		st.traverse(app, arch, cfg, sched, order, rT, poll)
		changed := st.runRTA(app, arch, cfg, canBus, horizon)
		changed = st.runQueue(app, arch, cfg, rT, horizon) || changed
		if !changed {
			return st
		}
	}
	st.converged = false
	return st
}

// traverse recomputes activation offsets and jitters along every graph,
// using the current leg responses.
func (st *etState) traverse(app *model.Application, arch *model.Architecture, cfg *Config, sched *tsched.Schedule, order []model.ProcID, rT, poll model.Time) {
	for _, pid := range order {
		p := &app.Procs[pid]
		// Refresh the legs of the incoming edges first, then the
		// process itself.
		if arch.Kind(p.Node) == model.EventTriggered {
			var o, worst model.Time
			first := true
			for _, e := range app.InEdges(pid) {
				er := st.edge[e]
				var co, cd model.Time // contribution offset, worst delivery
				switch er.Route {
				case model.RouteLocal:
					src := st.proc[app.Edges[e].Src]
					co, cd = src.O, src.Completion()
				case model.RouteCAN, model.RouteTTtoET:
					co, cd = er.CANO, er.CANO+er.CANR
				default:
					continue
				}
				if first || co > o {
					o = co
				}
				if first || cd > worst {
					worst = cd
				}
				first = false
			}
			pr := st.proc[pid]
			pr.O = o
			if worst > o {
				pr.J = worst - o
			} else {
				pr.J = 0
			}
			// W, R filled by runRTA; keep current values meanwhile.
			if pr.R < pr.J+p.WCET {
				pr.R = pr.J + p.WCET
			}
			st.proc[pid] = pr
		}
		// Outgoing edges: set the entry offset/jitter of their legs.
		src := st.proc[pid]
		for _, e := range app.OutEdges(pid) {
			er := st.edge[e]
			switch er.Route {
			case model.RouteCAN, model.RouteETtoTT:
				er.CANO = src.O
				er.CANJ = src.R // completion worst = O + R
				if er.Route == model.RouteETtoTT {
					er.QueueJ = er.CANJ + er.CANW + canTimeOf(app, arch, e) + rT
				}
			case model.RouteTTtoET:
				off, spread, ok := sched.ArrivalOffsetOf(app, e)
				if ok {
					er.CANO = off
					er.CANJ = spread + rT + poll
				}
			}
			st.edge[e] = er
		}
	}
}

func canTimeOf(app *model.Application, arch *model.Architecture, e model.EdgeID) model.Time {
	return can.TimeOf(&app.Edges[e], arch.CAN)
}

// runRTA builds the task set (ET processes per CPU, CAN legs on the
// bus) and runs the fixed points. It returns whether any W or R changed.
func (st *etState) runRTA(app *model.Application, arch *model.Architecture, cfg *Config, canBus int, horizon model.Time) bool {
	var tasks []rta.Task
	type ref struct {
		proc model.ProcID
		edge model.EdgeID
		kind int // 0 = proc, 1 = edge CAN leg
	}
	var refs []ref
	for _, p := range app.Procs {
		if arch.Kind(p.Node) != model.EventTriggered {
			continue
		}
		pr := st.proc[p.ID]
		tasks = append(tasks, rta.Task{
			Name: p.Name, Resource: int(p.Node), Priority: cfg.ProcPriority[p.ID],
			C: p.WCET, T: app.PeriodOf(p.ID), O: pr.O, J: pr.J, Trans: st.trans(p.Graph),
		})
		refs = append(refs, ref{proc: p.ID, kind: 0})
	}
	for _, e := range app.Edges {
		er := st.edge[e.ID]
		if !er.Route.UsesCAN() {
			continue
		}
		tasks = append(tasks, rta.Task{
			Name: e.Name, Resource: canBus, Priority: cfg.MsgPriority[e.ID],
			C: canTimeOf(app, arch, e.ID), T: app.EdgePeriod(e.ID),
			O: er.CANO, J: er.CANJ, Trans: st.trans(e.Graph), NonPreemptive: true,
		})
		refs = append(refs, ref{edge: e.ID, kind: 1})
	}
	if len(tasks) == 0 {
		return false
	}
	// Non-preemptive blocking on the CAN bus: B = max lower-priority C.
	for i := range tasks {
		if tasks[i].NonPreemptive {
			tasks[i].B = rta.MaxLowerC(tasks, i)
		}
	}
	var (
		res []rta.Result
		err error
	)
	if st.memo != nil {
		// Per-resource memoized path: bit-identical to the monolithic
		// call because interference never crosses resources and the memo
		// reapplies the all-unconverged marking of an exhausted pass
		// budget globally (see Memo.analyzeRTA).
		res, _, err = st.memo.analyzeRTA(tasks, horizon)
	} else {
		res, err = rta.Analyze(tasks, rta.Options{Horizon: horizon})
	}
	if err != nil {
		st.converged = false
		return false
	}
	changed := false
	for i, r := range res {
		if refs[i].kind == 0 {
			pr := st.proc[refs[i].proc]
			if pr.W != r.W || pr.R != r.R {
				changed = true
			}
			pr.W, pr.R, pr.Converged = r.W, r.R, r.Converged
			st.proc[refs[i].proc] = pr
		} else {
			er := st.edge[refs[i].edge]
			if er.CANW != r.W || er.CANR != r.R {
				changed = true
			}
			er.CANW, er.CANR = r.W, r.R
			er.Converged = r.Converged
			if er.Route == model.RouteCAN || er.Route == model.RouteTTtoET {
				er.Delivery = er.CANO + er.CANR
			}
			st.edge[refs[i].edge] = er
		}
	}
	return changed
}

// runQueue analyzes the OutTTP FIFO for the ET->TT messages.
func (st *etState) runQueue(app *model.Application, arch *model.Architecture, cfg *Config, rT, horizon model.Time) bool {
	msgs, ids := st.outTTPMsgs(app, arch, cfg)
	if len(msgs) == 0 {
		return false
	}
	slot := cfg.Round.SlotIndexOf(arch.Gateway)
	params := gateway.TTPQueueParams{
		Round: cfg.Round, GatewaySlot: slot,
		TickPerByte: arch.TTP.TickPerByte, Horizon: horizon,
	}
	var (
		res []gateway.TTPResult
		err error
	)
	if st.memo != nil {
		res, err = st.memo.analyzeQueue(msgs, params)
	} else {
		res, err = gateway.AnalyzeOutTTP(msgs, params)
	}
	if err != nil {
		st.converged = false
		return false
	}
	changed := false
	for i, r := range res {
		er := st.edge[ids[i]]
		delivery := er.CANO + er.QueueJ + r.W + cfg.Round.Slots[slot].Length
		if er.QueueW != r.W || er.QueueI != r.I || er.Delivery != delivery {
			changed = true
		}
		er.QueueW, er.QueueI = r.W, r.I
		er.Delivery = delivery
		if !r.Converged {
			er.Converged = false
		}
		st.edge[ids[i]] = er
	}
	return changed
}

// trans maps a graph index to the transaction id used by the analysis:
// -1 (pairwise unrelated) in offset-blind mode.
func (st *etState) trans(graph int) int {
	if st.offsetBlind {
		return -1
	}
	return graph
}

// outTTPMsgs collects the ET->TT messages as OutTTP queue entries.
func (st *etState) outTTPMsgs(app *model.Application, arch *model.Architecture, cfg *Config) ([]gateway.QueueMsg, []model.EdgeID) {
	var msgs []gateway.QueueMsg
	var ids []model.EdgeID
	for _, e := range app.Edges {
		er := st.edge[e.ID]
		if er.Route != model.RouteETtoTT {
			continue
		}
		msgs = append(msgs, gateway.QueueMsg{
			Name: e.Name, Size: e.Size, T: app.EdgePeriod(e.ID),
			O: er.CANO, J: er.QueueJ,
			Priority: cfg.MsgPriority[e.ID], Trans: st.trans(e.Graph),
		})
		ids = append(ids, e.ID)
	}
	return msgs, ids
}

// computeBuffers evaluates the §4.1 queue bounds for the final state.
func computeBuffers(app *model.Application, arch *model.Architecture, cfg *Config, st *etState) Buffers {
	b := Buffers{
		OutNode:         make(map[model.NodeID]int),
		CriticalOutCAN:  -1,
		CriticalOutTTP:  -1,
		CriticalOutNode: make(map[model.NodeID]model.EdgeID),
	}
	// OutCAN: TT->ET messages forwarded by the gateway.
	var outCAN []gateway.CANQueueMsg
	var outCANIDs []model.EdgeID
	// OutN_i: per ET node, the CAN messages its processes send.
	outNode := make(map[model.NodeID][]gateway.CANQueueMsg)
	outNodeIDs := make(map[model.NodeID][]model.EdgeID)
	for _, e := range app.Edges {
		er := st.edge[e.ID]
		qm := gateway.CANQueueMsg{
			QueueMsg: gateway.QueueMsg{
				Name: e.Name, Size: e.Size, T: app.EdgePeriod(e.ID),
				O: er.CANO, J: er.CANJ, Priority: cfg.MsgPriority[e.ID], Trans: st.trans(e.Graph),
			},
			W: er.CANW,
		}
		switch er.Route {
		case model.RouteTTtoET:
			outCAN = append(outCAN, qm)
			outCANIDs = append(outCANIDs, e.ID)
		case model.RouteCAN, model.RouteETtoTT:
			n := app.Procs[e.Src].Node
			outNode[n] = append(outNode[n], qm)
			outNodeIDs[n] = append(outNodeIDs[n], e.ID)
		}
	}
	var crit int
	b.OutCAN, crit = gateway.CANQueueBufferBound(outCAN)
	if crit >= 0 {
		b.CriticalOutCAN = outCANIDs[crit]
	}
	for n, msgs := range outNode {
		b.OutNode[n], crit = gateway.CANQueueBufferBound(msgs)
		if crit >= 0 {
			b.CriticalOutNode[n] = outNodeIDs[n][crit]
		}
	}
	msgs, ids := st.outTTPMsgs(app, arch, cfg)
	if len(msgs) > 0 {
		res := make([]gateway.TTPResult, len(ids))
		for i, id := range ids {
			er := st.edge[id]
			res[i] = gateway.TTPResult{W: er.QueueW, I: er.QueueI}
		}
		b.OutTTP, crit = gateway.OutTTPBufferBound(msgs, res)
		if crit >= 0 {
			b.CriticalOutTTP = ids[crit]
		}
	}
	b.Total = b.OutCAN + b.OutTTP
	for _, v := range b.OutNode {
		b.Total += v
	}
	return b
}
