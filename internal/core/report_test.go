package core

import (
	"strings"
	"testing"
)

func TestWriteScheduleTables(t *testing.T) {
	app, arch, p, m := fig4System(t)
	cfg := fig4Config(app, arch, false, true, p, m) // schedulable panel (d)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	a, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var sb strings.Builder
	a.WriteScheduleTables(&sb, app, arch)
	out := sb.String()
	for _, want := range []string{
		"TTC schedule tables",
		"node N1:",
		"P1",
		"MEDL (TTP frame schedule):",
		"m1 (8 B)",
		"ETC priority tables:",
		"P2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("schedule tables miss %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeOffsetBlindIsMorePessimistic: dropping the offset
// refinement must never decrease any response time (it is exactly the
// refinement the paper contributes in §4).
func TestAnalyzeOffsetBlindIsMorePessimistic(t *testing.T) {
	app, arch, p, m := fig4System(t)
	cfg := fig4Config(app, arch, false, true, p, m)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	full, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	blind, err := AnalyzeOffsetBlind(app, arch, cfg)
	if err != nil {
		t.Fatalf("AnalyzeOffsetBlind: %v", err)
	}
	for g := range app.Graphs {
		if blind.GraphResp[g] < full.GraphResp[g] {
			t.Errorf("graph %d: offset-blind response %d below refined %d", g, blind.GraphResp[g], full.GraphResp[g])
		}
	}
	if blind.Delta < full.Delta {
		t.Errorf("offset-blind delta %d below refined %d", blind.Delta, full.Delta)
	}
}
