package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
)

// WriteScheduleTables renders the synthesized TT schedule tables and the
// MEDL in a human-readable form: per TT node the process start times,
// and per TDMA slot the statically scheduled frames. This is the
// "download" a TTP integrator would flash into the nodes (§2.3: local
// schedule tables and the MEDL).
func (a *Analysis) WriteScheduleTables(w io.Writer, app *model.Application, arch *model.Architecture) {
	fmt.Fprintf(w, "TTC schedule tables (cycle = %d ticks, TDMA round = %d ticks)\n",
		a.Schedule.Hyper, a.Schedule.Round.Period())

	// Per-node process tables.
	type entry struct {
		start, end model.Time
		name       string
	}
	byNode := make(map[model.NodeID][]entry)
	for pid, starts := range a.Schedule.ProcStart {
		p := &app.Procs[pid]
		for _, st := range starts {
			byNode[p.Node] = append(byNode[p.Node], entry{st, st + p.WCET, p.Name})
		}
	}
	var nodes []model.NodeID
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Fprintf(w, "node %s:\n", arch.Nodes[n].Name)
		ents := byNode[n]
		sort.Slice(ents, func(i, j int) bool { return ents[i].start < ents[j].start })
		for _, e := range ents {
			fmt.Fprintf(w, "  [%6d, %6d)  %s\n", e.start, e.end, e.name)
		}
	}

	// MEDL: frames per slot occurrence.
	fmt.Fprintln(w, "MEDL (TTP frame schedule):")
	medl := a.Schedule.MEDL.Entries
	sorted := make([]int, len(medl))
	for i := range sorted {
		sorted[i] = i
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := medl[sorted[i]], medl[sorted[j]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Edge < b.Edge
	})
	for _, i := range sorted {
		e := medl[i]
		owner := arch.Nodes[a.Schedule.Round.Slots[e.Slot].Node].Name
		fmt.Fprintf(w, "  round %3d slot %d (%s) [%6d, %6d): %s (%d B)\n",
			e.Round, e.Slot, owner, e.Start, e.End, app.Edges[e.Edge].Name, e.Bytes)
	}

	// ET side: priority tables.
	fmt.Fprintln(w, "ETC priority tables:")
	etprocs := make(map[model.NodeID][]model.ProcID)
	for _, p := range app.Procs {
		if arch.Kind(p.Node) == model.EventTriggered {
			etprocs[p.Node] = append(etprocs[p.Node], p.ID)
		}
	}
	nodes = nodes[:0]
	for n := range etprocs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Fprintf(w, "node %s:\n", arch.Nodes[n].Name)
		ids := etprocs[n]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			pr := a.Proc[id]
			fmt.Fprintf(w, "  %-24s O=%6d J=%6d W=%6d R=%6d\n",
				app.Procs[id].Name, pr.O, pr.J, pr.W, pr.R)
		}
	}
}
