package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/ttp"
)

// Figure 4 of the paper: graph G1 (P1 -> {m1->P2, m2->P3}, P2 -> m3 -> P4)
// on a two-cluster platform. P1, P4 on TT node N1; P2, P3 on ET node N2.
// C1 = C4 = 30, C2 = C3 = 20, C_T = 5, CAN frame times 10, TDMA round of
// two 20-tick slots, T_G1 = 240, D_G1 = 200.
//
// The paper's panel annotations mix analysis values with an illustrative
// execution trace; our engine reproduces the §4.2 analysis values (J2=15,
// J3=25, I2=20, r2=55, r3=45) exactly and derives the end-to-end response
// with full worst-case jitter propagation (see EXPERIMENTS.md E1):
//
//	(a) S_G first, priority(P3) > priority(P2): R_G1 = 250, missed.
//	(b) S_1 first, same priorities:             R_G1 = 230, missed.
//	(c) S_G first, priority(P2) > priority(P3): R_G1 = 210, missed.
//	(d) S_1 first and P2 high priority:         R_G1 = 190, met.
//
// The paper's qualitative claim - the TDMA slot order and the ET
// priorities decide schedulability - is exactly what (a) vs (d) shows.
func fig4System(t *testing.T) (*model.Application, *model.Architecture, [4]model.ProcID, [3]model.EdgeID) {
	t.Helper()
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		Name: "fig4", TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 5,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("fig4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	for _, e := range []model.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10 // the paper's round number instead of the derived frame time
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return app, arch, [4]model.ProcID{p1, p2, p3, p4}, [3]model.EdgeID{m1, m2, m3}
}

// fig4Config builds psi for one of the four panels.
func fig4Config(app *model.Application, arch *model.Architecture, sgFirst, p2High bool,
	p [4]model.ProcID, m [3]model.EdgeID) *Config {
	n1 := arch.TTNodes()[0]
	var slots []ttp.Slot
	if sgFirst {
		slots = []ttp.Slot{{Node: arch.Gateway, Length: 20}, {Node: n1, Length: 20}}
	} else {
		slots = []ttp.Slot{{Node: n1, Length: 20}, {Node: arch.Gateway, Length: 20}}
	}
	cfg := &Config{
		Round:        ttp.Round{Slots: slots},
		ProcPriority: map[model.ProcID]int{},
		MsgPriority: map[model.EdgeID]int{
			m[0]: 1, m[1]: 2, m[2]: 3, // priority(m1) > priority(m2) > priority(m3)
		},
	}
	if p2High {
		cfg.ProcPriority[p[1]] = 1
		cfg.ProcPriority[p[2]] = 2
	} else {
		cfg.ProcPriority[p[1]] = 2
		cfg.ProcPriority[p[2]] = 1
	}
	return cfg
}

func analyzeFig4(t *testing.T, sgFirst, p2High bool) (*Analysis, *model.Application, [4]model.ProcID, [3]model.EdgeID) {
	t.Helper()
	app, arch, p, m := fig4System(t)
	cfg := fig4Config(app, arch, sgFirst, p2High, p, m)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	a, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a, app, p, m
}

// TestFigure4aAnalysisValues checks the §4.2 example quantities on panel
// (a). One deliberate difference to the paper's annotations: the paper's
// own equation for w_m (Fig. 6 / §4.1.1) contains the blocking factor
// B_m = max over lp(m) of C_k, yet the annotated numbers (J2=15, J3=25)
// assume B = 0. We evaluate the full formula: B_m1 = B_m2 = 10 (m3 can
// be in transmission), so r_m1 = 25 and r_m2 = 35. With B forced to zero
// the engine reproduces the annotated 15/25 exactly — that variant is
// covered by the rta unit tests (TestFig4aMessages). The interference
// values I2 = 20 and the offsets O2 = O3 = 80 match the paper as-is.
func TestFigure4aAnalysisValues(t *testing.T) {
	a, _, p, m := analyzeFig4(t, true, false)

	// m1 and m2 are broadcast in slot S_1 of round 2 and reach the
	// gateway MBI at 80 (steps (1)-(3) of Fig. 3).
	if got := a.Edge[m[0]].CANO; got != 80 {
		t.Errorf("O(m1 CAN leg) = %d, want 80", got)
	}
	// J_m1 = J_m2 = r_T = 5.
	if got := a.Edge[m[0]].CANJ; got != 5 {
		t.Errorf("J(m1) = %d, want 5", got)
	}
	// r_m1 = J + B + C = 5 + 10 + 10; r_m2 adds m1's interference.
	if got := a.Edge[m[0]].CANR; got != 25 {
		t.Errorf("r(m1) = %d, want 25", got)
	}
	if got := a.Edge[m[1]].CANR; got != 35 {
		t.Errorf("r(m2) = %d, want 35", got)
	}
	if got := a.Proc[p[1]].J; got != 25 {
		t.Errorf("J2 = %d, want 25 (= r_m1)", got)
	}
	if got := a.Proc[p[2]].J; got != 35 {
		t.Errorf("J3 = %d, want 35 (= r_m2)", got)
	}
	// I2 = w2 = 20: one preemption by the higher-priority P3 (§4.2).
	if got := a.Proc[p[1]].W; got != 20 {
		t.Errorf("I2 = %d, want 20", got)
	}
	if got := a.Proc[p[1]].R; got != 65 {
		t.Errorf("r2 = %d, want 65", got)
	}
	if got := a.Proc[p[2]].R; got != 55 {
		t.Errorf("r3 = %d, want 55", got)
	}
	// O2 = O3 = 80: the processes cannot start before their messages.
	if a.Proc[p[1]].O != 80 || a.Proc[p[2]].O != 80 {
		t.Errorf("O2,O3 = %d,%d want 80,80", a.Proc[p[1]].O, a.Proc[p[2]].O)
	}
}

func TestFigure4Panels(t *testing.T) {
	cases := []struct {
		name            string
		sgFirst, p2High bool
		wantResp        model.Time
		wantSched       bool
	}{
		{"a_SGfirst_P3high", true, false, 250, false},
		{"b_S1first_P3high", false, false, 230, false},
		{"c_SGfirst_P2high", true, true, 210, false},
		{"d_S1first_P2high", false, true, 190, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, _, _, _ := analyzeFig4(t, c.sgFirst, c.p2High)
			if got := a.GraphResp[0]; got != c.wantResp {
				t.Errorf("R_G1 = %d, want %d", got, c.wantResp)
			}
			if a.Schedulable != c.wantSched {
				t.Errorf("Schedulable = %v, want %v (delta=%d)", a.Schedulable, c.wantSched, a.Delta)
			}
			if !a.Converged {
				t.Error("analysis did not converge")
			}
		})
	}
}

// TestFigure4Delta checks the degree-of-schedulability regimes: panel
// (a) yields f1 = 50 (overrun), panel (d) yields f2 = -10 (slack).
func TestFigure4Delta(t *testing.T) {
	a, _, _, _ := analyzeFig4(t, true, false)
	if a.Delta != 50 {
		t.Errorf("delta(a) = %d, want f1 = 50", a.Delta)
	}
	d, _, _, _ := analyzeFig4(t, false, true)
	if d.Delta != -10 {
		t.Errorf("delta(d) = %d, want f2 = -10", d.Delta)
	}
	if !(d.Delta < a.Delta) {
		t.Error("schedulable configuration must rank strictly better")
	}
}

// TestFigure4Buffers checks the §4.1 queue bounds on panel (a):
// OutCAN holds m1+m2 in the worst case (16 bytes), OutN2 and OutTTP just
// m3 (4 bytes each).
func TestFigure4Buffers(t *testing.T) {
	a, app, _, _ := analyzeFig4(t, true, false)
	if a.Buffers.OutCAN != 16 {
		t.Errorf("s_OutCAN = %d, want 16", a.Buffers.OutCAN)
	}
	if a.Buffers.OutTTP != 4 {
		t.Errorf("s_OutTTP = %d, want 4", a.Buffers.OutTTP)
	}
	var outN2 int
	for _, v := range a.Buffers.OutNode {
		outN2 += v
	}
	if outN2 != 4 {
		t.Errorf("sum OutN_i = %d, want 4", outN2)
	}
	if a.Buffers.Total != 24 {
		t.Errorf("s_total = %d, want 24", a.Buffers.Total)
	}
	_ = app
}

// TestFigure4Delivery follows m3 through its three legs on panel (d).
func TestFigure4Delivery(t *testing.T) {
	a, _, p, m := analyzeFig4(t, false, true)
	er := a.Edge[m[2]]
	if er.Route != model.RouteETtoTT {
		t.Fatalf("route(m3) = %v", er.Route)
	}
	// CAN leg: enters with the completion of P2 (O=60, r2=45).
	if er.CANO != 60 || er.CANJ != 45 {
		t.Errorf("m3 CAN leg O,J = %d,%d want 60,45", er.CANO, er.CANJ)
	}
	// Arbitration: m1 and m2 can be ahead: w = 20, r = 75.
	if er.CANW != 20 || er.CANR != 75 {
		t.Errorf("m3 CAN leg W,R = %d,%d want 20,75", er.CANW, er.CANR)
	}
	// OutTTP: entry jitter = 45+20+10+5 = 80, anchor 140 = the start of
	// S_G in round 4: no waiting, delivered at 160.
	if er.QueueJ != 80 || er.QueueW != 0 {
		t.Errorf("m3 queue J,W = %d,%d want 80,0", er.QueueJ, er.QueueW)
	}
	if er.Delivery != 160 {
		t.Errorf("m3 delivery = %d, want 160", er.Delivery)
	}
	// P4 is then scheduled at 160 and finishes at 190.
	if got := a.Proc[p[3]].O; got != 160 {
		t.Errorf("O4 = %d, want 160", got)
	}
	if got := a.Proc[p[3]].Completion(); got != 190 {
		t.Errorf("completion(P4) = %d, want 190", got)
	}
}

// TestMoveIntervals sanity-checks the [ASAP, ALAP] windows on the
// schedulable panel (d): slack is 10, so every TT activity may shift by
// at most 10.
func TestMoveIntervals(t *testing.T) {
	a, app, p, m := analyzeFig4(t, false, true)
	iv, ok := a.ProcMoveInterval(app, p[0])
	if !ok {
		t.Fatal("no interval for P1")
	}
	if iv.ASAP != 0 || iv.ALAP != 10 {
		t.Errorf("P1 interval = %+v, want [0,10]", iv)
	}
	if _, ok := a.ProcMoveInterval(app, p[1]); ok {
		t.Error("ET process P2 must have no TT move interval")
	}
	ivm, ok := a.EdgeMoveInterval(app, m[0])
	if !ok {
		t.Fatal("no interval for m1")
	}
	if ivm.ASAP != 60 || ivm.ALAP != 70 {
		t.Errorf("m1 interval = %+v, want [60,70]", ivm)
	}
	if _, ok := a.EdgeMoveInterval(app, m[2]); ok {
		t.Error("m3 has no statically scheduled TTP leg")
	}
}

// TestConfigValidation exercises the psi validation paths.
func TestConfigValidation(t *testing.T) {
	app, arch, p, m := fig4System(t)
	cfg := fig4Config(app, arch, true, false, p, m)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if err := cfg.Validate(app, arch); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Unnormalized round.
	bad := cfg.Clone()
	bad.Round.Slots[0].Length = 23
	if _, err := Analyze(app, arch, bad); err == nil {
		t.Error("accepted unnormalized round")
	}
	// Missing process priority.
	bad = cfg.Clone()
	delete(bad.ProcPriority, p[1])
	if err := bad.Validate(app, arch); err == nil {
		t.Error("accepted missing process priority")
	}
	// Duplicate message priority.
	bad = cfg.Clone()
	bad.MsgPriority[m[0]] = bad.MsgPriority[m[1]]
	if err := bad.Validate(app, arch); err == nil {
		t.Error("accepted duplicate message priority")
	}
	// Duplicate process priority on one node.
	bad = cfg.Clone()
	bad.ProcPriority[p[1]] = bad.ProcPriority[p[2]]
	if err := bad.Validate(app, arch); err == nil {
		t.Error("accepted duplicate process priority")
	}
}

func TestDefaultConfig(t *testing.T) {
	app, arch, _, _ := fig4System(t)
	cfg := DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if err := cfg.Validate(app, arch); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// Slot of N1 must fit its largest message (8 bytes).
	i := cfg.Round.SlotIndexOf(arch.TTNodes()[0])
	if got := cfg.Round.Capacity(i, arch.TTP.TickPerByte); got < 8 {
		t.Errorf("N1 slot capacity = %d, want >= 8", got)
	}
	if _, err := Analyze(app, arch, cfg); err != nil {
		t.Fatalf("Analyze(default): %v", err)
	}
}

// TestPinsChangeAnalysis: pinning m2 later on panel (d) delays P3 but
// must keep the analysis well-formed.
func TestPinsChangeAnalysis(t *testing.T) {
	app, arch, p, m := fig4System(t)
	cfg := fig4Config(app, arch, false, true, p, m)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	base, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	pinned, err := Analyze(app, arch, cfg.PinEdge(m[1], 90))
	if err != nil {
		t.Fatalf("Analyze(pinned): %v", err)
	}
	if pinned.Edge[m[1]].TTPArrival <= base.Edge[m[1]].TTPArrival {
		t.Errorf("pin did not delay m2: %d vs %d", pinned.Edge[m[1]].TTPArrival, base.Edge[m[1]].TTPArrival)
	}
	// P3's offset follows m2's arrival.
	if pinned.Proc[p[2]].O <= base.Proc[p[2]].O {
		t.Errorf("P3 offset did not follow the pin: %d vs %d", pinned.Proc[p[2]].O, base.Proc[p[2]].O)
	}
}
