package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/tsched"
	"repro/internal/ttp"
)

// Config is the synthesized system configuration psi = <phi, beta, pi>.
type Config struct {
	// Round is beta: the TDMA slot sequence and lengths. Normalize pads
	// it so the round period divides the hyper-period.
	Round ttp.Round
	// ProcPriority is pi for the ET processes: unique per ET node
	// (globally unique values are simplest), smaller = higher priority.
	ProcPriority map[model.ProcID]int
	// MsgPriority is pi for the messages travelling on the CAN bus:
	// unique across the bus, smaller = higher priority (CAN identifier
	// order).
	MsgPriority map[model.EdgeID]int
	// PinnedProc and PinnedEdge are the phi adjustments explored by
	// OptimizeResources: "not before" in-period offsets for TT processes
	// and TTP messages.
	PinnedProc map[model.ProcID]model.Time
	PinnedEdge map[model.EdgeID]model.Time
}

// Clone returns a deep copy; the optimization heuristics mutate copies.
func (c *Config) Clone() *Config {
	d := &Config{
		Round:        c.Round.Clone(),
		ProcPriority: make(map[model.ProcID]int, len(c.ProcPriority)),
		MsgPriority:  make(map[model.EdgeID]int, len(c.MsgPriority)),
	}
	for k, v := range c.ProcPriority {
		d.ProcPriority[k] = v
	}
	for k, v := range c.MsgPriority {
		d.MsgPriority[k] = v
	}
	if c.PinnedProc != nil {
		d.PinnedProc = make(map[model.ProcID]model.Time, len(c.PinnedProc))
		for k, v := range c.PinnedProc {
			d.PinnedProc[k] = v
		}
	}
	if c.PinnedEdge != nil {
		d.PinnedEdge = make(map[model.EdgeID]model.Time, len(c.PinnedEdge))
		for k, v := range c.PinnedEdge {
			d.PinnedEdge[k] = v
		}
	}
	return d
}

// DefaultConfig builds the straightforward configuration used as the SF
// baseline's starting point (§6): slots allocated to the owners in
// ascending architecture order, each with its minimal allowed length
// (the largest message the owner sends), and priorities assigned in
// creation order.
func DefaultConfig(app *model.Application, arch *model.Architecture) *Config {
	cfg := &Config{
		Round: ttp.NewRound(arch.SlotOwners(), func(n model.NodeID) model.Time {
			return tsched.MinSlotLength(app, arch, n)
		}),
		ProcPriority: make(map[model.ProcID]int),
		MsgPriority:  make(map[model.EdgeID]int),
	}
	next := 0
	for _, p := range app.Procs {
		if arch.Kind(p.Node) == model.EventTriggered {
			cfg.ProcPriority[p.ID] = next
			next++
		}
	}
	next = 0
	for _, e := range app.Edges {
		if app.RouteOf(e.ID, arch).UsesCAN() {
			cfg.MsgPriority[e.ID] = next
			next++
		}
	}
	return cfg
}

// Normalize pads the round so its period divides the hyper-period.
// Call it after every slot-length or slot-order change.
func (c *Config) Normalize(app *model.Application) error {
	h, err := app.Hyperperiod()
	if err != nil {
		return err
	}
	return c.Round.PadToDivide(h)
}

// Validate checks the configuration against the application: one slot
// per owner, every ET process and CAN message has a priority, priorities
// unique per resource.
func (c *Config) Validate(app *model.Application, arch *model.Architecture) error {
	if err := c.Round.Validate(arch.SlotOwners()); err != nil {
		return err
	}
	seenProc := make(map[[2]int]model.ProcID)
	for _, p := range app.Procs {
		if arch.Kind(p.Node) != model.EventTriggered {
			continue
		}
		prio, ok := c.ProcPriority[p.ID]
		if !ok {
			return fmt.Errorf("core: ET process %q has no priority", p.Name)
		}
		key := [2]int{int(p.Node), prio}
		if prev, dup := seenProc[key]; dup {
			return fmt.Errorf("core: processes %q and %q share priority %d on node %d", app.Procs[prev].Name, p.Name, prio, p.Node)
		}
		seenProc[key] = p.ID
	}
	seenMsg := make(map[int]model.EdgeID)
	for _, e := range app.Edges {
		if !app.RouteOf(e.ID, arch).UsesCAN() {
			continue
		}
		prio, ok := c.MsgPriority[e.ID]
		if !ok {
			return fmt.Errorf("core: CAN message %q has no priority", e.Name)
		}
		if prev, dup := seenMsg[prio]; dup {
			return fmt.Errorf("core: messages %q and %q share CAN priority %d", app.Edges[prev].Name, e.Name, prio)
		}
		seenMsg[prio] = e.ID
	}
	return nil
}

// PinProc returns a copy with an additional TT process pin.
func (c *Config) PinProc(p model.ProcID, off model.Time) *Config {
	d := c.Clone()
	if d.PinnedProc == nil {
		d.PinnedProc = make(map[model.ProcID]model.Time)
	}
	d.PinnedProc[p] = off
	return d
}

// PinEdge returns a copy with an additional TTP message pin.
func (c *Config) PinEdge(e model.EdgeID, off model.Time) *Config {
	d := c.Clone()
	if d.PinnedEdge == nil {
		d.PinnedEdge = make(map[model.EdgeID]model.Time)
	}
	d.PinnedEdge[e] = off
	return d
}
