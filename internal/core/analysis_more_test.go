package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
)

// TestGatewayPollAddsJitter: a positive MBI polling period of the
// transfer process T must widen the jitter of TT->ET messages and can
// only increase downstream responses.
func TestGatewayPollAddsJitter(t *testing.T) {
	app, arch, p, m := fig4System(t)
	cfg := fig4Config(app, arch, false, true, p, m)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	base, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	arch.GatewayPoll = 10
	polled, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze(poll): %v", err)
	}
	arch.GatewayPoll = 0
	if got, want := polled.Edge[m[0]].CANJ, base.Edge[m[0]].CANJ+10; got != want {
		t.Errorf("poll jitter: CANJ = %d, want %d", got, want)
	}
	for g := range app.Graphs {
		if polled.GraphResp[g] < base.GraphResp[g] {
			t.Errorf("polling made graph %d faster: %d < %d", g, polled.GraphResp[g], base.GraphResp[g])
		}
	}
}

// TestLocalProcessDeadlines: a violated local deadline makes the system
// unschedulable even when the end-to-end deadline holds.
func TestLocalProcessDeadlines(t *testing.T) {
	app, arch, p, m := fig4System(t)
	cfg := fig4Config(app, arch, false, true, p, m) // panel (d): R_G1 = 190
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	// P2 completes at 60 + r2 = 105 on panel (d); a local deadline of 90
	// must flip the verdict.
	app.Procs[p[1]].Deadline = 90
	a, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	app.Procs[p[1]].Deadline = 0
	if a.Schedulable {
		t.Errorf("local deadline violation not detected (completion %d)", a.Proc[p[1]].Completion())
	}
	if a.Delta <= 0 {
		t.Errorf("delta must be positive with a local violation, got %d", a.Delta)
	}
}

// TestMultiETNodeAnalysis runs the analysis on a 2 TT + 2 ET platform
// and checks per-node interference isolation: processes only suffer W
// from their own node.
func TestMultiETNodeAnalysis(t *testing.T) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 2, ETNodes: 2, TickPerByte: 1, CANBitTime: 1, GatewayCost: 2,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("twin")
	g := app.AddGraph("G", 1000, 900)
	tt := arch.TTNodes()[0]
	e1, e2 := arch.ETNodes()[0], arch.ETNodes()[1]
	src := app.AddProcess(g, "src", 10, tt)
	// Two independent consumers on different ET nodes.
	a1 := app.AddProcess(g, "a1", 50, e1)
	a2 := app.AddProcess(g, "a2", 50, e1)
	b1 := app.AddProcess(g, "b1", 50, e2)
	app.AddEdge("ma1", src, a1, 8)
	app.AddEdge("ma2", src, a2, 8)
	app.AddEdge("mb1", src, b1, 8)
	for i := range app.Edges {
		app.Edges[i].CANTime = 5
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	cfg := DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	an, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// a2 (lower priority than a1 on the same node) suffers interference;
	// b1 alone on its node does not.
	if an.Proc[a2].W == 0 {
		t.Error("a2 must be preempted by a1")
	}
	if an.Proc[b1].W != 0 {
		t.Errorf("b1 is alone on its node, W = %d", an.Proc[b1].W)
	}
	if !an.Schedulable {
		t.Errorf("twin system must be schedulable, delta=%d", an.Delta)
	}
}

// TestAnalysisDeterminism: two analyses of the same configuration are
// identical (maps everywhere, so this guards iteration-order bugs).
func TestAnalysisDeterminism(t *testing.T) {
	sys, err := gen.Generate(gen.Spec{Seed: 12, TTNodes: 1, ETNodes: 1, ProcsPerNode: 10, ProcsPerGraph: 10})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	cfg := DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	a1, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	a2, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a1.Delta != a2.Delta || a1.Buffers.Total != a2.Buffers.Total || a1.Iterations != a2.Iterations {
		t.Error("analysis is not deterministic")
	}
	for p := range a1.Proc {
		if a1.Proc[p] != a2.Proc[p] {
			t.Errorf("process %d results differ", p)
		}
	}
	for e := range a1.Edge {
		if a1.Edge[e] != a2.Edge[e] {
			t.Errorf("edge %d results differ", e)
		}
	}
}

// TestUnschedulableStillRanked: grossly overloaded systems get finite,
// comparable deltas (the optimization heuristics need a gradient).
func TestUnschedulableStillRanked(t *testing.T) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 1,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("overload")
	g := app.AddGraph("G", 100, 50)
	et := arch.ETNodes()[0]
	// Three 40-tick processes on one CPU with a 100-tick period: the CPU
	// is at 120% utilization.
	var last model.ProcID
	for i := 0; i < 3; i++ {
		last = app.AddProcess(g, "", 40, et)
	}
	_ = last
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	cfg := DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	a, err := Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Schedulable {
		t.Fatal("120% utilization accepted")
	}
	if a.Delta <= 0 {
		t.Errorf("delta = %d, want positive overload measure", a.Delta)
	}
	if a.Converged {
		t.Log("note: overload converged (finite first-instance responses)")
	}
}

// TestPropertyAnalysisMonotoneInWCET: growing any WCET never shrinks
// the degree of schedulability (the cost landscape the optimizers walk
// is monotone in load).
func TestPropertyAnalysisMonotoneInWCET(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		sys, err := gen.Generate(gen.Spec{Seed: seed, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6, ProcsPerGraph: 6})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		app, arch := sys.Application, sys.Architecture
		cfg := DefaultConfig(app, arch)
		if err := cfg.Normalize(app); err != nil {
			t.Fatalf("Normalize: %v", err)
		}
		base, err := Analyze(app, arch, cfg)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		// Grow one ET process on the critical graph by 50%.
		var grown model.ProcID = -1
		for _, p := range app.Procs {
			if arch.Kind(p.Node) == model.EventTriggered {
				grown = p.ID
				break
			}
		}
		if grown < 0 {
			continue
		}
		old := app.Procs[grown].WCET
		app.Procs[grown].WCET = old + old/2 + 1
		more, err := Analyze(app, arch, cfg)
		app.Procs[grown].WCET = old
		if err != nil {
			t.Fatalf("Analyze(grown): %v", err)
		}
		if more.Delta < base.Delta {
			t.Errorf("seed %d: delta improved from %d to %d after growing %s",
				seed, base.Delta, more.Delta, app.Procs[grown].Name)
		}
	}
}
