package core

import (
	"encoding/binary"
	"sync"

	"repro/internal/gateway"
	"repro/internal/model"
	"repro/internal/rta"
	"repro/internal/tsched"
)

// Memo caches the intermediate results of AnalyzeWith across the many
// near-identical configurations that synthesis loops evaluate. One Memo
// serves exactly one (application, architecture) pair — the keys cover
// only the configuration-dependent inputs — and is safe for concurrent
// use by an evaluation pool.
//
// Every cache is keyed by an exact binary encoding of the stage's full
// input, so a hit returns a result that is bit-identical to recomputing
// it; stale reuse is impossible by construction and "invalidation" is
// implicit — a move that touches a cluster changes that cluster's key
// and misses, while untouched clusters keep hitting. The three stages
// are:
//
//   - the static TTC schedule (tsched.Build), keyed by round, pins and
//     the current ET->TT release offsets;
//   - the per-resource response-time fixed points (rta.AnalyzeStable),
//     keyed per CPU/bus by that resource's task vector — tasks on
//     different resources never interfere and the lingering-window
//     feedback stays within one resource, so the global fixed point
//     decomposes exactly (the one coupling, the all-unconverged marking
//     when the pass budget is exhausted, is reapplied by the caller);
//   - the gateway OutTTP queue analysis (gateway.AnalyzeOutTTP), keyed
//     by the message vector and the queue parameters.
//
// Misses of the RTA stage additionally warm-start the first-pass fixed
// point from the converged values of a previously analyzed task set
// that is identical except for pointwise smaller jitters (see
// rta.Options.Pass1Warm for the monotonicity argument).
type Memo struct {
	mu    sync.Mutex
	sched map[string]*tsched.Schedule
	rta   map[string]rtaMemoEntry
	shape map[string][]rtaShapeEntry
	queue map[string][]gateway.TTPResult
	stats MemoStats
}

// rtaMemoEntry is the cached outcome of one resource's fixed point.
type rtaMemoEntry struct {
	res    []rta.Result
	stable bool
}

// rtaShapeEntry seeds warm starts: the jitter vector a task-set shape
// was analyzed with and the first-pass interference delays it produced.
type rtaShapeEntry struct {
	j     []model.Time
	pass1 []model.Time
}

// MemoStats counts stage-cache traffic. Hits mean the stage was served
// without recomputation; WarmStarts counts RTA misses that reused a
// dominated parent's converged values as the iteration starting point.
type MemoStats struct {
	ScheduleHits, ScheduleMisses int64
	RTAHits, RTAMisses           int64
	RTAWarmStarts                int64
	QueueHits, QueueMisses       int64
}

// Hits sums the stage hits.
func (s MemoStats) Hits() int64 { return s.ScheduleHits + s.RTAHits + s.QueueHits }

// Misses sums the stage misses.
func (s MemoStats) Misses() int64 { return s.ScheduleMisses + s.RTAMisses + s.QueueMisses }

// memo cache bounds: when a map reaches its cap it is dropped whole —
// the caches only affect speed, never results, so the simplest policy
// wins (no LRU bookkeeping on the hot path).
const (
	memoSchedCap = 4096
	memoRTACap   = 16384
	memoShapeCap = 4096
	memoQueueCap = 8192
	// memoShapeRing bounds the warm-start seeds kept per task-set shape.
	memoShapeRing = 4
)

// NewMemo builds an empty stage cache for one (application,
// architecture) pair.
func NewMemo() *Memo {
	return &Memo{
		sched: make(map[string]*tsched.Schedule),
		rta:   make(map[string]rtaMemoEntry),
		shape: make(map[string][]rtaShapeEntry),
		queue: make(map[string][]gateway.TTPResult),
	}
}

// Stats returns a snapshot of the stage-cache counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Reset drops every cached stage result (the counters survive).
func (m *Memo) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sched = make(map[string]*tsched.Schedule)
	m.rta = make(map[string]rtaMemoEntry)
	m.shape = make(map[string][]rtaShapeEntry)
	m.queue = make(map[string][]gateway.TTPResult)
}

// DropRTAResource evicts the cached fixed points and warm-start seeds
// of one resource (a CPU's node id, or the CAN bus id = len(nodes)).
// Eviction is a memory-management hint from the move-aware layer
// (internal/delta); it can never change results because lookups are
// exact.
func (m *Memo) DropRTAResource(resource int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := string(binary.AppendVarint(nil, int64(resource)))
	for k := range m.rta {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(m.rta, k)
		}
	}
	for k := range m.shape {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(m.shape, k)
		}
	}
}

// DropSchedules evicts the static-schedule cache (slot moves change the
// round, so every schedule key a stale round produced is dead weight).
func (m *Memo) DropSchedules() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sched = make(map[string]*tsched.Schedule)
}

// DropQueues evicts the OutTTP queue cache.
func (m *Memo) DropQueues() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queue = make(map[string][]gateway.TTPResult)
}

// --- key encoding -----------------------------------------------------
//
// Keys are exact binary encodings of the stage inputs. Map-typed inputs
// are serialized in sorted key order; diagnostic-only fields (names)
// are excluded because results do not depend on them.

func appendTime(b []byte, t model.Time) []byte { return binary.AppendVarint(b, t) }
func appendInt(b []byte, v int) []byte         { return binary.AppendVarint(b, int64(v)) }

// schedKey encodes a tsched.Build input (round + pins + releases).
func schedKey(in *tsched.Input) string {
	b := make([]byte, 0, 64)
	b = appendInt(b, len(in.Round.Slots))
	for _, s := range in.Round.Slots {
		b = appendInt(b, int(s.Node))
		b = appendTime(b, s.Length)
	}
	b = appendTime(b, in.Round.Padding)
	b = appendProcTimes(b, in.ReleaseOffset)
	b = appendProcTimes(b, in.PinnedProc)
	b = appendEdgeTimes(b, in.PinnedEdge)
	return string(b)
}

func appendProcTimes(b []byte, m map[model.ProcID]model.Time) []byte {
	ids := make([]model.ProcID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sortProcIDs(ids)
	b = appendInt(b, len(ids))
	for _, id := range ids {
		b = appendInt(b, int(id))
		b = appendTime(b, m[id])
	}
	return b
}

func appendEdgeTimes(b []byte, m map[model.EdgeID]model.Time) []byte {
	ids := make([]model.EdgeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sortEdgeIDs(ids)
	b = appendInt(b, len(ids))
	for _, id := range ids {
		b = appendInt(b, int(id))
		b = appendTime(b, m[id])
	}
	return b
}

func sortProcIDs(ids []model.ProcID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func sortEdgeIDs(ids []model.EdgeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// rtaKeys encodes one resource's task vector: the exact key (all
// analysis inputs) and the J-blind shape key that indexes the
// warm-start seeds. Both lead with the resource id so DropRTAResource
// can evict by prefix.
func rtaKeys(resource int, tasks []rta.Task, horizon model.Time) (exact, shape string) {
	b := make([]byte, 0, 16+24*len(tasks))
	b = binary.AppendVarint(b, int64(resource))
	b = appendTime(b, horizon)
	b = appendInt(b, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		b = appendInt(b, t.Priority)
		b = appendTime(b, t.C)
		b = appendTime(b, t.T)
		b = appendTime(b, t.O)
		b = appendTime(b, t.B)
		b = appendInt(b, t.Trans)
		if t.NonPreemptive {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	shape = string(b)
	for i := range tasks {
		b = appendTime(b, tasks[i].J)
	}
	return string(b), shape
}

// queueKey encodes an OutTTP analysis input.
func queueKey(msgs []gateway.QueueMsg, p *gateway.TTPQueueParams) string {
	b := make([]byte, 0, 32+24*len(msgs))
	b = appendInt(b, len(p.Round.Slots))
	for _, s := range p.Round.Slots {
		b = appendInt(b, int(s.Node))
		b = appendTime(b, s.Length)
	}
	b = appendTime(b, p.Round.Padding)
	b = appendInt(b, p.GatewaySlot)
	b = appendTime(b, p.TickPerByte)
	b = appendTime(b, p.Horizon)
	b = appendInt(b, len(msgs))
	for i := range msgs {
		m := &msgs[i]
		b = appendInt(b, m.Size)
		b = appendTime(b, m.T)
		b = appendTime(b, m.O)
		b = appendTime(b, m.J)
		b = appendInt(b, m.Priority)
		b = appendInt(b, m.Trans)
	}
	return string(b)
}

// --- stage lookups ----------------------------------------------------

// buildSchedule serves tsched.Build through the schedule cache. Build
// errors are structural (invalid round, oversized message) and are not
// cached; they abort the analysis exactly like the uncached path.
func (m *Memo) buildSchedule(in tsched.Input) (*tsched.Schedule, error) {
	key := schedKey(&in)
	m.mu.Lock()
	if s, ok := m.sched[key]; ok {
		m.stats.ScheduleHits++
		m.mu.Unlock()
		return s, nil
	}
	m.stats.ScheduleMisses++
	m.mu.Unlock()
	s, err := tsched.Build(in)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if len(m.sched) >= memoSchedCap {
		m.sched = make(map[string]*tsched.Schedule)
	}
	m.sched[key] = s
	m.mu.Unlock()
	return s, nil
}

// analyzeRTA serves the response-time analysis through the per-resource
// cache. tasks must already carry their blocking factors; the returned
// slice is parallel to tasks and freshly allocated (callers may mark it
// unconverged in place). The bool result mirrors rta.AnalyzeStable's
// stability: false when any resource exhausted the pass budget, which
// the caller must translate into the all-unconverged marking exactly
// like the monolithic rta.Analyze would.
func (m *Memo) analyzeRTA(tasks []rta.Task, horizon model.Time) ([]rta.Result, bool, error) {
	// Group by resource, preserving in-group order. The group walk is in
	// first-appearance order, deterministic.
	order := make([]int, 0, 4)
	groups := make(map[int][]int)
	for i := range tasks {
		r := tasks[i].Resource
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([]rta.Result, len(tasks))
	stable := true
	for _, r := range order {
		idx := groups[r]
		group := make([]rta.Task, len(idx))
		for k, i := range idx {
			group[k] = tasks[i]
		}
		res, ok, err := m.analyzeResource(r, group, horizon)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			stable = false
		}
		for k, i := range idx {
			out[i] = res[k]
		}
	}
	if !stable {
		for i := range out {
			out[i].Converged = false
		}
	}
	return out, stable, nil
}

// analyzeResource runs (or recalls) one resource's fixed point.
func (m *Memo) analyzeResource(resource int, group []rta.Task, horizon model.Time) ([]rta.Result, bool, error) {
	exact, shape := rtaKeys(resource, group, horizon)
	m.mu.Lock()
	if e, ok := m.rta[exact]; ok {
		m.stats.RTAHits++
		m.mu.Unlock()
		return e.res, e.stable, nil
	}
	m.stats.RTAMisses++
	var warm []model.Time
	for _, se := range m.shape[shape] {
		if len(se.j) != len(group) {
			continue
		}
		dominated := true
		for i := range group {
			if se.j[i] > group[i].J {
				dominated = false
				break
			}
		}
		if dominated {
			warm = se.pass1
			m.stats.RTAWarmStarts++
			break
		}
	}
	m.mu.Unlock()

	res, stable, pass1, err := rta.AnalyzeStable(group, rta.Options{Horizon: horizon, Pass1Warm: warm})
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	if len(m.rta) >= memoRTACap {
		m.rta = make(map[string]rtaMemoEntry)
	}
	m.rta[exact] = rtaMemoEntry{res: res, stable: stable}
	if len(m.shape) >= memoShapeCap {
		m.shape = make(map[string][]rtaShapeEntry)
	}
	ring := m.shape[shape]
	if len(ring) >= memoShapeRing {
		ring = ring[1:]
	}
	j := make([]model.Time, len(group))
	for i := range group {
		j[i] = group[i].J
	}
	m.shape[shape] = append(ring, rtaShapeEntry{j: j, pass1: pass1})
	m.mu.Unlock()
	return res, stable, nil
}

// analyzeQueue serves gateway.AnalyzeOutTTP through the queue cache.
func (m *Memo) analyzeQueue(msgs []gateway.QueueMsg, p gateway.TTPQueueParams) ([]gateway.TTPResult, error) {
	key := queueKey(msgs, &p)
	m.mu.Lock()
	if r, ok := m.queue[key]; ok {
		m.stats.QueueHits++
		m.mu.Unlock()
		return r, nil
	}
	m.stats.QueueMisses++
	m.mu.Unlock()
	res, err := gateway.AnalyzeOutTTP(msgs, p)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if len(m.queue) >= memoQueueCap {
		m.queue = make(map[string][]gateway.TTPResult)
	}
	m.queue[key] = res
	m.mu.Unlock()
	return res, nil
}
