package store

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay pins the recovery contract of the journal decoder:
// on ANY byte sequence — truncated, bit-flipped, duplicated, or pure
// garbage — it never panics, recovers the longest valid record prefix,
// and reports (never silently drops) whatever follows.
func FuzzJournalReplay(f *testing.F) {
	var valid []byte
	for i := 1; i <= 3; i++ {
		var err error
		if valid, err = encodeFrame(valid, submitRec(i)); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid)                   // clean journal
	f.Add(valid[:len(valid)-5])    // torn tail mid-frame
	f.Add(valid[:3])               // torn header
	f.Add(append(valid, valid...)) // duplicated records
	f.Add(append(valid, 0xFF))     // trailing garbage
	f.Add([]byte{})                // empty journal
	f.Add([]byte("not a journal")) // pure garbage
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped) // bit flip mid-payload

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, reason := decodeFrames(data)
		if consumed < 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if reason == "" && consumed != int64(len(data)) {
			t.Fatalf("no rejection reason but only %d of %d bytes consumed", consumed, len(data))
		}
		if reason != "" && consumed == int64(len(data)) {
			t.Fatalf("rejection reason %q with the whole buffer consumed", reason)
		}
		// The recovered prefix must be self-consistent: decoding exactly
		// the consumed bytes yields the same records and no damage.
		again, consumed2, reason2 := decodeFrames(data[:consumed])
		if reason2 != "" || consumed2 != consumed || len(again) != len(recs) {
			t.Fatalf("prefix not self-consistent: %d/%d records, %d/%d bytes, reason %q",
				len(again), len(recs), consumed2, consumed, reason2)
		}
		// Re-encoding the recovered records must round-trip: recovery
		// yields real records, not partially-filled ones.
		var reenc []byte
		for _, rec := range recs {
			var err error
			if reenc, err = encodeFrame(reenc, rec); err != nil {
				t.Fatalf("recovered record does not re-encode: %v", err)
			}
		}
		if rt, _, _ := decodeFrames(reenc); len(rt) != len(recs) {
			t.Fatalf("re-encoded prefix decodes to %d records, want %d", len(rt), len(recs))
		}
		// The replay state machine must accept whatever the decoder
		// recovered without panicking, for any record contents.
		for _, js := range Reduce(recs) {
			if js.ID == "" {
				t.Fatal("Reduce produced a snapshot with no ID")
			}
			if !terminal(js.State) && js.State != StateQueued {
				t.Fatalf("Reduce left job %q in non-final, non-queued state %q", js.ID, js.State)
			}
		}
		_ = bytes.Equal(reenc, data[:consumed]) // encodings may differ (JSON field order); only record equality matters
	})
}
