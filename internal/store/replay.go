package store

import "encoding/json"

// JobSnapshot is the folded state of one job after replaying the
// journal: what the service needs to either re-register a terminal job
// (state, error, result key) or re-enqueue an unfinished one (the raw
// request). States use the journal-level constants.
type JobSnapshot struct {
	ID          string
	Kind        string
	Fingerprint string
	Key         string
	Strategy    string
	Request     json.RawMessage
	State       string
	Error       string
	// CancelRequested reports an OpCancel seen without a terminal
	// OpFinish; Reduce resolves such jobs to StateCanceled.
	CancelRequested bool
	// SubmitUnix and FinishUnix are the record timestamps (metadata).
	SubmitUnix, FinishUnix int64
}

// Errors stamped onto snapshots the replay state machine resolves
// itself rather than re-enqueueing.
const (
	// ErrCanceledBeforeRestart marks a job whose cancellation was
	// journaled but whose finish never was (the process died first).
	ErrCanceledBeforeRestart = "store: cancel requested before restart; not re-enqueued"
	// ErrPayloadMissing marks an unfinished job whose submit record
	// carries no request payload, so it cannot be re-run. The only
	// writer producing payload-free submits is compaction of terminal
	// jobs, so hitting this means the journal lost the finish record.
	ErrPayloadMissing = "store: request payload missing from journal; job cannot be re-run"
)

// Reduce folds journal records into per-job snapshots — the replay
// state machine. It is deliberately forgiving: records for unknown
// jobs (a cancel whose submit fell off a torn tail) are dropped,
// duplicate records merge field-wise with the last non-empty value
// winning, and a terminal state is sticky — later start/cancel records
// cannot resurrect a finished job. Those rules make replay idempotent
// under the record duplication a crashed compaction can leave behind.
//
// Snapshots come back in first-submit order. Unfinished jobs resolve
// to StateQueued (re-enqueue), unless a cancel was journaled
// (StateCanceled) or the request payload is gone (StateFailed).
func Reduce(recs []Record) []*JobSnapshot {
	byID := make(map[string]*JobSnapshot)
	var order []string
	for _, r := range recs {
		if r.Job == "" {
			continue
		}
		js, known := byID[r.Job]
		if !known {
			if r.Op != OpSubmit {
				continue // orphan record: its submit was lost to a torn tail
			}
			js = &JobSnapshot{ID: r.Job, State: StateQueued}
			byID[r.Job] = js
			order = append(order, r.Job)
		}
		switch r.Op {
		case OpSubmit:
			mergeSubmit(js, r)
		case OpStart:
			if !terminal(js.State) {
				js.State = StateRunning
			}
		case OpCancel:
			if !terminal(js.State) {
				js.CancelRequested = true
			}
		case OpFinish:
			if terminal(js.State) {
				continue // first finish wins; duplicates are compaction echoes
			}
			js.FinishUnix = r.Unix
			js.Error = r.Error
			if terminal(r.State) {
				js.State = r.State
			} else {
				// A finish record must name a terminal state; anything
				// else is a corrupt-but-CRC-valid record. Fail the job
				// rather than re-run work whose outcome was recorded.
				js.State = StateFailed
				if js.Error == "" {
					js.Error = "store: finish record with non-terminal state " + r.State
				}
			}
		}
	}
	out := make([]*JobSnapshot, 0, len(order))
	for _, id := range order {
		js := byID[id]
		if !terminal(js.State) {
			switch {
			case js.CancelRequested:
				js.State = StateCanceled
				js.Error = ErrCanceledBeforeRestart
			case len(js.Request) == 0:
				js.State = StateFailed
				js.Error = ErrPayloadMissing
			default:
				js.State = StateQueued // re-enqueue, even if it was running
			}
		}
		out = append(out, js)
	}
	return out
}

// mergeSubmit folds a submit record into a snapshot, last non-empty
// value winning. Compaction's slim re-submits (no payload) therefore
// never erase an original full submit that is still on disk.
func mergeSubmit(js *JobSnapshot, r Record) {
	if r.Kind != "" {
		js.Kind = r.Kind
	}
	if r.Fingerprint != "" {
		js.Fingerprint = r.Fingerprint
	}
	if r.Key != "" {
		js.Key = r.Key
	}
	if r.Strategy != "" {
		js.Strategy = r.Strategy
	}
	if len(r.Request) > 0 {
		js.Request = r.Request
	}
	if r.Unix != 0 {
		js.SubmitUnix = r.Unix
	}
	if terminal(r.State) && !terminal(js.State) {
		// Compaction emits terminal jobs as submit+finish pairs; accept
		// the state on the submit too so a crash between the two writes
		// (impossible for our writer, cheap to tolerate) stays safe.
		js.State = r.State
	}
}
