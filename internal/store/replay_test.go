package store

import (
	"encoding/json"
	"testing"
)

func TestReduceLifecycles(t *testing.T) {
	payload := json.RawMessage(`{"seed":1}`)
	recs := []Record{
		{Op: OpSubmit, Job: "a", Kind: "synthesize", Key: "ka", Request: payload, Unix: 10},
		{Op: OpSubmit, Job: "b", Kind: "explore", Key: "kb", Request: payload, Unix: 11},
		{Op: OpSubmit, Job: "c", Kind: "synthesize", Key: "kc", Request: payload, Unix: 12},
		{Op: OpSubmit, Job: "d", Kind: "synthesize", Key: "kd", Request: payload, Unix: 13},
		{Op: OpStart, Job: "a"},
		{Op: OpFinish, Job: "a", Key: "ka", State: StateDone, Unix: 20},
		{Op: OpStart, Job: "b"},  // running at crash: re-enqueue
		{Op: OpCancel, Job: "c"}, // canceled, finish never journaled
		// d stays queued.
	}
	snaps := Reduce(recs)
	if len(snaps) != 4 {
		t.Fatalf("Reduce produced %d snapshots, want 4", len(snaps))
	}
	byID := map[string]*JobSnapshot{}
	for i, js := range snaps {
		byID[js.ID] = js
		if want := string(rune('a' + i)); js.ID != want {
			t.Errorf("snapshot %d is %q, want submit order %q", i, js.ID, want)
		}
	}
	if a := byID["a"]; a.State != StateDone || a.FinishUnix != 20 || a.Key != "ka" {
		t.Errorf("finished job folded to %+v", a)
	}
	if b := byID["b"]; b.State != StateQueued {
		t.Errorf("running-at-crash job folded to %q, want %q", b.State, StateQueued)
	}
	if c := byID["c"]; c.State != StateCanceled || c.Error != ErrCanceledBeforeRestart {
		t.Errorf("cancel-without-finish folded to %+v", c)
	}
	if d := byID["d"]; d.State != StateQueued || d.SubmitUnix != 13 {
		t.Errorf("queued job folded to %+v", d)
	}
}

func TestReduceOrphanRecordsDropped(t *testing.T) {
	snaps := Reduce([]Record{
		{Op: OpStart, Job: "ghost"},
		{Op: OpFinish, Job: "ghost", State: StateDone},
		{Op: OpCancel, Job: ""},
	})
	if len(snaps) != 0 {
		t.Fatalf("orphan records produced %d snapshots, want 0", len(snaps))
	}
}

func TestReduceTerminalStateSticky(t *testing.T) {
	snaps := Reduce([]Record{
		{Op: OpSubmit, Job: "a", Request: json.RawMessage(`{}`)},
		{Op: OpFinish, Job: "a", State: StateDone},
		{Op: OpStart, Job: "a"},                      // late duplicate
		{Op: OpCancel, Job: "a"},                     // must not resurrect
		{Op: OpFinish, Job: "a", State: StateFailed}, // first finish wins
	})
	if len(snaps) != 1 || snaps[0].State != StateDone || snaps[0].CancelRequested {
		t.Fatalf("terminal state not sticky: %+v", snaps[0])
	}
}

func TestReduceCompactionDuplicatesIdempotent(t *testing.T) {
	payload := json.RawMessage(`{"seed":9}`)
	original := []Record{
		{Op: OpSubmit, Job: "a", Kind: "synthesize", Key: "ka", Strategy: "OS", Request: payload, Unix: 10},
		{Op: OpFinish, Job: "a", Key: "ka", State: StateDone, Unix: 20},
		{Op: OpSubmit, Job: "b", Kind: "synthesize", Key: "kb", Request: payload, Unix: 11},
	}
	// A crashed compaction can leave the originals AND the compacted
	// copies (slim submit without payload for terminal jobs): replay
	// must fold both to the same state as the originals alone.
	compacted := []Record{
		{Op: OpSubmit, Job: "a", Kind: "synthesize", Key: "ka", Strategy: "OS", Unix: 30},
		{Op: OpFinish, Job: "a", Key: "ka", State: StateDone, Unix: 30},
		{Op: OpSubmit, Job: "b", Kind: "synthesize", Key: "kb", Request: payload, Unix: 30},
	}
	want := Reduce(original)
	got := Reduce(append(append([]Record{}, original...), compacted...))
	if len(got) != len(want) {
		t.Fatalf("duplicated journal folded to %d snapshots, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].State != want[i].State || got[i].Key != want[i].Key {
			t.Errorf("snapshot %d: got %+v, want %+v", i, got[i], want[i])
		}
		if string(got[i].Request) != string(want[i].Request) {
			t.Errorf("snapshot %d: slim duplicate erased the payload: %q", i, got[i].Request)
		}
	}
}

func TestReduceUnfinishedWithoutPayloadFails(t *testing.T) {
	snaps := Reduce([]Record{
		{Op: OpSubmit, Job: "a", Key: "ka"}, // no Request
	})
	if len(snaps) != 1 || snaps[0].State != StateFailed || snaps[0].Error != ErrPayloadMissing {
		t.Fatalf("payload-free unfinished job folded to %+v", snaps[0])
	}
}

func TestReduceNonTerminalFinishFails(t *testing.T) {
	snaps := Reduce([]Record{
		{Op: OpSubmit, Job: "a", Request: json.RawMessage(`{}`)},
		{Op: OpFinish, Job: "a", State: "running"},
	})
	if len(snaps) != 1 || snaps[0].State != StateFailed || snaps[0].Error == "" {
		t.Fatalf("corrupt finish state folded to %+v", snaps[0])
	}
}
