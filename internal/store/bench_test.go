package store

import (
	"fmt"
	"testing"
)

// BenchmarkJournalAppend measures the durable append path (frame,
// write, fsync) — the per-transition overhead a store adds to every
// job state change.
func BenchmarkJournalAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Clock: newFakeClock()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := submitRec(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Job = fmt.Sprintf("j%06d-deadbeef", i)
		if err := s.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.AppendBytes > 0 {
		b.ReportMetric(float64(st.AppendBytes)/float64(b.N), "bytes/record")
	}
}

// BenchmarkJournalReplay measures cold-start recovery of a 1000-record
// journal — the startup latency a crash-restarted service pays before
// it can accept traffic.
func BenchmarkJournalReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{Clock: newFakeClock()})
	if err != nil {
		b.Fatal(err)
	}
	const records = 1000
	for i := 0; i < records; i++ {
		rec := submitRec(i)
		if err := s.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{Clock: newFakeClock()})
		if err != nil {
			b.Fatal(err)
		}
		recs, _ := s.Replay()
		if len(recs) != records {
			b.Fatalf("replayed %d records, want %d", len(recs), records)
		}
		Reduce(recs)
		s.Close()
	}
}

// BenchmarkResultCacheHit measures a persistent result-store hit — the
// latency of serving a finished job's result from disk instead of
// recomputing it.
func BenchmarkResultCacheHit(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Clock: newFakeClock()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	key := "deadbeef.0011223344556677"
	result := make([]byte, 8<<10) // a realistic config+analysis payload
	for i := range result {
		result[i] = byte('a' + i%16)
	}
	result[0], result[len(result)-1] = '"', '"'
	if err := s.PutResult(key, result); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.GetResult(key); !ok {
			b.Fatal("persistent miss on a stored key")
		}
	}
}
