package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options tunes a FileStore. Zero values select the defaults.
type Options struct {
	// SegmentBytes rotates the active journal segment once it reaches
	// this size (default 4 MiB; floor 4 KiB). Smaller segments compact
	// more often; the value never affects replayed state.
	SegmentBytes int64
	// ResultTTL evicts persisted results older than this on lookup and
	// during compaction sweeps; zero keeps results forever.
	ResultTTL time.Duration
	// Clock supplies record timestamps and TTL decisions (default
	// SystemClock).
	Clock Clock
}

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SegmentBytes < 4<<10 {
		o.SegmentBytes = 4 << 10
	}
	if o.ResultTTL < 0 {
		o.ResultTTL = 0
	}
	if o.Clock == nil {
		o.Clock = SystemClock()
	}
}

// FileStore is the pure-Go, file-backed Store: journal segments under
// <dir>/journal, one result file per request key under <dir>/results.
// It assumes a single writing process (the service); recovery happens
// once, in Open.
type FileStore struct {
	dir  string
	opts Options

	mu         sync.Mutex
	closed     bool
	compacting bool
	active     *os.File
	activeIdx  int
	activeSize int64
	nextIdx    int
	segs       []segInfo // every on-disk segment, ascending index

	recs   []Record
	report ReplayReport

	appends, appendBytes          int64
	compactions                   int64
	stored, hits, misses, expired int64
}

type segInfo struct {
	idx  int
	size int64
}

const (
	segPrefix = "seg-"
	segSuffix = ".wal"
)

func segName(idx int) string { return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix) }

// Open recovers the journal under dir (creating the layout on first
// use): segments are replayed in order, the longest valid record
// prefix is kept, a torn tail on the final segment is truncated away,
// and corruption in an earlier segment stops replay there (later
// segments are reported dropped and reclaimed by the next compaction).
// Appends always start a fresh segment, so recovery never writes after
// damage.
func Open(dir string, opts Options) (*FileStore, error) {
	opts.normalize()
	s := &FileStore{dir: dir, opts: opts, nextIdx: 1}
	for _, sub := range []string{s.journalDir(), s.resultsDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	names, err := sortedNames(s.journalDir())
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	damaged := false
	for _, name := range names {
		path := filepath.Join(s.journalDir(), name)
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(path) // leftover of a compaction that never renamed
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &idx); err != nil || segName(idx) != name {
			continue // foreign file; leave it alone
		}
		if idx >= s.nextIdx {
			s.nextIdx = idx + 1
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: reading %s: %w", name, err)
		}
		if damaged {
			// An earlier segment lost records; replaying later segments
			// would reorder history. Keep the file for post-mortem until
			// compaction reclaims it.
			s.segs = append(s.segs, segInfo{idx: idx, size: int64(len(data))})
			s.report.SegmentsDropped++
			continue
		}
		recs, consumed, reason := decodeFrames(data)
		s.recs = append(s.recs, recs...)
		s.report.Segments++
		s.report.Records += len(recs)
		s.report.Bytes += consumed
		size := int64(len(data))
		if reason != "" {
			s.report.Torn = append(s.report.Torn, TornTail{
				Segment: name,
				Offset:  consumed,
				Dropped: size - consumed,
				Reason:  reason,
			})
			// Truncate the invalid suffix so the on-disk journal is
			// exactly the replayed prefix. Later segments (if any) hold
			// records written after the lost ones and are dropped above.
			if err := os.Truncate(path, consumed); err != nil {
				return nil, fmt.Errorf("store: truncating torn tail of %s: %w", name, err)
			}
			size = consumed
			damaged = true
		}
		s.segs = append(s.segs, segInfo{idx: idx, size: size})
	}
	return s, nil
}

func (s *FileStore) journalDir() string { return filepath.Join(s.dir, "journal") }
func (s *FileStore) resultsDir() string { return filepath.Join(s.dir, "results") }

// Replay returns the records recovered by Open, in append order.
func (s *FileStore) Replay() ([]Record, ReplayReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]Record, len(s.recs))
	copy(recs, s.recs)
	rep := s.report
	rep.Torn = append([]TornTail(nil), s.report.Torn...)
	return recs, rep
}

// Append durably appends one record: frame, write, fsync, then rotate
// the segment if it reached the size bound. An error means the record
// must be treated as unwritten.
func (s *FileStore) Append(rec Record) error {
	frame, err := encodeFrame(nil, rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	if s.active != nil && s.activeSize > 0 && s.activeSize+int64(len(frame)) > s.opts.SegmentBytes {
		s.sealActiveLocked()
	}
	if s.active == nil {
		f, err := os.OpenFile(filepath.Join(s.journalDir(), segName(s.nextIdx)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("store: opening segment: %w", err)
		}
		s.active = f
		s.activeIdx = s.nextIdx
		s.activeSize = 0
		s.nextIdx++
		s.segs = append(s.segs, segInfo{idx: s.activeIdx})
	}
	if _, err := s.active.Write(frame); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal: %w", err)
	}
	s.activeSize += int64(len(frame))
	for i := range s.segs {
		if s.segs[i].idx == s.activeIdx {
			s.segs[i].size = s.activeSize
		}
	}
	s.appends++
	s.appendBytes += int64(len(frame))
	return nil
}

// sealActiveLocked closes the active segment; the next append opens a
// fresh one. Callers hold s.mu.
func (s *FileStore) sealActiveLocked() {
	if s.active != nil {
		s.active.Close()
		s.active = nil
		s.activeSize = 0
	}
}

// Compact rewrites the journal down to the live records, two-phase so
// concurrent appends are never lost:
//
//  1. Under the lock: seal the active segment and reserve index C for
//     the compacted segment. Appends from here on go to segments > C.
//  2. Outside the lock: snapshot() collects the live records — it may
//     take service locks, and appends may interleave freely.
//  3. Under the lock: write the live records to seg-C.tmp, fsync,
//     rename to seg-C.wal (atomic), then delete the sealed segments
//     (< C) and sweep expired results.
//
// Every crash point replays to a superset of the live state: before
// the rename the old segments are intact; after it, stale old records
// are overridden by the compacted copies under Reduce's merge rules;
// records appended during the snapshot live in segments after C either
// way. Concurrent Compact calls coalesce (the second returns nil).
func (s *FileStore) Compact(snapshot func() []Record) error {
	s.mu.Lock()
	if s.closed || s.compacting {
		s.mu.Unlock()
		return nil
	}
	s.compacting = true
	s.sealActiveLocked()
	compactIdx := s.nextIdx
	s.nextIdx++
	s.mu.Unlock()

	finish := func(err error) error {
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
		return err
	}

	var buf []byte
	var err error
	for _, rec := range snapshot() {
		if buf, err = encodeFrame(buf, rec); err != nil {
			return finish(err)
		}
	}

	name := segName(compactIdx)
	tmp := filepath.Join(s.journalDir(), name+".tmp")
	if err := writeFileSync(tmp, buf); err != nil {
		return finish(fmt.Errorf("store: writing compacted segment: %w", err))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.compacting = false
	if s.closed {
		os.Remove(tmp)
		return fmt.Errorf("store: compact on closed store")
	}
	if err := os.Rename(tmp, filepath.Join(s.journalDir(), name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing compacted segment: %w", err)
	}
	live := []segInfo{{idx: compactIdx, size: int64(len(buf))}}
	for _, seg := range s.segs {
		if seg.idx > compactIdx { // appended while snapshotting
			live = append(live, seg)
			continue
		}
		os.Remove(filepath.Join(s.journalDir(), segName(seg.idx)))
	}
	s.segs = live
	s.compactions++
	s.sweepResultsLocked()
	return nil
}

// resultFile is the on-disk envelope of one persisted result.
type resultFile struct {
	Key    string          `json:"key"`
	Unix   int64           `json:"unix"`
	Result json.RawMessage `json:"result"`
}

// PutResult persists the canonical result bytes for a request key
// (write-to-temp, fsync, atomic rename).
func (s *FileStore) PutResult(key string, result []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid result key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: put on closed store")
	}
	blob, err := json.Marshal(resultFile{Key: key, Unix: s.opts.Clock.Now().Unix(), Result: result})
	if err != nil {
		return fmt.Errorf("store: encoding result: %w", err)
	}
	path := filepath.Join(s.resultsDir(), key+".json")
	if err := writeFileSync(path+".tmp", blob); err != nil {
		return fmt.Errorf("store: writing result: %w", err)
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		os.Remove(path + ".tmp")
		return fmt.Errorf("store: installing result: %w", err)
	}
	s.stored++
	return nil
}

// GetResult returns the unexpired result bytes for a key. Expired
// entries are evicted on the way out; unreadable or foreign files are
// misses, never errors — the caller recomputes and overwrites.
func (s *FileStore) GetResult(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !validKey(key) {
		s.misses++
		return nil, false
	}
	path := filepath.Join(s.resultsDir(), key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses++
		return nil, false
	}
	var rf resultFile
	if err := json.Unmarshal(data, &rf); err != nil || len(rf.Result) == 0 {
		s.misses++
		return nil, false
	}
	if s.expiredLocked(rf.Unix) {
		os.Remove(path)
		s.expired++
		s.misses++
		return nil, false
	}
	s.hits++
	return rf.Result, true
}

// expiredLocked applies the TTL to a stored-at timestamp.
func (s *FileStore) expiredLocked(unix int64) bool {
	if s.opts.ResultTTL <= 0 {
		return false
	}
	return s.opts.Clock.Now().Sub(time.Unix(unix, 0)) > s.opts.ResultTTL
}

// sweepResultsLocked deletes every expired result file, so the result
// store's disk footprint is bounded by the TTL even for keys that are
// never looked up again. Runs under s.mu during compaction.
func (s *FileStore) sweepResultsLocked() {
	if s.opts.ResultTTL <= 0 {
		return
	}
	names, err := sortedNames(s.resultsDir())
	if err != nil {
		return
	}
	for _, name := range names {
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(s.resultsDir(), name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var rf resultFile
		if err := json.Unmarshal(data, &rf); err != nil {
			continue
		}
		if s.expiredLocked(rf.Unix) {
			if os.Remove(path) == nil {
				s.expired++
			}
		}
	}
}

// Stats snapshots the durability counters.
func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:         len(s.segs),
		Appends:          s.appends,
		AppendBytes:      s.appendBytes,
		ReplayedRecords:  s.report.Records,
		TornTails:        len(s.report.Torn),
		SegmentsDropped:  s.report.SegmentsDropped,
		Compactions:      s.compactions,
		ResultsStored:    s.stored,
		PersistentHits:   s.hits,
		PersistentMisses: s.misses,
		ResultsExpired:   s.expired,
	}
	for _, seg := range s.segs {
		st.JournalBytes += seg.size
	}
	return st
}

// Close seals the journal; further mutations fail. Idempotent.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealActiveLocked()
	s.closed = true
	return nil
}

// validKey admits fingerprint-derived keys (hex plus the '.' option
// digest separator) and refuses anything that could escape the results
// directory.
func validKey(key string) bool {
	if key == "" || len(key) > 300 {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '_':
		default:
			return false
		}
	}
	return !strings.HasPrefix(key, ".")
}

// writeFileSync writes data and fsyncs before closing, so a following
// rename installs fully-durable content.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sortedNames lists a directory deterministically.
func sortedNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
