package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic test clock; tests advance it explicitly.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func mustOpen(t *testing.T, dir string, opts Options) *FileStore {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submitRec(i int) Record {
	return Record{
		Op:          OpSubmit,
		Job:         fmt.Sprintf("j%06d-deadbeef", i),
		Kind:        "synthesize",
		Fingerprint: "deadbeef",
		Key:         "deadbeef.0011223344556677",
		Strategy:    "OS",
		Request:     json.RawMessage(`{"seed":7}`),
		Unix:        1_700_000_000,
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Clock: newFakeClock()})
	const n = 25
	for i := 1; i <= n; i++ {
		if err := s.Append(submitRec(i)); err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{Clock: newFakeClock()})
	recs, rep := s2.Replay()
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	if len(rep.Torn) != 0 || rep.SegmentsDropped != 0 {
		t.Fatalf("clean journal reported damage: %+v", rep)
	}
	for i, rec := range recs {
		want := submitRec(i + 1)
		if rec.Job != want.Job || rec.Op != want.Op || !bytes.Equal(rec.Request, want.Request) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
}

func TestFileStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// The floor is 4KiB; each submit record frame is ~150 bytes, so a
	// few dozen appends must rotate at least once.
	s := mustOpen(t, dir, Options{SegmentBytes: 1, Clock: newFakeClock()})
	for i := 1; i <= 100; i++ {
		if err := s.Append(submitRec(i)); err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("100 appends at the 4KiB floor produced %d segments, want >= 2", st.Segments)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{Clock: newFakeClock()})
	recs, rep := s2.Replay()
	if len(recs) != 100 {
		t.Fatalf("replayed %d records across segments, want 100", len(recs))
	}
	if rep.Segments != st.Segments {
		t.Fatalf("replay saw %d segments, stats saw %d", rep.Segments, st.Segments)
	}
}

func TestFileStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Clock: newFakeClock()})
	for i := 1; i <= 3; i++ {
		if err := s.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a torn final write: append half a frame to the segment.
	seg := filepath.Join(dir, "journal", segName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	full, _ := os.Stat(seg)

	s2 := mustOpen(t, dir, Options{Clock: newFakeClock()})
	recs, rep := s2.Replay()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want the 3 before the torn tail", len(recs))
	}
	if len(rep.Torn) != 1 {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	if torn := rep.Torn[0]; torn.Dropped != 3 || torn.Offset != full.Size()-3 {
		t.Fatalf("torn tail = %+v, want 3 bytes dropped at %d", torn, full.Size()-3)
	}
	if fi, _ := os.Stat(seg); fi.Size() != full.Size()-3 {
		t.Fatalf("torn tail not truncated: %d bytes on disk, want %d", fi.Size(), full.Size()-3)
	}
	if st := s2.Stats(); st.TornTails != 1 {
		t.Fatalf("Stats().TornTails = %d, want 1", st.TornTails)
	}
}

func TestFileStoreMidJournalCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 1, Clock: newFakeClock()})
	for i := 1; i <= 100; i++ {
		if err := s.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	segments := s.Stats().Segments
	if segments < 3 {
		t.Fatalf("need >= 3 segments for this test, got %d", segments)
	}
	s.Close()

	// Flip a payload byte in the middle of the FIRST segment: replay
	// must stop there and drop every later segment rather than reorder
	// history around the lost records.
	seg := filepath.Join(dir, "journal", segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{Clock: newFakeClock()})
	recs, rep := s2.Replay()
	if len(recs) >= 100 || len(recs) == 0 {
		t.Fatalf("replayed %d records, want a non-empty strict prefix of 100", len(recs))
	}
	if len(rep.Torn) != 1 {
		t.Fatalf("corruption not reported: %+v", rep)
	}
	if rep.SegmentsDropped != segments-1 {
		t.Fatalf("SegmentsDropped = %d, want %d", rep.SegmentsDropped, segments-1)
	}
	for i, rec := range recs {
		if want := submitRec(i + 1); rec.Job != want.Job {
			t.Fatalf("replayed record %d = %q, want the original prefix order %q", i, rec.Job, want.Job)
		}
	}
}

func TestFileStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 1, Clock: newFakeClock()})
	for i := 1; i <= 100; i++ {
		if err := s.Append(submitRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.Segments < 2 {
		t.Fatalf("precondition: want multiple segments, got %d", before.Segments)
	}

	// Compact down to two live records; appends racing the snapshot
	// must survive in a later segment.
	live := []Record{submitRec(1), submitRec(2)}
	var raced Record
	err := s.Compact(func() []Record {
		raced = submitRec(101)
		if err := s.Append(raced); err != nil {
			t.Errorf("append during compaction snapshot: %v", err)
		}
		return live
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Segments > 2 {
		t.Fatalf("post-compaction segments = %d, want <= 2 (compacted + racing append)", after.Segments)
	}
	if after.JournalBytes >= before.JournalBytes {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", before.JournalBytes, after.JournalBytes)
	}
	if after.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", after.Compactions)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{Clock: newFakeClock()})
	recs, _ := s2.Replay()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after compaction, want 2 live + 1 raced", len(recs))
	}
	if recs[2].Job != raced.Job {
		t.Fatalf("racing append lost: last record is %q, want %q", recs[2].Job, raced.Job)
	}
}

func TestFileStoreCrashedCompactionLeftoverTmp(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Clock: newFakeClock()})
	if err := s.Append(submitRec(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A compaction that died before its rename leaves a .tmp file; Open
	// must discard it and keep the real segments.
	tmp := filepath.Join(dir, "journal", segName(9)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{Clock: newFakeClock()})
	recs, rep := s2.Replay()
	if len(recs) != 1 || len(rep.Torn) != 0 {
		t.Fatalf("replay after leftover tmp: %d records, report %+v", len(recs), rep)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp file not removed: %v", err)
	}
}

func TestFileStoreResultTTL(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s := mustOpen(t, dir, Options{ResultTTL: time.Hour, Clock: clk})
	key := "deadbeef.0011223344556677"
	if err := s.PutResult(key, []byte(`{"evaluations":42}`)); err != nil {
		t.Fatalf("PutResult: %v", err)
	}
	if got, ok := s.GetResult(key); !ok || string(got) != `{"evaluations":42}` {
		t.Fatalf("GetResult before expiry = %q, %v", got, ok)
	}
	clk.advance(2 * time.Hour)
	if _, ok := s.GetResult(key); ok {
		t.Fatal("GetResult returned an expired result")
	}
	if _, err := os.Stat(filepath.Join(dir, "results", key+".json")); !os.IsNotExist(err) {
		t.Fatal("expired result file not evicted on lookup")
	}
	st := s.Stats()
	if st.ResultsStored != 1 || st.PersistentHits != 1 || st.ResultsExpired != 1 {
		t.Fatalf("TTL counters = %+v", st)
	}
}

func TestFileStoreCompactionSweepsExpiredResults(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s := mustOpen(t, dir, Options{ResultTTL: time.Hour, Clock: clk})
	if err := s.PutResult("aa.bb", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Hour)
	if err := s.PutResult("cc.dd", []byte(`2`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(func() []Record { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "aa.bb.json")); !os.IsNotExist(err) {
		t.Fatal("compaction sweep kept an expired result")
	}
	if _, ok := s.GetResult("cc.dd"); !ok {
		t.Fatal("compaction sweep evicted a live result")
	}
}

func TestFileStoreResultSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Clock: newFakeClock()})
	if err := s.PutResult("aa.bb", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{Clock: newFakeClock()})
	if got, ok := s2.GetResult("aa.bb"); !ok || string(got) != `{"x":1}` {
		t.Fatalf("GetResult after reopen = %q, %v", got, ok)
	}
}

func TestFileStoreClosedOperationsFail(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Clock: newFakeClock()})
	s.Close()
	s.Close() // idempotent
	if err := s.Append(submitRec(1)); err == nil {
		t.Fatal("Append on closed store succeeded")
	}
	if err := s.PutResult("aa.bb", []byte(`1`)); err == nil {
		t.Fatal("PutResult on closed store succeeded")
	}
	if _, ok := s.GetResult("aa.bb"); ok {
		t.Fatal("GetResult on closed store succeeded")
	}
}

func TestValidKey(t *testing.T) {
	good := []string{"deadbeef.0011223344556677", "A-b_c.9", "x"}
	for _, k := range good {
		if !validKey(k) {
			t.Errorf("validKey(%q) = false, want true", k)
		}
	}
	bad := []string{"", ".hidden", "a/b", "a\\b", "..", "a b", string(make([]byte, 301))}
	for _, k := range bad {
		if validKey(k) {
			t.Errorf("validKey(%q) = true, want false", k)
		}
	}
}

func TestFileStoreForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Clock: newFakeClock()})
	if err := s.Append(submitRec(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	foreign := filepath.Join(dir, "journal", "README.txt")
	if err := os.WriteFile(foreign, []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{Clock: newFakeClock()})
	if recs, rep := s2.Replay(); len(recs) != 1 || len(rep.Torn) != 0 {
		t.Fatalf("foreign file disturbed replay: %d records, %+v", len(recs), rep)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file was removed: %v", err)
	}
}
