package store

import "time"

// Clock abstracts wall-clock reads (journal record timestamps, result
// TTL expiry) so every consumer of the durability layer can run on a
// fake clock in tests. The service and the stores share one Clock; the
// only place the real time package is consulted is SystemClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }

// SystemClock returns the real wall clock. This constructor is the one
// sanctioned wall-clock seam of the durability layer: timestamps only
// decorate journal records and drive TTL eviction, they never feed a
// synthesis result, so determinism of replayed jobs is unaffected.
func SystemClock() Clock {
	//mcs:allow wallclock the single clock seam of the durability layer; timestamps drive TTL eviction and record metadata, never synthesis results
	return ClockFunc(time.Now)
}
