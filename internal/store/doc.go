// Package store is the durability layer under the synthesis service:
// an append-only job journal (a write-ahead log of submit/start/cancel/
// finish records) plus a persistent, TTL'd result store keyed by the
// canonical system fingerprint, so a restarted mcs-serve re-runs the
// jobs it had accepted and serves already-computed results byte-
// identically to a cold run.
//
// The package deliberately knows nothing about the service's job types:
// records carry opaque strings (kind, state, strategy) and raw request
// payloads, so the journal grammar is stable against service-side
// refactors and the Store interface can later be backed by an external
// broker instead of the file-backed default.
//
// # Journal
//
// A journal is a directory of numbered segment files. Each record is a
// JSON-encoded Record framed as
//
//	[4-byte little-endian payload length]
//	[4-byte little-endian CRC-32C of the payload]
//	[payload]
//
// Appends are fsynced before they are acknowledged, the active segment
// rotates once it exceeds the configured size, and compaction rewrites
// the sealed segments down to the live job state (see FileStore.Compact
// for the crash-safety argument). Recovery keeps the longest valid
// record prefix: a torn or corrupt frame stops replay at that point and
// is reported — never silently dropped — through ReplayReport and
// Stats.
//
// # Result store
//
// Results are opaque byte blobs keyed by the request key (system
// fingerprint + option digest, computed by the service). A result older
// than the configured TTL is evicted on lookup and during compaction
// sweeps; TTL zero keeps results forever. Time is read through the
// injected Clock so tests drive expiry on a fake clock; the system
// clock lives behind the single SystemClock constructor.
package store
