package store

import "encoding/json"

// Op enumerates the journal record kinds — the verbs of the job
// lifecycle WAL.
type Op string

const (
	// OpSubmit records an accepted job: identity, request key and the
	// raw request payload needed to re-run it after a crash. Compaction
	// re-emits terminal jobs' submits without the payload.
	OpSubmit Op = "submit"
	// OpStart records that a runner picked the job up. Replay treats
	// started-but-unfinished jobs exactly like queued ones: the work is
	// deterministic, so re-running from scratch is safe.
	OpStart Op = "start"
	// OpCancel records a client cancellation request. A job with a
	// cancel but no finish (the process died first) is not re-enqueued.
	OpCancel Op = "cancel"
	// OpFinish records the terminal state; done results live in the
	// result store under the record's request key.
	OpFinish Op = "finish"
)

// Journal-level job states, shared with the service's wire states by
// value so records translate without a mapping table.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
	StateFailed   = "failed"
)

// terminal reports whether a journal state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateCanceled || state == StateFailed
}

// Record is one journal entry. All fields beyond Op and Job are
// optional per op; unknown fields in persisted records are ignored so
// the grammar can grow without a migration.
type Record struct {
	Op  Op     `json:"op"`
	Job string `json:"job"`
	// Kind, Fingerprint, Key and Strategy describe the job on OpSubmit
	// (Kind/Strategy as opaque service strings; Key is the persistent
	// result cache key).
	Kind        string `json:"kind,omitempty"`
	Fingerprint string `json:"fp,omitempty"`
	Key         string `json:"key,omitempty"`
	Strategy    string `json:"strategy,omitempty"`
	// Request is the raw wire request of OpSubmit, replayed verbatim to
	// re-run the job. Compaction drops it for terminal jobs.
	Request json.RawMessage `json:"request,omitempty"`
	// State and Error carry the outcome of OpFinish.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Unix is the append timestamp (metadata only — replay never
	// branches on it, so fake clocks and clock skew are harmless).
	Unix int64 `json:"unix,omitempty"`
}

// Store is the pluggable persistence seam of the service: the file-
// backed FileStore is the default implementation; an external broker
// or database can substitute without touching the service.
//
// The service guarantees it is the only writer: records are appended
// before the matching state transition is acknowledged on the wire.
type Store interface {
	// Append durably appends one journal record. An error means the
	// record is not guaranteed on disk and the caller must not
	// acknowledge the transition.
	Append(rec Record) error
	// Replay returns the records recovered at open time, in append
	// order, with the recovery report (torn tails, dropped segments).
	// It never touches the disk: recovery happens once, at open.
	Replay() ([]Record, ReplayReport)
	// Compact rewrites the journal down to the live records. The
	// snapshot callback runs after the active segment is sealed, so
	// records appended concurrently are never lost (see FileStore).
	Compact(snapshot func() []Record) error
	// PutResult persists the canonical result bytes for a request key.
	PutResult(key string, result []byte) error
	// GetResult returns the unexpired result bytes for a key; ok is
	// false on a miss, an expired entry, or an unreadable file.
	GetResult(key string) (result []byte, ok bool)
	// Stats snapshots the durability counters for health endpoints.
	Stats() Stats
	// Close releases the journal; further appends fail. Idempotent.
	Close() error
}

// TornTail describes an invalid journal suffix found during recovery:
// a torn final write, a corrupt frame, or a frame whose payload is not
// a record. Everything before Offset was recovered; Dropped bytes from
// Offset on were not.
type TornTail struct {
	Segment string `json:"segment"`
	Offset  int64  `json:"offset"`
	Dropped int64  `json:"dropped"`
	Reason  string `json:"reason"`
}

// ReplayReport summarizes journal recovery. Torn is non-empty whenever
// bytes were dropped — recovery reports damage, it never hides it.
type ReplayReport struct {
	Segments int        `json:"segments"`
	Records  int        `json:"records"`
	Bytes    int64      `json:"bytes"`
	Torn     []TornTail `json:"torn,omitempty"`
	// SegmentsDropped counts whole segments skipped because an earlier
	// segment was corrupt mid-file: replaying records that were written
	// after a lost record would reorder history, so replay stops at the
	// longest valid prefix of the whole journal.
	SegmentsDropped int `json:"segmentsDropped,omitempty"`
}

// Stats is a point-in-time snapshot of the durability counters,
// embedded into the service's /healthz stats.
type Stats struct {
	// Segments and JournalBytes describe the current journal footprint.
	Segments     int   `json:"segments"`
	JournalBytes int64 `json:"journalBytes"`
	// Appends and AppendBytes count records written since open.
	Appends     int64 `json:"appends"`
	AppendBytes int64 `json:"appendBytes"`
	// ReplayedRecords/TornTails/SegmentsDropped mirror the open-time
	// recovery report.
	ReplayedRecords int `json:"replayedRecords"`
	TornTails       int `json:"tornTails"`
	SegmentsDropped int `json:"segmentsDropped,omitempty"`
	// Compactions counts journal rewrites since open.
	Compactions int64 `json:"compactions"`
	// Result-store counters: stored results, cache hits and misses,
	// TTL evictions.
	ResultsStored    int64 `json:"resultsStored"`
	PersistentHits   int64 `json:"persistentHits"`
	PersistentMisses int64 `json:"persistentMisses"`
	ResultsExpired   int64 `json:"resultsExpired"`
}
