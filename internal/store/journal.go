package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Frame layout: 4-byte little-endian payload length, 4-byte
// little-endian CRC-32C of the payload, then the payload (a JSON-
// encoded Record). The CRC covers only the payload; a corrupt length
// manifests as an impossible size or a CRC mismatch one frame later,
// either of which stops recovery at this offset.
const frameHeader = 8

// maxRecordBytes caps a single record (matching the service's request
// body cap, the largest thing a submit record carries). A length
// prefix beyond it is treated as corruption, so a flipped length bit
// can never drive a multi-gigabyte allocation during recovery.
const maxRecordBytes = 64 << 20

// castagnoli is the CRC-32C table (the polynomial used by ext4, iSCSI
// and most storage formats, with hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame appends the framed encoding of rec to buf.
func encodeFrame(buf []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("store: encoding record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return buf, fmt.Errorf("store: record of %d bytes exceeds the %d byte frame cap", len(payload), maxRecordBytes)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// decodeFrames recovers the longest valid prefix of framed records
// from data. It returns the decoded records, the number of bytes
// consumed by valid frames, and — when consumed < len(data) — the
// reason the remaining suffix was rejected (empty reason means the
// whole buffer decoded cleanly). It never panics on any input; the
// FuzzJournalReplay target pins that.
func decodeFrames(data []byte) (recs []Record, consumed int64, reason string) {
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return recs, off, fmt.Sprintf("torn frame header: %d trailing bytes", len(rest))
		}
		size := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if size > maxRecordBytes {
			return recs, off, fmt.Sprintf("frame length %d exceeds the %d byte cap", size, maxRecordBytes)
		}
		if int64(len(rest)) < frameHeader+size {
			return recs, off, fmt.Sprintf("torn frame payload: %d of %d bytes", int64(len(rest))-frameHeader, size)
		}
		payload := rest[frameHeader : frameHeader+size]
		if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(rest[4:8]); got != want {
			return recs, off, fmt.Sprintf("CRC mismatch: %08x != %08x", got, want)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, fmt.Sprintf("frame payload is not a record: %v", err)
		}
		recs = append(recs, rec)
		off += frameHeader + size
	}
	return recs, off, ""
}
