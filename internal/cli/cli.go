// Package cli holds the behavior every mcs-* command shares: the
// SIGINT/SIGTERM cancellation context, the classification of a
// cancellable run's outcome (best-so-far vs empty-handed interrupt vs
// genuine failure), the uniform fatal-error exit, and the -in/-cruise
// input convention. Before this package each command carried its own
// copy of the interrupt plumbing, and the copies had already drifted
// (mcs-synth once exited 0 on an empty-handed interrupt where mcs-sim
// exited 130).
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
)

// CodeInterrupted is the conventional exit code of a run terminated by
// SIGINT (128 + 2), used by every command after reporting best-so-far
// results.
const CodeInterrupted = 130

// Context returns a context cancelled on SIGINT or SIGTERM, so a
// Ctrl-C stops Solver operations at the next evaluation granule while
// the command still reports the best result found so far. The stop
// function releases the signal registration.
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Canceled reports whether err is a context cancellation (the marker
// of an interrupted run, as opposed to a genuine failure).
func Canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Interrupted classifies the outcome of a cancellable run. It returns
// false when err is nil (the run completed). For an interrupt with a
// best-so-far result in hand it prints a "reporting the best result
// found so far" notice and returns true — the caller reports the
// result, then calls Exit. An empty-handed interrupt exits with
// CodeInterrupted; any other error is fatal (exit 1).
func Interrupted(tool string, err error, hasResult bool) bool {
	if err == nil {
		return false
	}
	if Canceled(err) {
		if hasResult {
			fmt.Fprintf(os.Stderr, "%s: interrupted — reporting the best result found so far\n", tool)
			return true
		}
		fmt.Fprintf(os.Stderr, "%s: interrupted before any configuration was evaluated\n", tool)
		os.Exit(CodeInterrupted)
	}
	Fatal(tool, err)
	return false // unreachable
}

// Exit terminates an interrupted command with CodeInterrupted, after
// the best-so-far results have been written.
func Exit() {
	os.Exit(CodeInterrupted)
}

// Fatal prints "tool: err" and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintln(os.Stderr, tool+":", err)
	os.Exit(1)
}

// LoadSystem resolves the -in/-cruise input convention shared by the
// synthesis commands: the built-in cruise-controller case study when
// cruise is set, otherwise the system JSON at path in.
func LoadSystem(in string, cruise bool) (*repro.System, error) {
	if cruise {
		return repro.CruiseController()
	}
	if in == "" {
		return nil, fmt.Errorf("need -in <file> or -cruise")
	}
	return repro.LoadSystem(in)
}
