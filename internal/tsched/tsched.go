// Package tsched builds the static cyclic schedule of the time-triggered
// cluster: start times (offsets) for the TT processes, the slot
// occurrences of the TTP messages, and the resulting MEDL. It implements
// the StaticScheduling step of the MultiClusterScheduling algorithm
// (Fig. 5 of the paper) with the list-scheduling approach of Eles et al.
// referenced as [5].
//
// The scheduler rolls each process graph out over the application
// hyper-period (one job per graph instance), orders ready jobs by
// earliest feasible start with partial-critical-path priority as the tie
// break, packs TTP messages into the next slot occurrence of the sender
// with free capacity, and honours two kinds of external constraints:
//
//   - ReleaseOffset: worst-case arrival offsets of messages coming from
//     the ETC (computed by the response-time analysis); a TT process must
//     not start before all its inputs are present (§4 of the paper).
//   - Pinned offsets: "not before" constraints used by the
//     OptimizeResources hill climber to move TT activities inside their
//     [ASAP, ALAP] intervals.
package tsched

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/ttp"
)

// Input bundles everything the static scheduler needs.
type Input struct {
	App  *model.Application
	Arch *model.Architecture
	// Round is the TDMA configuration; its period must divide the
	// application hyper-period (use Round.PadToDivide).
	Round ttp.Round
	// ReleaseOffset holds in-period earliest-start constraints for TT
	// processes, typically the worst-case arrival offsets of their
	// ET->TT input messages. Missing entries mean "no constraint".
	ReleaseOffset map[model.ProcID]model.Time
	// PinnedProc delays the start of a TT process to at least the given
	// in-period offset (OptimizeResources moves).
	PinnedProc map[model.ProcID]model.Time
	// PinnedEdge delays the bus transmission of a TTP message to at
	// least the given in-period offset.
	PinnedEdge map[model.EdgeID]model.Time
}

// Schedule is the static schedule of the TTC over one hyper-period.
type Schedule struct {
	Round ttp.Round
	// Hyper is the schedule table length (the application hyper-period).
	Hyper model.Time
	// ProcStart maps each TT process to its absolute start times, one
	// per graph instance within the hyper-period.
	ProcStart map[model.ProcID][]model.Time
	// EdgeArrival maps each TTP-leg edge to the absolute bus delivery
	// times (slot occurrence end), one per instance. For TT->ET edges
	// this is the arrival at the gateway MBI.
	EdgeArrival map[model.EdgeID][]model.Time
	// MEDL is the frame schedule. Entries beyond the cycle can appear
	// when the configuration is overloaded; WithinCycle reports it.
	MEDL ttp.MEDL
	// WithinCycle is true when every job and frame fits inside its
	// period window, i.e. the table really is cyclic. Overloaded
	// configurations still get a schedule (for cost evaluation) but are
	// not executable.
	WithinCycle bool
}

// Build runs the list scheduler and returns the schedule. It fails only
// on structural errors (invalid round, message larger than its slot);
// overload shows up as WithinCycle == false plus late start times, so
// that the optimization heuristics see a smooth cost landscape.
func Build(in Input) (*Schedule, error) {
	app, arch := in.App, in.Arch
	hyper, err := app.Hyperperiod()
	if err != nil {
		return nil, err
	}
	if err := in.Round.Validate(arch.SlotOwners()); err != nil {
		return nil, err
	}
	if p := in.Round.Period(); p <= 0 || hyper%p != 0 {
		return nil, fmt.Errorf("tsched: round period %d does not divide the hyper-period %d", in.Round.Period(), hyper)
	}
	lp, err := app.LongestPathToSink()
	if err != nil {
		return nil, err
	}

	s := &Schedule{
		Round:       in.Round,
		Hyper:       hyper,
		ProcStart:   make(map[model.ProcID][]model.Time),
		EdgeArrival: make(map[model.EdgeID][]model.Time),
		MEDL:        ttp.MEDL{Round: in.Round, Cycle: hyper},
		WithinCycle: true,
	}

	jobs := collectJobs(app, arch, hyper)
	if len(jobs) == 0 {
		return s, nil
	}
	// Scheduling state.
	cpuFree := make(map[model.NodeID]model.Time)
	slotUsed := make(map[[2]int]int) // (round occurrence, slot index) -> bytes
	finish := make(map[jobKey]model.Time)
	arrival := make(map[edgeKey]model.Time)
	pending := len(jobs)

	for pending > 0 {
		best := -1
		var bestStart model.Time
		for i := range jobs {
			j := &jobs[i]
			if j.done || !predsDone(app, arch, j, finish) {
				continue
			}
			start := jobStart(in, app, arch, j, finish, arrival, cpuFree)
			if best == -1 || start < bestStart ||
				(start == bestStart && betterTie(app, lp, &jobs[best], j)) {
				best = i
				bestStart = start
			}
		}
		if best == -1 {
			// Cannot happen on validated DAGs; guard against corruption.
			return nil, fmt.Errorf("tsched: no eligible job among %d pending", pending)
		}
		j := &jobs[best]
		j.done = true
		pending--
		proc := &app.Procs[j.proc]
		end := bestStart + proc.WCET
		finish[jobKey{j.proc, j.instance}] = end
		cpuFree[proc.Node] = end
		s.ProcStart[j.proc] = append(s.ProcStart[j.proc], bestStart)
		if end > j.release+app.PeriodOf(j.proc) {
			s.WithinCycle = false
		}
		// Transmit the outgoing TTP-leg messages right away, the most
		// critical destination first: messages become ready together
		// when the producer finishes, and the partial critical path of
		// the receiver decides who gets the earlier slot occurrence
		// (the message priority function of [5]).
		var out []model.EdgeID
		for _, e := range app.OutEdges(j.proc) {
			if app.RouteOf(e, arch).UsesTTP() {
				out = append(out, e)
			}
		}
		sort.SliceStable(out, func(a, b int) bool {
			la := lp[app.Edges[out[a]].Dst]
			lb := lp[app.Edges[out[b]].Dst]
			if la != lb {
				return la > lb
			}
			return out[a] < out[b]
		})
		for _, e := range out {
			if err := s.scheduleMessage(in, e, j.instance, end, slotUsed, arrival); err != nil {
				return nil, err
			}
		}
	}
	sortStarts(s)
	return s, nil
}

type jobKey struct {
	proc     model.ProcID
	instance int
}

type edgeKey struct {
	edge     model.EdgeID
	instance int
}

type job struct {
	proc     model.ProcID
	instance int
	release  model.Time // k * period
	done     bool
}

// collectJobs rolls the TT processes out over the hyper-period.
func collectJobs(app *model.Application, arch *model.Architecture, hyper model.Time) []job {
	var jobs []job
	for _, p := range app.Procs {
		if arch.Kind(p.Node) != model.TimeTriggered {
			continue
		}
		period := app.PeriodOf(p.ID)
		for k := 0; k < int(hyper/period); k++ {
			jobs = append(jobs, job{proc: p.ID, instance: k, release: model.Time(k) * period})
		}
	}
	return jobs
}

// predsDone reports whether every TT predecessor (and its message, if
// any) of the job is already scheduled. ET predecessors do not gate the
// schedule; their influence arrives through Input.ReleaseOffset.
func predsDone(app *model.Application, arch *model.Architecture, j *job, finish map[jobKey]model.Time) bool {
	for _, e := range app.InEdges(j.proc) {
		src := app.Edges[e].Src
		if arch.Kind(app.Procs[src].Node) != model.TimeTriggered {
			continue
		}
		if _, ok := finish[jobKey{src, j.instance}]; !ok {
			return false
		}
	}
	return true
}

// jobStart computes the earliest feasible start of the job given the
// current state.
func jobStart(in Input, app *model.Application, arch *model.Architecture, j *job,
	finish map[jobKey]model.Time, arrival map[edgeKey]model.Time, cpuFree map[model.NodeID]model.Time) model.Time {
	start := j.release
	if off, ok := in.ReleaseOffset[j.proc]; ok {
		start = max64(start, j.release+off)
	}
	if pin, ok := in.PinnedProc[j.proc]; ok {
		start = max64(start, j.release+pin)
	}
	for _, e := range app.InEdges(j.proc) {
		ed := &app.Edges[e]
		src := ed.Src
		if arch.Kind(app.Procs[src].Node) != model.TimeTriggered {
			continue // ET->TT: covered by ReleaseOffset
		}
		switch app.RouteOf(e, arch) {
		case model.RouteLocal:
			start = max64(start, finish[jobKey{src, j.instance}])
		case model.RouteTTP:
			start = max64(start, arrival[edgeKey{e, j.instance}])
		}
	}
	if free := cpuFree[app.Procs[j.proc].Node]; free > start {
		start = free
	}
	return start
}

// betterTie returns true when candidate b should replace a at equal
// start times: larger partial critical path first, then smaller process
// ID, then smaller instance.
func betterTie(app *model.Application, lp map[model.ProcID]model.Time, a, b *job) bool {
	la, lb := lp[a.proc], lp[b.proc]
	if la != lb {
		return lb > la
	}
	if a.proc != b.proc {
		return b.proc < a.proc
	}
	return b.instance < a.instance
}

// scheduleMessage packs instance k of edge e into the earliest slot
// occurrence of the sender's slot that starts at or after the ready time
// and has free capacity.
func (s *Schedule) scheduleMessage(in Input, e model.EdgeID, k int, ready model.Time,
	slotUsed map[[2]int]int, arrival map[edgeKey]model.Time) error {
	app, arch := in.App, in.Arch
	ed := &app.Edges[e]
	sender := app.Procs[ed.Src].Node
	slot := s.Round.SlotIndexOf(sender)
	if slot < 0 {
		return fmt.Errorf("tsched: node %d of message %q owns no TDMA slot", sender, ed.Name)
	}
	capacity := s.Round.Capacity(slot, arch.TTP.TickPerByte)
	if ed.Size > capacity {
		return fmt.Errorf("tsched: message %q (%d bytes) exceeds slot capacity %d of node %d", ed.Name, ed.Size, capacity, sender)
	}
	if pin, ok := in.PinnedEdge[e]; ok {
		ready = max64(ready, model.Time(k)*app.EdgePeriod(e)+pin)
	}
	occ := s.Round.NextOccurrence(slot, ready)
	for slotUsed[[2]int{occ, slot}]+ed.Size > capacity {
		occ++
	}
	slotUsed[[2]int{occ, slot}] += ed.Size
	start := s.Round.OccurrenceStart(slot, occ)
	end := start + s.Round.Slots[slot].Length
	arrival[edgeKey{e, k}] = end
	s.EdgeArrival[e] = append(s.EdgeArrival[e], end)
	s.MEDL.Entries = append(s.MEDL.Entries, ttp.MEDLEntry{
		Edge: e, Instance: k, Slot: slot, Round: occ, Bytes: ed.Size,
		Start: start, End: end,
	})
	if end > model.Time(k+1)*app.EdgePeriod(e) {
		s.WithinCycle = false
	}
	return nil
}

func sortStarts(s *Schedule) {
	for p := range s.ProcStart {
		sort.Slice(s.ProcStart[p], func(i, j int) bool { return s.ProcStart[p][i] < s.ProcStart[p][j] })
	}
	for e := range s.EdgeArrival {
		sort.Slice(s.EdgeArrival[e], func(i, j int) bool { return s.EdgeArrival[e][i] < s.EdgeArrival[e][j] })
	}
}

func max64(a, b model.Time) model.Time {
	if a > b {
		return a
	}
	return b
}
