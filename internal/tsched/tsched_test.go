package tsched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/ttp"
)

// fig4 builds the paper's Figure 4 system: N1 (TT), N2 (ET), gateway NG.
// G1: P1 -> {m1 -> P2, m2 -> P3}, P2 -> m3 -> P4. P1, P4 on N1; P2, P3
// on N2. Period 240, deadline 200.
func fig4(t *testing.T) (*model.Application, *model.Architecture, [4]model.ProcID, [3]model.EdgeID) {
	t.Helper()
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		Name: "fig4", TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 5,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("fig4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	for _, e := range []model.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return app, arch, [4]model.ProcID{p1, p2, p3, p4}, [3]model.EdgeID{m1, m2, m3}
}

// roundA is Figure 4(a): S_G first, then S_1, 20 ticks each.
func roundA(arch *model.Architecture) ttp.Round {
	return ttp.Round{Slots: []ttp.Slot{
		{Node: arch.Gateway, Length: 20},
		{Node: arch.TTNodes()[0], Length: 20},
	}}
}

// roundB is Figure 4(b): S_1 first.
func roundB(arch *model.Architecture) ttp.Round {
	return ttp.Round{Slots: []ttp.Slot{
		{Node: arch.TTNodes()[0], Length: 20},
		{Node: arch.Gateway, Length: 20},
	}}
}

func TestFig4aStaticSchedule(t *testing.T) {
	app, arch, p, m := fig4(t)
	s, err := Build(Input{App: app, Arch: arch, Round: roundA(arch)})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := s.ProcStart[p[0]]; len(got) != 1 || got[0] != 0 {
		t.Errorf("P1 starts = %v, want [0]", got)
	}
	// P1 finishes at 30; the next S_1 slot is [60, 80) in round 2, so m1
	// and m2 both arrive at the gateway MBI at 80 (the paper's trace).
	for _, e := range []model.EdgeID{m[0], m[1]} {
		if got := s.EdgeArrival[e]; len(got) != 1 || got[0] != 80 {
			t.Errorf("%s arrival = %v, want [80]", app.Edges[e].Name, got)
		}
	}
	// P4 has no TT predecessor constraint here (its input comes from the
	// ETC): it backfills right after P1 on N1.
	if got := s.ProcStart[p[3]]; len(got) != 1 || got[0] != 30 {
		t.Errorf("P4 starts = %v, want [30] without release constraints", got)
	}
	if !s.WithinCycle {
		t.Error("schedule must fit the cycle")
	}
	if err := s.MEDL.Validate(arch.TTP.TickPerByte); err != nil {
		t.Errorf("MEDL invalid: %v", err)
	}
}

func TestFig4bSlotOrderChangesArrival(t *testing.T) {
	app, arch, _, m := fig4(t)
	s, err := Build(Input{App: app, Arch: arch, Round: roundB(arch)})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// With S_1 first, the slot [40, 60) of round 2 carries m1 and m2:
	// 20 ticks earlier than configuration (a).
	for _, e := range []model.EdgeID{m[0], m[1]} {
		if got := s.EdgeArrival[e]; len(got) != 1 || got[0] != 60 {
			t.Errorf("%s arrival = %v, want [60]", app.Edges[e].Name, got)
		}
	}
}

func TestReleaseOffsetDelaysConsumer(t *testing.T) {
	app, arch, p, _ := fig4(t)
	s, err := Build(Input{
		App: app, Arch: arch, Round: roundA(arch),
		ReleaseOffset: map[model.ProcID]model.Time{p[3]: 180},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := s.ProcStart[p[3]]; len(got) != 1 || got[0] != 180 {
		t.Errorf("P4 starts = %v, want [180] (m3's worst arrival)", got)
	}
	if !s.WithinCycle {
		t.Error("fits: 180+30 <= 240")
	}
	// Push the release beyond the period window: still scheduled, but
	// flagged.
	s, err = Build(Input{
		App: app, Arch: arch, Round: roundA(arch),
		ReleaseOffset: map[model.ProcID]model.Time{p[3]: 220},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if s.WithinCycle {
		t.Error("220+30 > 240 must clear WithinCycle")
	}
}

func TestSlotCapacityOverflowSpillsToNextRound(t *testing.T) {
	app, arch, p, _ := fig4(t)
	// Third 8-byte message from P1: 24 bytes > 20-byte slot capacity.
	p5 := app.AddProcess(0, "P5", 20, arch.ETNodes()[0])
	m4 := app.AddEdge("m4", p[0], p5, 8)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	s, err := Build(Input{App: app, Arch: arch, Round: roundA(arch)})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	arrivals := []model.Time{s.EdgeArrival[0][0], s.EdgeArrival[1][0], s.EdgeArrival[m4][0]}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
	if arrivals[0] != 80 || arrivals[1] != 80 || arrivals[2] != 120 {
		t.Errorf("arrivals = %v, want [80 80 120]", arrivals)
	}
	if err := s.MEDL.Validate(arch.TTP.TickPerByte); err != nil {
		t.Errorf("MEDL invalid: %v", err)
	}
}

func TestMessageLargerThanSlotFails(t *testing.T) {
	app, arch, p, _ := fig4(t)
	p5 := app.AddProcess(0, "P5", 20, arch.ETNodes()[0])
	app.AddEdge("big", p[0], p5, 25)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if _, err := Build(Input{App: app, Arch: arch, Round: roundA(arch)}); err == nil {
		t.Fatal("accepted message larger than its slot")
	}
}

func TestTTtoTTPrecedence(t *testing.T) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{TTNodes: 2, ETNodes: 1})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("ttchain")
	g := app.AddGraph("G", 200, 200)
	n1, n2 := arch.TTNodes()[0], arch.TTNodes()[1]
	a := app.AddProcess(g, "A", 10, n1)
	b := app.AddProcess(g, "B", 10, n2)
	c := app.AddProcess(g, "C", 5, n1) // local successor of A
	app.AddEdge("ab", a, b, 4)
	app.AddEdge("ac", a, c, 0)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	round := ttp.Round{Slots: []ttp.Slot{
		{Node: n1, Length: 10}, {Node: n2, Length: 10}, {Node: arch.Gateway, Length: 5},
	}}
	if err := round.PadToDivide(200); err != nil {
		t.Fatalf("pad: %v", err)
	}
	s, err := Build(Input{App: app, Arch: arch, Round: round})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	finishA := s.ProcStart[a][0] + 10
	if arr := s.EdgeArrival[0][0]; arr < finishA {
		t.Errorf("message departs (%d) before A finishes (%d)", arr, finishA)
	}
	if s.ProcStart[b][0] < s.EdgeArrival[0][0] {
		t.Errorf("B starts (%d) before ab arrives (%d)", s.ProcStart[b][0], s.EdgeArrival[0][0])
	}
	if s.ProcStart[c][0] < finishA {
		t.Errorf("local successor C starts (%d) before A finishes (%d)", s.ProcStart[c][0], finishA)
	}
}

func TestPins(t *testing.T) {
	app, arch, p, m := fig4(t)
	s, err := Build(Input{
		App: app, Arch: arch, Round: roundA(arch),
		PinnedProc: map[model.ProcID]model.Time{p[0]: 15},
		PinnedEdge: map[model.EdgeID]model.Time{m[1]: 90},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Pinning P1 to 15 lets P4 (est 0) backfill first on N1; P1 then
	// runs at 30 and finishes at 60, catching S_1 of round 2.
	if got := s.ProcStart[p[3]][0]; got != 0 {
		t.Errorf("P4 start = %d, want 0 (backfills before the pinned P1)", got)
	}
	if got := s.ProcStart[p[0]][0]; got != 30 {
		t.Errorf("pinned P1 start = %d, want 30", got)
	}
	if got := s.EdgeArrival[m[0]][0]; got != 80 {
		t.Errorf("m1 arrival = %d, want 80", got)
	}
	// m2 pinned to >= 90: next S_1 occurrence after 90 starts at 100,
	// arrival 120 (pin applies only to m2).
	if got := s.EdgeArrival[m[1]][0]; got != 120 {
		t.Errorf("pinned m2 arrival = %d, want 120", got)
	}
}

func TestMultiRateRollout(t *testing.T) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{TTNodes: 1, ETNodes: 1})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("rates")
	fast := app.AddGraph("fast", 120, 120)
	slow := app.AddGraph("slow", 240, 240)
	n1 := arch.TTNodes()[0]
	f := app.AddProcess(fast, "F", 10, n1)
	sl := app.AddProcess(slow, "S", 10, n1)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	round := ttp.Round{Slots: []ttp.Slot{{Node: n1, Length: 10}, {Node: arch.Gateway, Length: 10}}}
	if err := round.PadToDivide(240); err != nil {
		t.Fatalf("pad: %v", err)
	}
	s, err := Build(Input{App: app, Arch: arch, Round: round})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(s.ProcStart[f]) != 2 {
		t.Fatalf("fast process has %d instances, want 2", len(s.ProcStart[f]))
	}
	if len(s.ProcStart[sl]) != 1 {
		t.Fatalf("slow process has %d instances, want 1", len(s.ProcStart[sl]))
	}
	if s.ProcStart[f][1] < 120 {
		t.Errorf("second instance starts at %d, before its release 120", s.ProcStart[f][1])
	}
	off, spread, ok := s.OffsetOf(app, f)
	if !ok || off < 0 || spread < 0 {
		t.Errorf("OffsetOf = %d,%d,%v", off, spread, ok)
	}
	// No overlap on the CPU.
	checkNoCPUOverlap(t, app, s)
}

func TestEnvelopeAndWorstOffsets(t *testing.T) {
	app, arch, p, m := fig4(t)
	s, err := Build(Input{App: app, Arch: arch, Round: roundA(arch)})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	off, spread, ok := s.OffsetOf(app, p[0])
	if !ok || off != 0 || spread != 0 {
		t.Errorf("OffsetOf(P1) = %d,%d,%v want 0,0,true", off, spread, ok)
	}
	if _, _, ok := s.OffsetOf(app, p[1]); ok {
		t.Error("ET process must not be in the TT schedule")
	}
	wf, ok := s.WorstFinishOffset(app, p[0])
	if !ok || wf != 30 {
		t.Errorf("WorstFinishOffset(P1) = %d, want 30", wf)
	}
	wa, ok := s.WorstArrivalOffset(app, m[0])
	if !ok || wa != 80 {
		t.Errorf("WorstArrivalOffset(m1) = %d, want 80", wa)
	}
	if _, ok := s.WorstArrivalOffset(app, m[2]); ok {
		t.Error("m3 is an ET->TT edge, not in the static schedule")
	}
}

func TestRejectsUnalignedRound(t *testing.T) {
	app, arch, _, _ := fig4(t)
	round := ttp.Round{Slots: []ttp.Slot{
		{Node: arch.Gateway, Length: 23},
		{Node: arch.TTNodes()[0], Length: 20},
	}} // period 43 does not divide 240
	if _, err := Build(Input{App: app, Arch: arch, Round: round}); err == nil {
		t.Fatal("accepted round period that does not divide the hyper-period")
	}
}

func TestMinAndRecommendedSlotLengths(t *testing.T) {
	app, arch, _, _ := fig4(t)
	n1 := arch.TTNodes()[0]
	if got := MinSlotLength(app, arch, n1); got != 8 {
		t.Errorf("MinSlotLength(N1) = %d, want 8 (largest outgoing message)", got)
	}
	// Gateway slot must fit the largest ET->TT message (m3: 4 bytes).
	if got := MinSlotLength(app, arch, arch.Gateway); got != 4 {
		t.Errorf("MinSlotLength(NG) = %d, want 4", got)
	}
	// ET node owns no slot but the helper still answers (1 byte).
	if got := MinSlotLength(app, arch, arch.ETNodes()[0]); got != 1 {
		t.Errorf("MinSlotLength(N2) = %d, want 1", got)
	}
	rec := RecommendedSlotLengths(app, arch, n1, 4)
	if len(rec) != 2 || rec[0] != 8 || rec[1] != 16 {
		t.Errorf("RecommendedSlotLengths(N1) = %v, want [8 16]", rec)
	}
	rec = RecommendedSlotLengths(app, arch, n1, 1)
	if len(rec) != 1 || rec[0] != 8 {
		t.Errorf("capped RecommendedSlotLengths = %v, want [8]", rec)
	}
	rec = RecommendedSlotLengths(app, arch, arch.ETNodes()[0], 4)
	if len(rec) != 1 || rec[0] != 1 {
		t.Errorf("RecommendedSlotLengths(no traffic) = %v, want [1]", rec)
	}
}

func checkNoCPUOverlap(t *testing.T, app *model.Application, s *Schedule) {
	t.Helper()
	type iv struct{ a, b model.Time }
	byNode := make(map[model.NodeID][]iv)
	for p, starts := range s.ProcStart {
		for _, st := range starts {
			n := app.Procs[p].Node
			byNode[n] = append(byNode[n], iv{st, st + app.Procs[p].WCET})
		}
	}
	for n, ivs := range byNode {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].a < ivs[i-1].b {
				t.Errorf("node %d: overlapping executions [%d,%d) and [%d,%d)", n, ivs[i-1].a, ivs[i-1].b, ivs[i].a, ivs[i].b)
			}
		}
	}
}

// Property test: random TT-heavy DAGs keep precedence, CPU exclusivity
// and MEDL validity whenever the schedule fits the cycle.
func TestPropertyScheduleInvariants(t *testing.T) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{TTNodes: 3, ETNodes: 1})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		app := model.NewApplication("prop")
		g := app.AddGraph("G", 2000, 2000)
		tts := arch.TTNodes()
		n := 4 + r.Intn(10)
		ids := make([]model.ProcID, n)
		for i := range ids {
			ids[i] = app.AddProcess(g, "", 1+model.Time(r.Intn(20)), tts[r.Intn(len(tts))])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					app.AddEdge("", ids[i], ids[j], 1+r.Intn(12))
				}
			}
		}
		if err := app.Finalize(arch); err != nil {
			return false
		}
		round := ttp.NewRound(arch.SlotOwners(), func(model.NodeID) model.Time {
			return 12 + model.Time(r.Intn(8))
		})
		if err := round.PadToDivide(2000); err != nil {
			return true // skip: geometry impossible
		}
		s, err := Build(Input{App: app, Arch: arch, Round: round})
		if err != nil {
			return true // structural (message > slot): not an invariant breach
		}
		// Precedence.
		for _, e := range app.Edges {
			switch app.RouteOf(e.ID, arch) {
			case model.RouteLocal:
				for k := range s.ProcStart[e.Dst] {
					if s.ProcStart[e.Dst][k] < s.ProcStart[e.Src][k]+app.Procs[e.Src].WCET {
						return false
					}
				}
			case model.RouteTTP:
				for k := range s.ProcStart[e.Dst] {
					if s.EdgeArrival[e.ID][k] < s.ProcStart[e.Src][k]+app.Procs[e.Src].WCET {
						return false
					}
					if s.ProcStart[e.Dst][k] < s.EdgeArrival[e.ID][k] {
						return false
					}
				}
			}
		}
		// CPU exclusivity.
		type iv struct{ a, b model.Time }
		byNode := make(map[model.NodeID][]iv)
		for p, starts := range s.ProcStart {
			for _, st := range starts {
				byNode[app.Procs[p].Node] = append(byNode[app.Procs[p].Node], iv{st, st + app.Procs[p].WCET})
			}
		}
		for _, ivs := range byNode {
			sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
			for i := 1; i < len(ivs); i++ {
				if ivs[i].a < ivs[i-1].b {
					return false
				}
			}
		}
		// MEDL validity for cyclic tables.
		if s.WithinCycle {
			if err := s.MEDL.Validate(arch.TTP.TickPerByte); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
