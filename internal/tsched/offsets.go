package tsched

import (
	"repro/internal/model"
)

// OffsetOf returns the in-period offset of a TT process: the earliest
// start across its instances, relative to the instance release. The
// second value is the spread (max - min) across instances, used as an
// extra jitter term by the envelope treatment of multi-rate schedules
// (DESIGN.md decision 4). ok is false when the process is not in the
// schedule.
func (s *Schedule) OffsetOf(app *model.Application, p model.ProcID) (offset, spread model.Time, ok bool) {
	starts := s.ProcStart[p]
	if len(starts) == 0 {
		return 0, 0, false
	}
	period := app.PeriodOf(p)
	return envelope(starts, period)
}

// ArrivalOffsetOf returns the in-period worst-case bus delivery offset
// of a TTP-leg edge plus the spread across instances.
func (s *Schedule) ArrivalOffsetOf(app *model.Application, e model.EdgeID) (offset, spread model.Time, ok bool) {
	arr := s.EdgeArrival[e]
	if len(arr) == 0 {
		return 0, 0, false
	}
	return envelope(arr, app.EdgePeriod(e))
}

// envelope maps absolute per-instance times to (min in-period offset,
// spread). Instance k's in-period value is t_k - k*period; instances are
// sorted ascending by absolute time, which matches instance order
// because every job stays within (or near) its own period window.
func envelope(times []model.Time, period model.Time) (offset, spread model.Time, ok bool) {
	lo := times[0]
	hi := times[0]
	for k, t := range times {
		rel := t - model.Time(k)*period
		if k == 0 || rel < lo {
			lo = rel
		}
		if k == 0 || rel > hi {
			hi = rel
		}
	}
	return lo, hi - lo, true
}

// WorstFinishOffset returns the largest in-period completion offset of a
// TT process: max over instances of (start + WCET - k*period). For a
// schedulable table this is O_i + C_i of the paper.
func (s *Schedule) WorstFinishOffset(app *model.Application, p model.ProcID) (model.Time, bool) {
	starts := s.ProcStart[p]
	if len(starts) == 0 {
		return 0, false
	}
	period := app.PeriodOf(p)
	wcet := app.Procs[p].WCET
	var worst model.Time
	for k, t := range starts {
		if rel := t + wcet - model.Time(k)*period; k == 0 || rel > worst {
			worst = rel
		}
	}
	return worst, true
}

// WorstArrivalOffset returns the largest in-period delivery offset of a
// TTP-leg edge across instances.
func (s *Schedule) WorstArrivalOffset(app *model.Application, e model.EdgeID) (model.Time, bool) {
	arr := s.EdgeArrival[e]
	if len(arr) == 0 {
		return 0, false
	}
	period := app.EdgePeriod(e)
	var worst model.Time
	for k, t := range arr {
		if rel := t - model.Time(k)*period; k == 0 || rel > worst {
			worst = rel
		}
	}
	return worst, true
}
