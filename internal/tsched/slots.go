package tsched

import (
	"sort"

	"repro/internal/model"
)

// slotTraffic returns the sizes (bytes) of the messages a slot owner
// must carry: for a TT node, its outgoing TTP legs (TT->TT and TT->ET);
// for the gateway, the ET->TT messages drained through S_G.
func slotTraffic(app *model.Application, arch *model.Architecture, owner model.NodeID) []int {
	var sizes []int
	for _, e := range app.Edges {
		route := app.RouteOf(e.ID, arch)
		switch {
		case arch.Kind(owner) == model.GatewayNode:
			if route == model.RouteETtoTT {
				sizes = append(sizes, e.Size)
			}
		case route.UsesTTP() && app.Procs[e.Src].Node == owner:
			sizes = append(sizes, e.Size)
		}
	}
	return sizes
}

// MinSlotLength returns the minimal allowed slot length for a slot
// owner: the transmission time of the largest message it must carry
// (the paper's size_smallest initialisation in OptimizeSchedule), or one
// byte's worth of time when the node sends nothing.
func MinSlotLength(app *model.Application, arch *model.Architecture, owner model.NodeID) model.Time {
	largest := 1
	for _, s := range slotTraffic(app, arch, owner) {
		if s > largest {
			largest = s
		}
	}
	return model.Time(largest) * arch.TTP.TickPerByte
}

// RecommendedSlotLengths returns the candidate slot lengths tried by
// OptimizeSchedule for a slot owner (the "recommended lengths" feedback
// of the paper, after [5]): the transmission times of the cumulative
// sums of the owner's message sizes, largest first, deduplicated and
// capped at maxCandidates. The smallest candidate always equals
// MinSlotLength.
func RecommendedSlotLengths(app *model.Application, arch *model.Architecture, owner model.NodeID, maxCandidates int) []model.Time {
	if maxCandidates <= 0 {
		maxCandidates = 4
	}
	sizes := slotTraffic(app, arch, owner)
	if len(sizes) == 0 {
		return []model.Time{MinSlotLength(app, arch, owner)}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	var lengths []model.Time
	sum := 0
	for _, s := range sizes {
		sum += s
		l := model.Time(sum) * arch.TTP.TickPerByte
		if n := len(lengths); n == 0 || lengths[n-1] != l {
			lengths = append(lengths, l)
		}
		if len(lengths) >= maxCandidates {
			break
		}
	}
	return lengths
}
