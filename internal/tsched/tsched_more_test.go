package tsched

import (
	"testing"

	"repro/internal/model"
	"repro/internal/ttp"
)

// TestCriticalMessageGetsEarlierSlot: when one producer emits several
// messages at once, the message feeding the longer downstream chain
// must ride the earlier slot occurrence (DESIGN.md decision 9).
func TestCriticalMessageGetsEarlierSlot(t *testing.T) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{TTNodes: 1, ETNodes: 1})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("critfirst")
	g := app.AddGraph("G", 1000, 1000)
	n1 := arch.TTNodes()[0]
	et := arch.ETNodes()[0]
	src := app.AddProcess(g, "src", 10, n1)
	// Declared FIRST: a shallow display sink.
	shallow := app.AddProcess(g, "shallow", 5, et)
	// Declared SECOND: a deep chain.
	d1 := app.AddProcess(g, "d1", 20, et)
	d2 := app.AddProcess(g, "d2", 20, et)
	d3 := app.AddProcess(g, "d3", 20, et)
	mShallow := app.AddEdge("mShallow", src, shallow, 8)
	mDeep := app.AddEdge("mDeep", src, d1, 8)
	app.AddEdge("c1", d1, d2, 4)
	app.AddEdge("c2", d2, d3, 4)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	// An 8-byte slot: one message per round, so the order is observable.
	round := ttp.Round{Slots: []ttp.Slot{
		{Node: n1, Length: 8}, {Node: arch.Gateway, Length: 8},
	}}
	if err := round.PadToDivide(1000); err != nil {
		t.Fatalf("pad: %v", err)
	}
	s, err := Build(Input{App: app, Arch: arch, Round: round})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if s.EdgeArrival[mDeep][0] >= s.EdgeArrival[mShallow][0] {
		t.Errorf("deep-chain message at %d must beat the shallow one at %d despite declaration order",
			s.EdgeArrival[mDeep][0], s.EdgeArrival[mShallow][0])
	}
}

// TestReleaseAndPinInteraction: release constraints and pins compose as
// "not before" bounds (the stricter wins).
func TestReleaseAndPinInteraction(t *testing.T) {
	app, arch, p, _ := fig4(t)
	s, err := Build(Input{
		App: app, Arch: arch, Round: roundA(arch),
		ReleaseOffset: map[model.ProcID]model.Time{p[3]: 100},
		PinnedProc:    map[model.ProcID]model.Time{p[3]: 150},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := s.ProcStart[p[3]][0]; got != 150 {
		t.Errorf("P4 start = %d, want 150 (the pin dominates the release)", got)
	}
	s, err = Build(Input{
		App: app, Arch: arch, Round: roundA(arch),
		ReleaseOffset: map[model.ProcID]model.Time{p[3]: 180},
		PinnedProc:    map[model.ProcID]model.Time{p[3]: 150},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := s.ProcStart[p[3]][0]; got != 180 {
		t.Errorf("P4 start = %d, want 180 (the release dominates the pin)", got)
	}
}

// TestEmptyTTC: applications living entirely on the ETC still build a
// (trivial) schedule.
func TestEmptyTTC(t *testing.T) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{TTNodes: 1, ETNodes: 1})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("etonly")
	g := app.AddGraph("G", 100, 100)
	et := arch.ETNodes()[0]
	a := app.AddProcess(g, "A", 5, et)
	b := app.AddProcess(g, "B", 5, et)
	app.AddEdge("ab", a, b, 4)
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	round := ttp.Round{Slots: []ttp.Slot{
		{Node: arch.TTNodes()[0], Length: 10}, {Node: arch.Gateway, Length: 10},
	}}
	if err := round.PadToDivide(100); err != nil {
		t.Fatalf("pad: %v", err)
	}
	s, err := Build(Input{App: app, Arch: arch, Round: round})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(s.ProcStart) != 0 || len(s.MEDL.Entries) != 0 {
		t.Errorf("ET-only application produced TT schedule entries: %d procs, %d frames",
			len(s.ProcStart), len(s.MEDL.Entries))
	}
	if !s.WithinCycle {
		t.Error("empty schedule must be cyclic")
	}
}
