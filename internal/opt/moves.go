// Package opt implements the synthesis heuristics of §5 of the paper:
// the straightforward baseline SF, the greedy OptimizeSchedule (OS,
// Fig. 8) that maximizes the degree of schedulability, and the
// hill-climbing OptimizeResources (OR, Fig. 7) that minimizes the total
// buffer need s_total while preserving schedulability. The §5.1 design
// transformations ("moves") shared by OR and the simulated-annealing
// baselines live here too.
package opt

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tsched"
)

// MoveKind enumerates the §5.1 design transformations.
type MoveKind int

const (
	// MovePinProc delays a TT process to a given in-period offset
	// (moving it inside its [ASAP, ALAP] interval).
	MovePinProc MoveKind = iota
	// MovePinEdge delays a TTP message likewise.
	MovePinEdge
	// MoveUnpinProc / MoveUnpinEdge remove an existing pin.
	MoveUnpinProc
	MoveUnpinEdge
	// MoveSwapProcPrio swaps the priorities of two ET processes mapped
	// on the same node.
	MoveSwapProcPrio
	// MoveSwapMsgPrio swaps the priorities of two CAN messages.
	MoveSwapMsgPrio
	// MoveResizeSlot changes a TDMA slot length by Delta (respecting the
	// minimal slot length).
	MoveResizeSlot
	// MoveSwapSlots exchanges two slots inside the TDMA round.
	MoveSwapSlots
	// MoveSetSlotLen sets a TDMA slot to the absolute length Length
	// (respecting the minimal slot length). The OptimizeSchedule
	// candidate scan expresses its per-position (owner, length) choices
	// as MoveSwapSlots + MoveSetSlotLen sequences, so candidates reach
	// the evaluation batch as typed move descriptors.
	MoveSetSlotLen
)

// String names the move kind.
func (k MoveKind) String() string {
	switch k {
	case MovePinProc:
		return "pin-proc"
	case MovePinEdge:
		return "pin-edge"
	case MoveUnpinProc:
		return "unpin-proc"
	case MoveUnpinEdge:
		return "unpin-edge"
	case MoveSwapProcPrio:
		return "swap-proc-prio"
	case MoveSwapMsgPrio:
		return "swap-msg-prio"
	case MoveResizeSlot:
		return "resize-slot"
	case MoveSwapSlots:
		return "swap-slots"
	case MoveSetSlotLen:
		return "set-slot-length"
	}
	return fmt.Sprintf("MoveKind(%d)", int(k))
}

// Move is one design transformation applicable to a configuration.
type Move struct {
	Kind   MoveKind
	Proc   model.ProcID
	Proc2  model.ProcID
	Edge   model.EdgeID
	Edge2  model.EdgeID
	Offset model.Time // pin target
	Slot   int
	Slot2  int
	Delta  model.Time // slot resize amount (signed)
	Length model.Time // absolute slot length (MoveSetSlotLen)
}

// String renders the move for diagnostics.
func (m Move) String() string {
	switch m.Kind {
	case MovePinProc:
		return fmt.Sprintf("%v(P%d@%d)", m.Kind, m.Proc, m.Offset)
	case MovePinEdge:
		return fmt.Sprintf("%v(m%d@%d)", m.Kind, m.Edge, m.Offset)
	case MoveUnpinProc:
		return fmt.Sprintf("%v(P%d)", m.Kind, m.Proc)
	case MoveUnpinEdge:
		return fmt.Sprintf("%v(m%d)", m.Kind, m.Edge)
	case MoveSwapProcPrio:
		return fmt.Sprintf("%v(P%d,P%d)", m.Kind, m.Proc, m.Proc2)
	case MoveSwapMsgPrio:
		return fmt.Sprintf("%v(m%d,m%d)", m.Kind, m.Edge, m.Edge2)
	case MoveResizeSlot:
		return fmt.Sprintf("%v(S%d%+d)", m.Kind, m.Slot, m.Delta)
	case MoveSetSlotLen:
		return fmt.Sprintf("%v(S%d=%d)", m.Kind, m.Slot, m.Length)
	default:
		return fmt.Sprintf("%v(S%d,S%d)", m.Kind, m.Slot, m.Slot2)
	}
}

// Apply returns a normalized copy of cfg with the move performed, or an
// error when the move is structurally impossible (e.g. shrinking a slot
// below its minimal length).
func (m Move) Apply(app *model.Application, arch *model.Architecture, cfg *core.Config) (*core.Config, error) {
	var d *core.Config
	switch m.Kind {
	case MovePinProc:
		d = cfg.PinProc(m.Proc, m.Offset)
	case MovePinEdge:
		d = cfg.PinEdge(m.Edge, m.Offset)
	case MoveUnpinProc:
		d = cfg.Clone()
		if _, ok := d.PinnedProc[m.Proc]; !ok {
			return nil, fmt.Errorf("opt: process %d is not pinned", m.Proc)
		}
		delete(d.PinnedProc, m.Proc)
	case MoveUnpinEdge:
		d = cfg.Clone()
		if _, ok := d.PinnedEdge[m.Edge]; !ok {
			return nil, fmt.Errorf("opt: edge %d is not pinned", m.Edge)
		}
		delete(d.PinnedEdge, m.Edge)
	case MoveSwapProcPrio:
		d = cfg.Clone()
		a, okA := d.ProcPriority[m.Proc]
		b, okB := d.ProcPriority[m.Proc2]
		if !okA || !okB {
			return nil, fmt.Errorf("opt: processes %d/%d have no priorities", m.Proc, m.Proc2)
		}
		d.ProcPriority[m.Proc], d.ProcPriority[m.Proc2] = b, a
	case MoveSwapMsgPrio:
		d = cfg.Clone()
		a, okA := d.MsgPriority[m.Edge]
		b, okB := d.MsgPriority[m.Edge2]
		if !okA || !okB {
			return nil, fmt.Errorf("opt: messages %d/%d have no priorities", m.Edge, m.Edge2)
		}
		d.MsgPriority[m.Edge], d.MsgPriority[m.Edge2] = b, a
	case MoveResizeSlot:
		d = cfg.Clone()
		if m.Slot < 0 || m.Slot >= len(d.Round.Slots) {
			return nil, fmt.Errorf("opt: slot %d out of range", m.Slot)
		}
		sl := &d.Round.Slots[m.Slot]
		min := tsched.MinSlotLength(app, arch, sl.Node)
		nl := sl.Length + m.Delta
		if nl < min {
			return nil, fmt.Errorf("opt: slot %d cannot shrink below %d", m.Slot, min)
		}
		sl.Length = nl
	case MoveSwapSlots:
		d = cfg.Clone()
		if m.Slot < 0 || m.Slot2 < 0 || m.Slot >= len(d.Round.Slots) || m.Slot2 >= len(d.Round.Slots) || m.Slot == m.Slot2 {
			return nil, fmt.Errorf("opt: invalid slot pair %d,%d", m.Slot, m.Slot2)
		}
		d.Round.Slots[m.Slot], d.Round.Slots[m.Slot2] = d.Round.Slots[m.Slot2], d.Round.Slots[m.Slot]
	case MoveSetSlotLen:
		d = cfg.Clone()
		if m.Slot < 0 || m.Slot >= len(d.Round.Slots) {
			return nil, fmt.Errorf("opt: slot %d out of range", m.Slot)
		}
		sl := &d.Round.Slots[m.Slot]
		if min := tsched.MinSlotLength(app, arch, sl.Node); m.Length < min {
			return nil, fmt.Errorf("opt: slot %d cannot shrink below %d", m.Slot, min)
		}
		sl.Length = m.Length
	default:
		return nil, fmt.Errorf("opt: unknown move kind %d", m.Kind)
	}
	if err := d.Normalize(app); err != nil {
		return nil, err
	}
	return d, nil
}

// MoveBudget tunes GenerateMoves.
type MoveBudget struct {
	// Max is the total number of moves returned (default 24).
	Max int
	// Rand drives the sampling of the untargeted share of the
	// neighbourhood; nil means a fixed seed (deterministic).
	Rand *rand.Rand
}

// GenerateMoves builds the neighbourhood of a configuration (the
// GenerateNeighbors function of Fig. 7). Moves with the highest
// potential come first: transformations touching the messages that
// attain the queue bounds (the Critical* fields of core.Buffers), then
// slot reorderings/resizings, then randomly sampled priority swaps and
// pin removals.
func GenerateMoves(app *model.Application, arch *model.Architecture, cfg *core.Config, a *core.Analysis, budget MoveBudget) []Move {
	if budget.Max <= 0 {
		budget.Max = 24
	}
	rng := budget.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var moves []Move
	seen := make(map[string]bool)
	add := func(m Move) {
		if len(moves) >= budget.Max {
			return
		}
		k := m.String()
		if seen[k] {
			return
		}
		seen[k] = true
		moves = append(moves, m)
	}

	// 1. Targeted moves around the critical queue messages.
	for _, crit := range criticalEdges(a) {
		targetCriticalEdge(app, arch, cfg, a, crit, add)
	}

	// 2. Slot swaps (the round is short: enumerate pairs).
	for i := 0; i < len(cfg.Round.Slots); i++ {
		for j := i + 1; j < len(cfg.Round.Slots); j++ {
			add(Move{Kind: MoveSwapSlots, Slot: i, Slot2: j})
		}
	}

	// 3. Slot resizes by one quantum in both directions.
	quantum := arch.TTP.TickPerByte * 4
	if quantum <= 0 {
		quantum = 4
	}
	for i := range cfg.Round.Slots {
		add(Move{Kind: MoveResizeSlot, Slot: i, Delta: quantum})
		add(Move{Kind: MoveResizeSlot, Slot: i, Delta: -quantum})
	}

	// 4. Pin removals (escape accumulated constraints).
	for _, p := range sortedProcPins(cfg) {
		add(Move{Kind: MoveUnpinProc, Proc: p})
	}
	for _, e := range sortedEdgePins(cfg) {
		add(Move{Kind: MoveUnpinEdge, Edge: e})
	}

	// 5. Random adjacent priority swaps to fill the budget.
	procPairs := adjacentProcPairs(app, arch, cfg)
	msgPairs := adjacentMsgPairs(app, arch, cfg)
	rng.Shuffle(len(procPairs), func(i, j int) { procPairs[i], procPairs[j] = procPairs[j], procPairs[i] })
	rng.Shuffle(len(msgPairs), func(i, j int) { msgPairs[i], msgPairs[j] = msgPairs[j], msgPairs[i] })
	for i := 0; len(moves) < budget.Max && (i < len(procPairs) || i < len(msgPairs)); i++ {
		if i < len(procPairs) {
			add(Move{Kind: MoveSwapProcPrio, Proc: procPairs[i][0], Proc2: procPairs[i][1]})
		}
		if i < len(msgPairs) {
			add(Move{Kind: MoveSwapMsgPrio, Edge: msgPairs[i][0], Edge2: msgPairs[i][1]})
		}
	}
	return moves
}

// criticalEdges lists the messages attaining the queue bounds, ordered
// OutCAN, OutTTP, then the per-node queues in node order.
func criticalEdges(a *core.Analysis) []model.EdgeID {
	var out []model.EdgeID
	if a.Buffers.CriticalOutCAN >= 0 {
		out = append(out, a.Buffers.CriticalOutCAN)
	}
	if a.Buffers.CriticalOutTTP >= 0 {
		out = append(out, a.Buffers.CriticalOutTTP)
	}
	var nodes []model.NodeID
	for n := range a.Buffers.CriticalOutNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		out = append(out, a.Buffers.CriticalOutNode[n])
	}
	return out
}

// targetCriticalEdge emits the focused moves for one critical message:
// re-timing its TTP leg or its TT producer, and swapping its priority
// with its neighbours.
func targetCriticalEdge(app *model.Application, arch *model.Architecture, cfg *core.Config, a *core.Analysis, e model.EdgeID, add func(Move)) {
	if _, ok := a.Edge[e]; !ok {
		return
	}
	// Re-time the TTP leg inside its [ASAP, ALAP] window.
	if iv, ok := a.EdgeMoveInterval(app, e); ok && iv.ALAP > iv.ASAP {
		mid := iv.ASAP + (iv.ALAP-iv.ASAP)/2
		add(Move{Kind: MovePinEdge, Edge: e, Offset: mid})
		add(Move{Kind: MovePinEdge, Edge: e, Offset: iv.ALAP})
	}
	// Re-time the producer when it is a TT process (spreads the queue
	// entries of ET->TT messages).
	src := app.Edges[e].Src
	if iv, ok := a.ProcMoveInterval(app, src); ok && iv.ALAP > iv.ASAP {
		mid := iv.ASAP + (iv.ALAP-iv.ASAP)/2
		add(Move{Kind: MovePinProc, Proc: src, Offset: mid})
		add(Move{Kind: MovePinProc, Proc: src, Offset: iv.ALAP})
	}
	// Swap the message's priority with its immediate neighbours.
	if _, ok := cfg.MsgPriority[e]; ok {
		if up, ok := adjacentMsg(app, arch, cfg, e, -1); ok {
			add(Move{Kind: MoveSwapMsgPrio, Edge: e, Edge2: up})
		}
		if down, ok := adjacentMsg(app, arch, cfg, e, +1); ok {
			add(Move{Kind: MoveSwapMsgPrio, Edge: e, Edge2: down})
		}
	}
}

// adjacentMsg finds the CAN message whose priority is immediately above
// (dir < 0) or below (dir > 0) that of e.
func adjacentMsg(app *model.Application, arch *model.Architecture, cfg *core.Config, e model.EdgeID, dir int) (model.EdgeID, bool) {
	myPrio := cfg.MsgPriority[e]
	bestPrio := 0
	var best model.EdgeID
	found := false
	for id, prio := range cfg.MsgPriority {
		if id == e {
			continue
		}
		if dir < 0 && prio < myPrio && (!found || prio > bestPrio) {
			best, bestPrio, found = id, prio, true
		}
		if dir > 0 && prio > myPrio && (!found || prio < bestPrio) {
			best, bestPrio, found = id, prio, true
		}
	}
	return best, found
}

// adjacentProcPairs returns the per-node priority-adjacent process
// pairs, in deterministic order.
func adjacentProcPairs(app *model.Application, arch *model.Architecture, cfg *core.Config) [][2]model.ProcID {
	byNode := make(map[model.NodeID][]model.ProcID)
	for _, p := range app.Procs {
		if _, ok := cfg.ProcPriority[p.ID]; ok {
			byNode[p.Node] = append(byNode[p.Node], p.ID)
		}
	}
	var nodes []model.NodeID
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var pairs [][2]model.ProcID
	for _, n := range nodes {
		ids := byNode[n]
		sort.Slice(ids, func(i, j int) bool { return cfg.ProcPriority[ids[i]] < cfg.ProcPriority[ids[j]] })
		for i := 0; i+1 < len(ids); i++ {
			pairs = append(pairs, [2]model.ProcID{ids[i], ids[i+1]})
		}
	}
	return pairs
}

// adjacentMsgPairs returns the priority-adjacent CAN message pairs.
func adjacentMsgPairs(app *model.Application, arch *model.Architecture, cfg *core.Config) [][2]model.EdgeID {
	var ids []model.EdgeID
	for id := range cfg.MsgPriority {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return cfg.MsgPriority[ids[i]] < cfg.MsgPriority[ids[j]] })
	var pairs [][2]model.EdgeID
	for i := 0; i+1 < len(ids); i++ {
		pairs = append(pairs, [2]model.EdgeID{ids[i], ids[i+1]})
	}
	return pairs
}

func sortedProcPins(cfg *core.Config) []model.ProcID {
	var out []model.ProcID
	for p := range cfg.PinnedProc {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedEdgePins(cfg *core.Config) []model.EdgeID {
	var out []model.EdgeID
	for e := range cfg.PinnedEdge {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
