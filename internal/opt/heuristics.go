package opt

import (
	"context"
	"errors"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hopa"
	"repro/internal/model"
	"repro/internal/tsched"
)

// Result couples a configuration with its analysis.
type Result struct {
	Config   *core.Config
	Analysis *core.Analysis
}

// Progress is one optimizer progress event: the reduction just
// finished Step (a TDMA position for OptimizeSchedule, a hill-climbing
// iteration for OptimizeResources), Evaluations analyses have been
// spent so far, and Best is the incumbent (nil until a candidate
// survives analysis). Events are emitted from the reducing goroutine,
// in step order, for every worker count.
type Progress struct {
	Phase       string // "os" or "or"
	Step        int
	Evaluations int
	Best        *Result
}

// EvalFunc analyzes one configuration. The cold implementation is
// core.Analyze partially applied; sessions inject their incremental
// delta evaluator, which must return identical results (the delta
// package's differential harness proves it does).
type EvalFunc func(*core.Config) (*core.Analysis, error)

// Hooks instruments an optimizer run and lets a long-lived session
// inject cached derived state. The zero value disables everything.
type Hooks struct {
	// OnProgress, when non-nil, receives one event per reduction step.
	OnProgress func(Progress)
	// Eval, when non-nil, replaces core.Analyze for every candidate
	// analysis, HOPA's included. Evaluation counters count the analyses
	// the optimizers request, not what Eval recomputes, so reported
	// Evaluations are identical with and without an injected evaluator.
	Eval EvalFunc
	// SlotLengths, when non-nil, replaces
	// tsched.RecommendedSlotLengths so a session can cache the
	// candidate sets per slot owner. It must return exactly what the
	// tsched call would (the optimizers rely on that for determinism).
	SlotLengths func(owner model.NodeID, max int) []model.Time
	// BaseConfig, when non-nil, replaces core.DefaultConfig as the
	// starting template; it must return a fresh un-normalized clone
	// per call.
	BaseConfig func() *core.Config
}

func (h *Hooks) progress(p Progress) {
	if h.OnProgress != nil {
		h.OnProgress(p)
	}
}

func (h *Hooks) slotLengths(app *model.Application, arch *model.Architecture, owner model.NodeID, max int) []model.Time {
	if h.SlotLengths != nil {
		return h.SlotLengths(owner, max)
	}
	return tsched.RecommendedSlotLengths(app, arch, owner, max)
}

func (h *Hooks) baseConfig(app *model.Application, arch *model.Architecture) *core.Config {
	if h.BaseConfig != nil {
		return h.BaseConfig()
	}
	return core.DefaultConfig(app, arch)
}

func (h *Hooks) eval(app *model.Application, arch *model.Architecture) EvalFunc {
	if h.Eval != nil {
		return h.Eval
	}
	return func(cfg *core.Config) (*core.Analysis, error) {
		return core.Analyze(app, arch, cfg)
	}
}

// canceled reports whether err is the batch-wide cancellation of ctx
// (as opposed to a genuine per-candidate analysis failure).
func canceled(ctx context.Context, err error) bool {
	return err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err())
}

// Delta is the degree of schedulability of the result.
func (r *Result) Delta() model.Time { return r.Analysis.Delta }

// STotal is the total buffer need of the result.
func (r *Result) STotal() int { return r.Analysis.Buffers.Total }

// Schedulable reports the analysis verdict.
func (r *Result) Schedulable() bool { return r.Analysis.Schedulable }

// evaluateWith analyzes a configuration through the run's evaluator.
func evaluateWith(eval EvalFunc, cfg *core.Config) (*Result, error) {
	a, err := eval(cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Config: cfg, Analysis: a}, nil
}

// Straightforward is the SF baseline of §6: nodes allocated to the TDMA
// slots in ascending architecture order, slot lengths fixed at the
// minimum that accommodates the largest message of each node, priorities
// left at their declaration order, and the system scheduled by
// MultiClusterScheduling. Priority optimization (HOPA) is part of
// OptimizeSchedule, not of the baseline (§5.1).
func Straightforward(app *model.Application, arch *model.Architecture) (*Result, error) {
	return StraightforwardWith(app, arch, nil)
}

// StraightforwardWith is Straightforward through an explicit evaluator
// (nil falls back to core.Analyze).
func StraightforwardWith(app *model.Application, arch *model.Architecture, eval EvalFunc) (*Result, error) {
	cfg := core.DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		return nil, err
	}
	if eval == nil {
		eval = (&Hooks{}).eval(app, arch)
	}
	return evaluateWith(eval, cfg)
}

// OSOptions tunes OptimizeSchedule.
type OSOptions struct {
	// HOPAIterations per candidate configuration (default 2).
	HOPAIterations int
	// SlotCandidates caps the recommended lengths tried per slot
	// (default 3).
	SlotCandidates int
	// SeedLimit caps the seed_solutions list (default 6).
	SeedLimit int
	// Workers bounds the concurrent candidate evaluations (default 1 =
	// serial). The result is identical for every value: candidates are
	// generated up front and reduced in order.
	Workers int
	// Pool, when non-nil, supplies the evaluation pool (typically a
	// session-shared one) instead of a fresh engine.New(Workers).
	Pool *engine.Pool
	// Hooks instruments the run; see Hooks.
	Hooks Hooks
}

func (o *OSOptions) defaults() {
	if o.HOPAIterations <= 0 {
		o.HOPAIterations = 2
	}
	if o.SlotCandidates <= 0 {
		o.SlotCandidates = 3
	}
	if o.SeedLimit <= 0 {
		o.SeedLimit = 6
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
}

// OSResult is the outcome of OptimizeSchedule.
type OSResult struct {
	// Best is the configuration with the smallest delta_Gamma.
	Best *Result
	// Seeds are the recorded seed solutions for OptimizeResources,
	// ordered best-delta first, deduplicated.
	Seeds []*Result
	// Evaluations counts the multi-cluster analyses performed.
	Evaluations int
}

// osCandidate is one (owner, length) candidate of the Fig. 8 slot
// search, described as the typed moves that derive it from the
// position's shared parent configuration (a swap bringing slot j into
// position i, then an absolute length assignment).
type osCandidate struct {
	j     int        // slot index swapped into position i
	l     model.Time // candidate length of position i
	moves []Move
}

// osEval is the evaluation of one candidate: the analyzed result plus
// the analyses HOPA spent finding the priorities.
type osEval struct {
	r         *Result
	hopaEvals int
}

// OptimizeSchedule is the greedy heuristic of Fig. 8: slot by slot it
// chooses the owner and the slot length that maximize the degree of
// schedulability, with HOPA priorities per candidate, recording the best
// configurations (by delta and by s_total) as seeds for the second step.
//
// The candidates of each position are independent, so they are
// evaluated across an engine pool of opts.Workers goroutines; the
// reduction walks them in generation order, which makes the outcome
// identical to the serial walk for any worker count.
//
// Cancelling ctx stops the search at the next evaluation granule: the
// returned OSResult then carries the best configuration and the seeds
// found so far, together with ctx's error.
func OptimizeSchedule(ctx context.Context, app *model.Application, arch *model.Architecture, opts OSOptions) (*OSResult, error) {
	opts.defaults()
	pool := opts.Pool
	if pool == nil {
		pool = engine.New(opts.Workers)
	}
	base := opts.Hooks.baseConfig(app, arch)
	res := &OSResult{}
	var seeds []*Result

	partial := func(best *Result) (*OSResult, error) {
		res.Best = best
		res.Seeds = selectSeeds(seeds, opts.SeedLimit)
		return res, ctx.Err()
	}

	round := base.Round.Clone()
	var best *Result
	for i := range round.Slots {
		if ctx.Err() != nil {
			return partial(best)
		}
		// Generate the full candidate batch for position i up front, as
		// typed moves against the position's shared parent (the running
		// best round on the base template).
		parent := base.Clone()
		parent.Round = round.Clone()
		var cands []osCandidate
		//mcs:allow ctxloop candidate generation is cheap in-memory setup; the position loop checks ctx and the batch evaluation is ctx-aware
		for j := i; j < len(round.Slots); j++ {
			lengths := opts.Hooks.slotLengths(app, arch, round.Slots[j].Node, opts.SlotCandidates)
			for _, l := range lengths {
				var mvs []Move
				if j != i {
					mvs = append(mvs, Move{Kind: MoveSwapSlots, Slot: i, Slot2: j})
				}
				mvs = append(mvs, Move{Kind: MoveSetSlotLen, Slot: i, Length: l})
				cands = append(cands, osCandidate{j: j, l: l, moves: mvs})
			}
		}

		// Fan the derivation + HOPA + analysis work out across the pool.
		eval := opts.Hooks.eval(app, arch)
		evals, _ := engine.Map(ctx, pool, len(cands), func(_ context.Context, k int) (osEval, error) {
			cfg := parent
			for _, mv := range cands[k].moves {
				next, err := mv.Apply(app, arch, cfg)
				if err != nil {
					return osEval{}, err
				}
				cfg = next
			}
			pr, err := hopa.AssignWith(app, arch, cfg.Round, opts.HOPAIterations, eval)
			if err != nil {
				return osEval{}, err
			}
			full := cfg.Clone()
			full.ProcPriority = pr.ProcPriority
			full.MsgPriority = pr.MsgPriority
			if err := full.Normalize(app); err != nil {
				return osEval{hopaEvals: pr.Evaluations}, err
			}
			r, err := evaluateWith(eval, full)
			if err != nil {
				return osEval{hopaEvals: pr.Evaluations}, err
			}
			return osEval{r: r, hopaEvals: pr.Evaluations}, nil
		})

		// Reduce in candidate order, exactly like the serial loop.
		bestAt := -1
		var bestLen model.Time
		var bestRes *Result
		for k, ev := range evals {
			if ev.Err != nil {
				if canceled(ctx, ev.Err) {
					// Keep what this position already evaluated and
					// stop: best-so-far beats nothing at all.
					if bestRes != nil && (best == nil || better(bestRes, best)) {
						best = bestRes
					}
					return partial(best)
				}
				return nil, ev.Err
			}
			res.Evaluations += ev.Value.hopaEvals + 1
			r := ev.Value.r
			seeds = append(seeds, r)
			if bestRes == nil || better(r, bestRes) {
				bestRes = r
				bestAt = cands[k].j
				bestLen = cands[k].l
			}
		}
		if bestAt >= 0 {
			round.Slots[i], round.Slots[bestAt] = round.Slots[bestAt], round.Slots[i]
			round.Slots[i].Length = bestLen
		}
		if bestRes != nil && (best == nil || better(bestRes, best)) {
			best = bestRes
		}
		opts.Hooks.progress(Progress{Phase: "os", Step: i + 1, Evaluations: res.Evaluations, Best: best})
	}
	res.Best = best
	res.Seeds = selectSeeds(seeds, opts.SeedLimit)
	return res, nil
}

// better orders results by degree of schedulability, breaking ties with
// the buffer need.
func better(a, b *Result) bool {
	if a.Delta() != b.Delta() {
		return a.Delta() < b.Delta()
	}
	return a.STotal() < b.STotal()
}

// selectSeeds keeps the most promising seed solutions: the best by
// delta (highly schedulable systems survive more hill-climbing moves)
// and, among the schedulable ones, the best by s_total (§5.1).
func selectSeeds(all []*Result, limit int) []*Result {
	if len(all) == 0 {
		return nil
	}
	byDelta := append([]*Result(nil), all...)
	sort.SliceStable(byDelta, func(i, j int) bool { return better(byDelta[i], byDelta[j]) })
	var bySTotal []*Result
	for _, r := range all {
		if r.Schedulable() {
			bySTotal = append(bySTotal, r)
		}
	}
	sort.SliceStable(bySTotal, func(i, j int) bool {
		if bySTotal[i].STotal() != bySTotal[j].STotal() {
			return bySTotal[i].STotal() < bySTotal[j].STotal()
		}
		return bySTotal[i].Delta() < bySTotal[j].Delta()
	})
	var seeds []*Result
	seen := make(map[*core.Config]bool)
	take := func(r *Result) {
		if len(seeds) >= limit || seen[r.Config] {
			return
		}
		seen[r.Config] = true
		seeds = append(seeds, r)
	}
	half := (limit + 1) / 2
	for i := 0; i < len(bySTotal) && i < half; i++ {
		take(bySTotal[i])
	}
	for _, r := range byDelta {
		take(r)
	}
	return seeds
}

// OROptions tunes OptimizeResources.
type OROptions struct {
	OS OSOptions
	// MaxIterations caps the hill-climbing steps per seed (default 40).
	MaxIterations int
	// NeighborBudget caps the moves evaluated per step (default 24).
	NeighborBudget int
	// Seeds caps the number of seed solutions explored (default 4).
	Seeds int
	// RandSeed drives the sampled share of the neighbourhood.
	RandSeed int64
	// Workers bounds the concurrent neighbour evaluations (default 1 =
	// serial; forwarded to the OS step unless OS.Workers is set). The
	// hill-climbing outcome is identical for every value.
	Workers int
	// Pool, when non-nil, supplies the evaluation pool (typically a
	// session-shared one) instead of a fresh engine.New(Workers); it is
	// forwarded to the OS step unless OS.Pool is set.
	Pool *engine.Pool
	// Hooks instruments the hill climber; cache hooks are forwarded to
	// the OS step unless OS.Hooks sets them.
	Hooks Hooks
}

func (o *OROptions) defaults() {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.OS.Workers <= 0 {
		o.OS.Workers = o.Workers
	}
	if o.OS.Pool == nil {
		o.OS.Pool = o.Pool
	}
	if o.OS.Hooks.SlotLengths == nil {
		o.OS.Hooks.SlotLengths = o.Hooks.SlotLengths
	}
	if o.OS.Hooks.BaseConfig == nil {
		o.OS.Hooks.BaseConfig = o.Hooks.BaseConfig
	}
	o.OS.defaults()
	if o.MaxIterations <= 0 {
		o.MaxIterations = 40
	}
	if o.NeighborBudget <= 0 {
		o.NeighborBudget = 24
	}
	if o.Seeds <= 0 {
		o.Seeds = 4
	}
	if o.RandSeed == 0 {
		o.RandSeed = 1
	}
}

// ORResult is the outcome of OptimizeResources.
type ORResult struct {
	// Best is the schedulable configuration with the smallest s_total
	// (or the best-effort OS result when nothing schedulable exists).
	Best *Result
	// OS is the first-step result.
	OS *OSResult
	// Evaluations counts all analyses, including the OS step.
	Evaluations int
	// Improved tells whether hill climbing reduced s_total below the
	// best OS seed.
	Improved bool
}

// OptimizeResources is the two-step resource optimization of Fig. 7:
// first OptimizeSchedule finds schedulable seed solutions, then a
// hill-climbing loop performs the §5.1 moves, accepting only schedulable
// neighbours that strictly reduce s_total.
//
// Cancelling ctx stops the climb at the next evaluation granule: the
// returned ORResult then carries the best configuration found so far,
// together with ctx's error.
func OptimizeResources(ctx context.Context, app *model.Application, arch *model.Architecture, opts OROptions) (*ORResult, error) {
	opts.defaults()
	osres, err := OptimizeSchedule(ctx, app, arch, opts.OS)
	if err != nil {
		if osres == nil || osres.Best == nil {
			return nil, err
		}
		// Cancelled mid-OS: surface the best-effort OS result.
		return &ORResult{OS: osres, Best: osres.Best, Evaluations: osres.Evaluations}, err
	}
	out := &ORResult{OS: osres, Best: osres.Best, Evaluations: osres.Evaluations}
	if osres.Best == nil || !osres.Best.Schedulable() {
		// The paper's step 1 failure path ("modify mapping and/or
		// architecture") is outside our scope: report best effort.
		return out, ctx.Err()
	}
	rng := rand.New(rand.NewSource(opts.RandSeed))
	pool := opts.Pool
	if pool == nil {
		pool = engine.New(opts.Workers)
	}
	eval := opts.Hooks.eval(app, arch)
	best := osres.Best
	step := 0
	for si, seed := range osres.Seeds {
		if si >= opts.Seeds {
			break
		}
		if !seed.Schedulable() {
			continue
		}
		cur := seed
		for it := 0; it < opts.MaxIterations; it++ {
			if ctx.Err() != nil {
				out.Best = best
				return out, ctx.Err()
			}
			// The neighbourhood is drawn serially (one rng stream, same
			// sequence as the serial climber), then scored in parallel:
			// the typed moves derive each neighbour from the shared
			// incumbent inside the batch.
			moves := GenerateMoves(app, arch, cur.Config, cur.Analysis, MoveBudget{Max: opts.NeighborBudget, Rand: rng})
			evals, _ := engine.EvaluateAllDelta(ctx, pool, engine.Analyzer(eval), cur.Config, len(moves),
				func(k int, parent *core.Config) (*core.Config, error) {
					return moves[k].Apply(app, arch, parent)
				})
			var chosen *Result
			for _, ev := range evals {
				if ev.Err != nil || ev.Analysis == nil {
					continue // impossible move, unanalyzable or cancelled
				}
				r := &Result{Config: ev.Config, Analysis: ev.Analysis}
				out.Evaluations++
				if !r.Schedulable() {
					continue
				}
				if r.STotal() < cur.STotal() && (chosen == nil || r.STotal() < chosen.STotal()) {
					chosen = r
				}
			}
			if chosen == nil {
				break
			}
			cur = chosen
			if cur.STotal() < best.STotal() || (cur.STotal() == best.STotal() && cur.Delta() < best.Delta()) {
				best = cur
				out.Improved = true
			}
			step++
			opts.Hooks.progress(Progress{Phase: "or", Step: step, Evaluations: out.Evaluations, Best: best})
		}
	}
	out.Best = best
	// A cancellation that lands while a neighbourhood batch is being
	// scored truncates the scan ("no improving neighbour" is then
	// unprovable), so a cancelled climb always reports ctx's error with
	// its best-so-far rather than posing as a completed run.
	return out, ctx.Err()
}
