package opt

import (
	"context"
	"reflect"
	"testing"
)

// TestOptimizeScheduleParallelEqualsSerial checks the engine contract
// on the OS heuristic: the full result (best, seeds, evaluation count)
// of a parallel run is identical to the serial run's.
func TestOptimizeScheduleParallelEqualsSerial(t *testing.T) {
	app, arch := small(t, 7)
	serial, err := OptimizeSchedule(context.Background(), app, arch, OSOptions{Workers: 1})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 8} {
		par, err := OptimizeSchedule(context.Background(), app, arch, OSOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Evaluations != serial.Evaluations {
			t.Errorf("workers=%d: %d evaluations, serial did %d", workers, par.Evaluations, serial.Evaluations)
		}
		if !reflect.DeepEqual(par.Best.Config, serial.Best.Config) {
			t.Errorf("workers=%d: best config differs from serial", workers)
		}
		if !reflect.DeepEqual(par.Best.Analysis, serial.Best.Analysis) {
			t.Errorf("workers=%d: best analysis differs from serial", workers)
		}
		if len(par.Seeds) != len(serial.Seeds) {
			t.Fatalf("workers=%d: %d seeds, serial found %d", workers, len(par.Seeds), len(serial.Seeds))
		}
		for i := range par.Seeds {
			if !reflect.DeepEqual(par.Seeds[i].Config, serial.Seeds[i].Config) {
				t.Errorf("workers=%d: seed %d differs from serial", workers, i)
			}
		}
	}
}

// TestOptimizeResourcesParallelEqualsSerial checks that the
// hill-climbing outcome (including the rng-driven neighbourhood walk)
// does not depend on the worker count.
func TestOptimizeResourcesParallelEqualsSerial(t *testing.T) {
	app, arch := small(t, 3)
	opts := OROptions{MaxIterations: 6, NeighborBudget: 12, RandSeed: 5}
	serialOpts := opts
	serialOpts.Workers = 1
	serial, err := OptimizeResources(context.Background(), app, arch, serialOpts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 8} {
		parOpts := opts
		parOpts.Workers = workers
		par, err := OptimizeResources(context.Background(), app, arch, parOpts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Evaluations != serial.Evaluations || par.Improved != serial.Improved {
			t.Errorf("workers=%d: evals=%d improved=%v, serial evals=%d improved=%v",
				workers, par.Evaluations, par.Improved, serial.Evaluations, serial.Improved)
		}
		if !reflect.DeepEqual(par.Best.Config, serial.Best.Config) {
			t.Errorf("workers=%d: best config differs from serial", workers)
		}
		if par.Best.STotal() != serial.Best.STotal() || par.Best.Delta() != serial.Best.Delta() {
			t.Errorf("workers=%d: best (s_total=%d, delta=%d), serial (%d, %d)",
				workers, par.Best.STotal(), par.Best.Delta(), serial.Best.STotal(), serial.Best.Delta())
		}
	}
}
