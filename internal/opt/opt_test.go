package opt

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
)

// fig4 rebuilds the paper's running example (see internal/core).
func fig4(t *testing.T) (*model.Application, *model.Architecture) {
	t.Helper()
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 5,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("fig4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	for _, e := range []model.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return app, arch
}

// small generates a compact random system for heuristic tests.
func small(t *testing.T, seed int64) (*model.Application, *model.Architecture) {
	t.Helper()
	sys, err := gen.Generate(gen.Spec{
		Seed: seed, TTNodes: 1, ETNodes: 1, ProcsPerNode: 8, ProcsPerGraph: 8,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sys.Application, sys.Architecture
}

func TestStraightforward(t *testing.T) {
	app, arch := fig4(t)
	r, err := Straightforward(app, arch)
	if err != nil {
		t.Fatalf("Straightforward: %v", err)
	}
	if err := r.Config.Validate(app, arch); err != nil {
		t.Fatalf("SF config invalid: %v", err)
	}
	if r.Analysis == nil {
		t.Fatal("SF result has no analysis")
	}
}

func TestOptimizeScheduleBeatsSF(t *testing.T) {
	app, arch := fig4(t)
	sf, err := Straightforward(app, arch)
	if err != nil {
		t.Fatalf("Straightforward: %v", err)
	}
	osres, err := OptimizeSchedule(context.Background(), app, arch, OSOptions{})
	if err != nil {
		t.Fatalf("OptimizeSchedule: %v", err)
	}
	if osres.Best == nil {
		t.Fatal("OS produced no result")
	}
	if osres.Best.Delta() > sf.Delta() {
		t.Errorf("OS delta %d worse than SF delta %d", osres.Best.Delta(), sf.Delta())
	}
	if !osres.Best.Schedulable() {
		t.Errorf("OS failed to schedule Figure 4 (delta=%d)", osres.Best.Delta())
	}
	if len(osres.Seeds) == 0 {
		t.Error("OS recorded no seed solutions")
	}
	if osres.Evaluations <= 0 {
		t.Error("OS reported no evaluations")
	}
	for _, s := range osres.Seeds {
		if err := s.Config.Validate(app, arch); err != nil {
			t.Errorf("seed config invalid: %v", err)
		}
	}
}

func TestOptimizeResourcesReducesBuffers(t *testing.T) {
	app, arch := small(t, 21)
	orres, err := OptimizeResources(context.Background(), app, arch, OROptions{
		MaxIterations: 10, NeighborBudget: 12, Seeds: 2,
	})
	if err != nil {
		t.Fatalf("OptimizeResources: %v", err)
	}
	if orres.Best == nil {
		t.Fatal("OR produced no result")
	}
	if orres.OS.Best.Schedulable() {
		if !orres.Best.Schedulable() {
			t.Error("OR lost schedulability")
		}
		if orres.Best.STotal() > orres.OS.Best.STotal() {
			t.Errorf("OR s_total %d exceeds OS best %d", orres.Best.STotal(), orres.OS.Best.STotal())
		}
	}
	if orres.Evaluations < orres.OS.Evaluations {
		t.Error("evaluation accounting lost the OS step")
	}
}

func TestGenerateMovesDeterministicAndBounded(t *testing.T) {
	app, arch := fig4(t)
	sf, err := Straightforward(app, arch)
	if err != nil {
		t.Fatalf("Straightforward: %v", err)
	}
	a := sf.Analysis
	m1 := GenerateMoves(app, arch, sf.Config, a, MoveBudget{Max: 10, Rand: rand.New(rand.NewSource(5))})
	m2 := GenerateMoves(app, arch, sf.Config, a, MoveBudget{Max: 10, Rand: rand.New(rand.NewSource(5))})
	if len(m1) == 0 || len(m1) > 10 {
		t.Fatalf("move count %d outside (0,10]", len(m1))
	}
	if len(m1) != len(m2) {
		t.Fatalf("same seed produced %d vs %d moves", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("move %d differs: %v vs %v", i, m1[i], m2[i])
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, m := range m1 {
		if seen[m.String()] {
			t.Errorf("duplicate move %v", m)
		}
		seen[m.String()] = true
	}
}

func TestMovesApplyAndValidate(t *testing.T) {
	app, arch := fig4(t)
	sf, err := Straightforward(app, arch)
	if err != nil {
		t.Fatalf("Straightforward: %v", err)
	}
	moves := GenerateMoves(app, arch, sf.Config, sf.Analysis, MoveBudget{Max: 40})
	applied := 0
	for _, m := range moves {
		cfg, err := m.Apply(app, arch, sf.Config)
		if err != nil {
			continue // legitimately impossible (e.g. shrink at minimum)
		}
		applied++
		if err := cfg.Validate(app, arch); err != nil {
			t.Errorf("move %v produced invalid config: %v", m, err)
		}
		if cfg == sf.Config {
			t.Errorf("move %v mutated the original config", m)
		}
	}
	if applied == 0 {
		t.Error("no move could be applied")
	}
}

func TestMoveApplyErrors(t *testing.T) {
	app, arch := fig4(t)
	cfg := core.DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	cases := []Move{
		{Kind: MoveUnpinProc, Proc: 0},                   // nothing pinned
		{Kind: MoveUnpinEdge, Edge: 0},                   // nothing pinned
		{Kind: MoveResizeSlot, Slot: 0, Delta: -1000000}, // below minimum
		{Kind: MoveSwapSlots, Slot: 0, Slot2: 0},         // same slot
		{Kind: MoveSwapSlots, Slot: 0, Slot2: 99},        // out of range
		{Kind: MoveSwapProcPrio, Proc: 0, Proc2: 0},      // TT process: no priority
		{Kind: MoveKind(99)},                             // unknown
	}
	for _, m := range cases {
		if _, err := m.Apply(app, arch, cfg); err == nil {
			t.Errorf("move %v unexpectedly applied", m)
		}
	}
}

func TestMoveRoundTripSlotSwap(t *testing.T) {
	app, arch := fig4(t)
	cfg := core.DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	m := Move{Kind: MoveSwapSlots, Slot: 0, Slot2: 1}
	once, err := m.Apply(app, arch, cfg)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	twice, err := m.Apply(app, arch, once)
	if err != nil {
		t.Fatalf("Apply twice: %v", err)
	}
	for i := range cfg.Round.Slots {
		if twice.Round.Slots[i].Node != cfg.Round.Slots[i].Node {
			t.Fatal("double swap did not restore the slot order")
		}
	}
	if once.Round.Slots[0].Node == cfg.Round.Slots[0].Node {
		t.Fatal("swap did not change the slot order")
	}
}

func TestSelectSeedsPrefersSchedulableSmallBuffers(t *testing.T) {
	app, arch := fig4(t)
	mk := func(delta model.Time, stotal int, sched bool) *Result {
		return &Result{
			Config: core.DefaultConfig(app, arch),
			Analysis: &core.Analysis{
				Delta:       delta,
				Schedulable: sched,
				Buffers:     core.Buffers{Total: stotal},
			},
		}
	}
	all := []*Result{
		mk(50, 10, false),
		mk(-5, 100, true),
		mk(-1, 20, true),
		mk(-20, 500, true),
	}
	seeds := selectSeeds(all, 3)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3", len(seeds))
	}
	// The smallest schedulable s_total (20) must be among the seeds.
	found := false
	for _, s := range seeds {
		if s.STotal() == 20 {
			found = true
		}
	}
	if !found {
		t.Error("seed list misses the best-buffer schedulable solution")
	}
	// The best delta (-20) must be among the seeds.
	found = false
	for _, s := range seeds {
		if s.Delta() == -20 {
			found = true
		}
	}
	if !found {
		t.Error("seed list misses the best-delta solution")
	}
}

func TestMoveKindString(t *testing.T) {
	kinds := []MoveKind{MovePinProc, MovePinEdge, MoveUnpinProc, MoveUnpinEdge,
		MoveSwapProcPrio, MoveSwapMsgPrio, MoveResizeSlot, MoveSwapSlots, MoveKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", int(k))
		}
	}
}

// TestORImprovesCruiseBuffers pins the E6 buffer story at the opt level:
// the hill climber must find a schedulable configuration with strictly
// smaller s_total than the best OS seed on the cruise controller.
func TestORImprovesCruiseBuffers(t *testing.T) {
	if testing.Short() {
		t.Skip("cruise OR sweep")
	}
	sys, err := gen.Generate(gen.Spec{Seed: 31, TTNodes: 2, ETNodes: 2, ProcsPerNode: 10, ProcsPerGraph: 10})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	orres, err := OptimizeResources(context.Background(), app, arch, OROptions{MaxIterations: 20, NeighborBudget: 16, Seeds: 3})
	if err != nil {
		t.Fatalf("OptimizeResources: %v", err)
	}
	if !orres.OS.Best.Schedulable() {
		t.Skip("OS could not schedule this seed")
	}
	if orres.Best.STotal() > orres.OS.Best.STotal() {
		t.Errorf("OR worsened buffers: %d > %d", orres.Best.STotal(), orres.OS.Best.STotal())
	}
}

// TestMovePinWithinInterval: a pin inside [ASAP, ALAP] of a schedulable
// system must keep the analysis well-formed and the pin observable.
func TestMovePinWithinInterval(t *testing.T) {
	app, arch := fig4(t)
	osres, err := OptimizeSchedule(context.Background(), app, arch, OSOptions{})
	if err != nil {
		t.Fatalf("OptimizeSchedule: %v", err)
	}
	best := osres.Best
	if !best.Schedulable() {
		t.Fatal("figure-4 OS result unschedulable")
	}
	var moved bool
	for _, p := range app.Procs {
		iv, ok := best.Analysis.ProcMoveInterval(app, p.ID)
		if !ok || iv.ALAP <= iv.ASAP {
			continue
		}
		mv := Move{Kind: MovePinProc, Proc: p.ID, Offset: iv.ASAP + 1}
		cfg, err := mv.Apply(app, arch, best.Config)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		a, err := core.Analyze(app, arch, cfg)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		if got := a.Proc[p.ID].O; got < iv.ASAP+1 {
			t.Errorf("pinned %s starts at %d, pin was %d", p.Name, got, iv.ASAP+1)
		}
		moved = true
		break
	}
	if !moved {
		t.Skip("no movable TT activity with slack")
	}
}
