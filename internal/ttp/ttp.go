// Package ttp models the time-triggered protocol bus of the TTC: TDMA
// rounds made of per-node slots, slot timing arithmetic, and the message
// descriptor list (MEDL) that statically schedules frames onto slot
// occurrences.
//
// The bus access scheme follows §2.2 of the paper: every slot owner (each
// TT node plus the gateway) transmits in exactly one slot S_i per TDMA
// round; a round repeats periodically and several rounds form a cycle.
// This implementation pads the round so that the round period divides the
// application hyper-period, which makes the cycle exactly one hyper-period
// long and keeps static schedules strictly periodic.
package ttp

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Slot is one TDMA slot: the owning node and the slot length in ticks.
// The byte capacity of the slot is Length / TickPerByte of the bus.
type Slot struct {
	Node   model.NodeID `json:"node"`
	Length model.Time   `json:"length"`
}

// Round is an ordered sequence of slots plus optional idle padding. The
// round period is the sum of the slot lengths and the padding.
type Round struct {
	Slots   []Slot     `json:"slots"`
	Padding model.Time `json:"padding"`
}

// NewRound builds a round with the given slot order and lengths.
func NewRound(order []model.NodeID, length func(model.NodeID) model.Time) Round {
	r := Round{Slots: make([]Slot, len(order))}
	for i, n := range order {
		r.Slots[i] = Slot{Node: n, Length: length(n)}
	}
	return r
}

// Clone returns a deep copy of the round.
func (r Round) Clone() Round {
	c := r
	c.Slots = append([]Slot(nil), r.Slots...)
	return c
}

// Period returns T_TDMA, the duration of one TDMA round.
func (r Round) Period() model.Time {
	var p model.Time
	for _, s := range r.Slots {
		p += s.Length
	}
	return p + r.Padding
}

// SlotOffset returns the start offset of slot i within the round.
func (r Round) SlotOffset(i int) model.Time {
	var off model.Time
	for j := 0; j < i; j++ {
		off += r.Slots[j].Length
	}
	return off
}

// SlotIndexOf returns the index of the slot owned by node, or -1.
func (r Round) SlotIndexOf(node model.NodeID) int {
	for i, s := range r.Slots {
		if s.Node == node {
			return i
		}
	}
	return -1
}

// Capacity returns the byte capacity of slot i given the bus speed.
func (r Round) Capacity(i int, tickPerByte model.Time) int {
	if tickPerByte <= 0 {
		return 0
	}
	return int(r.Slots[i].Length / tickPerByte)
}

// OccurrenceStart returns the absolute start time of the k-th occurrence
// (k >= 0) of slot i, assuming rounds start at time 0.
func (r Round) OccurrenceStart(i, k int) model.Time {
	return model.Time(k)*r.Period() + r.SlotOffset(i)
}

// NextOccurrence returns the smallest k such that the k-th occurrence of
// slot i starts at or after t.
func (r Round) NextOccurrence(i int, t model.Time) int {
	off := r.SlotOffset(i)
	p := r.Period()
	if t <= off {
		return 0
	}
	k := (t - off + p - 1) / p
	return int(k)
}

// NextSlotStart returns the earliest start time >= t of slot i.
func (r Round) NextSlotStart(i int, t model.Time) model.Time {
	return r.OccurrenceStart(i, r.NextOccurrence(i, t))
}

// WorstWait returns the worst-case time a message enqueued anywhere in
// the window [t, t+jitter] waits until the next start of slot i. It is
// the blocking term B_m of the paper's §4.1.2 OutTTP analysis, computed
// exactly: the wait is (offset_i - u) mod period, maximized over u in the
// window, and never exceeds one round period.
func (r Round) WorstWait(i int, t, jitter model.Time) model.Time {
	p := r.Period()
	if jitter >= p-1 {
		return p - 1 // arrive one tick after the slot start: wait p-1
	}
	off := r.SlotOffset(i)
	waitAt := func(u model.Time) model.Time {
		w := (off - u) % p
		if w < 0 {
			w += p
		}
		return w
	}
	// The wait decreases by one per tick of u until it wraps from 0 back
	// to p-1. The maximum over the window is at the window start, unless
	// the wrap point lies strictly inside the window.
	w0 := waitAt(t)
	if jitter > w0 { // wrap inside (t, t+jitter]
		return p - 1
	}
	return w0
}

// Validate checks that the round has exactly one slot per owner, in any
// order, with positive lengths and non-negative padding.
func (r Round) Validate(owners []model.NodeID) error {
	if len(r.Slots) != len(owners) {
		return fmt.Errorf("ttp: round has %d slots, want one per owner (%d)", len(r.Slots), len(owners))
	}
	seen := make(map[model.NodeID]bool, len(r.Slots))
	want := make(map[model.NodeID]bool, len(owners))
	for _, n := range owners {
		want[n] = true
	}
	for _, s := range r.Slots {
		if s.Length <= 0 {
			return fmt.Errorf("ttp: slot of node %d has non-positive length %d", s.Node, s.Length)
		}
		if seen[s.Node] {
			return fmt.Errorf("ttp: node %d owns more than one slot", s.Node)
		}
		if !want[s.Node] {
			return fmt.Errorf("ttp: node %d is not a slot owner", s.Node)
		}
		seen[s.Node] = true
	}
	if r.Padding < 0 {
		return fmt.Errorf("ttp: negative padding %d", r.Padding)
	}
	return nil
}

// PadToDivide adjusts the round padding so that the round period divides
// cycle (the application hyper-period). The smallest divisor of cycle
// that is >= the unpadded slot sum is chosen. An error is returned when
// the slot sum exceeds the cycle.
func (r *Round) PadToDivide(cycle model.Time) error {
	r.Padding = 0
	base := r.Period()
	if base > cycle {
		return fmt.Errorf("ttp: round length %d exceeds cycle %d", base, cycle)
	}
	if cycle%base == 0 {
		return nil
	}
	d := smallestDivisorAtLeast(cycle, base)
	if d < 0 {
		return fmt.Errorf("ttp: no divisor of %d at least %d", cycle, base)
	}
	r.Padding = d - base
	return nil
}

// smallestDivisorAtLeast returns the smallest divisor of n that is >= lo,
// or -1 if none exists (lo > n).
func smallestDivisorAtLeast(n, lo model.Time) model.Time {
	if lo > n {
		return -1
	}
	divs := Divisors(n)
	i := sort.Search(len(divs), func(i int) bool { return divs[i] >= lo })
	if i == len(divs) {
		return -1
	}
	return divs[i]
}

// Divisors returns all positive divisors of n in ascending order.
func Divisors(n model.Time) []model.Time {
	var lo, hi []model.Time
	for d := model.Time(1); d*d <= n; d++ {
		if n%d == 0 {
			lo = append(lo, d)
			if d != n/d {
				hi = append(hi, n/d)
			}
		}
	}
	for i := len(hi) - 1; i >= 0; i-- {
		lo = append(lo, hi[i])
	}
	return lo
}

// String renders the round like "[N1:20 NG:20 pad:8]".
func (r Round) String() string {
	s := "["
	for i, sl := range r.Slots {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("n%d:%d", sl.Node, sl.Length)
	}
	if r.Padding > 0 {
		s += fmt.Sprintf(" pad:%d", r.Padding)
	}
	return s + "]"
}
