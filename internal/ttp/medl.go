package ttp

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// MEDLEntry is one statically scheduled frame fragment: message instance
// k of edge Edge occupies Bytes bytes of slot Slot's occurrence Round
// within the cycle.
type MEDLEntry struct {
	Edge     model.EdgeID `json:"edge"`
	Instance int          `json:"instance"`
	Slot     int          `json:"slot"`
	Round    int          `json:"round"`
	Bytes    int          `json:"bytes"`
	// Start and End are the absolute slot occurrence boundaries within
	// the cycle; the message is available to receivers at End.
	Start model.Time `json:"start"`
	End   model.Time `json:"end"`
}

// MEDL is the message descriptor list: the static schedule of all frames
// on the TTP bus over one cycle (= one application hyper-period).
type MEDL struct {
	Round   Round       `json:"round"`
	Cycle   model.Time  `json:"cycle"`
	Entries []MEDLEntry `json:"entries"`
}

// Validate checks structural consistency: the cycle is an integral
// number of rounds, every entry's window matches its slot occurrence,
// and no slot occurrence is filled beyond its byte capacity.
func (m *MEDL) Validate(tickPerByte model.Time) error {
	p := m.Round.Period()
	if p <= 0 || m.Cycle%p != 0 {
		return fmt.Errorf("ttp: cycle %d is not a multiple of the round period %d", m.Cycle, p)
	}
	rounds := int(m.Cycle / p)
	used := make(map[[2]int]int) // (round, slot) -> bytes
	for _, e := range m.Entries {
		if e.Round < 0 || e.Round >= rounds {
			return fmt.Errorf("ttp: entry of edge %d in round %d of %d", e.Edge, e.Round, rounds)
		}
		if e.Slot < 0 || e.Slot >= len(m.Round.Slots) {
			return fmt.Errorf("ttp: entry of edge %d in unknown slot %d", e.Edge, e.Slot)
		}
		start := m.Round.OccurrenceStart(e.Slot, e.Round)
		end := start + m.Round.Slots[e.Slot].Length
		if e.Start != start || e.End != end {
			return fmt.Errorf("ttp: entry of edge %d has window [%d,%d), slot occurrence is [%d,%d)", e.Edge, e.Start, e.End, start, end)
		}
		if e.Bytes <= 0 {
			return fmt.Errorf("ttp: entry of edge %d has %d bytes", e.Edge, e.Bytes)
		}
		used[[2]int{e.Round, e.Slot}] += e.Bytes
	}
	for key, b := range used {
		if cap := m.Round.Capacity(key[1], tickPerByte); b > cap {
			return fmt.Errorf("ttp: slot %d of round %d carries %d bytes, capacity %d", key[1], key[0], b, cap)
		}
	}
	return nil
}

// EntriesOfSlot returns the entries transmitted in slot i, ordered by
// round occurrence then edge ID.
func (m *MEDL) EntriesOfSlot(i int) []MEDLEntry {
	var out []MEDLEntry
	for _, e := range m.Entries {
		if e.Slot == i {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Round != out[b].Round {
			return out[a].Round < out[b].Round
		}
		return out[a].Edge < out[b].Edge
	})
	return out
}

// ArrivalOf returns the bus delivery time of instance k of edge e, or
// false if the MEDL does not carry it.
func (m *MEDL) ArrivalOf(e model.EdgeID, instance int) (model.Time, bool) {
	for _, en := range m.Entries {
		if en.Edge == e && en.Instance == instance {
			return en.End, true
		}
	}
	return 0, false
}
