package ttp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// fig4Round is the paper's Figure 4(a) round: S_G (node 2) then S_1
// (node 0), 20 ticks each.
func fig4Round() Round {
	return Round{Slots: []Slot{{Node: 2, Length: 20}, {Node: 0, Length: 20}}}
}

func TestRoundBasics(t *testing.T) {
	r := fig4Round()
	if r.Period() != 40 {
		t.Errorf("Period = %d, want 40", r.Period())
	}
	if r.SlotOffset(0) != 0 || r.SlotOffset(1) != 20 {
		t.Errorf("SlotOffset = %d,%d want 0,20", r.SlotOffset(0), r.SlotOffset(1))
	}
	if r.SlotIndexOf(0) != 1 || r.SlotIndexOf(2) != 0 || r.SlotIndexOf(9) != -1 {
		t.Error("SlotIndexOf mismatch")
	}
	if r.Capacity(0, 1) != 20 || r.Capacity(0, 4) != 5 || r.Capacity(0, 0) != 0 {
		t.Error("Capacity mismatch")
	}
}

func TestOccurrenceStartAndNext(t *testing.T) {
	r := fig4Round()
	// Slot 1 (S_1) occurrences: 20, 60, 100, ...
	if got := r.OccurrenceStart(1, 0); got != 20 {
		t.Errorf("OccurrenceStart(1,0) = %d, want 20", got)
	}
	if got := r.OccurrenceStart(1, 2); got != 100 {
		t.Errorf("OccurrenceStart(1,2) = %d, want 100", got)
	}
	cases := []struct {
		t    model.Time
		want model.Time
	}{
		{0, 20}, {20, 20}, {21, 60}, {30, 60}, {60, 60}, {61, 100},
	}
	for _, c := range cases {
		if got := r.NextSlotStart(1, c.t); got != c.want {
			t.Errorf("NextSlotStart(1, %d) = %d, want %d", c.t, got, c.want)
		}
	}
	// The paper's §4.2 trace: m3 enters OutTTP at 160; the gateway slot
	// S_G (index 0) starts exactly at 160.
	if got := r.NextSlotStart(0, 160); got != 160 {
		t.Errorf("NextSlotStart(S_G, 160) = %d, want 160", got)
	}
}

func TestWorstWait(t *testing.T) {
	r := fig4Round()
	// No jitter: deterministic wait until the next S_G start.
	if got := r.WorstWait(0, 160, 0); got != 0 {
		t.Errorf("WorstWait(SG,160,0) = %d, want 0", got)
	}
	if got := r.WorstWait(0, 161, 0); got != 39 {
		t.Errorf("WorstWait(SG,161,0) = %d, want 39", got)
	}
	// Window covering a wrap point must yield the full worst wait.
	if got := r.WorstWait(0, 155, 10); got != 39 {
		t.Errorf("WorstWait(SG,155,10) = %d, want 39", got)
	}
	// Window not covering the wrap: max at the window start.
	if got := r.WorstWait(0, 150, 5); got != 10 {
		t.Errorf("WorstWait(SG,150,5) = %d, want 10", got)
	}
	// Huge jitter: one round minus one tick.
	if got := r.WorstWait(0, 3, 1000); got != 39 {
		t.Errorf("WorstWait(SG,3,1000) = %d, want 39", got)
	}
}

func TestWorstWaitNeverOptimistic(t *testing.T) {
	// Property: for every arrival u in [t, t+J], the actual wait until
	// the next occurrence of the slot is <= WorstWait.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Round{Slots: []Slot{
			{Node: 0, Length: 1 + model.Time(rng.Intn(30))},
			{Node: 1, Length: 1 + model.Time(rng.Intn(30))},
			{Node: 2, Length: 1 + model.Time(rng.Intn(30))},
		}, Padding: model.Time(rng.Intn(10))}
		slot := rng.Intn(3)
		t0 := model.Time(rng.Intn(500))
		j := model.Time(rng.Intn(120))
		worst := r.WorstWait(slot, t0, j)
		for u := t0; u <= t0+j; u++ {
			wait := r.NextSlotStart(slot, u) - u
			if wait > worst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestValidateRound(t *testing.T) {
	owners := []model.NodeID{0, 2}
	if err := fig4Round().Validate(owners); err != nil {
		t.Errorf("valid round rejected: %v", err)
	}
	bad := Round{Slots: []Slot{{Node: 0, Length: 20}}}
	if err := bad.Validate(owners); err == nil {
		t.Error("accepted round with missing slot")
	}
	bad = Round{Slots: []Slot{{Node: 0, Length: 20}, {Node: 0, Length: 20}}}
	if err := bad.Validate(owners); err == nil {
		t.Error("accepted duplicate slot owner")
	}
	bad = Round{Slots: []Slot{{Node: 0, Length: 0}, {Node: 2, Length: 20}}}
	if err := bad.Validate(owners); err == nil {
		t.Error("accepted zero-length slot")
	}
	bad = Round{Slots: []Slot{{Node: 0, Length: 20}, {Node: 7, Length: 20}}}
	if err := bad.Validate(owners); err == nil {
		t.Error("accepted foreign slot owner")
	}
}

func TestPadToDivide(t *testing.T) {
	r := fig4Round() // period 40
	if err := r.PadToDivide(240); err != nil {
		t.Fatalf("PadToDivide: %v", err)
	}
	if r.Padding != 0 || r.Period() != 40 {
		t.Errorf("240 %% 40 == 0, padding should stay 0, got %d", r.Padding)
	}
	r = Round{Slots: []Slot{{Node: 0, Length: 17}, {Node: 1, Length: 20}}} // 37
	if err := r.PadToDivide(240); err != nil {
		t.Fatalf("PadToDivide: %v", err)
	}
	if 240%r.Period() != 0 || r.Period() < 37 {
		t.Errorf("period %d does not divide 240 or shrank", r.Period())
	}
	if r.Period() != 40 { // smallest divisor of 240 that is >= 37
		t.Errorf("period = %d, want 40", r.Period())
	}
	r = Round{Slots: []Slot{{Node: 0, Length: 500}}}
	if err := r.PadToDivide(240); err == nil {
		t.Error("accepted round longer than the cycle")
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []model.Time{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v, want %v", got, want)
		}
	}
	if d := Divisors(7); len(d) != 2 || d[0] != 1 || d[1] != 7 {
		t.Errorf("Divisors(7) = %v", d)
	}
}

func TestPropertyPadToDivide(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cycle := model.Time(60 * (1 + rng.Intn(50)))
		r := Round{Slots: []Slot{
			{Node: 0, Length: 1 + model.Time(rng.Intn(20))},
			{Node: 1, Length: 1 + model.Time(rng.Intn(20))},
		}}
		if err := r.PadToDivide(cycle); err != nil {
			return r.Period() > cycle+r.Padding // only legitimate failure: too long
		}
		return cycle%r.Period() == 0 && r.Padding >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMEDLValidate(t *testing.T) {
	r := fig4Round()
	m := &MEDL{Round: r, Cycle: 240}
	add := func(e model.EdgeID, inst, slot, round, bytes int) {
		start := r.OccurrenceStart(slot, round)
		m.Entries = append(m.Entries, MEDLEntry{
			Edge: e, Instance: inst, Slot: slot, Round: round, Bytes: bytes,
			Start: start, End: start + r.Slots[slot].Length,
		})
	}
	add(0, 0, 1, 1, 8) // m1 in S1 of round 2 (index 1): the Fig 3 trace
	add(1, 0, 1, 1, 8)
	if err := m.Validate(1); err != nil {
		t.Fatalf("valid MEDL rejected: %v", err)
	}
	if got, ok := m.ArrivalOf(0, 0); !ok || got != 80 {
		t.Errorf("ArrivalOf(m1) = %d,%v want 80,true", got, ok)
	}
	if _, ok := m.ArrivalOf(9, 0); ok {
		t.Error("ArrivalOf found a message that is not in the MEDL")
	}
	ents := m.EntriesOfSlot(1)
	if len(ents) != 2 || ents[0].Edge != 0 {
		t.Errorf("EntriesOfSlot = %v", ents)
	}

	// Capacity overflow: 20-byte capacity slot with 24 bytes.
	add(2, 0, 1, 1, 8)
	if err := m.Validate(1); err == nil {
		t.Error("accepted slot overflow")
	}
	m.Entries = m.Entries[:2]

	// Bad window.
	m.Entries = append(m.Entries, MEDLEntry{Edge: 3, Slot: 1, Round: 0, Bytes: 4, Start: 21, End: 40})
	if err := m.Validate(1); err == nil {
		t.Error("accepted entry with wrong window")
	}
	m.Entries = m.Entries[:2]

	// Round out of range.
	add(4, 0, 1, 6, 4)
	if err := m.Validate(1); err == nil {
		t.Error("accepted entry beyond the cycle")
	}

	// Cycle not multiple of round.
	m2 := &MEDL{Round: r, Cycle: 250}
	if err := m2.Validate(1); err == nil {
		t.Error("accepted cycle that is not a multiple of the round")
	}
}

func TestRoundStringAndClone(t *testing.T) {
	r := fig4Round()
	r.Padding = 8
	s := r.String()
	if s == "" || s[0] != '[' {
		t.Errorf("String = %q", s)
	}
	c := r.Clone()
	c.Slots[0].Length = 99
	if r.Slots[0].Length == 99 {
		t.Error("Clone shares slot storage")
	}
}

func TestNewRound(t *testing.T) {
	r := NewRound([]model.NodeID{3, 1}, func(n model.NodeID) model.Time { return model.Time(10 * (int(n) + 1)) })
	if len(r.Slots) != 2 || r.Slots[0].Node != 3 || r.Slots[0].Length != 40 || r.Slots[1].Length != 20 {
		t.Errorf("NewRound = %+v", r)
	}
}
