package delta

import (
	"repro/internal/model"
	"repro/internal/opt"
)

// Touch describes the cached state a §5.1 move's primary effect makes
// dead weight — the invalidation matrix of the incremental evaluator
// (documented as a table in docs/ARCHITECTURE.md §8).
//
// Correctness never depends on it: every cache in the evaluator is
// keyed by an exact encoding of its inputs, so a move simply steers
// lookups to new keys and the old entries go stale by construction.
// Touch exists to bound memory (Invalidate evicts along it) and to make
// the coupling structure explicit and testable.
//
// Primary effects only: the MCS outer loop (Fig. 5) feeds ET->TT
// deliveries back into the static schedule, so transitively every move
// can perturb every stage. Those secondary entries age out or fall to
// the caches' overflow clears.
type Touch struct {
	// Schedules: the static TTC schedule cache (tsched.Build results).
	// Set by moves that change the round or the pins — the schedule of
	// every release vector built from the old round/pins is dead.
	Schedules bool
	// Queues: the gateway OutTTP queue cache. Set by moves that change
	// the round (drain slots shift), the message priorities (queue-ahead
	// interference), or the TT-side timing (entry offsets).
	Queues bool
	// CANBus: the CAN bus resource's RTA fixed points. Set by message
	// priority swaps and by moves coupled through the gateway.
	CANBus bool
	// Nodes: ET CPUs whose RTA fixed points the move touches directly
	// (a process priority swap touches exactly its CPU).
	Nodes []model.NodeID
	// AllRTA: every resource's RTA fixed points — moves that shift the
	// static schedule move the release offsets of all gateway-coupled
	// clusters at once.
	AllRTA bool
}

// Touched maps a move to the state it invalidates:
//
//	move kind            schedule  OutTTP queue  CAN bus RTA  CPU RTA
//	swap-proc-prio       -         -             -            its node
//	swap-msg-prio        -         yes           yes          -
//	resize-slot          yes       yes           yes          all (gateway-coupled)
//	swap-slots           yes       yes           yes          all (gateway-coupled)
//	set-slot-length      yes       yes           yes          all (gateway-coupled)
//	pin/unpin proc/edge  yes       yes           yes          all (gateway-coupled)
func Touched(app *model.Application, m opt.Move) Touch {
	switch m.Kind {
	case opt.MoveSwapProcPrio:
		t := Touch{Nodes: []model.NodeID{app.Procs[m.Proc].Node}}
		if n2 := app.Procs[m.Proc2].Node; n2 != t.Nodes[0] {
			t.Nodes = append(t.Nodes, n2)
		}
		return t
	case opt.MoveSwapMsgPrio:
		return Touch{Queues: true, CANBus: true}
	case opt.MoveResizeSlot, opt.MoveSwapSlots, opt.MoveSetSlotLen:
		return Touch{Schedules: true, Queues: true, CANBus: true, AllRTA: true}
	case opt.MovePinProc, opt.MovePinEdge, opt.MoveUnpinProc, opt.MoveUnpinEdge:
		return Touch{Schedules: true, Queues: true, CANBus: true, AllRTA: true}
	}
	// Unknown kinds: assume everything, the conservative hint.
	return Touch{Schedules: true, Queues: true, CANBus: true, AllRTA: true}
}

// Invalidate evicts the stage-cache state Touched(m) names. It is a
// memory-management hint: results are unaffected whether or not it is
// called (see Touch).
func (ev *Evaluator) Invalidate(m opt.Move) {
	t := Touched(ev.app, m)
	memo := ev.aopts.Memo
	if t.Schedules {
		memo.DropSchedules()
	}
	if t.Queues {
		memo.DropQueues()
	}
	if t.AllRTA {
		for _, n := range ev.arch.Nodes {
			memo.DropRTAResource(int(n.ID))
		}
		memo.DropRTAResource(len(ev.arch.Nodes))
		return
	}
	if t.CANBus {
		memo.DropRTAResource(len(ev.arch.Nodes))
	}
	for _, n := range t.Nodes {
		memo.DropRTAResource(int(n))
	}
}
