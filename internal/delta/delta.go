// Package delta is the incremental delta-evaluation engine: an
// Evaluator wraps core.AnalyzeWith with caches that exploit how the
// synthesis loops work — thousands of candidate configurations per run,
// each differing from a parent by a single §5.1 move — so that the
// unchanged parts of the analysis are reused instead of recomputed.
//
// Three layers stack up, all provably bit-identical to the cold path:
//
//  1. A full-configuration memo: the canonical encoding of psi =
//     <phi, beta, pi> keys completed analyses, so re-visited
//     configurations (hill climbers circling, HOPA re-deriving the same
//     priorities, DSE offspring colliding) cost a map lookup.
//  2. Stage caches inside core.AnalyzeWith (see core.Memo): the static
//     TTC schedule, the per-resource response-time fixed points and the
//     gateway OutTTP queue are each keyed by an exact encoding of their
//     own inputs. A move that touches one cluster changes exactly that
//     cluster's keys; every other resource's entries keep hitting.
//     Stale reuse is impossible by construction — "invalidation" is
//     implicit in the keying — and the move-aware Touched/Invalidate
//     matrix (invalidate.go) exists to bound memory and document the
//     coupling, never to decide correctness.
//  3. Warm starts: RTA stage misses whose task set is identical to a
//     cached one except for pointwise larger jitters start their
//     first-pass fixed point from the parent's converged values
//     (rta.Options.Pass1Warm); monotonicity makes the trajectory's
//     result identical, and rta.SelfCheck re-proves it per fixed point
//     in debug builds and tests.
//
// Because every cache is exact-keyed, an Evaluator can be shared across
// seeds, strategies and worker counts without breaking the repo-wide
// determinism invariants; the differential harness (differential_test.go
// at the repository root) replays every strategy with the engine on and
// off and asserts byte-identical results.
package delta

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
)

// configCap bounds the full-configuration memo; on overflow the map is
// dropped whole (the memo only affects speed, never results).
const configCap = 8192

// Evaluator is the incremental evaluator for one (application,
// architecture, analysis-options) triple. It is safe for concurrent use
// by an evaluation pool. Returned *core.Analysis values are shared
// across callers and must be treated as read-only, which every consumer
// in this repository already does.
type Evaluator struct {
	app   *model.Application
	arch  *model.Architecture
	aopts core.AnalyzeOptions

	mu      sync.Mutex
	configs map[string]*core.Analysis
	hits    int64
	misses  int64
}

// New builds an Evaluator with default analysis options.
func New(app *model.Application, arch *model.Architecture) *Evaluator {
	return NewWith(app, arch, core.AnalyzeOptions{})
}

// NewWith builds an Evaluator for explicit analysis options (the Memo
// field is ignored; the Evaluator installs its own).
func NewWith(app *model.Application, arch *model.Architecture, aopts core.AnalyzeOptions) *Evaluator {
	aopts.Memo = core.NewMemo()
	return &Evaluator{
		app: app, arch: arch, aopts: aopts,
		configs: make(map[string]*core.Analysis),
	}
}

// Analyze runs (or recalls) the multi-cluster analysis of cfg. The
// result is bit-identical to core.AnalyzeWith with the same options and
// Memo == nil. Errors are never cached.
func (ev *Evaluator) Analyze(cfg *core.Config) (*core.Analysis, error) {
	key := ConfigKey(cfg)
	ev.mu.Lock()
	if a, ok := ev.configs[key]; ok {
		ev.hits++
		ev.mu.Unlock()
		return a, nil
	}
	ev.misses++
	ev.mu.Unlock()

	a, err := core.AnalyzeWith(ev.app, ev.arch, cfg, ev.aopts)
	if err != nil {
		return nil, err
	}
	ev.mu.Lock()
	if len(ev.configs) >= configCap {
		ev.configs = make(map[string]*core.Analysis)
	}
	ev.configs[key] = a
	ev.mu.Unlock()
	return a, nil
}

// Evict removes one configuration from the full-configuration memo (its
// stage-level inputs stay cached). Like all eviction here it is a
// memory hint; a later Analyze of the same configuration recomputes the
// identical result.
func (ev *Evaluator) Evict(cfg *core.Config) {
	ev.mu.Lock()
	delete(ev.configs, ConfigKey(cfg))
	ev.mu.Unlock()
}

// Reset drops the full-configuration memo and every stage cache.
func (ev *Evaluator) Reset() {
	ev.mu.Lock()
	ev.configs = make(map[string]*core.Analysis)
	ev.mu.Unlock()
	ev.aopts.Memo.Reset()
}

// Stats reports the evaluator's cache traffic.
type Stats struct {
	// ConfigHits/ConfigMisses count full-configuration memo traffic.
	ConfigHits, ConfigMisses int64
	// Memo holds the stage-cache counters (schedule, RTA, queue).
	Memo core.MemoStats
}

// HitRate is the fraction of Analyze calls served from the
// full-configuration memo (0 when nothing ran yet).
func (s Stats) HitRate() float64 {
	total := s.ConfigHits + s.ConfigMisses
	if total == 0 {
		return 0
	}
	return float64(s.ConfigHits) / float64(total)
}

// StageHitRate is the fraction of stage lookups served from the stage
// caches (0 when nothing ran yet).
func (s Stats) StageHitRate() float64 {
	total := s.Memo.Hits() + s.Memo.Misses()
	if total == 0 {
		return 0
	}
	return float64(s.Memo.Hits()) / float64(total)
}

// String renders the stats for diagnostics.
func (s Stats) String() string {
	return fmt.Sprintf("config %d/%d (%.0f%%), stages %d/%d (%.0f%%), warm starts %d",
		s.ConfigHits, s.ConfigHits+s.ConfigMisses, 100*s.HitRate(),
		s.Memo.Hits(), s.Memo.Hits()+s.Memo.Misses(), 100*s.StageHitRate(),
		s.Memo.RTAWarmStarts)
}

// Stats returns a snapshot of the counters.
func (ev *Evaluator) Stats() Stats {
	ev.mu.Lock()
	s := Stats{ConfigHits: ev.hits, ConfigMisses: ev.misses}
	ev.mu.Unlock()
	s.Memo = ev.aopts.Memo.Stats()
	return s
}

// ConfigKey returns the canonical binary encoding of a configuration:
// the TDMA round, then the priority and pin maps in sorted key order.
// Two configurations get the same key exactly when core.AnalyzeWith
// cannot tell them apart.
func ConfigKey(cfg *core.Config) string {
	b := make([]byte, 0, 64+8*(len(cfg.ProcPriority)+len(cfg.MsgPriority)))
	b = binary.AppendVarint(b, int64(len(cfg.Round.Slots)))
	for _, s := range cfg.Round.Slots {
		b = binary.AppendVarint(b, int64(s.Node))
		b = binary.AppendVarint(b, s.Length)
	}
	b = binary.AppendVarint(b, cfg.Round.Padding)
	b = appendSortedProcs(b, cfg.ProcPriority, func(v int) int64 { return int64(v) })
	b = appendSortedEdges(b, cfg.MsgPriority, func(v int) int64 { return int64(v) })
	b = appendSortedProcs(b, cfg.PinnedProc, func(v model.Time) int64 { return v })
	b = appendSortedEdges(b, cfg.PinnedEdge, func(v model.Time) int64 { return v })
	return string(b)
}

func appendSortedProcs[V any](b []byte, m map[model.ProcID]V, enc func(V) int64) []byte {
	ids := make([]model.ProcID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = binary.AppendVarint(b, int64(len(ids)))
	for _, id := range ids {
		b = binary.AppendVarint(b, int64(id))
		b = binary.AppendVarint(b, enc(m[id]))
	}
	return b
}

func appendSortedEdges[V any](b []byte, m map[model.EdgeID]V, enc func(V) int64) []byte {
	ids := make([]model.EdgeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = binary.AppendVarint(b, int64(len(ids)))
	for _, id := range ids {
		b = binary.AppendVarint(b, int64(id))
		b = binary.AppendVarint(b, enc(m[id]))
	}
	return b
}
