package delta

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/rta"
)

// selfCheck arms the RTA warm-start proof-of-equivalence for the
// duration of a test: every warm-started fixed point is recomputed cold
// and must agree exactly.
func selfCheck(t *testing.T) {
	t.Helper()
	rta.SelfCheck = true
	t.Cleanup(func() { rta.SelfCheck = false })
}

// corpusSystem materializes corpus member i of a small test corpus.
func corpusSystem(t testing.TB, i int) (*model.Application, *model.Architecture) {
	t.Helper()
	specs := gen.Corpus(i+1, 900, 4)
	sys, err := gen.Generate(specs[i])
	if err != nil {
		t.Fatalf("corpus member %d: %v", i, err)
	}
	return sys.Application, sys.Architecture
}

// walkConfigs derives a deterministic chain of configurations from the
// normalized default by applying sampled §5.1 moves, re-analyzing after
// each step (the shape every optimizer's traffic has).
func walkConfigs(t testing.TB, app *model.Application, arch *model.Architecture, steps int, seed int64) []*core.Config {
	t.Helper()
	cfg := core.DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(app, arch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := []*core.Config{cfg}
	for len(out) < steps {
		moves := opt.GenerateMoves(app, arch, cfg, a, opt.MoveBudget{Max: 16, Rand: rng})
		if len(moves) == 0 {
			break
		}
		next, err := moves[rng.Intn(len(moves))].Apply(app, arch, cfg)
		if err != nil {
			continue
		}
		na, err := core.Analyze(app, arch, next)
		if err != nil {
			continue
		}
		cfg, a = next, na
		out = append(out, cfg)
	}
	return out
}

// TestAnalyzeMatchesCold is the package-level bit-identity check: over
// corpus systems and optimizer-shaped move walks, every Evaluator
// analysis — cold-miss, warm-started and memo-hit alike — must deep-
// equal the reference core.Analyze result, with the RTA self-check
// armed so warm starts prove themselves per fixed point.
func TestAnalyzeMatchesCold(t *testing.T) {
	selfCheck(t)
	for i := 0; i < 3; i++ {
		app, arch := corpusSystem(t, i)
		ev := New(app, arch)
		for step, cfg := range walkConfigs(t, app, arch, 8, int64(100+i)) {
			want, err := core.Analyze(app, arch, cfg)
			if err != nil {
				t.Fatalf("system %d step %d: cold: %v", i, step, err)
			}
			got, err := ev.Analyze(cfg)
			if err != nil {
				t.Fatalf("system %d step %d: delta: %v", i, step, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("system %d step %d: delta analysis differs from cold", i, step)
			}
			// Replay: the memo hit must return the identical analysis.
			again, err := ev.Analyze(cfg)
			if err != nil {
				t.Fatalf("system %d step %d: replay: %v", i, step, err)
			}
			if again != got {
				t.Fatalf("system %d step %d: replay did not hit the config memo", i, step)
			}
		}
		s := ev.Stats()
		if s.ConfigHits == 0 || s.ConfigMisses == 0 {
			t.Fatalf("system %d: degenerate traffic: %v", i, s)
		}
	}
}

// TestConfigKey checks the canonical encoding: clones collide, every
// single-field perturbation separates.
func TestConfigKey(t *testing.T) {
	app, arch := corpusSystem(t, 0)
	cfg := core.DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatal(err)
	}
	base := ConfigKey(cfg)
	if got := ConfigKey(cfg.Clone()); got != base {
		t.Fatal("clone keys differ")
	}

	perturb := map[string]func(c *core.Config) *core.Config{
		"slot length": func(c *core.Config) *core.Config { c.Round.Slots[0].Length += 4; return c },
		"slot owner": func(c *core.Config) *core.Config {
			c.Round.Slots[0].Node, c.Round.Slots[1].Node = c.Round.Slots[1].Node, c.Round.Slots[0].Node
			return c
		},
		"padding": func(c *core.Config) *core.Config { c.Round.Padding += 4; return c },
		"proc priority": func(c *core.Config) *core.Config {
			for id := range c.ProcPriority {
				c.ProcPriority[id] += 1000
				break
			}
			return c
		},
		"msg priority": func(c *core.Config) *core.Config {
			for id := range c.MsgPriority {
				c.MsgPriority[id] += 1000
				break
			}
			return c
		},
		"proc pin": func(c *core.Config) *core.Config { return c.PinProc(app.Procs[0].ID, 123) },
	}
	for name, mutate := range perturb {
		if ConfigKey(mutate(cfg.Clone())) == base {
			t.Errorf("%s perturbation did not change the key", name)
		}
	}
}

// TestTouchedMatrix pins the documented invalidation matrix (the table
// in docs/ARCHITECTURE.md §8) move kind by move kind.
func TestTouchedMatrix(t *testing.T) {
	app, _ := corpusSystem(t, 0)
	full := Touch{Schedules: true, Queues: true, CANBus: true, AllRTA: true}
	cases := []struct {
		move opt.Move
		want Touch
	}{
		{opt.Move{Kind: opt.MoveSwapMsgPrio}, Touch{Queues: true, CANBus: true}},
		{opt.Move{Kind: opt.MoveResizeSlot}, full},
		{opt.Move{Kind: opt.MoveSwapSlots}, full},
		{opt.Move{Kind: opt.MoveSetSlotLen}, full},
		{opt.Move{Kind: opt.MovePinProc}, full},
		{opt.Move{Kind: opt.MovePinEdge}, full},
		{opt.Move{Kind: opt.MoveUnpinProc}, full},
		{opt.Move{Kind: opt.MoveUnpinEdge}, full},
		{opt.Move{Kind: opt.MoveKind(99)}, full},
	}
	for _, c := range cases {
		if got := Touched(app, c.move); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Touched(%v) = %+v, want %+v", c.move.Kind, got, c.want)
		}
	}

	// A priority swap touches exactly the processes' CPUs: one node for
	// a same-CPU swap, both for a cross-CPU one, never the bus or the
	// schedule.
	var sameCPU, crossCPU bool
	for i := range app.Procs {
		for j := range app.Procs {
			if i == j {
				continue
			}
			m := opt.Move{Kind: opt.MoveSwapProcPrio, Proc: app.Procs[i].ID, Proc2: app.Procs[j].ID}
			tc := Touched(app, m)
			if tc.Schedules || tc.Queues || tc.CANBus || tc.AllRTA {
				t.Fatalf("proc swap %v touches non-CPU state: %+v", m, tc)
			}
			if app.Procs[i].Node == app.Procs[j].Node {
				sameCPU = true
				if len(tc.Nodes) != 1 || tc.Nodes[0] != app.Procs[i].Node {
					t.Fatalf("same-CPU swap nodes = %v", tc.Nodes)
				}
			} else {
				crossCPU = true
				if len(tc.Nodes) != 2 {
					t.Fatalf("cross-CPU swap nodes = %v", tc.Nodes)
				}
			}
		}
	}
	if !sameCPU || !crossCPU {
		t.Fatal("corpus system exercised only one swap shape")
	}
}

// TestInvalidateIsAdvisory: evicting along the Touched matrix between
// analyses never changes a result — invalidation is a memory hint, the
// exact keys carry correctness.
func TestInvalidateIsAdvisory(t *testing.T) {
	selfCheck(t)
	app, arch := corpusSystem(t, 1)
	ev := New(app, arch)
	cfg := core.DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatal(err)
	}
	a, err := ev.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cur, curA := cfg, a
	for step := 0; step < 6; step++ {
		moves := opt.GenerateMoves(app, arch, cur, curA, opt.MoveBudget{Max: 12, Rand: rng})
		if len(moves) == 0 {
			break
		}
		m := moves[rng.Intn(len(moves))]
		next, err := m.Apply(app, arch, cur)
		if err != nil {
			continue
		}
		ev.Evict(next)   // drop any full-config entry,
		ev.Invalidate(m) // then evict the stage state the move touches
		got, err := ev.Analyze(next)
		if err != nil {
			continue
		}
		want, err := core.Analyze(app, arch, next)
		if err != nil {
			t.Fatalf("step %d: cold: %v", step, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: analysis after Invalidate(%v) differs from cold", step, m)
		}
		cur, curA = next, got
	}
}

// TestOSScanDeltaProperty is the satellite property test: over an
// OptimizeSchedule scan, the delta evaluator's caches must actually
// hit (hit rate > 0) while the reported result — the Evaluations
// counter included — stays exactly the full-path one.
func TestOSScanDeltaProperty(t *testing.T) {
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		app, arch := corpusSystem(t, i)

		cold, err := opt.OptimizeSchedule(ctx, app, arch, opt.OSOptions{})
		if err != nil {
			t.Fatalf("system %d: cold OS: %v", i, err)
		}
		ev := New(app, arch)
		warm, err := opt.OptimizeSchedule(ctx, app, arch, opt.OSOptions{Hooks: opt.Hooks{Eval: ev.Analyze}})
		if err != nil {
			t.Fatalf("system %d: delta OS: %v", i, err)
		}

		if warm.Evaluations != cold.Evaluations {
			t.Errorf("system %d: Evaluations %d with delta, %d without", i, warm.Evaluations, cold.Evaluations)
		}
		if !reflect.DeepEqual(warm.Best, cold.Best) {
			t.Errorf("system %d: OS best differs under delta evaluation", i)
		}
		if !reflect.DeepEqual(warm.Seeds, cold.Seeds) {
			t.Errorf("system %d: OS seeds differ under delta evaluation", i)
		}

		s := ev.Stats()
		if s.ConfigHits+s.Memo.Hits() == 0 {
			t.Errorf("system %d: delta cache never hit over the OS scan: %v", i, s)
		}
		if s.HitRate() < 0 || s.HitRate() > 1 || s.StageHitRate() < 0 || s.StageHitRate() > 1 {
			t.Errorf("system %d: hit rates out of range: %v", i, s)
		}
	}
}

// TestEvaluatorConcurrent drives one Evaluator from a parallel pool the
// way engine.EvaluateAllDelta does; run under -race this is the
// evaluator's data-race coverage.
func TestEvaluatorConcurrent(t *testing.T) {
	app, arch := corpusSystem(t, 2)
	ev := New(app, arch)
	cfgs := walkConfigs(t, app, arch, 6, 55)
	want := make([]*core.Analysis, len(cfgs))
	for i, cfg := range cfgs {
		a, err := core.Analyze(app, arch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			for rep := 0; rep < 3; rep++ {
				for i, cfg := range cfgs {
					a, err := ev.Analyze(cfg)
					if err != nil {
						done <- err
						return
					}
					if !reflect.DeepEqual(a, want[i]) {
						t.Errorf("concurrent analysis %d differs from cold", i)
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s := ev.Stats(); s.ConfigHits == 0 {
		t.Errorf("no config hits under concurrent replay: %v", s)
	}
}

// TestResetAndStats: Reset drops every layer; analysis afterwards still
// matches cold and the counters keep accumulating.
func TestResetAndStats(t *testing.T) {
	app, arch := corpusSystem(t, 0)
	ev := New(app, arch)
	cfg := core.DefaultConfig(app, arch)
	if err := cfg.Normalize(app); err != nil {
		t.Fatal(err)
	}
	want, err := ev.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev.Reset()
	got, err := ev.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got == want {
		t.Fatal("Reset kept the cached analysis pointer")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-Reset analysis differs")
	}
	if s := ev.Stats(); s.ConfigMisses < 2 {
		t.Errorf("stats lost the pre-Reset traffic: %v", s)
	}
	if testing.Verbose() {
		t.Log(ev.Stats().String())
	}
}
