package delta

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/rta"
)

// FuzzDeltaInvalidation replays fuzzer-chosen move sequences on corpus
// systems through one long-lived Evaluator and cross-checks every step
// against a cold core.AnalyzeWith. The fuzz input drives four choices
// per step — which generated move to take, whether to evict the
// config, whether to run the stage invalidation hint, and whether to
// drop everything — so the fuzzer explores exactly the cache states a
// real optimizer run can reach (and some it can't). Any divergence
// from the cold path, or a warm-start mismatch caught by rta.SelfCheck,
// fails the target.
func FuzzDeltaInvalidation(f *testing.F) {
	f.Add(int64(0), []byte{0, 1, 2, 3})
	f.Add(int64(1), []byte{7, 7, 7, 7, 7, 7})
	f.Add(int64(2), bytes.Repeat([]byte{0xff, 0x00, 0x81}, 6))
	f.Add(int64(3), []byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})

	// The corpus systems are deterministic, so build them once: fuzzing
	// re-enters the target millions of times.
	systems := gen.Corpus(4, 700, 3)
	rta.SelfCheck = true
	defer func() { rta.SelfCheck = false }()

	f.Fuzz(func(t *testing.T, sysSel int64, script []byte) {
		spec := systems[int(uint64(sysSel)%uint64(len(systems)))]
		sys, err := gen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		app, arch := sys.Application, sys.Architecture
		ev := New(app, arch)

		cfg := core.DefaultConfig(app, arch)
		if err := cfg.Normalize(app); err != nil {
			t.Fatal(err)
		}
		a, err := ev.Analyze(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want, err := core.Analyze(app, arch, cfg); err != nil || !reflect.DeepEqual(a, want) {
			t.Fatalf("base analysis diverges from cold (err %v)", err)
		}

		steps := 0
		for i := 0; i+1 < len(script) && steps < 12; i += 2 {
			sel, flags := script[i], script[i+1]
			moves := opt.GenerateMoves(app, arch, cfg, a, opt.MoveBudget{Max: 16})
			if len(moves) == 0 {
				break
			}
			m := moves[int(sel)%len(moves)]
			next, err := m.Apply(app, arch, cfg)
			if err != nil {
				continue // move impossible on this config: pick on
			}
			if flags&1 != 0 {
				ev.Evict(next)
			}
			if flags&2 != 0 {
				ev.Invalidate(m)
			}
			if flags&4 != 0 {
				ev.Reset()
			}
			got, gotErr := ev.Analyze(next)
			want, wantErr := core.Analyze(app, arch, next)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("step %d move %v: delta err %v, cold err %v", steps, m, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d move %v (flags %#x): delta analysis diverges from cold", steps, m, flags)
			}
			cfg, a = next, got
			steps++
		}
	})
}
