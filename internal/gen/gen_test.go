package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestGenerateDefaults(t *testing.T) {
	sys, err := Generate(Spec{Seed: 7, TTNodes: 2, ETNodes: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	if got, want := len(app.Procs), 40*4; got != want {
		t.Errorf("processes = %d, want %d", got, want)
	}
	if err := app.Validate(arch); err != nil {
		t.Fatalf("generated application invalid: %v", err)
	}
	for _, e := range app.Edges {
		if e.Size < 8 || e.Size > 32 {
			t.Fatalf("message %s has size %d outside [8,32]", e.Name, e.Size)
		}
	}
	for _, p := range app.Procs {
		if p.WCET < 1 {
			t.Fatalf("process %s has WCET %d", p.Name, p.WCET)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(Spec{Seed: 42, TTNodes: 1, ETNodes: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(Spec{Seed: 42, TTNodes: 1, ETNodes: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a.Application.Procs) != len(b.Application.Procs) || len(a.Application.Edges) != len(b.Application.Edges) {
		t.Fatal("same seed produced different structure")
	}
	for i := range a.Application.Procs {
		pa, pb := a.Application.Procs[i], b.Application.Procs[i]
		if pa.WCET != pb.WCET || pa.Node != pb.Node {
			t.Fatalf("process %d differs across runs", i)
		}
	}
	c, err := Generate(Spec{Seed: 43, TTNodes: 1, ETNodes: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	same := len(a.Application.Edges) == len(c.Application.Edges)
	if same {
		diff := false
		for i := range a.Application.Procs {
			if a.Application.Procs[i].WCET != c.Application.Procs[i].WCET {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical applications")
	}
}

func TestUtilizationTargets(t *testing.T) {
	sys, err := Generate(Spec{Seed: 3, TTNodes: 2, ETNodes: 2, CPUUtil: 0.4})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	u := sys.Application.UtilizationByNode(sys.Architecture)
	for n, load := range u {
		if load > 0.55 || load < 0.2 {
			t.Errorf("node %d utilization %.2f outside the target band around 0.4", n, load)
		}
	}
}

func TestPaperSizes(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		sys, err := Paper(nodes, 5)
		if err != nil {
			t.Fatalf("Paper(%d): %v", nodes, err)
		}
		if got, want := len(sys.Application.Procs), 40*nodes; got != want {
			t.Errorf("Paper(%d) has %d processes, want %d", nodes, got, want)
		}
	}
	if _, err := Paper(3, 1); err == nil {
		t.Error("odd node count accepted")
	}
	if _, err := Paper(0, 1); err == nil {
		t.Error("zero node count accepted")
	}
}

func TestFig9cInterClusterControl(t *testing.T) {
	for _, inter := range []int{10, 30, 50} {
		sys, err := Fig9c(inter, 9)
		if err != nil {
			t.Fatalf("Fig9c(%d): %v", inter, err)
		}
		got := len(sys.Application.GatewayEdges(sys.Architecture))
		if got != inter {
			t.Errorf("Fig9c(%d) produced %d gateway messages", inter, got)
		}
		if err := sys.Application.Validate(sys.Architecture); err != nil {
			t.Fatalf("Fig9c(%d) invalid: %v", inter, err)
		}
	}
	if _, err := Fig9c(0, 1); err == nil {
		t.Error("non-positive inter-cluster count accepted")
	}
}

func TestExponentialWCETs(t *testing.T) {
	sys, err := Generate(Spec{Seed: 11, TTNodes: 1, ETNodes: 1, WCETDist: Exponential})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := sys.Application.Validate(sys.Architecture); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestMultiRate(t *testing.T) {
	sys, err := Generate(Spec{Seed: 13, TTNodes: 1, ETNodes: 1, MultiRate: true, ProcsPerNode: 20})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	app := sys.Application
	if len(app.Graphs) < 2 {
		t.Skip("need at least two graphs")
	}
	if app.Graphs[0].Period == app.Graphs[1].Period {
		t.Error("MultiRate did not vary the periods")
	}
	h, err := app.Hyperperiod()
	if err != nil {
		t.Fatalf("Hyperperiod: %v", err)
	}
	if h != app.Graphs[0].Period {
		t.Errorf("hyperperiod = %d, want %d", h, app.Graphs[0].Period)
	}
}

// Property: every generated system validates, regardless of seed and
// small shape variations.
func TestPropertyGeneratedSystemsValid(t *testing.T) {
	f := func(seed int64, ttRaw, etRaw uint8) bool {
		tt := 1 + int(ttRaw%3)
		et := 1 + int(etRaw%3)
		sys, err := Generate(Spec{Seed: seed, TTNodes: tt, ETNodes: et, ProcsPerNode: 10})
		if err != nil {
			return false
		}
		if err := sys.Application.Validate(sys.Architecture); err != nil {
			return false
		}
		// Structural sanity: sources exist per graph, periods positive.
		for g := range sys.Application.Graphs {
			if len(sys.Application.Sources(g)) == 0 {
				return false
			}
		}
		_ = model.Time(0)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCorpusDeterministicAndValid: the scenario corpus is stable per
// (n, base) pair, every member generates a valid system, and the sweep
// actually spans the intended axes (node counts, utilization targets,
// WCET distributions).
func TestCorpusDeterministicAndValid(t *testing.T) {
	specs := Corpus(8, 100, 6)
	again := Corpus(8, 100, 6)
	if len(specs) != 8 {
		t.Fatalf("Corpus returned %d specs, want 8", len(specs))
	}
	nodes := map[int]bool{}
	cpus := map[float64]bool{}
	dists := map[Dist]bool{}
	for i, spec := range specs {
		if spec != again[i] {
			t.Errorf("Corpus spec %d not deterministic: %+v vs %+v", i, spec, again[i])
		}
		if spec.Seed != 100+int64(i) {
			t.Errorf("spec %d seed %d, want %d", i, spec.Seed, 100+int64(i))
		}
		sys, err := Generate(spec)
		if err != nil {
			t.Fatalf("corpus member %d: %v", i, err)
		}
		if err := sys.Application.Validate(sys.Architecture); err != nil {
			t.Fatalf("corpus member %d invalid: %v", i, err)
		}
		nodes[spec.TTNodes+spec.ETNodes] = true
		cpus[spec.CPUUtil] = true
		dists[spec.WCETDist] = true
	}
	if len(nodes) < 2 || len(cpus) < 3 || len(dists) != 2 {
		t.Errorf("corpus sweep too narrow: nodes %v, cpu targets %v, dists %v", nodes, cpus, dists)
	}
	// Different bases must not collide in seed space.
	other := Corpus(8, 200, 6)
	for i := range specs {
		if specs[i].Seed == other[i].Seed {
			t.Errorf("bases 100 and 200 collide at member %d", i)
		}
	}
	// Prefix stability: member i does not depend on the corpus size.
	for i, spec := range Corpus(4, 100, 6) {
		if spec != specs[i] {
			t.Errorf("Corpus(4)[%d] != Corpus(8)[%d]: %+v vs %+v", i, i, spec, specs[i])
		}
	}
}
