// Package gen generates random two-cluster applications with the
// published parameters of the paper's evaluation (§6): 2-10 nodes split
// evenly between the TTC and the ETC plus a gateway, 40 processes per
// node, message sizes uniform in 8-32 bytes, worst-case execution times
// drawn from uniform or exponential distributions, and - for the Fig. 9c
// experiment - a controlled number of inter-cluster messages.
//
// Everything is driven by a single seed and fully deterministic.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/can"
	"repro/internal/model"
)

// Dist selects the WCET distribution.
type Dist int

const (
	// Uniform draws WCETs uniformly from [WCETMin, WCETMax].
	Uniform Dist = iota
	// Exponential draws WCETs exponentially with mean
	// (WCETMin+WCETMax)/2, clamped to [WCETMin, 4*WCETMax].
	Exponential
)

// Spec parameterizes the generator. Zero values select the defaults
// noted per field.
type Spec struct {
	Seed    int64 // default 1
	TTNodes int   // default 1
	ETNodes int   // default 1
	// ProcsPerNode is the paper's 40 (default 40).
	ProcsPerNode int
	// ProcsPerGraph controls how many process graphs are created
	// (default 10 processes per graph).
	ProcsPerGraph int
	// Period is the common graph period (default 1000000 ticks: the
	// fine time base lets the CAN bit time hit its utilization target
	// even with hundreds of messages). All graphs share it unless
	// MultiRate is set, in which case every second graph runs at
	// Period/2.
	Period    model.Time
	MultiRate bool
	// DeadlineFrac scales the end-to-end deadlines: D = frac * T
	// (default 0.9). Tighter fractions make SF fail more often.
	DeadlineFrac float64
	// MsgSizeMin/Max bound the message payloads (defaults 8 and 32).
	MsgSizeMin, MsgSizeMax int
	// WCETMin/Max bound the raw WCETs before load scaling (defaults 10
	// and 100).
	WCETMin, WCETMax model.Time
	// WCETDist selects the distribution (default Uniform).
	WCETDist Dist
	// EdgeProb adds extra forward edges beyond the layer skeleton
	// (default 0.25).
	EdgeProb float64
	// HomeBias is the probability that a process is mapped on its
	// graph's home cluster (default 0.9). Graphs alternate home
	// clusters; the bias keeps inter-cluster traffic at the scale the
	// paper's Fig. 9c explores (tens of messages, not hundreds).
	HomeBias float64
	// CPUUtil is the per-node utilization target the WCETs are rescaled
	// to (default 0.2; the holistic jitter propagation makes higher
	// loads hopeless for every heuristic, see EXPERIMENTS.md).
	CPUUtil float64
	// BusUtil is the CAN bus utilization target used to derive the bit
	// time (default 0.2, matching CPUUtil).
	BusUtil float64
	// InterClusterMsgs forces the number of messages crossing the
	// gateway (0 keeps the natural count of the random mapping).
	InterClusterMsgs int
	// GatewayCost is C_T (default 2 ticks).
	GatewayCost model.Time
}

func (s *Spec) defaults() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TTNodes <= 0 {
		s.TTNodes = 1
	}
	if s.ETNodes <= 0 {
		s.ETNodes = 1
	}
	if s.ProcsPerNode <= 0 {
		s.ProcsPerNode = 40
	}
	if s.ProcsPerGraph <= 0 {
		s.ProcsPerGraph = 10
	}
	if s.Period <= 0 {
		s.Period = 1000000
	}
	if s.DeadlineFrac <= 0 || s.DeadlineFrac > 1 {
		s.DeadlineFrac = 0.9
	}
	if s.MsgSizeMin <= 0 {
		s.MsgSizeMin = 8
	}
	if s.MsgSizeMax < s.MsgSizeMin {
		s.MsgSizeMax = 32
	}
	if s.WCETMin <= 0 {
		s.WCETMin = 10
	}
	if s.WCETMax < s.WCETMin {
		s.WCETMax = 100
	}
	if s.EdgeProb <= 0 {
		s.EdgeProb = 0.25
	}
	if s.HomeBias <= 0 || s.HomeBias > 1 {
		s.HomeBias = 0.9
	}
	if s.CPUUtil <= 0 {
		s.CPUUtil = 0.2
	}
	if s.BusUtil <= 0 {
		s.BusUtil = 0.2
	}
	if s.GatewayCost <= 0 {
		s.GatewayCost = 2
	}
}

// Generate builds a system according to the spec.
func Generate(spec Spec) (*model.System, error) {
	spec.defaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		Name:        fmt.Sprintf("gen-%dTT-%dET-seed%d", spec.TTNodes, spec.ETNodes, spec.Seed),
		TTNodes:     spec.TTNodes,
		ETNodes:     spec.ETNodes,
		TickPerByte: 1,
		CANBitTime:  1, // adjusted after the traffic is known
		GatewayCost: spec.GatewayCost,
	})
	if err != nil {
		return nil, err
	}
	app := model.NewApplication(arch.Name)
	total := spec.ProcsPerNode * (spec.TTNodes + spec.ETNodes)
	graphs := (total + spec.ProcsPerGraph - 1) / spec.ProcsPerGraph

	nodes := append(arch.TTNodes(), arch.ETNodes()...)
	remaining := total
	for g := 0; g < graphs; g++ {
		count := spec.ProcsPerGraph
		if count > remaining {
			count = remaining
		}
		remaining -= count
		period := spec.Period
		if spec.MultiRate && g%2 == 1 {
			period = spec.Period / 2
		}
		deadline := model.Time(float64(period) * spec.DeadlineFrac)
		buildGraph(app, rng, &spec, g, count, period, deadline, arch)
	}
	if spec.InterClusterMsgs > 0 {
		adjustInterCluster(app, arch, rng, spec.InterClusterMsgs, nodes)
	}
	scaleWCETs(app, arch, spec.CPUUtil)
	tuneCANBitTime(app, arch, spec.BusUtil)
	if err := app.Finalize(arch); err != nil {
		return nil, err
	}
	return &model.System{Architecture: arch, Application: app}, nil
}

// buildGraph creates one layered random DAG. Processes prefer the
// graph's home cluster (graphs alternate homes), which keeps the
// gateway traffic at a realistic scale.
func buildGraph(app *model.Application, rng *rand.Rand, spec *Spec, g, count int, period, deadline model.Time, arch *model.Architecture) {
	gi := app.AddGraph(fmt.Sprintf("G%d", g), period, deadline)
	home, away := arch.TTNodes(), arch.ETNodes()
	if g%2 == 1 {
		home, away = away, home
	}
	layers := 3 + rng.Intn(4) // 3..6
	if layers > count {
		layers = count
	}
	// Distribute processes over layers (each layer >= 1).
	layerOf := make([]int, count)
	for i := range layerOf {
		if i < layers {
			layerOf[i] = i
		} else {
			layerOf[i] = rng.Intn(layers)
		}
	}
	ids := make([]model.ProcID, count)
	for i := 0; i < count; i++ {
		side := home
		if rng.Float64() > spec.HomeBias {
			side = away
		}
		node := side[rng.Intn(len(side))]
		wcet := drawWCET(rng, spec)
		ids[i] = app.AddProcess(gi, fmt.Sprintf("G%dP%d", g, i), wcet, node)
	}
	// Layer skeleton: every process beyond layer 0 gets one predecessor
	// from the previous layer.
	byLayer := make([][]int, layers)
	for i, l := range layerOf {
		byLayer[l] = append(byLayer[l], i)
	}
	edgeID := 0
	addEdge := func(src, dst int) {
		name := fmt.Sprintf("G%dm%d", g, edgeID)
		edgeID++
		size := spec.MsgSizeMin + rng.Intn(spec.MsgSizeMax-spec.MsgSizeMin+1)
		app.AddEdge(name, ids[src], ids[dst], size)
	}
	for l := 1; l < layers; l++ {
		if len(byLayer[l-1]) == 0 {
			continue
		}
		for _, i := range byLayer[l] {
			src := byLayer[l-1][rng.Intn(len(byLayer[l-1]))]
			addEdge(src, i)
		}
	}
	// Extra forward edges.
	for l := 0; l < layers-1; l++ {
		for _, i := range byLayer[l] {
			for l2 := l + 1; l2 < layers; l2++ {
				for _, j := range byLayer[l2] {
					if rng.Float64() < spec.EdgeProb/float64(count) {
						addEdge(i, j)
					}
				}
			}
		}
	}
}

func drawWCET(rng *rand.Rand, spec *Spec) model.Time {
	switch spec.WCETDist {
	case Exponential:
		mean := float64(spec.WCETMin+spec.WCETMax) / 2
		v := model.Time(rng.ExpFloat64() * mean)
		if v < spec.WCETMin {
			v = spec.WCETMin
		}
		if v > 4*spec.WCETMax {
			v = 4 * spec.WCETMax
		}
		return v
	default:
		return spec.WCETMin + model.Time(rng.Int63n(int64(spec.WCETMax-spec.WCETMin+1)))
	}
}

// adjustInterCluster remaps processes until the number of edges crossing
// the gateway matches the target (the Fig. 9c knob).
func adjustInterCluster(app *model.Application, arch *model.Architecture, rng *rand.Rand, target int, nodes []model.NodeID) {
	tt := arch.TTNodes()
	et := arch.ETNodes()
	crossing := func() []model.EdgeID { return app.GatewayEdges(arch) }
	sameSideEdges := func() []model.EdgeID {
		var out []model.EdgeID
		for _, e := range app.Edges {
			r := app.RouteOf(e.ID, arch)
			if r == model.RouteLocal || r == model.RouteTTP || r == model.RouteCAN {
				out = append(out, e.ID)
			}
		}
		return out
	}
	for iter := 0; iter < 10000; iter++ {
		cur := crossing()
		if len(cur) == target {
			return
		}
		if len(cur) > target {
			// Pull one crossing edge's destination to the source side.
			e := cur[rng.Intn(len(cur))]
			src := app.Procs[app.Edges[e].Src].Node
			side := tt
			if arch.Kind(src) == model.EventTriggered {
				side = et
			}
			app.Procs[app.Edges[e].Dst].Node = side[rng.Intn(len(side))]
		} else {
			// Push one same-side edge's destination to the other side.
			cands := sameSideEdges()
			if len(cands) == 0 {
				return
			}
			e := cands[rng.Intn(len(cands))]
			src := app.Procs[app.Edges[e].Src].Node
			side := et
			if arch.Kind(src) == model.EventTriggered {
				side = tt
			}
			app.Procs[app.Edges[e].Dst].Node = side[rng.Intn(len(side))]
		}
	}
}

// scaleWCETs rescales the execution times on every node to the target
// utilization, keeping each WCET at least 1.
func scaleWCETs(app *model.Application, arch *model.Architecture, target float64) {
	load := make(map[model.NodeID]float64)
	for i := range app.Procs {
		p := &app.Procs[i]
		load[p.Node] += float64(p.WCET) / float64(app.PeriodOf(p.ID))
	}
	for i := range app.Procs {
		p := &app.Procs[i]
		u := load[p.Node]
		if u <= 0 {
			continue
		}
		scaled := model.Time(math.Round(float64(p.WCET) * target / u))
		if scaled < 1 {
			scaled = 1
		}
		p.WCET = scaled
	}
}

// tuneCANBitTime sets the CAN bit time so the bus utilization of all
// CAN-leg messages approximates the target.
func tuneCANBitTime(app *model.Application, arch *model.Architecture, target float64) {
	var load float64 // bits per tick at bit time 1
	for _, e := range app.Edges {
		if !app.RouteOf(e.ID, arch).UsesCAN() {
			continue
		}
		load += float64(can.MessageBits(e.Size)) / float64(app.EdgePeriod(e.ID))
	}
	if load <= 0 {
		return
	}
	bit := model.Time(target / load)
	if bit < 1 {
		bit = 1
	}
	arch.CAN.BitTime = bit
}

// Paper builds one of the §6 evaluation systems: nodes = 2, 4, 6, 8 or
// 10 (split half TTC half ETC), 40 processes per node. The WCET
// distribution alternates uniform/exponential with the seed, mirroring
// "assigned randomly using both uniform and exponential distribution".
func Paper(nodes int, seed int64) (*model.System, error) {
	if nodes%2 != 0 || nodes < 2 {
		return nil, fmt.Errorf("gen: paper experiments use even node counts >= 2, got %d", nodes)
	}
	dist := Uniform
	if seed%2 == 0 {
		dist = Exponential
	}
	return Generate(Spec{
		Seed:     seed,
		TTNodes:  nodes / 2,
		ETNodes:  nodes / 2,
		WCETDist: dist,
	})
}

// Corpus returns n deterministic generator specs spanning the
// evaluation space the paper's Fig. 9 sweeps one axis at a time: node
// counts 2 or 4 (split half TTC half ETC), CPU and bus utilization
// targets from {0.15, 0.2, 0.25, 0.3}, forced inter-cluster message
// counts from natural/4/8/12, and uniform or exponential WCETs. The
// axes are drawn independently from one rng seeded with base — fixed
// cycles would confound them (every member of one node count sharing
// one distribution) — so every axis combination is reachable, and
// Corpus(n, base)[i] is stable for every n >= i. Spec i uses seed
// base+i, so corpora with different bases never collide.
//
// procsPerNode <= 0 selects the paper's 40 processes per node; tests
// and benchmarks pass a small count to keep the systems cheap. The
// same corpus backs `mcs-gen -n`, the DSE benchmarks and the
// cross-strategy property tests, so regressions reproduce from a spec
// index alone.
func Corpus(n int, base int64, procsPerNode int) []Spec {
	cpu := []float64{0.15, 0.2, 0.25, 0.3}
	bus := []float64{0.15, 0.2, 0.25, 0.3}
	inter := []int{0, 4, 8, 12}
	rng := rand.New(rand.NewSource(base))
	specs := make([]Spec, n)
	for i := range specs {
		nodes := 2 + 2*rng.Intn(2)
		specs[i] = Spec{
			Seed:             base + int64(i),
			TTNodes:          nodes / 2,
			ETNodes:          nodes / 2,
			ProcsPerNode:     procsPerNode,
			WCETDist:         Dist(rng.Intn(2)),
			CPUUtil:          cpu[rng.Intn(len(cpu))],
			BusUtil:          bus[rng.Intn(len(bus))],
			InterClusterMsgs: inter[rng.Intn(len(inter))],
		}
	}
	return specs
}

// Fig9c builds a 160-process system (4 nodes) with exactly inter
// messages crossing the gateway, the workload of the paper's Fig. 9c.
func Fig9c(inter int, seed int64) (*model.System, error) {
	if inter <= 0 {
		return nil, fmt.Errorf("gen: need a positive inter-cluster message count")
	}
	dist := Uniform
	if seed%2 == 0 {
		dist = Exponential
	}
	return Generate(Spec{
		Seed:             seed,
		TTNodes:          2,
		ETNodes:          2,
		WCETDist:         dist,
		InterClusterMsgs: inter,
	})
}
