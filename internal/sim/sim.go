// Package sim is a deterministic discrete-event simulator of the
// two-cluster platform: TT nodes executing their schedule tables, the
// TDMA bus driven by the MEDL, preemptive fixed-priority schedulers on
// the ET nodes, CAN arbitration across the output queues, and the
// gateway with its OutCAN priority queue and OutTTP FIFO (the full
// Fig. 3 message-passing path).
//
// Its role in this repository is validation: for a configuration that
// the analysis declares schedulable, every simulated response time and
// queue occupancy must stay within the analysed bounds, and the platform
// invariants (CPU/bus exclusivity, FIFO order, inputs present at TT
// process start) must hold. The simulator also exercises execution-time
// variation: processes may run for less than their WCET.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/model"
)

// ExecMode selects the execution times used by the simulator.
type ExecMode int

const (
	// WorstCase runs every process for exactly its WCET.
	WorstCase ExecMode = iota
	// BestCase runs every process for its BCET (WCET when unset).
	BestCase
	// RandomCase draws each execution uniformly from [BCET, WCET].
	RandomCase
)

// Options tunes a simulation run.
type Options struct {
	// Cycles is the number of hyper-periods simulated (default 2).
	Cycles int
	// Exec selects the execution-time mode (default WorstCase).
	Exec ExecMode
	// Seed drives RandomCase (default 1).
	Seed int64
	// Trace, when non-nil, receives one line per simulation event
	// (process starts/completions, bus transmissions, queue movements) -
	// a textual Gantt chart for debugging schedules.
	Trace io.Writer
}

// Result aggregates the observations of one run.
type Result struct {
	// ProcWorstResp is the largest observed completion minus release,
	// per process.
	ProcWorstResp map[model.ProcID]model.Time
	// GraphWorstResp is the largest observed sink completion minus
	// release, per graph.
	GraphWorstResp []model.Time
	// EdgeWorstDelivery is the largest observed delivery offset of each
	// cross-node message, relative to the graph release.
	EdgeWorstDelivery map[model.EdgeID]model.Time
	// Peak queue occupancies in bytes.
	PeakOutCAN  int
	PeakOutTTP  int
	PeakOutNode map[model.NodeID]int
	// DeadlineMisses counts sink completions beyond the graph deadline.
	DeadlineMisses int
	// Violations lists platform-invariant breaches (empty on sane runs).
	Violations []string
	// Completed counts finished process instances.
	Completed int
}

// Run simulates the configured system. The analysis provides the static
// schedule (tables + MEDL); cfg provides priorities and the TDMA round.
func Run(app *model.Application, arch *model.Architecture, cfg *core.Config, a *core.Analysis, opts Options) (*Result, error) {
	return RunContext(context.Background(), app, arch, cfg, a, opts)
}

// RunContext is Run with cooperative cancellation: the event loop
// checks ctx between events and returns ctx's error (and no result)
// when it is cancelled.
func RunContext(ctx context.Context, app *model.Application, arch *model.Architecture, cfg *core.Config, a *core.Analysis, opts Options) (*Result, error) {
	if a == nil || a.Schedule == nil {
		return nil, fmt.Errorf("sim: analysis with schedule required")
	}
	if !a.Schedule.WithinCycle {
		return nil, fmt.Errorf("sim: schedule does not fit its cycle; only executable tables can be simulated")
	}
	if opts.Cycles <= 0 {
		opts.Cycles = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	s := newSim(app, arch, cfg, a, opts)
	s.ctx = ctx
	s.prime()
	s.loop()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

type simulator struct {
	app  *model.Application
	arch *model.Architecture
	cfg  *core.Config
	an   *core.Analysis
	opts Options
	rng  *rand.Rand
	ctx  context.Context

	hyper   model.Time
	horizon model.Time

	events eventHeap
	seq    int

	// instance state
	execTime  map[instKey]model.Time
	remaining map[instKey]model.Time
	released  map[instKey]bool
	inputs    map[instKey]int // missing input count
	finished  map[instKey]model.Time
	msgSent   map[edgeInst]model.Time // production time of cross-node messages

	// ET CPUs
	running    map[model.NodeID]*instKey
	runGen     map[model.NodeID]int
	readyQueue map[model.NodeID][]instKey

	// CAN bus
	busBusy   bool
	outCAN    []edgeInst // gateway TT->ET queue, priority order
	outNode   map[model.NodeID][]edgeInst
	outTTP    []queuedAt // FIFO with queueing times
	canBytes  int
	ttpBytes  int
	nodeBytes map[model.NodeID]int
	lastStart map[model.NodeID]model.Time

	res *Result
}

type instKey struct {
	proc model.ProcID
	inst int
}

type edgeInst struct {
	edge model.EdgeID
	inst int
}

// queuedAt tags an OutTTP entry with its queueing time: a message can
// only ride a gateway slot that starts at or after it was queued.
type queuedAt struct {
	ei edgeInst
	at model.Time
}

type evKind int

const (
	evTTStart evKind = iota
	evTTFinish
	evFrameEnd
	evFrameCheck // assert the message was produced before its frame
	evSGStart
	evSGEnd
	evETArrival // one input of an ET process instance arrived
	evCPUDone
	evBusDone
	evGwForward // transfer process T hands a message to a gateway queue
)

// rank orders simultaneous events: completions and deliveries first (a
// message delivered at t is available to a process starting at t, and a
// process finishing at t can feed a frame departing at t), then the
// checks and the gateway-slot drain, then starts and releases.
func (k evKind) rank() int {
	switch k {
	case evTTFinish, evCPUDone, evBusDone, evFrameEnd, evSGEnd, evGwForward:
		return 0
	case evFrameCheck, evSGStart:
		return 1
	default: // evTTStart, evETArrival
		return 2
	}
}

type event struct {
	t    model.Time
	seq  int
	kind evKind

	key        instKey
	ei         edgeInst
	node       model.NodeID
	gen        int
	fromOutCAN bool
	// payload for frame/slot deliveries
	msgs []edgeInst
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if ri, rj := h[i].kind.rank(), h[j].kind.rank(); ri != rj {
		return ri < rj
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newSim(app *model.Application, arch *model.Architecture, cfg *core.Config, a *core.Analysis, opts Options) *simulator {
	hyper := a.Schedule.Hyper
	s := &simulator{
		app: app, arch: arch, cfg: cfg, an: a, opts: opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		hyper:      hyper,
		horizon:    hyper * model.Time(opts.Cycles),
		execTime:   make(map[instKey]model.Time),
		remaining:  make(map[instKey]model.Time),
		released:   make(map[instKey]bool),
		inputs:     make(map[instKey]int),
		finished:   make(map[instKey]model.Time),
		msgSent:    make(map[edgeInst]model.Time),
		running:    make(map[model.NodeID]*instKey),
		runGen:     make(map[model.NodeID]int),
		readyQueue: make(map[model.NodeID][]instKey),
		outNode:    make(map[model.NodeID][]edgeInst),
		nodeBytes:  make(map[model.NodeID]int),
		lastStart:  make(map[model.NodeID]model.Time),
		res: &Result{
			ProcWorstResp:     make(map[model.ProcID]model.Time),
			GraphWorstResp:    make([]model.Time, len(app.Graphs)),
			EdgeWorstDelivery: make(map[model.EdgeID]model.Time),
			PeakOutNode:       make(map[model.NodeID]int),
		},
	}
	return s
}

func (s *simulator) push(e *event) {
	if e.t > s.horizon {
		return
	}
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *simulator) violate(format string, args ...interface{}) {
	s.res.Violations = append(s.res.Violations, fmt.Sprintf(format, args...))
}

// trace logs one event line when tracing is enabled.
func (s *simulator) trace(t model.Time, format string, args ...interface{}) {
	if s.opts.Trace == nil {
		return
	}
	fmt.Fprintf(s.opts.Trace, "%8d  ", t)
	fmt.Fprintf(s.opts.Trace, format, args...)
	fmt.Fprintln(s.opts.Trace)
}

// releaseOf returns the absolute release time of a process instance.
func (s *simulator) releaseOf(k instKey) model.Time {
	return model.Time(k.inst) * s.app.PeriodOf(k.proc)
}

// drawExec picks the execution time of an instance.
func (s *simulator) drawExec(p *model.Process) model.Time {
	w := p.WCET
	b := p.BCET
	if b <= 0 || b > w {
		b = w
	}
	switch s.opts.Exec {
	case BestCase:
		return b
	case RandomCase:
		if w == b {
			return w
		}
		return b + model.Time(s.rng.Int63n(int64(w-b+1)))
	default:
		return w
	}
}

// prime schedules the statically known events: TT starts, MEDL frames,
// S_G drains and ET source releases, replicated over all cycles.
func (s *simulator) prime() {
	app := s.app
	for _, p := range app.Procs {
		period := app.PeriodOf(p.ID)
		instPerHyper := int(s.hyper / period)
		for c := 0; c < s.opts.Cycles; c++ {
			base := model.Time(c) * s.hyper
			switch s.arch.Kind(p.Node) {
			case model.TimeTriggered:
				starts := s.an.Schedule.ProcStart[p.ID]
				for i, st := range starts {
					k := instKey{p.ID, c*instPerHyper + i}
					s.push(&event{t: base + st, kind: evTTStart, key: k})
				}
			case model.EventTriggered:
				for i := 0; i < instPerHyper; i++ {
					k := instKey{p.ID, c*instPerHyper + i}
					need := len(app.InEdges(p.ID))
					s.inputs[k] = need
					if need == 0 {
						s.push(&event{t: base + model.Time(i)*period, kind: evETArrival, key: k})
					}
				}
			}
		}
	}
	// MEDL frames: delivery of the statically scheduled TTP legs.
	for _, en := range s.an.Schedule.MEDL.Entries {
		period := app.EdgePeriod(en.Edge)
		instPerHyper := int(s.hyper / period)
		for c := 0; c < s.opts.Cycles; c++ {
			base := model.Time(c) * s.hyper
			ei := edgeInst{en.Edge, c*instPerHyper + en.Instance}
			s.push(&event{t: base + en.End, kind: evFrameEnd, ei: ei, msgs: []edgeInst{ei}})
			// Check production in time at frame start.
			startT := base + en.Start
			s.push(&event{t: startT, kind: evFrameCheck, ei: ei})
		}
	}
	// S_G drain points.
	slot := s.cfg.Round.SlotIndexOf(s.arch.Gateway)
	if slot >= 0 {
		p := s.cfg.Round.Period()
		rounds := int(s.horizon / p)
		for r := 0; r <= rounds; r++ {
			st := s.cfg.Round.OccurrenceStart(slot, r)
			s.push(&event{t: st, kind: evSGStart})
		}
	}
}
