package sim

import (
	"container/heap"
	"sort"

	"repro/internal/can"
	"repro/internal/model"
)

// loop drains the event queue. It returns early when the run's context
// is cancelled, checking every few events so long horizons stay
// responsive without paying a per-event context poll.
func (s *simulator) loop() {
	for n := 0; s.events.Len() > 0; n++ {
		if n%256 == 0 && s.ctx != nil && s.ctx.Err() != nil {
			return
		}
		e := heap.Pop(&s.events).(*event)
		switch e.kind {
		case evTTStart:
			s.onTTStart(e)
		case evTTFinish:
			s.onFinish(e.t, e.key)
		case evFrameCheck:
			if _, ok := s.msgSent[e.ei]; !ok {
				s.violate("frame of edge %d instance %d departs at %d before production", e.ei.edge, e.ei.inst, e.t)
			}
		case evFrameEnd:
			s.onFrameEnd(e)
		case evSGStart:
			s.onSGStart(e)
		case evSGEnd:
			s.onSGEnd(e)
		case evETArrival:
			s.onETArrival(e)
		case evCPUDone:
			s.onCPUDone(e)
		case evBusDone:
			s.onBusDone(e)
		case evGwForward:
			s.onGwForward(e)
		}
	}
}

// onTTStart runs a TT process instance to completion (TT processes are
// not preemptable and start exactly at their table times).
func (s *simulator) onTTStart(e *event) {
	k := e.key
	p := &s.app.Procs[k.proc]
	if miss := s.inputsMissing(k); miss > 0 {
		s.violate("TT process %s instance %d starts at %d with %d inputs missing", p.Name, k.inst, e.t, miss)
	}
	exec := s.drawExec(p)
	s.trace(e.t, "TT start   %s#%d on %s (runs %d)", p.Name, k.inst, s.arch.Nodes[p.Node].Name, exec)
	s.push(&event{t: e.t + exec, kind: evTTFinish, key: k})
}

// inputsMissing counts the not-yet-delivered inputs of an instance.
func (s *simulator) inputsMissing(k instKey) int {
	if n, ok := s.inputs[k]; ok {
		return n
	}
	// TT processes track inputs lazily: initialize on first use.
	n := len(s.app.InEdges(k.proc))
	s.inputs[k] = n
	return n
}

// onFinish handles the completion of any process instance.
func (s *simulator) onFinish(t model.Time, k instKey) {
	p := &s.app.Procs[k.proc]
	s.trace(t, "finish     %s#%d (response %d)", p.Name, k.inst, t-s.releaseOf(k))
	s.finished[k] = t
	s.res.Completed++
	rel := s.releaseOf(k)
	resp := t - rel
	if resp > s.res.ProcWorstResp[k.proc] {
		s.res.ProcWorstResp[k.proc] = resp
	}
	if len(s.app.OutEdges(k.proc)) == 0 {
		g := p.Graph
		if resp > s.res.GraphWorstResp[g] {
			s.res.GraphWorstResp[g] = resp
		}
		if resp > s.app.Graphs[g].Deadline {
			s.res.DeadlineMisses++
		}
	}
	// Emit outgoing messages.
	for _, eid := range s.app.OutEdges(k.proc) {
		ei := edgeInst{eid, k.inst}
		s.msgSent[ei] = t
		switch s.app.RouteOf(eid, s.arch) {
		case model.RouteLocal:
			s.deliver(t, ei)
		case model.RouteTTP, model.RouteTTtoET:
			// Transmission happens at the MEDL-scheduled frame;
			// production is recorded for the evFrameCheck assertion.
		case model.RouteCAN, model.RouteETtoTT:
			s.enqueueNodeQueue(t, p.Node, ei)
		}
	}
}

// deliver hands a message instance to its destination process.
func (s *simulator) deliver(t model.Time, ei edgeInst) {
	e := &s.app.Edges[ei.edge]
	s.trace(t, "deliver    %s#%d -> %s", e.Name, ei.inst, s.app.Procs[e.Dst].Name)
	rel := model.Time(ei.inst) * s.app.EdgePeriod(ei.edge)
	if off := t - rel; off > s.res.EdgeWorstDelivery[ei.edge] {
		s.res.EdgeWorstDelivery[ei.edge] = off
	}
	dst := instKey{e.Dst, ei.inst}
	s.arrivalAt(t, dst)
}

// arrivalAt marks one input of an instance as present and releases ET
// instances whose inputs are complete.
func (s *simulator) arrivalAt(t model.Time, k instKey) {
	n := s.inputsMissing(k)
	if n <= 0 {
		s.violate("process %d instance %d received more inputs than edges", k.proc, k.inst)
		return
	}
	s.inputs[k] = n - 1
	if n-1 > 0 {
		return
	}
	if s.arch.Kind(s.app.Procs[k.proc].Node) != model.EventTriggered {
		return // TT processes start from the table, not from arrivals
	}
	s.push(&event{t: t, kind: evETArrival, key: k})
}

// onETArrival releases an ET process instance (all inputs present).
func (s *simulator) onETArrival(e *event) {
	k := e.key
	if s.released[k] {
		return
	}
	s.released[k] = true
	p := &s.app.Procs[k.proc]
	s.remaining[k] = s.drawExec(p)
	node := p.Node
	s.readyQueue[node] = append(s.readyQueue[node], k)
	s.dispatch(e.t, node)
}

// dispatch reevaluates which instance runs on an ET CPU, preempting a
// lower-priority running instance if needed.
func (s *simulator) dispatch(t model.Time, node model.NodeID) {
	ready := s.readyQueue[node]
	if len(ready) == 0 {
		return
	}
	sort.Slice(ready, func(i, j int) bool {
		pi := s.cfg.ProcPriority[ready[i].proc]
		pj := s.cfg.ProcPriority[ready[j].proc]
		if pi != pj {
			return pi < pj
		}
		if ready[i].proc != ready[j].proc {
			return ready[i].proc < ready[j].proc
		}
		return ready[i].inst < ready[j].inst
	})
	s.readyQueue[node] = ready
	best := ready[0]
	cur := s.running[node]
	if cur != nil {
		if *cur == best {
			return
		}
		curPrio := s.cfg.ProcPriority[cur.proc]
		bestPrio := s.cfg.ProcPriority[best.proc]
		if curPrio <= bestPrio {
			return // current keeps the CPU
		}
		// Preempt: bank the remaining time of the current instance.
		s.remaining[*cur] -= t - s.lastStart[node]
		s.readyQueue[node] = append(s.readyQueue[node], *cur)
		s.running[node] = nil
	}
	// Start best.
	s.readyQueue[node] = s.readyQueue[node][1:]
	k := best
	s.running[node] = &k
	s.lastStart[node] = t
	s.runGen[node]++
	s.push(&event{t: t + s.remaining[k], kind: evCPUDone, key: k, node: node, gen: s.runGen[node]})
}

// onCPUDone completes the running instance unless the event is stale
// (the instance was preempted after the event was scheduled).
func (s *simulator) onCPUDone(e *event) {
	if e.gen != s.runGen[e.node] {
		return // stale
	}
	cur := s.running[e.node]
	if cur == nil || *cur != e.key {
		return
	}
	s.running[e.node] = nil
	delete(s.remaining, e.key)
	s.onFinish(e.t, e.key)
	s.dispatch(e.t, e.node)
}

// enqueueNodeQueue puts a message into its sender's OutN_i priority
// queue and kicks the bus.
func (s *simulator) enqueueNodeQueue(t model.Time, node model.NodeID, ei edgeInst) {
	q := insertByPriority(s.outNode[node], ei, s.cfg.MsgPriority)
	s.outNode[node] = q
	s.nodeBytes[node] += s.app.Edges[ei.edge].Size
	if s.nodeBytes[node] > s.res.PeakOutNode[node] {
		s.res.PeakOutNode[node] = s.nodeBytes[node]
	}
	s.kickBus(t)
}

// enqueueOutCAN puts a gateway-forwarded message into OutCAN.
func (s *simulator) enqueueOutCAN(t model.Time, ei edgeInst) {
	s.outCAN = insertByPriority(s.outCAN, ei, s.cfg.MsgPriority)
	s.canBytes += s.app.Edges[ei.edge].Size
	if s.canBytes > s.res.PeakOutCAN {
		s.res.PeakOutCAN = s.canBytes
	}
	s.kickBus(t)
}

func insertByPriority(q []edgeInst, ei edgeInst, prio map[model.EdgeID]int) []edgeInst {
	q = append(q, ei)
	sort.SliceStable(q, func(i, j int) bool {
		pi, pj := prio[q[i].edge], prio[q[j].edge]
		if pi != pj {
			return pi < pj
		}
		if q[i].edge != q[j].edge {
			return q[i].edge < q[j].edge
		}
		return q[i].inst < q[j].inst
	})
	return q
}

// kickBus starts a CAN transmission when the bus is idle: the highest
// priority message among all queue heads wins arbitration.
func (s *simulator) kickBus(t model.Time) {
	if s.busBusy {
		return
	}
	bestQueue := -2 // -1 = OutCAN, >=0 = index into nodes slice
	var bestEI edgeInst
	bestPrio := 0
	found := false
	consider := func(q []edgeInst, tag int) {
		if len(q) == 0 {
			return
		}
		p := s.cfg.MsgPriority[q[0].edge]
		if !found || p < bestPrio {
			found = true
			bestPrio = p
			bestEI = q[0]
			bestQueue = tag
		}
	}
	consider(s.outCAN, -1)
	nodes := s.etNodesSorted()
	for i, n := range nodes {
		consider(s.outNode[n], i)
	}
	if !found {
		return
	}
	// Remove from the queue list (arbitration moves on) but keep the
	// bytes accounted until the transmission completes: the frame
	// occupies its buffer while on the wire, which matches the
	// high-water reading of the §4.1.1 bounds.
	done := &event{kind: evBusDone, ei: bestEI, fromOutCAN: bestQueue == -1}
	if bestQueue == -1 {
		s.outCAN = s.outCAN[1:]
	} else {
		n := nodes[bestQueue]
		s.outNode[n] = s.outNode[n][1:]
		done.node = n
	}
	s.busBusy = true
	cm := can.TimeOf(&s.app.Edges[bestEI.edge], s.arch.CAN)
	s.trace(t, "CAN start  %s#%d (C=%d)", s.app.Edges[bestEI.edge].Name, bestEI.inst, cm)
	done.t = t + cm
	s.push(done)
}

// onBusDone delivers a CAN transmission and re-arbitrates.
func (s *simulator) onBusDone(e *event) {
	s.busBusy = false
	if e.fromOutCAN {
		s.canBytes -= s.app.Edges[e.ei.edge].Size
	} else {
		s.nodeBytes[e.node] -= s.app.Edges[e.ei.edge].Size
	}
	ei := e.ei
	switch s.app.RouteOf(ei.edge, s.arch) {
	case model.RouteCAN, model.RouteTTtoET:
		s.deliver(e.t, ei)
	case model.RouteETtoTT:
		// Gateway transfer process T moves it into OutTTP after C_T.
		s.push(&event{t: e.t + s.arch.GatewayCost, kind: evGwForward, ei: ei})
	}
	s.kickBus(e.t)
}

// onGwForward is the transfer process T handing a message over: TT->ET
// messages enter the OutCAN priority queue, ET->TT messages the OutTTP
// FIFO.
func (s *simulator) onGwForward(e *event) {
	switch s.app.RouteOf(e.ei.edge, s.arch) {
	case model.RouteTTtoET:
		s.enqueueOutCAN(e.t, e.ei)
	case model.RouteETtoTT:
		s.enqueueOutTTP(e.t, e.ei)
	}
}

// enqueueOutTTP appends to the FIFO (exact time ordering preserved via
// an immediate event would be overkill: C_T is constant, so arrival
// order equals completion order).
func (s *simulator) enqueueOutTTP(t model.Time, ei edgeInst) {
	s.outTTP = append(s.outTTP, queuedAt{ei: ei, at: t})
	s.ttpBytes += s.app.Edges[ei.edge].Size
	if s.ttpBytes > s.res.PeakOutTTP {
		s.res.PeakOutTTP = s.ttpBytes
	}
}

// onFrameEnd delivers the statically scheduled TTP frames: directly to
// the TT destination, or through the gateway (MBI -> T -> OutCAN) for
// TT->ET messages.
func (s *simulator) onFrameEnd(e *event) {
	for _, ei := range e.msgs {
		switch s.app.RouteOf(ei.edge, s.arch) {
		case model.RouteTTP:
			s.deliver(e.t, ei)
		case model.RouteTTtoET:
			s.push(&event{t: e.t + s.arch.GatewayCost, kind: evGwForward, ei: ei})
		}
	}
}

// onSGStart drains the OutTTP FIFO into the gateway slot: at most the
// slot capacity, in FIFO order, only messages queued before the slot
// start.
func (s *simulator) onSGStart(e *event) {
	slot := s.cfg.Round.SlotIndexOf(s.arch.Gateway)
	capacity := s.cfg.Round.Capacity(slot, s.arch.TTP.TickPerByte)
	var drained []edgeInst
	bytes := 0
	rest := s.outTTP[:0]
	for _, q := range s.outTTP {
		if q.at <= e.t && bytes+s.app.Edges[q.ei.edge].Size <= capacity && len(rest) == 0 {
			bytes += s.app.Edges[q.ei.edge].Size
			drained = append(drained, q.ei)
		} else {
			rest = append(rest, q)
		}
	}
	s.outTTP = append([]queuedAt(nil), rest...)
	s.ttpBytes -= bytes
	if len(drained) > 0 {
		s.trace(e.t, "S_G drain  %d messages (%d B)", len(drained), bytes)
		end := e.t + s.cfg.Round.Slots[slot].Length
		s.push(&event{t: end, kind: evSGEnd, msgs: drained})
	}
}

// onSGEnd delivers the drained ET->TT messages to their TT destinations.
func (s *simulator) onSGEnd(e *event) {
	for _, ei := range e.msgs {
		s.deliver(e.t, ei)
	}
}

func (s *simulator) etNodesSorted() []model.NodeID {
	return s.arch.ETNodes()
}

func (s *simulator) finish() *Result {
	// Report unfinished released instances as violations only if their
	// full window was inside the horizon.
	for k, rem := range s.remaining {
		if rem > 0 && s.releaseOf(k)+s.app.PeriodOf(k.proc) <= s.horizon {
			if _, done := s.finished[k]; !done {
				s.violate("process %d instance %d unfinished at horizon", k.proc, k.inst)
			}
		}
	}
	return s.res
}
