package sim

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/opt"
)

// TestAnalysisDominatesSimulationWithPins validates the pinned-offset
// path: OptimizeResources configurations carry PinnedProc/PinnedEdge
// constraints, which route through a different branch of the static
// scheduler than plain OS configurations. The analysed bounds must
// still dominate the simulation.
func TestAnalysisDominatesSimulationWithPins(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis + simulation sweep")
	}
	validated := 0
	pinned := 0
	for seed := int64(1); seed <= 5; seed++ {
		sys, err := gen.Generate(gen.Spec{
			Seed: seed, TTNodes: 1, ETNodes: 1, ProcsPerNode: 8, ProcsPerGraph: 8,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		app, arch := sys.Application, sys.Architecture
		orres, err := opt.OptimizeResources(context.Background(), app, arch, opt.OROptions{
			MaxIterations: 12, NeighborBudget: 16, Seeds: 2,
		})
		if err != nil {
			t.Fatalf("OptimizeResources: %v", err)
		}
		best := orres.Best
		if best == nil || !best.Schedulable() {
			continue
		}
		validated++
		if len(best.Config.PinnedProc)+len(best.Config.PinnedEdge) > 0 {
			pinned++
		}
		for _, mode := range []ExecMode{WorstCase, RandomCase} {
			res, err := Run(app, arch, best.Config, best.Analysis, Options{Cycles: 2, Exec: mode, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: Run: %v", seed, err)
			}
			if res.DeadlineMisses != 0 {
				t.Errorf("seed %d mode %v: %d deadline misses", seed, mode, res.DeadlineMisses)
			}
			checkDominance(t, app, best.Analysis, res)
		}
	}
	if validated == 0 {
		t.Fatal("no schedulable OR result to validate")
	}
	t.Logf("validated %d OR configurations (%d carrying pins)", validated, pinned)
}
