package sim

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/ttp"
)

// fig4d builds the paper's Figure 4 system in the schedulable panel-(d)
// configuration (S_1 first, P2 high priority).
func fig4d(t *testing.T) (*model.Application, *model.Architecture, *core.Config, *core.Analysis) {
	t.Helper()
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 5,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("fig4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	for _, e := range []model.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	cfg := &core.Config{
		Round: ttp.Round{Slots: []ttp.Slot{
			{Node: n1, Length: 20}, {Node: arch.Gateway, Length: 20},
		}},
		ProcPriority: map[model.ProcID]int{p2: 1, p3: 2},
		MsgPriority:  map[model.EdgeID]int{m1: 1, m2: 2, m3: 3},
	}
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	a, err := core.Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !a.Schedulable {
		t.Fatalf("panel (d) must be schedulable, delta=%d", a.Delta)
	}
	return app, arch, cfg, a
}

func TestFig4dTrace(t *testing.T) {
	app, arch, cfg, a := fig4d(t)
	res, err := Run(app, arch, cfg, a, Options{Cycles: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.DeadlineMisses != 0 {
		t.Errorf("deadline misses: %d", res.DeadlineMisses)
	}
	// The exact WCET trace: P4 completes at 190 (the analysis bound is
	// tight here), P3 at 115.
	if got := res.GraphWorstResp[0]; got != 190 {
		t.Errorf("simulated R_G1 = %d, want 190", got)
	}
	if got := res.ProcWorstResp[2]; got != 115 {
		t.Errorf("simulated response(P3) = %d, want 115", got)
	}
	// All instances of the two cycles completed: 4 procs x 2 cycles.
	if res.Completed != 8 {
		t.Errorf("completed = %d, want 8", res.Completed)
	}
	// Queue peaks match the hand-computed trace.
	if res.PeakOutCAN != 16 {
		t.Errorf("peak OutCAN = %d, want 16", res.PeakOutCAN)
	}
	if res.PeakOutTTP != 4 {
		t.Errorf("peak OutTTP = %d, want 4", res.PeakOutTTP)
	}
}

// TestAnalysisDominatesSimulationFig4 is E7 on the worked example:
// every simulated observable stays within its analysed bound.
func TestAnalysisDominatesSimulationFig4(t *testing.T) {
	app, arch, cfg, a := fig4d(t)
	for _, mode := range []ExecMode{WorstCase, BestCase, RandomCase} {
		res, err := Run(app, arch, cfg, a, Options{Cycles: 3, Exec: mode, Seed: 11})
		if err != nil {
			t.Fatalf("Run(%v): %v", mode, err)
		}
		checkDominance(t, app, a, res)
	}
}

func checkDominance(t *testing.T, app *model.Application, a *core.Analysis, res *Result) {
	t.Helper()
	for g := range app.Graphs {
		if res.GraphWorstResp[g] > a.GraphResp[g] {
			t.Errorf("graph %d: simulated %d exceeds analysed %d", g, res.GraphWorstResp[g], a.GraphResp[g])
		}
	}
	for p, simResp := range res.ProcWorstResp {
		if pr, ok := a.Proc[p]; ok && simResp > pr.Completion() {
			t.Errorf("process %s: simulated %d exceeds analysed %d", app.Procs[p].Name, simResp, pr.Completion())
		}
	}
	for e, simDel := range res.EdgeWorstDelivery {
		er, ok := a.Edge[e]
		if !ok || er.Route == model.RouteLocal {
			continue
		}
		if simDel > er.Delivery {
			t.Errorf("edge %s (%v): simulated delivery %d exceeds analysed %d", app.Edges[e].Name, er.Route, simDel, er.Delivery)
		}
	}
	if res.PeakOutCAN > a.Buffers.OutCAN {
		t.Errorf("OutCAN peak %d exceeds bound %d", res.PeakOutCAN, a.Buffers.OutCAN)
	}
	if res.PeakOutTTP > a.Buffers.OutTTP {
		t.Errorf("OutTTP peak %d exceeds bound %d", res.PeakOutTTP, a.Buffers.OutTTP)
	}
	for n, peak := range res.PeakOutNode {
		if peak > a.Buffers.OutNode[n] {
			t.Errorf("OutN_%d peak %d exceeds bound %d", n, peak, a.Buffers.OutNode[n])
		}
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

func TestDeterminism(t *testing.T) {
	app, arch, cfg, a := fig4d(t)
	r1, err := Run(app, arch, cfg, a, Options{Cycles: 2, Exec: RandomCase, Seed: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := Run(app, arch, cfg, a, Options{Cycles: 2, Exec: RandomCase, Seed: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.GraphWorstResp[0] != r2.GraphWorstResp[0] || r1.Completed != r2.Completed ||
		r1.PeakOutCAN != r2.PeakOutCAN || r1.PeakOutTTP != r2.PeakOutTTP {
		t.Error("same seed produced different traces")
	}
}

func TestRejectsOverflowingSchedule(t *testing.T) {
	// Panel (a) of Figure 4 does not fit the cycle (P4 at 220+30 > 240):
	// the simulator must refuse it.
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 1, ETNodes: 1, TickPerByte: 1, CANBitTime: 1, GatewayCost: 5,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("fig4")
	g := app.AddGraph("G1", 240, 200)
	n1 := arch.TTNodes()[0]
	n2 := arch.ETNodes()[0]
	p1 := app.AddProcess(g, "P1", 30, n1)
	p2 := app.AddProcess(g, "P2", 20, n2)
	p3 := app.AddProcess(g, "P3", 20, n2)
	p4 := app.AddProcess(g, "P4", 30, n1)
	m1 := app.AddEdge("m1", p1, p2, 8)
	m2 := app.AddEdge("m2", p1, p3, 8)
	m3 := app.AddEdge("m3", p2, p4, 4)
	for _, e := range []model.EdgeID{m1, m2, m3} {
		app.Edges[e].CANTime = 10
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	cfg := &core.Config{
		Round: ttp.Round{Slots: []ttp.Slot{
			{Node: arch.Gateway, Length: 20}, {Node: n1, Length: 20},
		}},
		ProcPriority: map[model.ProcID]int{p2: 2, p3: 1},
		MsgPriority:  map[model.EdgeID]int{m1: 1, m2: 2, m3: 3},
	}
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	a, err := core.Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Schedulable {
		t.Fatal("panel (a) should be unschedulable")
	}
	if _, err := Run(app, arch, cfg, a, Options{}); err == nil {
		t.Fatal("simulator accepted a non-cyclic schedule")
	}
	if _, err := Run(app, arch, cfg, nil, Options{}); err == nil {
		t.Fatal("simulator accepted a nil analysis")
	}
}

// TestAnalysisDominatesSimulationGenerated is E7 on synthesized random
// systems: synthesize with OptimizeSchedule, then confirm the analysis
// bounds dominate simulated traces under worst-case and random
// execution times.
func TestAnalysisDominatesSimulationGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis + simulation sweep")
	}
	checked := 0
	for seed := int64(1); seed <= 6; seed++ {
		sys, err := gen.Generate(gen.Spec{
			Seed: seed, TTNodes: 1, ETNodes: 1, ProcsPerNode: 8, ProcsPerGraph: 8,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		app, arch := sys.Application, sys.Architecture
		osres, err := opt.OptimizeSchedule(context.Background(), app, arch, opt.OSOptions{HOPAIterations: 2, SlotCandidates: 2})
		if err != nil {
			t.Fatalf("OptimizeSchedule: %v", err)
		}
		if osres.Best == nil || !osres.Best.Schedulable() {
			continue
		}
		checked++
		cfg, a := osres.Best.Config, osres.Best.Analysis
		for _, mode := range []ExecMode{WorstCase, RandomCase} {
			res, err := Run(app, arch, cfg, a, Options{Cycles: 2, Exec: mode, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d Run(%v): %v", seed, mode, err)
			}
			if res.DeadlineMisses != 0 {
				t.Errorf("seed %d mode %v: %d deadline misses in a schedulable system", seed, mode, res.DeadlineMisses)
			}
			checkDominance(t, app, a, res)
		}
	}
	if checked == 0 {
		t.Fatal("no schedulable synthesized system; generator or OS parameters need retuning")
	}
}

func TestBestCaseNeverSlower(t *testing.T) {
	app, arch, cfg, a := fig4d(t)
	worst, err := Run(app, arch, cfg, a, Options{Cycles: 2, Exec: WorstCase})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Give the processes real best-case times.
	for i := range app.Procs {
		app.Procs[i].BCET = app.Procs[i].WCET / 2
	}
	best, err := Run(app, arch, cfg, a, Options{Cycles: 2, Exec: BestCase})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range app.Procs {
		app.Procs[i].BCET = 0
	}
	if best.GraphWorstResp[0] > worst.GraphWorstResp[0] {
		t.Errorf("best-case response %d exceeds worst-case %d", best.GraphWorstResp[0], worst.GraphWorstResp[0])
	}
	if len(best.Violations) != 0 {
		t.Errorf("best-case violations: %v", best.Violations)
	}
}
