package sim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/opt"
)

// twinSystem builds a 2 TT + 2 ET platform where two ET nodes compete
// for the CAN bus, to exercise cross-queue arbitration.
func twinSystem(t *testing.T) (*model.Application, *model.Architecture, *core.Config, *core.Analysis) {
	t.Helper()
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 2, ETNodes: 2, TickPerByte: 1, CANBitTime: 1, GatewayCost: 2,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("twin")
	g := app.AddGraph("G", 1000, 900)
	tt1, tt2 := arch.TTNodes()[0], arch.TTNodes()[1]
	e1, e2 := arch.ETNodes()[0], arch.ETNodes()[1]
	srcA := app.AddProcess(g, "srcA", 10, tt1)
	srcB := app.AddProcess(g, "srcB", 10, tt2)
	workA := app.AddProcess(g, "workA", 30, e1)
	workB := app.AddProcess(g, "workB", 30, e2)
	sinkA := app.AddProcess(g, "sinkA", 10, tt1)
	sinkB := app.AddProcess(g, "sinkB", 10, tt2)
	app.AddEdge("inA", srcA, workA, 8)
	app.AddEdge("inB", srcB, workB, 8)
	app.AddEdge("outA", workA, sinkA, 8)
	app.AddEdge("outB", workB, sinkB, 8)
	for i := range app.Edges {
		app.Edges[i].CANTime = 6
	}
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	osres, err := opt.OptimizeSchedule(context.Background(), app, arch, opt.OSOptions{})
	if err != nil {
		t.Fatalf("OptimizeSchedule: %v", err)
	}
	if !osres.Best.Schedulable() {
		t.Fatalf("twin system unschedulable: delta=%d", osres.Best.Delta())
	}
	return app, arch, osres.Best.Config, osres.Best.Analysis
}

func TestTwinClusterArbitration(t *testing.T) {
	app, arch, cfg, a := twinSystem(t)
	res, err := Run(app, arch, cfg, a, Options{Cycles: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.DeadlineMisses != 0 {
		t.Errorf("misses: %d", res.DeadlineMisses)
	}
	checkDominance(t, app, a, res)
	// Both ET->TT paths crossed the gateway: the OutTTP queue was used.
	if a.Buffers.OutTTP == 0 {
		t.Error("expected ET->TT traffic through OutTTP")
	}
}

// TestTraceOutput checks the event-trace feature end to end.
func TestTraceOutput(t *testing.T) {
	app, arch, cfg, a := twinSystem(t)
	var buf bytes.Buffer
	if _, err := Run(app, arch, cfg, a, Options{Cycles: 1, Trace: &buf}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"TT start", "finish", "CAN start", "deliver", "S_G drain"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace misses %q", want)
		}
	}
	// Tracing must not change the results.
	quiet, err := Run(app, arch, cfg, a, Options{Cycles: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	traced, err := Run(app, arch, cfg, a, Options{Cycles: 1, Trace: &bytes.Buffer{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if quiet.GraphWorstResp[0] != traced.GraphWorstResp[0] || quiet.Completed != traced.Completed {
		t.Error("tracing changed the simulation outcome")
	}
}

// TestCANArbitrationOrder: with both node queues loaded at the same
// instant, the bus must serve the globally highest priority message
// first, regardless of which node queues it.
func TestCANArbitrationOrder(t *testing.T) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		TTNodes: 1, ETNodes: 2, TickPerByte: 1, CANBitTime: 1, GatewayCost: 2,
	})
	if err != nil {
		t.Fatalf("arch: %v", err)
	}
	app := model.NewApplication("arb")
	g := app.AddGraph("G", 1000, 1000)
	e1, e2 := arch.ETNodes()[0], arch.ETNodes()[1]
	// c floods the bus first with a long low-priority frame; while it is
	// transmitting, ma and mb are queued on different nodes. At the next
	// arbitration point the globally highest priority message (mb, from
	// the other node's queue) must win.
	a := app.AddProcess(g, "a", 10, e1)
	b := app.AddProcess(g, "b", 12, e2)
	c := app.AddProcess(g, "c", 5, e2)
	ra := app.AddProcess(g, "ra", 5, e2)
	rb := app.AddProcess(g, "rb", 5, e1)
	rc := app.AddProcess(g, "rc", 5, e1)
	ma := app.AddEdge("ma", a, ra, 8)
	mb := app.AddEdge("mb", b, rb, 8)
	mc := app.AddEdge("mc", c, rc, 8)
	app.Edges[ma].CANTime = 20
	app.Edges[mb].CANTime = 20
	app.Edges[mc].CANTime = 30
	if err := app.Finalize(arch); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	cfg := core.DefaultConfig(app, arch)
	// c runs first on e2 (highest CPU priority); mb outranks ma on the
	// bus although it sits in the other queue; mc is the lowest.
	cfg.ProcPriority[c] = -1
	cfg.MsgPriority[ma] = 2
	cfg.MsgPriority[mb] = 1
	cfg.MsgPriority[mc] = 3
	if err := cfg.Normalize(app); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	an, err := core.Analyze(app, arch, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := Run(app, arch, cfg, an, Options{Cycles: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Trace: c finishes at 5, mc transmits [5,35]. a finishes at 10
	// (queues ma), b finishes at 5+12=17 (queues mb). At 35 the bus
	// re-arbitrates: mb wins, [35,55]; ma follows, [55,75].
	if got := res.EdgeWorstDelivery[mc]; got != 35 {
		t.Errorf("mc delivered at %d, want 35", got)
	}
	if got := res.EdgeWorstDelivery[mb]; got != 55 {
		t.Errorf("mb delivered at %d, want 55 (wins cross-queue arbitration)", got)
	}
	if got := res.EdgeWorstDelivery[ma]; got != 75 {
		t.Errorf("ma delivered at %d, want 75", got)
	}
	checkDominance(t, app, an, res)
}
