package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"maps"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/store"
)

// Errors returned by Submit.
var (
	// ErrQueueFull rejects a submit when the bounded job queue is at
	// capacity; clients retry with backoff (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects a submit during shutdown (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownJob reports a job ID the service has never issued.
	ErrUnknownJob = errors.New("service: unknown job")
)

// errDrainCanceled is the cancel cause handed to in-flight jobs when
// the drain grace period expires; they return best-so-far results.
var errDrainCanceled = errors.New("service: drain grace period expired")

// Options tunes a Service. Zero values select the documented defaults.
type Options struct {
	// Workers bounds each Solver's evaluation pool (default
	// runtime.NumCPU()). Results are identical for every value.
	Workers int
	// JobWorkers is the number of jobs synthesized concurrently
	// (default 2).
	JobWorkers int
	// QueueDepth bounds the backlog of accepted-but-not-running jobs
	// (default 64); Submit returns ErrQueueFull beyond it.
	QueueDepth int
	// CacheSize bounds the Solver LRU (default 128 sessions).
	CacheSize int
	// Retention bounds how many terminal jobs stay pollable (default
	// 1024): beyond it the oldest-finished jobs are forgotten, so a
	// long-lived daemon's memory is bounded by its configuration, not
	// by its traffic history.
	Retention int
	// Store is the durability layer: every job state transition is
	// journaled to it before being acknowledged on the wire, finished
	// results are persisted under the request key, and New replays its
	// journal — unfinished jobs are re-enqueued, finished ones become
	// pollable again with their durable results. Nil (the default)
	// keeps today's purely in-memory behavior.
	Store store.Store
	// Clock stamps journal records and drives result TTL expiry
	// (default store.SystemClock). Tests inject a fake clock;
	// synthesis results never depend on it. The same clock feeds every
	// observability timestamp (trace spans, latency histograms), so the
	// service adds no wall-clock read of its own.
	Clock store.Clock
	// Metrics is the registry the service registers its instruments on;
	// nil (the default) disables metrics at zero cost — the nil
	// instruments compile to no-ops on the hot paths.
	Metrics *obs.Registry
	// Tracing records a per-job span tree (queue wait, solver
	// acquisition, run phases, persistence) served on
	// GET /v1/jobs/{id}/trace.
	Tracing bool
	// Logger receives structured job lifecycle logs with job, kind and
	// fingerprint attributes; nil discards them.
	Logger *slog.Logger
}

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.Retention <= 0 {
		o.Retention = 1024
	}
}

// Service owns the job queue, the runner goroutines and the Solver
// cache. Create one with New, serve it over HTTP with NewHandler, stop
// it with Drain (graceful) or Close (immediate best-so-far).
type Service struct {
	opts    Options
	cache   *solverCache
	clock   store.Clock
	queue   chan *job
	runners sync.WaitGroup

	baseCtx    context.Context
	cancelBase context.CancelFunc

	// Observability plane: obsReg is nil when metrics are off (every
	// derived instrument is then a no-op), obsClock adapts the injected
	// store clock for trace timestamps, sseDropped is the pre-registered
	// fan-out drop counter shared by every job.
	obsReg     *obs.Registry
	obsClock   obs.Clock
	tracing    bool
	log        *slog.Logger
	sseDropped *obs.Counter

	storeErrs atomic.Int64 // non-fatal journal/result-store write failures

	mu       sync.Mutex
	st       store.Store // nil = in-memory only; tests clear it to simulate a crash
	jobs     map[string]*job
	terminal []string // finished job IDs, oldest first, for retention
	nextID   int
	draining bool
	replayed int // jobs reconstructed from the journal at startup
	requeued int // replayed jobs that were re-enqueued to run again
}

// New starts a Service: JobWorkers runner goroutines draw from the
// bounded queue until Drain/Close. With a Store configured, New first
// replays the journal: terminal jobs become pollable again (done
// results load from the persistent result store), unfinished jobs are
// re-enqueued ahead of new traffic, and the journal is compacted down
// to the surviving state before the runners start.
func New(opts Options) *Service {
	opts.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		opts:       opts,
		cache:      newSolverCache(opts.CacheSize),
		clock:      opts.Clock,
		st:         opts.Store,
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*job),
	}
	if s.clock == nil {
		s.clock = store.SystemClock()
	}
	// Observability timestamps ride the same injected clock as the
	// journal, so enabling metrics or tracing introduces no new
	// wall-clock read site.
	s.obsReg = opts.Metrics
	s.obsClock = obs.ClockFunc(s.clock.Now)
	s.tracing = opts.Tracing
	s.log = opts.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	pending := s.restore()
	depth := opts.QueueDepth
	if len(pending) > depth {
		depth = len(pending) // every replayed job must be accepted back
	}
	s.queue = make(chan *job, depth)
	for _, j := range pending {
		s.queue <- j
	}
	if s.st != nil {
		if _, rep := s.st.Replay(); rep.Records > 0 || rep.Segments > 1 || len(rep.Torn) > 0 {
			s.compact() // rewrite replayed history down to live state
		}
	}
	if s.replayed > 0 {
		s.log.Info("journal replayed", "jobs", s.replayed, "requeued", s.requeued)
	}
	s.registerMetrics()
	s.runners.Add(opts.JobWorkers)
	for i := 0; i < opts.JobWorkers; i++ {
		// Job runners are the service's long-lived queue consumers, not
		// per-request fan-out; the per-job parallelism inside a runner
		// rides engine.Pool via the Solver sessions.
		//mcs:allow poolonly long-lived job-queue runners; per-job fan-out rides engine.Pool inside the Solver
		go func() {
			defer s.runners.Done()
			for j := range s.queue {
				s.run(j)
			}
		}()
	}
	return s
}

// job is the service-side state of one asynchronous request (a
// synthesis or an exploration, per kind).
type job struct {
	id          string
	kind        JobKind
	req         SynthesisRequest
	exploreReq  ExploreRequest
	strategy    solve.Strategy
	fingerprint string
	// strategyName is the display name of strategy; replayed terminal
	// jobs only have the name (the typed strategy died with the request).
	strategyName string
	// key is the persistent result cache key (fingerprint + option
	// digest); rawReq is the journaled wire request, kept until the job
	// is terminal so compaction can re-emit it.
	key    string
	rawReq json.RawMessage

	ctx    context.Context
	cancel context.CancelCauseFunc

	// Observability state, written before the job is visible to runners
	// (enqueue) or under mu (startedAt): trace/queueSpan are nil unless
	// tracing is on, sseDropped is nil unless metrics are on — nil
	// instruments are no-ops, so publish and run never branch on
	// configuration. enqueuedAt/startedAt feed the latency histograms
	// from the injected clock; replayed jobs carry zero times and are
	// skipped.
	trace      *obs.Trace
	queueSpan  *obs.Span
	sseDropped *obs.Counter
	enqueuedAt time.Time
	startedAt  time.Time

	mu       sync.Mutex
	state    JobState
	errMsg   string
	events   []ProgressEvent
	subs     map[chan ProgressEvent]struct{}
	result   *JobResult
	progress *ProgressEvent
	done     chan struct{}
}

// Submit validates and enqueues an asynchronous synthesis job. The
// request's system is finalized in place; the job is rejected when the
// service is draining or the queue is full.
func (s *Service) Submit(req SynthesisRequest) (*SubmitResponse, error) {
	strat, fp, err := req.normalize()
	if err != nil {
		return nil, err
	}
	j := &job{
		kind:         KindSynthesize,
		req:          req,
		strategy:     strat,
		strategyName: strat.String(),
		fingerprint:  fp,
		key:          req.key(strat, fp),
	}
	if err := s.encodeRequest(j, &req); err != nil {
		return nil, err
	}
	return s.enqueue(j)
}

// SubmitExplore validates and enqueues an asynchronous design-space
// exploration job. It shares Submit's queue, backpressure, Solver
// cache and lifecycle; only the executed operation (Solver.Explore)
// and the result shape (a Pareto front) differ.
func (s *Service) SubmitExplore(req ExploreRequest) (*SubmitResponse, error) {
	fp, err := req.normalize()
	if err != nil {
		return nil, err
	}
	j := &job{
		kind:         KindExplore,
		exploreReq:   req,
		strategy:     solve.Explore,
		strategyName: solve.Explore.String(),
		fingerprint:  fp,
		key:          req.key(fp),
	}
	if err := s.encodeRequest(j, &req); err != nil {
		return nil, err
	}
	return s.enqueue(j)
}

// encodeRequest captures the wire request for the journal. Only needed
// with a store: the encoding is what a crash-restarted service decodes
// to re-run the job.
func (s *Service) encodeRequest(j *job, req any) error {
	if s.storeRef() == nil {
		return nil
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("service: encoding request for the journal: %w", err)
	}
	j.rawReq = raw
	return nil
}

// enqueue assigns an ID and a context to a validated job, journals the
// submission, and offers it to the bounded queue under the intake
// lock. The journal append happens after the capacity check but before
// the acknowledgement: a rejected job leaves no record, an accepted
// one is durable before its 202 exists.
func (s *Service) enqueue(j *job) (*SubmitResponse, error) {
	j.state = StateQueued
	j.subs = make(map[chan ProgressEvent]struct{})
	j.done = make(chan struct{})

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d-%s", s.nextID, j.fingerprint[:8])
	j.ctx, j.cancel = context.WithCancelCause(s.baseCtx)
	// Every send happens under s.mu and runners only drain, so a
	// length check cannot race another producer.
	if len(s.queue) == cap(s.queue) {
		j.cancel(ErrQueueFull) // release the context before rejecting
		return nil, ErrQueueFull
	}
	if err := s.appendRecord(s.st, store.Record{
		Op:          store.OpSubmit,
		Job:         j.id,
		Kind:        string(j.kind),
		Fingerprint: j.fingerprint,
		Key:         j.key,
		Strategy:    j.strategyName,
		Request:     j.rawReq,
	}); err != nil {
		j.cancel(err)
		return nil, fmt.Errorf("service: journaling submit: %w", err)
	}
	// Observability fields must be in place before the queue send: a
	// runner may claim the job the instant it lands.
	j.enqueuedAt = s.clock.Now()
	j.sseDropped = s.sseDropped
	s.startTrace(j)
	s.queue <- j
	s.jobs[j.id] = j
	s.log.Info("job accepted",
		"job", j.id, "kind", string(j.kind), "fingerprint", j.fingerprint, "strategy", j.strategyName)
	return &SubmitResponse{
		ID:          j.id,
		Kind:        j.kind,
		Fingerprint: j.fingerprint,
		StatusURL:   "/v1/jobs/" + j.id,
		EventsURL:   "/v1/jobs/" + j.id + "/events",
	}, nil
}

// run executes one job on a cached (or freshly built) Solver session.
func (s *Service) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.startedAt = s.clock.Now()
	sys := j.req.System
	if j.kind == KindExplore {
		sys = j.exploreReq.System
	}
	j.mu.Unlock()

	s.jobStarted(j)
	st := s.storeRef()
	s.appendRecord(st, store.Record{Op: store.OpStart, Job: j.id})
	// Idempotent execution: an identical request that already finished
	// — a duplicate client submission, or this very job replayed after
	// a crash that hit between its completion and the finish record —
	// is served from the persistent result store, byte-identical to
	// the cold run that produced it.
	acquire := j.trace.Root().Start("solver")
	if st != nil && j.key != "" {
		if data, ok := st.GetResult(j.key); ok {
			var res JobResult
			if err := json.Unmarshal(data, &res); err == nil {
				res.PersistentHit = true
				acquire.SetAttr("source", "persistent")
				acquire.End()
				s.finishJob(j, &res, nil)
				return
			}
		}
	}

	base, hit, err := s.cache.getOrCreate(j.fingerprint, func() (*solve.Solver, error) {
		return solve.New(sys.Application, sys.Architecture,
			solve.WithWorkers(s.opts.Workers))
	})
	if err != nil {
		acquire.End()
		s.finishJob(j, nil, err)
		return
	}
	if hit {
		acquire.SetAttr("source", "lru")
	} else {
		acquire.SetAttr("source", "build")
	}
	acquire.End()
	// One base session per system serves every option variant and both
	// job kinds: Derive re-normalizes the request options from scratch
	// while sharing the seed-independent caches, so a whole
	// seed/strategy/exploration sweep over one system rides a single
	// cache entry. The phase tracker forwards progress to the fan-out
	// and times the run phases at this (non-deterministic-layer)
	// boundary.
	tracker := &phaseTracker{svc: s, job: j, span: j.trace.Root().Start("run")}
	observe := tracker.observer()
	var result *JobResult
	switch j.kind {
	case KindExplore:
		session := base.Derive(solve.WithWorkers(s.opts.Workers), observe)
		var res *dse.Result
		res, err = session.Explore(j.ctx, j.exploreReq.dseOptions()...)
		result, err = exploreResult(res, err, hit)
	default:
		session := base.Derive(append(j.req.solverOptions(j.strategy, s.opts.Workers), observe)...)
		var res *solve.Result
		res, err = session.Synthesize(j.ctx)
		result, err = synthesisResult(res, err, hit)
	}
	tracker.close()
	tracker.span.End()
	s.finishJob(j, result, err)
}

// finishJob records the terminal transition: the in-memory state flip,
// the persisted result (full, non-partial outcomes only — a canceled
// job's best-so-far is not byte-identical to a cold run and must never
// be served as one), the journal finish record, and retirement. The
// result is stored before the finish record so a crash between the two
// replays the job as unfinished and re-runs (or persistent-hits) it,
// instead of leaving a done job with no loadable result.
func (s *Service) finishJob(j *job, result *JobResult, err error) {
	j.finish(result, err)
	j.mu.Lock()
	state, errMsg, res := j.state, j.errMsg, j.result
	j.mu.Unlock()
	if st := s.storeRef(); st != nil {
		persist := j.trace.Root().Start("persist")
		if state == StateDone && res != nil && !res.Partial && !res.PersistentHit && j.key != "" {
			if blob, encErr := canonicalResult(res); encErr == nil {
				if putErr := st.PutResult(j.key, blob); putErr != nil {
					s.storeErrs.Add(1)
					s.log.Warn("result persist failed", "job", j.id, "error", putErr)
				}
			} else {
				s.storeErrs.Add(1)
				s.log.Warn("result encoding failed", "job", j.id, "error", encErr)
			}
		}
		s.appendRecord(st, store.Record{
			Op:    store.OpFinish,
			Job:   j.id,
			Key:   j.key,
			State: string(state),
			Error: errMsg,
		})
		persist.End()
	}
	s.jobFinished(j, state, errMsg)
	s.retire(j)
}

// canonicalResult encodes a result for the persistent store with the
// per-run flags cleared, so cached serves do not depend on how the
// first run happened to execute (Solver-LRU hit or not).
func canonicalResult(res *JobResult) ([]byte, error) {
	c := *res
	c.CacheHit = false
	c.PersistentHit = false
	return json.Marshal(&c)
}

// synthesisResult projects a synthesis outcome onto the wire result; a
// result encoding failure surfaces as the job error when the run
// itself succeeded.
func synthesisResult(res *solve.Result, err error, cacheHit bool) (*JobResult, error) {
	if res == nil || res.Config == nil {
		return nil, err
	}
	cfgJSON, encErr := encodeConfig(res.Config)
	if encErr != nil && err == nil {
		err = encErr
	}
	return &JobResult{
		Config:      cfgJSON,
		Analysis:    summarize(res.Analysis),
		Evaluations: res.Evaluations,
		CacheHit:    cacheHit,
	}, err
}

// exploreResult projects an exploration outcome (possibly a canceled
// job's best-so-far front) onto the wire result.
func exploreResult(res *dse.Result, err error, cacheHit bool) (*JobResult, error) {
	if res == nil || len(res.Front) == 0 {
		return nil, err
	}
	front, encErr := summarizeFront(res.Front)
	if encErr != nil && err == nil {
		err = encErr
	}
	return &JobResult{
		Front:       front,
		Hypervolume: res.Hypervolume,
		Evaluations: res.Evaluations,
		CacheHit:    cacheHit,
	}, err
}

// retire frees a terminal job's request payload (the decoded system is
// the bulk of its footprint; the Solver cache keeps its own reference)
// and evicts the oldest-finished jobs beyond the retention bound. With
// a store, it also triggers journal compaction once the segment count
// reaches its bound, so the journal footprint tracks live state rather
// than traffic history.
func (s *Service) retire(j *job) {
	j.mu.Lock()
	j.req = SynthesisRequest{}
	j.exploreReq = ExploreRequest{}
	j.rawReq = nil // terminal jobs compact to slim records; the payload is dead weight
	j.mu.Unlock()
	s.mu.Lock()
	s.terminal = append(s.terminal, j.id)
	for len(s.terminal) > s.opts.Retention {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	s.mu.Unlock()
	if st := s.storeRef(); st != nil && st.Stats().Segments >= compactAtSegments {
		s.compact()
	}
}

// publish fans a progress event out to the job's subscribers. Sends are
// non-blocking: a slow subscriber misses events (the Seq field reveals
// the gap) rather than stalling the synthesis.
func (j *job) publish(p solve.Progress) {
	ev := ProgressEvent{
		Strategy:    p.Strategy.String(),
		Phase:       p.Phase,
		Chain:       p.Chain,
		Step:        p.Step,
		Evaluations: p.Evaluations,
		BestDelta:   p.BestDelta,
		BestBuffers: p.BestBuffers,
		Schedulable: p.Schedulable,
		FrontSize:   p.FrontSize,
		Hypervolume: p.Hypervolume,
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	ev.Seq = len(j.events) + 1
	j.events = append(j.events, ev)
	j.progress = &ev
	//mcs:allow maporder every subscriber receives the same event and channels are independent, so delivery order across subscribers cannot affect any output
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			j.sseDropped.Inc() // the subscriber sees the gap via Seq
		}
	}
}

// finish records the terminal state of a job and releases its
// subscribers and context. A non-nil result arriving with an error is
// a best-so-far outcome and is marked Partial.
func (j *job) finish(result *JobResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	if result != nil {
		result.Partial = err != nil
		j.result = result
	}
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled):
		// Only genuine cancellations (client cancel or drain) land
		// here; a real failure racing the drain deadline stays failed.
		j.state = StateCanceled
		j.errMsg = cancelMessage(j.ctx, err)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	for ch := range j.subs {
		close(ch)
	}
	j.subs = make(map[chan ProgressEvent]struct{})
	close(j.done)
	j.cancel(nil)
}

// cancelMessage prefers the cancellation cause (client cancel vs drain)
// over the bare context error.
func cancelMessage(ctx context.Context, err error) string {
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause.Error()
	}
	return err.Error()
}

// Status returns the polling view of a job.
func (s *Service) Status(id string) (*JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	name := j.strategyName
	if name == "" {
		name = j.strategy.String()
	}
	st := &JobStatus{
		ID:          j.id,
		Kind:        j.kind,
		State:       j.state,
		Fingerprint: j.fingerprint,
		Strategy:    name,
		Progress:    j.progress,
		Result:      j.result,
		Error:       j.errMsg,
	}
	return st, nil
}

// Subscribe returns a channel of the job's progress events: the history
// so far is replayed first, live events follow, and the channel closes
// when the job reaches a terminal state. The returned cancel function
// detaches the subscriber early.
func (s *Service) Subscribe(id string) (<-chan ProgressEvent, func(), error) {
	j, err := s.job(id)
	if err != nil {
		return nil, nil, err
	}
	j.mu.Lock()
	// Size for the whole history plus a live tail; live sends beyond
	// the buffer are dropped, not blocked on.
	ch := make(chan ProgressEvent, len(j.events)+256)
	for _, ev := range j.events {
		ch <- ev
	}
	if j.state.Terminal() {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}, nil
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()

	unsubscribe := func() {
		j.mu.Lock()
		if _, live := j.subs[ch]; live {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
	return ch, unsubscribe, nil
}

// Done returns a channel closed when the job reaches a terminal state.
func (s *Service) Done(id string) (<-chan struct{}, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	return j.done, nil
}

// Cancel cancels a job: queued jobs terminate immediately, running jobs
// stop at the next evaluation granule and keep their best-so-far
// configuration.
func (s *Service) Cancel(id string) error {
	j, err := s.job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.errMsg = "canceled before running"
		for ch := range j.subs {
			close(ch)
		}
		j.subs = make(map[chan ProgressEvent]struct{})
		close(j.done)
		j.mu.Unlock()
		j.cancel(nil)
		// Queued jobs never reach finishJob (the runner skips terminal
		// jobs), so journal the resolution and retire here.
		if st := s.storeRef(); st != nil {
			s.appendRecord(st, store.Record{
				Op:    store.OpFinish,
				Job:   j.id,
				Key:   j.key,
				State: store.StateCanceled,
				Error: j.errMsg,
			})
		}
		s.jobFinished(j, StateCanceled, "canceled before running")
		s.retire(j)
		return nil
	}
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if !terminal {
		// Journal the cancellation intent before delivering it: if the
		// process dies before the job winds down, replay resolves the
		// job to canceled instead of re-running work nobody wants.
		s.appendRecord(s.storeRef(), store.Record{Op: store.OpCancel, Job: j.id})
		s.log.Info("job cancel requested", "job", j.id, "kind", string(j.kind))
	}
	j.cancel(context.Canceled)
	return nil
}

func (s *Service) job(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Analyze runs a synchronous batch analysis on a cached Solver session.
// Per-configuration decode and analysis failures land in the matching
// outcome; the call fails only for an invalid system or a canceled ctx.
func (s *Service) Analyze(ctx context.Context, req AnalysisRequest) (*AnalysisResponse, error) {
	sreq := SynthesisRequest{System: req.System}
	_, fp, err := sreq.normalize()
	if err != nil {
		return nil, err
	}
	solver, hit, err := s.cache.getOrCreate(fp, func() (*solve.Solver, error) {
		return solve.New(req.System.Application, req.System.Architecture, solve.WithWorkers(s.opts.Workers))
	})
	if err != nil {
		return nil, err
	}
	app, arch := solver.Application(), solver.Architecture()

	resp := &AnalysisResponse{Fingerprint: fp, CacheHit: hit}
	if len(req.Configs) == 0 {
		r, err := solver.Straightforward(ctx)
		if err != nil {
			return nil, err
		}
		resp.Results = []AnalysisOutcome{{Analysis: summarize(r.Analysis)}}
		return resp, nil
	}

	resp.Results = make([]AnalysisOutcome, len(req.Configs))
	var cfgs []*core.Config
	var idx []int
	for i, raw := range req.Configs {
		cfg, err := core.LoadConfig(bytes.NewReader(raw), app, arch)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		cfgs = append(cfgs, cfg)
		idx = append(idx, i)
	}
	evals, err := solver.AnalyzeAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	for k, ev := range evals {
		if ev.Err != nil {
			resp.Results[idx[k]].Error = ev.Err.Error()
			continue
		}
		resp.Results[idx[k]].Analysis = summarize(ev.Analysis)
	}
	return resp, nil
}

// Drain gracefully shuts the service down: intake stops (Submit returns
// ErrDraining), queued and running jobs are given until ctx expires to
// finish, then the stragglers are canceled so they terminate with their
// best-so-far configurations. Drain returns once every runner has
// exited; it is safe to call more than once.
func (s *Service) Drain(ctx context.Context) {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	if first {
		close(s.queue) // Submit sends under s.mu with draining false, so this cannot race
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	//mcs:allow poolonly drain bridges the runners WaitGroup into a select against the grace ctx
	go func() {
		s.runners.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		s.cancelJobs(errDrainCanceled)
		<-finished
	}
	if first {
		s.cancelJobs(errDrainCanceled) // flush jobs canceled while queued
		s.cancelBase()
	}
}

// cancelJobs cancels every non-terminal job with the given cause.
func (s *Service) cancelJobs(cause error) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, id := range slices.Sorted(maps.Keys(s.jobs)) {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if !terminal {
			j.cancel(cause)
		}
	}
}

// Close shuts down immediately: like Drain with an expired grace
// period, so in-flight jobs return best-so-far results.
func (s *Service) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
}

// Stats is a point-in-time snapshot for health endpoints.
type Stats struct {
	Jobs        map[JobState]int `json:"jobs"`
	CacheHits   int              `json:"cacheHits"`
	CacheMisses int              `json:"cacheMisses"`
	CacheSize   int              `json:"cacheSize"`
	Draining    bool             `json:"draining"`
	// Store reports the durability layer's counters; nil when the
	// service runs purely in memory.
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats merges the store's own counters with the service-level
// replay outcome for /healthz.
type StoreStats struct {
	store.Stats
	// ReplayedJobs counts jobs reconstructed from the journal at
	// startup; RequeuedJobs of those were unfinished and re-enqueued.
	ReplayedJobs int `json:"replayedJobs"`
	RequeuedJobs int `json:"requeuedJobs"`
	// Errors counts non-fatal store write failures since startup.
	Errors int64 `json:"errors,omitempty"`
}

// Stats snapshots the job, cache and durability counters.
func (s *Service) Stats() Stats {
	st := Stats{Jobs: make(map[JobState]int)}
	st.CacheHits, st.CacheMisses, st.CacheSize = s.cache.stats()
	s.mu.Lock()
	st.Draining = s.draining
	dst, replayed, requeued := s.st, s.replayed, s.requeued
	jobs := make([]*job, 0, len(s.jobs))
	for _, id := range slices.Sorted(maps.Keys(s.jobs)) {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		st.Jobs[j.state]++
		j.mu.Unlock()
	}
	if dst != nil {
		st.Store = &StoreStats{
			Stats:        dst.Stats(),
			ReplayedJobs: replayed,
			RequeuedJobs: requeued,
			Errors:       s.storeErrs.Load(),
		}
	}
	return st
}
