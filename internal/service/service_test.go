package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/solve"
)

// testSystem generates a fresh small two-cluster system. Distinct calls
// with the same seed return distinct pointers with identical content —
// exactly what a service sees when two clients submit the same system.
func testSystem(t testing.TB, seed int64) *model.System {
	t.Helper()
	sys, err := gen.Generate(gen.Spec{Seed: seed, TTNodes: 1, ETNodes: 1, ProcsPerNode: 6, ProcsPerGraph: 6})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// waitDone blocks until the job is terminal and returns its status.
func waitDone(t testing.TB, s *Service, id string) *JobStatus {
	t.Helper()
	done, err := s.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConcurrentJobsWithProgress is the serving half of the acceptance
// criteria: several synthesize jobs run concurrently, every job streams
// progress to its subscriber, and every result decodes into a valid
// configuration.
func TestConcurrentJobsWithProgress(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 3, QueueDepth: 16})
	defer s.Close()

	type sub struct {
		id  string
		ch  <-chan ProgressEvent
		sys *model.System
	}
	var subs []sub
	for i := 0; i < 6; i++ {
		sys := testSystem(t, int64(i%3)+1)
		resp, err := s.Submit(SynthesisRequest{System: sys, Strategy: "or"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ch, _, err := s.Subscribe(resp.ID)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{id: resp.ID, ch: ch, sys: sys})
	}
	for _, sb := range subs {
		st := waitDone(t, s, sb.id)
		if st.State != StateDone {
			t.Fatalf("job %s: state %s (error %q)", sb.id, st.State, st.Error)
		}
		if st.Result == nil || len(st.Result.Config) == 0 {
			t.Fatalf("job %s: no result config", sb.id)
		}
		cfg, err := core.LoadConfig(bytes.NewReader(st.Result.Config), sb.sys.Application, sb.sys.Architecture)
		if err != nil {
			t.Fatalf("job %s: result config does not decode: %v", sb.id, err)
		}
		if cfg == nil {
			t.Fatalf("job %s: nil config", sb.id)
		}
		var events []ProgressEvent
		for ev := range sb.ch {
			events = append(events, ev)
		}
		if len(events) == 0 {
			t.Errorf("job %s: subscriber saw no progress events", sb.id)
		}
		for k := 1; k < len(events); k++ {
			if events[k].Seq <= events[k-1].Seq {
				t.Errorf("job %s: event seq not increasing: %d after %d", sb.id, events[k].Seq, events[k-1].Seq)
			}
		}
	}
}

// TestCacheHitBitIdentical is the cache half of the acceptance
// criteria: a second submission of the same system (a distinct decoded
// instance) must hit the Solver cache and return a configuration
// bit-identical to both the cold job and a direct cold Solver run.
func TestCacheHitBitIdentical(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()

	req := func() SynthesisRequest {
		return SynthesisRequest{System: testSystem(t, 2), Strategy: "or", Seed: 7}
	}
	r1, err := s.Submit(req())
	if err != nil {
		t.Fatal(err)
	}
	cold := waitDone(t, s, r1.ID)
	if cold.State != StateDone {
		t.Fatalf("cold job: state %s (error %q)", cold.State, cold.Error)
	}
	if cold.Result.CacheHit {
		t.Fatal("first job reported a cache hit")
	}

	r2, err := s.Submit(req())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Fingerprint != r1.Fingerprint {
		t.Fatalf("fingerprints differ for identical systems: %s vs %s", r1.Fingerprint, r2.Fingerprint)
	}
	hit := waitDone(t, s, r2.ID)
	if hit.State != StateDone {
		t.Fatalf("cached job: state %s (error %q)", hit.State, hit.Error)
	}
	if !hit.Result.CacheHit {
		t.Fatal("second identical job missed the cache")
	}
	if !bytes.Equal(cold.Result.Config, hit.Result.Config) {
		t.Error("cache-hit config is not bit-identical to the cold job's")
	}
	if !reflect.DeepEqual(cold.Result.Analysis, hit.Result.Analysis) {
		t.Error("cache-hit analysis differs from the cold job's")
	}
	if cold.Result.Evaluations != hit.Result.Evaluations {
		t.Errorf("evaluation counts differ: cold %d, cached %d", cold.Result.Evaluations, hit.Result.Evaluations)
	}

	// A direct cold Solver run outside the service must agree too.
	sys := testSystem(t, 2)
	solver, err := solve.New(sys.Application, sys.Architecture,
		solve.WithStrategy(solve.OptimizeResources), solve.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Synthesize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := encodeConfig(res.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, cold.Result.Config) {
		t.Error("service config is not bit-identical to a direct Solver run")
	}

	// Option variants of the same system share the cache entry: a
	// different strategy and seed still hit, since jobs derive their
	// sessions from the fingerprint-keyed base Solver.
	r3, err := s.Submit(SynthesisRequest{System: testSystem(t, 2), Strategy: "sas", Seed: 9, SAIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	variant := waitDone(t, s, r3.ID)
	if variant.State != StateDone {
		t.Fatalf("variant job: state %s (error %q)", variant.State, variant.Error)
	}
	if !variant.Result.CacheHit {
		t.Error("option variant of a cached system missed the cache")
	}
}

// TestDrainReturnsBestSoFar is the shutdown half of the acceptance
// criteria: draining with an expired grace period cancels an in-flight
// annealing job, which terminates with its best-so-far configuration
// instead of losing finished work.
func TestDrainReturnsBestSoFar(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	// An annealing budget far beyond what the test allows to complete:
	// without cancellation this would run for minutes.
	resp, err := s.Submit(SynthesisRequest{System: testSystem(t, 3), Strategy: "sas", SAIterations: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	ch, unsubscribe, err := s.Subscribe(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch: // the job is provably mid-synthesis
	case <-time.After(30 * time.Second):
		t.Fatal("no progress event before drain")
	}
	unsubscribe()

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(expired)

	st, err := s.Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("drained job state %s, want %s (error %q)", st.State, StateCanceled, st.Error)
	}
	if st.Result == nil || len(st.Result.Config) == 0 {
		t.Fatal("drained job lost its best-so-far configuration")
	}
	if !st.Result.Partial {
		t.Error("drained job result not marked partial")
	}
	if _, err := s.Submit(SynthesisRequest{System: testSystem(t, 3)}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: err %v, want ErrDraining", err)
	}
}

// TestQueueBoundsAndCancel exercises the bounded queue and per-job
// cancellation: a full queue rejects with ErrQueueFull, a queued job
// cancels immediately, and a running job cancels at evaluation
// granularity keeping its best-so-far result.
func TestQueueBoundsAndCancel(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1, QueueDepth: 1})
	defer s.Close()

	long := func() SynthesisRequest {
		return SynthesisRequest{System: testSystem(t, 4), Strategy: "sas", SAIterations: 50_000_000}
	}
	running, err := s.Submit(long())
	if err != nil {
		t.Fatal(err)
	}
	chRunning, _, err := s.Subscribe(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-chRunning: // runner busy: the queue slot is free again
	case <-time.After(30 * time.Second):
		t.Fatal("first job never started")
	}

	queued, err := s.Submit(SynthesisRequest{System: testSystem(t, 5), SAIterations: 123})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(long()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err %v, want ErrQueueFull", err)
	}

	// Cancel the queued job: it must terminate without ever running.
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, queued.ID)
	if st.State != StateCanceled {
		t.Fatalf("queued job state %s, want canceled", st.State)
	}
	if st.Result != nil {
		t.Error("never-run job has a result")
	}

	// Cancel the running job: best-so-far must survive.
	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, running.ID)
	if st.State != StateCanceled {
		t.Fatalf("running job state %s, want canceled (error %q)", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.Partial {
		t.Error("canceled running job lost its best-so-far result")
	}

	if _, err := s.Status("j999999-deadbeef"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job: err %v, want ErrUnknownJob", err)
	}
}

// TestAnalyzeBatchMatchesDirect checks the synchronous endpoint: the
// batch outcomes equal direct core.Analyze runs, decode failures stay
// per-item, and the second request hits the session cache.
func TestAnalyzeBatchMatchesDirect(t *testing.T) {
	s := New(Options{Workers: 2, JobWorkers: 1})
	defer s.Close()
	ctx := context.Background()

	sys := testSystem(t, 6)
	base := core.DefaultConfig(sys.Application, sys.Architecture)
	if err := base.Normalize(sys.Application); err != nil {
		t.Fatal(err)
	}
	variant := base.Clone()
	variant.Round.Slots[0].Length += 8
	if err := variant.Normalize(sys.Application); err != nil {
		t.Fatal(err)
	}
	rawBase, err := encodeConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	rawVariant, err := encodeConfig(variant)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := s.Analyze(ctx, AnalysisRequest{
		System:  testSystem(t, 6),
		Configs: []json.RawMessage{rawBase, []byte(`{"not":"a config"}`), rawVariant},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	if resp.Results[1].Error == "" || resp.Results[1].Analysis != nil {
		t.Error("malformed config did not produce a per-item error")
	}
	for i, cfg := range map[int]*core.Config{0: base, 2: variant} {
		want, err := core.Analyze(sys.Application, sys.Architecture, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[i]
		if got.Error != "" {
			t.Fatalf("config %d: %s", i, got.Error)
		}
		if !reflect.DeepEqual(got.Analysis, summarize(want)) {
			t.Errorf("config %d: batch analysis differs from direct Analyze", i)
		}
	}

	// Same system again: the analysis session must be a cache hit, with
	// identical outcomes.
	again, err := s.Analyze(ctx, AnalysisRequest{System: testSystem(t, 6), Configs: []json.RawMessage{rawBase}})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("repeat analysis missed the session cache")
	}
	if !reflect.DeepEqual(again.Results[0], resp.Results[0]) {
		t.Error("cache-hit analysis differs from the cold one")
	}

	// An empty batch analyzes the default (SF) configuration.
	def, err := s.Analyze(ctx, AnalysisRequest{System: testSystem(t, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Results) != 1 || def.Results[0].Analysis == nil {
		t.Fatal("empty batch did not analyze the default configuration")
	}
	if !reflect.DeepEqual(def.Results[0], resp.Results[0]) {
		t.Error("default-config analysis differs from the explicit default config")
	}
}

// TestLRUEviction pins the cache bound: with capacity 2, a third system
// evicts the least-recently-used session.
func TestLRUEviction(t *testing.T) {
	c := newSolverCache(2)
	build := func(seed int64) func() (*solve.Solver, error) {
		return func() (*solve.Solver, error) {
			sys := testSystem(t, seed)
			return solve.New(sys.Application, sys.Architecture)
		}
	}
	for _, key := range []string{"a", "b", "a", "c"} { // use of "a" keeps it warm
		if _, _, err := c.getOrCreate(key, build(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, hit, _ := c.getOrCreate("a", build(1)); !hit {
		t.Error("recently used entry was evicted")
	}
	if _, hit, _ := c.getOrCreate("b", build(1)); hit {
		t.Error("least recently used entry was not evicted")
	}
	hits, misses, size := c.stats()
	if size != 2 {
		t.Errorf("cache size %d, want 2", size)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("stats not tracked: hits=%d misses=%d", hits, misses)
	}
}

// TestRetentionEvictsOldestTerminal bounds the job map: beyond the
// retention cap, the oldest-finished jobs stop being pollable while
// recent ones survive, so a long-lived daemon's memory is bounded.
func TestRetentionEvictsOldestTerminal(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1, Retention: 2})
	defer s.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		resp, err := s.Submit(SynthesisRequest{System: testSystem(t, 2), Strategy: "sf"})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, resp.ID)
		ids = append(ids, resp.ID)
	}
	for _, old := range ids[:2] {
		if _, err := s.Status(old); !errors.Is(err, ErrUnknownJob) {
			t.Errorf("job %s: err %v, want ErrUnknownJob after eviction", old, err)
		}
	}
	for _, recent := range ids[2:] {
		st, err := s.Status(recent)
		if err != nil {
			t.Fatalf("job %s evicted within the retention bound: %v", recent, err)
		}
		if st.State != StateDone || st.Result == nil {
			t.Errorf("job %s: retained status incomplete", recent)
		}
	}
}
