package service

// The durability glue between the Service and its store.Store: journal
// appends, startup replay, and compaction snapshots. The rules that
// keep replay honest live here:
//
//   - a submit is journaled before its 202 exists (enqueue), so every
//     acknowledged job survives a crash;
//   - a result is persisted before its finish record (finishJob), so a
//     "done" record always has a loadable result — a crash between the
//     two re-runs the job, which is merely wasteful;
//   - replayed unfinished jobs re-enter the queue ahead of new traffic
//     with their original IDs, and re-running them is idempotent: the
//     synthesis is deterministic and the persistent result cache
//     short-circuits work that actually finished.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"slices"

	"repro/internal/solve"
	"repro/internal/store"
)

// compactAtSegments triggers a journal rewrite once the segment count
// reaches this bound; together with the segment size cap it bounds the
// journal footprint by live state, not by traffic history.
const compactAtSegments = 4

// storeRef returns the current store under the intake lock. It is the
// only store accessor outside New: tests clear s.st mid-run to make
// post-"crash" activity invisible to the journal.
func (s *Service) storeRef() store.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// appendRecord stamps and appends one journal record; a nil store is a
// no-op. The caller decides whether a failure gates the state
// transition (enqueue rejects the submit) or is merely counted (start,
// cancel and finish records: the in-memory truth stays correct, and at
// worst a replay re-runs deterministic work).
func (s *Service) appendRecord(st store.Store, rec store.Record) error {
	if st == nil {
		return nil
	}
	rec.Unix = s.clock.Now().Unix()
	if err := st.Append(rec); err != nil {
		s.storeErrs.Add(1)
		return err
	}
	return nil
}

// restore replays the journal into the in-memory job table and returns
// the unfinished jobs to re-enqueue, in original submit order. It runs
// inside New before the runners start, so it touches Service state
// without locks.
func (s *Service) restore() []*job {
	if s.st == nil {
		return nil
	}
	recs, _ := s.st.Replay()
	var pending []*job
	for _, snap := range store.Reduce(recs) {
		j := &job{
			id:           snap.ID,
			kind:         JobKind(snap.Kind),
			strategyName: snap.Strategy,
			fingerprint:  snap.Fingerprint,
			key:          snap.Key,
			subs:         make(map[chan ProgressEvent]struct{}),
			done:         make(chan struct{}),
		}
		j.ctx, j.cancel = context.WithCancelCause(s.baseCtx)
		if seq := jobSeq(snap.ID); seq > s.nextID {
			s.nextID = seq // new IDs continue past every replayed one
		}
		s.replayed++
		if snap.State == store.StateQueued {
			if err := j.restoreRequest(snap.Request); err != nil {
				// The journaled request no longer decodes: fail the job
				// visibly instead of dropping it, and journal the
				// resolution so the next restart agrees.
				s.failRestored(j, err.Error())
			} else {
				j.state = StateQueued
				pending = append(pending, j)
				s.requeued++
			}
		} else {
			s.finishRestored(j, snap)
		}
		s.jobs[j.id] = j
	}
	for len(s.terminal) > s.opts.Retention {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	return pending
}

// finishRestored re-registers a terminal job from its snapshot: state
// and error come from the journal, a done job's result loads from the
// persistent result store under its request key.
func (s *Service) finishRestored(j *job, snap *store.JobSnapshot) {
	j.state = JobState(snap.State)
	j.errMsg = snap.Error
	if snap.State == store.StateDone && snap.Key != "" {
		if data, ok := s.st.GetResult(snap.Key); ok {
			if res, err := decodeStoredResult(data); err == nil {
				j.result = res
			}
		}
	}
	if snap.State == store.StateDone && j.result == nil {
		// The finish record outlived its result (TTL expiry, or the
		// results directory was lost separately). The job stays done —
		// silently re-running would betray the recorded outcome — but
		// the missing result is reported, not hidden.
		j.errMsg = "store: persisted result expired or missing; resubmit to recompute"
	}
	close(j.done)
	j.cancel(nil)
	s.terminal = append(s.terminal, j.id)
}

// failRestored resolves a replayed job that cannot be re-run.
func (s *Service) failRestored(j *job, msg string) {
	j.state = StateFailed
	j.errMsg = msg
	close(j.done)
	j.cancel(nil)
	s.appendRecord(s.st, store.Record{
		Op:    store.OpFinish,
		Job:   j.id,
		Key:   j.key,
		State: store.StateFailed,
		Error: msg,
	})
	s.terminal = append(s.terminal, j.id)
}

// decodeStoredResult decodes canonical result bytes from the
// persistent store and marks them as a persistent serve.
func decodeStoredResult(data []byte) (*JobResult, error) {
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, err
	}
	res.PersistentHit = true
	return &res, nil
}

// restoreRequest decodes and re-normalizes a journaled wire request so
// the replayed job re-runs exactly like a fresh submission of the same
// body: normalization is deterministic, so the fingerprint and request
// key it recomputes match the journaled ones.
func (j *job) restoreRequest(raw []byte) error {
	if len(raw) == 0 {
		return errors.New(store.ErrPayloadMissing)
	}
	switch j.kind {
	case KindExplore:
		var req ExploreRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return fmt.Errorf("service: decoding journaled explore request: %w", err)
		}
		fp, err := req.normalize()
		if err != nil {
			return fmt.Errorf("service: re-normalizing journaled request: %w", err)
		}
		j.exploreReq = req
		j.strategy = solve.Explore
		j.fingerprint = fp
		j.key = req.key(fp)
	default:
		var req SynthesisRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return fmt.Errorf("service: decoding journaled synthesis request: %w", err)
		}
		strat, fp, err := req.normalize()
		if err != nil {
			return fmt.Errorf("service: re-normalizing journaled request: %w", err)
		}
		j.req = req
		j.strategy = strat
		j.fingerprint = fp
		j.key = req.key(strat, fp)
	}
	j.rawReq = raw
	if j.strategyName == "" {
		j.strategyName = j.strategy.String()
	}
	return nil
}

// jobSeq parses the numeric sequence out of a job ID ("j%06d-<fp8>");
// 0 for anything that does not look like one.
func jobSeq(id string) int {
	var seq int
	var fp string
	if n, _ := fmt.Sscanf(id, "j%d-%s", &seq, &fp); n < 1 {
		return 0
	}
	return seq
}

// compact rewrites the journal down to the live records. Errors are
// counted, not surfaced: an uncompacted journal is bigger, never wrong.
func (s *Service) compact() {
	st := s.storeRef()
	if st == nil {
		return
	}
	if err := st.Compact(s.liveRecords); err != nil {
		s.storeErrs.Add(1)
	}
}

// liveRecords snapshots the jobs the journal must remember: terminal
// jobs as slim submit+finish pairs (their results live in the result
// store), live jobs as full submits so a crash can still re-run them.
// The store calls it after sealing the active segment, so transitions
// journaled concurrently land in later segments and survive the rewrite
// regardless of what this snapshot captures.
func (s *Service) liveRecords() []store.Record {
	now := s.clock.Now().Unix()
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, id := range slices.Sorted(maps.Keys(s.jobs)) {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	recs := make([]store.Record, 0, 2*len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		state, errMsg, raw := j.state, j.errMsg, j.rawReq
		j.mu.Unlock()
		sub := store.Record{
			Op:          store.OpSubmit,
			Job:         j.id,
			Kind:        string(j.kind),
			Fingerprint: j.fingerprint,
			Key:         j.key,
			Strategy:    j.strategyName,
			Unix:        now,
		}
		if state.Terminal() {
			recs = append(recs, sub, store.Record{
				Op:    store.OpFinish,
				Job:   j.id,
				Key:   j.key,
				State: string(state),
				Error: errMsg,
				Unix:  now,
			})
			continue
		}
		sub.Request = raw
		recs = append(recs, sub)
	}
	return recs
}
