package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHTTPSubmitPollResult is the scripted wire round trip: submit a
// job over HTTP, poll its status URL until done, and decode the result.
func TestHTTPSubmitPollResult(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 2})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/synthesize", SynthesisRequest{System: testSystem(t, 2), Strategy: "os"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location %q, want /v1/jobs/...", loc)
	}
	sub := decodeBody[SubmitResponse](t, resp)
	if sub.ID == "" || sub.Fingerprint == "" {
		t.Fatalf("incomplete submit response: %+v", sub)
	}

	var st JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(srv.URL + sub.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", r.StatusCode)
		}
		st = decodeBody[JobStatus](t, r)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}
	if st.Result == nil || len(st.Result.Config) == 0 || st.Result.Analysis == nil {
		t.Fatalf("incomplete result: %+v", st.Result)
	}

	// Unknown jobs 404; malformed bodies 400 (unknown fields rejected).
	if r, _ := http.Get(srv.URL + "/v1/jobs/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", r.StatusCode)
	}
	bad, err := http.Post(srv.URL+"/v1/synthesize", "application/json", strings.NewReader(`{"sytem": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("typo field status %d, want 400", bad.StatusCode)
	}
}

// TestHTTPEventsSSE reads the SSE stream end to end: progress events
// arrive with increasing sequence numbers and the stream finishes with
// a "done" event carrying the terminal status.
func TestHTTPEventsSSE(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/synthesize", SynthesisRequest{System: testSystem(t, 1), Strategy: "or"})
	sub := decodeBody[SubmitResponse](t, resp)

	stream, err := http.Get(srv.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	var progress []ProgressEvent
	var final *JobStatus
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var ev ProgressEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad progress data %q: %v", data, err)
				}
				progress = append(progress, ev)
			case "done":
				var st JobStatus
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					t.Fatalf("bad done data %q: %v", data, err)
				}
				final = &st
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(progress) == 0 {
		t.Error("SSE stream carried no progress events")
	}
	for i := 1; i < len(progress); i++ {
		if progress[i].Seq <= progress[i-1].Seq {
			t.Errorf("SSE seq not increasing: %d after %d", progress[i].Seq, progress[i-1].Seq)
		}
	}
	if final == nil {
		t.Fatal("SSE stream ended without a done event")
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("done event state %s, result %v", final.State, final.Result != nil)
	}
}

// TestHTTPAnalyzeAndCancel covers the synchronous endpoint, DELETE
// cancellation and the health endpoint.
func TestHTTPAnalyzeAndCancel(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/analyze", AnalysisRequest{System: testSystem(t, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}
	ar := decodeBody[AnalysisResponse](t, resp)
	if len(ar.Results) != 1 || ar.Results[0].Analysis == nil {
		t.Fatalf("analyze response incomplete: %+v", ar)
	}

	// Cancel a long-running job over HTTP.
	resp = postJSON(t, srv.URL+"/v1/synthesize", SynthesisRequest{System: testSystem(t, 4), Strategy: "sas", SAIterations: 50_000_000})
	sub := decodeBody[SubmitResponse](t, resp)
	ch, _, err := s.Subscribe(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%s", srv.URL, sub.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dr.StatusCode)
	}
	dr.Body.Close()
	st := waitDone(t, s, sub.ID)
	if st.State != StateCanceled {
		t.Fatalf("canceled job state %s", st.State)
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
	stats := decodeBody[Stats](t, hr)
	if stats.CacheMisses == 0 {
		t.Errorf("healthz stats look empty: %+v", stats)
	}
}
