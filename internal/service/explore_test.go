package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/solve"
)

// TestExploreJobReturnsFront: an explore job runs through the shared
// queue and returns a mutually non-dominated front whose configurations
// decode, with the job tagged by its kind.
func TestExploreJobReturnsFront(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()

	sys := testSystem(t, 2)
	resp, err := s.SubmitExplore(ExploreRequest{System: sys, Population: 6, Generations: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindExplore {
		t.Errorf("submit kind %q, want %q", resp.Kind, KindExplore)
	}
	st := waitDone(t, s, resp.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}
	if st.Kind != KindExplore || st.Strategy != "DSE" {
		t.Errorf("status kind=%q strategy=%q", st.Kind, st.Strategy)
	}
	if st.Result == nil || len(st.Result.Front) == 0 {
		t.Fatal("explore job returned no front")
	}
	if len(st.Result.Config) != 0 {
		t.Error("explore job result carries a single config")
	}
	if st.Result.Evaluations == 0 {
		t.Error("explore job reports zero evaluations")
	}
	for i, p := range st.Result.Front {
		for j, q := range st.Result.Front {
			if i == j {
				continue
			}
			if p.Delta <= q.Delta && p.Buffers <= q.Buffers && p.Bandwidth <= q.Bandwidth {
				t.Errorf("front[%d] weakly dominates front[%d]", i, j)
			}
		}
		cfg, err := core.LoadConfig(bytes.NewReader(p.Config), sys.Application, sys.Architecture)
		if err != nil || cfg == nil {
			t.Fatalf("front[%d] config does not decode: %v", i, err)
		}
	}
}

// TestExploreJobSharesSolverCache: a synthesize job and an explore job
// over the same system ride one cached base session.
func TestExploreJobSharesSolverCache(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()

	r1, err := s.Submit(SynthesisRequest{System: testSystem(t, 2), Strategy: "sf"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, r1.ID)
	r2, err := s.SubmitExplore(ExploreRequest{System: testSystem(t, 2), Population: 6, Generations: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, r2.ID)
	if st.State != StateDone {
		t.Fatalf("explore state %s (error %q)", st.State, st.Error)
	}
	if !st.Result.CacheHit {
		t.Error("explore job over a known system missed the Solver cache")
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Errorf("fingerprints differ across kinds: %s vs %s", r1.Fingerprint, r2.Fingerprint)
	}
}

// TestExploreCancelKeepsPartialFront is the serving half of the
// cancellation acceptance criterion: cancelling a running exploration
// yields state canceled with the best-so-far front marked Partial.
func TestExploreCancelKeepsPartialFront(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()

	resp, err := s.SubmitExplore(ExploreRequest{
		System: testSystem(t, 3), Population: 8, Generations: 1_000_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, unsubscribe, err := s.Subscribe(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch: // provably mid-exploration (or mid-warm-start)
	case <-time.After(30 * time.Second):
		t.Fatal("no progress event before cancel")
	}
	unsubscribe()
	if err := s.Cancel(resp.ID); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, resp.ID)
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled (error %q)", st.State, st.Error)
	}
	if st.Result == nil || len(st.Result.Front) == 0 {
		t.Fatal("canceled exploration lost its best-so-far front")
	}
	if !st.Result.Partial {
		t.Error("canceled exploration's front not marked partial")
	}
}

// TestExploreProgressEventsCarryFrontStats: the SSE stream of an
// explore job reports dse-phase events with front size and
// hypervolume.
func TestExploreProgressEventsCarryFrontStats(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()

	resp, err := s.SubmitExplore(ExploreRequest{System: testSystem(t, 2), Population: 6, Generations: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, _, err := s.Subscribe(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	sawDSE := false
	for ev := range ch {
		if ev.Strategy != "DSE" {
			t.Errorf("event strategy %q, want DSE", ev.Strategy)
		}
		if ev.Phase == "dse" && ev.FrontSize > 0 {
			sawDSE = true
		}
	}
	if !sawDSE {
		t.Error("no dse-phase event with a front size")
	}
	st := waitDone(t, s, resp.ID)
	if st.State != StateDone {
		t.Fatalf("state %s (error %q)", st.State, st.Error)
	}
}

// TestHTTPExploreAndStrategies drives the new endpoints end to end:
// POST /v1/explore accepts a wire request and the job's front comes
// back over the poll endpoint; GET /v1/strategies lists exactly the
// Solver's synthesis strategies with parseable names.
func TestHTTPExploreAndStrategies(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	sys := testSystem(t, 2)
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(map[string]any{
		"system": sys, "population": 6, "generations": 2,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/explore", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/explore: status %d", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Kind != KindExplore {
		t.Errorf("kind %q, want explore", sub.Kind)
	}

	deadline := time.Now().Add(60 * time.Second)
	var st JobStatus
	for {
		r, err := http.Get(srv.URL + sub.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.State != StateDone || st.Result == nil || len(st.Result.Front) == 0 {
		t.Fatalf("state %s, front %v", st.State, st.Result)
	}

	r, err := http.Get(srv.URL + "/v1/strategies")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/strategies: status %d", r.StatusCode)
	}
	var strats StrategiesResponse
	if err := json.NewDecoder(r.Body).Decode(&strats); err != nil {
		t.Fatal(err)
	}
	if len(strats.Strategies) != len(solve.Strategies()) {
		t.Fatalf("listed %d strategies, want %d", len(strats.Strategies), len(solve.Strategies()))
	}
	for i, info := range strats.Strategies {
		parsed, err := solve.ParseStrategy(info.Name)
		if err != nil {
			t.Errorf("strategy %q does not parse: %v", info.Name, err)
		}
		if parsed != solve.Strategies()[i] {
			t.Errorf("strategy %q parsed to %v, want %v", info.Name, parsed, solve.Strategies()[i])
		}
		if info.Description == "" || strings.Contains(info.Name, " ") {
			t.Errorf("strategy %+v missing description or malformed name", info)
		}
	}
}

// TestExploreRequestValidation: a missing system is rejected before
// the job is ever queued.
func TestExploreRequestValidation(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()
	if _, err := s.SubmitExplore(ExploreRequest{}); err == nil {
		t.Fatal("empty explore request accepted")
	}
}
