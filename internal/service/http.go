package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// NewHandler exposes a Service over HTTP:
//
//	POST   /v1/synthesize       submit an async job     -> 202 SubmitResponse
//	POST   /v1/explore          submit a DSE job        -> 202 SubmitResponse
//	GET    /v1/jobs/{id}        poll status/result      -> 200 JobStatus
//	GET    /v1/jobs/{id}/events SSE progress stream     -> progress*, done
//	GET    /v1/jobs/{id}/trace  per-job span tree       -> 200 obs.TraceSnapshot
//	DELETE /v1/jobs/{id}        cancel (keeps best-so-far)
//	POST   /v1/analyze          synchronous batch       -> 200 AnalysisResponse
//	GET    /v1/strategies       synthesis strategy list -> 200 StrategiesResponse
//	GET    /healthz             liveness + Stats
//	GET    /metrics             Prometheus text exposition
//
// Request and response bodies are the wire types of this package;
// errors come back as {"error": "..."} with a matching status code
// (400 invalid request, 404 unknown job, 429 queue full, 503 draining).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", handleSubmit(s.Submit))
	mux.HandleFunc("POST /v1/explore", handleSubmit(s.SubmitExplore))
	mux.HandleFunc("GET /v1/strategies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ListStrategies())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		st, err := s.Status(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		s.serveEvents(w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		tr, err := s.Trace(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, tr)
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		var req AnalysisRequest
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, decodeStatus(err), err)
			return
		}
		resp, err := s.Analyze(r.Context(), req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// A service without a registry serves an empty (still valid)
		// exposition rather than a 404, so scrapers need no
		// configuration knowledge.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.obsReg.WritePrometheus(w)
	})
	return mux
}

// handleSubmit is the shared submit flow of the asynchronous job
// endpoints: strict decode, enqueue, error-to-status mapping, Location
// header, 202 with the SubmitResponse. Both job kinds route through it
// so the flow cannot drift between them.
func handleSubmit[T any](submit func(T) (*SubmitResponse, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req T
		if err := decodeJSON(w, r, &req); err != nil {
			writeError(w, decodeStatus(err), err)
			return
		}
		sub, err := submit(req)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		w.Header().Set("Location", sub.StatusURL)
		writeJSON(w, http.StatusAccepted, sub)
	}
}

// serveEvents streams a job's progress as Server-Sent Events: one
// "progress" event per ProgressEvent (data = its JSON), then a single
// terminal "done" event whose data is the final JobStatus.
func (s *Service) serveEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, unsubscribe, err := s.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer unsubscribe()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("service: streaming unsupported"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Terminal: emit the final status so pure-SSE clients
				// need no extra poll.
				if st, err := s.Status(id); err == nil {
					writeSSE(w, "done", st)
					flusher.Flush()
				}
				return
			}
			writeSSE(w, "progress", ev)
			flusher.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// maxRequestBytes bounds POST bodies (64 MiB holds systems far beyond
// the paper's scale) so a single oversized request cannot exhaust the
// server before validation even starts.
const maxRequestBytes = 64 << 20

// decodeJSON parses a request body strictly: the size is capped and
// unknown fields are rejected, so typos in option names fail loudly
// instead of silently selecting defaults.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: decoding request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeStatus distinguishes an oversized body (413) from a malformed
// one (400).
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// submitStatus maps Submit errors onto HTTP statuses.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
