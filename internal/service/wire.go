package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/model"
	"repro/internal/solve"
)

// SynthesisRequest asks the service to synthesize a configuration for
// one system. System uses the same JSON encoding as SaveSystem/mcs-gen,
// so a generated system file can be pasted into the request verbatim.
// The remaining fields mirror the Solver options; zero values select
// the Solver defaults (strategy "sf", seed 1, 300 annealing iterations,
// 1 restart chain).
type SynthesisRequest struct {
	System *model.System `json:"system"`
	// Strategy is the paper's algorithm name: sf, os, or, sas or sar
	// (case-insensitive; empty selects sf, the straightforward
	// baseline).
	Strategy     string `json:"strategy,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	SAIterations int    `json:"saIterations,omitempty"`
	SARestarts   int    `json:"saRestarts,omitempty"`
}

// normalize validates the request, finalizes the embedded system (JSON
// decoding bypasses the model builders) and resolves the strategy and
// cache fingerprint.
func (r *SynthesisRequest) normalize() (solve.Strategy, string, error) {
	if r.System == nil || r.System.Application == nil || r.System.Architecture == nil {
		return 0, "", fmt.Errorf("service: request must carry a system with both application and architecture")
	}
	strat := solve.Straightforward
	if r.Strategy != "" {
		var err error
		if strat, err = solve.ParseStrategy(r.Strategy); err != nil {
			return 0, "", err
		}
	}
	if err := r.System.Application.Finalize(r.System.Architecture); err != nil {
		return 0, "", err
	}
	fp, err := r.System.Fingerprint()
	if err != nil {
		return 0, "", err
	}
	return strat, fp, nil
}

// key derives the persistent result cache key of a normalized request:
// the system fingerprint plus a digest of every option that affects the
// result. Two submissions share a key exactly when synthesis is
// guaranteed to produce byte-identical results for them.
func (r *SynthesisRequest) key(strat solve.Strategy, fp string) string {
	return requestKey(KindSynthesize, fp, struct {
		Strategy     string
		Seed         int64
		SAIterations int
		SARestarts   int
	}{strat.String(), r.Seed, r.SAIterations, r.SARestarts})
}

// solverOptions maps the request onto the session API's functional
// options; solve.New normalizes the zero values.
func (r *SynthesisRequest) solverOptions(strat solve.Strategy, workers int) []solve.Option {
	return []solve.Option{
		solve.WithStrategy(strat),
		solve.WithSeed(r.Seed),
		solve.WithSAIterations(r.SAIterations),
		solve.WithSARestarts(r.SARestarts),
		solve.WithWorkers(workers),
	}
}

// ExploreRequest asks the service for an asynchronous multi-objective
// design-space exploration (the dse job kind): instead of a single
// configuration the job returns a Pareto front over (degree of
// schedulability, total buffer need, reserved TTP bus bandwidth).
// System uses the SaveSystem JSON encoding; zero option values select
// the solve.DSEOptions defaults (population 16, 12 generations, warm
// start enabled, seed 1).
type ExploreRequest struct {
	System *model.System `json:"system"`
	// Seed drives the exploration randomness (the front is identical
	// for every worker count under a fixed seed).
	Seed int64 `json:"seed,omitempty"`
	// Population and Generations bound the NSGA-II loop.
	Population  int `json:"population,omitempty"`
	Generations int `json:"generations,omitempty"`
	// MoveBudget is the §5.1 moves sampled per mutation; MaxMutations
	// caps the moves stacked per offspring; ArchiveCap bounds the
	// non-dominated archive.
	MoveBudget   int `json:"moveBudget,omitempty"`
	MaxMutations int `json:"maxMutations,omitempty"`
	ArchiveCap   int `json:"archiveCap,omitempty"`
	// NoWarmStart skips the OS/OR warm start (by default the front
	// weakly dominates the single-objective results).
	NoWarmStart bool `json:"noWarmStart,omitempty"`
}

// normalize validates the request, finalizes the embedded system and
// resolves the cache fingerprint.
func (r *ExploreRequest) normalize() (string, error) {
	if r.System == nil || r.System.Application == nil || r.System.Architecture == nil {
		return "", fmt.Errorf("service: request must carry a system with both application and architecture")
	}
	if err := r.System.Application.Finalize(r.System.Architecture); err != nil {
		return "", err
	}
	return r.System.Fingerprint()
}

// key derives the persistent result cache key of a normalized
// exploration request (see SynthesisRequest.key).
func (r *ExploreRequest) key(fp string) string {
	return requestKey(KindExplore, fp, struct {
		Seed         int64
		Population   int
		Generations  int
		MoveBudget   int
		MaxMutations int
		ArchiveCap   int
		NoWarmStart  bool
	}{r.Seed, r.Population, r.Generations, r.MoveBudget, r.MaxMutations, r.ArchiveCap, r.NoWarmStart})
}

// requestKey composes a result cache key: the full system fingerprint
// (already a hex SHA-256) plus the first 8 bytes of a SHA-256 over the
// job kind and the result-affecting options. The key doubles as the
// result file name, so it sticks to fingerprint-alphabet characters.
func requestKey(kind JobKind, fp string, opts any) string {
	raw, err := json.Marshal(opts)
	if err != nil {
		// Options are plain value structs; Marshal cannot fail on them.
		panic(fmt.Sprintf("service: encoding request key options: %v", err))
	}
	sum := sha256.Sum256(append(append([]byte(kind), 0), raw...))
	return fp + "." + hex.EncodeToString(sum[:8])
}

// dseOptions maps the request onto the per-call exploration options;
// solve.Explore defaults the zero values.
func (r *ExploreRequest) dseOptions() []solve.DSEOption {
	opts := []solve.DSEOption{
		solve.WithExploreSeed(r.Seed),
		solve.WithPopulation(r.Population),
		solve.WithGenerations(r.Generations),
		solve.WithMoveBudget(r.MoveBudget),
		solve.WithMaxMutations(r.MaxMutations),
		solve.WithArchiveCap(r.ArchiveCap),
	}
	if r.NoWarmStart {
		opts = append(opts, solve.WithWarmStart(false))
	}
	return opts
}

// AnalysisRequest asks for a synchronous batch schedulability analysis:
// every configuration (core.Config.Save encoding) is analyzed against
// the system; an empty batch analyzes the system's default (SF)
// configuration.
type AnalysisRequest struct {
	System  *model.System     `json:"system"`
	Configs []json.RawMessage `json:"configs,omitempty"`
}

// AnalysisOutcome is the per-configuration result of an analysis batch:
// exactly one of Analysis and Error is set.
type AnalysisOutcome struct {
	Analysis *AnalysisSummary `json:"analysis,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// AnalysisResponse answers an AnalysisRequest, in request order.
type AnalysisResponse struct {
	Fingerprint string            `json:"fingerprint"`
	CacheHit    bool              `json:"cacheHit"`
	Results     []AnalysisOutcome `json:"results"`
}

// AnalysisSummary is the wire form of a schedulability analysis: the
// verdict, the optimization objectives and the per-graph worst-case
// responses (full per-process detail stays in-process; see
// core.Analysis).
type AnalysisSummary struct {
	Schedulable bool `json:"schedulable"`
	// Delta is the degree of schedulability delta_Gamma (§5 of the
	// paper): positive = sum of deadline overruns, negative = aggregate
	// slack.
	Delta model.Time `json:"delta"`
	// BuffersTotal is s_total, the total buffer need the OR strategy
	// minimizes; OutCAN/OutTTP break out the shared gateway queues.
	BuffersTotal   int          `json:"buffersTotal"`
	OutCAN         int          `json:"outCAN"`
	OutTTP         int          `json:"outTTP"`
	GraphResponses []model.Time `json:"graphResponses"`
	Iterations     int          `json:"iterations"`
	Converged      bool         `json:"converged"`
}

// summarize projects an analysis onto its wire form.
func summarize(a *core.Analysis) *AnalysisSummary {
	if a == nil {
		return nil
	}
	return &AnalysisSummary{
		Schedulable:    a.Schedulable,
		Delta:          a.Delta,
		BuffersTotal:   a.Buffers.Total,
		OutCAN:         a.Buffers.OutCAN,
		OutTTP:         a.Buffers.OutTTP,
		GraphResponses: append([]model.Time(nil), a.GraphResp...),
		Iterations:     a.Iterations,
		Converged:      a.Converged,
	}
}

// JobKind distinguishes the asynchronous job kinds sharing the queue.
type JobKind string

const (
	// KindSynthesize: single-configuration synthesis (SynthesisRequest).
	KindSynthesize JobKind = "synthesize"
	// KindExplore: multi-objective design-space exploration
	// (ExploreRequest); the result carries a Pareto front.
	KindExplore JobKind = "explore"
)

// JobState is the lifecycle of an asynchronous synthesis job.
type JobState string

const (
	// StateQueued: accepted, waiting for a job runner.
	StateQueued JobState = "queued"
	// StateRunning: a runner is synthesizing.
	StateRunning JobState = "running"
	// StateDone: finished; Result carries the configuration.
	StateDone JobState = "done"
	// StateCanceled: canceled (client or drain); Result carries the
	// best-so-far configuration when one was found.
	StateCanceled JobState = "canceled"
	// StateFailed: the synthesis errored before producing anything.
	StateFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateCanceled || s == StateFailed
}

// JobStatus is the polling view of a job.
type JobStatus struct {
	ID          string   `json:"id"`
	Kind        JobKind  `json:"kind"`
	State       JobState `json:"state"`
	Fingerprint string   `json:"fingerprint"`
	// Strategy is the synthesis strategy of synthesize jobs ("DSE" for
	// explore jobs).
	Strategy string `json:"strategy"`
	// Progress is the most recent progress event (nil before the first).
	Progress *ProgressEvent `json:"progress,omitempty"`
	// Result is set once State is terminal (absent for failed jobs and
	// for cancellations that found nothing).
	Result *JobResult `json:"result,omitempty"`
	// Error is set when the job failed or was canceled.
	Error string `json:"error,omitempty"`
}

// JobResult is the outcome of an asynchronous job. For synthesize jobs
// Config/Analysis carry the single configuration (the core.Config.Save
// encoding, so it feeds back into mcs-synth -config and LoadConfig
// unchanged); for explore jobs Front/Hypervolume carry the Pareto
// front instead.
type JobResult struct {
	Config      json.RawMessage  `json:"config,omitempty"`
	Analysis    *AnalysisSummary `json:"analysis,omitempty"`
	Evaluations int              `json:"evaluations"`
	// Front is the mutually non-dominated point set of an explore job,
	// sorted by (delta, buffers, bandwidth); Hypervolume is its
	// indicator against the front's own nadir reference.
	Front       []FrontPoint `json:"front,omitempty"`
	Hypervolume float64      `json:"hypervolume,omitempty"`
	// CacheHit reports that the job ran on a cached Solver session; the
	// result is bit-identical to a cold run either way.
	CacheHit bool `json:"cacheHit"`
	// PersistentHit reports that the result was served from the durable
	// result store — byte-identical to the cold run that produced it —
	// instead of being recomputed.
	PersistentHit bool `json:"persistentHit,omitempty"`
	// Partial marks a best-so-far result (configuration or front)
	// returned by a canceled or drained job.
	Partial bool `json:"partial,omitempty"`
}

// FrontPoint is the wire form of one Pareto-front point: the objective
// vector (all minimized), the verdict, and the full configuration in
// the core.Config.Save encoding.
type FrontPoint struct {
	Delta model.Time `json:"delta"`
	// Buffers is s_total; Bandwidth is the reserved TTP transmission
	// time per TDMA round (slot-length sum).
	Buffers     int             `json:"buffers"`
	Bandwidth   model.Time      `json:"bandwidth"`
	Schedulable bool            `json:"schedulable"`
	Config      json.RawMessage `json:"config,omitempty"`
}

// ProgressEvent is the wire form of a Solver progress event, tagged
// with a per-job sequence number so SSE consumers can detect gaps
// (slow subscribers are dropped-to, never blocked on).
type ProgressEvent struct {
	Seq         int    `json:"seq"`
	Strategy    string `json:"strategy"`
	Phase       string `json:"phase"`
	Chain       int    `json:"chain,omitempty"`
	Step        int    `json:"step"`
	Evaluations int    `json:"evaluations"`
	BestDelta   int64  `json:"bestDelta"`
	BestBuffers int    `json:"bestBuffers"`
	Schedulable bool   `json:"schedulable"`
	// FrontSize and Hypervolume describe the archive of an explore
	// job's "dse" phase (absent elsewhere).
	FrontSize   int     `json:"frontSize,omitempty"`
	Hypervolume float64 `json:"hypervolume,omitempty"`
}

// SubmitResponse acknowledges an accepted asynchronous job.
type SubmitResponse struct {
	ID          string  `json:"id"`
	Kind        JobKind `json:"kind"`
	Fingerprint string  `json:"fingerprint"`
	StatusURL   string  `json:"statusUrl"`
	EventsURL   string  `json:"eventsUrl"`
}

// StrategyInfo describes one synthesis strategy for clients that would
// otherwise hardcode the names.
type StrategyInfo struct {
	// Name parses back through ParseStrategy (case-insensitive).
	Name        string `json:"name"`
	Description string `json:"description"`
}

// StrategiesResponse answers GET /v1/strategies: every strategy a
// SynthesisRequest accepts, in declaration order.
type StrategiesResponse struct {
	Strategies []StrategyInfo `json:"strategies"`
}

// ListStrategies builds the strategies listing from solve.Strategies,
// so the wire surface can never drift from the Solver's.
func ListStrategies() StrategiesResponse {
	var out StrategiesResponse
	for _, s := range solve.Strategies() {
		out.Strategies = append(out.Strategies, StrategyInfo{
			Name:        strings.ToLower(s.String()),
			Description: s.Description(),
		})
	}
	return out
}

// summarizeFront projects a dse front onto its wire form, including
// the per-point configuration encodings.
func summarizeFront(front []dse.Point) ([]FrontPoint, error) {
	out := make([]FrontPoint, 0, len(front))
	for _, p := range front {
		cfgJSON, err := encodeConfig(p.Config)
		if err != nil {
			return nil, err
		}
		o := p.Objectives()
		out = append(out, FrontPoint{
			Delta:       o.Delta,
			Buffers:     o.Buffers,
			Bandwidth:   o.Bandwidth,
			Schedulable: p.Schedulable(),
			Config:      cfgJSON,
		})
	}
	return out, nil
}

// encodeConfig renders a configuration in the stable Save encoding.
func encodeConfig(cfg *core.Config) (json.RawMessage, error) {
	if cfg == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := cfg.Save(&buf); err != nil {
		return nil, err
	}
	return json.RawMessage(buf.Bytes()), nil
}
