package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
)

// scrape fetches one URL and returns the body (empty on non-200).
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestMetricsEndpointUnderLoad runs jobs while goroutines hammer
// GET /metrics and GET /healthz — the race-detector target for the
// whole observability plane — then asserts the final exposition covers
// every subsystem the issue names: jobs, queue, solver caches, engine
// pool, SSE fan-out.
func TestMetricsEndpointUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Workers: 2, JobWorkers: 2, QueueDepth: 16, Metrics: reg, Tracing: true})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		//mcs:allow poolonly test scrapers racing the job runners to give the race detector a target
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					// Errors are tolerable here (the server may be mid
					// shutdown); the point is concurrent registry reads.
					for _, path := range []string{"/metrics", "/healthz"} {
						if resp, err := http.Get(srv.URL + path); err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				}
			}
		}()
	}

	var ids []string
	for i := 0; i < 4; i++ {
		resp, err := s.Submit(SynthesisRequest{System: testSystem(t, int64(i%2)+1), Strategy: "or"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.ID)
	}
	for _, id := range ids {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
		}
	}
	close(stop)
	wg.Wait()

	out := scrape(t, srv.URL+"/metrics")
	for _, want := range []string{
		`mcs_jobs_total{kind="synthesize",state="done"} 4`,
		"# TYPE mcs_job_duration_seconds histogram",
		"mcs_job_duration_seconds_bucket",
		"mcs_job_queue_wait_seconds_count",
		"mcs_solve_phase_seconds_bucket",
		"mcs_queue_capacity 16",
		"mcs_solver_cache_hits_total 2",   // 2 distinct systems across 4 jobs
		"mcs_solver_cache_misses_total 2", //
		"mcs_solver_cache_size 2",
		"mcs_delta_config_hits_total",
		`mcs_memo_hits_total{cache="rta"}`,
		"mcs_engine_batches_total",
		"mcs_engine_tasks_total",
		"mcs_engine_batch_size_bucket",
		"mcs_sse_subscribers 0",
		"mcs_store_appends_total 0", // no store configured
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(out, `mcs_jobs{state="done"} 4`) {
		t.Errorf("job state gauge missing:\n%s", out)
	}
}

// TestTraceEndpoint drives one job on a deterministic clock and checks
// the served span tree: queue → solver (with its source) → run (with
// phase children) → persist, all closed, with a monotonic record
// stream. A second, identical submission must show the persistent-store
// source in its solver span.
func TestTraceEndpoint(t *testing.T) {
	clk := newTestClock()
	st := openTestStore(t, t.TempDir(), clk, store.Options{})
	s := New(Options{Workers: 1, JobWorkers: 1, Store: st, Clock: clk, Tracing: true})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	sys := testSystem(t, 1)
	resp, err := s.Submit(SynthesisRequest{System: sys, Strategy: "or"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, resp.ID)

	snap, err := s.Trace(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Root.Name != "job" || snap.Root.Attrs["id"] != resp.ID || snap.Root.Attrs["kind"] != "synthesize" {
		t.Fatalf("root span = %+v", snap.Root)
	}
	if snap.Root.EndUnixNano == 0 {
		t.Fatalf("finished job's trace not closed")
	}
	spans := map[string]SpanSnapshotAlias{}
	for _, c := range snap.Root.Children {
		spans[c.Name] = c
	}
	for _, name := range []string{"queue", "solver", "run", "persist"} {
		sp, ok := spans[name]
		if !ok {
			t.Fatalf("span %q missing (children: %+v)", name, snap.Root.Children)
		}
		if sp.EndUnixNano == 0 {
			t.Errorf("span %q not closed", name)
		}
	}
	if src := spans["solver"].Attrs["source"]; src != "build" {
		t.Errorf("first run solver source = %q, want build", src)
	}
	phases := 0
	for _, c := range spans["run"].Children {
		if strings.HasPrefix(c.Name, "phase:") {
			phases++
		}
	}
	if phases == 0 {
		t.Errorf("run span has no phase children: %+v", spans["run"].Children)
	}
	for i, rec := range snap.Records {
		if rec.Seq != i+1 {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}

	// The HTTP view serves the same tree.
	body := scrape(t, srv.URL+"/v1/jobs/"+resp.ID+"/trace")
	if !strings.Contains(body, `"name": "queue"`) || !strings.Contains(body, resp.ID) {
		t.Errorf("trace endpoint body missing spans:\n%s", body)
	}

	// An identical resubmission is served from the persistent result
	// store, and its trace says so.
	resp2, err := s.Submit(SynthesisRequest{System: testSystem(t, 1), Strategy: "or"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, resp2.ID)
	snap2, err := s.Trace(resp2.ID)
	if err != nil {
		t.Fatal(err)
	}
	var solverSrc string
	for _, c := range snap2.Root.Children {
		if c.Name == "solver" {
			solverSrc = c.Attrs["source"]
		}
	}
	if solverSrc != "persistent" {
		t.Errorf("resubmission solver source = %q, want persistent", solverSrc)
	}
}

// SpanSnapshotAlias keeps the test readable without importing obs at
// every use site.
type SpanSnapshotAlias = obs.SpanSnapshot

// TestTraceDisabled: without Tracing the endpoint 404s with ErrNoTrace
// and jobs carry no trace state.
func TestTraceDisabled(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()
	resp, err := s.Submit(SynthesisRequest{System: testSystem(t, 1)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, resp.ID)
	if _, err := s.Trace(resp.ID); err != ErrNoTrace {
		t.Fatalf("Trace with tracing off = %v, want ErrNoTrace", err)
	}
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	r, err := http.Get(srv.URL + "/v1/jobs/" + resp.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint status = %d, want 404", r.StatusCode)
	}
}

// TestMetricsDisabledService: a service with no registry serves an
// empty (valid) exposition and runs jobs normally — the no-op plane.
func TestMetricsDisabledService(t *testing.T) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	resp, err := s.Submit(SynthesisRequest{System: testSystem(t, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, resp.ID); st.State != StateDone {
		t.Fatalf("state %s", st.State)
	}
	if out := scrape(t, srv.URL+"/metrics"); out != "" {
		t.Errorf("disabled metrics endpoint served %q, want empty", out)
	}
}

// TestCanceledQueuedJobMetrics: the queued-cancel fast path also lands
// in the terminal counters and closes the trace.
func TestCanceledQueuedJobMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	// One runner, kept busy by a long annealing job so the second job
	// reliably stays queued until it is canceled.
	s := New(Options{Workers: 1, JobWorkers: 1, QueueDepth: 8, Metrics: reg, Tracing: true})
	defer s.Close() // cancels the long first job
	_, err := s.Submit(SynthesisRequest{System: testSystem(t, 1), Strategy: "sas", SAIterations: 200000})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(SynthesisRequest{System: testSystem(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(second.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, second.ID)
	if got := reg.Counter("mcs_jobs_total", "", obs.L("kind", "synthesize"), obs.L("state", "canceled")).Value(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
	snap, err := s.Trace(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Root.EndUnixNano == 0 {
		t.Errorf("canceled queued job's trace not closed")
	}
}
