package service

import (
	"container/list"
	"sync"

	"repro/internal/delta"
	"repro/internal/solve"
)

// solverCache is an LRU of base Solver sessions keyed by the canonical
// system fingerprint alone: every option variant (strategy, seed,
// budgets) of one system derives its per-request session from the same
// cached base via Solver.Derive, so the seed-independent derived state
// (templates, slot-length candidates) is shared across a whole sweep.
// A hit changes nothing about the synthesized configuration — only how
// fast the job starts producing evaluations.
type solverCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses int
}

type cacheEntry struct {
	key    string
	solver *solve.Solver
}

func newSolverCache(capacity int) *solverCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &solverCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// getOrCreate returns the cached Solver for key, building and inserting
// one with build on a miss. The second result reports a hit. Building
// happens under the cache lock: solve.New only normalizes options (the
// expensive derivations are lazy), so the critical section stays short
// and concurrent requests for the same key can never race two sessions.
func (c *solverCache) getOrCreate(key string, build func() (*solve.Solver, error)) (*solve.Solver, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).solver, true, nil
	}
	s, err := build()
	if err != nil {
		return nil, false, err
	}
	c.misses++
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, solver: s})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	return s, false, nil
}

// stats returns the hit/miss counters and current size.
func (c *solverCache) stats() (hits, misses, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// deltaStats aggregates the incremental-evaluation counters across
// every cached base session (derived sessions share their base's
// caches, so this covers all live solver state). Evicted sessions take
// their counts with them: the aggregate tracks the cache population,
// which is what a hit-rate dashboard wants.
func (c *solverCache) deltaStats() delta.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var agg delta.Stats
	for el := c.ll.Front(); el != nil; el = el.Next() {
		st := el.Value.(*cacheEntry).solver.DeltaStats()
		agg.ConfigHits += st.ConfigHits
		agg.ConfigMisses += st.ConfigMisses
		agg.Memo.ScheduleHits += st.Memo.ScheduleHits
		agg.Memo.ScheduleMisses += st.Memo.ScheduleMisses
		agg.Memo.RTAHits += st.Memo.RTAHits
		agg.Memo.RTAMisses += st.Memo.RTAMisses
		agg.Memo.RTAWarmStarts += st.Memo.RTAWarmStarts
		agg.Memo.QueueHits += st.Memo.QueueHits
		agg.Memo.QueueMisses += st.Memo.QueueMisses
	}
	return agg
}
