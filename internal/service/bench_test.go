package service

import (
	"context"
	"testing"
)

// benchRequest builds one deterministic synthesis request.
func benchRequest(b *testing.B) SynthesisRequest {
	return SynthesisRequest{System: testSystem(b, 2), Strategy: "or", Seed: 7}
}

func runJob(b *testing.B, s *Service, req SynthesisRequest) {
	b.Helper()
	resp, err := s.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	done, err := s.Done(resp.ID)
	if err != nil {
		b.Fatal(err)
	}
	<-done
	st, err := s.Status(resp.ID)
	if err != nil {
		b.Fatal(err)
	}
	if st.State != StateDone {
		b.Fatalf("job state %s (error %q)", st.State, st.Error)
	}
}

// BenchmarkServiceSynthesizeCold measures end-to-end job latency
// against a cold cache: every iteration runs on a fresh Service.
func BenchmarkServiceSynthesizeCold(b *testing.B) {
	req := benchRequest(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Options{Workers: 1, JobWorkers: 1})
		runJob(b, s, req)
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkServiceSynthesizeCached measures the same job against a warm
// Solver cache; benchjson.py pairs it with the Cold variant into the
// cold-vs-cached comparison of BENCH_service.json.
func BenchmarkServiceSynthesizeCached(b *testing.B) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()
	runJob(b, s, benchRequest(b)) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runJob(b, s, benchRequest(b))
	}
}

// BenchmarkServiceAnalyzeRequests measures synchronous analyze
// throughput on a warm session; benchjson.py converts ns/op into
// requests/sec in the artifact.
func BenchmarkServiceAnalyzeRequests(b *testing.B) {
	s := New(Options{Workers: 1, JobWorkers: 1})
	defer s.Close()
	ctx := context.Background()
	req := AnalysisRequest{System: testSystem(b, 2)}
	if _, err := s.Analyze(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Analyze(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
