package service

import (
	"errors"
	"sync"
	"time"

	"repro/internal/delta"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/store"
)

// ErrNoTrace reports a job submitted while tracing was disabled, or one
// replayed from the journal (the trace died with the process that
// recorded it).
var ErrNoTrace = errors.New("service: no trace recorded for this job")

// Trace returns the span tree recorded for a job: queue wait, solver
// acquisition (and where the session came from), the run phases
// surfaced by the Solver's progress stream, and result persistence.
// Snapshots are safe at any time; a finished job's tree is fully
// closed.
func (s *Service) Trace(id string) (*obs.TraceSnapshot, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	tr := j.trace
	j.mu.Unlock()
	if tr == nil {
		return nil, ErrNoTrace
	}
	return tr.Snapshot(), nil
}

// registerMetrics wires the service onto the metrics registry. Two
// instrument styles: scrape-time funcs adapt counters the service
// already maintains (cache stats, store stats, queue depth) without
// double bookkeeping; event-driven instruments (job totals, latency
// histograms, SSE drops) are fed at the transition sites. All timing
// flows from the injected clock, so the deterministic layers stay
// wallclock-free and tests drive latency histograms with fake clocks.
func (s *Service) registerMetrics() {
	r := s.obsReg
	if r == nil {
		return
	}

	// Queue and job population.
	r.GaugeFunc("mcs_queue_depth", "Jobs accepted but not yet claimed by a runner.",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("mcs_queue_capacity", "Bounded job queue capacity.",
		func() float64 { return float64(cap(s.queue)) })
	for _, state := range []JobState{StateQueued, StateRunning, StateDone, StateCanceled, StateFailed} {
		r.GaugeFunc("mcs_jobs", "Tracked jobs by current state.",
			func() float64 { return float64(s.countJobs(state)) },
			obs.L("state", string(state)))
	}

	// Solver LRU cache.
	r.CounterFunc("mcs_solver_cache_hits_total", "Solver sessions served from the LRU cache.",
		func() float64 { h, _, _ := s.cache.stats(); return float64(h) })
	r.CounterFunc("mcs_solver_cache_misses_total", "Solver sessions built cold.",
		func() float64 { _, m, _ := s.cache.stats(); return float64(m) })
	r.GaugeFunc("mcs_solver_cache_size", "Base Solver sessions currently cached.",
		func() float64 { _, _, n := s.cache.stats(); return float64(n) })

	// Incremental-evaluation caches, aggregated across cached sessions.
	deltaStat := func(sel func(delta.Stats) int64) func() float64 {
		return func() float64 { return float64(sel(s.cache.deltaStats())) }
	}
	r.CounterFunc("mcs_delta_config_hits_total", "Full-configuration memo hits across cached sessions.",
		deltaStat(func(d delta.Stats) int64 { return d.ConfigHits }))
	r.CounterFunc("mcs_delta_config_misses_total", "Full-configuration memo misses across cached sessions.",
		deltaStat(func(d delta.Stats) int64 { return d.ConfigMisses }))
	for _, stage := range []struct {
		name string
		hit  func(delta.Stats) int64
		miss func(delta.Stats) int64
	}{
		{"schedule", func(d delta.Stats) int64 { return d.Memo.ScheduleHits }, func(d delta.Stats) int64 { return d.Memo.ScheduleMisses }},
		{"rta", func(d delta.Stats) int64 { return d.Memo.RTAHits }, func(d delta.Stats) int64 { return d.Memo.RTAMisses }},
		{"queue", func(d delta.Stats) int64 { return d.Memo.QueueHits }, func(d delta.Stats) int64 { return d.Memo.QueueMisses }},
	} {
		r.CounterFunc("mcs_memo_hits_total", "Stage-cache hits across cached sessions.",
			deltaStat(stage.hit), obs.L("cache", stage.name))
		r.CounterFunc("mcs_memo_misses_total", "Stage-cache misses across cached sessions.",
			deltaStat(stage.miss), obs.L("cache", stage.name))
	}
	r.CounterFunc("mcs_memo_rta_warm_starts_total", "RTA fixpoints seeded from a shape-matched prior result.",
		deltaStat(func(d delta.Stats) int64 { return d.Memo.RTAWarmStarts }))

	// Durability layer (zero-valued while running purely in memory).
	storeStat := func(sel func(store.Stats) float64) func() float64 {
		return func() float64 {
			st := s.storeRef()
			if st == nil {
				return 0
			}
			return sel(st.Stats())
		}
	}
	r.CounterFunc("mcs_store_appends_total", "Journal records appended since open.",
		storeStat(func(x store.Stats) float64 { return float64(x.Appends) }))
	r.CounterFunc("mcs_store_compactions_total", "Journal rewrites since open.",
		storeStat(func(x store.Stats) float64 { return float64(x.Compactions) }))
	r.CounterFunc("mcs_store_torn_tails_total", "Torn journal tails truncated at replay.",
		storeStat(func(x store.Stats) float64 { return float64(x.TornTails) }))
	r.CounterFunc("mcs_store_results_stored_total", "Results persisted to the durable store.",
		storeStat(func(x store.Stats) float64 { return float64(x.ResultsStored) }))
	r.CounterFunc("mcs_store_results_expired_total", "Persisted results evicted by TTL.",
		storeStat(func(x store.Stats) float64 { return float64(x.ResultsExpired) }))
	r.CounterFunc("mcs_solver_persistent_hits_total", "Jobs served byte-identical from the persistent result store.",
		storeStat(func(x store.Stats) float64 { return float64(x.PersistentHits) }))
	r.CounterFunc("mcs_solver_persistent_misses_total", "Persistent result store lookups that missed.",
		storeStat(func(x store.Stats) float64 { return float64(x.PersistentMisses) }))
	r.GaugeFunc("mcs_store_segments", "Journal segments on disk.",
		storeStat(func(x store.Stats) float64 { return float64(x.Segments) }))
	r.GaugeFunc("mcs_store_journal_bytes", "Journal footprint in bytes.",
		storeStat(func(x store.Stats) float64 { return float64(x.JournalBytes) }))
	r.CounterFunc("mcs_store_errors_total", "Non-fatal journal/result-store write failures.",
		func() float64 { return float64(s.storeErrs.Load()) })

	// Progress fan-out.
	r.GaugeFunc("mcs_sse_subscribers", "Live progress subscribers across all jobs.",
		func() float64 { return float64(s.subscriberCount()) })
	s.sseDropped = r.Counter("mcs_sse_dropped_total",
		"Progress events dropped on slow subscriber channels (the seq field exposes the gap).")

	// Evaluation engine. The hook is process-wide (the engine has no
	// per-call handle to thread a registry through), so the last service
	// to register wins — in the one-service-per-process daemon that is
	// exactly the running service.
	r.GaugeFunc("mcs_engine_pool_workers", "Configured per-solver evaluation pool bound.",
		func() float64 { return float64(s.opts.Workers) })
	engine.SetMetrics(&engine.Metrics{
		Batches:   r.Counter("mcs_engine_batches_total", "Evaluation batches executed."),
		Tasks:     r.Counter("mcs_engine_tasks_total", "Individual evaluation tasks executed."),
		BatchSize: r.Histogram("mcs_engine_batch_size", "Items per evaluation batch.", obs.SizeBuckets),
		Workers:   r.Histogram("mcs_engine_batch_workers", "Effective workers per batch after clamping to the item count.", obs.SizeBuckets),
	})
}

// countJobs counts tracked jobs currently in the given state.
func (s *Service) countJobs(state JobState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == state {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// subscriberCount counts live progress subscribers across all jobs.
func (s *Service) subscriberCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		n += len(j.subs)
		j.mu.Unlock()
	}
	return n
}

// startTrace opens the job's trace with the queue span; called from
// enqueue under s.mu once the ID exists. No-op unless tracing is on.
func (s *Service) startTrace(j *job) {
	if !s.tracing {
		return
	}
	j.trace = obs.NewTrace(s.obsClock, "job")
	root := j.trace.Root()
	root.SetAttr("id", j.id)
	root.SetAttr("kind", string(j.kind))
	root.SetAttr("fingerprint", j.fingerprint)
	root.SetAttr("strategy", j.strategyName)
	j.queueSpan = root.Start("queue")
}

// jobStarted marks the queued→running transition on the observability
// planes: the queue span closes, the queue-wait histogram observes, and
// the start is logged. Returns the run-phase parent span (nil when
// tracing is off — the nil span is a no-op).
func (s *Service) jobStarted(j *job) {
	j.queueSpan.End()
	if !j.enqueuedAt.IsZero() {
		s.obsHist("mcs_job_queue_wait_seconds", "Time from acceptance to a runner claiming the job.",
			obs.L("kind", string(j.kind))).Observe(j.startedAt.Sub(j.enqueuedAt).Seconds())
	}
	s.log.Debug("job started", "job", j.id, "kind", string(j.kind), "fingerprint", j.fingerprint)
}

// jobFinished marks a terminal transition: the trace closes (ending any
// still-open spans), the per-kind job counters and latency histogram
// record, and the outcome is logged with the job's identity attributes.
func (s *Service) jobFinished(j *job, state JobState, errMsg string) {
	j.trace.End()
	var dur time.Duration
	if !j.startedAt.IsZero() {
		dur = s.clock.Now().Sub(j.startedAt)
	}
	if r := s.obsReg; r != nil {
		r.Counter("mcs_jobs_total", "Terminal job transitions by kind and state.",
			obs.L("kind", string(j.kind)), obs.L("state", string(state))).Inc()
		if !j.startedAt.IsZero() {
			s.obsHist("mcs_job_duration_seconds", "Running time of finished jobs.",
				obs.L("kind", string(j.kind))).Observe(dur.Seconds())
		}
	}
	log := s.log.Info
	if state == StateFailed {
		log = s.log.Warn
	}
	log("job finished",
		"job", j.id, "kind", string(j.kind), "fingerprint", j.fingerprint,
		"state", string(state), "duration", dur, "error", errMsg)
}

// obsHist is shorthand for a histogram lookup on the service registry
// (nil instrument — a no-op — when metrics are off).
func (s *Service) obsHist(name, help string, labels ...obs.Label) *obs.Histogram {
	return s.obsReg.Histogram(name, help, obs.DurationBuckets, labels...)
}

// phaseTracker sits between the Solver's progress stream and the job's
// subscriber fan-out: it forwards every event unchanged and, on phase
// transitions, closes the previous phase span, opens the next one under
// the run span, and feeds the per-phase duration histogram. All timing
// comes from the injected clock at this boundary — the Solver itself
// stays wallclock-free.
type phaseTracker struct {
	svc  *Service
	job  *job
	span *obs.Span // the run span phases nest under

	mu    sync.Mutex
	name  string
	start time.Time
	cur   *obs.Span
}

// observer returns the solve option attaching the tracker (with plain
// fan-out when neither metrics nor tracing need the phase boundary).
func (t *phaseTracker) observer() solve.Option {
	if t.svc.obsReg == nil && !t.svc.tracing {
		return solve.WithObserver(solve.ObserverFunc(t.job.publish))
	}
	return solve.WithObserver(solve.ObserverFunc(t.observe))
}

func (t *phaseTracker) observe(p solve.Progress) {
	t.mu.Lock()
	if p.Phase != t.name {
		now := t.svc.clock.Now()
		t.closeLocked(now)
		t.name, t.start = p.Phase, now
		t.cur = t.span.Start("phase:" + p.Phase)
	}
	t.mu.Unlock()
	t.job.publish(p)
}

// close ends the final phase once the run returns.
func (t *phaseTracker) close() {
	t.mu.Lock()
	t.closeLocked(t.svc.clock.Now())
	t.mu.Unlock()
}

func (t *phaseTracker) closeLocked(now time.Time) {
	if t.name == "" {
		return
	}
	t.svc.obsHist("mcs_solve_phase_seconds", "Duration of solver run phases, measured at the observer boundary.",
		obs.L("phase", t.name)).Observe(now.Sub(t.start).Seconds())
	t.cur.End()
	t.name = ""
	t.cur = nil
}
