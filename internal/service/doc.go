// Package service is the serving layer of the reproduction: it wraps
// the Solver session API (package solve) in a wire-level
// request/response surface so the paper's synthesis loop can run behind
// a network daemon instead of in-process struct literals.
//
// Three pieces compose:
//
//   - Wire messages (wire.go): SynthesisRequest, AnalysisRequest,
//     JobStatus, JobResult and ProgressEvent are plain JSON structs
//     whose payloads reuse the repository's existing stable encodings —
//     systems travel in the model.System JSON written by SaveSystem,
//     configurations in the core.Config.Save encoding.
//
//   - A Solver cache (cache.go): Solvers are cached in an LRU keyed by
//     the canonical System.Fingerprint content hash plus the normalized
//     solver options. Because a Solver caches only seed-independent
//     derived state, a cache hit produces configurations bit-identical
//     to a cold Solver (asserted by tests); the hit merely skips the
//     re-derivation of templates and slot-length candidate sets.
//
//   - A bounded job queue (service.go): Submit enqueues an asynchronous
//     synthesis job (rejecting when the queue is full), runner
//     goroutines execute jobs on cached Solvers with a per-job
//     context, and every job streams Observer progress events to any
//     number of subscribers. Drain stops intake, lets in-flight jobs
//     finish within a grace period, then cancels them so they return
//     their best-so-far configurations — nothing finished is lost.
//
// http.go exposes the whole surface over HTTP (submit/poll/SSE/batch
// analyze); cmd/mcs-serve is the daemon around it and the root facade
// re-exports the types plus NewService for embedding.
package service
