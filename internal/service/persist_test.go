package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// detachStore simulates a crash for tests: the service keeps running,
// but nothing it does from here on reaches the journal — exactly the
// visibility a kill -9 leaves behind. (The real kill -9 round trip is
// exercised by scripts/service_smoke.sh.)
func (s *Service) detachStore() {
	s.mu.Lock()
	s.st = nil
	s.mu.Unlock()
}

// testClock is a deterministic clock shared by a store and a service.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func openTestStore(t *testing.T, dir string, clk store.Clock, opts store.Options) *store.FileStore {
	t.Helper()
	opts.Clock = clk
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// canonicalBytes reduces a result to its store encoding so results
// from different execution paths (cold, Solver-LRU, persistent) can be
// compared byte for byte.
func canonicalBytes(t *testing.T, res *JobResult) []byte {
	t.Helper()
	if res == nil {
		t.Fatal("job finished without a result")
	}
	blob, err := canonicalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestPersistFinishedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	st := openTestStore(t, dir, clk, store.Options{})
	svc := New(Options{Workers: 1, JobWorkers: 1, Store: st, Clock: clk})

	resp, err := svc.Submit(SynthesisRequest{System: testSystem(t, 41), Strategy: "os"})
	if err != nil {
		t.Fatal(err)
	}
	before := waitDone(t, svc, resp.ID)
	if before.State != StateDone {
		t.Fatalf("job finished %s (%s)", before.State, before.Error)
	}
	svc.Close()
	st.Close()

	st2 := openTestStore(t, dir, clk, store.Options{})
	svc2 := New(Options{Workers: 1, JobWorkers: 1, Store: st2, Clock: clk})
	defer svc2.Close()

	after, err := svc2.Status(resp.ID)
	if err != nil {
		t.Fatalf("replayed job not pollable: %v", err)
	}
	if after.State != StateDone {
		t.Fatalf("replayed job state = %s, want done", after.State)
	}
	if after.Result == nil || !after.Result.PersistentHit {
		t.Fatalf("replayed result not marked as a persistent serve: %+v", after.Result)
	}
	if after.Strategy != before.Strategy {
		t.Fatalf("replayed strategy = %q, want %q", after.Strategy, before.Strategy)
	}
	if !bytes.Equal(canonicalBytes(t, after.Result), canonicalBytes(t, before.Result)) {
		t.Fatal("replayed result differs from the result computed before the restart")
	}
	stats := svc2.Stats()
	if stats.Store == nil || stats.Store.ReplayedJobs != 1 || stats.Store.RequeuedJobs != 0 {
		t.Fatalf("replay stats = %+v, want 1 replayed / 0 requeued", stats.Store)
	}
}

func TestPersistUnfinishedJobRerunsAfterRestart(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()

	// Cold baseline: the same request on a purely in-memory service.
	req := SynthesisRequest{System: testSystem(t, 42), Strategy: "os"}
	mem := New(Options{Workers: 1, JobWorkers: 1})
	coldResp, err := mem.Submit(SynthesisRequest{System: testSystem(t, 42), Strategy: "os"})
	if err != nil {
		t.Fatal(err)
	}
	cold := waitDone(t, mem, coldResp.ID)
	mem.Close()

	// Hand-write the journal a crash would leave behind: a submitted
	// and started job with no finish record.
	raw, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, dir, clk, store.Options{})
	const id = "j000007-deadbeef"
	for _, rec := range []store.Record{
		{Op: store.OpSubmit, Job: id, Kind: string(KindSynthesize), Strategy: "OS", Request: raw},
		{Op: store.OpStart, Job: id},
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2 := openTestStore(t, dir, clk, store.Options{})
	svc := New(Options{Workers: 1, JobWorkers: 1, Store: st2, Clock: clk})
	defer svc.Close()

	if stats := svc.Stats(); stats.Store == nil || stats.Store.RequeuedJobs != 1 {
		t.Fatalf("replay stats = %+v, want 1 requeued", stats.Store)
	}
	rerun := waitDone(t, svc, id)
	if rerun.State != StateDone {
		t.Fatalf("re-run finished %s (%s)", rerun.State, rerun.Error)
	}
	if rerun.Result.PersistentHit {
		t.Fatal("re-run claims a persistent hit; nothing was stored before the crash")
	}
	if !bytes.Equal(canonicalBytes(t, rerun.Result), canonicalBytes(t, cold.Result)) {
		t.Fatal("re-run after restart differs from a cold run of the same request")
	}

	// ID continuity: fresh submissions continue past every replayed ID.
	resp, err := svc.Submit(SynthesisRequest{System: testSystem(t, 43)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.ID, "j000008-") {
		t.Fatalf("post-replay ID = %s, want sequence to resume at j000008", resp.ID)
	}
	waitDone(t, svc, resp.ID)
}

func TestPersistCrashMidRunRequeues(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	st := openTestStore(t, dir, clk, store.Options{})
	svc := New(Options{Workers: 1, JobWorkers: 1, Store: st, Clock: clk})

	// A deliberately huge exploration: it cannot finish before the
	// simulated crash, so its finish record never reaches the journal.
	resp, err := svc.SubmitExplore(ExploreRequest{System: testSystem(t, 44), Generations: 100000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second) //mcs:allow wallclock test-only poll deadline, not persisted state
	for {
		status, err := svc.Status(resp.ID)
		if err != nil {
			t.Fatal(err)
		}
		if status.State == StateRunning {
			break
		}
		if time.Now().After(deadline) { //mcs:allow wallclock test-only poll deadline, not persisted state
			t.Fatalf("job never started running (state %s)", status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	svc.detachStore() // crash: everything after this is invisible to the journal
	svc.Close()       // cancels the job, but the cancellation is never journaled
	st.Close()

	st2 := openTestStore(t, dir, clk, store.Options{})
	svc2 := New(Options{Workers: 1, JobWorkers: 1, Store: st2, Clock: clk})
	defer svc2.Close()

	stats := svc2.Stats()
	if stats.Store == nil || stats.Store.RequeuedJobs != 1 {
		t.Fatalf("replay stats = %+v, want the mid-run job requeued", stats.Store)
	}
	status, err := svc2.Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != StateQueued && status.State != StateRunning {
		t.Fatalf("replayed mid-run job state = %s, want queued or running", status.State)
	}
	// Don't wait out the huge exploration; cancelling it proves the
	// replayed job is live and wired into the queue like any other.
	if err := svc2.Cancel(resp.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc2, resp.ID)
	if final.State != StateCanceled {
		t.Fatalf("replayed job after cancel = %s, want canceled", final.State)
	}
}

func TestPersistDuplicateSubmissionServedFromStore(t *testing.T) {
	clk := newTestClock()
	st := openTestStore(t, t.TempDir(), clk, store.Options{})
	svc := New(Options{Workers: 1, JobWorkers: 1, Store: st, Clock: clk})
	defer svc.Close()

	first, err := svc.Submit(SynthesisRequest{System: testSystem(t, 45), Strategy: "os"})
	if err != nil {
		t.Fatal(err)
	}
	cold := waitDone(t, svc, first.ID)
	if cold.State != StateDone || cold.Result.PersistentHit {
		t.Fatalf("first run: state %s, persistentHit %v", cold.State, cold.Result.PersistentHit)
	}

	second, err := svc.Submit(SynthesisRequest{System: testSystem(t, 45), Strategy: "os"})
	if err != nil {
		t.Fatal(err)
	}
	dup := waitDone(t, svc, second.ID)
	if dup.State != StateDone || !dup.Result.PersistentHit {
		t.Fatalf("duplicate run: state %s, persistentHit %v, want a persistent serve", dup.State, dup.Result.PersistentHit)
	}
	if !bytes.Equal(canonicalBytes(t, dup.Result), canonicalBytes(t, cold.Result)) {
		t.Fatal("persistent serve differs from the run that produced it")
	}

	// A different seed is a different key and must NOT hit.
	third, err := svc.Submit(SynthesisRequest{System: testSystem(t, 45), Strategy: "os", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	other := waitDone(t, svc, third.ID)
	if other.State != StateDone || other.Result.PersistentHit {
		t.Fatalf("distinct options served from the store: state %s, persistentHit %v", other.State, other.Result.PersistentHit)
	}
}

func TestPersistCanceledBeforeRestartNotRequeued(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	req := SynthesisRequest{System: testSystem(t, 46)}
	raw, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, dir, clk, store.Options{})
	const id = "j000001-deadbeef"
	for _, rec := range []store.Record{
		{Op: store.OpSubmit, Job: id, Kind: string(KindSynthesize), Request: raw},
		{Op: store.OpStart, Job: id},
		{Op: store.OpCancel, Job: id},
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2 := openTestStore(t, dir, clk, store.Options{})
	svc := New(Options{Workers: 1, JobWorkers: 1, Store: st2, Clock: clk})
	defer svc.Close()

	status, err := svc.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != StateCanceled || status.Error != store.ErrCanceledBeforeRestart {
		t.Fatalf("cancel-before-crash job replayed as %s (%q)", status.State, status.Error)
	}
	if stats := svc.Stats(); stats.Store.RequeuedJobs != 0 {
		t.Fatalf("canceled job was requeued: %+v", stats.Store)
	}
}

func TestPersistResultTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	st := openTestStore(t, dir, clk, store.Options{ResultTTL: time.Hour})
	svc := New(Options{Workers: 1, JobWorkers: 1, Store: st, Clock: clk})

	resp, err := svc.Submit(SynthesisRequest{System: testSystem(t, 47)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, resp.ID)
	svc.Close()
	st.Close()

	clk.advance(2 * time.Hour)
	st2 := openTestStore(t, dir, clk, store.Options{ResultTTL: time.Hour})
	svc2 := New(Options{Workers: 1, JobWorkers: 1, Store: st2, Clock: clk})
	defer svc2.Close()

	// The finish record outlives the result: the job stays done, the
	// missing result is reported, and a resubmission recomputes.
	status, err := svc2.Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != StateDone || status.Result != nil || status.Error == "" {
		t.Fatalf("expired-result job = %s, result %v, error %q; want done with a reported gap",
			status.State, status.Result, status.Error)
	}
	again, err := svc2.Submit(SynthesisRequest{System: testSystem(t, 47)})
	if err != nil {
		t.Fatal(err)
	}
	recomputed := waitDone(t, svc2, again.ID)
	if recomputed.State != StateDone || recomputed.Result.PersistentHit {
		t.Fatalf("resubmission after expiry: state %s, persistentHit %v, want a recompute",
			recomputed.State, recomputed.Result.PersistentHit)
	}
}

func TestPersistCompactionBoundsJournal(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	// The 4KiB segment floor plus identical requests (every job after
	// the first is an instant persistent hit) grows the journal fast
	// enough to cross the compaction threshold within a few dozen jobs.
	st := openTestStore(t, dir, clk, store.Options{SegmentBytes: 1})
	svc := New(Options{Workers: 1, JobWorkers: 1, Store: st, Clock: clk})
	defer svc.Close()

	sys := testSystem(t, 48)
	for i := 0; i < 60; i++ {
		resp, err := svc.Submit(SynthesisRequest{System: sys})
		if err != nil {
			t.Fatal(err)
		}
		if status := waitDone(t, svc, resp.ID); status.State != StateDone {
			t.Fatalf("job %d finished %s (%s)", i, status.State, status.Error)
		}
	}
	stats := svc.Stats()
	if stats.Store.Compactions == 0 {
		t.Fatalf("60 jobs at the 4KiB segment floor never compacted: %+v", stats.Store)
	}
	if stats.Store.Segments >= 8 {
		t.Fatalf("journal not bounded: %d segments after compaction", stats.Store.Segments)
	}
}

func TestPersistStoreStatsSurface(t *testing.T) {
	clk := newTestClock()
	st := openTestStore(t, t.TempDir(), clk, store.Options{})
	svc := New(Options{Workers: 1, JobWorkers: 1, Store: st, Clock: clk})
	defer svc.Close()

	if mem := New(Options{Workers: 1, JobWorkers: 1}); mem.Stats().Store != nil {
		t.Fatal("in-memory service reports store stats")
	} else {
		mem.Close()
	}

	resp, err := svc.Submit(SynthesisRequest{System: testSystem(t, 49)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, resp.ID)
	stats := svc.Stats()
	if stats.Store == nil {
		t.Fatal("store-backed service reports no store stats")
	}
	if stats.Store.Appends < 3 { // submit + start + finish
		t.Fatalf("Appends = %d, want >= 3", stats.Store.Appends)
	}
	if stats.Store.ResultsStored != 1 || stats.Store.Errors != 0 {
		t.Fatalf("store stats = %+v", stats.Store)
	}
	blob, err := json.Marshal(stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"store"`, `"segments"`, `"journalBytes"`, `"replayedJobs"`, `"resultsStored"`} {
		if !bytes.Contains(blob, []byte(field)) {
			t.Fatalf("stats JSON missing %s: %s", field, blob)
		}
	}
}
