// Package cruise models the real-life example of the paper's §6: a
// vehicle cruise controller with 40 processes, mapped on an architecture
// of two TT nodes and two ET nodes interconnected by a gateway, with one
// operation mode and a 250 ms deadline. The "speedup" part of the model
// runs on the ETC, everything else on the TTC.
//
// The original Volvo model is proprietary; the structure below follows
// the paper's description (sensor acquisition, filtering, mode logic and
// the speed-control law on the TTC; the speed-up state machine,
// overspeed monitoring, display and diagnosis on the ETC) with execution
// times calibrated so the published behaviour is reproduced in shape:
// the straightforward configuration misses the deadline, OptimizeSchedule
// finds a schedulable configuration with a wide margin, and
// OptimizeResources then cuts the buffer need by roughly a quarter
// (EXPERIMENTS.md, experiment E6). 1 tick = 1 ms.
package cruise

import (
	"fmt"

	"repro/internal/model"
)

// Period and Deadline of the single operation mode, in ticks (ms).
// 480 is divisor-dense (2^5*3*5), which gives the TDMA-round padding a
// fine-grained set of feasible periods.
const (
	Period   model.Time = 480
	Deadline model.Time = 250
)

type procSpec struct {
	name string
	node int // 0,1 = TT nodes; 2,3 = ET nodes
	wcet model.Time
}

type edgeSpec struct {
	src, dst string
	size     int
}

// procs is the 40-process cruise-controller graph.
var procs = []procSpec{
	// --- TTC: sensor acquisition (N1, N2) ---
	{"s_wheel_fl", 0, 5}, {"s_wheel_fr", 0, 5}, {"s_wheel_rl", 1, 5}, {"s_wheel_rr", 1, 5},
	{"s_engine_rpm", 1, 6}, {"s_pedal_pos", 1, 5}, {"s_brake_sw", 0, 4}, {"s_clutch_sw", 0, 4},
	{"s_buttons", 1, 4},
	// --- TTC: filtering and fusion ---
	{"f_speed", 0, 12}, {"f_engine", 1, 8}, {"f_pedal", 1, 6}, {"f_buttons", 1, 4},
	// --- TTC: mode logic and control law (all on N1, the control node) ---
	{"mode_logic", 0, 8}, {"target_speed", 0, 6}, {"pi_control", 0, 12},
	{"limiter", 0, 6}, {"gear_compensation", 1, 8},
	// --- TTC: actuation and bookkeeping ---
	{"throttle_cmd", 0, 7}, {"act_throttle", 0, 6}, {"act_indicator", 0, 4},
	{"odometer", 1, 5}, {"log_state", 0, 5}, {"watchdog_tt", 0, 4},
	// --- ETC: overspeed monitoring ---
	{"ov_monitor", 3, 8}, {"ov_classify", 2, 6}, {"ov_alarm", 3, 5},
	// --- ETC: display and diagnosis ---
	{"disp_speed", 3, 7}, {"disp_mode", 2, 5}, {"disp_target", 3, 5},
	{"diag_speedup", 2, 7}, {"diag_bus", 3, 6}, {"diag_store", 3, 7}, {"hmi_beeper", 2, 4},
	// --- ETC: the "speedup" part (N3, N4), the function the paper moved
	// onto the event-triggered cluster. Declared last: the naive
	// declaration-order priorities of the SF baseline starve it, which
	// is exactly what OptimizeSchedule's HOPA pass must repair.
	{"sp_entry", 2, 10}, {"sp_accel", 2, 12}, {"sp_resume", 3, 10}, {"sp_arbiter", 2, 8},
	{"sp_ramp", 3, 11}, {"sp_decision", 2, 7},
}

// edges wires the graph; sizes in bytes (small periodic signals).
var edges = []edgeSpec{
	// Wheel sensors into the speed filter.
	{"s_wheel_fl", "f_speed", 8}, {"s_wheel_fr", "f_speed", 8},
	{"s_wheel_rl", "f_speed", 8}, {"s_wheel_rr", "f_speed", 8},
	{"s_engine_rpm", "f_engine", 8}, {"s_pedal_pos", "f_pedal", 8},
	{"s_buttons", "f_buttons", 8},
	// Mode logic: brake/clutch overrides and the button state.
	{"s_brake_sw", "mode_logic", 8}, {"s_clutch_sw", "mode_logic", 8},
	{"f_buttons", "mode_logic", 8}, {"f_speed", "mode_logic", 8},
	// Control law (local on N1 once the inputs are fused).
	{"mode_logic", "target_speed", 8}, {"target_speed", "pi_control", 8},
	{"f_speed", "pi_control", 8}, {"f_engine", "gear_compensation", 8},
	{"pi_control", "limiter", 8}, {"gear_compensation", "limiter", 8},
	// Actuation (local on N1).
	{"limiter", "throttle_cmd", 8}, {"throttle_cmd", "act_throttle", 8},
	{"mode_logic", "act_indicator", 8},
	// Bookkeeping on N2.
	{"s_wheel_rl", "odometer", 8}, {"throttle_cmd", "log_state", 8}, {"mode_logic", "watchdog_tt", 8},
	// TTC -> ETC: the monitors and displays consume fused state.
	{"f_speed", "ov_monitor", 8},
	{"f_speed", "disp_speed", 8}, {"mode_logic", "disp_mode", 8},
	{"target_speed", "disp_target", 8},
	// ETC internal: overspeed chain and diagnosis.
	{"ov_monitor", "ov_classify", 8}, {"ov_classify", "ov_alarm", 8},
	{"ov_alarm", "hmi_beeper", 8},
	{"ov_classify", "diag_bus", 16},
	{"diag_bus", "diag_store", 16},
	// TTC -> ETC: the speedup part (declared after the base functions).
	// The arbiter reads the driver-button state directly, which keeps
	// the decision loop off the mode-logic completion.
	{"f_speed", "sp_entry", 8}, {"f_pedal", "sp_entry", 8},
	{"f_buttons", "sp_arbiter", 8},
	// ETC internal: a shallow speed-up state machine; the decision loop
	// is entry -> arbiter -> decision, the ramp generators are side
	// branches.
	{"sp_entry", "sp_arbiter", 8}, {"sp_entry", "sp_accel", 8}, {"sp_entry", "sp_resume", 8},
	{"sp_arbiter", "sp_decision", 8},
	{"sp_resume", "sp_ramp", 8},
	{"sp_accel", "diag_speedup", 16},
	// ETC -> TTC: the speedup decision closes the control loop.
	{"sp_decision", "pi_control", 8},
}

// System builds the cruise-controller model: architecture (2 TT + 2 ET
// nodes + gateway) and the 40-process graph.
func System() (*model.System, error) {
	arch, err := model.NewTwoClusterArchitecture(model.ArchSpec{
		Name:        "cruise-controller",
		TTNodes:     2,
		ETNodes:     2,
		TickPerByte: 1,
		CANBitTime:  1, // 8-byte frame = 135 bit times; see frame scaling below
		GatewayCost: 2,
		GatewayPoll: 0,
	})
	if err != nil {
		return nil, err
	}
	app := model.NewApplication("cruise-controller")
	g := app.AddGraph("cruise", Period, Deadline)

	tt := arch.TTNodes()
	et := arch.ETNodes()
	nodeOf := func(i int) model.NodeID {
		if i < 2 {
			return tt[i]
		}
		return et[i-2]
	}
	ids := make(map[string]model.ProcID, len(procs))
	for _, p := range procs {
		ids[p.name] = app.AddProcess(g, p.name, p.wcet, nodeOf(p.node))
	}
	for _, e := range edges {
		src, ok := ids[e.src]
		if !ok {
			return nil, fmt.Errorf("cruise: unknown process %q", e.src)
		}
		dst, ok := ids[e.dst]
		if !ok {
			return nil, fmt.Errorf("cruise: unknown process %q", e.dst)
		}
		id := app.AddEdge(e.src+"->"+e.dst, src, dst, e.size)
		// The CAN legs use a calibrated 1 ms frame per 8 bytes (1 Mbit/s
		// with the worst-case stuffing already included), matching the
		// paper's millisecond-scale numbers.
		app.Edges[id].CANTime = model.Time((e.size + 7) / 8)
	}
	if err := app.Finalize(arch); err != nil {
		return nil, err
	}
	return &model.System{Architecture: arch, Application: app}, nil
}
