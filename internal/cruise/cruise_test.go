package cruise

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sim"
)

func TestSystemShape(t *testing.T) {
	sys, err := System()
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	if got := len(app.Procs); got != 40 {
		t.Errorf("processes = %d, want 40 (the paper's model size)", got)
	}
	if got := len(arch.TTNodes()); got != 2 {
		t.Errorf("TT nodes = %d, want 2", got)
	}
	if got := len(arch.ETNodes()); got != 2 {
		t.Errorf("ET nodes = %d, want 2", got)
	}
	if app.Graphs[0].Deadline != 250 {
		t.Errorf("deadline = %d, want 250 ms", app.Graphs[0].Deadline)
	}
	if err := app.Validate(arch); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	// The speedup part is on the ETC, the control law on the TTC.
	byName := make(map[string]model.ProcID)
	for _, p := range app.Procs {
		byName[p.Name] = p.ID
	}
	for _, name := range []string{"sp_entry", "sp_arbiter", "sp_decision"} {
		if arch.Kind(app.Procs[byName[name]].Node) != model.EventTriggered {
			t.Errorf("%s must run on the ETC", name)
		}
	}
	for _, name := range []string{"pi_control", "limiter", "act_throttle"} {
		if arch.Kind(app.Procs[byName[name]].Node) != model.TimeTriggered {
			t.Errorf("%s must run on the TTC", name)
		}
	}
	// Inter-cluster traffic crosses the gateway in both directions.
	var toET, toTT int
	for _, e := range app.GatewayEdges(arch) {
		switch app.RouteOf(e, arch) {
		case model.RouteTTtoET:
			toET++
		case model.RouteETtoTT:
			toTT++
		}
	}
	if toET == 0 || toTT == 0 {
		t.Errorf("gateway traffic = %d TT->ET, %d ET->TT; want both directions", toET, toTT)
	}
}

// TestPublishedBehaviourShape is experiment E6: SF misses the 250 ms
// deadline, OptimizeSchedule produces a schedulable system, and
// OptimizeResources reduces the buffer need without losing
// schedulability (paper: SF 320 ms, OS/SAS 185 ms, OS buffers 1020 B,
// OR -24%; our calibrated model: SF 276 ms, OS ~230 ms, OR cuts the
// OS buffer need by >= 10%; see EXPERIMENTS.md).
func TestPublishedBehaviourShape(t *testing.T) {
	sys, err := System()
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	app, arch := sys.Application, sys.Architecture

	sf, err := opt.Straightforward(app, arch)
	if err != nil {
		t.Fatalf("Straightforward: %v", err)
	}
	if sf.Schedulable() {
		t.Errorf("SF must miss the deadline (resp=%d)", sf.Analysis.GraphResp[0])
	}
	if sf.Analysis.GraphResp[0] <= 250 {
		t.Errorf("SF response = %d, want > 250", sf.Analysis.GraphResp[0])
	}

	osres, err := opt.OptimizeSchedule(context.Background(), app, arch, opt.OSOptions{})
	if err != nil {
		t.Fatalf("OptimizeSchedule: %v", err)
	}
	if !osres.Best.Schedulable() {
		t.Fatalf("OS must find a schedulable system (delta=%d)", osres.Best.Delta())
	}
	if osres.Best.Analysis.GraphResp[0] > 250 {
		t.Errorf("OS response = %d, want <= 250", osres.Best.Analysis.GraphResp[0])
	}
	if osres.Best.Analysis.GraphResp[0] >= sf.Analysis.GraphResp[0] {
		t.Errorf("OS (%d) must beat SF (%d)", osres.Best.Analysis.GraphResp[0], sf.Analysis.GraphResp[0])
	}

	orres, err := opt.OptimizeResources(context.Background(), app, arch, opt.OROptions{})
	if err != nil {
		t.Fatalf("OptimizeResources: %v", err)
	}
	if !orres.Best.Schedulable() {
		t.Error("OR lost schedulability")
	}
	if orres.Best.STotal() >= osres.Best.STotal() {
		t.Errorf("OR s_total = %d, want < OS %d", orres.Best.STotal(), osres.Best.STotal())
	}
}

// TestCruiseSimulation validates the synthesized cruise controller in
// the discrete-event simulator: no deadline misses, no violations, all
// observations within the analysed bounds.
func TestCruiseSimulation(t *testing.T) {
	sys, err := System()
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	app, arch := sys.Application, sys.Architecture
	osres, err := opt.OptimizeSchedule(context.Background(), app, arch, opt.OSOptions{})
	if err != nil {
		t.Fatalf("OptimizeSchedule: %v", err)
	}
	if !osres.Best.Schedulable() {
		t.Fatal("OS result unschedulable")
	}
	for _, mode := range []sim.ExecMode{sim.WorstCase, sim.RandomCase} {
		res, err := sim.Run(app, arch, osres.Best.Config, osres.Best.Analysis, sim.Options{Cycles: 2, Exec: mode, Seed: 7})
		if err != nil {
			t.Fatalf("sim.Run(%v): %v", mode, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		if res.DeadlineMisses != 0 {
			t.Errorf("deadline misses: %d", res.DeadlineMisses)
		}
		if res.GraphWorstResp[0] > osres.Best.Analysis.GraphResp[0] {
			t.Errorf("simulated response %d exceeds analysed %d", res.GraphWorstResp[0], osres.Best.Analysis.GraphResp[0])
		}
	}
}
