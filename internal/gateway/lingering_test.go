package gateway

import (
	"testing"
)

// TestLingeringEarlierOffsetCounted is the regression test for the
// soundness gap the simulator exposed (DESIGN.md decision 7): a
// higher-priority message of the same transaction released at an
// *earlier* offset can still sit in the OutTTP queue when a later
// message enters, so it must be counted among the bytes ahead even
// though the paper's forward window never reaches its (wrapped)
// relative offset.
func TestLingeringEarlierOffsetCounted(t *testing.T) {
	p := fig4Params() // round [S_G:20, S_1:20], capacity 20 bytes
	msgs := []QueueMsg{
		// hp enters at offset 100 with a long residence: jitter 30 keeps
		// it possibly queued until its drain.
		{Name: "hp", Size: 12, T: 240, O: 100, J: 30, Priority: 1, Trans: 1},
		// lo enters at 120: hp's relative offset is (100-120) mod 240 =
		// 220, far beyond any forward window, yet hp can still be queued.
		{Name: "lo", Size: 12, T: 240, O: 120, J: 0, Priority: 2, Trans: 1},
	}
	res, err := AnalyzeOutTTP(msgs, p)
	if err != nil {
		t.Fatalf("AnalyzeOutTTP: %v", err)
	}
	if res[1].I < 12 {
		t.Errorf("I(lo) = %d, want >= 12: the lingering hp instance must count", res[1].I)
	}
	// 24 bytes do not fit one 20-byte S_G slot: one extra round.
	if res[1].W < p.Round.Period() {
		t.Errorf("w(lo) = %d, want >= one round (%d)", res[1].W, p.Round.Period())
	}
	bound, _ := OutTTPBufferBound(msgs, res)
	if bound < 24 {
		t.Errorf("buffer bound = %d, want >= 24 (both queued together)", bound)
	}
}

// TestNoLingeringWhenDrainedEarly: when the earlier message is
// guaranteed drained before the later one enters, it must not inflate
// the interference.
func TestNoLingeringWhenDrainedEarly(t *testing.T) {
	p := fig4Params()
	msgs := []QueueMsg{
		// hp enters at 0 with no jitter: drained in the S_G slot at 0 or
		// 40 at the latest, long before lo enters at 200.
		{Name: "hp", Size: 12, T: 240, O: 0, J: 0, Priority: 1, Trans: 1},
		{Name: "lo", Size: 12, T: 240, O: 200, J: 0, Priority: 2, Trans: 1},
	}
	res, err := AnalyzeOutTTP(msgs, p)
	if err != nil {
		t.Fatalf("AnalyzeOutTTP: %v", err)
	}
	if res[1].I != 0 {
		t.Errorf("I(lo) = %d, want 0 (hp drained 200 ticks earlier)", res[1].I)
	}
	if res[1].W != 0 {
		t.Errorf("w(lo) = %d, want 0 (entry at an S_G start)", res[1].W)
	}
}
