// Package gateway implements the worst-case queuing delay and buffer-size
// analysis of the gateway output queues (§4.1.1 and §4.1.2 of the paper).
//
// Three queues exist:
//
//   - OutN_i: the priority-ordered output queue of each ET node. The
//     queuing delay of a message is its CAN arbitration delay w_m
//     (computed by package rta); this package bounds the queue size.
//   - OutCAN: the priority-ordered TTP-to-CAN queue of the gateway. Same
//     treatment as OutN_i.
//   - OutTTP: the FIFO CAN-to-TTP queue of the gateway, drained by at
//     most size_SG bytes in every occurrence of the gateway slot S_G.
//     This package computes both the worst-case queuing delay w_m^TTP and
//     the buffer bound s^TTP = max(S_m + I_m).
package gateway

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rta"
	"repro/internal/ttp"
)

// QueueMsg describes one message passing through a gateway-side queue.
type QueueMsg struct {
	// Name is used in diagnostics only.
	Name string
	// Size is the payload in bytes (S_m / s_m in the paper).
	Size int
	// T is the period of the message (its graph's period).
	T model.Time
	// O is the offset at which the message enters the queue, relative to
	// its transaction release.
	O model.Time
	// J is the jitter of the queue entry time: the message arrives in
	// [O, O+J].
	J model.Time
	// Priority orders the messages (smaller = higher priority, CAN
	// convention). In the FIFO OutTTP queue the paper approximates
	// "queued ahead of m" by "higher priority than m".
	Priority int
	// Trans identifies the transaction (process graph) for relative
	// offsets; -1 for unrelated.
	Trans int
}

// TTPResult is the OutTTP analysis outcome for one message.
type TTPResult struct {
	// W is the worst-case queuing delay w_m^TTP, measured from the
	// latest possible queue entry O+J until the start of the S_G slot
	// occurrence that carries the last byte of m.
	W model.Time
	// I is I_m: the worst-case number of bytes queued ahead of m.
	I int
	// R is the delivery response J + W + C_SG, measured from O: the
	// message is in the destination node's buffers no later than
	// transaction release + O + R.
	R model.Time
	// Converged is false when the fixed point hit the horizon.
	Converged bool
}

// TTPQueueParams configures the OutTTP analysis.
type TTPQueueParams struct {
	// Round is the (padded) TDMA round in effect.
	Round ttp.Round
	// GatewaySlot is the index of S_G inside the round.
	GatewaySlot int
	// TickPerByte converts slot time to byte capacity.
	TickPerByte model.Time
	// Horizon caps the fixed points.
	Horizon model.Time
}

// AnalyzeOutTTP bounds the queuing delay of every message in the OutTTP
// FIFO queue, following §4.1.2:
//
//	w_m = B_m + (ceil((S_m + I_m)/size_SG) - 1) * T_TDMA
//	I_m = sum over j in hp(m) of queued((w_m + J_m) + J_j - O_mj, T_j) * s_j
//
// with these refinements over the paper's formulas (documented in
// DESIGN.md):
//
//   - B_m anchors at the latest possible queue entry O_m + J_m: the wait
//     until the next S_G start from there. Because the drain instants are
//     fixed TDMA slots, the delivery time is monotone in the entry time,
//     so the latest entry dominates every earlier one. This replaces the
//     paper's "T_TDMA - O_m mod T_TDMA + O_SG", which can exceed a round.
//   - The interference window for bytes queued ahead of m spans m's whole
//     possible residence [O_m, O_m+J_m+w_m], hence the J_m term, and the
//     arrival count is inclusive (rta.NumQueued) so that simultaneous
//     higher-priority entries are not missed.
//
// The "-1" accounts for the drain of the S_G occurrence reached after
// B_m: if everything fits there, no additional full rounds are needed.
// The returned W is measured from the latest entry O_m + J_m.
func AnalyzeOutTTP(msgs []QueueMsg, p TTPQueueParams) ([]TTPResult, error) {
	if p.Horizon <= 0 {
		return nil, fmt.Errorf("gateway: positive horizon required")
	}
	if p.GatewaySlot < 0 || p.GatewaySlot >= len(p.Round.Slots) {
		return nil, fmt.Errorf("gateway: gateway slot %d out of range", p.GatewaySlot)
	}
	capSG := p.Round.Capacity(p.GatewaySlot, p.TickPerByte)
	if capSG <= 0 {
		return nil, fmt.Errorf("gateway: gateway slot has zero byte capacity")
	}
	for _, m := range msgs {
		if m.Size <= 0 {
			return nil, fmt.Errorf("gateway: message %q has size %d", m.Name, m.Size)
		}
		if m.T <= 0 {
			return nil, fmt.Errorf("gateway: message %q has period %d", m.Name, m.T)
		}
		if m.Size > capSG {
			return nil, fmt.Errorf("gateway: message %q (%d bytes) exceeds the S_G capacity of %d bytes", m.Name, m.Size, capSG)
		}
	}
	tdma := p.Round.Period()
	cSG := p.Round.Slots[p.GatewaySlot].Length
	res := make([]TTPResult, len(msgs))
	// Outer fixed point: each message's residence (J + W) extends the
	// lingering windows of the others (see rta.CountArrivals); the
	// delays grow monotonically across passes until stable.
	resid := make([]model.Time, len(msgs))
	for pass := 0; pass < 64; pass++ {
		for i := range msgs {
			me := msgs[i]
			anchor := me.O + me.J
			b := p.Round.NextSlotStart(p.GatewaySlot, anchor) - anchor
			w := b
			for iter := 0; ; iter++ {
				im := interferenceBytes(msgs, i, w, resid)
				rounds := model.Time((me.Size+im+capSG-1)/capSG) - 1
				next := b + rounds*tdma
				if next == w {
					res[i] = TTPResult{W: w, I: im, R: me.J + w + cSG, Converged: true}
					break
				}
				if next > p.Horizon || iter > 1<<20 {
					res[i] = TTPResult{W: p.Horizon, I: im, R: me.J + p.Horizon + cSG, Converged: false}
					break
				}
				w = next
			}
		}
		changed := false
		for i := range msgs {
			if r := msgs[i].J + res[i].W; r != resid[i] {
				resid[i] = r
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return res, nil
}

// interferenceBytes returns I_m for a queuing delay w: the bytes of
// higher-priority messages that can share the queue with m at any point
// of m's residence window [O_m, O_m + J_m + w], including instances
// released earlier that still linger in the FIFO (resid holds each
// message's J + W from the previous pass).
func interferenceBytes(msgs []QueueMsg, i int, w model.Time, resid []model.Time) int {
	me := msgs[i]
	bytes := 0
	for j := range msgs {
		o := msgs[j]
		if j == i || o.Priority >= me.Priority {
			continue
		}
		same := o.Trans == me.Trans && o.Trans >= 0
		omj := rta.RelOffset(me.O, o.O, o.T, same)
		bytes += int(rta.CountArrivals(w+me.J, o.J, omj, o.T, resid[j], true, same)) * o.Size
	}
	return bytes
}

// OutTTPBufferBound returns s^TTP_out = max over m of (S_m + I_m), the
// worst-case number of bytes simultaneously waiting in the OutTTP queue,
// together with the index of the message attaining the bound (-1 when
// the queue is empty). The critical message is where the
// OptimizeResources moves have the highest potential (§5.1).
func OutTTPBufferBound(msgs []QueueMsg, res []TTPResult) (bound, critical int) {
	critical = -1
	for i := range msgs {
		if s := msgs[i].Size + res[i].I; s > bound {
			bound, critical = s, i
		}
	}
	return bound, critical
}

// CANQueueMsg couples a queue message with its CAN queuing delay w_m
// (produced by the rta package for the bus resource).
type CANQueueMsg struct {
	QueueMsg
	// W is the worst-case CAN arbitration delay w_m of the message.
	W model.Time
}

// CANQueueBufferBound returns the worst-case byte occupancy of one
// priority-ordered CAN output queue (OutN_i or OutCAN), §4.1.1:
//
//	s_out = max over m of ( s_m + sum over j in hp(m) of
//	         queued((w_m + J_m) + J_j - O_mj, T_j) * s_j )
//
// As in AnalyzeOutTTP, the coexistence window spans m's whole residence
// [O_m, O_m + J_m + w_m] and the arrival count is inclusive. Only the
// messages passing through the same queue must be given. The second
// result is the index of the message attaining the bound (-1 for an
// empty queue).
func CANQueueBufferBound(msgs []CANQueueMsg) (bound, critical int) {
	critical = -1
	for i := range msgs {
		me := msgs[i]
		s := me.Size
		for j := range msgs {
			o := msgs[j]
			if j == i || o.Priority >= me.Priority {
				continue
			}
			same := o.Trans == me.Trans && o.Trans >= 0
			omj := rta.RelOffset(me.O, o.O, o.T, same)
			s += int(rta.CountArrivals(me.W+me.J, o.J, omj, o.T, o.J+o.W, true, same)) * o.Size
		}
		if s > bound {
			bound, critical = s, i
		}
	}
	return bound, critical
}
