package gateway

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/ttp"
)

// fig4Params reproduces the Figure 4(a) platform: round = [S_G:20, S_1:20],
// 1 tick per byte (so S_G carries 20 bytes per round).
func fig4Params() TTPQueueParams {
	return TTPQueueParams{
		Round:       ttp.Round{Slots: []ttp.Slot{{Node: 2, Length: 20}, {Node: 0, Length: 20}}},
		GatewaySlot: 0,
		TickPerByte: 1,
		Horizon:     1 << 40,
	}
}

// TestFig4aM3 follows m3 of the §4.2 example: it enters OutTTP at offset
// 160 (sender response + CAN leg + gateway transfer), alone in the queue.
// The next S_G starts exactly at 160, so w = 0 and the message is
// delivered at 160 + 20 = 180, which is where the schedule places P4.
func TestFig4aM3(t *testing.T) {
	msgs := []QueueMsg{{Name: "m3", Size: 4, T: 240, O: 160, J: 0, Priority: 3, Trans: 1}}
	res, err := AnalyzeOutTTP(msgs, fig4Params())
	if err != nil {
		t.Fatalf("AnalyzeOutTTP: %v", err)
	}
	if res[0].W != 0 || res[0].I != 0 {
		t.Errorf("w=%d I=%d, want 0, 0", res[0].W, res[0].I)
	}
	if res[0].R != 20 { // delivered one slot length after entering
		t.Errorf("R=%d, want 20", res[0].R)
	}
	if b, crit := OutTTPBufferBound(msgs, res); b != 4 || crit != 0 {
		t.Errorf("buffer bound = %d, want 4", b)
	}
}

// TestBlockingWaitsForSlot checks B_m: entering one tick after S_G's
// start costs almost a full round.
func TestBlockingWaitsForSlot(t *testing.T) {
	msgs := []QueueMsg{{Name: "m", Size: 4, T: 240, O: 161, J: 0, Priority: 1, Trans: 1}}
	res, err := AnalyzeOutTTP(msgs, fig4Params())
	if err != nil {
		t.Fatalf("AnalyzeOutTTP: %v", err)
	}
	if res[0].W != 39 {
		t.Errorf("w=%d, want 39 (wait until the next round's S_G)", res[0].W)
	}
}

// TestCapacityOverflowAddsRounds: two higher-priority 12-byte messages
// ahead of an 8-byte message exceed one 20-byte S_G slot, forcing an
// extra round of delay.
func TestCapacityOverflowAddsRounds(t *testing.T) {
	msgs := []QueueMsg{
		{Name: "a", Size: 12, T: 240, O: 0, J: 0, Priority: 1, Trans: 1},
		{Name: "b", Size: 12, T: 240, O: 0, J: 0, Priority: 2, Trans: 1},
		{Name: "c", Size: 8, T: 240, O: 0, J: 0, Priority: 3, Trans: 1},
	}
	res, err := AnalyzeOutTTP(msgs, fig4Params())
	if err != nil {
		t.Fatalf("AnalyzeOutTTP: %v", err)
	}
	// c has 24 bytes ahead: needs ceil(32/20)=2 slots -> one extra round.
	if res[2].I != 24 {
		t.Errorf("I(c) = %d, want 24", res[2].I)
	}
	if res[2].W != 40 {
		t.Errorf("w(c) = %d, want 40 (one extra round)", res[2].W)
	}
	// a needs only the first slot.
	if res[0].W != 0 {
		t.Errorf("w(a) = %d, want 0", res[0].W)
	}
	// b: 12 bytes ahead, 24 total -> 2 slots.
	if res[1].W != 40 {
		t.Errorf("w(b) = %d, want 40", res[1].W)
	}
	if b, crit := OutTTPBufferBound(msgs, res); b != 32 || crit != 2 {
		t.Errorf("buffer bound = %d, want 32", b)
	}
}

func TestOutTTPValidation(t *testing.T) {
	p := fig4Params()
	if _, err := AnalyzeOutTTP([]QueueMsg{{Size: 25, T: 10, Priority: 0}}, p); err == nil {
		t.Error("accepted message larger than S_G capacity")
	}
	if _, err := AnalyzeOutTTP([]QueueMsg{{Size: 0, T: 10, Priority: 0}}, p); err == nil {
		t.Error("accepted zero-size message")
	}
	if _, err := AnalyzeOutTTP([]QueueMsg{{Size: 4, T: 0, Priority: 0}}, p); err == nil {
		t.Error("accepted zero period")
	}
	p.Horizon = 0
	if _, err := AnalyzeOutTTP(nil, p); err == nil {
		t.Error("accepted zero horizon")
	}
	p = fig4Params()
	p.GatewaySlot = 5
	if _, err := AnalyzeOutTTP(nil, p); err == nil {
		t.Error("accepted out-of-range gateway slot")
	}
	p = fig4Params()
	p.TickPerByte = 100 // slot capacity 0
	if _, err := AnalyzeOutTTP([]QueueMsg{{Size: 1, T: 10, Priority: 0}}, p); err == nil {
		t.Error("accepted zero-capacity gateway slot")
	}
}

func TestCANQueueBufferBound(t *testing.T) {
	// Fig 4a OutCAN: m1 and m2 both enter at offset 80 with jitter 5
	// (r_T). m2's CAN delay is 10, during which m1 is also queued:
	// bound = 8 + 8 = 16 bytes.
	msgs := []CANQueueMsg{
		{QueueMsg: QueueMsg{Name: "m1", Size: 8, T: 240, O: 80, J: 5, Priority: 1, Trans: 1}, W: 0},
		{QueueMsg: QueueMsg{Name: "m2", Size: 8, T: 240, O: 80, J: 5, Priority: 2, Trans: 1}, W: 10},
	}
	if b, crit := CANQueueBufferBound(msgs); b != 16 || crit != 1 {
		t.Errorf("bound = %d (crit %d), want 16 at m2", b, crit)
	}
	// A single message: the bound is its own size.
	if b, _ := CANQueueBufferBound(msgs[:1]); b != 8 {
		t.Errorf("bound = %d, want 8", b)
	}
	if b, crit := CANQueueBufferBound(nil); b != 0 || crit != -1 {
		t.Errorf("bound = %d, want 0 for an empty queue", b)
	}
}

// TestCANQueueOffsetSeparation: when the higher-priority message is
// released long after m's queuing window, it does not inflate the queue.
func TestCANQueueOffsetSeparation(t *testing.T) {
	msgs := []CANQueueMsg{
		{QueueMsg: QueueMsg{Name: "hp", Size: 8, T: 240, O: 200, J: 0, Priority: 1, Trans: 1}, W: 0},
		{QueueMsg: QueueMsg{Name: "lo", Size: 8, T: 240, O: 0, J: 0, Priority: 2, Trans: 1}, W: 10},
	}
	if b, _ := CANQueueBufferBound(msgs); b != 8 {
		t.Errorf("bound = %d, want 8 (hp outside the window)", b)
	}
	// Unrelated transactions: worst phasing, both counted.
	msgs[0].Trans = 2
	if b, _ := CANQueueBufferBound(msgs); b != 16 {
		t.Errorf("bound = %d, want 16 for unrelated transactions", b)
	}
}

// Property: the OutTTP bound is always at least the size of every
// message, and delays grow monotonically with interference load.
func TestPropertyOutTTPBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := fig4Params()
		n := 1 + r.Intn(4)
		msgs := make([]QueueMsg, n)
		for i := range msgs {
			msgs[i] = QueueMsg{
				Size:     1 + r.Intn(16),
				T:        model.Time(120 * (1 + r.Intn(3))),
				O:        model.Time(r.Intn(100)),
				J:        model.Time(r.Intn(30)),
				Priority: i,
				Trans:    r.Intn(2),
			}
		}
		res, err := AnalyzeOutTTP(msgs, p)
		if err != nil {
			return false
		}
		bound, _ := OutTTPBufferBound(msgs, res)
		for i := range msgs {
			if bound < msgs[i].Size {
				return false
			}
			if res[i].Converged && res[i].W < 0 {
				return false
			}
			// Delivery takes at least one slot length.
			if res[i].R < res[i].W+p.Round.Slots[p.GatewaySlot].Length {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: widening the S_G slot at the expense of the other slot
// (keeping the round period and the slot phases fixed) never increases
// any OutTTP queuing delay.
func TestPropertyWiderSlotHelps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		msgs := make([]QueueMsg, n)
		for i := range msgs {
			msgs[i] = QueueMsg{
				Size:     1 + r.Intn(16),
				T:        1000,
				O:        model.Time(r.Intn(100)),
				J:        model.Time(r.Intn(20)),
				Priority: i,
				Trans:    1,
			}
		}
		narrow := fig4Params() // S_G:20 S_1:20, period 40
		wide := fig4Params()
		wide.Round.Slots[0].Length = 30 // S_G grows...
		wide.Round.Slots[1].Length = 10 // ...S_1 shrinks: same period
		rn, err := AnalyzeOutTTP(msgs, narrow)
		if err != nil {
			return false
		}
		rw, err := AnalyzeOutTTP(msgs, wide)
		if err != nil {
			return false
		}
		for i := range msgs {
			if rw[i].W > rn[i].W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
