package repro

import (
	"net/http"

	"repro/internal/service"
	"repro/internal/store"
)

// Wire-level request/response types of the synthesis service: see
// package service for the full documentation. Systems travel in the
// SaveSystem JSON encoding, configurations in the SaveConfig encoding,
// so files produced by the CLI tools are valid wire payloads verbatim.
type (
	// Service fronts Solver sessions with a wire-format job model: a
	// bounded queue of asynchronous synthesis jobs, a fingerprint-keyed
	// LRU of cached sessions, progress streaming and graceful drain.
	Service = service.Service
	// ServiceOptions tunes worker counts, queue depth and cache size.
	ServiceOptions = service.Options
	// SynthesisRequest asks for an asynchronous configuration synthesis.
	SynthesisRequest = service.SynthesisRequest
	// ExploreRequest asks for an asynchronous design-space exploration
	// (POST /v1/explore); the job result carries a Pareto front of
	// FrontPoint instead of a single configuration.
	ExploreRequest = service.ExploreRequest
	// FrontPoint is the wire form of one Pareto-front point.
	FrontPoint = service.FrontPoint
	// JobKind distinguishes synthesize and explore jobs.
	JobKind = service.JobKind
	// StrategiesResponse / StrategyInfo answer GET /v1/strategies, the
	// machine-readable synthesis strategy listing.
	StrategiesResponse = service.StrategiesResponse
	StrategyInfo       = service.StrategyInfo
	// SubmitResponse acknowledges an accepted job with its poll URLs.
	SubmitResponse = service.SubmitResponse
	// JobStatus / JobResult / JobState describe a job's lifecycle; the
	// result configuration feeds LoadConfig unchanged.
	JobStatus = service.JobStatus
	JobResult = service.JobResult
	JobState  = service.JobState
	// ProgressEvent is the wire form of a Solver progress event.
	ProgressEvent = service.ProgressEvent
	// AnalysisRequest / AnalysisResponse / AnalysisOutcome /
	// AnalysisSummary drive the synchronous batch-analysis endpoint.
	AnalysisRequest  = service.AnalysisRequest
	AnalysisResponse = service.AnalysisResponse
	AnalysisOutcome  = service.AnalysisOutcome
	AnalysisSummary  = service.AnalysisSummary
	// ServiceStats is the health-endpoint snapshot; its Store section
	// reports the durability counters when a Store is configured.
	ServiceStats = service.Stats

	// Store is the service's pluggable durability seam: a job-lifecycle
	// journal plus a persistent result store. FileStore is the built-in
	// file-backed implementation; ServiceOptions.Store accepts any
	// implementation.
	Store = store.Store
	// StoreOptions tunes a FileStore (segment size, result TTL, clock).
	StoreOptions = store.Options
	// FileStore is the file-backed Store: an append-only CRC-framed
	// journal with segment rotation and crash-safe compaction, and a
	// TTL'd result directory keyed by request key.
	FileStore = store.FileStore
	// StoreStats snapshots a store's durability counters.
	StoreStats = store.Stats
	// ReplayReport summarizes journal recovery, including torn tails.
	ReplayReport = store.ReplayReport
)

// Job lifecycle states.
const (
	JobQueued   = service.StateQueued
	JobRunning  = service.StateRunning
	JobDone     = service.StateDone
	JobCanceled = service.StateCanceled
	JobFailed   = service.StateFailed
)

// Job kinds sharing the service queue.
const (
	JobKindSynthesize = service.KindSynthesize
	JobKindExplore    = service.KindExplore
)

// ListStrategies builds the GET /v1/strategies listing from
// Strategies(), so wire clients never hardcode strategy names.
func ListStrategies() StrategiesResponse { return service.ListStrategies() }

// Service submission errors.
var (
	// ErrQueueFull rejects a Submit when the bounded job queue is at
	// capacity (HTTP 429).
	ErrQueueFull = service.ErrQueueFull
	// ErrDraining rejects a Submit during graceful shutdown (HTTP 503).
	ErrDraining = service.ErrDraining
	// ErrUnknownJob reports a job ID the service never issued.
	ErrUnknownJob = service.ErrUnknownJob
)

// NewService starts a synthesis service: JobWorkers runner goroutines
// execute queued jobs on cached Solver sessions. Stop it with
// Service.Drain (graceful, best-so-far) or Service.Close. With a Store
// configured the service journals every job transition, persists
// finished results, and replays unfinished jobs after a crash.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// OpenStore opens (or creates) the file-backed durability store rooted
// at dir: journal segments under dir/journal, results under
// dir/results. Recovery happens here — torn tails are truncated and
// reported, never silently dropped. Close the store after the service
// has drained.
func OpenStore(dir string, opts StoreOptions) (*FileStore, error) { return store.Open(dir, opts) }

// NewServiceHandler exposes a Service over HTTP: POST /v1/synthesize,
// GET /v1/jobs/{id}, GET /v1/jobs/{id}/events (SSE), DELETE
// /v1/jobs/{id}, POST /v1/analyze and GET /healthz. cmd/mcs-serve is
// the daemon around it; embedders mount it on their own server.
func NewServiceHandler(s *Service) http.Handler { return service.NewHandler(s) }

// Fingerprint returns the canonical content hash of a system: a
// SHA-256 over every semantic field (names excluded), stable across
// JSON round trips. The service keys its Solver cache on it.
func Fingerprint(sys *System) (string, error) { return sys.Fingerprint() }
