#!/usr/bin/env bash
# The repo's one static gate: formatting, go vet, and the custom
# determinism/concurrency analyzers (cmd/mcs-lint). CI's lint job and
# the README quickstart both run exactly this script, so local runs and
# CI can never drift.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== mcs-lint =="
go run ./cmd/mcs-lint ./...

echo "static gate clean"
