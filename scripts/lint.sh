#!/usr/bin/env bash
# The repo's one static gate: formatting, go vet, and the custom
# determinism/concurrency analyzers (cmd/mcs-lint). CI's lint job and
# the README quickstart both run exactly this script, so local runs and
# CI can never drift.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== mcs-lint =="
# The JSON findings land in mcs-lint.json (CI uploads it as an
# artifact); the human-readable rendering with call chains follows on
# a failure so the log stays greppable.
if ! go run ./cmd/mcs-lint -json ./... > mcs-lint.json; then
  echo "mcs-lint findings:" >&2
  go run ./cmd/mcs-lint ./... >&2 || true
  exit 1
fi

echo "static gate clean"
