#!/usr/bin/env python3
"""Convert `go test -bench` output into a JSON benchmark artifact.

Reads benchmark output on stdin, writes JSON to the file named by the
first argument. Benchmarks named *Cold/*Cached are paired into a
comparison section so the artifact directly answers "what does the
cached Solver session buy over cold starts", and every benchmark also
carries requests_per_sec (1e9 / ns_per_op) so service artifacts
(BENCH_service.json) directly report throughput.

Custom metrics emitted via testing.B.ReportMetric (e.g. the DSE
benchmarks' front_size, hypervolume and evaluations) are collected
verbatim, so BENCH_dse.json reports the front quality next to the
wall-clock per worker count.

Benchmarks named *DeltaOff/*DeltaOn are likewise paired into a
delta_speedup section — the measured payoff of the incremental
delta-evaluation engine, with the engine's delta_hit_rate metric
carried alongside — so BENCH_solver.json and BENCH_dse.json directly
answer "what does delta evaluation buy and how often does it hit".
"""
import json
import re
import sys

BENCH = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$")
METRIC = re.compile(r"([\d.eE+-]+) ([\w/]+)")


def main() -> int:
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_solver.json"
    results = {}
    for line in sys.stdin:
        m = BENCH.match(line)
        if not m:
            continue
        ns = float(m.group(3))
        entry = {
            "iterations": int(m.group(2)),
            "ns_per_op": ns,
            "requests_per_sec": round(1e9 / ns, 3) if ns else None,
        }
        for value, unit in METRIC.findall(m.group(4)):
            entry[unit.replace("/", "_per_")] = float(value)
        results[m.group(1)] = entry
    comparisons = {}
    for name, cold in results.items():
        if not name.endswith("Cold"):
            continue
        cached = results.get(name[: -len("Cold")] + "Cached")
        if not cached:
            continue
        comparisons[name[len("Benchmark"):-len("Cold")]] = {
            "cold_ns_per_op": cold["ns_per_op"],
            "cached_ns_per_op": cached["ns_per_op"],
            "speedup": round(cold["ns_per_op"] / cached["ns_per_op"], 3)
            if cached["ns_per_op"]
            else None,
        }
    delta = {}
    for name, off in results.items():
        if not name.endswith("DeltaOff"):
            continue
        on = results.get(name[: -len("Off")] + "On")
        if not on:
            continue
        delta[name[len("Benchmark"):-len("DeltaOff")]] = {
            "off_ns_per_op": off["ns_per_op"],
            "on_ns_per_op": on["ns_per_op"],
            "speedup": round(off["ns_per_op"] / on["ns_per_op"], 3)
            if on["ns_per_op"]
            else None,
            "delta_hit_rate": on.get("delta_hit_rate"),
            "delta_stage_hit_rate": on.get("delta_stage_hit_rate"),
        }
    with open(out, "w") as f:
        json.dump(
            {
                "benchmarks": results,
                "cold_vs_cached": comparisons,
                "delta_speedup": delta,
            },
            f,
            indent=2,
        )
        f.write("\n")
    print(
        f"wrote {out}: {len(results)} benchmarks, {len(comparisons)} comparisons, "
        f"{len(delta)} delta pairs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
