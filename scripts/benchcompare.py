#!/usr/bin/env python3
"""Gate benchmark regressions against the previous CI artifact.

Usage: benchcompare.py PREVIOUS.json CURRENT.json [threshold]

Compares the ns_per_op of every benchmark present in both artifacts
(the JSON written by benchjson.py) and fails — exit 1 — when any
benchmark regressed by more than the threshold (default 0.10 = +10%
wall clock). Improvements and new benchmarks pass silently; benchmarks
that disappeared are reported but do not fail the gate (renames happen).

The gate is tolerant of a missing or unreadable previous artifact: the
first run on a branch, an expired artifact or a changed schema all
print a notice and exit 0, so the gate can never wedge CI on history
it does not have. CI wall clocks are noisy, so the benchmarks behind
this gate should use fixed -benchtime iteration counts and the
threshold should stay comfortably above run-to-run jitter.
"""
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return None, str(e)
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict):
        return None, "no 'benchmarks' section"
    return benches, None


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    prev_path, cur_path = sys.argv[1], sys.argv[2]
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.10

    prev, err = load(prev_path)
    if prev is None:
        print(f"benchcompare: no previous artifact ({prev_path}: {err}); skipping gate")
        return 0
    cur, err = load(cur_path)
    if cur is None:
        print(f"benchcompare: current artifact unreadable ({cur_path}: {err})", file=sys.stderr)
        return 1

    regressions = []
    for name, was in sorted(prev.items()):
        now = cur.get(name)
        if now is None:
            print(f"  gone: {name} (was {was.get('ns_per_op')} ns/op)")
            continue
        old_ns, new_ns = was.get("ns_per_op"), now.get("ns_per_op")
        if not old_ns or not new_ns:
            continue
        change = new_ns / old_ns - 1.0
        marker = "REGRESSED" if change > threshold else "ok"
        print(f"  {marker:>9}: {name}  {old_ns:.0f} -> {new_ns:.0f} ns/op ({change:+.1%})")
        if change > threshold:
            regressions.append((name, change))

    if regressions:
        print(
            f"benchcompare: {len(regressions)} benchmark(s) regressed more than "
            f"{threshold:.0%}:",
            file=sys.stderr,
        )
        for name, change in regressions:
            print(f"  {name}: {change:+.1%}", file=sys.stderr)
        return 1
    print(f"benchcompare: {len(cur)} benchmarks within {threshold:.0%} of {prev_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
