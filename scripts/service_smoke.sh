#!/usr/bin/env bash
# Service integration smoke test: build mcs-serve with the race
# detector, start it, run a scripted submit -> poll -> result round
# trip plus an SSE read and a synchronous analyze, then SIGTERM it and
# assert a clean (exit 0) drain. CI runs this as the service job;
# locally: ./scripts/service_smoke.sh
set -euo pipefail

PORT="${PORT:-8931}"
BASE="http://127.0.0.1:$PORT"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "== build (race) =="
go build -race -o "$WORKDIR/mcs-serve" ./cmd/mcs-serve
go build -o "$WORKDIR/mcs-gen" ./cmd/mcs-gen
go build -race -o "$WORKDIR/mcs-dse" ./cmd/mcs-dse

echo "== start =="
"$WORKDIR/mcs-serve" -addr "127.0.0.1:$PORT" -workers 2 -job-workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== submit =="
"$WORKDIR/mcs-gen" -nodes 2 -seed 7 -procs-per-node 6 -o "$WORKDIR/sys.json"
jq '{system: ., strategy: "or"}' "$WORKDIR/sys.json" >"$WORKDIR/req.json"
SUB="$(curl -fsS -d @"$WORKDIR/req.json" "$BASE/v1/synthesize")"
ID="$(echo "$SUB" | jq -re .id)"
echo "job $ID"

echo "== poll =="
STATE=""
for _ in $(seq 1 300); do
  ST="$(curl -fsS "$BASE/v1/jobs/$ID")"
  STATE="$(echo "$ST" | jq -re .state)"
  [ "$STATE" = "done" ] && break
  [ "$STATE" = "failed" ] && { echo "job failed: $ST" >&2; exit 1; }
  sleep 0.2
done
[ "$STATE" = "done" ] || { echo "job stuck in state $STATE" >&2; exit 1; }
echo "$ST" | jq -e '.result.config.round.slots | length > 0' >/dev/null
echo "$ST" | jq -e '.result.analysis | has("schedulable")' >/dev/null
echo "result: $(echo "$ST" | jq -c '.result.analysis')"

echo "== cache hit =="
SUB2="$(curl -fsS -d @"$WORKDIR/req.json" "$BASE/v1/synthesize")"
ID2="$(echo "$SUB2" | jq -re .id)"
for _ in $(seq 1 300); do
  ST2="$(curl -fsS "$BASE/v1/jobs/$ID2")"
  [ "$(echo "$ST2" | jq -re .state)" = "done" ] && break
  sleep 0.2
done
echo "$ST2" | jq -e '.result.cacheHit == true' >/dev/null
# Bit-identical configurations from the cold and the cached job.
diff <(echo "$ST" | jq -S .result.config) <(echo "$ST2" | jq -S .result.config) >/dev/null \
  || { echo "cache-hit config differs from cold config" >&2; exit 1; }

echo "== SSE =="
EVENTS="$(curl -fsS -N --max-time 60 "$BASE/v1/jobs/$ID/events")"
echo "$EVENTS" | grep -q "^event: done" || { echo "no done event on SSE stream" >&2; exit 1; }

echo "== analyze =="
jq '{system: .}' "$WORKDIR/sys.json" | curl -fsS -d @- "$BASE/v1/analyze" \
  | jq -e '.results[0].analysis | has("buffersTotal")' >/dev/null

echo "== strategies =="
STRATS="$(curl -fsS "$BASE/v1/strategies")"
echo "$STRATS" | jq -e '.strategies | length >= 5' >/dev/null
echo "$STRATS" | jq -re '.strategies[].name' | grep -qx "sas" \
  || { echo "strategy listing misses sas: $STRATS" >&2; exit 1; }

echo "== explore (Pareto front job) =="
jq '{system: ., population: 6, generations: 2, seed: 5}' "$WORKDIR/sys.json" >"$WORKDIR/dsereq.json"
DSUB="$(curl -fsS -d @"$WORKDIR/dsereq.json" "$BASE/v1/explore")"
DID="$(echo "$DSUB" | jq -re .id)"
echo "$DSUB" | jq -e '.kind == "explore"' >/dev/null
for _ in $(seq 1 300); do
  DST="$(curl -fsS "$BASE/v1/jobs/$DID")"
  DSTATE="$(echo "$DST" | jq -re .state)"
  [ "$DSTATE" = "done" ] && break
  [ "$DSTATE" = "failed" ] && { echo "explore job failed: $DST" >&2; exit 1; }
  sleep 0.2
done
[ "$DSTATE" = "done" ] || { echo "explore job stuck in state $DSTATE" >&2; exit 1; }
echo "$DST" | jq -e '.result.front | length > 0' >/dev/null
echo "$DST" | jq -e '.result.front[0].config.round.slots | length > 0' >/dev/null
echo "explore front: $(echo "$DST" | jq -c '[.result.front[] | {delta, buffers, bandwidth}]')"

echo "== explore cancel keeps partial front =="
jq '{system: ., population: 8, generations: 1000000, seed: 5}' "$WORKDIR/sys.json" >"$WORKDIR/dselong.json"
LID="$(curl -fsS -d @"$WORKDIR/dselong.json" "$BASE/v1/explore" | jq -re .id)"
# Wait for the first progress event so the job is provably running.
curl -fsS -N --max-time 30 "$BASE/v1/jobs/$LID/events" | head -2 >/dev/null || true
curl -fsS -X DELETE "$BASE/v1/jobs/$LID" >/dev/null
for _ in $(seq 1 300); do
  LST="$(curl -fsS "$BASE/v1/jobs/$LID")"
  LSTATE="$(echo "$LST" | jq -re .state)"
  [ "$LSTATE" = "canceled" ] && break
  sleep 0.2
done
[ "$LSTATE" = "canceled" ] || { echo "canceled explore job stuck in state $LSTATE" >&2; exit 1; }
echo "$LST" | jq -e '.result.partial == true' >/dev/null
echo "$LST" | jq -e '.result.front | length > 0' >/dev/null

echo "== mcs-dse CLI =="
"$WORKDIR/mcs-dse" -in "$WORKDIR/sys.json" -population 6 -generations 2 -workers 2 \
  -out "$WORKDIR/front.csv" -json "$WORKDIR/front.json" >/dev/null
head -1 "$WORKDIR/front.csv" | grep -qx "delta,s_total,bus_bandwidth,schedulable" \
  || { echo "front.csv header wrong" >&2; exit 1; }
[ "$(wc -l < "$WORKDIR/front.csv")" -ge 2 ] || { echo "front.csv has no data rows" >&2; exit 1; }
jq -e 'length > 0 and .[0].config.round.slots' "$WORKDIR/front.json" >/dev/null

echo "== drain (SIGTERM) =="
kill -TERM "$SERVE_PID"
EXIT=0
wait "$SERVE_PID" || EXIT=$?
[ "$EXIT" -eq 0 ] || { echo "mcs-serve exited $EXIT after SIGTERM" >&2; exit 1; }
echo "service smoke test passed"
