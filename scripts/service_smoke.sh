#!/usr/bin/env bash
# Service integration smoke test: build mcs-serve with the race
# detector, start it, run a scripted submit -> poll -> result round
# trip plus an SSE read and a synchronous analyze, then SIGTERM it and
# assert a clean (exit 0) drain. A second, durable instance then proves
# crash recovery: jobs submitted, kill -9 mid-synthesis, restart with
# the same -data-dir, finished results served byte-identically and
# unfinished jobs re-run. CI runs this as the service job; locally:
# ./scripts/service_smoke.sh
set -euo pipefail

PORT="${PORT:-8931}"
BASE="http://127.0.0.1:$PORT"
WORKDIR="$(mktemp -d)"
SERVE_PID=""
DUR_PID=""
trap 'kill -9 "$SERVE_PID" "$DUR_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "== build (race) =="
go build -race -o "$WORKDIR/mcs-serve" ./cmd/mcs-serve
go build -o "$WORKDIR/mcs-gen" ./cmd/mcs-gen
go build -race -o "$WORKDIR/mcs-dse" ./cmd/mcs-dse

echo "== start =="
"$WORKDIR/mcs-serve" -addr "127.0.0.1:$PORT" -workers 2 -job-workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== metrics baseline =="
M0="$(curl -fsS "$BASE/metrics")"
echo "$M0" | grep -q '^mcs_queue_capacity' || { echo "exposition missing queue gauges" >&2; exit 1; }
if echo "$M0" | grep -q '^mcs_jobs_total'; then
  echo "baseline exposition already counts finished jobs" >&2; exit 1
fi

echo "== submit =="
"$WORKDIR/mcs-gen" -nodes 2 -seed 7 -procs-per-node 6 -o "$WORKDIR/sys.json"
jq '{system: ., strategy: "or"}' "$WORKDIR/sys.json" >"$WORKDIR/req.json"
SUB="$(curl -fsS -d @"$WORKDIR/req.json" "$BASE/v1/synthesize")"
ID="$(echo "$SUB" | jq -re .id)"
echo "job $ID"

echo "== poll =="
STATE=""
for _ in $(seq 1 300); do
  ST="$(curl -fsS "$BASE/v1/jobs/$ID")"
  STATE="$(echo "$ST" | jq -re .state)"
  [ "$STATE" = "done" ] && break
  [ "$STATE" = "failed" ] && { echo "job failed: $ST" >&2; exit 1; }
  sleep 0.2
done
[ "$STATE" = "done" ] || { echo "job stuck in state $STATE" >&2; exit 1; }
echo "$ST" | jq -e '.result.config.round.slots | length > 0' >/dev/null
echo "$ST" | jq -e '.result.analysis | has("schedulable")' >/dev/null
echo "result: $(echo "$ST" | jq -c '.result.analysis')"

echo "== cache hit =="
SUB2="$(curl -fsS -d @"$WORKDIR/req.json" "$BASE/v1/synthesize")"
ID2="$(echo "$SUB2" | jq -re .id)"
for _ in $(seq 1 300); do
  ST2="$(curl -fsS "$BASE/v1/jobs/$ID2")"
  [ "$(echo "$ST2" | jq -re .state)" = "done" ] && break
  sleep 0.2
done
echo "$ST2" | jq -e '.result.cacheHit == true' >/dev/null
# Bit-identical configurations from the cold and the cached job.
diff <(echo "$ST" | jq -S .result.config) <(echo "$ST2" | jq -S .result.config) >/dev/null \
  || { echo "cache-hit config differs from cold config" >&2; exit 1; }

echo "== metrics moved =="
M1="$(curl -fsS "$BASE/metrics")"
echo "$M1" | grep -q '^mcs_jobs_total{kind="synthesize",state="done"} 2$' \
  || { echo "mcs_jobs_total did not count the two finished jobs" >&2; exit 1; }
echo "$M1" | grep -q '^mcs_job_duration_seconds_bucket' \
  || { echo "mcs_job_duration_seconds histogram missing" >&2; exit 1; }
echo "$M1" | grep -q '^mcs_solver_cache_hits_total 1$' \
  || { echo "mcs_solver_cache_hits_total did not count the warm job" >&2; exit 1; }
echo "$M1" | grep -q '^mcs_engine_tasks_total' \
  || { echo "engine pool counters missing" >&2; exit 1; }

echo "== trace =="
TR="$(curl -fsS "$BASE/v1/jobs/$ID/trace")"
echo "$TR" | jq -e '.root.name == "job" and .root.endUnixNano > 0' >/dev/null \
  || { echo "trace root missing or not closed: $TR" >&2; exit 1; }
echo "$TR" | jq -e '[.root.children[].name] | (index("queue") != null) and (index("solver") != null) and (index("run") != null)' >/dev/null \
  || { echo "trace misses lifecycle spans: $TR" >&2; exit 1; }
echo "$TR" | jq -e '.records | length > 0' >/dev/null
echo "trace spans: $(echo "$TR" | jq -c '[.root.children[].name]')"

echo "== SSE =="
EVENTS="$(curl -fsS -N --max-time 60 "$BASE/v1/jobs/$ID/events")"
echo "$EVENTS" | grep -q "^event: done" || { echo "no done event on SSE stream" >&2; exit 1; }

echo "== analyze =="
jq '{system: .}' "$WORKDIR/sys.json" | curl -fsS -d @- "$BASE/v1/analyze" \
  | jq -e '.results[0].analysis | has("buffersTotal")' >/dev/null

echo "== strategies =="
STRATS="$(curl -fsS "$BASE/v1/strategies")"
echo "$STRATS" | jq -e '.strategies | length >= 5' >/dev/null
echo "$STRATS" | jq -re '.strategies[].name' | grep -qx "sas" \
  || { echo "strategy listing misses sas: $STRATS" >&2; exit 1; }

echo "== explore (Pareto front job) =="
jq '{system: ., population: 6, generations: 2, seed: 5}' "$WORKDIR/sys.json" >"$WORKDIR/dsereq.json"
DSUB="$(curl -fsS -d @"$WORKDIR/dsereq.json" "$BASE/v1/explore")"
DID="$(echo "$DSUB" | jq -re .id)"
echo "$DSUB" | jq -e '.kind == "explore"' >/dev/null
for _ in $(seq 1 300); do
  DST="$(curl -fsS "$BASE/v1/jobs/$DID")"
  DSTATE="$(echo "$DST" | jq -re .state)"
  [ "$DSTATE" = "done" ] && break
  [ "$DSTATE" = "failed" ] && { echo "explore job failed: $DST" >&2; exit 1; }
  sleep 0.2
done
[ "$DSTATE" = "done" ] || { echo "explore job stuck in state $DSTATE" >&2; exit 1; }
echo "$DST" | jq -e '.result.front | length > 0' >/dev/null
echo "$DST" | jq -e '.result.front[0].config.round.slots | length > 0' >/dev/null
echo "explore front: $(echo "$DST" | jq -c '[.result.front[] | {delta, buffers, bandwidth}]')"

echo "== explore cancel keeps partial front =="
jq '{system: ., population: 8, generations: 1000000, seed: 5}' "$WORKDIR/sys.json" >"$WORKDIR/dselong.json"
LID="$(curl -fsS -d @"$WORKDIR/dselong.json" "$BASE/v1/explore" | jq -re .id)"
# Wait for the first progress event so the job is provably running.
curl -fsS -N --max-time 30 "$BASE/v1/jobs/$LID/events" | head -2 >/dev/null || true
curl -fsS -X DELETE "$BASE/v1/jobs/$LID" >/dev/null
for _ in $(seq 1 300); do
  LST="$(curl -fsS "$BASE/v1/jobs/$LID")"
  LSTATE="$(echo "$LST" | jq -re .state)"
  [ "$LSTATE" = "canceled" ] && break
  sleep 0.2
done
[ "$LSTATE" = "canceled" ] || { echo "canceled explore job stuck in state $LSTATE" >&2; exit 1; }
echo "$LST" | jq -e '.result.partial == true' >/dev/null
echo "$LST" | jq -e '.result.front | length > 0' >/dev/null

echo "== mcs-dse CLI =="
"$WORKDIR/mcs-dse" -in "$WORKDIR/sys.json" -population 6 -generations 2 -workers 2 \
  -out "$WORKDIR/front.csv" -json "$WORKDIR/front.json" >/dev/null
head -1 "$WORKDIR/front.csv" | grep -qx "delta,s_total,bus_bandwidth,schedulable" \
  || { echo "front.csv header wrong" >&2; exit 1; }
[ "$(wc -l < "$WORKDIR/front.csv")" -ge 2 ] || { echo "front.csv has no data rows" >&2; exit 1; }
jq -e 'length > 0 and .[0].config.round.slots' "$WORKDIR/front.json" >/dev/null

echo "== drain (SIGTERM) =="
kill -TERM "$SERVE_PID"
EXIT=0
wait "$SERVE_PID" || EXIT=$?
SERVE_PID=""
[ "$EXIT" -eq 0 ] || { echo "mcs-serve exited $EXIT after SIGTERM" >&2; exit 1; }

echo "== durability: start with -data-dir =="
DPORT=$((PORT + 1))
DBASE="http://127.0.0.1:$DPORT"
DATADIR="$WORKDIR/data"
start_durable() {
  "$WORKDIR/mcs-serve" -addr "127.0.0.1:$DPORT" -workers 2 -job-workers 1 \
    -data-dir "$DATADIR" &
  DUR_PID=$!
  for _ in $(seq 1 100); do
    curl -fsS "$DBASE/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS "$DBASE/healthz" >/dev/null
}
start_durable

echo "== durability: finish one job, crash another mid-synthesis =="
AID="$(curl -fsS -d @"$WORKDIR/req.json" "$DBASE/v1/synthesize" | jq -re .id)"
for _ in $(seq 1 300); do
  AST="$(curl -fsS "$DBASE/v1/jobs/$AID")"
  [ "$(echo "$AST" | jq -re .state)" = "done" ] && break
  sleep 0.2
done
[ "$(echo "$AST" | jq -re .state)" = "done" ] || { echo "durable job stuck: $AST" >&2; exit 1; }
# A huge exploration that cannot finish before the crash; wait for its
# first progress event so it is provably mid-synthesis when we kill -9.
BID="$(curl -fsS -d @"$WORKDIR/dselong.json" "$DBASE/v1/explore" | jq -re .id)"
curl -fsS -N --max-time 30 "$DBASE/v1/jobs/$BID/events" | head -2 >/dev/null || true
kill -9 "$DUR_PID"
wait "$DUR_PID" 2>/dev/null || true
DUR_PID=""

echo "== durability: restart, replay, serve byte-identical =="
start_durable
HEALTH="$(curl -fsS "$DBASE/healthz")"
echo "store after replay: $(echo "$HEALTH" | jq -c .store)"
echo "$HEALTH" | jq -e '.store.replayedJobs >= 2' >/dev/null \
  || { echo "replay lost jobs: $HEALTH" >&2; exit 1; }
echo "$HEALTH" | jq -e '.store.requeuedJobs >= 1' >/dev/null \
  || { echo "crashed mid-run job not requeued: $HEALTH" >&2; exit 1; }
# The durable instance's exposition covers the store/journal plane.
curl -fsS "$DBASE/metrics" | grep -q '^mcs_store_segments [1-9]' \
  || { echo "store metrics missing from durable instance" >&2; exit 1; }
# The finished job survives the kill -9 with a byte-identical result.
RST="$(curl -fsS "$DBASE/v1/jobs/$AID")"
echo "$RST" | jq -e '.state == "done" and .result.persistentHit == true' >/dev/null \
  || { echo "finished job not served durably after crash: $RST" >&2; exit 1; }
diff <(echo "$AST" | jq -S .result.config) <(echo "$RST" | jq -S .result.config) >/dev/null \
  || { echo "post-crash config differs from pre-crash config" >&2; exit 1; }
diff <(echo "$AST" | jq -S .result.analysis) <(echo "$RST" | jq -S .result.analysis) >/dev/null \
  || { echo "post-crash analysis differs from pre-crash analysis" >&2; exit 1; }
echo "== durability: crashed mid-run job re-runs =="
BSTATE="$(curl -fsS "$DBASE/v1/jobs/$BID" | jq -re .state)"
case "$BSTATE" in queued|running) ;; *) echo "requeued job in state $BSTATE" >&2; exit 1;; esac
# Proof of life after replay: it streams progress again; then cancel it
# (it was sized never to finish, and it holds the only job runner) and
# keep the partial front.
curl -fsS -N --max-time 30 "$DBASE/v1/jobs/$BID/events" | head -2 >/dev/null || true
curl -fsS -X DELETE "$DBASE/v1/jobs/$BID" >/dev/null
for _ in $(seq 1 300); do
  BST="$(curl -fsS "$DBASE/v1/jobs/$BID")"
  [ "$(echo "$BST" | jq -re .state)" = "canceled" ] && break
  sleep 0.2
done
echo "$BST" | jq -e '.state == "canceled" and .result.partial == true' >/dev/null \
  || { echo "re-run job did not cancel to a partial front: $BST" >&2; exit 1; }

echo "== durability: duplicate submit is a persistent hit =="
# Resubmitting the identical request is a persistent cache hit, again
# byte-identical to the pre-crash run.
CID="$(curl -fsS -d @"$WORKDIR/req.json" "$DBASE/v1/synthesize" | jq -re .id)"
for _ in $(seq 1 300); do
  CST="$(curl -fsS "$DBASE/v1/jobs/$CID")"
  [ "$(echo "$CST" | jq -re .state)" = "done" ] && break
  sleep 0.2
done
echo "$CST" | jq -e '.result.persistentHit == true' >/dev/null \
  || { echo "duplicate submit after crash recomputed instead of hitting the store" >&2; exit 1; }
diff <(echo "$AST" | jq -S .result.config) <(echo "$CST" | jq -S .result.config) >/dev/null \
  || { echo "persistent-hit config differs from pre-crash config" >&2; exit 1; }

echo "== durability: drain (SIGTERM) =="
kill -TERM "$DUR_PID"
EXIT=0
wait "$DUR_PID" || EXIT=$?
DUR_PID=""
[ "$EXIT" -eq 0 ] || { echo "durable mcs-serve exited $EXIT after SIGTERM" >&2; exit 1; }
echo "service smoke test passed"
