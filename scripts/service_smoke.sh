#!/usr/bin/env bash
# Service integration smoke test: build mcs-serve with the race
# detector, start it, run a scripted submit -> poll -> result round
# trip plus an SSE read and a synchronous analyze, then SIGTERM it and
# assert a clean (exit 0) drain. CI runs this as the service job;
# locally: ./scripts/service_smoke.sh
set -euo pipefail

PORT="${PORT:-8931}"
BASE="http://127.0.0.1:$PORT"
WORKDIR="$(mktemp -d)"
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "== build (race) =="
go build -race -o "$WORKDIR/mcs-serve" ./cmd/mcs-serve
go build -o "$WORKDIR/mcs-gen" ./cmd/mcs-gen

echo "== start =="
"$WORKDIR/mcs-serve" -addr "127.0.0.1:$PORT" -workers 2 -job-workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== submit =="
"$WORKDIR/mcs-gen" -nodes 2 -seed 7 -procs-per-node 6 -o "$WORKDIR/sys.json"
jq '{system: ., strategy: "or"}' "$WORKDIR/sys.json" >"$WORKDIR/req.json"
SUB="$(curl -fsS -d @"$WORKDIR/req.json" "$BASE/v1/synthesize")"
ID="$(echo "$SUB" | jq -re .id)"
echo "job $ID"

echo "== poll =="
STATE=""
for _ in $(seq 1 300); do
  ST="$(curl -fsS "$BASE/v1/jobs/$ID")"
  STATE="$(echo "$ST" | jq -re .state)"
  [ "$STATE" = "done" ] && break
  [ "$STATE" = "failed" ] && { echo "job failed: $ST" >&2; exit 1; }
  sleep 0.2
done
[ "$STATE" = "done" ] || { echo "job stuck in state $STATE" >&2; exit 1; }
echo "$ST" | jq -e '.result.config.round.slots | length > 0' >/dev/null
echo "$ST" | jq -e '.result.analysis | has("schedulable")' >/dev/null
echo "result: $(echo "$ST" | jq -c '.result.analysis')"

echo "== cache hit =="
SUB2="$(curl -fsS -d @"$WORKDIR/req.json" "$BASE/v1/synthesize")"
ID2="$(echo "$SUB2" | jq -re .id)"
for _ in $(seq 1 300); do
  ST2="$(curl -fsS "$BASE/v1/jobs/$ID2")"
  [ "$(echo "$ST2" | jq -re .state)" = "done" ] && break
  sleep 0.2
done
echo "$ST2" | jq -e '.result.cacheHit == true' >/dev/null
# Bit-identical configurations from the cold and the cached job.
diff <(echo "$ST" | jq -S .result.config) <(echo "$ST2" | jq -S .result.config) >/dev/null \
  || { echo "cache-hit config differs from cold config" >&2; exit 1; }

echo "== SSE =="
EVENTS="$(curl -fsS -N --max-time 60 "$BASE/v1/jobs/$ID/events")"
echo "$EVENTS" | grep -q "^event: done" || { echo "no done event on SSE stream" >&2; exit 1; }

echo "== analyze =="
jq '{system: .}' "$WORKDIR/sys.json" | curl -fsS -d @- "$BASE/v1/analyze" \
  | jq -e '.results[0].analysis | has("buffersTotal")' >/dev/null

echo "== drain (SIGTERM) =="
kill -TERM "$SERVE_PID"
EXIT=0
wait "$SERVE_PID" || EXIT=$?
[ "$EXIT" -eq 0 ] || { echo "mcs-serve exited $EXIT after SIGTERM" >&2; exit 1; }
echo "service smoke test passed"
