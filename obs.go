package repro

import (
	"repro/internal/obs"
	"repro/internal/service"
)

// Observability surface: a zero-dependency metrics registry with
// Prometheus text exposition, and per-job trace span trees. Both are
// opt-in through ServiceOptions (Metrics, Tracing, Logger); disabled
// they cost nothing — the nil registry's instruments and the nil trace
// are allocation-free no-ops. All observability timestamps come from
// the service's injected clock, so the deterministic layers stay
// wallclock-free and results never depend on whether instrumentation
// is attached.
type (
	// MetricsRegistry is a concurrent registry of counters, gauges and
	// fixed-bucket histograms; WritePrometheus renders it
	// deterministically (sorted families, series and buckets).
	MetricsRegistry = obs.Registry
	// Trace and Span are the recording side of a span tree; embedders
	// (and the differential harness) attach their own traces, the
	// service records one per job when Tracing is on.
	Trace = obs.Trace
	Span  = obs.Span
	// TraceSnapshot is the exported span tree of a job, served on
	// GET /v1/jobs/{id}/trace: queue wait, solver acquisition (and its
	// source), the run phases, persistence — plus the flat
	// sequence-numbered record stream.
	TraceSnapshot = obs.TraceSnapshot
	// SpanSnapshot is one node of a TraceSnapshot.
	SpanSnapshot = obs.SpanSnapshot
	// TraceRecord is one timestamped span-lifecycle event.
	TraceRecord = obs.TraceRecord
	// ObsClock is the observability clock seam; ObsClockFunc adapts a
	// func() time.Time (tests inject fakes; the service adapts its
	// store clock, adding no new wall-clock site).
	ObsClock     = obs.Clock
	ObsClockFunc = obs.ClockFunc
)

// NewMetricsRegistry returns an empty enabled registry for
// ServiceOptions.Metrics. Leave the field nil to disable metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTrace starts a span tree whose root opens immediately; a nil
// clock records zero timestamps (structure without timing).
func NewTrace(clock ObsClock, name string) *Trace { return obs.NewTrace(clock, name) }

// ErrNoTrace reports a job without a recorded trace (tracing disabled,
// or the job was replayed from the journal).
var ErrNoTrace = service.ErrNoTrace
