// Command mcs-dse explores the design space of a two-cluster system
// and reports a Pareto front over three minimized objectives — the
// degree of schedulability delta_Gamma, the total buffer need s_total,
// and the reserved TTP bus bandwidth of the TDMA round — instead of
// the single configuration mcs-synth synthesizes.
//
// The exploration warm-starts from the paper's OS/OR heuristics (so
// the front always weakly dominates their single-objective results),
// then evolves an NSGA-II-style population over the §5.1 design
// transformations. For a fixed -seed the front is bit-identical for
// every -workers value. Ctrl-C cancels the search gracefully and still
// writes the best-so-far front (exit 130).
//
// Examples:
//
//	mcs-gen -nodes 4 -seed 7 -o app.json
//	mcs-dse -in app.json -out front.csv
//	mcs-dse -cruise -generations 20 -json front.json -v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro"
	"repro/internal/cli"
)

const tool = "mcs-dse"

func main() {
	var (
		in          = flag.String("in", "", "input system JSON (from mcs-gen)")
		cruiseFl    = flag.Bool("cruise", false, "use the built-in cruise-controller case study")
		seed        = flag.Int64("seed", 1, "exploration seed (the front is identical for every -workers value)")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel evaluation workers (1 = serial; results are identical)")
		useDelta    = flag.Bool("delta", true, "use the incremental delta-evaluation engine (the front is identical either way)")
		population  = flag.Int("population", 0, "NSGA-II population size (0 = default 16)")
		generations = flag.Int("generations", 0, "exploration generations (0 = default 12)")
		moveBudget  = flag.Int("move-budget", 0, "design transformations sampled per mutation (0 = default 16)")
		maxMut      = flag.Int("max-mutations", 0, "transformations stacked per offspring (0 = default 3)")
		archiveCap  = flag.Int("archive-cap", 0, "Pareto archive bound (0 = default 256)")
		noWarm      = flag.Bool("no-warm-start", false, "skip the OS/OR warm start (pure from-scratch exploration)")
		outCSV      = flag.String("out", "", "write the front as CSV (default stdout table only)")
		outJSON     = flag.String("json", "", "write the front as JSON, configurations included")
		verbose     = flag.Bool("v", false, "stream live progress events")
	)
	flag.Parse()

	sys, err := cli.LoadSystem(*in, *cruiseFl)
	if err != nil {
		cli.Fatal(tool, err)
	}
	opts := []repro.Option{repro.WithSeed(*seed), repro.WithWorkers(*workers), repro.WithDelta(*useDelta)}
	if *verbose {
		opts = append(opts, repro.WithObserver(repro.ObserverFunc(func(p repro.Progress) {
			if p.Phase == "dse" {
				fmt.Fprintf(os.Stderr, "progress %v/%s generation=%d evals=%d front=%d hypervolume=%.0f\n",
					p.Strategy, p.Phase, p.Step, p.Evaluations, p.FrontSize, p.Hypervolume)
				return
			}
			fmt.Fprintf(os.Stderr, "progress %v/%s step=%d evals=%d delta=%d s_total=%d schedulable=%v\n",
				p.Strategy, p.Phase, p.Step, p.Evaluations, p.BestDelta, p.BestBuffers, p.Schedulable)
		})))
	}
	solver, err := repro.NewSolver(sys.Application, sys.Architecture, opts...)
	if err != nil {
		cli.Fatal(tool, err)
	}

	dseOpts := []repro.DSEOption{
		repro.WithPopulation(*population),
		repro.WithGenerations(*generations),
		repro.WithMoveBudget(*moveBudget),
		repro.WithMaxMutations(*maxMut),
		repro.WithArchiveCap(*archiveCap),
	}
	if *noWarm {
		dseOpts = append(dseOpts, repro.WithWarmStart(false))
	}

	ctx, stop := cli.Context()
	defer stop()
	res, err := solver.Explore(ctx, dseOpts...)
	interrupted := cli.Interrupted(tool, err, res != nil && len(res.Front) > 0)

	report(sys, res)
	if err := writeFront(res, *outCSV, *outJSON); err != nil {
		cli.Fatal(tool, err)
	}
	if interrupted {
		cli.Exit()
	}
}

// report prints the front as a table: one row per point, sorted by
// (delta, s_total, bandwidth).
func report(sys *repro.System, res *repro.ExploreResult) {
	fmt.Printf("application %q on %q: %d-point Pareto front, hypervolume %.0f (%d analyses, %d generations)\n",
		sys.Application.Name, sys.Architecture.Name, len(res.Front), res.Hypervolume, res.Evaluations, res.Generations)
	fmt.Printf("%12s %10s %14s  %s\n", "delta", "s_total", "bus_bandwidth", "schedulable")
	for _, p := range res.Front {
		o := p.Objectives()
		fmt.Printf("%12d %10d %14d  %v\n", o.Delta, o.Buffers, o.Bandwidth, p.Schedulable())
	}
}

// writeFront materializes the front through a fresh archive (the
// result points are mutually non-dominated, so the archive reproduces
// them exactly) into the CSV/JSON exports.
func writeFront(res *repro.ExploreResult, csvPath, jsonPath string) error {
	if csvPath == "" && jsonPath == "" {
		return nil
	}
	a := repro.NewParetoArchive(len(res.Front))
	for _, p := range res.Front {
		a.Add(p)
	}
	write := func(path string, render func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("front written to %s\n", path)
		return nil
	}
	if csvPath != "" {
		if err := write(csvPath, a.WriteCSV); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := write(jsonPath, a.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}
