// Command mcs-experiments regenerates the tables and figures of the
// paper's evaluation (§6): the Fig. 4 worked example, the Fig. 9a/9b/9c
// comparisons, the run-time table and the cruise-controller case study.
//
// The defaults are scaled down so a full run finishes in minutes; the
// paper's scale (sizes up to 10 nodes, 30 seeds, hours of simulated
// annealing) is available through the flags:
//
//	mcs-experiments -exp all
//	mcs-experiments -exp fig9a -sizes 2,4,6,8,10 -seeds 30 -sa 2000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/expt"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig4, fig9a, fig9b, fig9c, cruise, runtime, ablation, all")
		sizes    = flag.String("sizes", "", "comma-separated node counts for fig9a/fig9b/runtime (default 2,4)")
		inter    = flag.String("inter", "", "comma-separated message counts for fig9c (default 10,20,30)")
		seeds    = flag.Int("seeds", 0, "applications per point (default 3; the paper uses 30)")
		saIters  = flag.Int("sa", 0, "simulated-annealing iterations per run (default 150)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel sweep workers (1 = serial; results are identical)")
		progress = flag.Bool("progress", false, "print one line per completed step")
	)
	flag.Parse()

	opts := expt.Options{Seeds: *seeds, SAIterations: *saIters, Workers: *workers}
	if *progress {
		opts.Progress = os.Stderr
	}
	var err error
	if opts.Sizes, err = parseInts(*sizes); err != nil {
		fatal(err)
	}
	if opts.Inter, err = parseInts(*inter); err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the sweeps gracefully: running cells finish
	// their current evaluation, queued cells are skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "mcs-experiments: %s: interrupted\n", name)
				os.Exit(130)
			}
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}

	run("fig4", func() error {
		rows, err := expt.Figure4()
		if err != nil {
			return err
		}
		expt.PrintFigure4(os.Stdout, rows)
		return nil
	})
	run("fig9a", func() error {
		rows, err := expt.Fig9a(ctx, opts)
		if err != nil {
			return err
		}
		expt.PrintFig9a(os.Stdout, rows)
		return nil
	})
	run("fig9b", func() error {
		rows, err := expt.Fig9b(ctx, opts)
		if err != nil {
			return err
		}
		expt.PrintFig9b(os.Stdout, rows)
		return nil
	})
	run("fig9c", func() error {
		rows, err := expt.Fig9c(ctx, opts)
		if err != nil {
			return err
		}
		expt.PrintFig9c(os.Stdout, rows)
		return nil
	})
	run("cruise", func() error {
		rows, err := expt.Cruise(ctx, opts)
		if err != nil {
			return err
		}
		expt.PrintCruise(os.Stdout, rows)
		return nil
	})
	run("ablation", func() error {
		rows, err := expt.Ablation(ctx, opts)
		if err != nil {
			return err
		}
		expt.PrintAblation(os.Stdout, rows)
		return nil
	})
	run("runtime", func() error {
		rows, err := expt.Runtimes(ctx, opts)
		if err != nil {
			return err
		}
		saShown := opts.SAIterations
		if saShown == 0 {
			saShown = 150
		}
		expt.PrintRuntimes(os.Stdout, rows, saShown)
		return nil
	})

	switch *exp {
	case "fig4", "fig9a", "fig9b", "fig9c", "cruise", "runtime", "ablation", "all":
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcs-experiments:", err)
	os.Exit(1)
}
