// Command mcs-sim synthesizes a configuration and then executes it in
// the discrete-event simulator, comparing every observation with the
// analysed worst-case bounds (response times, queue occupancies).
//
// Examples:
//
//	mcs-sim -cruise -strategy os -cycles 4 -exec random
//	mcs-sim -in app.json -strategy or
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cli"
)

const tool = "mcs-sim"

func main() {
	var (
		in       = flag.String("in", "", "input system JSON (from mcs-gen)")
		cruiseFl = flag.Bool("cruise", false, "use the built-in cruise-controller case study")
		strategy = flag.String("strategy", "os", "synthesis strategy: sf, os, or, sas, sar")
		cycles   = flag.Int("cycles", 2, "hyper-periods to simulate")
		execMode = flag.String("exec", "worst", "execution times: worst, best, random")
		seed     = flag.Int64("seed", 1, "seed for random execution times")
		trace    = flag.Bool("trace", false, "print the event trace (textual Gantt chart)")
	)
	flag.Parse()

	sys, err := cli.LoadSystem(*in, *cruiseFl)
	if err != nil {
		cli.Fatal(tool, err)
	}
	strat, err := repro.ParseStrategy(*strategy)
	if err != nil {
		cli.Fatal(tool, err)
	}

	// One Solver session drives both the synthesis and the simulation;
	// Ctrl-C cancels whichever is running.
	ctx, stop := cli.Context()
	defer stop()
	solver, err := repro.NewSolver(sys.Application, sys.Architecture, repro.WithStrategy(strat))
	if err != nil {
		cli.Fatal(tool, err)
	}
	res, err := solver.Synthesize(ctx)
	if cli.Interrupted(tool, err, res != nil) {
		fmt.Fprintf(os.Stderr, "mcs-sim: best so far: schedulable=%v delta=%d s_total=%dB (nothing simulated)\n",
			res.Analysis.Schedulable, res.Analysis.Delta, res.Analysis.Buffers.Total)
		cli.Exit()
	}
	if !res.Analysis.Schedulable {
		cli.Fatal(tool, fmt.Errorf("strategy %v did not produce a schedulable system (delta=%d); only executable tables can be simulated", strat, res.Analysis.Delta))
	}
	opts := repro.SimOptions{Cycles: *cycles, Seed: *seed}
	if *trace {
		opts.Trace = os.Stdout
	}
	switch *execMode {
	case "worst":
		opts.Exec = repro.ExecWorstCase
	case "best":
		opts.Exec = repro.ExecBestCase
	case "random":
		opts.Exec = repro.ExecRandom
	default:
		cli.Fatal(tool, fmt.Errorf("unknown -exec %q (want worst, best or random)", *execMode))
	}
	simRes, err := solver.Simulate(ctx, res.Config, res.Analysis, opts)
	if err != nil {
		if cli.Canceled(err) {
			fmt.Fprintln(os.Stderr, "mcs-sim: interrupted during simulation")
			cli.Exit()
		}
		cli.Fatal(tool, err)
	}

	fmt.Printf("simulated %d hyper-periods (%s execution times): %d instances completed\n",
		*cycles, *execMode, simRes.Completed)
	fmt.Printf("deadline misses: %d   violations: %d\n", simRes.DeadlineMisses, len(simRes.Violations))
	for _, v := range simRes.Violations {
		fmt.Println("  VIOLATION:", v)
	}
	fmt.Println("graph responses, simulated vs analysed bound:")
	ok := true
	for g := range sys.Application.Graphs {
		gr := &sys.Application.Graphs[g]
		simR := simRes.GraphWorstResp[g]
		bound := res.Analysis.GraphResp[g]
		mark := "<="
		if simR > bound {
			mark = "EXCEEDS"
			ok = false
		}
		fmt.Printf("  %-12s sim %6d %s bound %6d (D=%d)\n", gr.Name, simR, mark, bound, gr.Deadline)
	}
	fmt.Printf("queue peaks, simulated vs bound: OutCAN %d/%d  OutTTP %d/%d\n",
		simRes.PeakOutCAN, res.Analysis.Buffers.OutCAN,
		simRes.PeakOutTTP, res.Analysis.Buffers.OutTTP)
	if !ok || len(simRes.Violations) > 0 {
		os.Exit(2)
	}
}
