// Command mcs-gen generates random two-cluster applications with the
// workload parameters of the paper's evaluation (§6) and writes them as
// JSON system files consumable by mcs-synth, mcs-sim and mcs-dse.
//
// Batch mode (-n) emits a seeded scenario corpus instead of a single
// system: -n count specs from repro.Corpus — spanning node counts,
// CPU/bus utilization targets, inter-cluster ratios and WCET
// distributions — land in -out as corpus-NNN.json files plus a
// MANIFEST.json recording each file's spec. The same corpus (same
// seeds, same sweep) backs the DSE benchmarks and the property tests,
// so a corpus on disk reproduces exactly what CI explored.
//
// Examples:
//
//	mcs-gen -nodes 4 -seed 7 -o app.json
//	mcs-gen -nodes 4 -inter 30 -o fig9c.json     # fixed gateway traffic
//	mcs-gen -nodes 4 -cpu-util 0.4 -bus-util 0.6 # asymmetric load targets
//	mcs-gen -n 12 -seed 100 -out corpus/         # seeded scenario corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 2, "total node count, split evenly between TTC and ETC (even, >= 2)")
		seed    = flag.Int64("seed", 1, "generator seed (deterministic)")
		perNode = flag.Int("procs-per-node", 40, "processes per node (the paper uses 40)")
		inter   = flag.Int("inter", 0, "force this many inter-cluster messages (0 = natural)")
		util    = flag.Float64("util", 0, "shorthand setting both -cpu-util and -bus-util (0 = per-target defaults)")
		cpuUtil = flag.Float64("cpu-util", 0, "per-node CPU utilization target (0 = -util, else default 0.2)")
		busUtil = flag.Float64("bus-util", 0, "CAN bus utilization target (0 = -util, else default 0.2)")
		exp     = flag.Bool("exponential", false, "draw WCETs from an exponential distribution instead of uniform")
		out     = flag.String("o", "", "output file (default stdout)")
		count   = flag.Int("n", 0, "batch mode: emit a corpus of this many systems into -out (sweeps utilization, inter-cluster ratio, node count; -seed is the base seed)")
		outDir  = flag.String("out", "", "batch mode output directory (required with -n)")
	)
	flag.Parse()
	if *count > 0 {
		if *outDir == "" {
			fatal(fmt.Errorf("-n requires -out <dir>"))
		}
		// The corpus sweep fixes the workload axes itself; explicitly
		// set single-system flags would be silently dropped, so reject
		// the conflicting invocation instead.
		allowed := map[string]bool{"n": true, "out": true, "seed": true, "procs-per-node": true}
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				fatal(fmt.Errorf("-%s conflicts with batch mode: -n sweeps the workload axes itself (only -seed, -procs-per-node and -out apply)", f.Name))
			}
		})
		if err := writeCorpus(*count, *seed, *perNode, *outDir); err != nil {
			fatal(err)
		}
		return
	}
	if *nodes < 2 || *nodes%2 != 0 {
		fatal(fmt.Errorf("-nodes must be even and >= 2, got %d", *nodes))
	}
	// The explicit per-target flags win over the -util shorthand;
	// gen.Spec carries the two targets independently.
	if *cpuUtil == 0 {
		*cpuUtil = *util
	}
	if *busUtil == 0 {
		*busUtil = *util
	}
	spec := repro.GenSpec{
		Seed:             *seed,
		TTNodes:          *nodes / 2,
		ETNodes:          *nodes / 2,
		ProcsPerNode:     *perNode,
		InterClusterMsgs: *inter,
		CPUUtil:          *cpuUtil,
		BusUtil:          *busUtil,
	}
	if *exp {
		spec.WCETDist = 1 // gen.Exponential
	}
	sys, err := repro.Generate(spec)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		if err := sys.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := repro.SaveSystem(sys, *out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d processes, %d edges, %d inter-cluster messages\n",
		*out, len(sys.Application.Procs), len(sys.Application.Edges),
		len(sys.Application.GatewayEdges(sys.Architecture)))
}

// manifestEntry records one corpus member: the file and the exact
// generator spec that produced it, so any member regenerates from the
// manifest alone.
type manifestEntry struct {
	File string        `json:"file"`
	Spec repro.GenSpec `json:"spec"`
}

// writeCorpus emits the repro.Corpus sweep as corpus-NNN.json system
// files plus a MANIFEST.json into dir.
func writeCorpus(n int, base int64, perNode int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	specs := repro.Corpus(n, base, perNode)
	manifest := make([]manifestEntry, 0, n)
	for i, spec := range specs {
		sys, err := repro.Generate(spec)
		if err != nil {
			return fmt.Errorf("corpus member %d (seed %d): %w", i, spec.Seed, err)
		}
		name := fmt.Sprintf("corpus-%03d.json", i)
		if err := repro.SaveSystem(sys, filepath.Join(dir, name)); err != nil {
			return err
		}
		manifest = append(manifest, manifestEntry{File: name, Spec: spec})
		fmt.Printf("wrote %s: seed=%d nodes=%d cpu=%.2f bus=%.2f inter=%d procs=%d\n",
			filepath.Join(dir, name), spec.Seed, spec.TTNodes+spec.ETNodes,
			spec.CPUUtil, spec.BusUtil, spec.InterClusterMsgs, len(sys.Application.Procs))
	}
	f, err := os.Create(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d systems\n", filepath.Join(dir, "MANIFEST.json"), n)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcs-gen:", err)
	os.Exit(1)
}
