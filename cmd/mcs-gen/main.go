// Command mcs-gen generates random two-cluster applications with the
// workload parameters of the paper's evaluation (§6) and writes them as
// JSON system files consumable by mcs-synth and mcs-sim.
//
// Examples:
//
//	mcs-gen -nodes 4 -seed 7 -o app.json
//	mcs-gen -nodes 4 -inter 30 -o fig9c.json     # fixed gateway traffic
//	mcs-gen -nodes 4 -cpu-util 0.4 -bus-util 0.6 # asymmetric load targets
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 2, "total node count, split evenly between TTC and ETC (even, >= 2)")
		seed    = flag.Int64("seed", 1, "generator seed (deterministic)")
		perNode = flag.Int("procs-per-node", 40, "processes per node (the paper uses 40)")
		inter   = flag.Int("inter", 0, "force this many inter-cluster messages (0 = natural)")
		util    = flag.Float64("util", 0, "shorthand setting both -cpu-util and -bus-util (0 = per-target defaults)")
		cpuUtil = flag.Float64("cpu-util", 0, "per-node CPU utilization target (0 = -util, else default 0.2)")
		busUtil = flag.Float64("bus-util", 0, "CAN bus utilization target (0 = -util, else default 0.2)")
		exp     = flag.Bool("exponential", false, "draw WCETs from an exponential distribution instead of uniform")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if *nodes < 2 || *nodes%2 != 0 {
		fatal(fmt.Errorf("-nodes must be even and >= 2, got %d", *nodes))
	}
	// The explicit per-target flags win over the -util shorthand;
	// gen.Spec carries the two targets independently.
	if *cpuUtil == 0 {
		*cpuUtil = *util
	}
	if *busUtil == 0 {
		*busUtil = *util
	}
	spec := repro.GenSpec{
		Seed:             *seed,
		TTNodes:          *nodes / 2,
		ETNodes:          *nodes / 2,
		ProcsPerNode:     *perNode,
		InterClusterMsgs: *inter,
		CPUUtil:          *cpuUtil,
		BusUtil:          *busUtil,
	}
	if *exp {
		spec.WCETDist = 1 // gen.Exponential
	}
	sys, err := repro.Generate(spec)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		if err := sys.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := repro.SaveSystem(sys, *out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d processes, %d edges, %d inter-cluster messages\n",
		*out, len(sys.Application.Procs), len(sys.Application.Edges),
		len(sys.Application.GatewayEdges(sys.Architecture)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcs-gen:", err)
	os.Exit(1)
}
