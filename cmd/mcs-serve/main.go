// Command mcs-serve runs the multi-cluster synthesis service over HTTP:
// asynchronous synthesize and design-space-exploration jobs with
// polling and SSE progress streams, synchronous batch analysis, and an
// LRU of cached Solver sessions keyed by the canonical system
// fingerprint.
//
//	POST   /v1/synthesize       submit a synthesis job (202 + job id)
//	POST   /v1/explore          submit a Pareto exploration job (202 + job id)
//	GET    /v1/jobs/{id}        poll status/result
//	GET    /v1/jobs/{id}/events live progress (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel, keeping the best-so-far result
//	POST   /v1/analyze          synchronous batch analysis
//	GET    /v1/strategies       machine-readable synthesis strategy list
//	GET    /healthz             liveness + job/cache statistics
//
// SIGTERM/SIGINT drain gracefully: intake stops, in-flight jobs get
// -grace to finish, stragglers are canceled and report their
// best-so-far configurations, and the process exits 0.
//
// Example:
//
//	mcs-serve -addr :8080 -workers 8 &
//	mcs-gen -nodes 2 -seed 7 | jq '{system: ., strategy: "or"}' \
//	  | curl -s -d @- localhost:8080/v1/synthesize
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.NumCPU(), "evaluation workers per job (results are identical for every value)")
		jobWorkers = flag.Int("job-workers", 2, "jobs synthesized concurrently")
		queue      = flag.Int("queue", 64, "job queue depth (beyond it submits are rejected with 429)")
		cacheSize  = flag.Int("cache", 128, "cached Solver sessions (LRU)")
		retention  = flag.Int("retention", 1024, "terminal jobs kept pollable (oldest-finished evicted first)")
		grace      = flag.Duration("grace", 15*time.Second, "drain grace period before in-flight jobs are canceled to best-so-far")
	)
	flag.Parse()

	svc := repro.NewService(repro.ServiceOptions{
		Workers:    *workers,
		JobWorkers: *jobWorkers,
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
		Retention:  *retention,
	})
	srv := &http.Server{Addr: *addr, Handler: repro.NewServiceHandler(svc)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	//mcs:allow poolonly process-lifetime HTTP listener; the serve/shutdown handshake needs a detached goroutine
	go func() {
		log.Printf("mcs-serve: listening on %s (job workers %d, queue %d, cache %d)",
			*addr, *jobWorkers, *queue, *cacheSize)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	log.Printf("mcs-serve: draining (grace %s)", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	svc.Drain(drainCtx) // in-flight jobs finish or keep best-so-far
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
	}
	log.Printf("mcs-serve: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcs-serve:", err)
	os.Exit(1)
}
