// Command mcs-serve runs the multi-cluster synthesis service over HTTP:
// asynchronous synthesize and design-space-exploration jobs with
// polling and SSE progress streams, synchronous batch analysis, and an
// LRU of cached Solver sessions keyed by the canonical system
// fingerprint.
//
//	POST   /v1/synthesize       submit a synthesis job (202 + job id)
//	POST   /v1/explore          submit a Pareto exploration job (202 + job id)
//	GET    /v1/jobs/{id}        poll status/result
//	GET    /v1/jobs/{id}/events live progress (Server-Sent Events)
//	GET    /v1/jobs/{id}/trace  per-job span tree (with -trace)
//	DELETE /v1/jobs/{id}        cancel, keeping the best-so-far result
//	POST   /v1/analyze          synchronous batch analysis
//	GET    /v1/strategies       machine-readable synthesis strategy list
//	GET    /healthz             liveness + job/cache statistics
//	GET    /metrics             Prometheus text exposition (with -metrics)
//
// SIGTERM/SIGINT drain gracefully: intake stops, in-flight jobs get
// -grace to finish, stragglers are canceled and report their
// best-so-far configurations, and the process exits 0.
//
// With -data-dir the service is durable: every job transition is
// journaled to an append-only WAL before it is acknowledged, finished
// results persist under the request key (served byte-identically on
// resubmission, until -result-ttl), and a restart — graceful or kill
// -9 — replays the journal: finished jobs stay pollable, unfinished
// ones re-run ahead of new traffic. An empty -data-dir (the default)
// keeps the purely in-memory behavior.
//
// Logs are structured (-log-format text or json) with job, kind and
// fingerprint attributes on every job lifecycle line.
//
// Example:
//
//	mcs-serve -addr :8080 -workers 8 -data-dir /var/lib/mcs &
//	mcs-gen -nodes 2 -seed 7 | jq '{system: ., strategy: "or"}' \
//	  | curl -s -d @- localhost:8080/v1/synthesize
//	curl -s localhost:8080/metrics | grep mcs_jobs_total
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.NumCPU(), "evaluation workers per job (results are identical for every value)")
		jobWorkers = flag.Int("job-workers", 2, "jobs synthesized concurrently")
		queue      = flag.Int("queue", 64, "job queue depth (beyond it submits are rejected with 429)")
		cacheSize  = flag.Int("cache", 128, "cached Solver sessions (LRU)")
		retention  = flag.Int("retention", 1024, "terminal jobs kept pollable (oldest-finished evicted first)")
		grace      = flag.Duration("grace", 15*time.Second, "drain grace period before in-flight jobs are canceled to best-so-far")
		dataDir    = flag.String("data-dir", "", "durability root (journal + persistent results); empty = in-memory only")
		resultTTL  = flag.Duration("result-ttl", 24*time.Hour, "persistent result lifetime (with -data-dir); 0 = never expire")
		segBytes   = flag.Int64("journal-segment-bytes", 0, "journal segment rotation size (with -data-dir); 0 = default 4MiB")
		metrics    = flag.Bool("metrics", true, "serve Prometheus metrics on GET /metrics")
		trace      = flag.Bool("trace", true, "record per-job span trees, served on GET /v1/jobs/{id}/trace")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fatal(err)
	}

	var st *repro.FileStore
	if *dataDir != "" {
		st, err = repro.OpenStore(*dataDir, repro.StoreOptions{
			SegmentBytes: *segBytes,
			ResultTTL:    *resultTTL,
		})
		if err != nil {
			fatal(err)
		}
		_, rep := st.Replay()
		logger.Info("journal replayed", "dir", *dataDir, "records", rep.Records, "segments", rep.Segments)
		for _, torn := range rep.Torn {
			logger.Warn("journal tail torn",
				"segment", torn.Segment, "offset", torn.Offset, "dropped", torn.Dropped, "reason", torn.Reason)
		}
	}

	var registry *repro.MetricsRegistry // nil = disabled, zero overhead
	if *metrics {
		registry = repro.NewMetricsRegistry()
	}
	svc := repro.NewService(repro.ServiceOptions{
		Workers:    *workers,
		JobWorkers: *jobWorkers,
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
		Retention:  *retention,
		Store:      storeOrNil(st),
		Metrics:    registry,
		Tracing:    *trace,
		Logger:     logger,
	})
	srv := &http.Server{Addr: *addr, Handler: repro.NewServiceHandler(svc)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	//mcs:allow poolonly process-lifetime HTTP listener; the serve/shutdown handshake needs a detached goroutine
	go func() {
		logger.Info("listening",
			"addr", *addr, "jobWorkers", *jobWorkers, "queue", *queue, "cache", *cacheSize,
			"metrics", *metrics, "trace", *trace)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	logger.Info("draining", "grace", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	svc.Drain(drainCtx) // in-flight jobs finish or keep best-so-far
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
	}
	if st != nil {
		if err := st.Close(); err != nil {
			logger.Error("closing store failed", "error", err)
		}
	}
	logger.Info("drained, exiting")
}

// newLogger builds the process logger in the selected format, writing
// to stderr so job output redirection stays clean.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// storeOrNil keeps a nil *FileStore from becoming a non-nil Store
// interface inside the service.
func storeOrNil(st *repro.FileStore) repro.Store {
	if st == nil {
		return nil
	}
	return st
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcs-serve:", err)
	os.Exit(1)
}
